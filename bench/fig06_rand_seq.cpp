// Fig. 6 — Sequential vs random access:
//   (a) RDMA Read throughput, src x dst patterns, vs payload size
//   (b) RDMA Write throughput, src x dst patterns, vs payload size
//   (c) local DRAM read/write seq vs rand
//   (d) 32 B random/seq writes vs registered-region size (4 KB .. 1 GB)
//
// Paper shape: seq-seq > mixed > rand-rand (write gap > 2x); no asymmetry
// below ~4 MB registered (the RNIC SRAM knee); local asymmetry ~2.9x.

#include "bench_common.hpp"
#include "hw/dram.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 6  Sequential vs random access (MOPS)",
    {"panel", "x", "seq-seq", "seq-rand", "rand-seq", "rand-rand"});

// (src_random, dst_random) patterned ops over `region`-sized MRs. Records
// a structured point under "<panel>:<pattern>" and folds the rig's
// observability state into the bench report.
double pattern_mops(const char* panel, const char* pattern,
                    const std::string& x, verbs::Opcode op, bool src_random,
                    bool dst_random, std::size_t region, std::uint32_t size,
                    std::uint64_t ops) {
  bench::MicroRig rig(region, region, 4);
  sim::Rng rng(13);
  std::uint64_t seq = 0;
  const std::uint64_t slots = region / size;
  wl::ClientSpec spec;
  spec.qps = rig.qps;
  spec.window = 16;
  spec.ops_per_client = ops;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    const std::uint64_t s = ++seq;
    const std::uint64_t src_off =
        (src_random ? rng.uniform(slots) : s % slots) * size;
    const std::uint64_t dst_off =
        (dst_random ? rng.uniform(slots) : s % slots) * size;
    return op == verbs::Opcode::kWrite
               ? wl::make_write(*rig.lmr, src_off, *rig.rmr, dst_off, size)
               : wl::make_read(*rig.lmr, src_off, *rig.rmr, dst_off, size);
  };
  const wl::BenchResult r = wl::run_closed_loop(rig.rig.eng, spec);
  bench::absorb(rig.rig.cluster);
  bench::point(std::string(panel) + ":" + pattern, x, r);
  return r.mops;
}

void sweep_panel(benchmark::State& state, verbs::Opcode op, const char* name) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  const std::size_t region = util::env_u64("RDMASEM_FIG6_REGION", 256u << 20);
  const std::uint64_t ops = bench::micro_ops(4000);
  const std::string x = util::fmt_bytes(size);
  double ss = 0, sr = 0, rs = 0, rr = 0;
  for (auto _ : state) {
    ss = pattern_mops(name, "seq-seq", x, op, false, false, region, size, ops);
    sr = pattern_mops(name, "seq-rand", x, op, false, true, region, size, ops);
    rs = pattern_mops(name, "rand-seq", x, op, true, false, region, size, ops);
    rr = pattern_mops(name, "rand-rand", x, op, true, true, region, size, ops);
    state.SetIterationTime(1e-3);
  }
  state.counters["seq_seq"] = ss;
  state.counters["rand_rand"] = rr;
  collector.add({name, util::fmt_bytes(size), util::fmt(ss), util::fmt(sr),
                 util::fmt(rs), util::fmt(rr)});
}

void BM_fig6a_read(benchmark::State& state) {
  sweep_panel(state, verbs::Opcode::kRead, "a:read");
}
void BM_fig6b_write(benchmark::State& state) {
  sweep_panel(state, verbs::Opcode::kWrite, "b:write");
}

// (c) Local DRAM seq vs rand.
void BM_fig6c_local(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t n = bench::micro_ops(20000);
  const std::uint64_t region = 1u << 30;
  auto run_local = [&](bool write, bool random) {
    hw::ModelParams p;
    hw::DramModel dram(p);
    sim::Rng rng(5);
    sim::Duration total = 0;
    std::uint64_t addr = 0;
    const auto op =
        write ? hw::DramModel::Op::kWrite : hw::DramModel::Op::kRead;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t a =
          random ? rng.uniform(region / size) * size : (addr += size) % region;
      total += dram.access(a, size, op);
    }
    return static_cast<double>(n) / sim::to_us(total);
  };
  double ws = 0, wr = 0, rs = 0, rr = 0;
  for (auto _ : state) {
    ws = run_local(true, false);
    wr = run_local(true, true);
    rs = run_local(false, false);
    rr = run_local(false, true);
    state.SetIterationTime(1e-3);
  }
  state.counters["write_seq"] = ws;
  state.counters["write_rand"] = wr;
  collector.add({"c:local", util::fmt_bytes(size), util::fmt(ws) + "/w",
                 util::fmt(rs) + "/r", util::fmt(wr) + "/w",
                 util::fmt(rr) + "/r"});
}

// (d) 32 B writes vs registered-region size.
void BM_fig6d_region(benchmark::State& state) {
  const std::size_t region = static_cast<std::size_t>(state.range(0)) << 10;
  const std::uint64_t ops = bench::micro_ops(4000);
  const std::string x = util::fmt_bytes(region);
  const auto op = verbs::Opcode::kWrite;
  double ss = 0, sr = 0, rs = 0, rr = 0;
  for (auto _ : state) {
    ss = pattern_mops("d:region", "seq-seq", x, op, false, false, region, 32,
                      ops);
    sr = pattern_mops("d:region", "seq-rand", x, op, false, true, region, 32,
                      ops);
    rs = pattern_mops("d:region", "rand-seq", x, op, true, false, region, 32,
                      ops);
    rr = pattern_mops("d:region", "rand-rand", x, op, true, true, region, 32,
                      ops);
    state.SetIterationTime(1e-3);
  }
  state.counters["seq_seq"] = ss;
  state.counters["rand_rand"] = rr;
  collector.add({"d:region", util::fmt_bytes(region), util::fmt(ss),
                 util::fmt(sr), util::fmt(rs), util::fmt(rr)});
}

BENCHMARK(BM_fig6a_read)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)->Arg(2048)->Arg(8192)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fig6b_write)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)->Arg(2048)->Arg(8192)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fig6c_local)
    ->Arg(8)->Arg(64)->Arg(512)->Arg(4096)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
// Region sizes in KB: 4K, 4M, 16M, 64M, 256M, 1G.
BENCHMARK(BM_fig6d_region)
    ->Arg(4)->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144)->Arg(1048576)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
