// Fig. 16 — Distributed join:
//   (a) execution time vs batch size (1..32), theta in {4,16}, +/- NUMA
//   (b) 1/time vs executor count vs the ideal linear-scaling line,
//       unbatched and batch 4/16.
//
// Paper shape: batching cuts time by up to ~37%; NUMA-awareness by
// 12-30%; batch 16 stays within ~22% of ideal scaling.

#include "apps/join/join.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace jn = apps::join;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 16  Distributed join: batch size (a) and thread scaling (b)",
    {"panel", "x", "config", "seconds", "inv_seconds"});

jn::Result run_join_cfg(std::uint32_t executors, std::uint32_t batch,
                        bool numa) {
  wl::Rig rig;
  jn::Config cfg;
  cfg.tuples = util::env_u64("RDMASEM_JOIN_TUPLES", 1 << 17);
  cfg.executors = executors;
  cfg.batch_size = batch;
  cfg.numa_aware = numa;
  const auto r = jn::run_join(rig.contexts(), cfg);
  RDMASEM_CHECK_MSG(r.verified(), "join produced wrong match count");
  return r;
}

void BM_fig16a(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  const auto theta = static_cast<std::uint32_t>(state.range(1));
  const bool numa = state.range(2) != 0;
  double secs = 0;
  for (auto _ : state) {
    const auto r = run_join_cfg(theta, batch, numa);
    secs = r.seconds;
    state.SetIterationTime(r.seconds);
  }
  state.counters["seconds"] = secs;
  const std::string config = std::string(numa ? "NUMA" : "noNUMA") +
                             ",theta=" + std::to_string(theta);
  collector.add({"a:batch", std::to_string(batch), config, util::fmt(secs, 3),
                 util::fmt(1.0 / secs, 3)});
}

void BM_fig16b(benchmark::State& state) {
  const auto execs = static_cast<std::uint32_t>(state.range(0));
  const auto batch = static_cast<std::uint32_t>(state.range(1));
  double secs = 0;
  for (auto _ : state) {
    const auto r = run_join_cfg(execs, batch, true);
    secs = r.seconds;
    state.SetIterationTime(r.seconds);
  }
  state.counters["inv_seconds"] = 1.0 / secs;
  const std::string config =
      batch <= 1 ? "w/o batch" : "lambda=" + std::to_string(batch);
  collector.add({"b:threads", std::to_string(execs), config,
                 util::fmt(secs, 3), util::fmt(1.0 / secs, 3)});
}

BENCHMARK(BM_fig16a)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {4, 16}, {0, 1}})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fig16b)
    ->ArgsProduct({{1, 2, 4, 8, 12, 16}, {1, 4, 16}})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
