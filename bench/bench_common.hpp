#pragma once

// Shared pieces of the figure/table reproduction harness.
//
// Every bench binary follows the same pattern:
//   * each sweep point is a google-benchmark entry that runs the
//     simulation once and reports SIMULATED time via manual timing
//     (counters carry MOPS / latency in paper units);
//   * every point also appends a row to a collector, and main() prints
//     the paper-style table after the gbench run — the rows a reader
//     compares against the paper's figure.
//
// Workload sizes honor the RDMASEM_* environment knobs (README) so the
// paper-scale runs are reproducible on bigger machines.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/attr.hpp"
#include "obs/bench_export.hpp"
#include "obs/critical_path.hpp"
#include "obs/engine_profile.hpp"
#include "obs/json.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "wl/microbench.hpp"
#include "wl/rig.hpp"

namespace rdmasem::bench {

// Ordered row collector: rows keyed by (series, x) so sweeps can arrive in
// any order but print grouped by series.
class FigureCollector {
 public:
  explicit FigureCollector(std::string title, std::vector<std::string> header)
      : title_(std::move(title)), header_(std::move(header)) {}

  void add(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    util::Table t(header_);
    t.set_title(title_);
    for (const auto& r : rows_) t.add_row(r);
    t.print();
  }

  bool empty() const { return rows_.empty(); }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Process-wide structured report (BENCH_<name>.json) and the merged
// lifecycle-trace sink. Sweep points run on short-lived clusters, so each
// run's spans and stage totals are folded in here before the cluster dies.
inline obs::BenchReport& report() {
  static obs::BenchReport r;
  return r;
}
inline std::vector<obs::Span>& trace_spans() {
  static std::vector<obs::Span> s;
  return s;
}
// Attribution-record sink and the PROCESS-WIDE resource-name table the
// sunk records index into. Every cluster interns names in its own order,
// so absorb() remaps each batch before sinking it.
inline std::vector<obs::AttrSpan>& trace_attrs() {
  static std::vector<obs::AttrSpan> a;
  return a;
}
inline std::vector<std::string>& trace_res_names() {
  static std::vector<std::string> n;
  return n;
}
inline std::uint16_t intern_trace_res(const std::string& name) {
  auto& names = trace_res_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<std::uint16_t>(i);
  names.push_back(name);
  return static_cast<std::uint16_t>(names.size() - 1);
}
// Plane-1 aggregates (per-resource queueing waits, per-WR critical path)
// and the Plane-2 host-time engine profile, all merged across the
// process's sweep-point clusters.
inline obs::ResourceWaits& resource_waits() {
  static obs::ResourceWaits w;
  return w;
}
inline obs::CriticalPath& critical_path() {
  static obs::CriticalPath c;
  return c;
}
inline obs::EngineProfileAccum& engine_profile() {
  static obs::EngineProfileAccum a;
  return a;
}

// Folds one finished cluster's observability state into the process-wide
// report: stage totals merge, trace spans + attribution records move into
// the shared sinks (critical path folded first, while the attribution ids
// are still cluster-local), every live resource's wait counters fold into
// the bottleneck table, the engine's host-time profile is drained, and
// the metrics registry is sampled once so the report carries a final
// counter/gauge snapshot (last absorbed cluster wins). Call once per
// cluster: resource counters are cumulative and would double-fold.
inline void absorb(cluster::Cluster& c) {
  obs::Hub& hub = c.obs();
  report().absorb(hub.tracer.breakdown());
  if (hub.tracer.enabled()) {
    auto spans = hub.tracer.drain();
    auto attrs = hub.tracer.drain_attrs();
    const auto& names = hub.tracer.res_names();
    critical_path().fold(spans, attrs, names);
    std::vector<std::uint16_t> remap(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
      remap[i] = intern_trace_res(names[i]);
    for (auto& a : attrs)
      if (a.res < remap.size()) a.res = remap[a.res];
    auto& asink = trace_attrs();
    asink.insert(asink.end(), attrs.begin(), attrs.end());
    auto& sink = trace_spans();
    sink.insert(sink.end(), spans.begin(), spans.end());
  }
  c.for_each_resource([](sim::Resource& r) { resource_waits().add(r); });
  engine_profile().absorb(c.engine().drain_profile());
  hub.metrics.sample(c.engine().now());
  report().set_metrics_json(hub.metrics.json());
}

// Records one structured sweep point alongside the human-readable table
// row the bench also emits.
inline void point(const std::string& series, const std::string& x,
                  const wl::BenchResult& r) {
  obs::BenchRow row;
  row.series = series;
  row.x = x;
  row.mops = r.mops;
  row.avg_us = r.avg_latency_us;
  row.p50_us = r.p50_latency_us;
  row.p99_us = r.p99_latency_us;
  row.p999_us = r.p999_latency_us;
  row.errors = r.errors;
  report().add(std::move(row));
}

// Throughput-only variant for benches that measure outside run_closed_loop
// (e.g. the lock/sequencer loops of fig10).
inline void point_mops(const std::string& series, const std::string& x,
                       double mops) {
  obs::BenchRow row;
  row.series = series;
  row.x = x;
  row.mops = mops;
  report().add(std::move(row));
}

// Called by RDMASEM_BENCH_MAIN after the paper table prints: names the
// report after the binary, mirrors the table, writes the merged Chrome
// trace (when tracing ran) and BENCH_<name>.json into RDMASEM_BENCH_OUT
// (default "."; set to the empty string to disable file output).
inline void finish(const char* argv0, const FigureCollector& collector) {
  const std::string dir = util::env_str("RDMASEM_BENCH_OUT", ".");
  if (dir.empty()) return;
  std::string name = argv0 != nullptr ? argv0 : "bench";
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  obs::BenchReport& r = report();
  r.set_name(name);
  r.set_table(collector.title(), collector.header(), collector.rows());
  const std::string stages = r.stages().render();
  if (!stages.empty()) std::fputs(stages.c_str(), stdout);
  const std::string waits = resource_waits().render();
  if (!waits.empty()) std::fputs(waits.c_str(), stdout);
  const std::string cpath = critical_path().render();
  if (!cpath.empty()) std::fputs(cpath.c_str(), stdout);
  const std::string eprof = engine_profile().render();
  if (!eprof.empty()) std::fputs(eprof.c_str(), stdout);
  if (!resource_waits().empty())
    r.set_resource_waits_json(resource_waits().json());
  if (!critical_path().empty())
    r.set_critical_path_json(critical_path().json());
  if (!engine_profile().empty()) {
    const std::string ejson = engine_profile().json();
    r.set_engine_profile_json(ejson);
    const std::string epath =
        util::env_str("RDMASEM_PROF_OUT", dir + "/ENGINE_PROFILE.json");
    if (!epath.empty() && obs::write_text_file(epath, ejson))
      std::fprintf(stderr, "engine profile: %s\n", epath.c_str());
  }
  if (!trace_spans().empty()) {
    const std::string tpath = dir + "/trace_" + name + ".json";
    if (obs::write_text_file(
            tpath, obs::chrome_trace_json(trace_spans(), trace_attrs(),
                                          trace_res_names())))
      r.set_trace_file(tpath);
  }
  const std::string out = r.write(dir);
  if (!out.empty()) std::fprintf(stderr, "bench report: %s\n", out.c_str());
}

// A microbench rig: machine0 -> machine1 with per-thread QPs over one
// src/dst buffer pair (the §III experiments).
struct MicroRig {
  wl::Rig rig;
  verbs::Buffer src;
  verbs::Buffer dst;
  verbs::MemoryRegion* lmr;
  verbs::MemoryRegion* rmr;
  std::vector<verbs::QueuePair*> qps;

  MicroRig(std::size_t src_size, std::size_t dst_size, std::uint32_t threads,
           hw::ModelParams params = hw::ModelParams::connectx3_cluster())
      : rig(params), src(src_size), dst(dst_size) {
    lmr = rig.ctx[0]->register_buffer(src, 1);
    rmr = rig.ctx[1]->register_buffer(dst, 1);
    for (std::uint32_t t = 0; t < threads; ++t)
      qps.push_back(rig.connect(0, 1).local);
  }

  wl::BenchResult run(const verbs::WorkRequest& proto, std::uint32_t window,
                      std::uint64_t ops_per_client) {
    wl::ClientSpec spec;
    spec.qps = qps;
    spec.window = window;
    spec.ops_per_client = ops_per_client;
    spec.make_wr = [proto](std::uint32_t, std::uint64_t) { return proto; };
    wl::BenchResult r = wl::run_closed_loop(rig.eng, spec);
    absorb(rig.cluster);
    return r;
  }
};

// Standard env-scaled op count (per client) for microbench sweeps.
inline std::uint64_t micro_ops(std::uint64_t def = 8000) {
  return util::env_u64("RDMASEM_MICRO_OPS", def);
}

// Reports a result through google-benchmark: manual time = simulated time,
// plus MOPS / latency counters in paper units. Failed completions are
// surfaced as an `errors` counter and (when non-zero) a per-Status label
// instead of accumulating silently.
inline void report(benchmark::State& state, const wl::BenchResult& r) {
  state.SetIterationTime(sim::to_sec(r.elapsed));
  state.counters["sim_MOPS"] = r.mops;
  state.counters["sim_lat_us"] = r.avg_latency_us;
  state.counters["per_thread_MOPS"] = r.per_thread_mops;
  state.counters["errors"] = static_cast<double>(r.errors);
  if (r.errors) state.SetLabel(r.error_breakdown());
}

// Table cell for the errors column of a paper-style table.
inline std::string errors_cell(const wl::BenchResult& r) {
  return r.errors ? std::to_string(r.errors) + " (" + r.error_breakdown() + ")"
                  : "0";
}

}  // namespace rdmasem::bench

// Custom main: run the registered benchmarks, then print the paper table.
#define RDMASEM_BENCH_MAIN(collector)                         \
  int main(int argc, char** argv) {                           \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    (collector).print();                                      \
    ::rdmasem::bench::finish(argv[0], (collector));           \
    return 0;                                                 \
  }
