// Fig. 18 — CPU consumption of the join's batch schedule: SP vs SGL as the
// entry size grows (64 B .. 4096 B), 7 executors.
//
// The metric is the CPU time the simulator charges the sender per entry:
// SP pays tuple work + hash + the gather memcpy + its share of the post;
// SGL skips the memcpy (the RNIC gathers). Paper anchor: SGL saves
// ~67% CPU at 4 KB entries.

#include "apps/shuffle/shuffle.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 18  Sender CPU cost per entry, SP vs SGL (7 executors)",
    {"entry_size", "SP_ns_per_entry", "SGL_ns_per_entry", "SGL_saving"});

void BM_fig18(benchmark::State& state) {
  const auto entry = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t batch = 16;
  hw::ModelParams p;
  double sp = 0, sgl = 0;
  for (auto _ : state) {
    // Exactly the costs the simulator charges per entry on the send path
    // (see SpBatcher/SglBatcher + QueuePair::post_cost).
    const double common =
        sim::to_ns(p.cpu_tuple_work + p.cpu_hash) +
        sim::to_ns(p.cpu_wqe_prep + p.cpu_mmio) / batch;
    sp = common + sim::to_ns(p.memcpy_time(entry));
    sgl = common;
    // Sanity-check against a real shuffle run's simulated time split:
    // run both modes and require SP to be slower end-to-end.
    wl::Rig rig;
    apps::shuffle::Config cfg;
    cfg.executors = 7;
    cfg.entries_per_executor = 1500;
    cfg.entry_size = entry;
    cfg.batch_size = batch;
    cfg.batch = apps::shuffle::BatchMode::kSp;
    const auto rsp = apps::shuffle::Shuffle(rig.contexts(), cfg).run();
    wl::Rig rig2;
    cfg.batch = apps::shuffle::BatchMode::kSgl;
    const auto rsgl = apps::shuffle::Shuffle(rig2.contexts(), cfg).run();
    state.SetIterationTime(sim::to_sec(rsp.elapsed + rsgl.elapsed));
    state.counters["shuffle_SP_MOPS"] = rsp.mops;
    state.counters["shuffle_SGL_MOPS"] = rsgl.mops;
  }
  state.counters["SP_ns"] = sp;
  state.counters["SGL_ns"] = sgl;
  collector.add({util::fmt_bytes(entry), util::fmt(sp, 1),
                 util::fmt(sgl, 1),
                 util::fmt(100.0 * (1.0 - sgl / sp), 1) + "%"});
}

BENCHMARK(BM_fig18)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
