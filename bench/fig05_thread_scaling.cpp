// Fig. 5 — Per-thread throughput vs thread count (1..8), batch size 4,
// 32 B payload, all threads sharing one RNIC port.
//
// Paper shape: SP > SGL > Doorbell; SP/SGL lose ~25% per-thread from 1 to
// 8 threads, Doorbell loses ~60% (it spends one WQE per logical op, so the
// shared execution unit saturates first).

#include "bench_common.hpp"
#include "remem/batch.hpp"
#include "sim/sync.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 5  Per-thread MOPS vs thread count (batch 4, 32 B)",
    {"threads", "Doorbell", "SGL", "SP"});

constexpr std::uint32_t kSize = 32;
constexpr std::uint32_t kBatch = 4;

enum class Kind { kDoorbell, kSgl, kSp };

double per_thread_mops(Kind kind, std::uint32_t threads,
                       std::uint64_t reps) {
  wl::Rig rig;
  verbs::Buffer src(1 << 18), dst(1 << 18);
  auto* lmr = rig.ctx[0]->register_buffer(src, 1);
  auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
  std::vector<std::unique_ptr<remem::Batcher>> batchers;
  sim::CountdownLatch done(rig.eng, threads);
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    auto conn = rig.connect(0, 1);
    switch (kind) {
      case Kind::kDoorbell:
        batchers.push_back(
            std::make_unique<remem::DoorbellBatcher>(*conn.local));
        break;
      case Kind::kSgl:
        batchers.push_back(std::make_unique<remem::SglBatcher>(*conn.local));
        break;
      case Kind::kSp:
        batchers.push_back(
            std::make_unique<remem::SpBatcher>(*conn.local, kSize * kBatch));
        break;
    }
    auto loop = [](wl::Rig& r, remem::Batcher& b, verbs::MemoryRegion* l,
                   verbs::MemoryRegion* rm, std::uint32_t tid,
                   std::uint64_t k, sim::CountdownLatch& d,
                   sim::Time& e) -> sim::Task {
      std::vector<remem::BatchItem> items;
      for (std::uint32_t i = 0; i < kBatch; ++i)
        items.push_back(
            {{l->addr + (tid * kBatch + i) * 4096, kSize, l->key},
             rm->addr + (tid * kBatch + i) * kSize});
      for (std::uint64_t i = 0; i < k; ++i)
        (void)co_await b.flush_write(items, rm->addr + tid * 4096, rm->key);
      e = std::max(e, r.eng.now());
      d.count_down();
    };
    rig.eng.spawn(loop(rig, *batchers.back(), lmr, rmr, t, reps, done, end));
  }
  rig.eng.run();
  return static_cast<double>(kBatch) * static_cast<double>(reps) *
         threads / sim::to_us(end) / threads;
}

void BM_fig5(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t reps = bench::micro_ops(2000) / kBatch + 1;
  double db = 0, sgl = 0, sp = 0;
  for (auto _ : state) {
    db = per_thread_mops(Kind::kDoorbell, threads, reps);
    sgl = per_thread_mops(Kind::kSgl, threads, reps);
    sp = per_thread_mops(Kind::kSp, threads, reps);
    state.SetIterationTime(1e-3);
  }
  state.counters["Doorbell_per_thread"] = db;
  state.counters["SGL_per_thread"] = sgl;
  state.counters["SP_per_thread"] = sp;
  collector.add({std::to_string(threads), util::fmt(db), util::fmt(sgl),
                 util::fmt(sp)});
}

BENCHMARK(BM_fig5)
    ->DenseRange(1, 8, 1)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
