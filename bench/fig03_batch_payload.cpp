// Fig. 3 — Vector-IO batch strategies (Doorbell / SGL / SP / Local) vs
// payload size, batch sizes 4 and 16, one-to-one connection.
//
// Paper shape: flat below ~128 B; SGL/SP decay linearly as payload grows;
// Doorbell stays flat (and low). Local = batched local memory writes.

#include <memory>

#include "bench_common.hpp"
#include "hw/dram.hpp"
#include "remem/batch.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 3  Batch strategies vs payload size (MOPS, batch 4 and 16)",
    {"size", "batch", "Doorbell", "SGL", "SP", "Local"});

// Closed-loop flush loop over scattered pieces of `size` bytes.
double batcher_mops(remem::Batcher& b, wl::Rig& rig,
                    verbs::MemoryRegion* lmr, verbs::MemoryRegion* rmr,
                    std::uint32_t size, std::uint32_t batch,
                    std::uint64_t reps) {
  double out = 0;
  auto task = [](wl::Rig& r, remem::Batcher& bb, verbs::MemoryRegion* l,
                 verbs::MemoryRegion* rm, std::uint32_t sz, std::uint32_t n,
                 std::uint64_t k, double& res) -> sim::Task {
    std::vector<remem::BatchItem> items;
    const std::uint64_t stride = 4096;
    for (std::uint32_t i = 0; i < n; ++i)
      items.push_back({{l->addr + i * stride, sz, l->key},
                       rm->addr + i * static_cast<std::uint64_t>(sz)});
    const sim::Time start = r.eng.now();
    for (std::uint64_t i = 0; i < k; ++i)
      (void)co_await bb.flush_write(items, rm->addr, rm->key);
    res = static_cast<double>(n) * static_cast<double>(k) /
          sim::to_us(r.eng.now() - start);
  };
  rig.eng.spawn(task(rig, b, lmr, rmr, size, batch, reps, out));
  rig.eng.run();
  return out;
}

// Local baseline: batched local memory writes (writev-style) through the
// DRAM model.
double local_mops(std::uint32_t size, std::uint32_t batch,
                  std::uint64_t reps) {
  hw::ModelParams p;
  hw::DramModel dram(p);
  sim::Duration total = 0;
  std::uint64_t addr = 0;
  for (std::uint64_t i = 0; i < reps; ++i) {
    // One syscall-ish overhead per writev, then `batch` scattered writes.
    total += p.cpu_memcpy_overhead * 4;
    for (std::uint32_t b = 0; b < batch; ++b) {
      total += dram.access(addr, size, hw::DramModel::Op::kWrite);
      addr += 4096;
    }
  }
  return static_cast<double>(batch) * static_cast<double>(reps) /
         sim::to_us(total);
}

void BM_fig3(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  const auto batch = static_cast<std::uint32_t>(state.range(1));
  const std::uint64_t reps = bench::micro_ops(2000) / batch + 1;
  double db = 0, sgl = 0, sp = 0, local = 0;
  for (auto _ : state) {
    sim::Duration elapsed = 0;
    {
      wl::Rig rig;
      verbs::Buffer src(1 << 18), dst(1 << 18);
      auto* lmr = rig.ctx[0]->register_buffer(src, 1);
      auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
      auto conn = rig.connect(0, 1);
      remem::DoorbellBatcher b(*conn.local);
      db = batcher_mops(b, rig, lmr, rmr, size, batch, reps);
      elapsed += rig.eng.now();
    }
    {
      wl::Rig rig;
      verbs::Buffer src(1 << 18), dst(1 << 18);
      auto* lmr = rig.ctx[0]->register_buffer(src, 1);
      auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
      auto conn = rig.connect(0, 1);
      remem::SglBatcher b(*conn.local);
      sgl = batcher_mops(b, rig, lmr, rmr, size, batch, reps);
      elapsed += rig.eng.now();
    }
    {
      wl::Rig rig;
      verbs::Buffer src(1 << 18), dst(1 << 18);
      auto* lmr = rig.ctx[0]->register_buffer(src, 1);
      auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
      auto conn = rig.connect(0, 1);
      remem::SpBatcher b(*conn.local, static_cast<std::size_t>(size) * batch);
      sp = batcher_mops(b, rig, lmr, rmr, size, batch, reps);
      elapsed += rig.eng.now();
    }
    local = local_mops(size, batch, reps);
    state.SetIterationTime(sim::to_sec(elapsed));
  }
  state.counters["Doorbell_MOPS"] = db;
  state.counters["SGL_MOPS"] = sgl;
  state.counters["SP_MOPS"] = sp;
  state.counters["Local_MOPS"] = local;
  collector.add({util::fmt_bytes(size), std::to_string(batch),
                 util::fmt(db), util::fmt(sgl), util::fmt(sp),
                 util::fmt(local)});
}

BENCHMARK(BM_fig3)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048},
                   {4, 16}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
