// Extension — fault recovery (docs/FAULTS.md): crash the host of dlog
// replica 0 mid-run and measure what the failover costs. Each engine's
// replica QP exhausts its bounded retry budget, flips to ERROR, and the
// engine drops the dead replica and keeps appending to the survivors —
// no acknowledged append is lost.
//
// Reported per retry budget (`failover_retry_cnt`):
//   MOPS        goodput of the whole run, crash included
//   vs_clean    that goodput relative to the same run without the crash
//   recovery_us virtual time from the crash to the first engine dropping
//               the dead replica (detection = retries + backoff)
//   failovers   engine->replica connections dropped (one per engine)

#include "apps/dlog/dlog.hpp"
#include "bench_common.hpp"
#include "fault/fault.hpp"

namespace {

using namespace rdmasem;
namespace dl = apps::dlog;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. fault recovery (4 engines, 3 replicas, replica-0 host crash)",
    {"retry_cnt", "MOPS", "vs_clean", "recovery_us", "failovers", "intact",
     "survivor_ok"});

double g_clean = 0;
sim::Duration g_clean_elapsed = 0;

dl::Config base_config(std::uint32_t retry_cnt) {
  dl::Config cfg;
  cfg.engines = 4;
  cfg.records_per_engine = util::env_u64("RDMASEM_DLOG_RECORDS", 2048);
  cfg.batch_size = 8;
  cfg.replicas = 3;
  cfg.failover = true;
  cfg.failover_retry_cnt = retry_cnt;
  return cfg;
}

// range(0) == 0: clean rehearsal (no crash) — the baseline row and the
// source of the mid-run crash time for the rows that follow.
void BM_ext_fault(benchmark::State& state) {
  const auto retry_cnt = static_cast<std::uint32_t>(state.range(0));
  const bool crash = retry_cnt > 0;
  dl::Result r;
  bool intact = false, survivor_ok = false;
  sim::Time crash_at = 0;
  for (auto _ : state) {
    wl::Rig rig;
    const auto cfg = base_config(crash ? retry_cnt : 3);
    if (crash) {
      crash_at = g_clean_elapsed / 2;
      fault::FaultPlan plan;
      plan.crash(crash_at, rig.cluster.size() - 1);  // replica 0's host
      rig.cluster.inject(plan);
    }
    dl::DistributedLog log(rig.contexts(), cfg);
    r = log.run();
    intact = log.verify_dense_and_intact();
    survivor_ok = !crash || log.recover_from_replica(1);
    state.SetIterationTime(sim::to_sec(r.elapsed));
  }
  if (!crash) {
    g_clean = r.mops;
    g_clean_elapsed = r.elapsed;
  }
  const double recovery_us =
      r.first_failover_at > crash_at
          ? sim::to_us(r.first_failover_at - crash_at)
          : 0;
  state.counters["MOPS"] = r.mops;
  state.counters["recovery_us"] = recovery_us;
  state.counters["failovers"] = static_cast<double>(r.failovers);
  collector.add({crash ? std::to_string(retry_cnt) : "no crash",
                 util::fmt(r.mops),
                 g_clean > 0 ? util::fmt(r.mops / g_clean) + "x" : "-",
                 crash ? util::fmt(recovery_us) : "-",
                 std::to_string(r.failovers), intact ? "yes" : "NO",
                 survivor_ok ? "yes" : "NO"});
}

BENCHMARK(BM_ext_fault)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
