// Fig. 8 — IO consolidation: 32 B random writes into 1 KB-aligned blocks,
// native path vs consolidation with theta in {1, 2, 4, 8, 16}.
//
// Paper anchor: theta=16 reaches ~7.5x the native throughput.

#include "bench_common.hpp"
#include "remem/consolidate.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 8  IO consolidation throughput (32 B random writes, 1 KB blocks)",
    {"theta", "MOPS", "speedup_vs_native"});

constexpr std::size_t kRegion = 1 << 16;
constexpr std::uint32_t kBlock = 1024;
constexpr std::uint32_t kSize = 32;

double native_mops(std::uint64_t ops) {
  bench::MicroRig rig(4096, kRegion, 1);
  sim::Rng rng(3);
  wl::ClientSpec spec;
  spec.qps = rig.qps;
  spec.window = 1;
  spec.ops_per_client = ops;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return wl::make_write(*rig.lmr, 0, *rig.rmr,
                          rng.uniform(kRegion / kSize) * kSize, kSize);
  };
  return wl::run_closed_loop(rig.rig.eng, spec).mops;
}

double consolidated_mops(std::uint32_t theta, std::uint64_t ops) {
  wl::Rig rig;
  verbs::Buffer dst(kRegion);
  auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
  auto conn = rig.connect(0, 1);
  remem::Consolidator cons(*conn.local, rmr->addr, rmr->key, kRegion,
                           {.block_size = kBlock,
                            .theta = theta,
                            .timeout = sim::ms(10)});
  double out = 0;
  auto task = [](wl::Rig& r, remem::Consolidator& c, std::uint64_t n,
                 double& res) -> sim::Task {
    sim::Rng rng(3);
    std::vector<std::byte> payload(kSize);
    const sim::Time start = r.eng.now();
    for (std::uint64_t i = 0; i < n; ++i) {
      // Skewed: writes hit a handful of hot blocks (the paper's stated
      // use case for consolidation).
      const std::uint64_t block = rng.uniform(4);
      const std::uint64_t slot = rng.uniform(kBlock / kSize);
      co_await c.write(block * kBlock + slot * kSize, payload);
    }
    const sim::Time staged = r.eng.now();
    co_await c.flush_all();
    res = static_cast<double>(n) /
          sim::to_us(std::max(r.eng.now(), staged) - start);
  };
  rig.eng.spawn(task(rig, cons, ops, out));
  rig.eng.run();
  return out;
}

double g_native = 0;

void BM_fig8(benchmark::State& state) {
  const auto theta = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t ops = bench::micro_ops(6000);
  double mops = 0;
  for (auto _ : state) {
    if (theta == 0) {
      mops = native_mops(ops);
      g_native = mops;
    } else {
      mops = consolidated_mops(theta, ops);
    }
    state.SetIterationTime(1e-3);
  }
  state.counters["MOPS"] = mops;
  const double speedup = g_native > 0 ? mops / g_native : 0;
  collector.add({theta == 0 ? "native" : std::to_string(theta),
                 util::fmt(mops), util::fmt(speedup)});
}

BENCHMARK(BM_fig8)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
