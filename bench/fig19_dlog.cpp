// Fig. 19 — Distributed log throughput vs batch size (1..32) for 4/7/14
// transaction engines, with and without NUMA awareness.
//
// Paper shape: batch 32 reaches ~9.1x the unbatched throughput (7 engines);
// NUMA-awareness adds ~14% at 14 engines; ~17.7 MOPS peak.

#include "apps/dlog/dlog.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace dl = apps::dlog;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 19  Distributed log (MOPS vs batch size)",
    {"batch", "4eng*", "7eng*", "14eng*", "4eng", "7eng", "14eng"});

double run_log(std::uint32_t engines, std::uint32_t batch, bool numa) {
  wl::Rig rig;
  dl::Config cfg;
  cfg.engines = engines;
  cfg.records_per_engine = util::env_u64("RDMASEM_DLOG_RECORDS", 2048);
  cfg.batch_size = batch;
  cfg.numa_aware = numa;
  dl::DistributedLog log(rig.contexts(), cfg);
  const auto r = log.run();
  RDMASEM_CHECK_MSG(log.verify_dense_and_intact(), "log corrupted");
  bench::absorb(rig.cluster);
  bench::point_mops(std::to_string(engines) + "eng" + (numa ? "" : "*"),
                    std::to_string(batch), r.mops);
  return r.mops;
}

void BM_fig19(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  double v[6] = {};
  const std::uint32_t engines[3] = {4, 7, 14};
  for (auto _ : state) {
    for (int i = 0; i < 3; ++i) v[i] = run_log(engines[i], batch, false);
    for (int i = 0; i < 3; ++i) v[3 + i] = run_log(engines[i], batch, true);
    state.SetIterationTime(1e-3);
  }
  state.counters["eng7_numa_MOPS"] = v[4];
  state.counters["eng14_numa_MOPS"] = v[5];
  collector.add({std::to_string(batch), util::fmt(v[0]), util::fmt(v[1]),
                 util::fmt(v[2]), util::fmt(v[3]), util::fmt(v[4]),
                 util::fmt(v[5])});
}

BENCHMARK(BM_fig19)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
