// Extension — mixed read/write workloads on the disaggregated hashtable.
// The paper evaluates 100% writes (Fig. 12); real KV front-ends serve
// YCSB-style mixes. Sweeps the write fraction and compares the basic
// table against the fully optimized one.
//
// Reads interact with consolidation in both directions: dirty hot blocks
// are served from the front-end's burst buffer (no network!), clean ones
// need a remote read, and cold reads pay version + slot round trips.

#include "apps/hashtable/hashtable.hpp"
#include "bench_common.hpp"
#include "sim/sync.hpp"
#include "wl/zipf.hpp"

namespace {

using namespace rdmasem;
namespace ht = apps::hashtable;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. hashtable mixed workloads (MOPS, 6 front-ends)",
    {"write_pct", "Basic", "Optimized", "speedup"});

double run_mixed(double write_fraction, bool optimized) {
  wl::Rig rig;
  ht::Config cfg;
  cfg.num_keys = util::env_u64("RDMASEM_HT_KEYS", 1 << 14);
  cfg.numa_aware = optimized;
  cfg.consolidate = optimized;
  ht::DisaggHashTable table(*rig.ctx[0], cfg);
  const std::uint32_t fes = 6, pipeline = 4;
  const std::uint64_t ops = util::env_u64("RDMASEM_HT_OPS", 600);
  std::vector<std::unique_ptr<ht::FrontEnd>> workers;
  sim::CountdownLatch done(rig.eng, fes * pipeline);
  sim::Time end = 0;
  std::vector<std::byte> value(cfg.value_size);
  for (std::uint32_t i = 0; i < fes; ++i) {
    workers.push_back(table.add_front_end(*rig.ctx[1 + i % 7], (i / 7) % 2));
    for (std::uint32_t w = 0; w < pipeline; ++w) {
      auto loop = [](wl::Rig& r, ht::FrontEnd& f, const ht::Config& c,
                     std::uint32_t id, std::uint64_t n, double wf,
                     std::vector<std::byte>& v, sim::CountdownLatch& d,
                     sim::Time& e) -> sim::Task {
        wl::ZipfGenerator zipf(c.num_keys, 0.99, 500 + id);
        sim::Rng coin(900 + id);
        for (std::uint64_t k = 0; k < n; ++k) {
          const std::uint64_t key = zipf.next();
          if (coin.chance(wf)) {
            co_await f.put(key, v);
          } else {
            (void)co_await f.get(key);
          }
        }
        e = std::max(e, r.eng.now());
        d.count_down();
        if (d.remaining() == 0) co_await f.drain();
      };
      rig.eng.spawn(loop(rig, *workers.back(), cfg, i * pipeline + w, ops,
                         write_fraction, value, done, end));
    }
  }
  rig.eng.run();
  return static_cast<double>(fes) * pipeline * static_cast<double>(ops) /
         sim::to_us(end);
}

void BM_ext_mixed(benchmark::State& state) {
  const double wf = static_cast<double>(state.range(0)) / 100.0;
  double basic = 0, opt = 0;
  for (auto _ : state) {
    basic = run_mixed(wf, false);
    opt = run_mixed(wf, true);
    state.SetIterationTime(1e-3);
  }
  state.counters["basic_MOPS"] = basic;
  state.counters["optimized_MOPS"] = opt;
  collector.add({std::to_string(state.range(0)) + "%", util::fmt(basic),
                 util::fmt(opt), util::fmt(opt / basic) + "x"});
}

BENCHMARK(BM_ext_mixed)
    ->Arg(100)->Arg(50)->Arg(20)->Arg(5)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
