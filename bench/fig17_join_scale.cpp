// Fig. 17 — Join time vs data scale (paper: 2^24..2^26 tuples; scaled by
// default, override with RDMASEM_JOIN_SCALE_SHIFT for paper scale):
// single machine vs distributed configurations.
//
// Paper shape: all-optimizations is ~5.3x the single machine and ~10.3x a
// naive distributed run; the gap stays roughly constant across scales.

#include "apps/join/join.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace jn = apps::join;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 17  Join execution time vs data scale (seconds)",
    {"tuples", "single", "t4_l1_noNUMA", "t4_l1", "t4_l16", "t16_l16"});

double run_one(std::uint64_t tuples, bool distributed, std::uint32_t execs,
               std::uint32_t batch, bool numa) {
  wl::Rig rig;
  jn::Config cfg;
  cfg.tuples = tuples;
  cfg.distributed = distributed;
  cfg.executors = execs;
  cfg.batch_size = batch;
  cfg.numa_aware = numa;
  const auto r = jn::run_join(rig.contexts(), cfg);
  RDMASEM_CHECK_MSG(r.verified(), "join produced wrong match count");
  return r.seconds;
}

void BM_fig17(benchmark::State& state) {
  // Paper sweeps 2^24..2^26; default scale-down keeps the same 4x spread.
  const auto shift = util::env_u64("RDMASEM_JOIN_SCALE_SHIFT", 16);
  const std::uint64_t tuples = 1ull << (shift + state.range(0));
  double single = 0, naive = 0, t4l1 = 0, t4l16 = 0, t16l16 = 0;
  for (auto _ : state) {
    single = run_one(tuples, false, 1, 1, true);
    naive = run_one(tuples, true, 4, 1, false);
    t4l1 = run_one(tuples, true, 4, 1, true);
    t4l16 = run_one(tuples, true, 4, 16, true);
    t16l16 = run_one(tuples, true, 16, 16, true);
    state.SetIterationTime(single + t16l16);
  }
  state.counters["single_s"] = single;
  state.counters["t16_l16_s"] = t16l16;
  state.counters["speedup_vs_single"] = single / t16l16;
  collector.add({"2^" + std::to_string(shift + state.range(0)),
                 util::fmt(single, 3), util::fmt(naive, 3),
                 util::fmt(t4l1, 3), util::fmt(t4l16, 3),
                 util::fmt(t16l16, 3)});
}

BENCHMARK(BM_fig17)
    ->Arg(0)->Arg(1)->Arg(2)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
