// Fig. 4 — Throughput vs batch size (1..32), 32 B payload, plus local
// readv/writev baselines.
//
// Paper shape: SP and SGL scale strongly with batch size; Doorbell gains
// little (~2.5x over the whole range); SP tops out near ~44%/117% of the
// local write/read baselines.

#include "bench_common.hpp"
#include "hw/dram.hpp"
#include "remem/batch.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 4  Batch strategies vs batch size (32 B payload, MOPS)",
    {"batch", "Doorbell", "SGL", "SP", "Local-W", "Local-R"});

constexpr std::uint32_t kSize = 32;

template <typename MakeBatcher>
double run_batcher(MakeBatcher make, std::uint32_t batch,
                   std::uint64_t reps) {
  wl::Rig rig;
  verbs::Buffer src(1 << 18), dst(1 << 18);
  auto* lmr = rig.ctx[0]->register_buffer(src, 1);
  auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
  auto conn = rig.connect(0, 1);
  auto batcher = make(*conn.local);
  double out = 0;
  auto task = [](wl::Rig& r, remem::Batcher& b, verbs::MemoryRegion* l,
                 verbs::MemoryRegion* rm, std::uint32_t n, std::uint64_t k,
                 double& res) -> sim::Task {
    std::vector<remem::BatchItem> items;
    for (std::uint32_t i = 0; i < n; ++i)
      items.push_back({{l->addr + i * 4096, kSize, l->key},
                       rm->addr + i * kSize});
    const sim::Time start = r.eng.now();
    for (std::uint64_t i = 0; i < k; ++i)
      (void)co_await b.flush_write(items, rm->addr, rm->key);
    res = static_cast<double>(n) * static_cast<double>(k) /
          sim::to_us(r.eng.now() - start);
  };
  rig.eng.spawn(task(rig, *batcher, lmr, rmr, batch, reps, out));
  rig.eng.run();
  return out;
}

double local_rw(bool write, std::uint32_t batch, std::uint64_t reps) {
  hw::ModelParams p;
  hw::DramModel dram(p);
  sim::Duration total = 0;
  std::uint64_t addr = 0;
  const auto op = write ? hw::DramModel::Op::kWrite : hw::DramModel::Op::kRead;
  for (std::uint64_t i = 0; i < reps; ++i) {
    total += p.cpu_memcpy_overhead * 4;  // one readv/writev call
    for (std::uint32_t b = 0; b < batch; ++b) {
      total += dram.access(addr, kSize, op);
      addr += 4096;
    }
  }
  return static_cast<double>(batch) * static_cast<double>(reps) /
         sim::to_us(total);
}

void BM_fig4(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t reps = bench::micro_ops(4000) / batch + 1;
  double db = 0, sgl = 0, sp = 0, lw = 0, lr = 0;
  for (auto _ : state) {
    db = run_batcher(
        [](verbs::QueuePair& qp) {
          return std::make_unique<remem::DoorbellBatcher>(qp);
        },
        batch, reps);
    sgl = run_batcher(
        [](verbs::QueuePair& qp) {
          return std::make_unique<remem::SglBatcher>(qp);
        },
        batch, reps);
    sp = run_batcher(
        [batch](verbs::QueuePair& qp) {
          return std::make_unique<remem::SpBatcher>(qp, kSize * batch);
        },
        batch, reps);
    lw = local_rw(true, batch, reps);
    lr = local_rw(false, batch, reps);
    state.SetIterationTime(1e-3);  // aggregate of three sims; see counters
  }
  state.counters["Doorbell_MOPS"] = db;
  state.counters["SGL_MOPS"] = sgl;
  state.counters["SP_MOPS"] = sp;
  collector.add({std::to_string(batch), util::fmt(db), util::fmt(sgl),
                 util::fmt(sp), util::fmt(lw), util::fmt(lr)});
}

BENCHMARK(BM_fig4)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
