// Fig. 13 — Consolidation sensitivity in the disaggregated hashtable:
//   (a) throughput vs hot-key proportion (1/4 .. 1/32)
//   (b) throughput vs consolidation batch size theta (1 .. 16)
//
// Paper shape: (a) degrades gently (~6 MOPS drop from 1/4 to 1/32);
// (b) grows sublinearly with theta.

#include "apps/hashtable/hashtable.hpp"
#include "bench_common.hpp"
#include "sim/sync.hpp"
#include "wl/zipf.hpp"

namespace {

using namespace rdmasem;
namespace ht = apps::hashtable;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 13  Hashtable consolidation: hot proportion (a) and theta (b)",
    {"panel", "x", "MOPS"});

double run_config(double hot_fraction, std::uint32_t theta) {
  wl::Rig rig;
  ht::Config cfg;
  cfg.num_keys = util::env_u64("RDMASEM_HT_KEYS", 1 << 14);
  cfg.numa_aware = true;
  cfg.consolidate = true;
  cfg.hot_fraction = hot_fraction;
  cfg.theta = theta;
  ht::DisaggHashTable table(*rig.ctx[0], cfg);
  const std::uint32_t fes = 6, pipeline = 4;
  const std::uint64_t ops = util::env_u64("RDMASEM_HT_OPS", 600);
  std::vector<std::unique_ptr<ht::FrontEnd>> workers;
  sim::CountdownLatch done(rig.eng, fes * pipeline);
  sim::Time end = 0;
  std::vector<std::byte> value(cfg.value_size);
  for (std::uint32_t i = 0; i < fes; ++i) {
    workers.push_back(table.add_front_end(*rig.ctx[1 + i % 7], (i / 7) % 2));
    for (std::uint32_t w = 0; w < pipeline; ++w) {
      auto loop = [](wl::Rig& r, ht::FrontEnd& f, const ht::Config& c,
                     std::uint32_t id, std::uint64_t n,
                     std::vector<std::byte>& v, sim::CountdownLatch& d,
                     sim::Time& e) -> sim::Task {
        wl::ZipfGenerator zipf(c.num_keys, 0.99, 300 + id);
        for (std::uint64_t k = 0; k < n; ++k) co_await f.put(zipf.next(), v);
        e = std::max(e, r.eng.now());
        d.count_down();
        if (d.remaining() == 0) co_await f.drain();
      };
      rig.eng.spawn(
          loop(rig, *workers.back(), cfg, i * pipeline + w, ops, value,
               done, end));
    }
  }
  rig.eng.run();
  return static_cast<double>(fes) * pipeline * static_cast<double>(ops) /
         sim::to_us(end);
}

void BM_fig13a(benchmark::State& state) {
  const auto denom = static_cast<std::uint32_t>(state.range(0));
  double mops = 0;
  for (auto _ : state) {
    mops = run_config(1.0 / denom, 16);
    state.SetIterationTime(1e-3);
  }
  state.counters["MOPS"] = mops;
  collector.add({"a:hot-prop", "1/" + std::to_string(denom),
                 util::fmt(mops)});
}

void BM_fig13b(benchmark::State& state) {
  const auto theta = static_cast<std::uint32_t>(state.range(0));
  double mops = 0;
  for (auto _ : state) {
    mops = run_config(1.0 / 4, theta);
    state.SetIterationTime(1e-3);
  }
  state.counters["MOPS"] = mops;
  collector.add({"b:theta", std::to_string(theta), util::fmt(mops)});
}

BENCHMARK(BM_fig13a)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fig13b)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
