// Selfbench — the engine measuring itself, in WALL-CLOCK time.
//
// Every other bench in this directory reports SIMULATED time, which by
// construction cannot regress when the scheduler gets slower. This binary
// is the host-side complement: it times the event loop with
// std::chrono::steady_clock and reports events/sec, so a regression in the
// calendar queue, InlineFn dispatch, or the coroutine frame pool shows up
// as a number CI can gate on (scripts/perf_gate.py).
//
// Workloads:
//   dispatch  — 64 self-rescheduling actors with a tiered delay mix
//               (immediate / intra-bucket / overflow) driven through BOTH
//               the current sim::Engine and an embedded copy of the
//               pre-calendar-queue engine (binary heap of std::function
//               events, `legacy` namespace below). The identical workload
//               on both yields the machine-independent `speedup` row the
//               perf gate checks against its floor.
//   coro      — coroutine churn: tasks looping over co_await delay(),
//               exercising frame-pool reuse and the resume fast path.
//   e2e_micro — fig01-style closed-loop RDMA write microbench (4 QPs,
//               window 16) timed end to end.
//   datapath  — large-payload write/read storm mixing single-SGE and
//               multi-SGE WRs, run once on the tuned verbs datapath
//               (zero-copy borrow + payload pool + cost fusing + wakeup
//               elision) and once with every knob off. The fast/legacy
//               WR-throughput ratio is machine-independent and gated
//               (scripts/perf_gate.py --min-datapath-speedup). A second
//               criterion rides along: datapath_allocs/steady counts
//               global-allocator hits during a steady-state single-SGE
//               write loop via the operator new hook below — the gate
//               requires exactly zero.
//   e2e_shuffle — fig15-style small all-to-all shuffle timed end to end.
//   parallel  — a 16-machine all-to-all shuffle over a two-tier
//               leaf/spine fabric (4 leaves x 4 machines), run serially
//               and again at RDMASEM_SHARDS=2/4. The shard4/serial
//               wall-clock ratio is the perf-gate criterion for the
//               conservative-epoch parallel engine (enforced only on
//               hosts with >= 4 cores; the parallel_cpus row records the
//               host's core count so the gate can tell). The leaf
//               topology exercises the per-(src,dst)-shard lookahead
//               matrix: leaf-aligned placement makes cross-shard traffic
//               pay the spine hop, widening epochs ~2.5x over the flat
//               global minimum.
//
// Rows land in BENCH_selfbench_engine.json (rdmasem-bench-v1 schema; the
// `mops` field carries millions of events per second, or the raw ratio for
// the speedup row). Wall-clock numbers are machine-dependent: the checked
// in bench/selfbench_baseline.json is compared with a tolerance, and the
// speedup row is the portable criterion. See docs/PERF.md.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "apps/shuffle/shuffle.hpp"
#include "bench_common.hpp"
#include "sim/engine.hpp"
#include "verbs/payload.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook: every global-allocator acquisition in this
// process bumps one relaxed atomic. The steady-state datapath loop below
// snapshots it around a warmed single-SGE write storm; any WR-rate heap
// traffic (a regressed pool, a re-allocating waiter table, a copied SGE
// vector) shows up as a non-zero delta the perf gate rejects. Deletes are
// not counted — a leak is the sanitizers' job; steady-state *acquisition*
// is the perf property.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* counted_alloc(std::size_t n, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace rdmasem;
using bench::FigureCollector;
using bench::MicroRig;

FigureCollector collector(
    "Selfbench  Engine hot-path throughput (wall clock)",
    {"workload", "engine", "Mevents/s"});

// ---------------------------------------------------------------------------
// The pre-overhaul engine core, kept verbatim in shape: a binary-heap
// std::priority_queue of events whose callbacks are std::function (boxed on
// the heap for captures over the SBO limit), popped by copy exactly as the
// seed engine's run() did. Benchmarking it in-binary keeps the comparison
// honest across compilers and machines — both engines are built with the
// same flags in the same TU.
namespace legacy {

class Engine {
 public:
  sim::Time now() const { return now_; }

  void schedule_at(sim::Time at, std::function<void()> fn) {
    queue_.push(Event{std::max(at, now_), seq_++, std::move(fn)});
  }
  void schedule_in(sim::Duration delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  sim::Time run() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      ++processed_;
      ev.fn();
    }
    return now_;
  }

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    sim::Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  sim::Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Workload knobs (shrunk by the bench smoke tests via env).

std::uint64_t dispatch_budget() {
  return util::env_u64("RDMASEM_SELFBENCH_EVENTS", 2'000'000);
}
// Pending-event population. Real cluster runs keep thousands of events in
// flight (one per parked coroutine / NIC pipeline stage), which is exactly
// where the O(log n) heap loses to the O(1) calendar ring.
std::uint64_t dispatch_actors() {
  return util::env_u64("RDMASEM_SELFBENCH_ACTORS", 4096);
}
std::uint64_t coro_tasks() {
  return util::env_u64("RDMASEM_SELFBENCH_TASKS", 20'000);
}
std::uint64_t coro_hops() {
  return util::env_u64("RDMASEM_SELFBENCH_HOPS", 32);
}

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Wall-clock throughput is one-sided noise: a run can only be slowed down
// (scheduler preemption, cold caches), never sped up. Best-of-N is the
// standard estimator for the machine's true capability and what keeps the
// perf gate's 20% tolerance meaningful.
template <typename Fn>
double best_of(int n, Fn&& measure) {
  double best = 0;
  for (int i = 0; i < n; ++i) best = std::max(best, measure());
  return best;
}

// Self-rescheduling actor: every firing draws the next delay from a private
// LCG stream, mixing immediates (same-timestamp FIFO path), short delays
// (calendar ring) and far delays (overflow heap). The two extra captured
// words push the closure past std::function's SBO — matching the real
// capture sizes in fabric/rnic callbacks — while staying inside InlineFn's
// 32 bytes.
template <typename Eng>
struct Actor {
  Eng* eng;
  std::uint64_t* remaining;
  std::uint64_t rng;

  void fire() {
    if (*remaining == 0) return;
    --*remaining;
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t r = rng >> 33;
    // Mix mirrors a cluster run: mostly sub-horizon NIC/link/DMA delays
    // (ns to low µs), some same-timestamp wakeups, a tail of long timers.
    sim::Duration d = 0;
    const std::uint64_t k = r & 15;
    if (k < 4) {
      d = 0;                                        // immediate wakeup
    } else if (k < 5) {
      d = r % 8192;                                 // same/adjacent slot
    } else if (k < 15) {
      d = r % (1u << 21);                           // within the ring horizon
    } else {
      d = (1u << 21) + r % (1u << 24);              // long timer -> overflow
    }
    const std::uint64_t pad0 = rng, pad1 = r;
    eng->schedule_in(d, [this, pad0, pad1] {
      benchmark::DoNotOptimize(pad0 + pad1);
      fire();
    });
  }
};

template <typename Eng>
double dispatch_mevents_per_sec(std::uint64_t budget) {
  Eng eng;
  std::uint64_t remaining = budget;
  const std::uint64_t n_actors = dispatch_actors();
  std::vector<Actor<Eng>> actors;
  actors.reserve(n_actors);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t a = 0; a < n_actors; ++a) {
    actors.push_back(Actor<Eng>{&eng, &remaining, a * 7919 + 1});
    actors.back().fire();
  }
  eng.run();
  const double sec = secs_since(t0);
  return static_cast<double>(eng.events_processed()) / sec / 1e6;
}

double coro_mevents_per_sec(std::uint64_t tasks, std::uint64_t hops) {
  sim::Engine eng;
  for (std::uint64_t t = 0; t < tasks; ++t) {
    eng.spawn([](sim::Engine& e, std::uint64_t n,
                 std::uint64_t seed) -> sim::Task {
      std::uint64_t s = seed;
      for (std::uint64_t i = 0; i < n; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        co_await sim::delay(e, (s >> 33) % sim::us(1));
      }
    }(eng, hops, t + 1));
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const double sec = secs_since(t0);
  return static_cast<double>(eng.events_processed()) / sec / 1e6;
}

// One 16-machine all-to-all shuffle at the given shard count, timed end to
// end. RDMASEM_SHARDS is read at Cluster construction, so it is pinned
// around the Rig and restored after. The fabric is a two-tier leaf/spine
// (4 leaves x 4 machines): the leaf-aware shard placement aligns shards
// with leaves, so every cross-shard pair pays the spine hop and the
// per-pair lookahead matrix widens epochs well past the flat-fabric
// minimum — the regime the conservative-epoch engine is built for.
double parallel_shuffle_mev(std::uint32_t shards) {
  const char* old = std::getenv("RDMASEM_SHARDS");
  const std::string saved = old ? old : "";
  setenv("RDMASEM_SHARDS", std::to_string(shards).c_str(), 1);
  const auto w0 = std::chrono::steady_clock::now();
  double mev = 0;
  {
    hw::ModelParams p = hw::ModelParams::connectx3_cluster();
    p.machines = 16;
    p.net_machines_per_leaf = 4;
    wl::Rig rig(p);
    // Force the Plane-2 engine profile on for the parallel sweep even
    // when RDMASEM_PROF is unset: perf_gate.py budgets the shard-4
    // barrier-park share from this report's engine-profile groups, so
    // they must always be present. Both sides of the gated serial/shard-4
    // ratio run profiled, so the timer overhead cancels out of it.
    rig.eng.set_profiling(true);
    apps::shuffle::Config cfg;
    cfg.machines = 16;
    cfg.executors = 16;
    cfg.entries_per_executor = util::env_u64("RDMASEM_SHUFFLE_ENTRIES", 6000);
    cfg.batch = apps::shuffle::BatchMode::kSgl;
    apps::shuffle::Shuffle shuffle(rig.contexts(), cfg);
    shuffle.run();
    bench::absorb(rig.cluster);
    mev = static_cast<double>(rig.eng.events_processed()) / secs_since(w0) /
          1e6;
  }
  if (old)
    setenv("RDMASEM_SHARDS", saved.c_str(), 1);
  else
    unsetenv("RDMASEM_SHARDS");
  return mev;
}

// ---------------------------------------------------------------------------
// Datapath workload: a large-payload write/read storm mixing single-SGE
// writes (the zero-copy route), 4-SGE gathers (pooled staging) and reads
// (response staging), window 1 on one QP — the uncontended latency regime
// the inline-wakeup fast path targets. Returns millions of WRs per
// wall-clock second. `fast` selects the tuned datapath; legacy turns off
// every verbs knob AND the engine's inline wakeup elision — the shape of
// the datapath before this optimisation pass. Both run in this process on
// the same build, so the ratio is machine-independent and gated
// (perf_gate.py --min-datapath-speedup).
double datapath_mwrs_per_sec(bool fast) {
  const verbs::DatapathTuning saved = verbs::datapath_tuning();
  verbs::datapath_tuning() = fast ? verbs::DatapathTuning{}
                                  : verbs::DatapathTuning{false, false, false};
  const std::uint64_t ops =
      util::env_u64("RDMASEM_SELFBENCH_DATAPATH_OPS", 12000);
  double mwrs = 0;
  {
    const auto w0 = std::chrono::steady_clock::now();
    MicroRig rig(1 << 20, 1 << 20, 1);
    if (!fast) rig.rig.eng.set_inline_wakeups(false);
    wl::ClientSpec spec;
    spec.qps = rig.qps;
    spec.window = 1;
    spec.ops_per_client = ops;
    verbs::MemoryRegion* l = rig.lmr;
    verbs::MemoryRegion* r = rig.rmr;
    spec.make_wr = [l, r](std::uint32_t, std::uint64_t s) {
      const std::uint64_t off = (s % 64) * (8 << 10);
      if (s % 4 == 2) {
        // The same 8 KB as a 4-element gather list.
        verbs::WorkRequest wr;
        wr.opcode = verbs::Opcode::kWrite;
        for (std::uint64_t i = 0; i < 4; ++i)
          wr.sg_list.push_back(
              {l->addr + off + i * 2048, 2048, l->key});
        wr.remote_addr = r->addr + off;
        wr.rkey = r->key;
        return wr;
      }
      if (s % 4 == 3) return wl::make_read(*l, off, *r, off, 8 << 10);
      return wl::make_write(*l, off, *r, off, 8 << 10);
    };
    const wl::BenchResult res = wl::run_closed_loop(rig.rig.eng, spec);
    benchmark::DoNotOptimize(res.errors);
    mwrs = static_cast<double>(ops * rig.qps.size()) / secs_since(w0) / 1e6;
  }
  verbs::datapath_tuning() = saved;
  return mwrs;
}

// Steady-state allocation probe: after a warm-up that grows every lazy
// structure on the path (coroutine frame pools, the QP waiter table,
// resource FIFOs, calendar ring slots, payload pool classes), a single-SGE
// write loop must not touch the global allocator at all. Returns the
// number of allocator hits over 512 steady-state WRs — the gate requires
// exactly zero. (Sanitizer builds pass buffers straight through the pools
// by design, so this row is only meaningful — and only gated — on plain
// builds, where the perf gate runs.)
std::uint64_t datapath_steady_allocs() {
  MicroRig rig(1 << 16, 1 << 16, 1);
  std::uint64_t delta = ~0ull;
  auto loop = [](MicroRig& r, std::uint64_t* out) -> sim::Task {
    for (int i = 0; i < 256; ++i)
      (void)co_await r.qps[0]->execute(
          wl::make_write(*r.lmr, 0, *r.rmr, 0, 4096));
    const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 512; ++i)
      (void)co_await r.qps[0]->execute(
          wl::make_write(*r.lmr, 0, *r.rmr, 0, 4096));
    *out = g_heap_allocs.load(std::memory_order_relaxed) - a0;
  };
  rig.rig.eng.spawn(loop(rig, &delta));
  rig.rig.eng.run();
  return delta;
}

double add(const char* workload, const char* engine, double mev) {
  collector.add({workload, engine, util::fmt(mev)});
  bench::point_mops(workload, engine, mev);
  return mev;
}

void BM_selfbench(benchmark::State& state) {
  double legacy_mev = 0, calendar_mev = 0, coro_mev = 0;
  double micro_mev = 0, shuffle_mev = 0;
  double par1_mev = 0, par2_mev = 0, par4_mev = 0;
  double dp_fast = 0, dp_legacy = 0;
  std::uint64_t dp_allocs = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();

    legacy_mev = add("dispatch", "legacy", best_of(3, [] {
      return dispatch_mevents_per_sec<legacy::Engine>(dispatch_budget());
    }));
    calendar_mev = add("dispatch", "calendar", best_of(3, [] {
      return dispatch_mevents_per_sec<sim::Engine>(dispatch_budget());
    }));
    bench::point_mops("speedup", "dispatch", calendar_mev / legacy_mev);
    collector.add({"speedup", "calendar/legacy",
                   util::fmt(calendar_mev / legacy_mev)});

    coro_mev = add("coro", "calendar", best_of(3, [] {
      return coro_mevents_per_sec(coro_tasks(), coro_hops());
    }));

    micro_mev = add("e2e_micro", "calendar", best_of(2, [] {
      // fig01-style closed-loop write microbench, timed end to end.
      const auto w0 = std::chrono::steady_clock::now();
      MicroRig rig(1 << 14, 1 << 14, 4);
      rig.run(wl::make_write(*rig.lmr, 0, *rig.rmr, 0, 64), 16,
              bench::micro_ops(4000));
      return static_cast<double>(rig.rig.eng.events_processed()) /
             secs_since(w0) / 1e6;
    }));
    dp_fast = add("datapath", "fast", best_of(2, [] {
      return datapath_mwrs_per_sec(true);
    }));
    dp_legacy = add("datapath", "legacy", best_of(2, [] {
      return datapath_mwrs_per_sec(false);
    }));
    bench::point_mops("speedup", "datapath", dp_fast / dp_legacy);
    collector.add({"speedup", "datapath fast/legacy",
                   util::fmt(dp_fast / dp_legacy)});
    dp_allocs = datapath_steady_allocs();
    bench::point_mops("datapath_allocs", "steady",
                      static_cast<double>(dp_allocs));
    collector.add({"datapath_allocs", "steady (512 WRs)",
                   std::to_string(dp_allocs)});

    par1_mev = add("parallel", "serial", best_of(2, [] {
      return parallel_shuffle_mev(1);
    }));
    par2_mev = add("parallel", "shard2", best_of(2, [] {
      return parallel_shuffle_mev(2);
    }));
    par4_mev = add("parallel", "shard4", best_of(2, [] {
      return parallel_shuffle_mev(4);
    }));
    bench::point_mops("speedup", "par4", par4_mev / par1_mev);
    collector.add({"speedup", "shard4/serial",
                   util::fmt(par4_mev / par1_mev)});
    // The gate only enforces the parallel floor when the host actually
    // has the cores to show a speedup.
    bench::point_mops("parallel_cpus", "host",
                      static_cast<double>(
                          std::thread::hardware_concurrency()));

    shuffle_mev = add("e2e_shuffle", "calendar", best_of(2, [] {
      // fig15-style small all-to-all shuffle, timed end to end.
      const auto w0 = std::chrono::steady_clock::now();
      wl::Rig rig(hw::ModelParams::connectx3_cluster());
      apps::shuffle::Config cfg;
      cfg.machines = 4;
      cfg.executors = 4;
      cfg.entries_per_executor =
          util::env_u64("RDMASEM_SHUFFLE_ENTRIES", 6000);
      cfg.batch = apps::shuffle::BatchMode::kSgl;
      apps::shuffle::Shuffle shuffle(rig.contexts(), cfg);
      shuffle.run();
      bench::absorb(rig.cluster);
      return static_cast<double>(rig.eng.events_processed()) /
             secs_since(w0) / 1e6;
    }));

    state.SetIterationTime(secs_since(t0));
  }
  state.counters["legacy_Mev"] = legacy_mev;
  state.counters["calendar_Mev"] = calendar_mev;
  state.counters["speedup"] = calendar_mev / legacy_mev;
  state.counters["coro_Mev"] = coro_mev;
  state.counters["e2e_micro_Mev"] = micro_mev;
  state.counters["e2e_shuffle_Mev"] = shuffle_mev;
  state.counters["par_serial_Mev"] = par1_mev;
  state.counters["par_shard2_Mev"] = par2_mev;
  state.counters["par_shard4_Mev"] = par4_mev;
  state.counters["par_speedup"] = par1_mev > 0 ? par4_mev / par1_mev : 0;
  state.counters["datapath_fast_MWRs"] = dp_fast;
  state.counters["datapath_legacy_MWRs"] = dp_legacy;
  state.counters["datapath_speedup"] = dp_legacy > 0 ? dp_fast / dp_legacy : 0;
  state.counters["datapath_steady_allocs"] = static_cast<double>(dp_allocs);
}

BENCHMARK(BM_selfbench)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
