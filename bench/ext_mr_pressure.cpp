// Extension — MR pressure (§II-B2): "with a large number of MRs the
// performance degrades greatly. We use 10x MRs; the access latency of
// 32 bytes drops about 60%." Many registered regions thrash the RNIC's
// SRAM (each MR costs a state entry + its translation entries).
//
// Sweep the MR count at fixed total footprint and measure 32 B write
// latency round-robin across the MRs.

#include "bench_common.hpp"
#include "sim/sync.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. MR pressure: 32 B write latency vs registered-MR count",
    {"MRs", "lat_us", "vs_baseline", "server_mcache_hit"});

double latency_with_mrs(std::uint32_t mr_count, std::uint64_t ops,
                        double* hit) {
  wl::Rig rig;
  verbs::Buffer src(4096);
  auto* lmr = rig.ctx[0]->register_buffer(src, 1);
  // mr_count remote regions, one page each.
  std::vector<verbs::Buffer> bufs;
  std::vector<verbs::MemoryRegion*> mrs;
  bufs.reserve(mr_count);
  for (std::uint32_t i = 0; i < mr_count; ++i) {
    bufs.emplace_back(8192);
    mrs.push_back(rig.ctx[1]->register_buffer(bufs.back(), 1));
  }
  auto conn = rig.connect(0, 1);
  wl::ClientSpec spec;
  spec.qps = {conn.local};
  spec.window = 1;
  spec.ops_per_client = ops;
  std::uint64_t i = 0;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    auto* mr = mrs[i++ % mrs.size()];
    return wl::make_write(*lmr, 0, *mr, 0, 32);
  };
  const auto r = wl::run_closed_loop(rig.eng, spec);
  if (hit) *hit = rig.cluster.machine(1).rnic().mcache().hit_rate();
  return r.avg_latency_us;
}

double g_baseline = 0;

void BM_ext_mr(benchmark::State& state) {
  const auto mrs = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t ops = bench::micro_ops(3000);
  double lat = 0, hit = 0;
  for (auto _ : state) {
    lat = latency_with_mrs(mrs, ops, &hit);
    state.SetIterationTime(1e-3);
  }
  if (state.range(0) == 64) g_baseline = lat;
  state.counters["lat_us"] = lat;
  state.counters["mcache_hit"] = hit;
  collector.add({std::to_string(mrs), util::fmt(lat),
                 g_baseline > 0 ? util::fmt(lat / g_baseline) + "x" : "-",
                 util::fmt(hit, 3)});
}

BENCHMARK(BM_ext_mr)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(640)->Arg(1280)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
