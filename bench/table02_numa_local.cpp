// Table II — local vs remote-socket DRAM latency/bandwidth (Intel MLC
// style, via the host memory model).
//
// Paper anchors: 92 ns / 3.70 GB/s local socket; 162 ns / 2.27 GB/s
// remote socket.

#include "bench_common.hpp"
#include "hw/dram.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Table II  Local vs remote socket DRAM (MLC-style)",
    {"type", "latency_ns", "bandwidth_GBps"});

void BM_table2(benchmark::State& state) {
  const bool remote = state.range(0) != 0;
  hw::ModelParams p;
  hw::DramModel dram(p);
  double lat = 0, bw = 0;
  for (auto _ : state) {
    lat = sim::to_ns(dram.idle_latency(!remote));
    // Streaming bandwidth: time N MB of sequential traffic.
    const std::size_t chunk = 1 << 20;
    const int chunks = 64;
    sim::Duration total = 0;
    for (int i = 0; i < chunks; ++i) total += dram.stream(chunk, !remote);
    bw = static_cast<double>(chunk) * chunks / sim::to_sec(total) / 1e9;
    state.SetIterationTime(sim::to_sec(total));
  }
  state.counters["latency_ns"] = lat;
  state.counters["bandwidth_GBps"] = bw;
  collector.add({remote ? "remote socket" : "local socket",
                 util::fmt(lat, 0), util::fmt(bw)});
}

BENCHMARK(BM_table2)
    ->Arg(0)->Arg(1)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
