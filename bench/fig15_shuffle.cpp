// Fig. 15 — Distributed shuffle: throughput vs executor count for Basic /
// +SGL(4) / +SGL(16) / +SP(4) / +SP(16).
//
// Paper shape: at 16 executors and batch 16, SGL/SP reach ~4.8x/5.8x the
// basic shuffle; SGL scales worse at large batch sizes.

#include "apps/shuffle/shuffle.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace sh = apps::shuffle;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 15  Distributed shuffle (MOPS vs executors)",
    {"executors", "Basic", "+SGL(4)", "+SGL(16)", "+SP(4)", "+SP(16)"});

double run_shuffle(std::uint32_t executors, sh::BatchMode mode,
                   std::uint32_t batch) {
  wl::Rig rig;
  sh::Config cfg;
  cfg.executors = executors;
  cfg.entries_per_executor = util::env_u64("RDMASEM_SHUFFLE_ENTRIES", 6000);
  cfg.batch = mode;
  cfg.batch_size = batch;
  cfg.numa_aware = true;
  sh::Shuffle s(rig.contexts(), cfg);
  const auto r = s.run();
  RDMASEM_CHECK_MSG(s.received_checksum() == s.sent_checksum(),
                    "shuffle corrupted data");
  // Engine-profile drain only (not the full obs absorb): under
  // RDMASEM_PROF=1 the scaling battery reads events-per-epoch and the
  // barrier-park share from this report; disabled snapshots are skipped,
  // so the byte-compared unprofiled reports are unaffected.
  bench::engine_profile().absorb(rig.eng.drain_profile());
  return r.mops;
}

void BM_fig15(benchmark::State& state) {
  const auto execs = static_cast<std::uint32_t>(state.range(0));
  double basic = 0, sgl4 = 0, sgl16 = 0, sp4 = 0, sp16 = 0;
  for (auto _ : state) {
    basic = run_shuffle(execs, sh::BatchMode::kNone, 1);
    sgl4 = run_shuffle(execs, sh::BatchMode::kSgl, 4);
    sgl16 = run_shuffle(execs, sh::BatchMode::kSgl, 16);
    sp4 = run_shuffle(execs, sh::BatchMode::kSp, 4);
    sp16 = run_shuffle(execs, sh::BatchMode::kSp, 16);
    state.SetIterationTime(1e-3);
  }
  state.counters["basic_MOPS"] = basic;
  state.counters["sgl16_MOPS"] = sgl16;
  state.counters["sp16_MOPS"] = sp16;
  collector.add({std::to_string(execs), util::fmt(basic), util::fmt(sgl4),
                 util::fmt(sgl16), util::fmt(sp4), util::fmt(sp16)});
}

BENCHMARK(BM_fig15)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
