// Extension — multi-tenant service scaling (the RDMAvisor experiment).
// Thousands of tenants (machines 1..7) drive hashtable puts/gets and
// dlog-style appends against one storage server (machine 0) through
// three service tiers:
//
//   RC      one private RC QP pair per tenant. Past mcache capacity
//           (rnic_sram_entries / rnic_weight_qp ≈ 256 QP contexts) the
//           server RNIC's SRAM thrashes and every inbound op pays
//           metadata-miss stalls — throughput collapses.
//   BROKER  per-host connection brokers (svc::Broker) multiplex all
//           tenants of a client machine over a few pooled RC QPs; the
//           server drains SENDs from one SRQ. Server QP state stays
//           O(hosts) however many tenants sign up.
//   DC      per-tenant dynamically-connected QPs targeting one server
//           DCT; initiator contexts attach per burst and detach when
//           idle, so SRAM pressure follows ACTIVE flows, not tenants.
//
// Op mix per tenant (seq % 8): one 32 B SEND (7), one dlog append =
// FAA tail claim + 64 B record WRITE (3), the rest alternating
// hashtable put (WRITE) / get (READ) against the app's cold-area
// layout. Throughput counts logical ops; p99 is per-op latency.
//
// Determinism: each tenant accumulates into its own per-tenant struct on
// its own machine's lane; the driver merges in tenant order after run().
// Receive buffers (per-QP RECVs and SRQ entries) are all pre-posted at
// setup — counts are a pure function of the op mix — so no cross-lane
// replenishment runs mid-measurement.

#include <memory>

#include "apps/hashtable/hashtable.hpp"
#include "bench_common.hpp"
#include "sim/sync.hpp"
#include "svc/broker.hpp"
#include "util/stats.hpp"
#include "verbs/srq.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. tenant scaling: service MOPS & p99 vs tenant count "
    "(RC-per-tenant vs broker+SRQ vs DC)",
    {"tenants", "RC", "BROKER", "DC", "RC_p99us", "BR_p99us", "DC_p99us",
     "RC_srv_hit", "BR_rejected"});

constexpr std::uint32_t kTenantMachines = 7;  // clients on machines 1..7
constexpr std::uint32_t kValBytes = 64;       // ht value / dlog record
constexpr std::uint32_t kMsgBytes = 32;       // SEND payload
constexpr std::uint64_t kNumKeys = 4096;
constexpr std::uint64_t kDlogSlots = 2048;    // record ring on the server
constexpr std::size_t kBrokerPoolQps = 4;     // pooled QPs per client host
constexpr std::uint64_t kScratchStride = 256; // per-tenant client scratch

// Total logical ops per sweep point, split evenly across tenants.
std::uint64_t tenant_ops_total() {
  return util::env_u64("RDMASEM_TENANT_OPS", 48000);
}

enum class Mode { kRc, kBroker, kDc };

// Op kind for (tenant, seq). The phase is offset per tenant so the mix is
// de-synchronized across the fleet: without the offset, FIFO-fair service
// marches every tenant through the same seq in lockstep and the whole
// fleet bursts its atomics (or SENDs) at once — a thundering-herd artifact
// rather than a steady multi-tenant mix.
std::uint32_t op_phase(std::uint32_t tenant, std::uint64_t seq) {
  return static_cast<std::uint32_t>((seq + tenant) % 8);
}

// Exact number of SENDs tenant will issue in [0, ops) — phase 7 ops.
std::uint64_t sends_for(std::uint32_t tenant, std::uint64_t ops) {
  const std::uint64_t first = (7 + 8 - tenant % 8) % 8;  // smallest phase-7 seq
  return ops > first ? (ops - first + 7) / 8 : 0;
}

// The shared storage server: the hashtable app's backend image (all-cold
// layout), a dlog tail counter + record ring, and a SEND landing area.
struct Server {
  apps::hashtable::Config ht_cfg;
  std::unique_ptr<apps::hashtable::Backend> ht;
  verbs::Buffer dlog_buf{8 + kDlogSlots * kValBytes};
  verbs::MemoryRegion* dlog_mr = nullptr;
  verbs::Buffer recv_buf{1 << 15};
  verbs::MemoryRegion* recv_mr = nullptr;

  explicit Server(verbs::Context& ctx) {
    ht_cfg.num_keys = kNumKeys;
    ht_cfg.value_size = kValBytes;
    ht_cfg.versions = 1;
    ht_cfg.hot_fraction = 0.0;  // all keys in the cold (one-sided) area
    ht = std::make_unique<apps::hashtable::Backend>(ctx, ht_cfg);
    dlog_mr = ctx.register_buffer(dlog_buf, 1);
    recv_mr = ctx.register_buffer(recv_buf, 1);
  }

  verbs::Sge recv_sge(std::uint64_t i) const {
    const std::uint64_t slot = i % (recv_buf.size() / kValBytes);
    return {recv_mr->addr + slot * kValBytes, kMsgBytes, recv_mr->key};
  }
};

// Per-tenant accumulator, written only from the tenant's machine lane and
// merged by the driver in tenant order after the run.
struct TenantShared {
  util::Samples lat_us;
  std::uint64_t done = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;
  sim::Time end = 0;
};

struct TenantCtx {
  Mode mode = Mode::kRc;
  std::uint32_t tenant = 0;
  std::uint64_t ops = 0;
  verbs::QueuePair* qp = nullptr;   // RC pair / DC initiator
  verbs::QueuePair* dct = nullptr;  // DC target (per-WR ud_dest)
  svc::Broker* broker = nullptr;
  verbs::MemoryRegion* scratch_mr = nullptr;
  std::uint64_t scratch = 0;  // this tenant's slot base address
  Server* srv = nullptr;
  TenantShared* out = nullptr;
  sim::CountdownLatch* done = nullptr;
};

sim::TaskT<verbs::Completion> issue(TenantCtx& c, verbs::WorkRequest wr) {
  if (c.mode == Mode::kBroker) {
    svc::SubmitResult r = co_await c.broker->submit(c.tenant, std::move(wr));
    if (r.admission == svc::Admission::kRejected) {
      ++c.out->rejected;
      verbs::Completion fail;
      fail.status = verbs::Status::kWrFlushedError;
      co_return fail;
    }
    co_return r.completion;
  }
  if (c.mode == Mode::kDc) wr.ud_dest = c.dct;
  co_return co_await c.qp->execute(std::move(wr));
}

sim::Task tenant_loop(sim::Engine& eng, TenantCtx c) {
  auto& ht = *c.srv->ht;
  for (std::uint64_t seq = 0; seq < c.ops; ++seq) {
    const sim::Time t0 = eng.now();
    const std::uint32_t phase = op_phase(c.tenant, seq);
    verbs::Completion last;
    if (phase == 7) {
      // Two-sided RPC: 32 B SEND into per-QP RECVs (RC) or the SRQ.
      verbs::WorkRequest wr;
      wr.opcode = verbs::Opcode::kSend;
      wr.sg_list = {{c.scratch + 192, kMsgBytes, c.scratch_mr->key}};
      last = co_await issue(c, std::move(wr));
    } else if (phase == 3) {
      // dlog-style append: FAA claims the tail, WRITE lands the record.
      verbs::WorkRequest faa;
      faa.opcode = verbs::Opcode::kFetchAdd;
      faa.sg_list = {{c.scratch + 128, 8, c.scratch_mr->key}};
      faa.remote_addr = c.srv->dlog_mr->addr;
      faa.rkey = c.srv->dlog_mr->key;
      faa.swap_or_add = kValBytes;
      const verbs::Completion claimed = co_await issue(c, std::move(faa));
      if (!claimed.ok()) {
        ++c.out->errors;
        ++c.out->done;
        continue;
      }
      const std::uint64_t slot = (claimed.atomic_old / kValBytes) % kDlogSlots;
      verbs::WorkRequest wr;
      wr.opcode = verbs::Opcode::kWrite;
      wr.sg_list = {{c.scratch, kValBytes, c.scratch_mr->key}};
      wr.remote_addr = c.srv->dlog_mr->addr + 8 + slot * kValBytes;
      wr.rkey = c.srv->dlog_mr->key;
      last = co_await issue(c, std::move(wr));
    } else {
      // Hashtable cold-area op: put = WRITE the slot, get = READ it.
      const std::uint64_t key =
          (c.tenant * 2654435761ULL + seq) % kNumKeys;
      auto* reg = ht.region(ht.socket_of(key));
      verbs::WorkRequest wr;
      wr.opcode =
          phase % 2 == 0 ? verbs::Opcode::kWrite : verbs::Opcode::kRead;
      const std::uint64_t local =
          phase % 2 == 0 ? c.scratch : c.scratch + kValBytes;
      wr.sg_list = {{local, kValBytes, c.scratch_mr->key}};
      wr.remote_addr = ht.cold_slot_addr(key, 0);
      wr.rkey = reg->key;
      last = co_await issue(c, std::move(wr));
    }
    if (!last.ok()) ++c.out->errors;
    c.out->lat_us.add(sim::to_us(eng.now() - t0));
    ++c.out->done;
  }
  c.out->end = eng.now();
  c.done->count_down();
}

struct RunResult {
  wl::BenchResult bench;
  double srv_hit = 0;   // server mcache hit rate
  std::uint64_t rejected = 0;
  std::uint64_t srv_qps = 0;  // QP endpoints living on the server
};

RunResult run_mode(Mode mode, std::uint32_t tenants) {
  wl::Rig rig;
  auto& sctx = *rig.ctx[0];
  Server srv(sctx);

  const std::uint64_t total = tenant_ops_total();
  const std::uint64_t ops = std::max<std::uint64_t>(8, total / tenants);

  // Client-side scratch: one MR per client machine, one 256 B slot per
  // tenant (WRITE source, READ landing, FAA result, SEND source).
  std::vector<std::unique_ptr<verbs::Buffer>> scratch_bufs;
  std::vector<verbs::MemoryRegion*> scratch_mrs;
  for (std::uint32_t m = 0; m < kTenantMachines; ++m) {
    const std::uint64_t on_m = tenants / kTenantMachines + 1;
    scratch_bufs.push_back(
        std::make_unique<verbs::Buffer>(on_m * kScratchStride));
    scratch_mrs.push_back(rig.ctx[1 + m]->register_buffer(*scratch_bufs[m], 1));
  }

  // Service endpoint per mode.
  verbs::SharedReceiveQueue* srq = nullptr;
  verbs::QueuePair* dct = nullptr;
  std::vector<std::unique_ptr<svc::Broker>> brokers;
  std::uint64_t srv_qps = 0;
  if (mode == Mode::kBroker) {
    srq = sctx.create_srq();
    for (std::uint32_t m = 0; m < kTenantMachines; ++m) {
      std::vector<verbs::QueuePair*> pool;
      for (std::size_t i = 0; i < kBrokerPoolQps; ++i) {
        auto ca = rig.paper_qp();
        ca.cq = rig.ctx[1 + m]->create_cq();
        auto cb = rig.paper_qp();
        cb.cq = sctx.create_cq();
        cb.srq = srq;
        auto* cl = rig.ctx[1 + m]->create_qp(ca);
        auto* sv = sctx.create_qp(cb);
        verbs::Context::connect(*cl, *sv);
        pool.push_back(cl);
        ++srv_qps;
      }
      brokers.push_back(std::make_unique<svc::Broker>(std::move(pool)));
    }
  } else if (mode == Mode::kDc) {
    srq = sctx.create_srq();
    auto scfg = rig.paper_qp();
    scfg.transport = verbs::Transport::kDc;
    scfg.cq = sctx.create_cq();
    scfg.srq = srq;
    dct = sctx.create_qp(scfg);
    srv_qps = 1;
  }

  // Tenants, their endpoints, and every receive buffer the op mix will
  // consume — pre-posted now so the measurement loop never replenishes.
  std::vector<std::unique_ptr<TenantShared>> shared(tenants);
  std::vector<TenantCtx> ctxs(tenants);
  sim::CountdownLatch done(rig.eng, tenants);
  std::vector<std::uint32_t> next_slot(kTenantMachines, 0);
  std::uint64_t srq_sends = 0;
  for (std::uint32_t t = 0; t < tenants; ++t) {
    const std::uint32_t m = t % kTenantMachines;
    shared[t] = std::make_unique<TenantShared>();
    shared[t]->lat_us.reserve(ops);
    TenantCtx& c = ctxs[t];
    c.mode = mode;
    c.tenant = t;
    c.ops = ops;
    c.srv = &srv;
    c.out = shared[t].get();
    c.done = &done;
    c.scratch_mr = scratch_mrs[m];
    c.scratch = scratch_mrs[m]->addr + next_slot[m]++ * kScratchStride;
    if (mode == Mode::kRc) {
      auto ca = rig.paper_qp();
      ca.cq = rig.ctx[1 + m]->create_cq();
      auto cb = rig.paper_qp();
      cb.cq = sctx.create_cq();
      auto* cl = rig.ctx[1 + m]->create_qp(ca);
      auto* sv = sctx.create_qp(cb);
      verbs::Context::connect(*cl, *sv);
      c.qp = cl;
      ++srv_qps;
      for (std::uint64_t i = 0; i < sends_for(t, ops); ++i)
        sv->post_recv({i, srv.recv_sge(t + i)});
    } else if (mode == Mode::kBroker) {
      c.broker = brokers[m].get();
      srq_sends += sends_for(t, ops);
    } else {
      auto ca = rig.paper_qp();
      ca.transport = verbs::Transport::kDc;
      ca.cq = rig.ctx[1 + m]->create_cq();
      c.qp = rig.ctx[1 + m]->create_qp(ca);
      c.dct = dct;
      srq_sends += sends_for(t, ops);
    }
  }
  for (std::uint64_t i = 0; i < srq_sends; ++i)
    srq->post({i, srv.recv_sge(i)});

  for (std::uint32_t t = 0; t < tenants; ++t) {
    const std::uint32_t lane = 1 + t % kTenantMachines + 1;
    rig.eng.spawn_on(lane, tenant_loop(rig.eng, ctxs[t]));
  }
  rig.eng.run();

  // Merge in tenant order (shard-count invariant).
  RunResult out;
  out.srv_qps = srv_qps;
  util::Samples all;
  sim::Time end = 0;
  std::uint64_t logical = 0, errors = 0;
  for (std::uint32_t t = 0; t < tenants; ++t) {
    TenantShared& s = *shared[t];
    for (std::size_t i = 0; i < s.lat_us.count(); ++i)
      all.add(s.lat_us.sample(i));
    logical += s.done;
    errors += s.errors;
    out.rejected += s.rejected;
    end = std::max(end, s.end);
  }
  out.bench.elapsed = end;
  out.bench.mops =
      end > 0 ? static_cast<double>(logical) / sim::to_us(end) : 0.0;
  out.bench.per_thread_mops = out.bench.mops / tenants;
  out.bench.avg_latency_us = all.mean();
  out.bench.p50_latency_us = all.percentile(50.0);
  out.bench.p99_latency_us = all.percentile(99.0);
  out.bench.p999_latency_us = all.percentile(99.9);
  out.bench.errors = errors;
  out.srv_hit = rig.cluster.machine(0).rnic().mcache().hit_rate();
  if (util::env_u64("RDMASEM_TENANT_DEBUG", 0) != 0) {
    std::fprintf(stderr, "mode=%d tenants=%u cli1_hit=%.4f json=%s\n",
                 static_cast<int>(mode), tenants,
                 rig.cluster.machine(1).rnic().mcache().hit_rate(),
                 rig.cluster.obs().metrics.json().c_str());
  }
  bench::absorb(rig.cluster);
  return out;
}

void BM_tenant_scale(benchmark::State& state) {
  const auto tenants = static_cast<std::uint32_t>(state.range(0));
  RunResult rc, br, dc;
  for (auto _ : state) {
    rc = run_mode(Mode::kRc, tenants);
    br = run_mode(Mode::kBroker, tenants);
    dc = run_mode(Mode::kDc, tenants);
    state.SetIterationTime(sim::to_sec(rc.bench.elapsed + br.bench.elapsed +
                                       dc.bench.elapsed));
  }
  state.counters["RC_MOPS"] = rc.bench.mops;
  state.counters["BROKER_MOPS"] = br.bench.mops;
  state.counters["DC_MOPS"] = dc.bench.mops;
  state.counters["RC_srv_mcache_hit"] = rc.srv_hit;
  state.counters["RC_server_qps"] = static_cast<double>(rc.srv_qps);
  state.counters["BROKER_server_qps"] = static_cast<double>(br.srv_qps);
  const std::string x = std::to_string(tenants);
  bench::point("RC", x, rc.bench);
  bench::point("BROKER", x, br.bench);
  bench::point("DC", x, dc.bench);
  bench::point_mops("RC_srv_hit", x, rc.srv_hit);
  collector.add({x, util::fmt(rc.bench.mops), util::fmt(br.bench.mops),
                 util::fmt(dc.bench.mops), util::fmt(rc.bench.p99_latency_us),
                 util::fmt(br.bench.p99_latency_us),
                 util::fmt(dc.bench.p99_latency_us), util::fmt(rc.srv_hit, 3),
                 std::to_string(br.rejected)});
}

BENCHMARK(BM_tenant_scale)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
