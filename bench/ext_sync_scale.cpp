// Extension — sync primitive scaling (docs/SYNC.md): the txkv flagship
// app under hot-key skew (zipf 0.99), swept over worker counts for every
// lock family. What the paper's §III-E microbenchmarks show for bare
// CAS/FAA words, this shows end to end: how the spinlock's retry storm,
// the backoff variant's damped storm, the MCS queue's FIFO handoffs and
// the lease's term-bounded grants translate into commit throughput and
// abort rate when an actual read-validate-write protocol sits on top.
//
// Reported per (lock, workers):
//   MOPS        committed txns + validated gets per simulated microsecond
//   abort_rate  aborts / (commits + aborts) — validation + fence failures
//   p50/p99 ns  lock-wait (request -> grant) from the virtual clock
//
// The BENCH json carries a "sync" section: per-point abort rates plus the
// merged lock-wait log2 histogram (validated by check_bench_json.py).

#include <cmath>

#include "apps/txkv/txkv.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace kv = apps::txkv;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. sync scaling (txkv, zipf 0.99, 16 keys, 50% gets)",
    {"lock", "workers", "MOPS", "abort_rate", "p50_wait_ns", "p99_wait_ns",
     "commits", "aborts"});

// Merged-across-runs lock-wait histogram + the per-point abort rows the
// json "sync" section carries.
struct SyncAgg {
  std::uint64_t buckets[util::Log2Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  std::string abort_rows;

  void fold(const util::Log2Histogram& h) {
    for (std::size_t i = 0; i < util::Log2Histogram::kBuckets; ++i)
      buckets[i] += h.bucket(i);
    count += h.count();
  }
  std::uint64_t quantile_bound(double q) const {
    if (count == 0) return 0;
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (target == 0) target = 1;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < util::Log2Histogram::kBuckets; ++i) {
      acc += buckets[i];
      if (acc >= target) return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
    return ~std::uint64_t{0};
  }
  std::string json() const {
    std::string out = "{\n    \"abort_rates\": [" + abort_rows + "\n    ],\n";
    out += "    \"lock_wait_ns\": {\"count\": " + std::to_string(count) +
           ", \"p50_bound_ns\": " + std::to_string(quantile_bound(0.5)) +
           ", \"p99_bound_ns\": " + std::to_string(quantile_bound(0.99)) +
           ", \"buckets\": [";
    bool first = true;
    for (std::size_t i = 0; i < util::Log2Histogram::kBuckets; ++i) {
      if (buckets[i] == 0) continue;
      out += first ? "" : ", ";
      first = false;
      out += "{\"le_ns\": " +
             std::to_string(i == 0 ? 0 : (std::uint64_t{1} << i) - 1) +
             ", \"count\": " + std::to_string(buckets[i]) + "}";
    }
    out += "]}\n  }";
    return out;
  }
};

SyncAgg g_agg;

struct LockSeries {
  const char* name;
  kv::LockMode mode;
};

constexpr LockSeries kSeries[] = {
    {"spin", kv::LockMode::kSpin},
    {"spin+bo", kv::LockMode::kSpinBackoff},
    {"mcs", kv::LockMode::kMcs},
    {"lease", kv::LockMode::kLease},
};

void BM_sync_scale(benchmark::State& state) {
  const auto& series = kSeries[state.range(0)];
  const auto workers = static_cast<std::uint32_t>(state.range(1));
  kv::Result r;
  std::uint64_t p50 = 0, p99 = 0;
  for (auto _ : state) {
    wl::Rig rig;
    kv::Config cfg;
    cfg.workers = workers;
    cfg.ops_per_worker = util::env_u64("RDMASEM_SYNC_OPS", 384);
    cfg.num_keys = util::env_u64("RDMASEM_SYNC_KEYS", 16);
    cfg.zipf_theta = 0.99;
    cfg.get_fraction = 0.5;
    cfg.lock = series.mode;
    cfg.mcs_max_clients = workers;
    cfg.seed = 42 + workers;
    cfg.record_history = false;  // perf run: no oracle bookkeeping
    kv::TxKv store(rig.contexts(), cfg);
    r = store.run();
    p50 = store.lock_wait_ns().quantile_bound(0.5);
    p99 = store.lock_wait_ns().quantile_bound(0.99);
    g_agg.fold(store.lock_wait_ns());
    bench::absorb(rig.cluster);
    state.SetIterationTime(sim::to_sec(r.elapsed));
  }
  state.counters["sim_MOPS"] = r.mops;
  state.counters["abort_rate"] = r.abort_rate;
  state.counters["p99_wait_ns"] = static_cast<double>(p99);

  const std::string x = std::to_string(workers);
  bench::point_mops(series.name, x, r.mops);
  collector.add({series.name, x, util::fmt(r.mops), util::fmt(r.abort_rate),
                 std::to_string(p50), std::to_string(p99),
                 std::to_string(r.commits), std::to_string(r.aborts)});
  if (!g_agg.abort_rows.empty()) g_agg.abort_rows += ",";
  g_agg.abort_rows += "\n      {\"series\": \"" + std::string(series.name) +
                      "\", \"x\": \"" + x +
                      "\", \"abort_rate\": " + util::fmt(r.abort_rate) +
                      ", \"commits\": " + std::to_string(r.commits) +
                      ", \"aborts\": " + std::to_string(r.aborts) + "}";
  bench::report().set_sync_json(g_agg.json());
}

void register_benches() {
  for (std::size_t s = 0; s < std::size(kSeries); ++s)
    for (const int w : {2, 4, 8, 16})
      benchmark::RegisterBenchmark("BM_sync_scale", BM_sync_scale)
          ->Args({static_cast<long>(s), w})
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
}
const int g_registered = (register_benches(), 0);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
