// Fig. 10 — local vs remote vs RPC atomic primitives vs thread count:
//   (a) spinlock (lock-unlock pairs/s), with and without exponential
//       backoff for the remote lock
//   (b) sequencer (tickets/s)
//
// Paper shape: local collapses hardest under contention (cache-line
// ping-pong); remote degrades least and backoff holds it up; remote
// sequencer flat at ~2.4-2.6 MOPS; RPC lowest (server-CPU-bound).

#include "bench_common.hpp"
#include "remem/atomics.hpp"
#include "remem/rpc.hpp"
#include "sim/sync.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 10  Atomic primitives vs thread count (MOPS)",
    {"threads", "lock:local", "lock:remote", "lock:remote+bo", "lock:rpc",
     "seq:local", "seq:remote", "seq:rpc"});

constexpr int kOpsPerThread = 400;

// --- spinlocks -------------------------------------------------------------

double local_lock_mops(std::uint32_t threads) {
  wl::Rig rig;
  auto& m = rig.cluster.machine(0);
  remem::LocalSpinlock lock(rig.eng, m, 1);
  std::uint64_t acq = 0;
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    auto worker = [](wl::Rig& r, remem::LocalSpinlock& l, std::uint32_t tid,
                     std::uint64_t& a, sim::Time& e) -> sim::Task {
      const hw::SocketId sock = tid % 2;
      for (int i = 0; i < kOpsPerThread; ++i) {
        co_await l.lock(sock);
        ++a;
        co_await l.unlock(sock);
      }
      e = std::max(e, r.eng.now());
    };
    rig.eng.spawn(worker(rig, lock, t, acq, end));
  }
  rig.eng.run();
  bench::absorb(rig.cluster);
  return static_cast<double>(acq) / sim::to_us(end);
}

double remote_lock_mops(std::uint32_t threads, bool backoff) {
  wl::Rig rig;
  verbs::Buffer lockmem(4096);
  auto* mr = rig.ctx[0]->register_buffer(lockmem, 1);
  std::vector<std::unique_ptr<remem::RemoteSpinlock>> locks;
  std::uint64_t acq = 0;
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    auto* qp = rig.connect(1 + t % 7, 0).local;
    locks.push_back(std::make_unique<remem::RemoteSpinlock>(
        *qp, mr->addr, mr->key,
        backoff ? remem::BackoffPolicy::exponential()
                : remem::BackoffPolicy::none()));
    auto worker = [](wl::Rig& r, remem::RemoteSpinlock& l, std::uint64_t& a,
                     sim::Time& e) -> sim::Task {
      for (int i = 0; i < kOpsPerThread; ++i) {
        co_await l.lock();
        ++a;
        co_await l.unlock();
      }
      e = std::max(e, r.eng.now());
    };
    rig.eng.spawn(worker(rig, *locks.back(), acq, end));
  }
  rig.eng.run();
  bench::absorb(rig.cluster);
  return static_cast<double>(acq) / sim::to_us(end);
}

double rpc_lock_mops(std::uint32_t threads) {
  wl::Rig rig;
  remem::RpcLockServiceState st;
  remem::RpcServer server(*rig.ctx[0], [&st](std::uint64_t op,
                                             std::uint64_t arg) {
    return st.handle(op, arg);
  });
  std::vector<std::unique_ptr<remem::RpcClient>> clients;
  std::uint64_t acq = 0;
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    clients.push_back(std::make_unique<remem::RpcClient>(
        *rig.ctx[1 + t % 7], rig.paper_qp()));
    verbs::Context::connect(*server.add_endpoint(), *clients.back()->qp());
    auto worker = [](wl::Rig& r, remem::RpcClient& c, std::uint64_t& a,
                     sim::Time& e) -> sim::Task {
      for (int i = 0; i < kOpsPerThread; ++i) {
        while (co_await c.call(remem::kRpcTryLock, 0) == 0) {
        }
        ++a;
        (void)co_await c.call(remem::kRpcUnlock, 0);
      }
      e = std::max(e, r.eng.now());
    };
    rig.eng.spawn(worker(rig, *clients.back(), acq, end));
  }
  rig.eng.run();
  bench::absorb(rig.cluster);
  return static_cast<double>(acq) / sim::to_us(end);
}

// --- sequencers ------------------------------------------------------------

double local_seq_mops(std::uint32_t threads) {
  wl::Rig rig;
  remem::LocalSequencer seq(rig.eng, rig.cluster.machine(0), 2);
  for (std::uint32_t t = 0; t < threads; ++t) seq.add_contender();
  std::uint64_t n = 0;
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    auto worker = [](wl::Rig& r, remem::LocalSequencer& s, std::uint32_t tid,
                     std::uint64_t& a, sim::Time& e) -> sim::Task {
      for (int i = 0; i < kOpsPerThread; ++i) {
        (void)co_await s.next(tid % 2);
        ++a;
      }
      e = std::max(e, r.eng.now());
    };
    rig.eng.spawn(worker(rig, seq, t, n, end));
  }
  rig.eng.run();
  bench::absorb(rig.cluster);
  return static_cast<double>(n) / sim::to_us(end);
}

double remote_seq_mops(std::uint32_t threads) {
  wl::Rig rig;
  verbs::Buffer mem(4096);
  auto* mr = rig.ctx[0]->register_buffer(mem, 1);
  std::vector<std::unique_ptr<remem::RemoteSequencer>> seqs;
  std::uint64_t n = 0;
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    auto* qp = rig.connect(1 + t % 7, 0).local;
    seqs.push_back(
        std::make_unique<remem::RemoteSequencer>(*qp, mr->addr, mr->key));
    auto worker = [](wl::Rig& r, remem::RemoteSequencer& s, std::uint64_t& a,
                     sim::Time& e) -> sim::Task {
      for (int i = 0; i < kOpsPerThread; ++i) {
        (void)co_await s.next();
        ++a;
      }
      e = std::max(e, r.eng.now());
    };
    rig.eng.spawn(worker(rig, *seqs.back(), n, end));
  }
  rig.eng.run();
  bench::absorb(rig.cluster);
  return static_cast<double>(n) / sim::to_us(end);
}

double rpc_seq_mops(std::uint32_t threads) {
  wl::Rig rig;
  remem::RpcLockServiceState st;
  remem::RpcServer server(*rig.ctx[0], [&st](std::uint64_t op,
                                             std::uint64_t arg) {
    return st.handle(op, arg);
  });
  std::vector<std::unique_ptr<remem::RpcClient>> clients;
  std::uint64_t n = 0;
  sim::Time end = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    clients.push_back(std::make_unique<remem::RpcClient>(
        *rig.ctx[1 + t % 7], rig.paper_qp()));
    verbs::Context::connect(*server.add_endpoint(), *clients.back()->qp());
    auto worker = [](wl::Rig& r, remem::RpcClient& c, std::uint64_t& a,
                     sim::Time& e) -> sim::Task {
      for (int i = 0; i < kOpsPerThread; ++i) {
        (void)co_await c.call(remem::kRpcSeqNext, 0);
        ++a;
      }
      e = std::max(e, r.eng.now());
    };
    rig.eng.spawn(worker(rig, *clients.back(), n, end));
  }
  rig.eng.run();
  bench::absorb(rig.cluster);
  return static_cast<double>(n) / sim::to_us(end);
}

void BM_fig10(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  double ll = 0, rl = 0, rlb = 0, pl = 0, ls = 0, rs = 0, ps = 0;
  for (auto _ : state) {
    ll = local_lock_mops(threads);
    rl = remote_lock_mops(threads, false);
    rlb = remote_lock_mops(threads, true);
    pl = rpc_lock_mops(threads);
    ls = local_seq_mops(threads);
    rs = remote_seq_mops(threads);
    ps = rpc_seq_mops(threads);
    state.SetIterationTime(1e-3);
  }
  state.counters["lock_local"] = ll;
  state.counters["lock_remote"] = rl;
  state.counters["lock_remote_backoff"] = rlb;
  state.counters["seq_remote"] = rs;
  const std::string x = std::to_string(threads);
  bench::point_mops("lock:local", x, ll);
  bench::point_mops("lock:remote", x, rl);
  bench::point_mops("lock:remote+bo", x, rlb);
  bench::point_mops("lock:rpc", x, pl);
  bench::point_mops("seq:local", x, ls);
  bench::point_mops("seq:remote", x, rs);
  bench::point_mops("seq:rpc", x, ps);
  collector.add({std::to_string(threads), util::fmt(ll), util::fmt(rl),
                 util::fmt(rlb), util::fmt(pl), util::fmt(ls), util::fmt(rs),
                 util::fmt(ps)});
}

BENCHMARK(BM_fig10)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
