// Extension — one-sided log replication (§IV-A class III): sweep the
// replication factor and measure the append throughput cost plus the
// recovery guarantee. All replica writes are issued in parallel with the
// primary (Tailwind-style), so the marginal cost is bandwidth + the
// slowest copy, not extra round trips.

#include "apps/dlog/dlog.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace dl = apps::dlog;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. log replication factor (7 engines, batch 16)",
    {"replicas", "MOPS", "vs_unreplicated", "replicas_identical"});

double g_base = 0;

void BM_ext_repl(benchmark::State& state) {
  const auto replicas = static_cast<std::uint32_t>(state.range(0));
  double mops = 0;
  bool identical = false;
  for (auto _ : state) {
    wl::Rig rig;
    dl::Config cfg;
    cfg.engines = 7;
    cfg.records_per_engine = util::env_u64("RDMASEM_DLOG_RECORDS", 2048);
    cfg.batch_size = 16;
    cfg.replicas = replicas;
    dl::DistributedLog log(rig.contexts(), cfg);
    const auto r = log.run();
    RDMASEM_CHECK_MSG(log.verify_dense_and_intact(), "log corrupted");
    mops = r.mops;
    identical = log.verify_replicas_identical();
    state.SetIterationTime(sim::to_sec(r.elapsed));
  }
  if (replicas == 1) g_base = mops;
  state.counters["MOPS"] = mops;
  collector.add({std::to_string(replicas), util::fmt(mops),
                 g_base > 0 ? util::fmt(mops / g_base) + "x" : "-",
                 identical ? "yes" : "NO"});
}

BENCHMARK(BM_ext_repl)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
