// Fig. 12 — Disaggregated hashtable optimization breakdown: throughput vs
// front-end count for Basic / +NUMA / +Reorder(theta=4) / +Reorder(theta=16).
// Zipf(0.99) keys, 100% writes, 64 B values.
//
// Paper shape: +NUMA ~ +14% over basic; +Reorder peaks at ~1.85-2.7x,
// around 24 MOPS near 6 front-ends.

#include "apps/hashtable/hashtable.hpp"
#include "bench_common.hpp"
#include "sim/sync.hpp"
#include "wl/zipf.hpp"

namespace {

using namespace rdmasem;
namespace ht = apps::hashtable;
using bench::FigureCollector;

FigureCollector collector(
    "Fig. 12  Disaggregated hashtable optimizations (MOPS vs front-ends)",
    {"front_ends", "Basic", "+NUMA", "+Reorder(t=4)", "+Reorder(t=16)"});

double run_config(std::uint32_t fes, bool numa, bool consolidate,
                  std::uint32_t theta) {
  wl::Rig rig;
  ht::Config cfg;
  cfg.num_keys = util::env_u64("RDMASEM_HT_KEYS", 1 << 14);
  cfg.numa_aware = numa;
  cfg.consolidate = consolidate;
  cfg.theta = theta;
  ht::DisaggHashTable table(*rig.ctx[0], cfg);
  const std::uint32_t pipeline = 4;
  const std::uint64_t ops = util::env_u64("RDMASEM_HT_OPS", 600);
  std::vector<std::unique_ptr<ht::FrontEnd>> workers;
  sim::CountdownLatch done(rig.eng, fes * pipeline);
  sim::Time end = 0;
  std::vector<std::byte> value(cfg.value_size);
  for (std::uint32_t i = 0; i < fes; ++i) {
    workers.push_back(table.add_front_end(*rig.ctx[1 + i % 7], (i / 7) % 2));
    for (std::uint32_t w = 0; w < pipeline; ++w) {
      auto loop = [](wl::Rig& r, ht::FrontEnd& f, const ht::Config& c,
                     std::uint32_t id, std::uint64_t n,
                     std::vector<std::byte>& v, sim::CountdownLatch& d,
                     sim::Time& e) -> sim::Task {
        wl::ZipfGenerator zipf(c.num_keys, 0.99, 100 + id);
        for (std::uint64_t k = 0; k < n; ++k) co_await f.put(zipf.next(), v);
        e = std::max(e, r.eng.now());
        d.count_down();
        if (d.remaining() == 0) co_await f.drain();
      };
      rig.eng.spawn(
          loop(rig, *workers.back(), cfg, i * pipeline + w, ops, value,
               done, end));
    }
  }
  rig.eng.run();
  return static_cast<double>(fes) * pipeline * static_cast<double>(ops) /
         sim::to_us(end);
}

void BM_fig12(benchmark::State& state) {
  const auto fes = static_cast<std::uint32_t>(state.range(0));
  double basic = 0, numa = 0, r4 = 0, r16 = 0;
  for (auto _ : state) {
    basic = run_config(fes, false, false, 16);
    numa = run_config(fes, true, false, 16);
    r4 = run_config(fes, true, true, 4);
    r16 = run_config(fes, true, true, 16);
    state.SetIterationTime(1e-3);
  }
  state.counters["basic_MOPS"] = basic;
  state.counters["numa_MOPS"] = numa;
  state.counters["reorder16_MOPS"] = r16;
  collector.add({std::to_string(fes), util::fmt(basic), util::fmt(numa),
                 util::fmt(r4), util::fmt(r16)});
}

BENCHMARK(BM_fig12)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
