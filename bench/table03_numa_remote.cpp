// Table III — remote access latency/throughput across NUMA placements:
// (local core, local MR socket) x (remote core, remote MR socket), each
// "own" (the RNIC's socket) or "alt" (the other socket). 64 B writes.
//
// Paper shape: everything-own is fastest; the all-alt corner costs
// ~30-55% more latency; mem-alt alone costs only ~4-10%.

#include "bench_common.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Table III  Remote inter-socket access (64 B write, lat us / MOPS)",
    {"local(core,mem)", "remote(core,mem)", "lat_us", "MOPS"});

struct Placement {
  bool alt_core_local, alt_mem_local, alt_core_remote, alt_mem_remote;
};

std::pair<double, double> measure(const Placement& pl, std::uint64_t ops) {
  wl::Rig rig;
  const auto own = rig.cluster.params().rnic_socket;  // socket 1
  const auto alt = 1 - own;
  verbs::Buffer src(4096), dst(4096);
  auto* lmr = rig.ctx[0]->register_buffer(src, pl.alt_mem_local ? alt : own);
  auto* rmr = rig.ctx[1]->register_buffer(dst, pl.alt_mem_remote ? alt : own);
  verbs::QpConfig ca;
  ca.port = own;
  ca.core_socket = pl.alt_core_local ? alt : own;
  verbs::QpConfig cb;
  cb.port = own;
  cb.core_socket = pl.alt_core_remote ? alt : own;
  auto conn = rig.connect(0, 1, ca, cb);

  // Latency: window 1.
  wl::ClientSpec lat_spec;
  lat_spec.qps = {conn.local};
  lat_spec.window = 1;
  lat_spec.ops_per_client = ops / 4;
  lat_spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return wl::make_write(*lmr, 0, *rmr, 0, 64);
  };
  const double lat = wl::run_closed_loop(rig.eng, lat_spec).avg_latency_us;

  // Throughput: window 16 on a fresh rig (same placement).
  wl::Rig rig2;
  verbs::Buffer src2(4096), dst2(4096);
  auto* lmr2 = rig2.ctx[0]->register_buffer(src2, pl.alt_mem_local ? alt : own);
  auto* rmr2 = rig2.ctx[1]->register_buffer(dst2, pl.alt_mem_remote ? alt : own);
  std::vector<verbs::QueuePair*> qps;
  for (int t = 0; t < 2; ++t) qps.push_back(rig2.connect(0, 1, ca, cb).local);
  wl::ClientSpec tp_spec;
  tp_spec.qps = qps;
  tp_spec.window = 16;
  tp_spec.ops_per_client = ops;
  tp_spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return wl::make_write(*lmr2, 0, *rmr2, 0, 64);
  };
  const double mops = wl::run_closed_loop(rig2.eng, tp_spec).mops;
  return {lat, mops};
}

const char* own_alt(bool alt_core, bool alt_mem) {
  if (!alt_core && !alt_mem) return "own core, own mem";
  if (!alt_core && alt_mem) return "own core, alt mem";
  if (alt_core && !alt_mem) return "alt core, own mem";
  return "alt core, alt mem";
}

void BM_table3(benchmark::State& state) {
  const auto idx = static_cast<std::uint32_t>(state.range(0));
  Placement pl{(idx & 8) != 0, (idx & 4) != 0, (idx & 2) != 0,
               (idx & 1) != 0};
  double lat = 0, mops = 0;
  for (auto _ : state) {
    auto [l, m] = measure(pl, bench::micro_ops(2000));
    lat = l;
    mops = m;
    state.SetIterationTime(1e-3);
  }
  state.counters["lat_us"] = lat;
  state.counters["MOPS"] = mops;
  collector.add({own_alt(pl.alt_core_local, pl.alt_mem_local),
                 own_alt(pl.alt_core_remote, pl.alt_mem_remote),
                 util::fmt(lat), util::fmt(mops)});
}

BENCHMARK(BM_table3)
    ->DenseRange(0, 15, 1)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
