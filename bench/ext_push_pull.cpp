// Extension — push vs pull shuffle (§IV-C design decision): the paper
// chooses push "since in-bound RDMA Write has higher performance than
// out-bound RDMA Read" (contrasting the pull-based design it cites).
// Sweep the transfer granularity: the write/read asymmetry dominates at
// per-entry granularity and washes out once chunks are bandwidth-bound.

#include "apps/shuffle/shuffle.hpp"
#include "bench_common.hpp"

namespace {

using namespace rdmasem;
namespace sh = apps::shuffle;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. push vs pull shuffle (8 executors, MOPS)",
    {"chunk_entries", "push", "pull", "push_advantage"});

double run_dir(sh::Direction dir, std::uint32_t chunk) {
  wl::Rig rig;
  sh::Config cfg;
  cfg.executors = 8;
  cfg.entries_per_executor = util::env_u64("RDMASEM_SHUFFLE_ENTRIES", 3000);
  cfg.direction = dir;
  cfg.batch = chunk <= 1 ? sh::BatchMode::kNone : sh::BatchMode::kSgl;
  cfg.batch_size = chunk;
  sh::Shuffle s(rig.contexts(), cfg);
  const auto r = s.run();
  RDMASEM_CHECK_MSG(s.received_checksum() == s.sent_checksum(),
                    "shuffle corrupted data");
  return r.mops;
}

void BM_ext_push_pull(benchmark::State& state) {
  const auto chunk = static_cast<std::uint32_t>(state.range(0));
  double push = 0, pull = 0;
  for (auto _ : state) {
    push = run_dir(sh::Direction::kPush, chunk);
    pull = run_dir(sh::Direction::kPull, chunk);
    state.SetIterationTime(1e-3);
  }
  state.counters["push_MOPS"] = push;
  state.counters["pull_MOPS"] = pull;
  collector.add({std::to_string(chunk), util::fmt(push), util::fmt(pull),
                 util::fmt(push / pull) + "x"});
}

BENCHMARK(BM_ext_push_pull)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
