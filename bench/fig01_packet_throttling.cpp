// Fig. 1 — Packet throttling: RDMA Write/Read latency and throughput vs
// payload size (2 B .. 8 KB).
//
// Paper anchors: write/read latency 1.16/2.00 us for small payloads rising
// to ~1.79/2.22 us near 256 B; throughput flat at ~4.7/4.2 MOPS below
// ~256 B, then bandwidth-bound decay.

#include "bench_common.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;
using bench::MicroRig;

FigureCollector collector(
    "Fig. 1  Packet Throttling (Write/Read latency & throughput vs size)",
    {"size", "write_lat_us", "read_lat_us", "write_MOPS", "read_MOPS",
     "errors"});

struct Point {
  double wlat, rlat, wmops, rmops, wp99;
};

void BM_fig1(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Point p{};
  wl::BenchResult wr, rr;
  const std::string x = util::fmt_bytes(size);
  for (auto _ : state) {
    {
      MicroRig rig(1 << 14, 1 << 14, 1);
      const auto wres = rig.run(
          wl::make_write(*rig.lmr, 0, *rig.rmr, 0, size), 1,
          bench::micro_ops(400));
      p.wlat = wres.avg_latency_us;
      p.wp99 = wres.p99_latency_us;
      bench::point("write_lat", x, wres);
    }
    {
      MicroRig rig(1 << 14, 1 << 14, 1);
      const auto rres = rig.run(wl::make_read(*rig.lmr, 0, *rig.rmr, 0, size),
                                1, bench::micro_ops(400));
      p.rlat = rres.avg_latency_us;
      bench::point("read_lat", x, rres);
    }
    {
      MicroRig rig(1 << 14, 1 << 14, 4);
      wr = rig.run(wl::make_write(*rig.lmr, 0, *rig.rmr, 0, size), 16,
                   bench::micro_ops());
      p.wmops = wr.mops;
      bench::point("write_tput", x, wr);
    }
    {
      MicroRig rig(1 << 14, 1 << 14, 4);
      rr = rig.run(wl::make_read(*rig.lmr, 0, *rig.rmr, 0, size), 16,
                   bench::micro_ops());
      p.rmops = rr.mops;
      bench::point("read_tput", x, rr);
    }
    state.SetIterationTime(sim::to_sec(wr.elapsed + rr.elapsed));
  }
  state.counters["write_lat_us"] = p.wlat;
  state.counters["read_lat_us"] = p.rlat;
  state.counters["write_p99_us"] = p.wp99;
  state.counters["write_MOPS"] = p.wmops;
  state.counters["read_MOPS"] = p.rmops;
  wr.errors += rr.errors;
  for (std::size_t i = 0; i < wr.by_status.size(); ++i)
    wr.by_status[i] += rr.by_status[i];
  state.counters["errors"] = static_cast<double>(wr.errors);
  collector.add({util::fmt_bytes(size), util::fmt(p.wlat), util::fmt(p.rlat),
                 util::fmt(p.wmops), util::fmt(p.rmops),
                 bench::errors_cell(wr)});
}

BENCHMARK(BM_fig1)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
