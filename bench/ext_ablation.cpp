// Extension — ablations over the simulator's design-choice knobs called
// out in DESIGN.md:
//   * RNIC SRAM capacity (moves the Fig. 6d knee)
//   * BlueFlame WQE-with-doorbell (small-write latency)
//   * inline payloads (small-write latency)
//   * transport type (RC vs UC write latency; RC vs UD send latency)

#include "bench_common.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector("Ext. ablations", {"knob", "setting", "metric",
                                             "value"});

double rand_write_mops(std::size_t sram_entries) {
  hw::ModelParams p;
  p.rnic_sram_entries = sram_entries;
  bench::MicroRig rig(64u << 20, 64u << 20, 4, p);
  sim::Rng rng(17);
  wl::ClientSpec spec;
  spec.qps = rig.qps;
  spec.window = 16;
  spec.ops_per_client = bench::micro_ops(3000);
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    const std::uint64_t off = rng.uniform((64u << 20) / 32) * 32;
    return wl::make_write(*rig.lmr, 0, *rig.rmr, off, 32);
  };
  return wl::run_closed_loop(rig.rig.eng, spec).mops;
}

double small_write_lat(bool blueflame, bool inline_data) {
  hw::ModelParams p;
  p.rnic_blueflame = blueflame;
  bench::MicroRig rig(4096, 4096, 1, p);
  auto wr = wl::make_write(*rig.lmr, 0, *rig.rmr, 0, 32);
  wr.inline_data = inline_data;
  return rig.run(wr, 1, 500).avg_latency_us;
}

double transport_lat(verbs::Transport tp, verbs::Opcode op) {
  wl::Rig rig;
  verbs::Buffer src(4096), dst(4096);
  auto* lmr = rig.ctx[0]->register_buffer(src, 1);
  auto* rmr = rig.ctx[1]->register_buffer(dst, 1);
  auto cfg = rig.paper_qp();
  cfg.transport = tp;
  auto conn = rig.connect(0, 1, cfg, cfg);
  if (op == verbs::Opcode::kSend)
    for (int i = 0; i < 1024; ++i)
      conn.remote->post_recv({static_cast<std::uint64_t>(i),
                              {rmr->addr, 64, rmr->key}});
  wl::ClientSpec spec;
  spec.qps = {conn.local};
  spec.window = 1;
  spec.ops_per_client = 500;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    verbs::WorkRequest wr;
    wr.opcode = op;
    wr.sg_list = {{lmr->addr, 32, lmr->key}};
    if (op == verbs::Opcode::kWrite) {
      wr.remote_addr = rmr->addr;
      wr.rkey = rmr->key;
    }
    if (tp == verbs::Transport::kUD) wr.ud_dest = conn.remote;
    return wr;
  };
  return wl::run_closed_loop(rig.eng, spec).avg_latency_us;
}

void BM_ablation_sram(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  double mops = 0;
  for (auto _ : state) {
    mops = rand_write_mops(entries);
    state.SetIterationTime(1e-3);
  }
  state.counters["MOPS"] = mops;
  collector.add({"sram_entries", std::to_string(entries),
                 "rand 32B write MOPS (64MB region)", util::fmt(mops)});
}

void BM_ablation_fastpath(benchmark::State& state) {
  double bf_inl = 0, bf = 0, plain = 0;
  for (auto _ : state) {
    bf_inl = small_write_lat(true, true);
    bf = small_write_lat(true, false);
    plain = small_write_lat(false, false);
    state.SetIterationTime(1e-3);
  }
  state.counters["bf_inline_us"] = bf_inl;
  collector.add({"fastpath", "blueflame+inline", "32B write lat us",
                 util::fmt(bf_inl)});
  collector.add({"fastpath", "blueflame", "32B write lat us",
                 util::fmt(bf)});
  collector.add({"fastpath", "wqe-fetch (no BF)", "32B write lat us",
                 util::fmt(plain)});
}

void BM_ablation_transport(benchmark::State& state) {
  double rc_w = 0, uc_w = 0, rc_s = 0, ud_s = 0;
  for (auto _ : state) {
    rc_w = transport_lat(verbs::Transport::kRC, verbs::Opcode::kWrite);
    uc_w = transport_lat(verbs::Transport::kUC, verbs::Opcode::kWrite);
    rc_s = transport_lat(verbs::Transport::kRC, verbs::Opcode::kSend);
    ud_s = transport_lat(verbs::Transport::kUD, verbs::Opcode::kSend);
    state.SetIterationTime(1e-3);
  }
  state.counters["uc_write_us"] = uc_w;
  collector.add({"transport", "RC", "32B write lat us", util::fmt(rc_w)});
  collector.add({"transport", "UC", "32B write lat us", util::fmt(uc_w)});
  collector.add({"transport", "RC", "32B send lat us", util::fmt(rc_s)});
  collector.add({"transport", "UD", "32B send lat us", util::fmt(ud_s)});
}

BENCHMARK(BM_ablation_sram)
    ->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ablation_fastpath)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ablation_transport)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
