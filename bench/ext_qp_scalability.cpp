// Extension — QP scalability (§II-B2): with many RC connections, the
// server RNIC's SRAM can no longer hold every QP context and throughput
// collapses (Chen et al. observe ~-50% from 40 to 120 clients). A UD
// server needs ONE QP for all clients and sidesteps the thrash.
//
// N clients (on machines 1..7) send 32 B messages to one server (machine
// 0); we sweep N and compare RC (N server QPs) against UD (1 server QP).

#include "bench_common.hpp"
#include "sim/sync.hpp"

namespace {

using namespace rdmasem;
using bench::FigureCollector;

FigureCollector collector(
    "Ext. QP scalability: server MOPS vs client count (32 B sends)",
    {"clients", "RC", "UD", "RC_srv_conns", "UD_srv_conns", "RC_mcache_hit",
     "RC_mcache_miss"});

constexpr std::uint32_t kMsg = 32;

struct Endpoint {
  verbs::Buffer buf{4096};
  verbs::MemoryRegion* mr;
  verbs::QueuePair* qp;
};

double run_rc(std::uint32_t clients, std::uint64_t ops, double* hit_rate) {
  wl::Rig rig;
  std::vector<std::unique_ptr<Endpoint>> sends, recvs;
  sim::CountdownLatch done(rig.eng, clients);
  sim::Time end = 0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    auto snd = std::make_unique<Endpoint>();
    auto rcv = std::make_unique<Endpoint>();
    auto& cctx = *rig.ctx[1 + c % 7];
    auto& sctx = *rig.ctx[0];
    snd->mr = cctx.register_buffer(snd->buf, 1);
    rcv->mr = sctx.register_buffer(rcv->buf, 1);
    auto ca = rig.paper_qp();
    ca.cq = cctx.create_cq();
    auto cb = rig.paper_qp();
    cb.cq = sctx.create_cq();
    snd->qp = cctx.create_qp(ca);
    rcv->qp = sctx.create_qp(cb);
    verbs::Context::connect(*snd->qp, *rcv->qp);
    for (int i = 0; i < 64; ++i)
      rcv->qp->post_recv({static_cast<std::uint64_t>(i),
                          {rcv->mr->addr, kMsg, rcv->mr->key}});
    auto loop = [](wl::Rig& r, Endpoint* s, Endpoint* rv, std::uint64_t n,
                   sim::CountdownLatch& d, sim::Time& e) -> sim::Task {
      for (std::uint64_t i = 0; i < n; ++i) {
        verbs::WorkRequest wr;
        wr.opcode = verbs::Opcode::kSend;
        wr.sg_list = {{s->mr->addr, kMsg, s->mr->key}};
        (void)co_await s->qp->execute(wr);
        rv->qp->post_recv({i, {rv->mr->addr, kMsg, rv->mr->key}});
      }
      e = std::max(e, r.eng.now());
      d.count_down();
    };
    rig.eng.spawn(loop(rig, snd.get(), rcv.get(), ops, done, end));
    sends.push_back(std::move(snd));
    recvs.push_back(std::move(rcv));
  }
  rig.eng.run();
  if (hit_rate)
    *hit_rate = rig.cluster.machine(0).rnic().mcache().hit_rate();
  return static_cast<double>(clients) * static_cast<double>(ops) /
         sim::to_us(end);
}

double run_ud(std::uint32_t clients, std::uint64_t ops) {
  wl::Rig rig;
  // ONE server UD QP; per-client UD QPs on the client side.
  auto& sctx = *rig.ctx[0];
  auto scfg = rig.paper_qp();
  scfg.transport = verbs::Transport::kUD;
  scfg.cq = sctx.create_cq();
  scfg.sq_depth = 65536;
  auto* server = sctx.create_qp(scfg);
  verbs::Buffer rbuf(1 << 20);
  auto* rmr = sctx.register_buffer(rbuf, 1);
  for (int i = 0; i < 4096; ++i)
    server->post_recv({static_cast<std::uint64_t>(i),
                       {rmr->addr + static_cast<std::uint64_t>(i) * 64, kMsg,
                        rmr->key}});

  std::vector<std::unique_ptr<Endpoint>> sends;
  sim::CountdownLatch done(rig.eng, clients);
  sim::Time end = 0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    auto snd = std::make_unique<Endpoint>();
    auto& cctx = *rig.ctx[1 + c % 7];
    snd->mr = cctx.register_buffer(snd->buf, 1);
    auto ca = rig.paper_qp();
    ca.transport = verbs::Transport::kUD;
    ca.cq = cctx.create_cq();
    snd->qp = cctx.create_qp(ca);
    auto loop = [](wl::Rig& r, Endpoint* s, verbs::QueuePair* srv,
                   verbs::MemoryRegion* srv_mr, std::uint64_t n,
                   sim::CountdownLatch& d, sim::Time& e) -> sim::Task {
      for (std::uint64_t i = 0; i < n; ++i) {
        verbs::WorkRequest wr;
        wr.opcode = verbs::Opcode::kSend;
        wr.sg_list = {{s->mr->addr, kMsg, s->mr->key}};
        wr.ud_dest = srv;
        (void)co_await s->qp->execute(wr);
        srv->post_recv({i, {srv_mr->addr, kMsg, srv_mr->key}});
      }
      e = std::max(e, r.eng.now());
      d.count_down();
    };
    rig.eng.spawn(loop(rig, snd.get(), server, rmr, ops, done, end));
    sends.push_back(std::move(snd));
  }
  rig.eng.run();
  return static_cast<double>(clients) * static_cast<double>(ops) /
         sim::to_us(end);
}

void BM_ext_qp(benchmark::State& state) {
  const auto clients = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t ops = bench::micro_ops(800) / 4 + 50;
  double rc = 0, ud = 0, hit = 0;
  for (auto _ : state) {
    rc = run_rc(clients, ops, &hit);
    ud = run_ud(clients, ops);
    state.SetIterationTime(1e-3);
  }
  // Connection count is the experiment's independent variable made
  // explicit: the RC server carries one QP per client while the UD server
  // always carries one, which is why only RC's metadata cache degrades.
  const double miss = 1.0 - hit;
  state.counters["RC_MOPS"] = rc;
  state.counters["UD_MOPS"] = ud;
  state.counters["RC_server_conns"] = static_cast<double>(clients);
  state.counters["UD_server_conns"] = 1;
  state.counters["RC_mcache_hit"] = hit;
  state.counters["RC_mcache_miss"] = miss;
  const std::string x = std::to_string(clients);
  bench::point_mops("RC", x, rc);
  bench::point_mops("UD", x, ud);
  bench::point_mops("RC_srv_conns", x, static_cast<double>(clients));
  bench::point_mops("RC_mcache_miss", x, miss);
  collector.add({x, util::fmt(rc), util::fmt(ud), std::to_string(clients),
                 "1", util::fmt(hit, 3), util::fmt(miss, 3)});
}

BENCHMARK(BM_ext_qp)
    ->Arg(8)->Arg(40)->Arg(120)->Arg(240)->Arg(480)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RDMASEM_BENCH_MAIN(collector)
