// replicated_log: the paper's §IV-E scenario — transaction engines spread
// over the cluster append commit records to a totally ordered global log
// on a log server, entirely with one-sided verbs: remote fetch-and-add
// reserves an extent, one RDMA write lands the records.
//
// Demonstrates the batching knob and verifies the log afterwards: dense,
// per-record checksums intact, totally ordered.

#include <cstdio>

#include "apps/dlog/dlog.hpp"
#include "wl/rig.hpp"

using namespace rdmasem;
namespace dl = apps::dlog;

namespace {

void run_once(std::uint32_t engines, std::uint32_t batch) {
  wl::Rig rig;
  dl::Config cfg;
  cfg.engines = engines;
  cfg.records_per_engine = 2048;
  cfg.batch_size = batch;
  dl::DistributedLog log(rig.contexts(), cfg);
  const auto r = log.run();
  std::printf(
      "%2u engines, batch %2u : %6.2f MOPS, tail=%7llu B, verify=%s\n",
      engines, batch, r.mops, static_cast<unsigned long long>(log.tail()),
      log.verify_dense_and_intact() ? "OK" : "CORRUPT");
}

}  // namespace

int main() {
  std::printf("distributed log: FAA-reserved extents + one-sided writes\n\n");
  for (std::uint32_t batch : {1u, 8u, 32u}) run_once(7, batch);
  std::printf("\n");
  for (std::uint32_t engines : {4u, 14u}) run_once(engines, 16);
  return 0;
}
