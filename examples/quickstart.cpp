// Quickstart: bring up a simulated two-machine RDMA pair and use the
// memory-semantic verbs — WRITE, READ, FETCH_ADD — plus the batch and
// consolidation helpers from the remem library.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "remem/batch.hpp"
#include "sim/task.hpp"
#include "wl/rig.hpp"

using namespace rdmasem;

namespace {

sim::Task demo(wl::Rig& rig, verbs::QueuePair* qp, verbs::MemoryRegion* lmr,
               verbs::MemoryRegion* rmr, verbs::Buffer& local,
               verbs::Buffer& remote) {
  // --- one-sided WRITE: push bytes into the remote machine's memory ----
  std::memcpy(local.data(), "hello, remote memory!", 22);
  auto wc = co_await qp->execute(wl::make_write(*lmr, 0, *rmr, 64, 22));
  std::printf("WRITE  : status=%s, %u bytes, remote now holds \"%s\"\n",
              verbs::to_string(wc.status), wc.byte_len,
              reinterpret_cast<const char*>(remote.data() + 64));

  // --- one-sided READ: pull them back somewhere else ------------------
  auto rc = co_await qp->execute(wl::make_read(*lmr, 1024, *rmr, 64, 22));
  std::printf("READ   : status=%s, local copy    \"%s\"\n",
              verbs::to_string(rc.status),
              reinterpret_cast<const char*>(local.data() + 1024));

  // --- one-sided FETCH_ADD: a remote sequencer in three lines ---------
  verbs::WorkRequest faa;
  faa.opcode = verbs::Opcode::kFetchAdd;
  faa.sg_list = {{lmr->addr + 2048, 8, lmr->key}};
  faa.remote_addr = rmr->addr;  // counter word at remote offset 0
  faa.rkey = rmr->key;
  faa.swap_or_add = 1;
  for (int i = 0; i < 3; ++i) {
    const sim::Time posted = rig.eng.now();
    auto ac = co_await qp->execute(faa);
    std::printf("FAA    : ticket %llu (latency %.2f us)\n",
                static_cast<unsigned long long>(ac.atomic_old),
                sim::to_us(ac.completed_at - posted));
  }

  // --- vector IO: gather three scattered pieces with one SGL write ----
  std::memcpy(local.data() + 100, "AAA", 3);
  std::memcpy(local.data() + 300, "BBB", 3);
  std::memcpy(local.data() + 500, "CCC", 3);
  remem::SglBatcher sgl(*qp);
  std::vector<remem::BatchItem> items = {
      {{lmr->addr + 100, 3, lmr->key}, 0},
      {{lmr->addr + 300, 3, lmr->key}, 0},
      {{lmr->addr + 500, 3, lmr->key}, 0},
  };
  auto sc = co_await sgl.flush_write(items, rmr->addr + 256, rmr->key);
  std::printf("SGL    : status=%s, remote gathered \"%.9s\"\n",
              verbs::to_string(sc.status),
              reinterpret_cast<const char*>(remote.data() + 256));

  std::printf("\nsimulated time elapsed: %.2f us\n",
              sim::to_us(rig.eng.now()));
}

}  // namespace

int main() {
  // An eight-machine simulated cluster calibrated to the paper's testbed
  // (dual-socket Xeon + ConnectX-3 @ 40 Gbps).
  wl::Rig rig;

  // Register 8 KB of RDMA-accessible memory on each side (socket 1, where
  // the NIC lives).
  verbs::Buffer local(8192), remote(8192);
  auto* lmr = rig.ctx[0]->register_buffer(local, 1);
  auto* rmr = rig.ctx[1]->register_buffer(remote, 1);

  // One reliable connection between machine 0 and machine 1.
  auto conn = rig.connect(0, 1);

  rig.eng.spawn(demo(rig, conn.local, lmr, rmr, local, remote));
  rig.eng.run();
  return 0;
}
