// kv_cache: the paper's §IV-B scenario — a disaggregated hashtable whose
// storage lives on a memory blade (machine 0) while stateless front-ends
// on other machines serve a skewed, write-heavy workload purely with
// one-sided RDMA.
//
// Runs the same workload three times: basic, +NUMA-aware placement,
// +hot-entry consolidation, and prints the throughput ladder.

#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/hashtable/hashtable.hpp"
#include "sim/sync.hpp"
#include "wl/rig.hpp"
#include "wl/zipf.hpp"

using namespace rdmasem;
namespace ht = apps::hashtable;

namespace {

double run_workload(bool numa, bool consolidate) {
  wl::Rig rig;
  ht::Config cfg;
  cfg.num_keys = 1 << 14;
  cfg.numa_aware = numa;
  cfg.consolidate = consolidate;
  ht::DisaggHashTable table(*rig.ctx[0], cfg);

  const std::uint32_t front_ends = 6, pipeline = 4;
  const std::uint64_t ops = 800;
  std::vector<std::unique_ptr<ht::FrontEnd>> fes;
  sim::CountdownLatch done(rig.eng, front_ends * pipeline);
  sim::Time end = 0;
  std::vector<std::byte> value(cfg.value_size);

  for (std::uint32_t i = 0; i < front_ends; ++i) {
    fes.push_back(table.add_front_end(*rig.ctx[1 + i % 7], i % 2));
    for (std::uint32_t w = 0; w < pipeline; ++w) {
      auto loop = [](wl::Rig& r, ht::FrontEnd& f, const ht::Config& c,
                     std::uint32_t id, std::uint64_t n,
                     std::vector<std::byte>& v, sim::CountdownLatch& d,
                     sim::Time& e) -> sim::Task {
        wl::ZipfGenerator zipf(c.num_keys, 0.99, id + 1);
        for (std::uint64_t k = 0; k < n; ++k) co_await f.put(zipf.next(), v);
        e = std::max(e, r.eng.now());
        d.count_down();
        if (d.remaining() == 0) co_await f.drain();
      };
      rig.eng.spawn(loop(rig, *fes.back(), cfg, i * pipeline + w, ops,
                         value, done, end));
    }
  }
  rig.eng.run();
  return front_ends * pipeline * static_cast<double>(ops) / sim::to_us(end);
}

sim::Task sanity_get(ht::FrontEnd& fe, const ht::Config& cfg) {
  std::vector<std::byte> v(cfg.value_size);
  std::memcpy(v.data(), "cached-value", 12);
  co_await fe.put(12345, v);
  const auto got = co_await fe.get(12345);
  std::printf("get(12345) after put -> \"%.12s\" (%zu bytes)\n",
              reinterpret_cast<const char*>(got.data()), got.size());
}

}  // namespace

int main() {
  std::printf("disaggregated KV cache: 6 front-ends x 4 in-flight requests,"
              " zipf(0.99), 100%% writes, 64 B values\n\n");

  const double basic = run_workload(false, false);
  std::printf("basic hashtable        : %6.2f MOPS\n", basic);
  const double numa = run_workload(true, false);
  std::printf("+ NUMA-aware placement : %6.2f MOPS (%.2fx)\n", numa,
              numa / basic);
  const double full = run_workload(true, true);
  std::printf("+ hot-entry reorder    : %6.2f MOPS (%.2fx)\n\n", full,
              full / basic);

  // Correctness spot-check on a fresh deployment.
  wl::Rig rig;
  ht::Config cfg;
  cfg.num_keys = 1 << 14;
  cfg.numa_aware = true;
  cfg.consolidate = true;
  ht::DisaggHashTable table(*rig.ctx[0], cfg);
  auto fe = table.add_front_end(*rig.ctx[1], 1);
  rig.eng.spawn(sanity_get(*fe, cfg));
  rig.eng.run();
  return 0;
}
