// analytics_pipeline: the paper's §IV-C/§IV-D scenario — a two-operator
// analytics job. Stage 1 shuffles two relations across the cluster with
// the SGL batch schedule; stage 2 joins each partition locally
// (build-probe over the from-scratch concurrent hash map).
//
// Prints per-stage simulated times and verifies the join output exactly.

#include <cstdio>

#include "apps/join/join.hpp"
#include "apps/shuffle/shuffle.hpp"
#include "wl/rig.hpp"

using namespace rdmasem;
namespace sh = apps::shuffle;
namespace jn = apps::join;

int main() {
  // --- standalone shuffle: move 64 B records all-to-all ----------------
  {
    wl::Rig rig;
    sh::Config cfg;
    cfg.executors = 8;
    cfg.entries_per_executor = 4000;
    cfg.batch = sh::BatchMode::kSgl;
    cfg.batch_size = 16;
    sh::Shuffle shuffle(rig.contexts(), cfg);
    const auto r = shuffle.run();
    std::printf("shuffle: %llu entries in %.2f ms -> %.1f MOPS, checksum %s\n",
                static_cast<unsigned long long>(r.entries),
                sim::to_us(r.elapsed) / 1e3, r.mops,
                shuffle.received_checksum() == shuffle.sent_checksum()
                    ? "OK"
                    : "MISMATCH");
  }

  // --- the full join, single machine vs distributed --------------------
  jn::Config cfg;
  cfg.tuples = 1 << 17;
  cfg.executors = 8;
  cfg.batch_size = 16;

  wl::Rig rig_single;
  auto single_cfg = cfg;
  single_cfg.distributed = false;
  const auto single = jn::run_join(rig_single.contexts(), single_cfg);

  wl::Rig rig_dist;
  const auto dist = jn::run_join(rig_dist.contexts(), cfg);

  std::printf("\njoin over 2 x %llu tuples (exact expected matches: %llu)\n",
              static_cast<unsigned long long>(cfg.tuples),
              static_cast<unsigned long long>(dist.expected_matches));
  std::printf("  single machine : %.3f s  (matches %s)\n", single.seconds,
              single.verified() ? "OK" : "WRONG");
  std::printf("  distributed    : %.3f s  (partition %.3f s + build-probe"
              " %.3f s, matches %s)\n",
              dist.seconds, dist.partition_seconds,
              dist.build_probe_seconds, dist.verified() ? "OK" : "WRONG");
  std::printf("  speedup        : %.2fx\n", single.seconds / dist.seconds);
  return 0;
}
