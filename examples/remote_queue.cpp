// remote_queue: a multi-producer queue living entirely in ANOTHER
// machine's memory, built from the typed RemoteRegion API — the paper's
// "remote memory as a first-class data-structure substrate" theme
// (§IV-A class I) in ~60 lines of data-structure code.
//
// Layout in remote memory:
//   [ tail u64 | pad | slots: 64 B each ]
// Producers claim a slot with one remote fetch-and-add, then write the
// record with one RDMA write — the same reserve-then-write protocol as
// the distributed log, expressed through RemotePtr/RemoteRegion.

#include <cstdio>
#include <cstring>

#include "remem/region.hpp"
#include "sim/sync.hpp"
#include "wl/rig.hpp"

using namespace rdmasem;

namespace {

constexpr std::uint64_t kSlots = 256;
constexpr std::uint64_t kSlotBytes = 64;
constexpr std::uint64_t kSlotsBase = 64;

struct Item {
  std::uint64_t producer;
  std::uint64_t seq;
  char payload[40];
  std::uint64_t ready;  // last field written; slot is valid once != 0
};
static_assert(sizeof(Item) <= kSlotBytes);

sim::Task producer(wl::Rig& rig, remem::RemoteRegion& region,
                   std::uint64_t id, std::uint64_t count,
                   sim::CountdownLatch& done) {
  remem::RemotePtr<std::uint64_t> tail(region, 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t slot = co_await tail.fetch_add(1);  // claim
    Item item{};
    item.producer = id;
    item.seq = i;
    std::snprintf(item.payload, sizeof item.payload, "p%llu-item%llu",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(i));
    item.ready = 1;
    co_await region.write(kSlotsBase + slot * kSlotBytes, item);  // publish
  }
  (void)rig;
  done.count_down();
}

}  // namespace

int main() {
  wl::Rig rig;

  // The queue's backing store lives on machine 0; producers run on
  // machines 1..4 and never involve machine 0's CPU.
  verbs::Buffer backing(kSlotsBase + kSlots * kSlotBytes);
  auto* mr = rig.ctx[0]->register_buffer(backing, 1);

  const std::uint64_t producers = 4, per_producer = 32;
  sim::CountdownLatch done(rig.eng, producers);
  std::vector<std::unique_ptr<remem::RemoteRegion>> regions;
  for (std::uint64_t p = 0; p < producers; ++p) {
    auto conn = rig.connect(static_cast<std::uint32_t>(1 + p), 0);
    regions.push_back(std::make_unique<remem::RemoteRegion>(
        *conn.local, mr->addr, mr->key, backing.size()));
    rig.eng.spawn(producer(rig, *regions.back(), p, per_producer, done));
  }
  rig.eng.run();

  // Consume host-side (the queue owner drains its own memory).
  std::uint64_t tail = 0;
  std::memcpy(&tail, backing.data(), 8);
  std::uint64_t per[4] = {};
  bool all_ready = true;
  for (std::uint64_t s = 0; s < tail; ++s) {
    Item item{};
    std::memcpy(&item, backing.data() + kSlotsBase + s * kSlotBytes,
                sizeof item);
    if (!item.ready) all_ready = false;
    if (item.producer < 4) ++per[item.producer];
  }
  std::printf("remote MPSC queue: %llu items claimed, all published: %s\n",
              static_cast<unsigned long long>(tail),
              all_ready ? "yes" : "NO");
  for (int p = 0; p < 4; ++p)
    std::printf("  producer %d contributed %llu items\n", p,
                static_cast<unsigned long long>(per[p]));
  std::printf("total simulated time: %.1f us (%llu FAAs + %llu writes)\n",
              sim::to_us(rig.eng.now()),
              static_cast<unsigned long long>(producers * per_producer),
              static_cast<unsigned long long>(producers * per_producer));
  return tail == producers * per_producer && all_ready ? 0 : 1;
}
