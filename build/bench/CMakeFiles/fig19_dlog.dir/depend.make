# Empty dependencies file for fig19_dlog.
# This may be replaced when dependencies are built.
