file(REMOVE_RECURSE
  "CMakeFiles/fig19_dlog.dir/fig19_dlog.cpp.o"
  "CMakeFiles/fig19_dlog.dir/fig19_dlog.cpp.o.d"
  "fig19_dlog"
  "fig19_dlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_dlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
