file(REMOVE_RECURSE
  "CMakeFiles/table02_numa_local.dir/table02_numa_local.cpp.o"
  "CMakeFiles/table02_numa_local.dir/table02_numa_local.cpp.o.d"
  "table02_numa_local"
  "table02_numa_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_numa_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
