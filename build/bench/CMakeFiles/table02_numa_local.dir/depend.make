# Empty dependencies file for table02_numa_local.
# This may be replaced when dependencies are built.
