# Empty compiler generated dependencies file for fig12_hashtable_opts.
# This may be replaced when dependencies are built.
