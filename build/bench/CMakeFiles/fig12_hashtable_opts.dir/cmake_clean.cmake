file(REMOVE_RECURSE
  "CMakeFiles/fig12_hashtable_opts.dir/fig12_hashtable_opts.cpp.o"
  "CMakeFiles/fig12_hashtable_opts.dir/fig12_hashtable_opts.cpp.o.d"
  "fig12_hashtable_opts"
  "fig12_hashtable_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hashtable_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
