# Empty dependencies file for table03_numa_remote.
# This may be replaced when dependencies are built.
