file(REMOVE_RECURSE
  "CMakeFiles/table03_numa_remote.dir/table03_numa_remote.cpp.o"
  "CMakeFiles/table03_numa_remote.dir/table03_numa_remote.cpp.o.d"
  "table03_numa_remote"
  "table03_numa_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_numa_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
