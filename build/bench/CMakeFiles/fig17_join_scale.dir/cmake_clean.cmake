file(REMOVE_RECURSE
  "CMakeFiles/fig17_join_scale.dir/fig17_join_scale.cpp.o"
  "CMakeFiles/fig17_join_scale.dir/fig17_join_scale.cpp.o.d"
  "fig17_join_scale"
  "fig17_join_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_join_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
