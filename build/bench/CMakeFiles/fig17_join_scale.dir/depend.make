# Empty dependencies file for fig17_join_scale.
# This may be replaced when dependencies are built.
