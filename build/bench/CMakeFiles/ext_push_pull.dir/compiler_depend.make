# Empty compiler generated dependencies file for ext_push_pull.
# This may be replaced when dependencies are built.
