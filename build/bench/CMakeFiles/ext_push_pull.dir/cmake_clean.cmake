file(REMOVE_RECURSE
  "CMakeFiles/ext_push_pull.dir/ext_push_pull.cpp.o"
  "CMakeFiles/ext_push_pull.dir/ext_push_pull.cpp.o.d"
  "ext_push_pull"
  "ext_push_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_push_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
