# Empty compiler generated dependencies file for fig18_join_cpu.
# This may be replaced when dependencies are built.
