file(REMOVE_RECURSE
  "CMakeFiles/fig18_join_cpu.dir/fig18_join_cpu.cpp.o"
  "CMakeFiles/fig18_join_cpu.dir/fig18_join_cpu.cpp.o.d"
  "fig18_join_cpu"
  "fig18_join_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_join_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
