# Empty dependencies file for ext_hashtable_mixed.
# This may be replaced when dependencies are built.
