file(REMOVE_RECURSE
  "CMakeFiles/ext_hashtable_mixed.dir/ext_hashtable_mixed.cpp.o"
  "CMakeFiles/ext_hashtable_mixed.dir/ext_hashtable_mixed.cpp.o.d"
  "ext_hashtable_mixed"
  "ext_hashtable_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hashtable_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
