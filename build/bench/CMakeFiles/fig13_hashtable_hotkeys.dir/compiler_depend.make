# Empty compiler generated dependencies file for fig13_hashtable_hotkeys.
# This may be replaced when dependencies are built.
