file(REMOVE_RECURSE
  "CMakeFiles/fig13_hashtable_hotkeys.dir/fig13_hashtable_hotkeys.cpp.o"
  "CMakeFiles/fig13_hashtable_hotkeys.dir/fig13_hashtable_hotkeys.cpp.o.d"
  "fig13_hashtable_hotkeys"
  "fig13_hashtable_hotkeys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hashtable_hotkeys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
