file(REMOVE_RECURSE
  "CMakeFiles/fig06_rand_seq.dir/fig06_rand_seq.cpp.o"
  "CMakeFiles/fig06_rand_seq.dir/fig06_rand_seq.cpp.o.d"
  "fig06_rand_seq"
  "fig06_rand_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rand_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
