# Empty compiler generated dependencies file for fig06_rand_seq.
# This may be replaced when dependencies are built.
