# Empty compiler generated dependencies file for fig16_join_batch.
# This may be replaced when dependencies are built.
