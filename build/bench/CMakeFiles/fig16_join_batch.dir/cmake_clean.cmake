file(REMOVE_RECURSE
  "CMakeFiles/fig16_join_batch.dir/fig16_join_batch.cpp.o"
  "CMakeFiles/fig16_join_batch.dir/fig16_join_batch.cpp.o.d"
  "fig16_join_batch"
  "fig16_join_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_join_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
