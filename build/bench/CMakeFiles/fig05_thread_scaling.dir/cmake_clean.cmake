file(REMOVE_RECURSE
  "CMakeFiles/fig05_thread_scaling.dir/fig05_thread_scaling.cpp.o"
  "CMakeFiles/fig05_thread_scaling.dir/fig05_thread_scaling.cpp.o.d"
  "fig05_thread_scaling"
  "fig05_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
