# Empty dependencies file for fig05_thread_scaling.
# This may be replaced when dependencies are built.
