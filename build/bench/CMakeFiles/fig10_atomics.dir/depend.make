# Empty dependencies file for fig10_atomics.
# This may be replaced when dependencies are built.
