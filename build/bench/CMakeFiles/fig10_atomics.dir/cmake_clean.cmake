file(REMOVE_RECURSE
  "CMakeFiles/fig10_atomics.dir/fig10_atomics.cpp.o"
  "CMakeFiles/fig10_atomics.dir/fig10_atomics.cpp.o.d"
  "fig10_atomics"
  "fig10_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
