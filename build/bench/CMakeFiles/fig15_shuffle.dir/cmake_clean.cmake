file(REMOVE_RECURSE
  "CMakeFiles/fig15_shuffle.dir/fig15_shuffle.cpp.o"
  "CMakeFiles/fig15_shuffle.dir/fig15_shuffle.cpp.o.d"
  "fig15_shuffle"
  "fig15_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
