# Empty compiler generated dependencies file for fig15_shuffle.
# This may be replaced when dependencies are built.
