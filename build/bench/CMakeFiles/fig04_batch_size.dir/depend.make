# Empty dependencies file for fig04_batch_size.
# This may be replaced when dependencies are built.
