file(REMOVE_RECURSE
  "CMakeFiles/fig01_packet_throttling.dir/fig01_packet_throttling.cpp.o"
  "CMakeFiles/fig01_packet_throttling.dir/fig01_packet_throttling.cpp.o.d"
  "fig01_packet_throttling"
  "fig01_packet_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_packet_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
