# Empty dependencies file for fig01_packet_throttling.
# This may be replaced when dependencies are built.
