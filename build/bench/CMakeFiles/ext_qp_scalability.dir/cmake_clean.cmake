file(REMOVE_RECURSE
  "CMakeFiles/ext_qp_scalability.dir/ext_qp_scalability.cpp.o"
  "CMakeFiles/ext_qp_scalability.dir/ext_qp_scalability.cpp.o.d"
  "ext_qp_scalability"
  "ext_qp_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qp_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
