# Empty compiler generated dependencies file for ext_qp_scalability.
# This may be replaced when dependencies are built.
