file(REMOVE_RECURSE
  "CMakeFiles/ext_mr_pressure.dir/ext_mr_pressure.cpp.o"
  "CMakeFiles/ext_mr_pressure.dir/ext_mr_pressure.cpp.o.d"
  "ext_mr_pressure"
  "ext_mr_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mr_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
