# Empty dependencies file for ext_mr_pressure.
# This may be replaced when dependencies are built.
