# Empty compiler generated dependencies file for fig03_batch_payload.
# This may be replaced when dependencies are built.
