file(REMOVE_RECURSE
  "CMakeFiles/fig03_batch_payload.dir/fig03_batch_payload.cpp.o"
  "CMakeFiles/fig03_batch_payload.dir/fig03_batch_payload.cpp.o.d"
  "fig03_batch_payload"
  "fig03_batch_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_batch_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
