# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_coro_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/remem_batch_test[1]_include.cmake")
include("/root/repo/build/tests/remem_consolidate_test[1]_include.cmake")
include("/root/repo/build/tests/remem_atomics_test[1]_include.cmake")
include("/root/repo/build/tests/remem_numa_test[1]_include.cmake")
include("/root/repo/build/tests/wl_test[1]_include.cmake")
include("/root/repo/build/tests/apps_hashtable_test[1]_include.cmake")
include("/root/repo/build/tests/apps_shuffle_join_test[1]_include.cmake")
include("/root/repo/build/tests/apps_dlog_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_transport_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/remem_region_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_edge_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_stats_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_cm_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
