file(REMOVE_RECURSE
  "CMakeFiles/verbs_transport_test.dir/verbs_transport_test.cpp.o"
  "CMakeFiles/verbs_transport_test.dir/verbs_transport_test.cpp.o.d"
  "verbs_transport_test"
  "verbs_transport_test.pdb"
  "verbs_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
