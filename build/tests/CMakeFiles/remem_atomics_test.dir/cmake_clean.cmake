file(REMOVE_RECURSE
  "CMakeFiles/remem_atomics_test.dir/remem_atomics_test.cpp.o"
  "CMakeFiles/remem_atomics_test.dir/remem_atomics_test.cpp.o.d"
  "remem_atomics_test"
  "remem_atomics_test.pdb"
  "remem_atomics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remem_atomics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
