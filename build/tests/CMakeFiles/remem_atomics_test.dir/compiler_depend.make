# Empty compiler generated dependencies file for remem_atomics_test.
# This may be replaced when dependencies are built.
