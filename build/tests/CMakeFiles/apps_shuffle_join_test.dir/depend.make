# Empty dependencies file for apps_shuffle_join_test.
# This may be replaced when dependencies are built.
