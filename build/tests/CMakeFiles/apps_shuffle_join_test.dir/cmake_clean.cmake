file(REMOVE_RECURSE
  "CMakeFiles/apps_shuffle_join_test.dir/apps_shuffle_join_test.cpp.o"
  "CMakeFiles/apps_shuffle_join_test.dir/apps_shuffle_join_test.cpp.o.d"
  "apps_shuffle_join_test"
  "apps_shuffle_join_test.pdb"
  "apps_shuffle_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_shuffle_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
