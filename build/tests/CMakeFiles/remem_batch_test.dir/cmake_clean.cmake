file(REMOVE_RECURSE
  "CMakeFiles/remem_batch_test.dir/remem_batch_test.cpp.o"
  "CMakeFiles/remem_batch_test.dir/remem_batch_test.cpp.o.d"
  "remem_batch_test"
  "remem_batch_test.pdb"
  "remem_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remem_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
