# Empty dependencies file for remem_batch_test.
# This may be replaced when dependencies are built.
