# Empty compiler generated dependencies file for remem_region_test.
# This may be replaced when dependencies are built.
