file(REMOVE_RECURSE
  "CMakeFiles/remem_region_test.dir/remem_region_test.cpp.o"
  "CMakeFiles/remem_region_test.dir/remem_region_test.cpp.o.d"
  "remem_region_test"
  "remem_region_test.pdb"
  "remem_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remem_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
