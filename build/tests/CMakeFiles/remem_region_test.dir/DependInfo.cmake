
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/remem_region_test.cpp" "tests/CMakeFiles/remem_region_test.dir/remem_region_test.cpp.o" "gcc" "tests/CMakeFiles/remem_region_test.dir/remem_region_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/rdmasem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/rdmasem_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/remem/CMakeFiles/rdmasem_remem.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/rdmasem_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmasem_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rdmasem_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/rdmasem_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rdmasem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmasem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmasem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
