# Empty dependencies file for apps_hashtable_test.
# This may be replaced when dependencies are built.
