file(REMOVE_RECURSE
  "CMakeFiles/apps_hashtable_test.dir/apps_hashtable_test.cpp.o"
  "CMakeFiles/apps_hashtable_test.dir/apps_hashtable_test.cpp.o.d"
  "apps_hashtable_test"
  "apps_hashtable_test.pdb"
  "apps_hashtable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_hashtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
