file(REMOVE_RECURSE
  "CMakeFiles/verbs_cm_test.dir/verbs_cm_test.cpp.o"
  "CMakeFiles/verbs_cm_test.dir/verbs_cm_test.cpp.o.d"
  "verbs_cm_test"
  "verbs_cm_test.pdb"
  "verbs_cm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_cm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
