# Empty compiler generated dependencies file for apps_dlog_test.
# This may be replaced when dependencies are built.
