file(REMOVE_RECURSE
  "CMakeFiles/apps_dlog_test.dir/apps_dlog_test.cpp.o"
  "CMakeFiles/apps_dlog_test.dir/apps_dlog_test.cpp.o.d"
  "apps_dlog_test"
  "apps_dlog_test.pdb"
  "apps_dlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_dlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
