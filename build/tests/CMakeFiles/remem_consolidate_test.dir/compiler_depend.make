# Empty compiler generated dependencies file for remem_consolidate_test.
# This may be replaced when dependencies are built.
