file(REMOVE_RECURSE
  "CMakeFiles/remem_consolidate_test.dir/remem_consolidate_test.cpp.o"
  "CMakeFiles/remem_consolidate_test.dir/remem_consolidate_test.cpp.o.d"
  "remem_consolidate_test"
  "remem_consolidate_test.pdb"
  "remem_consolidate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remem_consolidate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
