file(REMOVE_RECURSE
  "CMakeFiles/verbs_edge_test.dir/verbs_edge_test.cpp.o"
  "CMakeFiles/verbs_edge_test.dir/verbs_edge_test.cpp.o.d"
  "verbs_edge_test"
  "verbs_edge_test.pdb"
  "verbs_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
