# Empty dependencies file for remem_numa_test.
# This may be replaced when dependencies are built.
