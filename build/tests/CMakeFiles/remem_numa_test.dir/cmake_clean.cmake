file(REMOVE_RECURSE
  "CMakeFiles/remem_numa_test.dir/remem_numa_test.cpp.o"
  "CMakeFiles/remem_numa_test.dir/remem_numa_test.cpp.o.d"
  "remem_numa_test"
  "remem_numa_test.pdb"
  "remem_numa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remem_numa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
