# Empty compiler generated dependencies file for remote_queue.
# This may be replaced when dependencies are built.
