file(REMOVE_RECURSE
  "CMakeFiles/remote_queue.dir/remote_queue.cpp.o"
  "CMakeFiles/remote_queue.dir/remote_queue.cpp.o.d"
  "remote_queue"
  "remote_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
