file(REMOVE_RECURSE
  "librdmasem_rnic.a"
)
