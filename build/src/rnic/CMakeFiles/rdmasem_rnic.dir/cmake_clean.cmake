file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_rnic.dir/rnic.cpp.o"
  "CMakeFiles/rdmasem_rnic.dir/rnic.cpp.o.d"
  "librdmasem_rnic.a"
  "librdmasem_rnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_rnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
