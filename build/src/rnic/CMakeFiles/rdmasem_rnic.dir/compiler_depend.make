# Empty compiler generated dependencies file for rdmasem_rnic.
# This may be replaced when dependencies are built.
