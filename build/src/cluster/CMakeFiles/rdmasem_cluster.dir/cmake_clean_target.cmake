file(REMOVE_RECURSE
  "librdmasem_cluster.a"
)
