file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_cluster.dir/cluster.cpp.o"
  "CMakeFiles/rdmasem_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/rdmasem_cluster.dir/stats.cpp.o"
  "CMakeFiles/rdmasem_cluster.dir/stats.cpp.o.d"
  "librdmasem_cluster.a"
  "librdmasem_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
