# Empty compiler generated dependencies file for rdmasem_cluster.
# This may be replaced when dependencies are built.
