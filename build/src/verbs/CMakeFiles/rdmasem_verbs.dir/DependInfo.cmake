
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verbs/cm.cpp" "src/verbs/CMakeFiles/rdmasem_verbs.dir/cm.cpp.o" "gcc" "src/verbs/CMakeFiles/rdmasem_verbs.dir/cm.cpp.o.d"
  "/root/repo/src/verbs/context.cpp" "src/verbs/CMakeFiles/rdmasem_verbs.dir/context.cpp.o" "gcc" "src/verbs/CMakeFiles/rdmasem_verbs.dir/context.cpp.o.d"
  "/root/repo/src/verbs/qp.cpp" "src/verbs/CMakeFiles/rdmasem_verbs.dir/qp.cpp.o" "gcc" "src/verbs/CMakeFiles/rdmasem_verbs.dir/qp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rdmasem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rdmasem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rdmasem_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/rdmasem_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmasem_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmasem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
