file(REMOVE_RECURSE
  "librdmasem_verbs.a"
)
