file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_verbs.dir/cm.cpp.o"
  "CMakeFiles/rdmasem_verbs.dir/cm.cpp.o.d"
  "CMakeFiles/rdmasem_verbs.dir/context.cpp.o"
  "CMakeFiles/rdmasem_verbs.dir/context.cpp.o.d"
  "CMakeFiles/rdmasem_verbs.dir/qp.cpp.o"
  "CMakeFiles/rdmasem_verbs.dir/qp.cpp.o.d"
  "librdmasem_verbs.a"
  "librdmasem_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
