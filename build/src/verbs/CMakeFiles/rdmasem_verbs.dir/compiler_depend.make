# Empty compiler generated dependencies file for rdmasem_verbs.
# This may be replaced when dependencies are built.
