# Empty dependencies file for rdmasem_apps.
# This may be replaced when dependencies are built.
