file(REMOVE_RECURSE
  "librdmasem_apps.a"
)
