file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_apps.dir/dlog/dlog.cpp.o"
  "CMakeFiles/rdmasem_apps.dir/dlog/dlog.cpp.o.d"
  "CMakeFiles/rdmasem_apps.dir/hashtable/hashtable.cpp.o"
  "CMakeFiles/rdmasem_apps.dir/hashtable/hashtable.cpp.o.d"
  "CMakeFiles/rdmasem_apps.dir/join/chmap.cpp.o"
  "CMakeFiles/rdmasem_apps.dir/join/chmap.cpp.o.d"
  "CMakeFiles/rdmasem_apps.dir/join/join.cpp.o"
  "CMakeFiles/rdmasem_apps.dir/join/join.cpp.o.d"
  "CMakeFiles/rdmasem_apps.dir/shuffle/shuffle.cpp.o"
  "CMakeFiles/rdmasem_apps.dir/shuffle/shuffle.cpp.o.d"
  "librdmasem_apps.a"
  "librdmasem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
