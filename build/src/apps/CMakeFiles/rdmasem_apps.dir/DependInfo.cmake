
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dlog/dlog.cpp" "src/apps/CMakeFiles/rdmasem_apps.dir/dlog/dlog.cpp.o" "gcc" "src/apps/CMakeFiles/rdmasem_apps.dir/dlog/dlog.cpp.o.d"
  "/root/repo/src/apps/hashtable/hashtable.cpp" "src/apps/CMakeFiles/rdmasem_apps.dir/hashtable/hashtable.cpp.o" "gcc" "src/apps/CMakeFiles/rdmasem_apps.dir/hashtable/hashtable.cpp.o.d"
  "/root/repo/src/apps/join/chmap.cpp" "src/apps/CMakeFiles/rdmasem_apps.dir/join/chmap.cpp.o" "gcc" "src/apps/CMakeFiles/rdmasem_apps.dir/join/chmap.cpp.o.d"
  "/root/repo/src/apps/join/join.cpp" "src/apps/CMakeFiles/rdmasem_apps.dir/join/join.cpp.o" "gcc" "src/apps/CMakeFiles/rdmasem_apps.dir/join/join.cpp.o.d"
  "/root/repo/src/apps/shuffle/shuffle.cpp" "src/apps/CMakeFiles/rdmasem_apps.dir/shuffle/shuffle.cpp.o" "gcc" "src/apps/CMakeFiles/rdmasem_apps.dir/shuffle/shuffle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/remem/CMakeFiles/rdmasem_remem.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/rdmasem_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/rdmasem_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmasem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmasem_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rdmasem_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/rdmasem_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rdmasem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmasem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
