# Empty dependencies file for rdmasem_net.
# This may be replaced when dependencies are built.
