file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_net.dir/fabric.cpp.o"
  "CMakeFiles/rdmasem_net.dir/fabric.cpp.o.d"
  "librdmasem_net.a"
  "librdmasem_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
