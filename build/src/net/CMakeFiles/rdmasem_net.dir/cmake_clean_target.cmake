file(REMOVE_RECURSE
  "librdmasem_net.a"
)
