file(REMOVE_RECURSE
  "librdmasem_wl.a"
)
