file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_wl.dir/microbench.cpp.o"
  "CMakeFiles/rdmasem_wl.dir/microbench.cpp.o.d"
  "CMakeFiles/rdmasem_wl.dir/zipf.cpp.o"
  "CMakeFiles/rdmasem_wl.dir/zipf.cpp.o.d"
  "librdmasem_wl.a"
  "librdmasem_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
