# Empty compiler generated dependencies file for rdmasem_wl.
# This may be replaced when dependencies are built.
