file(REMOVE_RECURSE
  "librdmasem_hw.a"
)
