file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_hw.dir/dram.cpp.o"
  "CMakeFiles/rdmasem_hw.dir/dram.cpp.o.d"
  "CMakeFiles/rdmasem_hw.dir/mcache.cpp.o"
  "CMakeFiles/rdmasem_hw.dir/mcache.cpp.o.d"
  "librdmasem_hw.a"
  "librdmasem_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
