# Empty dependencies file for rdmasem_hw.
# This may be replaced when dependencies are built.
