# Empty compiler generated dependencies file for rdmasem_sim.
# This may be replaced when dependencies are built.
