file(REMOVE_RECURSE
  "librdmasem_sim.a"
)
