file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_sim.dir/engine.cpp.o"
  "CMakeFiles/rdmasem_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rdmasem_sim.dir/resource.cpp.o"
  "CMakeFiles/rdmasem_sim.dir/resource.cpp.o.d"
  "librdmasem_sim.a"
  "librdmasem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
