file(REMOVE_RECURSE
  "librdmasem_util.a"
)
