file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_util.dir/env.cpp.o"
  "CMakeFiles/rdmasem_util.dir/env.cpp.o.d"
  "CMakeFiles/rdmasem_util.dir/stats.cpp.o"
  "CMakeFiles/rdmasem_util.dir/stats.cpp.o.d"
  "CMakeFiles/rdmasem_util.dir/table.cpp.o"
  "CMakeFiles/rdmasem_util.dir/table.cpp.o.d"
  "librdmasem_util.a"
  "librdmasem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
