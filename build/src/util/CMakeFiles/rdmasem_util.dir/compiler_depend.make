# Empty compiler generated dependencies file for rdmasem_util.
# This may be replaced when dependencies are built.
