
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remem/atomics.cpp" "src/remem/CMakeFiles/rdmasem_remem.dir/atomics.cpp.o" "gcc" "src/remem/CMakeFiles/rdmasem_remem.dir/atomics.cpp.o.d"
  "/root/repo/src/remem/batch.cpp" "src/remem/CMakeFiles/rdmasem_remem.dir/batch.cpp.o" "gcc" "src/remem/CMakeFiles/rdmasem_remem.dir/batch.cpp.o.d"
  "/root/repo/src/remem/consolidate.cpp" "src/remem/CMakeFiles/rdmasem_remem.dir/consolidate.cpp.o" "gcc" "src/remem/CMakeFiles/rdmasem_remem.dir/consolidate.cpp.o.d"
  "/root/repo/src/remem/numa_policy.cpp" "src/remem/CMakeFiles/rdmasem_remem.dir/numa_policy.cpp.o" "gcc" "src/remem/CMakeFiles/rdmasem_remem.dir/numa_policy.cpp.o.d"
  "/root/repo/src/remem/rpc.cpp" "src/remem/CMakeFiles/rdmasem_remem.dir/rpc.cpp.o" "gcc" "src/remem/CMakeFiles/rdmasem_remem.dir/rpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verbs/CMakeFiles/rdmasem_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmasem_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmasem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rdmasem_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/rdmasem_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rdmasem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmasem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
