file(REMOVE_RECURSE
  "librdmasem_remem.a"
)
