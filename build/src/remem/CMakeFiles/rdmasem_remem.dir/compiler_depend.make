# Empty compiler generated dependencies file for rdmasem_remem.
# This may be replaced when dependencies are built.
