file(REMOVE_RECURSE
  "CMakeFiles/rdmasem_remem.dir/atomics.cpp.o"
  "CMakeFiles/rdmasem_remem.dir/atomics.cpp.o.d"
  "CMakeFiles/rdmasem_remem.dir/batch.cpp.o"
  "CMakeFiles/rdmasem_remem.dir/batch.cpp.o.d"
  "CMakeFiles/rdmasem_remem.dir/consolidate.cpp.o"
  "CMakeFiles/rdmasem_remem.dir/consolidate.cpp.o.d"
  "CMakeFiles/rdmasem_remem.dir/numa_policy.cpp.o"
  "CMakeFiles/rdmasem_remem.dir/numa_policy.cpp.o.d"
  "CMakeFiles/rdmasem_remem.dir/rpc.cpp.o"
  "CMakeFiles/rdmasem_remem.dir/rpc.cpp.o.d"
  "librdmasem_remem.a"
  "librdmasem_remem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasem_remem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
