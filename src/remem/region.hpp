#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::remem {

// RemoteRegion — a typed window onto registered remote memory, in the
// spirit of the "remote regions" interface the paper's related work
// surveys (Aguilera et al., ATC'18): read/write/atomics on offsets, plus
// RemotePtr<T> for individual remote objects. Every operation is one
// one-sided verb; the region owns a small bounce buffer so callers work
// with plain values.
//
//   RemoteRegion region(qp, rmr->addr, rmr->key, rmr->length);
//   co_await region.write(off, value);
//   std::uint64_t v = co_await region.read<std::uint64_t>(off);
//   std::uint64_t old = co_await region.fetch_add(off, 1);
//
// Failure surface: writes return the verbs::Status; reads and atomics
// return Outcome<T>. Call sites that unwrap without checking keep the
// pre-fault abort-on-failure behavior (see outcome.hpp).
class RemoteRegion {
 public:
  RemoteRegion(verbs::QueuePair& qp, std::uint64_t remote_addr,
               std::uint32_t rkey, std::size_t size)
      : qp_(qp), remote_addr_(remote_addr), rkey_(rkey), size_(size),
        bounce_(kBounceBytes) {
    bounce_mr_ = qp_.context().register_buffer(
        bounce_, qp_.context().machine().port_socket(qp_.config().port));
  }

  std::size_t size() const { return size_; }
  verbs::QueuePair& qp() { return qp_; }

  // ---- raw byte interface -------------------------------------------------
  sim::TaskT<verbs::Status> write_bytes(std::uint64_t off,
                                        std::span<const std::byte> data) {
    RDMASEM_CHECK_MSG(data.size() <= kBounceBytes, "write exceeds bounce");
    RDMASEM_CHECK_MSG(off + data.size() <= size_, "write out of region");
    std::memcpy(bounce_.data(), data.data(), data.size());
    co_await sim::delay(qp_.context().engine(),
                        qp_.context().params().memcpy_time(data.size()));
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sg_list = {{bounce_mr_->addr,
                   static_cast<std::uint32_t>(data.size()),
                   bounce_mr_->key}};
    wr.remote_addr = remote_addr_ + off;
    wr.rkey = rkey_;
    const auto c = co_await qp_.execute(std::move(wr));
    co_return c.status;
  }

  sim::TaskT<verbs::Status> read_bytes(std::uint64_t off,
                                       std::span<std::byte> out) {
    RDMASEM_CHECK_MSG(out.size() <= kBounceBytes, "read exceeds bounce");
    RDMASEM_CHECK_MSG(off + out.size() <= size_, "read out of region");
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kRead;
    wr.sg_list = {{bounce_mr_->addr, static_cast<std::uint32_t>(out.size()),
                   bounce_mr_->key}};
    wr.remote_addr = remote_addr_ + off;
    wr.rkey = rkey_;
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    std::memcpy(out.data(), bounce_.data(), out.size());
    co_await sim::delay(qp_.context().engine(),
                        qp_.context().params().memcpy_time(out.size()));
    co_return verbs::Status::kSuccess;
  }

  // ---- typed interface ----------------------------------------------------
  template <typename T>
  sim::TaskT<verbs::Status> write(std::uint64_t off, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    co_return co_await write_bytes(
        off, {reinterpret_cast<const std::byte*>(&value), sizeof(T)});
  }

  template <typename T>
  sim::TaskT<Outcome<T>> read(std::uint64_t off) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    const auto st = co_await read_bytes(
        off, {reinterpret_cast<std::byte*>(&out), sizeof(T)});
    if (st != verbs::Status::kSuccess) co_return st;
    co_return out;
  }

  // ---- atomics (8-byte, 8-aligned offsets) --------------------------------
  sim::TaskT<Outcome<std::uint64_t>> fetch_add(std::uint64_t off,
                                               std::uint64_t delta) {
    co_return co_await atomic(verbs::Opcode::kFetchAdd, off, 0, delta);
  }
  // Returns the observed old value; the swap happened iff old == expected.
  sim::TaskT<Outcome<std::uint64_t>> compare_swap(std::uint64_t off,
                                                  std::uint64_t expected,
                                                  std::uint64_t desired) {
    co_return co_await atomic(verbs::Opcode::kCompSwap, off, expected,
                              desired);
  }

 private:
  static constexpr std::size_t kBounceBytes = 4096;

  sim::TaskT<Outcome<std::uint64_t>> atomic(verbs::Opcode op,
                                            std::uint64_t off,
                                            std::uint64_t cmp,
                                            std::uint64_t arg) {
    RDMASEM_CHECK_MSG(off % 8 == 0 && off + 8 <= size_, "bad atomic offset");
    verbs::WorkRequest wr;
    wr.opcode = op;
    wr.sg_list = {{bounce_mr_->addr + kBounceBytes - 8, 8, bounce_mr_->key}};
    wr.remote_addr = remote_addr_ + off;
    wr.rkey = rkey_;
    wr.compare = cmp;
    wr.swap_or_add = arg;
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    co_return c.atomic_old;
  }

  verbs::QueuePair& qp_;
  std::uint64_t remote_addr_;
  std::uint32_t rkey_;
  std::size_t size_;
  verbs::Buffer bounce_;
  verbs::MemoryRegion* bounce_mr_;
};

// RemotePtr<T> — one remote object at a fixed offset of a RemoteRegion.
template <typename T>
class RemotePtr {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  RemotePtr(RemoteRegion& region, std::uint64_t off)
      : region_(&region), off_(off) {}

  sim::TaskT<Outcome<T>> load() { co_return co_await region_->read<T>(off_); }
  sim::TaskT<verbs::Status> store(const T& v) {
    co_return co_await region_->write(off_, v);
  }

  // 8-byte objects only:
  sim::TaskT<Outcome<std::uint64_t>> fetch_add(std::uint64_t d) {
    static_assert(sizeof(T) == 8);
    co_return co_await region_->fetch_add(off_, d);
  }
  sim::TaskT<Outcome<std::uint64_t>> compare_swap(std::uint64_t e,
                                                  std::uint64_t v) {
    static_assert(sizeof(T) == 8);
    co_return co_await region_->compare_swap(off_, e, v);
  }

  RemotePtr operator+(std::uint64_t n) const {
    return RemotePtr(*region_, off_ + n * sizeof(T));
  }
  std::uint64_t offset() const { return off_; }

 private:
  RemoteRegion* region_;
  std::uint64_t off_;
};

}  // namespace rdmasem::remem
