#include "remem/rpc.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace rdmasem::remem {

RpcServer::RpcServer(verbs::Context& ctx, Handler handler,
                     sim::Duration handler_cost, std::uint32_t cores)
    : ctx_(ctx),
      handler_(std::move(handler)),
      handler_cost_(handler_cost),
      cpu_(ctx.engine(), cores, "rpc.cpu") {}

verbs::QueuePair* RpcServer::add_endpoint() {
  auto ep = std::make_unique<Endpoint>(kSlots * kMsgBytes);
  const auto socket = ctx_.params().rnic_socket;
  ep->recv_mr = ctx_.register_buffer(ep->recv_buf, socket);
  ep->send_mr = ctx_.register_buffer(ep->send_buf, socket);
  ep->cq = ctx_.create_cq();
  verbs::QpConfig cfg;
  cfg.port = socket;  // port i -> socket i
  cfg.core_socket = socket;
  cfg.cq = ep->cq;
  ep->qp = ctx_.create_qp(cfg);
  for (std::size_t i = 0; i < kSlots; ++i)
    ep->qp->post_recv(
        {i, {ep->recv_mr->addr + i * kMsgBytes,
             static_cast<std::uint32_t>(kMsgBytes), ep->recv_mr->key}});
  Endpoint* raw = ep.get();
  endpoints_.push_back(std::move(ep));
  // The service loop lives on the server machine's lane: RECV completions
  // land there, so the CQ channel stays single-lane.
  ctx_.engine().spawn_on(ctx_.machine().id() + 1, serve(raw));
  return raw->qp;
}

sim::Task RpcServer::serve(Endpoint* ep) {
  auto& eng = ctx_.engine();
  for (;;) {
    const verbs::Completion rc = co_await ep->cq->next();
    if (rc.opcode != verbs::Opcode::kRecv) continue;  // our reply CQEs
    // The endpoint QP died (flushed RECVs): this service loop retires.
    if (!rc.ok()) co_return;
    const std::size_t slot = rc.wr_id;
    std::uint64_t op = 0, arg = 0;
    std::memcpy(&op, ep->recv_buf.data() + slot * kMsgBytes, 8);
    std::memcpy(&arg, ep->recv_buf.data() + slot * kMsgBytes + 8, 8);

    // The entire per-request server work — CQ poll, handler logic, reply
    // WQE prep and doorbell — is serialized on the shared server core(s).
    // This serialization is precisely why one-sided atomics outrun the
    // RPC baseline in §III-E.
    const auto& p = ctx_.params();
    co_await cpu_.use(p.cpu_cq_poll + handler_cost_ +
                      ep->qp->post_cost(1));
    const std::uint64_t result = handler_(op, arg);
    ++served_;
    (void)eng;

    // Reply (8 bytes) and re-arm the slot. CPU already charged above.
    std::memcpy(ep->send_buf.data() + slot * kMsgBytes, &result, 8);
    verbs::WorkRequest reply;
    reply.opcode = verbs::Opcode::kSend;
    reply.sg_list = {{ep->send_mr->addr + slot * kMsgBytes, 8,
                      ep->send_mr->key}};
    reply.signaled = false;
    ep->qp->post_send(reply);
    ep->qp->post_recv(
        {slot, {ep->recv_mr->addr + slot * kMsgBytes,
                static_cast<std::uint32_t>(kMsgBytes), ep->recv_mr->key}});
  }
}

RpcClient::RpcClient(verbs::Context& ctx, const verbs::QpConfig& cfg)
    : buf_(256) {
  verbs::QpConfig c = cfg;
  if (c.cq == nullptr) c.cq = ctx.create_cq();
  qp_ = ctx.create_qp(c);
  mr_ = ctx.register_buffer(buf_, c.core_socket);
  gate_ = std::make_unique<sim::Semaphore>(ctx.engine(), 1);
}

sim::TaskT<Outcome<std::uint64_t>> RpcClient::call(std::uint64_t op,
                                                   std::uint64_t arg) {
  auto& ctx = qp_->context();
  // Run the whole call on the client machine's lane: the gate, the CQ
  // channel and the reply buffer are all owned by this lane.
  co_await sim::settle(ctx.engine(), ctx.machine().id() + 1);
  co_await gate_->acquire();
  // Arm the reply buffer first, then send the request.
  qp_->post_recv({ctx.next_wr_id(), {mr_->addr + 64, 8, mr_->key}});
  std::memcpy(buf_.data(), &op, 8);
  std::memcpy(buf_.data() + 8, &arg, 8);
  verbs::WorkRequest req;
  req.opcode = verbs::Opcode::kSend;
  req.sg_list = {{mr_->addr, 16, mr_->key}};
  req.signaled = false;  // errors still generate a CQE (IBV rule)
  co_await qp_->post(req);
  for (;;) {
    const verbs::Completion c = co_await qp_->config().cq->next();
    if (c.opcode == verbs::Opcode::kSend && !c.ok()) {
      // Request never made it (retry exhaustion / flush).
      gate_->release();
      co_return c.status;
    }
    if (c.opcode != verbs::Opcode::kRecv) continue;
    if (!c.ok()) {
      gate_->release();
      co_return c.status;
    }
    std::uint64_t result = 0;
    std::memcpy(&result, buf_.data() + 64, 8);
    gate_->release();
    co_return result;
  }
}

}  // namespace rdmasem::remem
