#include "remem/atomics.hpp"

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "util/assert.hpp"

namespace rdmasem::remem {

RemoteSpinlock::RemoteSpinlock(verbs::QueuePair& qp, std::uint64_t remote_addr,
                               std::uint32_t rkey, BackoffPolicy backoff)
    : qp_(qp), remote_addr_(remote_addr), rkey_(rkey), backoff_(backoff),
      scratch_(64) {
  scratch_mr_ = qp_.context().register_buffer(
      scratch_, qp_.context().machine().port_socket(qp_.config().port));
}

sim::TaskT<Outcome<std::uint32_t>> RemoteSpinlock::lock() {
  std::uint32_t attempts = 0;
  for (;;) {
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kCompSwap;
    wr.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
    wr.remote_addr = remote_addr_;
    wr.rkey = rkey_;
    wr.compare = 0;
    wr.swap_or_add = 1;
    ++attempts;
    ++cas_attempts_;
    obs::Hub& hub = qp_.context().cluster().obs();
    hub.cas_attempts.inc();
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    if (c.atomic_old == 0) {
      ++acquisitions_;
      co_return attempts;
    }
    hub.cas_failures.inc();  // lock was held: the CAS lost the race
    const auto d = backoff_.delay_for(attempts);
    if (d) co_await sim::delay(qp_.context().engine(), d);
  }
}

sim::TaskT<verbs::Status> RemoteSpinlock::unlock() {
  // Release: plain 8-byte RDMA write of 0 (store-release is enough; RC
  // ordering makes it visible after the critical section's writes).
  *scratch_.as<std::uint64_t>(8) = 0;
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {{scratch_mr_->addr + 8, 8, scratch_mr_->key}};
  wr.remote_addr = remote_addr_;
  wr.rkey = rkey_;
  const auto c = co_await qp_.execute(std::move(wr));
  co_return c.status;
}

RemoteLockClient::RemoteLockClient(verbs::QueuePair& qp, BackoffPolicy backoff)
    : qp_(qp), backoff_(backoff), scratch_(64) {
  scratch_mr_ = qp_.context().register_buffer(
      scratch_, qp_.context().machine().port_socket(qp_.config().port));
}

sim::TaskT<Outcome<std::uint32_t>> RemoteLockClient::lock(
    std::uint64_t remote_addr, std::uint32_t rkey) {
  std::uint32_t attempts = 0;
  for (;;) {
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kCompSwap;
    wr.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
    wr.remote_addr = remote_addr;
    wr.rkey = rkey;
    wr.compare = 0;
    wr.swap_or_add = 1;
    ++attempts;
    ++cas_attempts_;
    obs::Hub& hub = qp_.context().cluster().obs();
    hub.cas_attempts.inc();
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    if (c.atomic_old == 0) {
      ++acquisitions_;
      co_return attempts;
    }
    hub.cas_failures.inc();  // lock was held: the CAS lost the race
    const auto d = backoff_.delay_for(attempts);
    if (d) co_await sim::delay(qp_.context().engine(), d);
  }
}

sim::TaskT<verbs::Status> RemoteLockClient::unlock(std::uint64_t remote_addr,
                                                   std::uint32_t rkey) {
  *scratch_.as<std::uint64_t>(8) = 0;
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {{scratch_mr_->addr + 8, 8, scratch_mr_->key}};
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  const auto c = co_await qp_.execute(std::move(wr));
  co_return c.status;
}

RemoteSequencer::RemoteSequencer(verbs::QueuePair& qp,
                                 std::uint64_t remote_addr, std::uint32_t rkey)
    : qp_(qp), remote_addr_(remote_addr), rkey_(rkey), scratch_(64) {
  scratch_mr_ = qp_.context().register_buffer(
      scratch_, qp_.context().machine().port_socket(qp_.config().port));
}

sim::TaskT<Outcome<std::uint64_t>> RemoteSequencer::next(std::uint64_t delta) {
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kFetchAdd;
  wr.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
  wr.remote_addr = remote_addr_;
  wr.rkey = rkey_;
  wr.swap_or_add = delta;
  const auto c = co_await qp_.execute(std::move(wr));
  if (!c.ok()) co_return c.status;
  co_return c.atomic_old;
}

LocalSpinlock::LocalSpinlock(sim::Engine& engine, cluster::Machine& machine,
                             std::uint64_t line, BackoffPolicy backoff)
    : engine_(engine), machine_(machine), line_(line), backoff_(backoff) {}

sim::TaskT<std::uint32_t> LocalSpinlock::lock(hw::SocketId my_socket) {
  auto& coh = machine_.coherence();
  coh.add_contender(line_);
  std::uint32_t attempts = 0;
  for (;;) {
    ++attempts;
    // One locked RMW: occupies the line (serial resource) for a duration
    // that scales with contention and socket distance.
    co_await coh.line_resource(line_).use(
        coh.rmw_cost(line_, my_socket != home_socket_,
                     hw::CoherenceModel::Rmw::kCas));
    if (!held_) {
      held_ = true;
      home_socket_ = my_socket;
      coh.remove_contender(line_);
      co_return attempts;
    }
    if (backoff_.enabled) {
      const auto d = backoff_.delay_for(attempts);
      if (d) co_await sim::delay(engine_, d);
    } else {
      // Test-and-test-and-set: spin-read (shared line, cheap) until the
      // next release, then pay one line transfer before retrying the CAS.
      co_await SpinAwaiter{*this};
      co_await sim::delay(engine_, coh.spin_read_cost());
    }
  }
}

sim::TaskT<void> LocalSpinlock::unlock(hw::SocketId my_socket) {
  RDMASEM_CHECK_MSG(held_, "unlock of free lock");
  auto& coh = machine_.coherence();
  co_await coh.line_resource(line_).use(
      coh.rmw_cost(line_, my_socket != home_socket_,
                   hw::CoherenceModel::Rmw::kCas));
  held_ = false;
  // The release invalidates every spinner's shared copy; they all race
  // for the line again.
  while (!spinners_.empty()) {
    engine_.resume_at(engine_.now(), spinners_.front());
    spinners_.pop_front();
  }
}

LocalSequencer::LocalSequencer(sim::Engine& engine, cluster::Machine& machine,
                               std::uint64_t line)
    : engine_(engine), machine_(machine), line_(line) {}

sim::TaskT<std::uint64_t> LocalSequencer::next(hw::SocketId my_socket) {
  // FAA never retries; it serializes on the line at the (graceful) FAA
  // contention cost.
  auto& coh = machine_.coherence();
  co_await coh.line_resource(line_).use(
      coh.rmw_cost(line_, my_socket != 0, hw::CoherenceModel::Rmw::kFaa));
  co_return value_++;
}

}  // namespace rdmasem::remem
