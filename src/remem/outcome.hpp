#pragma once

#include <utility>

#include "util/assert.hpp"
#include "verbs/types.hpp"

namespace rdmasem::remem {

// Outcome<T> — a verbs::Status plus a value, for remote-memory operations
// that can fail once faults are injected (retry exhaustion, flushed QPs).
//
// Two call-site styles coexist:
//
//   * Legacy fail-fast: use the result as a plain T. The implicit
//     conversion asserts success, so pre-fault code keeps its abort-on-
//     failure semantics without changing a line:
//
//       const std::uint64_t old = co_await region.fetch_add(0, 1);
//
//   * Fault-aware: inspect before unwrapping and run a recovery path:
//
//       auto r = co_await region.fetch_add(0, 1);
//       if (!r.ok()) co_return handle(r.status());
//
// Operations with no interesting value (writes, unlocks) return a bare
// verbs::Status instead.
template <typename T>
class Outcome {
 public:
  Outcome() = default;
  Outcome(T value) : value_(std::move(value)) {}
  Outcome(verbs::Status st) : status_(st) {
    RDMASEM_CHECK_MSG(st != verbs::Status::kSuccess,
                      "success Outcome needs a value");
  }

  bool ok() const { return status_ == verbs::Status::kSuccess; }
  verbs::Status status() const { return status_; }

  const T& value() const {
    RDMASEM_CHECK_MSG(ok(), "Outcome::value() on failure");
    return value_;
  }
  T value_or(T alt) const { return ok() ? value_ : std::move(alt); }

  // Checked unwrap: aborts (with the status name) when the operation
  // failed and the caller never looked.
  operator T() const {
    RDMASEM_CHECK_MSG(ok(), verbs::to_string(status_));
    return value_;
  }

 private:
  verbs::Status status_ = verbs::Status::kSuccess;
  T value_{};
};

}  // namespace rdmasem::remem
