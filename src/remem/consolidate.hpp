#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::remem {

// Consolidator — IO consolidation (§III-C): small writes aimed at the same
// aligned remote block are absorbed into a local shadow copy ("remote burst
// buffer") and flushed as ONE RDMA write when either
//   * the block has accumulated `theta` modifications, or
//   * the block's lease times out.
//
// Only the dirty extent of the block travels, so theta=1 degenerates to a
// native small write (plus one staging memcpy) — exactly the Fig. 8 shape.
//
// The shadow buffer mirrors the remote region byte-for-byte, so readers of
// remote memory observe consolidated data after flush, and local readers
// can hit the shadow (the paper's hot-entry cache in §IV-B).
class Consolidator {
 public:
  struct Config {
    std::size_t block_size = 1024;     // aligned region S
    std::uint32_t theta = 16;          // flush threshold
    sim::Duration timeout = sim::us(100);  // lease
    // false: the write that trips theta rides its flush (strict theta
    //        batching — the Fig. 8 microbenchmark semantics).
    // true:  flushes run as background chains and writers never block; a
    //        block's effective batch grows to >= theta under load (burst-
    //        buffer semantics — what the hashtable front-ends use).
    bool async_flush = false;
  };

  struct Stats {
    std::uint64_t staged_writes = 0;
    std::uint64_t flushes = 0;
    std::uint64_t flushed_bytes = 0;
    std::uint64_t timeout_flushes = 0;
    // Flushes whose RDMA write failed (QP dead). The extent stays in the
    // shadow, so a caller with a failover path can re-stage it.
    std::uint64_t failed_flushes = 0;
  };

  // Consolidates writes into the remote region [remote_base,
  // remote_base+region_size) reachable through `qp`/`rkey`.
  Consolidator(verbs::QueuePair& qp, std::uint64_t remote_base,
               std::uint32_t rkey, std::size_t region_size, Config cfg);

  // Stages `data` at region offset `off`. Charges the staging memcpy to
  // the caller; if this write trips the block's theta, the caller also
  // rides the flush (backpressure) and sees its status.
  sim::TaskT<verbs::Status> write(std::uint64_t off,
                                  std::span<const std::byte> data);

  // Forces out one block / all dirty blocks. Returns the first failing
  // status (kSuccess when everything landed).
  sim::TaskT<verbs::Status> flush_block(std::uint64_t block);
  sim::TaskT<verbs::Status> flush_all();

  // Optional hooks run around every flush (e.g. take/release the block's
  // remote spinlock, §IV-B hot area).
  using FlushHook = std::function<sim::TaskT<void>(std::uint64_t block)>;
  void set_flush_hooks(FlushHook before, FlushHook after) {
    before_flush_ = std::move(before);
    after_flush_ = std::move(after);
  }

  const Stats& stats() const { return stats_; }
  std::span<const std::byte> shadow() const { return shadow_.span(); }
  std::uint32_t theta() const { return cfg_.theta; }

  // True while the block holds staged-but-unflushed writes (readers may
  // serve them from the shadow; a clean block must be read remotely —
  // another writer may own the fresh copy).
  bool block_dirty(std::uint64_t block) const {
    const BlockState& st = blocks_.at(block);
    return st.dirty_lo != st.dirty_hi || st.flush_inflight;
  }

 private:
  struct BlockState {
    std::uint32_t pending = 0;
    std::uint64_t dirty_lo = 0;
    std::uint64_t dirty_hi = 0;  // exclusive; lo==hi means clean
    std::uint64_t generation = 0;
    bool timer_armed = false;
    bool flush_inflight = false;  // async mode: one chain per block
  };

  sim::Task timeout_watch(std::uint64_t block, std::uint64_t generation);
  sim::Task flush_chain(std::uint64_t block);

  verbs::QueuePair& qp_;
  std::uint64_t remote_base_;
  std::uint32_t rkey_;
  Config cfg_;
  verbs::Buffer shadow_;
  verbs::MemoryRegion* shadow_mr_;
  std::vector<BlockState> blocks_;
  Stats stats_;
  FlushHook before_flush_;
  FlushHook after_flush_;
  std::uint32_t inflight_ = 0;  // async flush chains currently running
};

}  // namespace rdmasem::remem
