#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "cluster/cluster.hpp"
#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::remem {

// Exponential backoff (Anderson-style) for contended lock acquisition
// (§III-E: "we also improve remote spinlock with exponential back-off").
struct BackoffPolicy {
  bool enabled = false;
  sim::Duration base = sim::ns(400);
  sim::Duration max = sim::us(60);
  double factor = 2.0;

  static BackoffPolicy none() { return {}; }
  static BackoffPolicy exponential() { return {true, sim::ns(400), sim::us(60), 2.0}; }

  sim::Duration delay_for(std::uint32_t attempt) const {
    if (!enabled || attempt == 0) return 0;
    double d = static_cast<double>(base);
    for (std::uint32_t i = 1; i < attempt; ++i) d *= factor;
    const auto out = static_cast<sim::Duration>(d);
    return out > max ? max : out;
  }
};

// RemoteSpinlock — a spinlock in remote memory driven by RDMA
// compare-and-swap. lock() spins with CAS(0 -> 1); unlock() writes 0.
// One instance per *client* (it owns a private scratch MR for the CAS
// result); many instances may target the same remote word.
class RemoteSpinlock {
 public:
  RemoteSpinlock(verbs::QueuePair& qp, std::uint64_t remote_addr,
                 std::uint32_t rkey, BackoffPolicy backoff = {});

  // Acquires the lock; returns the number of CAS attempts used, or the
  // failing verbs status once the QP dies (faults).
  sim::TaskT<Outcome<std::uint32_t>> lock();
  sim::TaskT<verbs::Status> unlock();

  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t cas_attempts() const { return cas_attempts_; }

 private:
  verbs::QueuePair& qp_;
  std::uint64_t remote_addr_;
  std::uint32_t rkey_;
  BackoffPolicy backoff_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t cas_attempts_ = 0;
};

// RemoteLockClient — like RemoteSpinlock but for MANY lock words: one
// scratch MR serves CAS/unlock against arbitrary remote addresses (e.g.
// the per-block locks of the disaggregated hashtable's hot area).
class RemoteLockClient {
 public:
  explicit RemoteLockClient(verbs::QueuePair& qp, BackoffPolicy backoff = {});

  sim::TaskT<Outcome<std::uint32_t>> lock(std::uint64_t remote_addr,
                                          std::uint32_t rkey);
  sim::TaskT<verbs::Status> unlock(std::uint64_t remote_addr,
                                   std::uint32_t rkey);

  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t cas_attempts() const { return cas_attempts_; }

 private:
  verbs::QueuePair& qp_;
  BackoffPolicy backoff_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t cas_attempts_ = 0;
};

// RemoteSequencer — a monotonically increasing counter in remote memory
// driven by RDMA fetch-and-add (one instance per client, like the lock).
class RemoteSequencer {
 public:
  RemoteSequencer(verbs::QueuePair& qp, std::uint64_t remote_addr,
                  std::uint32_t rkey);

  // Returns the ticket (the pre-increment value).
  sim::TaskT<Outcome<std::uint64_t>> next(std::uint64_t delta = 1);

 private:
  verbs::QueuePair& qp_;
  std::uint64_t remote_addr_;
  std::uint32_t rkey_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_;
};

// LocalSpinlock — the GCC __sync_compare_and_swap baseline, timed by the
// coherence model: contended CAS cost grows with the number of spinning
// threads (cache-line ping-pong), which is what melts the local lock down
// in Fig. 10a. The lock word is identified by a line id, shared by all
// clients of the same lock.
class LocalSpinlock {
 public:
  LocalSpinlock(sim::Engine& engine, cluster::Machine& machine,
                std::uint64_t line, BackoffPolicy backoff = {});

  sim::TaskT<std::uint32_t> lock(hw::SocketId my_socket);
  sim::TaskT<void> unlock(hw::SocketId my_socket);
  bool held() const { return held_; }

 private:
  struct SpinAwaiter {
    LocalSpinlock& l;
    bool await_ready() const noexcept { return !l.held_; }
    void await_suspend(std::coroutine_handle<> h) { l.spinners_.push_back(h); }
    void await_resume() const noexcept {}
  };

  sim::Engine& engine_;
  cluster::Machine& machine_;
  std::uint64_t line_;
  BackoffPolicy backoff_;
  bool held_ = false;
  hw::SocketId home_socket_ = 0;  // socket of the last owner (line home)
  // Test-and-test-and-set spinners parked until the next release. The
  // spin-read traffic itself is local to each core's cache (shared line),
  // so parking models TTAS with the right cost and bounded events.
  std::deque<std::coroutine_handle<>> spinners_;
};

// LocalSequencer — __sync_fetch_and_add baseline on one cache line.
class LocalSequencer {
 public:
  LocalSequencer(sim::Engine& engine, cluster::Machine& machine,
                 std::uint64_t line);

  sim::TaskT<std::uint64_t> next(hw::SocketId my_socket);
  // Benchmarks register steady hammerers so the coherence model sees the
  // real contention level.
  void add_contender() { machine_.coherence().add_contender(line_); }
  void remove_contender() { machine_.coherence().remove_contender(line_); }

 private:
  sim::Engine& engine_;
  cluster::Machine& machine_;
  std::uint64_t line_;
  std::uint64_t value_ = 0;
};

}  // namespace rdmasem::remem
