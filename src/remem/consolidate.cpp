#include "remem/consolidate.hpp"

#include <algorithm>
#include <cstring>

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "util/assert.hpp"

namespace rdmasem::remem {

Consolidator::Consolidator(verbs::QueuePair& qp, std::uint64_t remote_base,
                           std::uint32_t rkey, std::size_t region_size,
                           Config cfg)
    : qp_(qp),
      remote_base_(remote_base),
      rkey_(rkey),
      cfg_(cfg),
      shadow_(region_size) {
  RDMASEM_CHECK_MSG(cfg_.block_size > 0 && cfg_.theta > 0,
                    "bad consolidator config");
  RDMASEM_CHECK_MSG(region_size % cfg_.block_size == 0,
                    "region must be block-aligned");
  shadow_mr_ = qp_.context().register_buffer(
      shadow_, qp_.context().machine().port_socket(qp_.config().port));
  blocks_.resize(region_size / cfg_.block_size);
}

sim::TaskT<verbs::Status> Consolidator::write(std::uint64_t off,
                                              std::span<const std::byte> data) {
  RDMASEM_CHECK_MSG(off + data.size() <= shadow_.size(),
                    "consolidated write out of region");
  const std::uint64_t block = off / cfg_.block_size;
  RDMASEM_CHECK_MSG((off + data.size() - 1) / cfg_.block_size == block,
                    "write must not straddle blocks");
  auto& eng = qp_.context().engine();
  const auto& p = qp_.context().params();

  std::memcpy(shadow_.data() + off, data.data(), data.size());
  co_await sim::delay(eng, p.memcpy_time(data.size()));

  obs::Hub& hub = qp_.context().cluster().obs();
  BlockState& st = blocks_[block];
  if (st.dirty_lo == st.dirty_hi) {  // first dirt in this block
    st.dirty_lo = off;
    st.dirty_hi = off + data.size();
  } else {
    st.dirty_lo = std::min(st.dirty_lo, off);
    st.dirty_hi = std::max(st.dirty_hi, off + data.size());
    hub.consolidate_merges.inc();  // absorbed into an already-dirty block
  }
  ++st.pending;
  ++stats_.staged_writes;
  hub.consolidate_staged.inc();

  if (st.pending >= cfg_.theta) {
    if (cfg_.async_flush) {
      if (!st.flush_inflight) {
        st.flush_inflight = true;
        ++inflight_;
        eng.spawn(flush_chain(block));
      }
    } else {
      co_return co_await flush_block(block);
    }
  } else if (!st.timer_armed) {
    st.timer_armed = true;
    eng.spawn(timeout_watch(block, st.generation));
  }
  co_return verbs::Status::kSuccess;
}

sim::Task Consolidator::flush_chain(std::uint64_t block) {
  // Background flusher: keeps pushing the block's dirty extent out while
  // writers re-dirty it faster than theta; residual dirt below theta is
  // left to the lease timer.
  for (;;) {
    const auto st_flush = co_await flush_block(block);
    BlockState& st = blocks_[block];
    // A dead QP can never drain the block: stop the chain, the residue
    // stays in the shadow for a failover path to re-stage.
    if (st_flush != verbs::Status::kSuccess || st.pending < cfg_.theta) break;
  }
  BlockState& st = blocks_[block];
  st.flush_inflight = false;
  --inflight_;
}

sim::TaskT<verbs::Status> Consolidator::flush_block(std::uint64_t block) {
  BlockState& st = blocks_[block];
  if (st.dirty_lo == st.dirty_hi) co_return verbs::Status::kSuccess;  // clean
  const std::uint64_t lo = st.dirty_lo;
  const std::uint64_t hi = st.dirty_hi;
  st.pending = 0;
  st.dirty_lo = st.dirty_hi = 0;
  ++st.generation;  // cancels any armed timer
  st.timer_armed = false;

  if (before_flush_) co_await before_flush_(block);
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {{shadow_mr_->addr + lo, static_cast<std::uint32_t>(hi - lo),
                 shadow_mr_->key}};
  wr.remote_addr = remote_base_ + lo;
  wr.rkey = rkey_;
  ++stats_.flushes;
  stats_.flushed_bytes += hi - lo;
  qp_.context().cluster().obs().consolidate_flushes.inc();
  const auto c = co_await qp_.execute(std::move(wr));
  if (!c.ok()) {
    ++stats_.failed_flushes;
    co_return c.status;
  }
  if (after_flush_) co_await after_flush_(block);
  co_return verbs::Status::kSuccess;
}

sim::TaskT<verbs::Status> Consolidator::flush_all() {
  auto first_err = verbs::Status::kSuccess;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    const auto st = co_await flush_block(b);
    if (st != verbs::Status::kSuccess && first_err == verbs::Status::kSuccess)
      first_err = st;
  }
  // Let background chains land (they may have captured extents already).
  while (inflight_ > 0)
    co_await sim::delay(qp_.context().engine(), sim::us(1));
  co_return first_err;
}

sim::Task Consolidator::timeout_watch(std::uint64_t block,
                                      std::uint64_t generation) {
  co_await sim::delay(qp_.context().engine(), cfg_.timeout);
  BlockState& st = blocks_[block];
  if (st.generation != generation) co_return;  // already flushed
  ++stats_.timeout_flushes;
  co_await flush_block(block);
}

}  // namespace rdmasem::remem
