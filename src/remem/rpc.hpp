#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "remem/outcome.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::remem {

// Minimal request/response RPC over channel-semantic verbs (SEND/RECV) —
// the paper's two-sided baseline for §III-E locks and sequencers. Requests
// and replies are fixed 16-byte messages {op, arg} -> {result}.
//
// The server burns a CPU core per `cores`: every request charges handler
// CPU time on a shared Resource, which is exactly why one-sided atomics
// beat it — they never touch the remote CPU.
class RpcServer {
 public:
  // handler(op, arg) -> result, executed on the server core.
  using Handler = std::function<std::uint64_t(std::uint64_t op,
                                              std::uint64_t arg)>;

  RpcServer(verbs::Context& ctx, Handler handler,
            sim::Duration handler_cost = sim::ns(150),
            std::uint32_t cores = 1);

  // Creates the server-side endpoint for one more client and starts its
  // service loop. Connect the returned QP to the client's QP.
  verbs::QueuePair* add_endpoint();

  std::uint64_t requests_served() const { return served_; }

 private:
  struct Endpoint {
    verbs::QueuePair* qp;
    verbs::Buffer recv_buf;
    verbs::Buffer send_buf;
    verbs::MemoryRegion* recv_mr;
    verbs::MemoryRegion* send_mr;
    verbs::CompletionQueue* cq;
    explicit Endpoint(std::size_t n) : recv_buf(n), send_buf(n) {}
  };

  sim::Task serve(Endpoint* ep);

  verbs::Context& ctx_;
  Handler handler_;
  sim::Duration handler_cost_;
  sim::Resource cpu_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::uint64_t served_ = 0;
  static constexpr std::size_t kSlots = 64;
  static constexpr std::size_t kMsgBytes = 16;
};

// Client side: one QP + tiny buffers; call() round-trips one request.
// One call at a time per client (an internal gate serializes accidental
// concurrent callers); spawn several clients to pipeline.
class RpcClient {
 public:
  explicit RpcClient(verbs::Context& ctx, const verbs::QpConfig& cfg);

  verbs::QueuePair* qp() { return qp_; }

  // Round-trips one request; fails (instead of hanging) when the
  // connection dies mid-call — the flushed RECV carries the status back.
  sim::TaskT<Outcome<std::uint64_t>> call(std::uint64_t op,
                                          std::uint64_t arg);

 private:
  verbs::QueuePair* qp_;
  verbs::Buffer buf_;
  verbs::MemoryRegion* mr_;
  std::unique_ptr<sim::Semaphore> gate_;
};

// RPC op codes shared by the §III-E baselines.
inline constexpr std::uint64_t kRpcSeqNext = 1;   // sequencer: ticket
inline constexpr std::uint64_t kRpcTryLock = 2;   // lock: 1 = granted
inline constexpr std::uint64_t kRpcUnlock = 3;
inline constexpr std::uint64_t kRpcEcho = 4;

// Server-side state + handler for a sequencer/lock service.
struct RpcLockServiceState {
  std::uint64_t counter = 0;
  bool locked = false;

  std::uint64_t handle(std::uint64_t op, std::uint64_t arg) {
    switch (op) {
      case kRpcSeqNext: return counter++;
      case kRpcTryLock:
        if (locked) return 0;
        locked = true;
        return 1;
      case kRpcUnlock:
        locked = false;
        return 1;
      default: return arg;
    }
  }
};

}  // namespace rdmasem::remem
