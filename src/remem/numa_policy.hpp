#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::remem {

// ProxySocketRouter — the paper's §III-D proxy-socket strategy.
//
// Socket-matched connections only: local socket s talks exclusively to
// remote socket s, cutting the QP count from s*s*2m to s*2m and keeping
// the *remote* machine's DMA NUMA-clean. A request that must reach remote
// socket s' from local socket s != s' is handed to the local proxy socket
// s' over a pair of shared-memory message queues; the payload crosses with
// the message into a staging buffer that lives on the proxy's socket, so
// the proxy's QP gathers and lands NUMA-clean on both machines.
//
// WRITE payloads are staged on submit; READ results and atomic old-values
// land in staging and are copied back to the caller's buffers with the
// response hop.
class ProxySocketRouter {
 public:
  explicit ProxySocketRouter(sim::Engine& engine, const hw::ModelParams& p);
  ~ProxySocketRouter();
  ProxySocketRouter(const ProxySocketRouter&) = delete;
  ProxySocketRouter& operator=(const ProxySocketRouter&) = delete;

  // Registers the NUMA-clean QP of `socket` toward `remote_machine` and
  // spawns its worker loop. The QP's port/core must be bound to `socket`.
  void add_route(hw::SocketId socket, std::uint32_t remote_machine,
                 verbs::QueuePair* qp);

  // Executes `wr` toward `remote_machine`'s socket `target_socket`. If the
  // caller's socket differs, the request crosses the shm queues to the
  // proxy socket; otherwise it posts directly on the matched QP.
  // Proxied WRs must fit one staging slot (kSlotBytes).
  sim::TaskT<verbs::Completion> submit(hw::SocketId caller_socket,
                                       hw::SocketId target_socket,
                                       std::uint32_t remote_machine,
                                       verbs::WorkRequest wr);

  std::uint64_t proxied() const { return proxied_; }
  std::uint64_t direct() const { return direct_; }

  static constexpr std::size_t kSlotBytes = 4096;
  static constexpr std::uint32_t kSlots = 64;

 private:
  struct Request {
    verbs::WorkRequest wr;                  // SGEs already rewritten
    verbs::WorkRequest original;            // caller's view (for copy-back)
    sim::Channel<verbs::Completion>* reply;
    std::uint32_t slot;
  };
  struct Route {
    verbs::QueuePair* qp = nullptr;
    verbs::Buffer staging;
    verbs::MemoryRegion* staging_mr = nullptr;
    std::unique_ptr<sim::Channel<Request>> inbox;
    std::unique_ptr<sim::Semaphore> slot_sem;
    std::vector<std::uint32_t> free_slots;
    Route() : staging() {}
  };

  sim::Task worker(Route* route);
  sim::Task serve_one(Route* route, Request req);
  Route* route_for(hw::SocketId socket, std::uint32_t machine);

  sim::Engine& engine_;
  const hw::ModelParams& p_;
  // routes_[socket][machine]
  std::vector<std::vector<Route>> routes_;
  std::uint64_t proxied_ = 0;
  std::uint64_t direct_ = 0;
};

}  // namespace rdmasem::remem
