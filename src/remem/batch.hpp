#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/task.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::remem {

// The three vector-IO batch strategies of §III-A / Algorithm 1. All three
// move the same logical data — a set of scattered local pieces — to remote
// memory; they differ in who gathers and how many MMIOs / WQEs / network
// operations are spent:
//
//            gather-by   MMIOs  WQEs  net ops   paper verdict
//   SP       CPU         1      1     1         highest tput, worst progr.
//   Doorbell —           1      n     n         easy, low tput
//   SGL      RNIC        1      1     1         close to SP, SGE-limited
struct BatchItem {
  verbs::Sge local;            // a piece of registered local memory
  std::uint64_t remote_addr;   // its destination (Doorbell honors this
                               // per item; SP/SGL write contiguously at
                               // the flush's remote_base)
};

class Batcher {
 public:
  virtual ~Batcher() = default;

  // Writes all items to the peer; resumes when the (last) WR completes.
  // SP/SGL lay items out back-to-back starting at remote_base; Doorbell
  // writes each item at its own remote_addr.
  virtual sim::TaskT<verbs::Completion> flush_write(
      std::span<const BatchItem> items, std::uint64_t remote_base,
      std::uint32_t rkey) = 0;

  // The read-side mirror: fetches remote data into the items' local
  // buffers. SGL reads the contiguous range [remote_base, ...) and the
  // NIC scatters it across the SGEs; SP reads into its staging buffer and
  // the CPU scatters; Doorbell issues one READ per item (from each item's
  // own remote_addr).
  virtual sim::TaskT<verbs::Completion> flush_read(
      std::span<const BatchItem> items, std::uint64_t remote_base,
      std::uint32_t rkey) = 0;

  virtual const char* name() const = 0;
};

// SP — "software protocol": the CPU memcpys every piece into a staging
// buffer, then issues ONE write WR. Exploits packet throttling: n small
// pieces cost barely more than one on the wire. Burns CPU on the gather.
class SpBatcher final : public Batcher {
 public:
  // `staging_capacity` bounds the total bytes of one flush.
  SpBatcher(verbs::QueuePair& qp, std::size_t staging_capacity);

  sim::TaskT<verbs::Completion> flush_write(std::span<const BatchItem> items,
                                            std::uint64_t remote_base,
                                            std::uint32_t rkey) override;
  sim::TaskT<verbs::Completion> flush_read(std::span<const BatchItem> items,
                                           std::uint64_t remote_base,
                                           std::uint32_t rkey) override;
  const char* name() const override { return "SP"; }

 private:
  verbs::QueuePair& qp_;
  verbs::Buffer staging_;
  verbs::MemoryRegion* staging_mr_;
};

// Doorbell — one doorbell MMIO rings n independent WQEs (Kalia et al.).
// Saves CPU MMIOs only: still n WQEs through the execution unit and n
// packets on the wire.
class DoorbellBatcher final : public Batcher {
 public:
  explicit DoorbellBatcher(verbs::QueuePair& qp) : qp_(qp) {}

  sim::TaskT<verbs::Completion> flush_write(std::span<const BatchItem> items,
                                            std::uint64_t remote_base,
                                            std::uint32_t rkey) override;
  sim::TaskT<verbs::Completion> flush_read(std::span<const BatchItem> items,
                                           std::uint64_t remote_base,
                                           std::uint32_t rkey) override;
  const char* name() const override { return "Doorbell"; }

 private:
  verbs::QueuePair& qp_;
};

// SGL — scatter/gather list: one WQE whose SGL points at every piece; the
// RNIC gathers them over PCIe. No CPU gather, but each extra SGE costs a
// descriptor fetch on the NIC, so it scales well only to modest batch
// sizes (§III-A "good in a small range").
class SglBatcher final : public Batcher {
 public:
  explicit SglBatcher(verbs::QueuePair& qp) : qp_(qp) {}

  sim::TaskT<verbs::Completion> flush_write(std::span<const BatchItem> items,
                                            std::uint64_t remote_base,
                                            std::uint32_t rkey) override;
  sim::TaskT<verbs::Completion> flush_read(std::span<const BatchItem> items,
                                           std::uint64_t remote_base,
                                           std::uint32_t rkey) override;
  const char* name() const override { return "SGL"; }

 private:
  verbs::QueuePair& qp_;
};

}  // namespace rdmasem::remem
