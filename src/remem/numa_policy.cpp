#include "remem/numa_policy.hpp"

#include <cstring>

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "util/assert.hpp"

namespace rdmasem::remem {

ProxySocketRouter::ProxySocketRouter(sim::Engine& engine,
                                     const hw::ModelParams& p)
    : engine_(engine), p_(p) {
  routes_.resize(p.sockets_per_machine);
  for (auto& per_socket : routes_) per_socket.resize(p.machines);
}

ProxySocketRouter::~ProxySocketRouter() = default;

void ProxySocketRouter::add_route(hw::SocketId socket,
                                  std::uint32_t remote_machine,
                                  verbs::QueuePair* qp) {
  Route& r = routes_.at(socket).at(remote_machine);
  RDMASEM_CHECK_MSG(r.qp == nullptr, "route already registered");
  r.qp = qp;
  r.staging = verbs::Buffer(kSlotBytes * kSlots);
  // Staging lives on the proxy's socket: this is the point of the design.
  r.staging_mr = qp->context().register_buffer(r.staging, socket);
  r.inbox = std::make_unique<sim::Channel<Request>>(engine_);
  r.slot_sem = std::make_unique<sim::Semaphore>(engine_, kSlots);
  r.free_slots.reserve(kSlots);
  for (std::uint32_t s = 0; s < kSlots; ++s) r.free_slots.push_back(s);
  // The proxy worker belongs to the QP's machine: park it on that lane so
  // the whole request/response path stays lane-local.
  engine_.spawn_on(qp->context().machine().id() + 1, worker(&r));
}

ProxySocketRouter::Route* ProxySocketRouter::route_for(hw::SocketId socket,
                                                       std::uint32_t machine) {
  Route& r = routes_.at(socket).at(machine);
  RDMASEM_CHECK_MSG(r.qp != nullptr, "no route for (socket, machine)");
  return &r;
}

sim::Task ProxySocketRouter::serve_one(Route* route, Request req) {
  const verbs::Completion c = co_await route->qp->execute(std::move(req.wr));

  // READ/atomic results land in staging; copy them back to the caller's
  // buffers on the response hop.
  auto& ctx = route->qp->context();
  if (c.ok() && (req.original.opcode == verbs::Opcode::kRead ||
                 req.original.opcode == verbs::Opcode::kCompSwap ||
                 req.original.opcode == verbs::Opcode::kFetchAdd)) {
    const std::byte* src =
        route->staging.data() + req.slot * kSlotBytes;
    sim::Duration cpu = 0;
    for (const auto& sge : req.original.sg_list) {
      verbs::MemoryRegion* mr = ctx.lookup(sge.lkey);
      RDMASEM_CHECK(mr != nullptr);
      std::memcpy(mr->at(sge.addr), src, sge.length);
      src += sge.length;
      cpu += p_.memcpy_time(sge.length);
    }
    co_await sim::delay(engine_, cpu);
  }

  route->free_slots.push_back(req.slot);
  route->slot_sem->release();

  // Response hop back through the second shm queue.
  co_await sim::delay(engine_, p_.cpu_ipc);
  req.reply->push(c);
}

sim::Task ProxySocketRouter::worker(Route* route) {
  // Proxy-socket worker: drains its shm inbox forever (it parks on the
  // empty channel between bursts). Requests are pipelined — the worker
  // pays the dequeue cost and spawns the round trip, like a real proxy
  // thread keeping many WRs in flight.
  for (;;) {
    Request req = co_await route->inbox->pop();
    co_await sim::delay(engine_, p_.cpu_ipc / 2);
    engine_.spawn(serve_one(route, std::move(req)));
  }
}

sim::TaskT<verbs::Completion> ProxySocketRouter::submit(
    hw::SocketId caller_socket, hw::SocketId target_socket,
    std::uint32_t remote_machine, verbs::WorkRequest wr) {
  Route* route = route_for(target_socket, remote_machine);
  // All router state lives on the local machine's lane.
  co_await sim::settle(engine_, route->qp->context().machine().id() + 1);
  obs::Hub& hub = route->qp->context().cluster().obs();
  if (caller_socket == target_socket) {
    ++direct_;
    hub.proxy_direct.inc();
    co_return co_await route->qp->execute(std::move(wr));
  }
  ++proxied_;
  hub.proxy_hops.inc();
  auto& ctx = route->qp->context();
  const std::size_t total = wr.total_length();
  RDMASEM_CHECK_MSG(total <= kSlotBytes, "proxied WR exceeds staging slot");

  // Reserve a staging slot on the proxy's socket.
  co_await route->slot_sem->acquire();
  RDMASEM_CHECK(!route->free_slots.empty());
  const std::uint32_t slot = route->free_slots.back();
  route->free_slots.pop_back();

  Request req;
  req.original = wr;
  req.slot = slot;
  std::byte* dst = route->staging.data() + slot * kSlotBytes;

  if (wr.opcode == verbs::Opcode::kWrite ||
      wr.opcode == verbs::Opcode::kSend) {
    // Payload crosses with the message: gather into the staging slot.
    sim::Duration cpu = 0;
    std::size_t off = 0;
    for (const auto& sge : wr.sg_list) {
      verbs::MemoryRegion* mr = ctx.lookup(sge.lkey);
      RDMASEM_CHECK_MSG(mr != nullptr, "proxied WR: bad lkey");
      std::memcpy(dst + off, mr->at(sge.addr), sge.length);
      off += sge.length;
      cpu += p_.memcpy_time(sge.length);
    }
    co_await sim::delay(engine_, cpu);
  }
  // Rewrite the WR to use the staging slot (one contiguous SGE).
  req.wr = wr;
  req.wr.sg_list = {{route->staging_mr->addr + slot * kSlotBytes,
                     static_cast<std::uint32_t>(total ? total : 8),
                     route->staging_mr->key}};

  // Request hop into the proxy socket's inbox.
  co_await sim::delay(engine_, p_.cpu_ipc);
  sim::Channel<verbs::Completion> reply(engine_);
  req.reply = &reply;
  route->inbox->push(std::move(req));
  co_return co_await reply.pop();
}

}  // namespace rdmasem::remem
