#include "remem/batch.hpp"

#include "util/assert.hpp"

namespace rdmasem::remem {

SpBatcher::SpBatcher(verbs::QueuePair& qp, std::size_t staging_capacity)
    : qp_(qp), staging_(staging_capacity) {
  // Staging lives on the socket the QP's port hangs off: SP is always
  // paired with NUMA-clean placement in the paper's designs.
  staging_mr_ = qp_.context().register_buffer(
      staging_, qp_.context().machine().port_socket(qp_.config().port));
}

sim::TaskT<verbs::Completion> SpBatcher::flush_write(
    std::span<const BatchItem> items, std::uint64_t remote_base,
    std::uint32_t rkey) {
  auto& eng = qp_.context().engine();
  const auto& p = qp_.context().params();

  // CPU gather (Algorithm 1, lines 1-3): copy every piece into the
  // staging buffer. Real bytes move; the copies are charged to this task.
  std::size_t off = 0;
  sim::Duration cpu = 0;
  for (const auto& item : items) {
    RDMASEM_CHECK_MSG(qp_.context().lookup(item.local.lkey) != nullptr,
                      "SP gather: bad lkey");
    RDMASEM_CHECK_MSG(off + item.local.length <= staging_.size(),
                      "SP staging overflow");
    verbs::QueuePair::gather_sges(qp_.context(), &item.local, 1,
                                  staging_.data() + off);
    cpu += p.memcpy_time(item.local.length);
    off += item.local.length;
  }
  co_await sim::delay(eng, cpu);

  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {
      {staging_mr_->addr, static_cast<std::uint32_t>(off), staging_mr_->key}};
  wr.remote_addr = remote_base;
  wr.rkey = rkey;
  co_return co_await qp_.execute(std::move(wr));
}

sim::TaskT<verbs::Completion> SpBatcher::flush_read(
    std::span<const BatchItem> items, std::uint64_t remote_base,
    std::uint32_t rkey) {
  auto& eng = qp_.context().engine();
  const auto& p = qp_.context().params();
  std::size_t total = 0;
  for (const auto& item : items) total += item.local.length;
  RDMASEM_CHECK_MSG(total <= staging_.size(), "SP staging overflow");

  // One READ of the contiguous remote range into staging...
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kRead;
  wr.sg_list = {
      {staging_mr_->addr, static_cast<std::uint32_t>(total),
       staging_mr_->key}};
  wr.remote_addr = remote_base;
  wr.rkey = rkey;
  auto c = co_await qp_.execute(std::move(wr));
  if (!c.ok()) co_return c;

  // ...then a CPU scatter into the callers' buffers (Algorithm 1 in
  // reverse; this is SP's extra CPU cost on the read path too).
  std::size_t off = 0;
  sim::Duration cpu = 0;
  for (const auto& item : items) {
    RDMASEM_CHECK_MSG(qp_.context().lookup(item.local.lkey) != nullptr,
                      "SP scatter: bad lkey");
    verbs::QueuePair::scatter_sges(qp_.context(), &item.local, 1,
                                   staging_.data() + off, item.local.length);
    cpu += p.memcpy_time(item.local.length);
    off += item.local.length;
  }
  co_await sim::delay(eng, cpu);
  co_return c;
}

sim::TaskT<verbs::Completion> DoorbellBatcher::flush_write(
    std::span<const BatchItem> items, std::uint64_t remote_base,
    std::uint32_t rkey) {
  (void)remote_base;  // doorbell items carry their own destinations
  std::vector<verbs::WorkRequest> wrs;
  wrs.reserve(items.size());
  for (const auto& item : items) {
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sg_list = {item.local};
    wr.remote_addr = item.remote_addr;
    wr.rkey = rkey;
    wr.signaled = false;  // selective signaling: only the last CQEs
    wrs.push_back(std::move(wr));
  }
  co_return co_await qp_.execute_batch(std::move(wrs));
}

sim::TaskT<verbs::Completion> DoorbellBatcher::flush_read(
    std::span<const BatchItem> items, std::uint64_t remote_base,
    std::uint32_t rkey) {
  (void)remote_base;  // doorbell items carry their own sources
  std::vector<verbs::WorkRequest> wrs;
  wrs.reserve(items.size());
  for (const auto& item : items) {
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kRead;
    wr.sg_list = {item.local};
    wr.remote_addr = item.remote_addr;
    wr.rkey = rkey;
    wr.signaled = false;
    wrs.push_back(std::move(wr));
  }
  co_return co_await qp_.execute_batch(std::move(wrs));
}

sim::TaskT<verbs::Completion> SglBatcher::flush_write(
    std::span<const BatchItem> items, std::uint64_t remote_base,
    std::uint32_t rkey) {
  const auto& p = qp_.context().params();
  RDMASEM_CHECK_MSG(items.size() <= p.rnic_max_sge,
                    "SGL batch exceeds the NIC's SGE limit");
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list.reserve(items.size());
  for (const auto& item : items) wr.sg_list.push_back(item.local);
  wr.remote_addr = remote_base;
  wr.rkey = rkey;
  co_return co_await qp_.execute(std::move(wr));
}

sim::TaskT<verbs::Completion> SglBatcher::flush_read(
    std::span<const BatchItem> items, std::uint64_t remote_base,
    std::uint32_t rkey) {
  const auto& p = qp_.context().params();
  RDMASEM_CHECK_MSG(items.size() <= p.rnic_max_sge,
                    "SGL batch exceeds the NIC's SGE limit");
  // One READ; the NIC scatters the contiguous response across the SGEs.
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kRead;
  wr.sg_list.reserve(items.size());
  for (const auto& item : items) wr.sg_list.push_back(item.local);
  wr.remote_addr = remote_base;
  wr.rkey = rkey;
  co_return co_await qp_.execute(std::move(wr));
}

}  // namespace rdmasem::remem
