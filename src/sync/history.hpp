#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rdmasem::sync {

// Deterministic history recording on the virtual clock. Every worker
// records its operations into a private per-worker log (no cross-worker
// synchronization, so recording cannot perturb the run), and merged()
// produces ONE canonical order — a pure function of virtual timestamps
// and worker ids — that is byte-identical at every RDMASEM_SHARDS setting.
// The merged history feeds the linearizability / serializability checkers
// (sync/checker.hpp).

enum class OpKind : std::uint8_t {
  kGet,  // optimistic read: value/version as observed
  kPut,  // blind locked write: value written, version it created
  kTxn,  // read-validate-write increment: read_version -> version
};

struct Op {
  OpKind kind = OpKind::kGet;
  std::uint32_t worker = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;         // put/txn: value written; get: value seen
  std::uint64_t version = 0;       // version observed (get) / created (put/txn)
  std::uint64_t read_version = 0;  // txn: the version the validate saw
  bool ok = true;                  // false: aborted / validation exhausted
  sim::Time invoke = 0;
  sim::Time response = 0;
};

const char* to_string(OpKind k);

class HistoryRecorder {
 public:
  explicit HistoryRecorder(std::uint32_t workers) : logs_(workers) {}

  void record(std::uint32_t worker, const Op& op) {
    logs_[worker].push_back(op);
  }
  std::uint32_t workers() const {
    return static_cast<std::uint32_t>(logs_.size());
  }
  std::size_t total_ops() const;

  // Canonical merge: sorted by (invoke, response, worker, per-worker
  // sequence). Stable across shard counts because every component is.
  std::vector<Op> merged() const;

  // One line per op — the byte-identity digest tests compare across
  // shard counts.
  std::string render() const;

 private:
  std::vector<std::vector<Op>> logs_;
};

// All ops of `key`, in merged order.
std::vector<Op> ops_for_key(const std::vector<Op>& merged, std::uint64_t key);

}  // namespace rdmasem::sync
