#include "sync/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_set>

namespace rdmasem::sync {

namespace {

std::string op_line(const Op& op) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s w%u k%llu v=%llu ver=%llu [%llu,%llu]",
                to_string(op.kind), op.worker,
                static_cast<unsigned long long>(op.key),
                static_cast<unsigned long long>(op.value),
                static_cast<unsigned long long>(op.version),
                static_cast<unsigned long long>(op.invoke),
                static_cast<unsigned long long>(op.response));
  return buf;
}

// Depth-first Wing & Gong: pick any op whose invocation precedes every
// remaining response (i.e. nothing else finished strictly before it
// started), apply register semantics, recurse. Memoized on
// (remaining mask, register value).
struct LinSearch {
  const std::vector<Op>& ops;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;

  bool search(std::uint64_t mask, std::uint64_t value) {
    if (mask == 0) return true;
    if (!seen.insert({mask, value}).second) return false;
    sim::Time min_resp = ~static_cast<sim::Time>(0);
    for (std::size_t i = 0; i < ops.size(); ++i)
      if (mask & (1ull << i)) min_resp = std::min(min_resp, ops[i].response);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!(mask & (1ull << i))) continue;
      const Op& op = ops[i];
      if (op.invoke > min_resp) continue;  // something finished before it began
      if (op.kind == OpKind::kGet) {
        if (op.value != value) continue;
        if (search(mask & ~(1ull << i), value)) return true;
      } else {
        if (search(mask & ~(1ull << i), op.value)) return true;
      }
    }
    return false;
  }
};

}  // namespace

LinResult check_linearizable_register(const std::vector<Op>& key_ops,
                                      std::uint64_t initial_value) {
  LinResult r;
  std::vector<Op> ops;
  for (const Op& op : key_ops)
    if (op.ok) ops.push_back(op);  // aborted/invalid ops took no effect
  r.ops = ops.size();
  if (ops.size() > 64) {
    r.diag = "history too large for the mask-memoized search (>64 ops)";
    return r;
  }
  // Phantom screen: a get must return the initial value or some put's
  // value. A torn snapshot fails here with a named witness.
  std::unordered_set<std::uint64_t> writable{initial_value};
  for (const Op& op : ops)
    if (op.kind != OpKind::kGet) writable.insert(op.value);
  for (const Op& op : ops) {
    if (op.kind == OpKind::kGet && writable.find(op.value) == writable.end()) {
      r.diag = "phantom value (no put ever wrote it): " + op_line(op);
      return r;
    }
  }
  LinSearch s{ops, {}};
  const std::uint64_t full =
      ops.size() == 64 ? ~0ull : ((1ull << ops.size()) - 1);
  if (!s.search(full, initial_value)) {
    r.diag = "no linearization exists for this history";
    return r;
  }
  r.ok = true;
  return r;
}

std::string TxnAudit::render() const {
  char head[160];
  std::snprintf(head, sizeof head,
                "txn audit: commits=%llu gets=%llu aborts=%llu violations=%llu\n",
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(gets),
                static_cast<unsigned long long>(aborts),
                static_cast<unsigned long long>(violations));
  std::string out = head;
  for (const auto& i : issues) out += "  " + i + "\n";
  return out;
}

TxnAudit audit_increments(const std::vector<Op>& key_ops,
                          std::uint64_t initial_version,
                          std::uint64_t initial_value,
                          std::uint64_t final_version,
                          std::uint64_t final_value) {
  TxnAudit a;
  auto flag = [&a](std::string msg) {
    ++a.violations;
    if (a.issues.size() < 16) a.issues.push_back(std::move(msg));
  };

  std::vector<const Op*> commits;
  for (const Op& op : key_ops) {
    if (op.kind == OpKind::kTxn) {
      if (!op.ok) {
        ++a.aborts;
        continue;
      }
      ++a.commits;
      commits.push_back(&op);
      if (op.version != op.read_version + 2)
        flag("txn version stride != 2: " + op_line(op));
    } else if (op.kind == OpKind::kGet && op.ok) {
      ++a.gets;
    }
  }

  // Committed read-versions must be unique (two txns reading the same
  // version == a lost update) and dense from the initial version.
  std::set<std::uint64_t> read_versions;
  for (const Op* op : commits) {
    if (!read_versions.insert(op->read_version).second)
      flag("duplicate read version (lost update): " + op_line(*op));
    if (op->read_version < initial_version ||
        ((op->read_version - initial_version) & 1) != 0)
      flag("read version outside the seqlock lattice: " + op_line(*op));
    // Value semantics: commit k (by version order) writes initial+k+1.
    const std::uint64_t k = (op->read_version - initial_version) / 2;
    if (op->value != initial_value + k + 1)
      flag("commit value != initial + commit index: " + op_line(*op));
  }
  if (!read_versions.empty()) {
    const std::uint64_t expect_top =
        initial_version + 2 * (a.commits - 1);
    if (*read_versions.rbegin() != expect_top ||
        *read_versions.begin() != initial_version)
      flag("committed read versions are not dense from the initial version");
  }

  // Final cell state must reflect exactly the committed increments.
  if (final_version != initial_version + 2 * a.commits)
    flag("final version " + std::to_string(final_version) + " != initial + 2*" +
         std::to_string(a.commits));
  if (final_value != initial_value + a.commits)
    flag("final value " + std::to_string(final_value) + " != initial + " +
         std::to_string(a.commits) + " (lost update)");

  // Every validated get must observe a state some commit produced.
  for (const Op& op : key_ops) {
    if (op.kind != OpKind::kGet || !op.ok) continue;
    if (op.version < initial_version ||
        ((op.version - initial_version) & 1) != 0 ||
        op.version > initial_version + 2 * a.commits) {
      flag("get observed a version no commit produced: " + op_line(op));
      continue;
    }
    const std::uint64_t k = (op.version - initial_version) / 2;
    if (op.value != initial_value + k)
      flag("get (version,value) pair never existed (torn read): " +
           op_line(op));
  }
  return a;
}

}  // namespace rdmasem::sync
