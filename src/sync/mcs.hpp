#pragma once

#include <cstdint>

#include "remem/atomics.hpp"
#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "sync/variant.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::sync {

// McsLock — an MCS-style queue lock in remote memory, built from CAS only
// (the verbs layer has no unconditional SWAP, so the tail swap is a
// CAS-retry loop — the loop whose stale-compare handling the atomics
// audit hardened, see verbs::kPoisonedAtomicOld).
//
// Server layout at `base_addr` (all u64):
//
//   [ tail ] [ qnode 1: next, locked ] [ qnode 2: next, locked ] ...
//
// tail == 0 (kNil) means free; otherwise it holds the id (1-based) of the
// last waiter. Client id N's qnode lives at base + 8 + 16*(N-1).
//
// Acquire: reset my qnode {next=0, locked=1}; swap tail <- my id; if there
// was a predecessor, link myself into its `next` and spin-READ my `locked`
// until the predecessor hands off. Release: READ my `next`; with a
// successor, WRITE its `locked` = 0 (direct handoff — FIFO by
// construction); with none, CAS tail back to 0, falling back to the
// "successor mid-enqueue" poll when the CAS loses.
//
// Fencing contract: release() itself is protocol-correct in every
// variant; whether the CALLER awaits its critical-section data writes
// before releasing is the sync::Variant::kUnfencedRelease knob, applied
// where the data writes live (sync::SpinLock guard / apps::txkv).
class McsLock {
 public:
  static constexpr std::uint64_t kNil = 0;

  struct Layout {
    std::uint32_t max_clients = 64;
    std::size_t bytes() const { return 8 + 16ul * max_clients; }
    std::uint64_t qnode_off(std::uint64_t id) const { return 8 + 16 * (id - 1); }
  };

  // `client_id` is 1-based and must be unique per client of this lock.
  McsLock(verbs::QueuePair& qp, std::uint64_t base_addr, std::uint32_t rkey,
          Layout layout, std::uint32_t client_id,
          remem::BackoffPolicy poll_backoff = {});

  // Returns the number of tail-CAS attempts spent (>= 1).
  sim::TaskT<remem::Outcome<std::uint32_t>> acquire();
  sim::TaskT<verbs::Status> release();

  // Repoints at another lock of the same layout (same client id). Only
  // legal while not held: the qnode is re-initialized by every acquire,
  // so no per-lock state survives in the handle.
  void retarget(std::uint64_t base_addr);

  bool held() const { return held_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  // Acquisitions that waited behind a predecessor (handoff receives).
  std::uint64_t queued_acquisitions() const { return queued_acquisitions_; }

 private:
  sim::TaskT<remem::Outcome<std::uint64_t>> read_u64(std::uint64_t raddr);
  sim::TaskT<verbs::Status> write_u64(std::uint64_t raddr, std::uint64_t v,
                                      std::size_t slot);

  verbs::QueuePair& qp_;
  std::uint64_t base_addr_;
  std::uint32_t rkey_;
  Layout layout_;
  std::uint32_t id_;
  remem::BackoffPolicy poll_backoff_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_;
  bool held_ = false;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t queued_acquisitions_ = 0;
};

}  // namespace rdmasem::sync
