#pragma once

#include <cstdint>
#include <vector>

#include "remem/atomics.hpp"
#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "sync/variant.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::sync {

// The paper's baseline one-sided sequencer (§III-E), re-exported under the
// sync roof so apps built on this layer name one namespace.
using Sequencer = remem::RemoteSequencer;

// SpinLock — the paper's baseline CAS spinlock (§III-E,
// remem::RemoteSpinlock) plus the one thing the baseline leaves implicit:
// HOW the critical section's data writes are ordered against the release.
//
// commit_and_release() is that composition. Correct variant: every data
// WR is executed and awaited — each CQE certifies remote landing — before
// the 8-byte release write posts. kUnfencedRelease: the data WRs are
// posted fire-and-forget and the release follows immediately; because the
// model's loss recovery is per-WR, a lost data write's retransmit can
// land AFTER the release (and after the next holder's writes), which is
// the lost-update corruption the chaos battery must catch.
class SpinLock {
 public:
  SpinLock(verbs::QueuePair& qp, std::uint64_t remote_addr, std::uint32_t rkey,
           remem::BackoffPolicy backoff = {},
           Variant variant = Variant::kCorrect)
      : qp_(qp), variant_(variant), impl_(qp, remote_addr, rkey, backoff) {}

  sim::TaskT<remem::Outcome<std::uint32_t>> acquire();
  sim::TaskT<verbs::Status> release();
  // Lands `data` inside the critical section, then releases, with the
  // fencing discipline selected by the variant (see above).
  sim::TaskT<verbs::Status> commit_and_release(
      std::vector<verbs::WorkRequest> data);

  Variant variant() const { return variant_; }
  std::uint64_t acquisitions() const { return impl_.acquisitions(); }
  std::uint64_t cas_attempts() const { return impl_.cas_attempts(); }

 private:
  verbs::QueuePair& qp_;
  Variant variant_;
  remem::RemoteSpinlock impl_;
};

}  // namespace rdmasem::sync
