#include "sync/versioned.hpp"

#include <cstring>

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "util/assert.hpp"

namespace rdmasem::sync {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t cell_checksum(std::uint64_t version, const std::uint64_t* payload,
                            std::uint32_t words) {
  std::uint64_t h = mix64(version ^ 0x73796e632e766572ull);  // "sync.ver"
  for (std::uint32_t i = 0; i < words; ++i) h = mix64(h ^ payload[i]);
  return h;
}

void cell_format(std::byte* mem, const CellLayout& layout,
                 std::uint64_t version, const std::uint64_t* payload) {
  RDMASEM_CHECK_MSG((version & 1) == 0, "cell version must be even");
  auto* w = reinterpret_cast<std::uint64_t*>(mem);
  w[0] = version;
  for (std::uint32_t i = 0; i < layout.payload_words; ++i) w[1 + i] = payload[i];
  w[1 + layout.payload_words] = version;
  w[2 + layout.payload_words] =
      cell_checksum(version, payload, layout.payload_words);
}

RemoteVersionedCell::RemoteVersionedCell(verbs::QueuePair& qp,
                                         std::uint64_t remote_addr,
                                         std::uint32_t rkey, CellLayout layout,
                                         Validation validation, Variant variant)
    : qp_(qp), remote_addr_(remote_addr), rkey_(rkey), layout_(layout),
      validation_(validation), variant_(variant),
      scratch_(2 * layout.bytes()) {
  RDMASEM_CHECK_MSG(layout_.payload_words >= 1, "empty cell payload");
  scratch_mr_ = qp_.context().register_buffer(
      scratch_, qp_.context().machine().port_socket(qp_.config().port));
}

bool RemoteVersionedCell::validate(const std::uint64_t* words) const {
  const std::uint64_t head = words[0];
  const std::uint64_t tail = words[1 + layout_.payload_words];
  if (head != tail || (head & 1) != 0) return false;
  if (validation_ == Validation::kChecksum &&
      words[2 + layout_.payload_words] !=
          cell_checksum(head, words + 1, layout_.payload_words))
    return false;
  return true;
}

sim::TaskT<remem::Outcome<RemoteVersionedCell::Snapshot>>
RemoteVersionedCell::read(std::uint32_t max_attempts) {
  obs::Hub& hub = qp_.context().cluster().obs();
  const auto cell_bytes = static_cast<std::uint32_t>(layout_.bytes());
  Snapshot snap;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    ++reads_;
    hub.opt_reads.inc();
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kRead;
    wr.sg_list = {{scratch_mr_->addr, cell_bytes, scratch_mr_->key}};
    wr.remote_addr = remote_addr_;
    wr.rkey = rkey_;
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    const auto* words = scratch_.as<std::uint64_t>(0);
    snap.attempts = attempt;
    if (variant_ == Variant::kTornRead) {
      // BROKEN: no recheck. Whatever the READ caught — including a
      // mid-commit snapshot whose halves came from different writes — is
      // handed to the caller as a valid value.
      snap.version = words[0] & ~1ull;
      snap.valid = true;
      snap.payload.assign(words + 1, words + 1 + layout_.payload_words);
      co_return snap;
    }
    if (validate(words)) {
      snap.version = words[0];
      snap.valid = true;
      snap.payload.assign(words + 1, words + 1 + layout_.payload_words);
      co_return snap;
    }
    ++retries_;
    hub.opt_retries.inc();
  }
  snap.valid = false;
  co_return snap;
}

sim::TaskT<verbs::Status> RemoteVersionedCell::write(
    std::uint64_t base_version, const std::uint64_t* payload) {
  RDMASEM_CHECK_MSG((base_version & 1) == 0, "write from an odd version");
  const std::uint32_t W = layout_.payload_words;
  const std::size_t stage_off = layout_.bytes();
  auto* stage = scratch_.as<std::uint64_t>(stage_off);
  stage[0] = base_version + 1;  // odd: write in progress
  std::memcpy(stage + 1, payload, 8ul * W);
  stage[1 + W] = base_version + 2;
  stage[2 + W] = cell_checksum(base_version + 2, payload, W);
  const std::uint64_t sbase = scratch_mr_->addr + stage_off;

  auto put = [this](std::uint64_t laddr, std::uint64_t raddr,
                    std::uint32_t len) {
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sg_list = {{laddr, len, scratch_mr_->key}};
    wr.remote_addr = raddr;
    wr.rkey = rkey_;
    return wr;
  };

  // Each step is awaited: the CQE of step N is the only fence the model
  // offers that step N landed before step N+1 starts.
  auto c = co_await qp_.execute(put(sbase, remote_addr_, 8));  // head -> odd
  if (!c.ok()) co_return c.status;
  const std::uint32_t half = W > 1 ? W / 2 : W;
  c = co_await qp_.execute(put(sbase + 8, remote_addr_ + layout_.off_payload(),
                               8 * half));
  if (!c.ok()) co_return c.status;
  if (half < W) {
    c = co_await qp_.execute(put(sbase + 8 + 8ul * half,
                                 remote_addr_ + layout_.off_payload() +
                                     8ul * half,
                                 8 * (W - half)));
    if (!c.ok()) co_return c.status;
  }
  c = co_await qp_.execute(
      put(sbase + 8ul * (1 + W), remote_addr_ + layout_.off_tail(), 16));
  if (!c.ok()) co_return c.status;
  stage[0] = base_version + 2;  // head -> new even version: commit point
  c = co_await qp_.execute(put(sbase, remote_addr_, 8));
  co_return c.status;
}

}  // namespace rdmasem::sync
