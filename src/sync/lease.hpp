#pragma once

#include <cstdint>

#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sync/variant.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::sync {

// LeaseLock — time-bounded exclusive ownership with epoch fencing, the
// crash-tolerant member of the lock family: a holder that dies (or
// stalls) simply stops renewing, and the next client takes over once the
// expiry passes — no recovery protocol, no stuck lock word.
//
// Server layout at `base_addr` (16 bytes):
//
//   word 0: lease word  = (epoch << 32) | expiry_us   (expiry 0 == free)
//   word 1: guard epoch = epoch of the current write-licensed holder
//
// Epochs increase by one per acquisition of the lease word (CAS-swapped,
// so the word never repeats — no ABA). After winning the lease the holder
// installs its epoch in the guard word; every protected write burst is
// preceded by fence(): a local expiry-margin check plus a
// CAS(guard: my_epoch -> my_epoch) probe whose completion orders before
// the burst. A stale holder's probe loses as soon as the next epoch's
// guard install lands.
//
// Model honesty (docs/SYNC.md): the margin must bound the probe RTT plus
// the caller's post-fence write burst under the configured fault
// envelope; a margin smaller than the worst-case landing skew reopens a
// (detectable, counted) takeover window. The kStaleLease variant skips
// BOTH the margin check and the probe — that is the negative sibling the
// battery must catch clobbering the next epoch's updates.
// Namespace-scope (not nested) so the default member initializers are
// complete by the time LeaseLock's constructor uses `= {}` as a default
// argument.
struct LeaseConfig {
  sim::Duration duration = sim::us(300);   // lease term
  sim::Duration margin = sim::us(40);      // fence safety margin
  sim::Duration retry_delay = sim::us(5);  // re-poll when the word is held
};

class LeaseLock {
 public:
  static constexpr std::size_t kBytes = 16;

  using Config = LeaseConfig;

  LeaseLock(verbs::QueuePair& qp, std::uint64_t base_addr, std::uint32_t rkey,
            Config cfg = {}, Variant variant = Variant::kCorrect);

  // Acquires the lease (waiting out the current term when held); returns
  // the epoch now owned. Installs the guard epoch before returning.
  sim::TaskT<remem::Outcome<std::uint64_t>> acquire();

  // Write license for one burst. Correct variant: false once the local
  // clock is within `margin` of expiry, or when the guard probe observes
  // a newer epoch (fence_aborts counter). kStaleLease: always true.
  sim::TaskT<remem::Outcome<bool>> fence();

  // Clears the expiry, keeping the epoch (the next acquire bumps it). A
  // lost CAS here means the lease was already taken over — not an error.
  sim::TaskT<verbs::Status> release();

  // Repoints at another lease word pair. Per-lease state (epoch, word,
  // deadline) resets: the next acquire re-learns the target's epoch from
  // the CAS-read word.
  void retarget(std::uint64_t base_addr) {
    base_addr_ = base_addr;
    epoch_ = 0;
    word_ = 0;
    deadline_ = 0;
  }

  std::uint64_t epoch() const { return epoch_; }
  // Virtual-time deadline of the currently held term (0 when never held).
  sim::Time deadline() const { return deadline_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t fence_aborts() const { return fence_aborts_; }

 private:
  static std::uint32_t to_expiry_us(sim::Time t) {
    return static_cast<std::uint32_t>(t / sim::kMicrosecond);
  }

  verbs::QueuePair& qp_;
  std::uint64_t base_addr_;
  std::uint32_t rkey_;
  Config cfg_;
  Variant variant_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_;
  std::uint64_t epoch_ = 0;
  std::uint64_t word_ = 0;  // lease word as last written by us
  sim::Time deadline_ = 0;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t fence_aborts_ = 0;
};

}  // namespace rdmasem::sync
