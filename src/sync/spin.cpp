#include "sync/spin.hpp"

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"

namespace rdmasem::sync {

sim::TaskT<remem::Outcome<std::uint32_t>> SpinLock::acquire() {
  const auto r = co_await impl_.lock();
  if (r.ok()) qp_.context().cluster().obs().lock_acquires.inc();
  co_return r;
}

sim::TaskT<verbs::Status> SpinLock::release() {
  co_return co_await impl_.unlock();
}

sim::TaskT<verbs::Status> SpinLock::commit_and_release(
    std::vector<verbs::WorkRequest> data) {
  if (variant_ == Variant::kUnfencedRelease) {
    // BROKEN: fire-and-forget data writes; the release races their
    // (possibly retransmitted) landings.
    for (auto& wr : data) {
      wr.signaled = false;
      co_await qp_.post(std::move(wr));
    }
  } else {
    for (auto& wr : data) {
      const auto c = co_await qp_.execute(std::move(wr));
      if (!c.ok()) co_return c.status;
    }
  }
  co_return co_await impl_.unlock();
}

}  // namespace rdmasem::sync
