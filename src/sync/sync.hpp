#pragma once

// One-sided synchronization over the verbs layer (docs/SYNC.md): the
// paper's baseline spinlock/sequencer plus the SIGMOD'23-guideline
// primitives — optimistic versioned reads, an MCS queue lock, leases with
// epoch fencing — each shipping with a deliberately-broken sibling behind
// sync::Variant, and the history/checker machinery that proves the
// correct ones and catches every broken one.

#include "sync/checker.hpp"
#include "sync/history.hpp"
#include "sync/lease.hpp"
#include "sync/mcs.hpp"
#include "sync/spin.hpp"
#include "sync/variant.hpp"
#include "sync/versioned.hpp"
