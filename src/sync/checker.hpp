#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sync/history.hpp"

namespace rdmasem::sync {

// The two correctness oracles the test battery runs over recorded
// histories (docs/SYNC.md "checker design"):
//
//  * check_linearizable_register — a small Wing & Gong search (memoized on
//    the remaining-set bitmask + register value) deciding whether one
//    key's completed get/put history is linearizable as an atomic
//    register. Histories are bounded to 64 ops per key so the mask fits a
//    word; the battery sizes its workloads accordingly. A get returning a
//    value no put ever wrote ("phantom", the torn-read signature) is
//    rejected before the search even starts, with a diagnostic naming it.
//
//  * audit_increments — serializability of read-validate-write increment
//    transactions on one key, checked by invariants that scale to any
//    history size: committed read-versions are unique and dense (versions
//    advance by 2, the seqlock stride), every committed value equals
//    initial + its commit index, the final cell state equals initial
//    advanced by exactly the commit count (a lost update breaks density
//    AND the final count), and every validated get observes a
//    (version, value) pair some commit actually produced.

struct LinResult {
  bool ok = false;
  std::size_t ops = 0;
  std::string diag;  // first violation found ("" when ok)
};

LinResult check_linearizable_register(const std::vector<Op>& key_ops,
                                      std::uint64_t initial_value);

struct TxnAudit {
  std::uint64_t commits = 0;
  std::uint64_t gets = 0;
  std::uint64_t aborts = 0;
  std::uint64_t violations = 0;
  std::vector<std::string> issues;  // capped at 16, one line each

  bool ok() const { return violations == 0; }
  std::string render() const;
};

// `final_version` / `final_value` are the cell's quiescent post-run state
// (read from server memory after the engine drains).
TxnAudit audit_increments(const std::vector<Op>& key_ops,
                          std::uint64_t initial_version,
                          std::uint64_t initial_value,
                          std::uint64_t final_version,
                          std::uint64_t final_value);

}  // namespace rdmasem::sync
