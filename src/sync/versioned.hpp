#pragma once

#include <cstdint>
#include <vector>

#include "remem/outcome.hpp"
#include "sim/task.hpp"
#include "sync/variant.hpp"
#include "verbs/buffer.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::sync {

// Versioned cell — the optimistic-read primitive (SIGMOD'23 "optimistic
// reads need a recheck"). A cell in remote memory is read with ONE RDMA
// READ and validated client-side; writers follow a seqlock-style protocol
// so any mid-commit snapshot is detectably inconsistent.
//
// Layout (all u64 words, little-endian host order):
//
//   [ v_head | payload[0..W) | v_tail | checksum ]
//
// Invariants the correct writer maintains:
//   * v_head == v_tail and even  <=>  the cell is quiescent;
//   * v_head is bumped to odd BEFORE any payload byte moves and back to
//     the new even version only after payload + v_tail + checksum landed;
//   * checksum == cell_checksum(version, payload).
//
// A single READ response lands as one memcpy in this model (no intra-WR
// tearing), so the only way a reader sees a torn payload is by catching a
// multi-WR write mid-flight — exactly what the validation detects and the
// kTornRead variant ignores.

struct CellLayout {
  std::uint32_t payload_words = 4;

  std::size_t bytes() const { return 8 * (payload_words + 3ul); }
  std::size_t off_head() const { return 0; }
  std::size_t off_payload() const { return 8; }
  std::size_t off_tail() const { return 8 + 8ul * payload_words; }
  std::size_t off_cksum() const { return off_tail() + 8; }
};

// Mixes version and payload into a checksum word (splitmix64 fold). Not
// cryptographic — it only needs to make torn payloads detectable.
std::uint64_t cell_checksum(std::uint64_t version, const std::uint64_t* payload,
                            std::uint32_t words);

// Formats a quiescent cell (version `version`, consistent checksum) into
// host-visible server memory (MemoryRegion::at of the cell base).
void cell_format(std::byte* mem, const CellLayout& layout,
                 std::uint64_t version, const std::uint64_t* payload);

// Validation mode for the correct read variant.
enum class Validation : std::uint8_t {
  kVersionPair,  // v_head == v_tail, even
  kChecksum,     // version pair AND checksum recomputation
};

// Client handle: one per (worker, cell-range). Owns a private scratch MR
// sized for one cell landing plus the write staging area.
class RemoteVersionedCell {
 public:
  struct Snapshot {
    std::uint64_t version = 0;
    bool valid = false;     // validation passed (always true under kTornRead)
    std::uint32_t attempts = 0;
    std::vector<std::uint64_t> payload;
  };

  RemoteVersionedCell(verbs::QueuePair& qp, std::uint64_t remote_addr,
                      std::uint32_t rkey, CellLayout layout,
                      Validation validation = Validation::kChecksum,
                      Variant variant = Variant::kCorrect);

  // One-sided optimistic read: READ the whole cell, validate, retry while
  // the snapshot is mid-commit (up to max_attempts). Fails only on
  // transport errors; validation exhaustion returns valid == false.
  // The kTornRead variant performs a single READ and returns whatever it
  // caught, claiming valid.
  sim::TaskT<remem::Outcome<Snapshot>> read(std::uint32_t max_attempts = 256);

  // Seqlock write: requires exclusive write ownership (a lock, a lease, or
  // a single-writer protocol) and the cell's current version. Lands the
  // payload in two halves so the tear window is real, then commits
  // [v_tail|checksum] and finally v_head = base_version + 2. Every WR is
  // awaited: the writer's CQEs are the fence that orders the protocol.
  sim::TaskT<verbs::Status> write(std::uint64_t base_version,
                                  const std::uint64_t* payload);

  // Repoints the handle at another cell of the same layout (the scratch
  // MR is layout-sized, not address-bound). Lets one handle serve a whole
  // key space — a worker fleet would otherwise register workers*keys MRs.
  void retarget(std::uint64_t remote_addr) { remote_addr_ = remote_addr; }

  const CellLayout& layout() const { return layout_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t retries() const { return retries_; }

 private:
  bool validate(const std::uint64_t* words) const;

  verbs::QueuePair& qp_;
  std::uint64_t remote_addr_;
  std::uint32_t rkey_;
  CellLayout layout_;
  Validation validation_;
  Variant variant_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_;
  std::uint64_t reads_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace rdmasem::sync
