#include "sync/lease.hpp"

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace rdmasem::sync {

LeaseLock::LeaseLock(verbs::QueuePair& qp, std::uint64_t base_addr,
                     std::uint32_t rkey, Config cfg, Variant variant)
    : qp_(qp), base_addr_(base_addr), rkey_(rkey), cfg_(cfg),
      variant_(variant), scratch_(64) {
  scratch_mr_ = qp_.context().register_buffer(
      scratch_, qp_.context().machine().port_socket(qp_.config().port));
}

sim::TaskT<remem::Outcome<std::uint64_t>> LeaseLock::acquire() {
  obs::Hub& hub = qp_.context().cluster().obs();
  sim::Engine& eng = qp_.context().engine();
  for (;;) {
    // Snapshot the lease word.
    verbs::WorkRequest rd;
    rd.opcode = verbs::Opcode::kRead;
    rd.sg_list = {{scratch_mr_->addr + 32, 8, scratch_mr_->key}};
    rd.remote_addr = base_addr_;
    rd.rkey = rkey_;
    const auto rc = co_await qp_.execute(std::move(rd));
    if (!rc.ok()) co_return rc.status;
    const std::uint64_t w = *scratch_.as<std::uint64_t>(32);
    const std::uint64_t cur_epoch = w >> 32;
    const std::uint32_t expiry_us = static_cast<std::uint32_t>(w);
    const std::uint32_t now_us = to_expiry_us(eng.now());

    if (expiry_us != 0 && now_us < expiry_us) {
      // Held: sleep out the remaining term (plus a retry beat) and retry.
      const sim::Duration rest =
          static_cast<sim::Duration>(expiry_us - now_us) * sim::kMicrosecond;
      co_await sim::delay(eng, rest + cfg_.retry_delay);
      continue;
    }

    // Free or expired: claim epoch+1 with a term starting now. +1 on the
    // expiry bucket so a sub-microsecond term never truncates to "free".
    const std::uint32_t new_expiry =
        to_expiry_us(eng.now() + cfg_.duration) + 1;
    const std::uint64_t new_w = ((cur_epoch + 1) << 32) | new_expiry;
    hub.cas_attempts.inc();
    verbs::WorkRequest cas;
    cas.opcode = verbs::Opcode::kCompSwap;
    cas.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
    cas.remote_addr = base_addr_;
    cas.rkey = rkey_;
    cas.compare = w;
    cas.swap_or_add = new_w;
    const auto c = co_await qp_.execute(std::move(cas));
    if (!c.ok()) co_return c.status;
    if (c.atomic_old != w) {
      hub.cas_failures.inc();  // raced with another claimant
      co_await sim::delay(eng, cfg_.retry_delay);
      continue;
    }

    epoch_ = cur_epoch + 1;
    word_ = new_w;
    deadline_ = static_cast<sim::Time>(new_expiry) * sim::kMicrosecond;
    ++acquisitions_;
    hub.lease_epoch_bumps.inc();

    // Install the guard epoch: from this completion on, every older
    // epoch's fence probe loses.
    *scratch_.as<std::uint64_t>(40) = epoch_;
    verbs::WorkRequest gw;
    gw.opcode = verbs::Opcode::kWrite;
    gw.sg_list = {{scratch_mr_->addr + 40, 8, scratch_mr_->key}};
    gw.remote_addr = base_addr_ + 8;
    gw.rkey = rkey_;
    const auto g = co_await qp_.execute(std::move(gw));
    if (!g.ok()) co_return g.status;
    co_return epoch_;
  }
}

sim::TaskT<remem::Outcome<bool>> LeaseLock::fence() {
  obs::Hub& hub = qp_.context().cluster().obs();
  if (variant_ == Variant::kStaleLease) {
    // BROKEN: no expiry check, no guard probe — the holder keeps its
    // write license forever, straight through the next epoch's term.
    co_return true;
  }
  sim::Engine& eng = qp_.context().engine();
  if (eng.now() + cfg_.margin >= deadline_) {
    ++fence_aborts_;
    hub.lease_fence_aborts.inc();
    co_return false;
  }
  // Guard probe: CAS(guard: my epoch -> my epoch). Pure read-for-ordering;
  // its completion is the fence the following write burst rides on.
  verbs::WorkRequest cas;
  cas.opcode = verbs::Opcode::kCompSwap;
  cas.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
  cas.remote_addr = base_addr_ + 8;
  cas.rkey = rkey_;
  cas.compare = epoch_;
  cas.swap_or_add = epoch_;
  const auto c = co_await qp_.execute(std::move(cas));
  if (!c.ok()) co_return c.status;
  if (c.atomic_old != epoch_) {
    ++fence_aborts_;
    hub.lease_fence_aborts.inc();
    co_return false;
  }
  co_return true;
}

sim::TaskT<verbs::Status> LeaseLock::release() {
  RDMASEM_CHECK_MSG(epoch_ != 0, "release before any acquire");
  verbs::WorkRequest cas;
  cas.opcode = verbs::Opcode::kCompSwap;
  cas.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
  cas.remote_addr = base_addr_;
  cas.rkey = rkey_;
  cas.compare = word_;
  cas.swap_or_add = epoch_ << 32;  // expiry 0: free, epoch preserved
  const auto c = co_await qp_.execute(std::move(cas));
  deadline_ = 0;
  co_return c.status;  // a lost CAS means it was taken over — fine
}

}  // namespace rdmasem::sync
