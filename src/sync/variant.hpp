#pragma once

#include <cstdint>

namespace rdmasem::sync {

// Variant — selects between a primitive's correct protocol and its
// deliberately-broken sibling. Every broken variant reproduces a bug class
// the SIGMOD'23 one-sided-synchronization guidelines call out, and every
// one of them MUST be caught by the checker/invariant battery
// (tests/sync_test.cpp NegativeMatrix — zero silent passes). The broken
// siblings are test ammunition, not options: production code paths assert
// against them where it matters (docs/SYNC.md).
enum class Variant : std::uint8_t {
  kCorrect = 0,
  // Optimistic read without the version-pair / checksum recheck: returns
  // whatever snapshot the READ happened to catch, including mid-commit
  // states where the payload halves disagree.
  kTornRead,
  // Lock release posted as a plain WRITE without fencing on the critical
  // section's data writes. The model's loss recovery is per-WR (selective
  // retransmit), so an unfenced release can land while a lost data write
  // is still backing off — the next holder reads stale data and the
  // retransmit later clobbers its update.
  kUnfencedRelease,
  // Lease holder that keeps writing past expiry, skipping both the local
  // expiry check and the epoch-fence probe, clobbering the next epoch's
  // writes.
  kStaleLease,
};

inline bool is_known_incorrect(Variant v) { return v != Variant::kCorrect; }

inline const char* to_string(Variant v) {
  switch (v) {
    case Variant::kCorrect: return "correct";
    case Variant::kTornRead: return "torn-read";
    case Variant::kUnfencedRelease: return "unfenced-release";
    case Variant::kStaleLease: return "stale-lease";
  }
  return "?";
}

}  // namespace rdmasem::sync
