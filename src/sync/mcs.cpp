#include "sync/mcs.hpp"

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace rdmasem::sync {

// Scratch map (one cache line): [0] atomic result, [1] qnode staging
// (next, locked), [3] single-word write staging, [4] READ landing.
McsLock::McsLock(verbs::QueuePair& qp, std::uint64_t base_addr,
                 std::uint32_t rkey, Layout layout, std::uint32_t client_id,
                 remem::BackoffPolicy poll_backoff)
    : qp_(qp), base_addr_(base_addr), rkey_(rkey), layout_(layout),
      id_(client_id), poll_backoff_(poll_backoff), scratch_(64) {
  RDMASEM_CHECK_MSG(client_id >= 1 && client_id <= layout.max_clients,
                    "MCS client id out of layout range");
  scratch_mr_ = qp_.context().register_buffer(
      scratch_, qp_.context().machine().port_socket(qp_.config().port));
}

void McsLock::retarget(std::uint64_t base_addr) {
  RDMASEM_CHECK_MSG(!held_, "MCS retarget while held");
  base_addr_ = base_addr;
}

sim::TaskT<remem::Outcome<std::uint64_t>> McsLock::read_u64(
    std::uint64_t raddr) {
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kRead;
  wr.sg_list = {{scratch_mr_->addr + 32, 8, scratch_mr_->key}};
  wr.remote_addr = raddr;
  wr.rkey = rkey_;
  const auto c = co_await qp_.execute(std::move(wr));
  if (!c.ok()) co_return c.status;
  co_return *scratch_.as<std::uint64_t>(32);
}

sim::TaskT<verbs::Status> McsLock::write_u64(std::uint64_t raddr,
                                             std::uint64_t v,
                                             std::size_t slot) {
  *scratch_.as<std::uint64_t>(slot) = v;
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {{scratch_mr_->addr + slot, 8, scratch_mr_->key}};
  wr.remote_addr = raddr;
  wr.rkey = rkey_;
  const auto c = co_await qp_.execute(std::move(wr));
  co_return c.status;
}

sim::TaskT<remem::Outcome<std::uint32_t>> McsLock::acquire() {
  RDMASEM_CHECK_MSG(!held_, "MCS acquire while held");
  obs::Hub& hub = qp_.context().cluster().obs();
  const std::uint64_t my_qnode = base_addr_ + layout_.qnode_off(id_);

  // 1. Reset my qnode: next = kNil, locked = 1. Awaited — it must be
  // consistent before anyone can find me through the tail.
  {
    auto* stage = scratch_.as<std::uint64_t>(8);
    stage[0] = kNil;
    stage[1] = 1;
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sg_list = {{scratch_mr_->addr + 8, 16, scratch_mr_->key}};
    wr.remote_addr = my_qnode;
    wr.rkey = rkey_;
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
  }

  // 2. SWAP(tail, my id) emulated as a CAS-retry loop. The completion's
  // atomic_old seeds the next compare — which is exactly why the ok()
  // check must come first: a flushed CAS carries kPoisonedAtomicOld, not
  // a usable tail value (stale-compare audit, tests/remem_atomics_test).
  std::uint64_t expected = kNil;
  std::uint32_t attempts = 0;
  for (;;) {
    ++attempts;
    hub.cas_attempts.inc();
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kCompSwap;
    wr.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
    wr.remote_addr = base_addr_;
    wr.rkey = rkey_;
    wr.compare = expected;
    wr.swap_or_add = id_;
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    RDMASEM_CHECK_MSG(c.atomic_old != verbs::kPoisonedAtomicOld,
                      "poisoned atomic_old on a successful completion");
    if (c.atomic_old == expected) break;  // swapped in
    hub.cas_failures.inc();
    expected = c.atomic_old;  // lost the race: retry against the new tail
  }
  const std::uint64_t prev = expected;

  if (prev == kNil) {
    held_ = true;
    ++acquisitions_;
    hub.lock_acquires.inc();
    co_return attempts;
  }

  // 3. Link into the predecessor, then spin-READ my own locked flag until
  // the handoff write lands.
  ++queued_acquisitions_;
  const auto st = co_await write_u64(
      base_addr_ + layout_.qnode_off(prev), id_, 40);
  if (st != verbs::Status::kSuccess) co_return st;
  std::uint32_t polls = 0;
  for (;;) {
    const auto locked = co_await read_u64(my_qnode + 8);
    if (!locked.ok()) co_return locked.status();
    if (locked.value() == 0) break;
    ++polls;
    const auto d = poll_backoff_.delay_for(polls);
    if (d) co_await sim::delay(qp_.context().engine(), d);
  }
  held_ = true;
  ++acquisitions_;
  hub.lock_acquires.inc();
  hub.lock_handoffs.inc();
  co_return attempts;
}

sim::TaskT<verbs::Status> McsLock::release() {
  RDMASEM_CHECK_MSG(held_, "MCS release while not held");
  obs::Hub& hub = qp_.context().cluster().obs();
  const std::uint64_t my_qnode = base_addr_ + layout_.qnode_off(id_);

  const auto next = co_await read_u64(my_qnode);
  if (!next.ok()) co_return next.status();
  std::uint64_t successor = next.value();

  if (successor == kNil) {
    // Nobody visibly queued: try to swing the tail back to free.
    hub.cas_attempts.inc();
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kCompSwap;
    wr.sg_list = {{scratch_mr_->addr, 8, scratch_mr_->key}};
    wr.remote_addr = base_addr_;
    wr.rkey = rkey_;
    wr.compare = id_;
    wr.swap_or_add = kNil;
    const auto c = co_await qp_.execute(std::move(wr));
    if (!c.ok()) co_return c.status;
    if (c.atomic_old == id_) {
      held_ = false;
      co_return verbs::Status::kSuccess;
    }
    hub.cas_failures.inc();
    // A successor swapped the tail but has not linked yet: poll my next
    // pointer until its enqueue write lands.
    std::uint32_t polls = 0;
    for (;;) {
      const auto n = co_await read_u64(my_qnode);
      if (!n.ok()) co_return n.status();
      if (n.value() != kNil) {
        successor = n.value();
        break;
      }
      ++polls;
      const auto d = poll_backoff_.delay_for(polls);
      if (d) co_await sim::delay(qp_.context().engine(), d);
    }
  }

  // Direct handoff: clear the successor's locked flag.
  const auto st = co_await write_u64(
      base_addr_ + layout_.qnode_off(successor) + 8, 0, 40);
  if (st != verbs::Status::kSuccess) co_return st;
  held_ = false;
  co_return verbs::Status::kSuccess;
}

}  // namespace rdmasem::sync
