#include "sync/history.hpp"

#include <algorithm>
#include <cstdio>

namespace rdmasem::sync {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kGet: return "get";
    case OpKind::kPut: return "put";
    case OpKind::kTxn: return "txn";
  }
  return "?";
}

std::size_t HistoryRecorder::total_ops() const {
  std::size_t n = 0;
  for (const auto& log : logs_) n += log.size();
  return n;
}

std::vector<Op> HistoryRecorder::merged() const {
  struct Tagged {
    Op op;
    std::uint32_t worker;
    std::uint32_t seq;
  };
  std::vector<Tagged> all;
  all.reserve(total_ops());
  for (std::uint32_t w = 0; w < logs_.size(); ++w)
    for (std::uint32_t i = 0; i < logs_[w].size(); ++i)
      all.push_back({logs_[w][i], w, i});
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.op.invoke != b.op.invoke) return a.op.invoke < b.op.invoke;
    if (a.op.response != b.op.response) return a.op.response < b.op.response;
    if (a.worker != b.worker) return a.worker < b.worker;
    return a.seq < b.seq;
  });
  std::vector<Op> out;
  out.reserve(all.size());
  for (auto& t : all) out.push_back(t.op);
  return out;
}

std::string HistoryRecorder::render() const {
  std::string out;
  char line[192];
  for (const Op& op : merged()) {
    std::snprintf(line, sizeof line,
                  "%s w%u k%llu v=%llu ver=%llu rver=%llu %s [%llu,%llu]\n",
                  to_string(op.kind), op.worker,
                  static_cast<unsigned long long>(op.key),
                  static_cast<unsigned long long>(op.value),
                  static_cast<unsigned long long>(op.version),
                  static_cast<unsigned long long>(op.read_version),
                  op.ok ? "ok" : "abort",
                  static_cast<unsigned long long>(op.invoke),
                  static_cast<unsigned long long>(op.response));
    out += line;
  }
  return out;
}

std::vector<Op> ops_for_key(const std::vector<Op>& merged, std::uint64_t key) {
  std::vector<Op> out;
  for (const Op& op : merged)
    if (op.key == key) out.push_back(op);
  return out;
}

}  // namespace rdmasem::sync
