#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdmasem::util {

// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Reservoir-free exact percentile tracker: stores all samples.
// Suitable for the bench harness where sample counts are modest (<=1e7).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { xs_.reserve(n); }
  std::size_t count() const { return xs_.size(); }
  // i-th stored sample. Insertion order until percentile()/median() sorts
  // the set; use for merging unsorted accumulators.
  double sample(std::size_t i) const { return xs_[i]; }
  double mean() const;
  // p in [0, 100]; nearest-rank percentile. Returns 0 for empty sets.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  void clear() { xs_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

// Fixed-bucket log2 histogram for latency distributions (nanosecond inputs).
// add() is safe from concurrent recorders (relaxed atomics — bucket totals
// commute, so the final distribution is independent of interleaving);
// readers are expected to run after recorders have quiesced.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(std::uint64_t v);
  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  // Upper bound of the bucket that contains the q-quantile (q in [0,1]).
  std::uint64_t quantile_bound(double q) const;
  // Zeroes every bucket. Only valid after recorders have quiesced (same
  // contract as the readers above).
  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace rdmasem::util
