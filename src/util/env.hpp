#pragma once

#include <cstdint>
#include <string>

namespace rdmasem::util {

// Environment-variable knobs for the bench harness (scale-down policy,
// see DESIGN.md §7). Absent or unparsable variables yield the default.
std::uint64_t env_u64(const char* name, std::uint64_t def);
double env_f64(const char* name, double def);
bool env_bool(const char* name, bool def);
std::string env_str(const char* name, const std::string& def);

}  // namespace rdmasem::util
