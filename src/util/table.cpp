#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace rdmasem::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  RDMASEM_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (std::uint64_t{1} << 30) && bytes % (std::uint64_t{1} << 30) == 0)
    std::snprintf(buf, sizeof buf, "%lluGB",
                  static_cast<unsigned long long>(bytes >> 30));
  else if (bytes >= (1u << 20) && bytes % (1u << 20) == 0)
    std::snprintf(buf, sizeof buf, "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
  else if (bytes >= (1u << 10) && bytes % (1u << 10) == 0)
    std::snprintf(buf, sizeof buf, "%lluKB",
                  static_cast<unsigned long long>(bytes >> 10));
  else
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  return buf;
}

}  // namespace rdmasem::util
