#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

#include "util/assert.hpp"

namespace rdmasem::util {

// SmallVec<T, N> — a vector with inline storage for the first N elements.
//
// Motivated by verbs::WorkRequest::sg_list: almost every WR carries a
// single SGE (the paper's workloads are single-buffer writes/reads), yet a
// std::vector puts even that one element on the heap — one allocation and
// one free per posted WR, which dominates the datapath once frames and
// staging buffers are pooled. With inline storage the common shapes
// (1..N SGEs) never touch the allocator; longer lists spill to the heap
// exactly like a vector.
//
// Only the slice of the vector API the WR plumbing uses is provided:
// trivially-copyable T, brace-init assignment, reserve/push_back, random
// access and iteration. Growth keeps amortized O(1) doubling.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially-copyable elements");

 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.size()); }
  SmallVec(const SmallVec& o) { assign(o.data(), o.size_); }
  SmallVec(SmallVec&& o) noexcept { steal(std::move(o)); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data(), o.size_);
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release();
      steal(std::move(o));
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.size());
    return *this;
  }
  ~SmallVec() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  T* data() { return heap_ != nullptr ? heap_ : inline_ptr(); }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_ptr(); }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    T* slot = data() + size_++;
    *slot = T{std::forward<Args>(args)...};
    return *slot;
  }

  void resize(std::size_t n) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = T{};
    size_ = n;
  }

 private:
  T* inline_ptr() { return reinterpret_cast<T*>(inline_); }
  const T* inline_ptr() const { return reinterpret_cast<const T*>(inline_); }

  void assign(const T* src, std::size_t n) {
    reserve(n);
    T* dst = data();
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    size_ = n;
  }

  // Move: adopt a heap buffer outright; inline contents are copied (they
  // are at most N trivially-copyable elements).
  void steal(SmallVec&& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = N;
      assign(o.inline_ptr(), o.size_);
      o.size_ = 0;
    }
  }

  void grow(std::size_t want) {
    std::size_t cap = cap_;
    while (cap < want) cap *= 2;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    const T* src = data();
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = src[i];
    release();
    heap_ = fresh;
    cap_ = cap;
  }

  void release() {
    if (heap_ != nullptr) {
      ::operator delete(static_cast<void*>(heap_));
      heap_ = nullptr;
      cap_ = N;
    }
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace rdmasem::util
