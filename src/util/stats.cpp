#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rdmasem::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::clear() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  // Nearest-rank: rank = ceil(p/100 * N), clamped to [1, N]. The epsilon
  // keeps exact multiples (p=50 with N=2 -> rank 1, not 2 via FP noise)
  // stable across libm implementations. p<=0 (and NaN) pin to the
  // minimum, p>=100 to the maximum.
  if (!(p > 0.0)) return xs_.front();
  if (p >= 100.0) return xs_.back();
  const double exact = p / 100.0 * static_cast<double>(xs_.size());
  auto rank = static_cast<std::size_t>(std::ceil(exact - 1e-9));
  rank = std::clamp<std::size_t>(rank, 1, xs_.size());
  return xs_[rank - 1];
}

void Log2Histogram::add(std::uint64_t v) {
  const std::size_t b = v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  counts_[std::min(b, kBuckets - 1)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Log2Histogram::quantile_bound(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  // Nearest-rank over buckets: target = ceil(q * total), clamped to
  // [1, total] so q=0 lands on the first non-empty bucket instead of
  // falling through to bucket 0 regardless of contents, and q=1 is the
  // last non-empty bucket (not past-the-end).
  const double clamped = (q > 0.0) ? std::min(q, 1.0) : 0.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(total)));
  if (target == 0) target = 1;
  if (target > total) target = total;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    acc += bucket(i);
    if (acc >= target) return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }
  return ~std::uint64_t{0};
}

}  // namespace rdmasem::util
