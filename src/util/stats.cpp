#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rdmasem::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::clear() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(xs_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return xs_[std::min(idx, xs_.size() - 1)];
}

void Log2Histogram::add(std::uint64_t v) {
  const std::size_t b = v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  counts_[std::min(b, kBuckets - 1)]++;
  ++total_;
}

std::uint64_t Log2Histogram::quantile_bound(double q) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    acc += counts_[i];
    if (acc >= target) return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }
  return ~std::uint64_t{0};
}

}  // namespace rdmasem::util
