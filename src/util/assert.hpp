#pragma once

#include <cstdio>
#include <cstdlib>

// RDMASEM_CHECK: always-on invariant check (simulator correctness depends on
// these holding in release builds too, so they are not compiled out).
// Aborts with file/line and the failed expression.
#define RDMASEM_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      std::fprintf(stderr, "RDMASEM_CHECK failed: %s at %s:%d\n", #expr,     \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define RDMASEM_CHECK_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      std::fprintf(stderr, "RDMASEM_CHECK failed: %s (%s) at %s:%d\n", #expr,\
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
