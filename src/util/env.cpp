#include "util/env.hpp"

#include <cstdlib>
#include <cstring>

namespace rdmasem::util {

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  const unsigned long long r = std::strtoull(v, &end, 0);
  if (end == v) return def;
  // Allow k/m/g suffixes for sizes ("64k", "2m").
  if (end && *end) {
    switch (*end) {
      case 'k': case 'K': return r << 10;
      case 'm': case 'M': return r << 20;
      case 'g': case 'G': return r << 30;
      default: return def;
    }
  }
  return r;
}

double env_f64(const char* name, double def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  const double r = std::strtod(v, &end);
  return end == v ? def : r;
}

bool env_bool(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "no") == 0 || std::strcmp(v, "off") == 0);
}

std::string env_str(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : def;
}

}  // namespace rdmasem::util
