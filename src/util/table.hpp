#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rdmasem::util {

// Fixed-width ASCII table printer used by the bench harness to emit
// paper-style rows ("Fig. 3"-like series). Columns are sized to fit the
// widest cell. Numbers should be pre-formatted by the caller (fmt helpers
// below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Renders with a header rule; prepends `title` as a banner line if set.
  std::string render() const;
  void print() const;

  void set_title(std::string title) { title_ = std::move(title); }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Float formatting helpers (fixed precision, no locale surprises).
std::string fmt(double v, int precision = 2);
std::string fmt_bytes(std::uint64_t bytes);  // "64B", "4KB", "2MB", "1GB"

}  // namespace rdmasem::util
