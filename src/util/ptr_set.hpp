#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace rdmasem::util {

// PtrSet — an open-addressing set of non-null pointers.
//
// Replaces std::unordered_set<void*> in the engine's detached-frame
// registry: that set does one node allocation per insert and one free per
// erase, which puts the allocator on the per-WR hot path (every spawned
// pipeline coroutine registers and deregisters). Open addressing over a
// flat power-of-two table makes insert/erase allocation-free at steady
// state; deletion backshifts instead of tombstoning so probes stay short
// under the registry's heavy insert/erase churn.
class PtrSet {
 public:
  PtrSet() : slots_(kMinSlots, nullptr) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void insert(void* p) {
    RDMASEM_CHECK_MSG(p != nullptr, "PtrSet cannot hold null");
    if ((count_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    std::size_t i = probe_start(p);
    for (;; i = next(i)) {
      if (slots_[i] == p) return;  // already present
      if (slots_[i] == nullptr) {
        slots_[i] = p;
        ++count_;
        return;
      }
    }
  }

  bool erase(void* p) {
    std::size_t i = probe_start(p);
    for (;; i = next(i)) {
      if (slots_[i] == nullptr) return false;
      if (slots_[i] == p) break;
    }
    --count_;
    // Backshift deletion: close the gap so later probe chains stay intact.
    std::size_t hole = i;
    for (std::size_t j = next(i);; j = next(j)) {
      void* q = slots_[j];
      if (q == nullptr) break;
      const std::size_t home = probe_start(q);
      // q may move into the hole iff the hole lies on q's probe path,
      // i.e. home is not cyclically within (hole, j].
      const bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = q;
        hole = j;
      }
    }
    slots_[hole] = nullptr;
    return true;
  }

  bool contains(void* p) const {
    std::size_t i = probe_start(p);
    for (;; i = next(i)) {
      if (slots_[i] == p) return true;
      if (slots_[i] == nullptr) return false;
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (void* p : slots_)
      if (p != nullptr) fn(p);
  }

  void clear() {
    slots_.assign(slots_.size(), nullptr);
    count_ = 0;
  }

 private:
  static constexpr std::size_t kMinSlots = 64;

  std::size_t probe_start(void* p) const {
    // splitmix64 finalizer over the address; pointers share low-bit
    // alignment zeros, so mix before masking.
    std::uint64_t z = reinterpret_cast<std::uintptr_t>(p);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31)) & (slots_.size() - 1);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (slots_.size() - 1); }

  void rehash(std::size_t n) {
    std::vector<void*> old = std::move(slots_);
    slots_.assign(n, nullptr);
    count_ = 0;
    for (void* p : old)
      if (p != nullptr) insert(p);
  }

  std::vector<void*> slots_;
  std::size_t count_ = 0;
};

}  // namespace rdmasem::util
