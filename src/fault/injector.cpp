#include "fault/injector.hpp"

#include "util/assert.hpp"

namespace rdmasem::fault {

void FaultInjector::schedule(const FaultPlan& plan) {
  // One edge event per lane, all keyed by the scheduling lane (the
  // driver): at equal timestamps those keys sort identically whatever the
  // shard count, so replica updates interleave with traffic the same way
  // in serial and parallel runs.
  const std::uint32_t lanes = lane_count();
  for (const FaultEvent& ev : plan.events) {
    const bool windowed = ev.kind != FaultKind::kCrash &&
                          ev.kind != FaultKind::kRestart;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      engine_.schedule_on(l, ev.at, [this, ev, l] { begin_on(l, ev); });
      if (windowed)
        engine_.schedule_on(l, ev.at + ev.duration,
                            [this, ev, l] { end_on(l, ev); });
    }
  }
}

void FaultInjector::apply_begin(FaultState& st, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kLossBurst:
      st.link(ev.machine, ev.port).loss_prob = ev.loss_prob;
      st.retain();
      break;
    case FaultKind::kLatencySpike:
      st.link(ev.machine, ev.port).extra_latency += ev.extra_latency;
      st.retain();
      break;
    case FaultKind::kLinkDown:
      ++st.link(ev.machine, ev.port).down;
      st.retain();
      break;
    case FaultKind::kPartition:
      st.add_partition(ev.machine, ev.peer);
      st.retain();
      break;
    case FaultKind::kNicStall:
      // The pipeline freeze itself is a listener effect (the cluster owns
      // the RNIC resources); the state only flags activity.
      st.retain();
      break;
    case FaultKind::kCrash:
      st.crash(ev.machine);
      st.retain();
      break;
    case FaultKind::kRestart:
      st.restore(ev.machine);
      st.release();
      break;
  }
}

bool FaultInjector::apply_end(FaultState& st, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kLossBurst:
      st.link(ev.machine, ev.port).loss_prob = -1.0;
      st.release();
      break;
    case FaultKind::kLatencySpike: {
      auto& lf = st.link(ev.machine, ev.port);
      RDMASEM_CHECK_MSG(lf.extra_latency >= ev.extra_latency,
                        "latency spike underflow");
      lf.extra_latency -= ev.extra_latency;
      st.release();
      break;
    }
    case FaultKind::kLinkDown: {
      auto& lf = st.link(ev.machine, ev.port);
      RDMASEM_CHECK_MSG(lf.down > 0, "link up without link down");
      --lf.down;
      st.release();
      break;
    }
    case FaultKind::kPartition:
      st.remove_partition(ev.machine, ev.peer);
      st.release();
      break;
    case FaultKind::kNicStall:
      st.release();
      break;
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      // Begin-only edges; a crash lifts via an explicit kRestart event.
      return false;
  }
  return true;
}

void FaultInjector::begin_on(std::uint32_t lane, const FaultEvent& ev) {
  apply_begin(replica(lane), ev);
  if (lane == notify_lane(ev)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    notify(ev, /*is_begin=*/true);
  }
}

void FaultInjector::end_on(std::uint32_t lane, const FaultEvent& ev) {
  if (apply_end(replica(lane), ev) && lane == notify_lane(ev))
    notify(ev, /*is_begin=*/false);
}

void FaultInjector::begin(const FaultEvent& ev) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t lanes = lane_count();
  for (std::uint32_t l = 0; l < lanes; ++l) apply_begin(replica(l), ev);
  notify(ev, /*is_begin=*/true);
}

void FaultInjector::end(const FaultEvent& ev) {
  bool notified_end = false;
  const std::uint32_t lanes = lane_count();
  for (std::uint32_t l = 0; l < lanes; ++l)
    notified_end = apply_end(replica(l), ev);
  if (notified_end) notify(ev, /*is_begin=*/false);
}

void FaultInjector::notify(const FaultEvent& ev, bool is_begin) {
  for (const auto& l : listeners_) l(ev, is_begin);
}

}  // namespace rdmasem::fault
