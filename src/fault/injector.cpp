#include "fault/injector.hpp"

#include "util/assert.hpp"

namespace rdmasem::fault {

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    engine_.schedule_at(ev.at, [this, ev] { begin(ev); });
    const bool windowed = ev.kind != FaultKind::kCrash &&
                          ev.kind != FaultKind::kRestart;
    if (windowed)
      engine_.schedule_at(ev.at + ev.duration, [this, ev] { end(ev); });
  }
}

void FaultInjector::begin(const FaultEvent& ev) {
  ++injected_;
  switch (ev.kind) {
    case FaultKind::kLossBurst:
      state_.link(ev.machine, ev.port).loss_prob = ev.loss_prob;
      state_.retain();
      break;
    case FaultKind::kLatencySpike:
      state_.link(ev.machine, ev.port).extra_latency += ev.extra_latency;
      state_.retain();
      break;
    case FaultKind::kLinkDown:
      ++state_.link(ev.machine, ev.port).down;
      state_.retain();
      break;
    case FaultKind::kPartition:
      state_.add_partition(ev.machine, ev.peer);
      state_.retain();
      break;
    case FaultKind::kNicStall:
      // The pipeline freeze itself is a listener effect (the cluster owns
      // the RNIC resources); the state only flags activity.
      state_.retain();
      break;
    case FaultKind::kCrash:
      state_.crash(ev.machine);
      state_.retain();
      break;
    case FaultKind::kRestart:
      state_.restore(ev.machine);
      state_.release();
      break;
  }
  notify(ev, /*is_begin=*/true);
}

void FaultInjector::end(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kLossBurst:
      state_.link(ev.machine, ev.port).loss_prob = -1.0;
      state_.release();
      break;
    case FaultKind::kLatencySpike: {
      auto& lf = state_.link(ev.machine, ev.port);
      RDMASEM_CHECK_MSG(lf.extra_latency >= ev.extra_latency,
                        "latency spike underflow");
      lf.extra_latency -= ev.extra_latency;
      state_.release();
      break;
    }
    case FaultKind::kLinkDown: {
      auto& lf = state_.link(ev.machine, ev.port);
      RDMASEM_CHECK_MSG(lf.down > 0, "link up without link down");
      --lf.down;
      state_.release();
      break;
    }
    case FaultKind::kPartition:
      state_.remove_partition(ev.machine, ev.peer);
      state_.release();
      break;
    case FaultKind::kNicStall:
      state_.release();
      break;
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      // Begin-only edges; a crash lifts via an explicit kRestart event.
      return;
  }
  notify(ev, /*is_begin=*/false);
}

void FaultInjector::notify(const FaultEvent& ev, bool is_begin) {
  for (const auto& l : listeners_) l(ev, is_begin);
}

}  // namespace rdmasem::fault
