#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/lane.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::fault {

// Deterministic fault model for the simulated fabric (see docs/FAULTS.md).
//
// The paper assumes a lossless lab InfiniBand network; production RDMA
// deployments do not get that luxury. This subsystem describes faults as
// data (FaultPlan), applies them on the virtual clock (FaultInjector,
// injector.hpp), and exposes the instantaneous fault picture (FaultState)
// that net::Fabric consults on every transit. Everything is a pure
// function of (plan, seed): two runs with the same plan and seed produce
// identical traces.

using MachineId = std::uint32_t;
using PortId = std::uint32_t;

enum class FaultKind : std::uint8_t {
  kLossBurst,     // per-link packet-loss override for a time window
  kLatencySpike,  // extra per-transit latency on a link for a window
  kLinkDown,      // one (machine, port) link dead for a window
  kPartition,     // all traffic between a machine pair blocked for a window
  kNicStall,      // the machine's RNIC pipeline frozen for a window
  kCrash,         // node down (all its links dead) from `at` onward...
  kRestart,       // ...until a matching restart brings its NIC back
};

const char* to_string(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kLossBurst;
  sim::Time at = 0;
  sim::Duration duration = 0;      // window faults; ignored by crash/restart
  MachineId machine = 0;           // primary endpoint
  PortId port = 0;                 // link-scoped faults
  MachineId peer = 0;              // kPartition: the second machine
  double loss_prob = 1.0;          // kLossBurst
  sim::Duration extra_latency = 0; // kLatencySpike
};

// Options for randomized chaos plans (FaultPlan::chaos).
struct ChaosOptions {
  std::uint32_t events = 16;
  double loss_prob_max = 0.5;
  sim::Duration window_max = sim::us(300);
  sim::Duration latency_max = sim::us(20);
  bool allow_crash = false;       // crash+restart pairs (heavyweight)
  MachineId spare_machine = ~0u;  // never crash/partition this machine
};

// FaultPlan — an ordered script of faults. Build it fluently:
//
//   fault::FaultPlan plan;
//   plan.loss_burst(sim::us(50), sim::us(200), /*machine=*/1, /*port=*/1, 0.3)
//       .crash(sim::ms(1), /*machine=*/0);
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& loss_burst(sim::Time at, sim::Duration dur, MachineId m, PortId p,
                        double prob);
  FaultPlan& latency_spike(sim::Time at, sim::Duration dur, MachineId m,
                           PortId p, sim::Duration extra);
  FaultPlan& link_down(sim::Time at, sim::Duration dur, MachineId m, PortId p);
  FaultPlan& partition(sim::Time at, sim::Duration dur, MachineId a,
                       MachineId b);
  FaultPlan& nic_stall(sim::Time at, sim::Duration dur, MachineId m);
  FaultPlan& crash(sim::Time at, MachineId m);
  FaultPlan& restart(sim::Time at, MachineId m);

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  using ChaosOptions = fault::ChaosOptions;

  // Draws `opts.events` transient faults uniformly over [0, horizon) from
  // `rng`. Deterministic: the plan is a pure function of (rng state, opts).
  static FaultPlan chaos(sim::Rng& rng, sim::Time horizon,
                         std::uint32_t machines, std::uint32_t ports,
                         const ChaosOptions& opts = {});
};

// Per-link fault overrides. `down` and the partition/crash sets are
// refcounts so overlapping windows nest correctly.
struct LinkFault {
  double loss_prob = -1.0;         // < 0: no override (use the global knob)
  sim::Duration extra_latency = 0;
  std::uint32_t down = 0;
};

// FaultState — the instantaneous fault picture, mutated only by the
// FaultInjector and read by net::Fabric on every transit. `active()` is
// the fast path: when no fault was ever injected, transit consults one
// counter and pays nothing else.
class FaultState {
 public:
  FaultState(std::uint32_t machines, std::uint32_t ports_per_machine);

  std::uint32_t machines() const { return machines_; }
  std::uint32_t ports() const { return ports_; }

  LinkFault& link(MachineId m, PortId p) { return links_[index(m, p)]; }
  const LinkFault& link(MachineId m, PortId p) const {
    return links_[index(m, p)];
  }

  bool machine_down(MachineId m) const { return crashed_[m] > 0; }
  void crash(MachineId m);
  void restore(MachineId m);

  void add_partition(MachineId a, MachineId b);
  void remove_partition(MachineId a, MachineId b);
  bool partitioned(MachineId a, MachineId b) const;

  // True when no path exists between the endpoints: either end crashed,
  // either link administratively down, or the pair partitioned.
  bool blocked(MachineId src, PortId sport, MachineId dst, PortId dport) const;

  // Effective extra one-way latency for a transit (both endpoint links).
  sim::Duration extra_latency(MachineId src, PortId sport, MachineId dst,
                              PortId dport) const;

  // Effective loss probability override for a transit; < 0 means "no
  // override, use ModelParams::net_loss_prob". The worse endpoint wins.
  double loss_override(MachineId src, PortId sport, MachineId dst,
                       PortId dport) const;

  // Zero-cost guard for the no-faults case.
  bool active() const { return active_ > 0; }
  void retain() { ++active_; }
  void release() { --active_; }

 private:
  std::size_t index(MachineId m, PortId p) const {
    return static_cast<std::size_t>(m) * ports_ + p;
  }

  std::uint32_t machines_;
  std::uint32_t ports_;
  std::vector<LinkFault> links_;
  std::vector<std::uint32_t> crashed_;
  // Partition refcounts keyed by the normalized (lo, hi) machine pair.
  std::unordered_map<std::uint64_t, std::uint32_t> partitions_;
  std::uint64_t active_ = 0;
};

// FaultDomain — one FaultState replica per engine lane. Under
// RDMASEM_SHARDS > 1 the fabric consults the fault picture from worker
// threads; instead of locking one shared state, the injector applies every
// fault edge to every replica (as an engine event on that lane, at the
// fault's virtual time), and each lane reads only its own copy. All
// replicas therefore agree at every virtual instant while no cache line
// is ever shared between lanes. With one lane (the default) this is
// exactly the old single-state behavior.
class FaultDomain {
 public:
  FaultDomain(std::uint32_t machines, std::uint32_t ports_per_machine)
      : machines_(machines), ports_(ports_per_machine) {
    set_lanes(1);
  }

  // Rebuilds one pristine replica per lane. Must be called (by the
  // Cluster, right after Engine::configure_lanes) before any fault is
  // injected.
  void set_lanes(std::uint32_t lanes) {
    replicas_.clear();
    replicas_.reserve(lanes);
    for (std::uint32_t l = 0; l < lanes; ++l)
      replicas_.push_back(std::make_unique<FaultState>(machines_, ports_));
  }
  std::uint32_t lanes() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }

  FaultState& replica(std::uint32_t lane) { return *replicas_[lane]; }
  const FaultState& replica(std::uint32_t lane) const {
    return *replicas_[lane];
  }
  // The calling lane's replica — the only one a transit may consult.
  const FaultState& current() const {
    const std::uint32_t lane = sim::current_lane();
    RDMASEM_CHECK_MSG(lane < replicas_.size(),
                      "fault replica missing for lane (set_lanes)");
    return *replicas_[lane];
  }

 private:
  std::uint32_t machines_;
  std::uint32_t ports_;
  std::vector<std::unique_ptr<FaultState>> replicas_;
};

}  // namespace rdmasem::fault
