#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"

namespace rdmasem::fault {

// FaultInjector — applies a FaultPlan on the virtual clock. Each event
// schedules a begin (and, for window faults, an end) engine event that
// mutates the FaultState; listeners observe both edges so higher layers
// can add effects the state alone cannot express (the cluster freezes
// RNIC pipeline resources on kNicStall, tests log transitions).
//
// Two construction modes:
//   * FaultInjector(engine, FaultState&)  — single shared state, mutated
//     on the scheduling lane. The standalone/serial mode tests use.
//   * FaultInjector(engine, FaultDomain&) — one edge event per lane, each
//     mutating that lane's replica, so worker shards read fault state
//     without synchronization. Listeners fire exactly once per edge, on
//     the faulted machine's lane (the lane that owns the RNIC the
//     listener touches).
//
// The injector only depends on sim + fault state: everything above net
// reacts through the state (fabric) or a listener (cluster), keeping the
// fault layer free of upward dependencies.
class FaultInjector {
 public:
  // `begin` is true at fault onset, false when a window fault lifts
  // (crash/restart are begin-only edges).
  using Listener = std::function<void(const FaultEvent&, bool begin)>;

  FaultInjector(sim::Engine& engine, FaultState& state)
      : engine_(engine), single_(&state) {}
  FaultInjector(sim::Engine& engine, FaultDomain& domain)
      : engine_(engine), domain_(&domain) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void add_listener(Listener l) { listeners_.push_back(std::move(l)); }

  // Schedules every event of `plan`. Events in the past fire at now()
  // (engine semantics). May be called multiple times; plans compose.
  void schedule(const FaultPlan& plan);

  // Immediate injection on every replica (used by tests and the schedule
  // machinery). Driver-context only under RDMASEM_SHARDS > 1.
  void begin(const FaultEvent& ev);
  void end(const FaultEvent& ev);

  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  FaultState& state() {
    return single_ != nullptr ? *single_ : domain_->replica(0);
  }

 private:
  std::uint32_t lane_count() const {
    return domain_ != nullptr ? domain_->lanes() : 1;
  }
  FaultState& replica(std::uint32_t lane) {
    return single_ != nullptr ? *single_ : domain_->replica(lane);
  }
  // The lane whose replica event also notifies listeners and counts the
  // injection: the faulted machine's lane, so listener side effects run
  // where that machine's resources live.
  std::uint32_t notify_lane(const FaultEvent& ev) const {
    const std::uint32_t lane = ev.machine + 1;
    return lane < lane_count() ? lane : 0;
  }

  static void apply_begin(FaultState& st, const FaultEvent& ev);
  // Returns false for begin-only edges (crash/restart) that have no end.
  static bool apply_end(FaultState& st, const FaultEvent& ev);
  void begin_on(std::uint32_t lane, const FaultEvent& ev);
  void end_on(std::uint32_t lane, const FaultEvent& ev);
  void notify(const FaultEvent& ev, bool is_begin);

  sim::Engine& engine_;
  FaultState* single_ = nullptr;
  FaultDomain* domain_ = nullptr;
  std::vector<Listener> listeners_;
  // Relaxed atomic: bumped on the notify lane only, but different faults
  // notify on different lanes concurrently; read after runs quiesce.
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace rdmasem::fault
