#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"

namespace rdmasem::fault {

// FaultInjector — applies a FaultPlan on the virtual clock. Each event
// schedules a begin (and, for window faults, an end) engine event that
// mutates the shared FaultState; listeners observe both edges so higher
// layers can add effects the state alone cannot express (the cluster
// freezes RNIC pipeline resources on kNicStall, tests log transitions).
//
// The injector only depends on sim + FaultState: everything above net
// reacts through the state (fabric) or a listener (cluster), keeping the
// fault layer free of upward dependencies.
class FaultInjector {
 public:
  // `begin` is true at fault onset, false when a window fault lifts
  // (crash/restart are begin-only edges).
  using Listener = std::function<void(const FaultEvent&, bool begin)>;

  FaultInjector(sim::Engine& engine, FaultState& state)
      : engine_(engine), state_(state) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void add_listener(Listener l) { listeners_.push_back(std::move(l)); }

  // Schedules every event of `plan`. Events in the past fire at now()
  // (engine semantics). May be called multiple times; plans compose.
  void schedule(const FaultPlan& plan);

  // Immediate injection (used by tests and the schedule machinery).
  void begin(const FaultEvent& ev);
  void end(const FaultEvent& ev);

  std::uint64_t injected() const { return injected_; }
  FaultState& state() { return state_; }

 private:
  void notify(const FaultEvent& ev, bool is_begin);

  sim::Engine& engine_;
  FaultState& state_;
  std::vector<Listener> listeners_;
  std::uint64_t injected_ = 0;
};

}  // namespace rdmasem::fault
