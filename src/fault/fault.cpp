#include "fault/fault.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rdmasem::fault {

namespace {
std::uint64_t pair_key(MachineId a, MachineId b) {
  const MachineId lo = std::min(a, b);
  const MachineId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLossBurst: return "LOSS_BURST";
    case FaultKind::kLatencySpike: return "LATENCY_SPIKE";
    case FaultKind::kLinkDown: return "LINK_DOWN";
    case FaultKind::kPartition: return "PARTITION";
    case FaultKind::kNicStall: return "NIC_STALL";
    case FaultKind::kCrash: return "CRASH";
    case FaultKind::kRestart: return "RESTART";
  }
  return "?";
}

// ---- FaultPlan builders ----------------------------------------------------

FaultPlan& FaultPlan::loss_burst(sim::Time at, sim::Duration dur, MachineId m,
                                 PortId p, double prob) {
  events.push_back({FaultKind::kLossBurst, at, dur, m, p, 0, prob, 0});
  return *this;
}

FaultPlan& FaultPlan::latency_spike(sim::Time at, sim::Duration dur,
                                    MachineId m, PortId p,
                                    sim::Duration extra) {
  events.push_back({FaultKind::kLatencySpike, at, dur, m, p, 0, 1.0, extra});
  return *this;
}

FaultPlan& FaultPlan::link_down(sim::Time at, sim::Duration dur, MachineId m,
                                PortId p) {
  events.push_back({FaultKind::kLinkDown, at, dur, m, p, 0, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::partition(sim::Time at, sim::Duration dur, MachineId a,
                                MachineId b) {
  events.push_back({FaultKind::kPartition, at, dur, a, 0, b, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::nic_stall(sim::Time at, sim::Duration dur, MachineId m) {
  events.push_back({FaultKind::kNicStall, at, dur, m, 0, 0, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::crash(sim::Time at, MachineId m) {
  events.push_back({FaultKind::kCrash, at, 0, m, 0, 0, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::restart(sim::Time at, MachineId m) {
  events.push_back({FaultKind::kRestart, at, 0, m, 0, 0, 1.0, 0});
  return *this;
}

FaultPlan FaultPlan::chaos(sim::Rng& rng, sim::Time horizon,
                           std::uint32_t machines, std::uint32_t ports,
                           const ChaosOptions& opts) {
  RDMASEM_CHECK_MSG(machines >= 2 && ports >= 1, "chaos needs a fabric");
  FaultPlan plan;
  for (std::uint32_t i = 0; i < opts.events; ++i) {
    const auto at = static_cast<sim::Time>(
        rng.uniform(static_cast<std::uint64_t>(horizon)));
    const auto dur = static_cast<sim::Duration>(
        1 + rng.uniform(static_cast<std::uint64_t>(opts.window_max)));
    MachineId m = static_cast<MachineId>(rng.uniform(machines));
    if (m == opts.spare_machine) m = (m + 1) % machines;
    const PortId p = static_cast<PortId>(rng.uniform(ports));
    // Transient faults only by default; crashes opt in (they require the
    // workload to have a recovery story).
    switch (rng.uniform(opts.allow_crash ? 5 : 4)) {
      case 0:
        plan.loss_burst(at, dur, m, p, rng.uniform01() * opts.loss_prob_max);
        break;
      case 1:
        plan.latency_spike(
            at, dur, m, p,
            static_cast<sim::Duration>(
                1 + rng.uniform(static_cast<std::uint64_t>(opts.latency_max))));
        break;
      case 2:
        plan.link_down(at, dur, m, p);
        break;
      case 3: {
        MachineId b = static_cast<MachineId>(rng.uniform(machines));
        if (b == opts.spare_machine) b = (b + 1) % machines;
        if (b != m) plan.partition(at, dur, m, b);
        else plan.nic_stall(at, dur, m);
        break;
      }
      default:
        plan.crash(at, m);
        plan.restart(at + dur, m);
        break;
    }
  }
  return plan;
}

// ---- FaultState ------------------------------------------------------------

FaultState::FaultState(std::uint32_t machines, std::uint32_t ports_per_machine)
    : machines_(machines),
      ports_(ports_per_machine),
      links_(static_cast<std::size_t>(machines) * ports_per_machine),
      crashed_(machines, 0) {}

void FaultState::crash(MachineId m) { ++crashed_.at(m); }

void FaultState::restore(MachineId m) {
  RDMASEM_CHECK_MSG(crashed_.at(m) > 0, "restart of a machine that is up");
  --crashed_[m];
}

void FaultState::add_partition(MachineId a, MachineId b) {
  ++partitions_[pair_key(a, b)];
}

void FaultState::remove_partition(MachineId a, MachineId b) {
  auto it = partitions_.find(pair_key(a, b));
  RDMASEM_CHECK_MSG(it != partitions_.end() && it->second > 0,
                    "partition heal without partition");
  if (--it->second == 0) partitions_.erase(it);
}

bool FaultState::partitioned(MachineId a, MachineId b) const {
  return partitions_.count(pair_key(a, b)) > 0;
}

bool FaultState::blocked(MachineId src, PortId sport, MachineId dst,
                         PortId dport) const {
  if (machine_down(src) || machine_down(dst)) return true;
  if (link(src, sport).down || link(dst, dport).down) return true;
  return src != dst && partitioned(src, dst);
}

sim::Duration FaultState::extra_latency(MachineId src, PortId sport,
                                        MachineId dst, PortId dport) const {
  return link(src, sport).extra_latency + link(dst, dport).extra_latency;
}

double FaultState::loss_override(MachineId src, PortId sport, MachineId dst,
                                 PortId dport) const {
  return std::max(link(src, sport).loss_prob, link(dst, dport).loss_prob);
}

}  // namespace rdmasem::fault
