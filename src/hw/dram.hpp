#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "hw/params.hpp"
#include "sim/time.hpp"

namespace rdmasem::hw {

// DramModel — address-driven cost model for host memory accesses.
//
// Three levels of locality, checked in order:
//   1. same cache line as the previous access on this stream  -> line hit
//   2. open row in the addressed bank (row-buffer hit)        -> row hit
//   3. closed/other row                                        -> row miss
//
// Sequential streams therefore pay mostly line/row hits while random
// streams pay mostly row misses — the 2.9x..6.9x local asymmetry of
// §I / Fig. 6c. Costs for accesses larger than one line accumulate per
// line, capped by the socket's bandwidth, and an MLP factor models
// pipelining of independent misses.
//
// The model is per-socket; cross-socket accesses add the QPI latency delta
// and use the lower remote bandwidth (Table II).
class DramModel {
 public:
  explicit DramModel(const ModelParams& p);

  enum class Op : std::uint8_t { kRead, kWrite };

  // Cost of accessing [addr, addr+size) on this socket's memory from a
  // core/DMA engine on `from_same_socket ? local : remote` socket.
  // Mutates row-buffer state (this is a stateful hardware model).
  sim::Duration access(std::uint64_t addr, std::size_t size, Op op,
                       bool from_same_socket = true);

  // Pure bandwidth cost for bulk transfers that bypass the row model
  // (streaming DMA), still NUMA-aware.
  sim::Duration stream(std::size_t size, bool from_same_socket = true) const;

  // Idle (unloaded) pointer-chase latency, MLC-style.
  sim::Duration idle_latency(bool from_same_socket = true) const;

  void reset();
  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t row_misses() const { return row_misses_; }

 private:
  const ModelParams& p_;
  // Open-row tracker: an LRU set of `dram_banks` rows. Keying on row
  // identity (not addr % banks) keeps runs independent of ASLR while
  // preserving the hit/miss behaviour that drives seq/rand asymmetry.
  std::list<std::uint64_t> open_lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      open_map_;
  std::uint64_t last_line_ = ~std::uint64_t{0};
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace rdmasem::hw
