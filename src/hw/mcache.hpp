#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace rdmasem::hw {

// MetadataCache — the RNIC's on-device SRAM cache for address-translation
// entries (PTEs), memory-region state and queue-pair state (§II-B2).
//
// Modeled as a single weighted-capacity LRU pool: each object class has a
// weight (a QP context is bigger than one PTE), and the pool evicts
// least-recently-used objects of any class once the total weight exceeds
// capacity. This reproduces the paper's observations that
//   * registered regions beyond ~4 MB lose the seq/rand symmetry (PTE
//     working set > SRAM),
//   * many MRs degrade access latency (~60 % at 10x MRs),
//   * many QPs degrade throughput (QP state thrashing).
class MetadataCache {
 public:
  enum class Kind : std::uint8_t { kPte = 0, kMr = 1, kQp = 2 };

  MetadataCache(std::size_t capacity_units, std::size_t pte_w,
                std::size_t mr_w, std::size_t qp_w)
      : capacity_(capacity_units), weight_{pte_w, mr_w, qp_w} {}

  // Touches (kind, id). Returns true on hit; on miss the entry is inserted
  // and LRU victims are evicted to make room.
  bool access(Kind kind, std::uint64_t id);

  // Current occupancy in weight units.
  std::size_t occupancy() const { return occupancy_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 1.0;
  }
  void reset_stats() { hits_ = misses_ = 0; }
  void clear();

  // Removes an entry if present (e.g. MR deregistration).
  void invalidate(Kind kind, std::uint64_t id);

 private:
  // Key packs kind into the top bits of the id.
  static std::uint64_t key(Kind kind, std::uint64_t id) {
    return (static_cast<std::uint64_t>(kind) << 62) | (id & ((1ULL << 62) - 1));
  }

  std::size_t capacity_;
  std::size_t weight_[3];
  std::size_t occupancy_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // LRU list front = most recent. Map value = (list iterator, weight).
  std::list<std::uint64_t> lru_;
  struct Slot {
    std::list<std::uint64_t>::iterator it;
    std::size_t weight;
  };
  std::unordered_map<std::uint64_t, Slot> map_;
};

}  // namespace rdmasem::hw
