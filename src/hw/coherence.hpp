#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace rdmasem::hw {

// CoherenceModel — cost model for CPU atomic read-modify-writes on shared
// cache lines (the local baselines in §III-E / Fig. 10).
//
// Two effects combine:
//   * per-op cost grows with the number of registered contenders (line
//     ping-pong), with CAS hurting much more than FAA — a failed CAS
//     burns a full exclusive transfer, while contended FAA is handled
//     efficiently by the coherence protocol;
//   * all RMWs on one line SERIALIZE (the line is a serial resource), so
//     a release that wakes N spinners costs ~N serialized CAS attempts —
//     the spinlock meltdown of Fig. 10a.
class CoherenceModel {
 public:
  enum class Rmw : std::uint8_t { kCas, kFaa };

  CoherenceModel(sim::Engine& engine, const ModelParams& p)
      : engine_(engine), p_(p) {}

  // A thread starts/stops actively hammering `line` (spinning on a lock,
  // or a benchmark loop of FAAs).
  void add_contender(std::uint64_t line) { ++contenders_[line]; }
  void remove_contender(std::uint64_t line) {
    auto it = contenders_.find(line);
    if (it == contenders_.end()) return;
    if (--it->second == 0) contenders_.erase(it);
  }
  std::uint32_t contenders(std::uint64_t line) const {
    auto it = contenders_.find(line);
    return it == contenders_.end() ? 0 : it->second;
  }

  // Cost of one atomic RMW on `line` at the current contention level.
  sim::Duration rmw_cost(std::uint64_t line, bool cross_socket,
                         Rmw kind = Rmw::kCas) const {
    const std::uint32_t c = contenders(line);
    const std::uint32_t others = c > 0 ? c - 1 : 0;
    const sim::Duration per = kind == Rmw::kCas ? p_.coh_atomic_per_contender
                                                : p_.coh_faa_per_contender;
    sim::Duration d = p_.coh_atomic_base + per * others;
    if (cross_socket) d += p_.coh_cross_socket;
    return d;
  }

  // The serial resource modeling exclusive ownership of `line`. RMWs must
  // occupy it: co_await line_of(addr) -> use(rmw_cost(...)).
  sim::Resource& line_resource(std::uint64_t line) {
    auto it = lines_.find(line);
    if (it == lines_.end())
      it = lines_.emplace(line, std::make_unique<sim::Resource>(
                                    engine_, 1, "coh.line")).first;
    return *it->second;
  }

  // Cost of a plain spin-read on the line (shared copy, cheap).
  sim::Duration spin_read_cost() const { return p_.coh_spin_read; }

  static std::uint64_t line_of(std::uint64_t addr) { return addr >> 6; }

 private:
  sim::Engine& engine_;
  const ModelParams& p_;
  std::unordered_map<std::uint64_t, std::uint32_t> contenders_;
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Resource>> lines_;
};

}  // namespace rdmasem::hw
