#include "hw/mcache.hpp"

#include "util/assert.hpp"

namespace rdmasem::hw {

bool MetadataCache::access(Kind kind, std::uint64_t id) {
  const std::uint64_t k = key(kind, id);
  auto it = map_.find(k);
  if (it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.it);
    return true;
  }
  ++misses_;
  const std::size_t w = weight_[static_cast<std::size_t>(kind)];
  // Evict from the LRU tail until the new entry fits. A single object
  // heavier than the whole cache is pinned-resident (never inserted).
  if (w > capacity_) return false;
  while (occupancy_ + w > capacity_) {
    RDMASEM_CHECK(!lru_.empty());
    const std::uint64_t victim = lru_.back();
    auto vit = map_.find(victim);
    RDMASEM_CHECK(vit != map_.end());
    occupancy_ -= vit->second.weight;
    map_.erase(vit);
    lru_.pop_back();
  }
  lru_.push_front(k);
  map_.emplace(k, Slot{lru_.begin(), w});
  occupancy_ += w;
  return false;
}

void MetadataCache::invalidate(Kind kind, std::uint64_t id) {
  auto it = map_.find(key(kind, id));
  if (it == map_.end()) return;
  occupancy_ -= it->second.weight;
  lru_.erase(it->second.it);
  map_.erase(it);
}

void MetadataCache::clear() {
  lru_.clear();
  map_.clear();
  occupancy_ = 0;
}

}  // namespace rdmasem::hw
