#include "hw/dram.hpp"

#include <algorithm>

namespace rdmasem::hw {

DramModel::DramModel(const ModelParams& p) : p_(p) {}

void DramModel::reset() {
  open_lru_.clear();
  open_map_.clear();
  last_line_ = ~std::uint64_t{0};
  row_hits_ = 0;
  row_misses_ = 0;
}

sim::Duration DramModel::access(std::uint64_t addr, std::size_t size, Op op,
                                bool from_same_socket) {
  const std::uint64_t first_line = addr / p_.dram_line_bytes;
  const std::uint64_t last = (addr + (size ? size - 1 : 0)) / p_.dram_line_bytes;

  sim::Duration total = 0;
  std::uint32_t pending_misses = 0;
  for (std::uint64_t line = first_line; line <= last; ++line) {
    if (line == last_line_) {
      total += p_.dram_line_hit;
      continue;
    }
    const std::uint64_t byte = line * p_.dram_line_bytes;
    const std::uint64_t row = byte / p_.dram_row_bytes;
    auto it = open_map_.find(row);
    if (it != open_map_.end()) {
      ++row_hits_;
      open_lru_.splice(open_lru_.begin(), open_lru_, it->second);
      total += p_.dram_row_hit;
    } else {
      ++row_misses_;
      if (open_map_.size() >= p_.dram_banks) {
        open_map_.erase(open_lru_.back());
        open_lru_.pop_back();
      }
      open_lru_.push_front(row);
      open_map_[row] = open_lru_.begin();
      // Independent row misses overlap up to the MLP width.
      if (++pending_misses % p_.dram_mlp == 1 || p_.dram_mlp == 1)
        total += p_.dram_row_miss;
      else
        total += p_.dram_row_hit;
    }
  }
  last_line_ = last;

  // Writes retire through the store buffer: cheaper than demand reads.
  if (op == Op::kWrite) total = total * 3 / 4;

  // NUMA: remote-socket accesses add the latency delta once per request
  // and scale by the bandwidth ratio.
  if (!from_same_socket) {
    total += p_.mem_remote_socket_latency - p_.mem_local_latency;
    total = static_cast<sim::Duration>(
        static_cast<double>(total) *
        (p_.mem_local_gbps / p_.mem_remote_socket_gbps));
  }

  // Bandwidth floor for bulk sizes.
  const double gbps =
      from_same_socket ? p_.mem_local_gbps : p_.mem_remote_socket_gbps;
  total = std::max(total, ModelParams::ser_time(size, gbps));
  return total;
}

sim::Duration DramModel::stream(std::size_t size, bool from_same_socket) const {
  const double gbps =
      from_same_socket ? p_.mem_local_gbps : p_.mem_remote_socket_gbps;
  const sim::Duration lat =
      from_same_socket ? p_.mem_local_latency : p_.mem_remote_socket_latency;
  // Pipelined streaming hides most of the first-access latency; charge a
  // quarter of it as ramp-up plus pure serialization.
  return lat / 4 + ModelParams::ser_time(size, gbps);
}

sim::Duration DramModel::idle_latency(bool from_same_socket) const {
  return from_same_socket ? p_.mem_local_latency
                          : p_.mem_remote_socket_latency;
}

}  // namespace rdmasem::hw
