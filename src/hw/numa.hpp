#pragma once

#include <cstdint>

#include "hw/params.hpp"

namespace rdmasem::hw {

// SocketId / MachineId — plain typed ids used across the stack.
using SocketId = std::uint32_t;
using MachineId = std::uint32_t;

// NumaTopology — static placement facts for one machine: how many sockets,
// where the RNIC hangs, and the inter-socket cost deltas. The dynamic
// side (memory channel bandwidth as a shared Resource) lives in
// cluster::Machine; this class only answers placement questions.
class NumaTopology {
 public:
  explicit NumaTopology(const ModelParams& p) : p_(p) {}

  std::uint32_t sockets() const { return p_.sockets_per_machine; }
  std::uint32_t cores_per_socket() const { return p_.cores_per_socket; }
  SocketId rnic_socket() const { return p_.rnic_socket; }

  bool same_socket(SocketId a, SocketId b) const { return a == b; }

  // Extra latency a CPU on `core_socket` pays to reach memory on
  // `mem_socket` (0 if local).
  sim::Duration cpu_mem_penalty(SocketId core_socket,
                                SocketId mem_socket) const {
    return core_socket == mem_socket
               ? 0
               : p_.mem_remote_socket_latency - p_.mem_local_latency;
  }

  // Extra latency a DMA from the RNIC on `port_socket` pays to reach host
  // memory on `mem_socket`.
  sim::Duration dma_mem_penalty(SocketId port_socket,
                                SocketId mem_socket) const {
    return port_socket == mem_socket ? 0 : p_.pcie_dma_alt_socket;
  }

  // Extra MMIO cost for a core on `core_socket` ringing a doorbell on an
  // RNIC port attached to `port_socket`.
  sim::Duration mmio_penalty(SocketId core_socket,
                             SocketId port_socket) const {
    return core_socket == port_socket ? 0 : p_.cpu_mmio_alt_socket;
  }

  // In the multi-port configuration of §III-D each port is bound to one
  // socket: port i -> socket i % sockets.
  SocketId port_socket(std::uint32_t port) const {
    return port % p_.sockets_per_machine;
  }

 private:
  const ModelParams& p_;
};

}  // namespace rdmasem::hw
