#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace rdmasem::hw {

using sim::Duration;
using sim::ns;
using sim::us;

// Default ConnectX-3 inline-send ceiling. Named (rather than a bare 256 in
// ModelParams) because the verbs payload staging sizes its in-frame inline
// arm to it.
inline constexpr std::size_t kMaxInlineDefault = 256;

// ModelParams — every timing constant in the simulator, in one place.
//
// The defaults are calibrated so that the testbed of the paper (dual-socket
// Xeon E5-2640 v2, ConnectX-3 40 Gbps, InfiniScale-IV switch) reproduces the
// paper's §II-B/§III anchor measurements (see DESIGN.md §6). Nothing else in
// the codebase hard-codes a nanosecond.
struct ModelParams {
  // ---- CPU ---------------------------------------------------------------
  // Building one work-queue entry in the send queue (stores + fences,
  // libibverbs bookkeeping). Charged per WR on the posting thread.
  Duration cpu_wqe_prep = ns(110);
  // CPU-visible cost of one MMIO doorbell (uncacheable write-combining
  // store + sfence on an E5-2640 v2). This is the per-doorbell cost that
  // doorbell batching amortizes (§III-A). The WQE is considered visible to
  // the RNIC when the post completes (BlueFlame-style for single posts).
  Duration cpu_mmio = ns(350);
  // Extra MMIO cost when the issuing core sits on the socket the RNIC is
  // NOT attached to (one QPI hop each way on the posted-write path).
  Duration cpu_mmio_alt_socket = ns(140);
  // CPU-side memcpy for SP gather: per-buffer fixed overhead + bandwidth.
  Duration cpu_memcpy_overhead = ns(20);
  double cpu_memcpy_gbps = 12.0;
  // Polling a completion queue entry out of host memory.
  Duration cpu_cq_poll = ns(40);
  // One hop through a shared-memory message queue between sockets (the
  // proxy-socket IPC of §III-D): a cache-line handoff across QPI.
  Duration cpu_ipc = ns(120);
  // One hash computation over a small key (applications).
  Duration cpu_hash = ns(18);
  // Generic per-tuple CPU touch cost in app inner loops.
  Duration cpu_tuple_work = ns(8);

  // ---- PCIe (gen3 x8 to the RNIC) ----------------------------------------
  double pcie_gbps = 7.9 * 8.0;  // ~7.9 GB/s usable
  // RNIC-initiated DMA read round trip for a descriptor / WQE fetch.
  // Paid per WQE of a doorbell batch; single posts push the WQE with the
  // doorbell (BlueFlame) and skip it.
  Duration pcie_dma_read_latency = ns(100);
  // DMA write posting latency (payload landing in host DRAM, or CQE write).
  Duration pcie_dma_write_latency = ns(90);
  // Additional DMA descriptor fetch for every scatter/gather element past
  // the first in a WQE (the RNIC walks the SGL with separate reads).
  Duration pcie_sge_fetch = ns(40);
  // Extra latency when the DMA target memory hangs off the other socket
  // (PCIe root -> QPI -> remote memory controller).
  Duration pcie_dma_alt_socket = ns(95);

  // ---- RNIC --------------------------------------------------------------
  // Send-side execution unit occupancy per WQE. 1/213ns = 4.69 MOPS,
  // the Fig. 1 small-write ceiling.
  Duration rnic_eu_write = ns(213);
  // Responder-side occupancy for serving a READ (DMA read of payload,
  // response packetization). 1/238ns = 4.20 MOPS, the Fig. 1 read ceiling.
  Duration rnic_eu_read = ns(238);
  // Receive-side processing per inbound packet (header parse, MR check).
  // Inbound translation-cache misses stall this unit.
  Duration rnic_rx_proc = ns(85);
  // SEND/RECV (channel semantics) extra receive cost: RQ WQE consumption
  // and CQE generation on the remote CPU path.
  Duration rnic_recv_extra = ns(120);
  // Atomic execution unit: serialized per port; 1/420ns = 2.38 MOPS,
  // the §III-E "2.2~2.5 MOPS" anchor.
  Duration rnic_atomic_unit = ns(420);
  // On-device SRAM metadata cache (shared by PTEs, QP state, MR state).
  std::size_t rnic_sram_entries = 1024;  // 1024 x 4 KB pages = 4 MB knee
  std::size_t rnic_sram_assoc = 8;
  // Cost of servicing a metadata-cache miss: fetch the entry from host
  // DRAM over PCIe. Charged as extra execution-unit occupancy (the WQE
  // stalls the pipeline) plus PCIe usage.
  Duration rnic_mcache_miss = ns(210);
  // DC (dynamically-connected) transport: cost of the initiator-side
  // attach handshake when a WR burst begins and the DC context is not
  // resident — the half-handshake that materializes the connection state
  // on the device. Charged ON TOP of rnic_mcache_miss (the context fetch
  // itself) at the send-EU qp-touch point; the context is invalidated
  // again when the QP goes idle (docs/MODEL.md §9).
  Duration rnic_dc_attach = ns(120);
  // Weight of one cached object, in SRAM "entry" units.
  std::size_t rnic_weight_pte = 1;
  std::size_t rnic_weight_mr = 2;
  std::size_t rnic_weight_qp = 4;
  // Pages covered by one translation entry.
  std::size_t rnic_page_size = 4096;
  // Max SGEs a single WQE may carry (hardware limit).
  std::size_t rnic_max_sge = 32;
  // Max payload the NIC accepts as "inlined" in the WQE (skips one DMA).
  // The verbs payload-staging inline arm (verbs::PayloadBuf::kInlineBytes)
  // is sized to this default so every inline-eligible payload also stages
  // without touching the allocator; a static_assert in verbs/payload.cpp
  // keeps the two in sync.
  std::size_t rnic_max_inline = kMaxInlineDefault;
  // BlueFlame: single posts push the WQE with the doorbell and skip the
  // descriptor-fetch DMA. Disable for ablation.
  bool rnic_blueflame = true;

  // ---- Network (40 Gbps InfiniBand, one switch) ---------------------------
  double link_gbps = 40.0;
  // One-way propagation host->switch->host (cables + switch crossbar).
  Duration net_propagation = ns(100);
  // Per-hop switch processing.
  Duration net_switch_hop = ns(100);
  // Per-message wire overhead (headers, CRC) in bytes, added to payload
  // for serialization purposes.
  std::size_t net_header_bytes = 36;
  // ACK turn-around on the responder RNIC (RC reliability).
  Duration net_ack_proc = ns(40);
  // Packet loss probability (per message). RC retransmits after a
  // timeout; UC/UD silently drop. Default 0 (lossless IB fabric); raise
  // it for failure-injection experiments.
  double net_loss_prob = 0.0;
  // RC retransmission delay after the first lost packet (timeout +
  // resend). Consecutive losses of the same transfer back off
  // exponentially (doubling per attempt) up to rc_retransmit_cap.
  Duration rc_retransmit = us(8.0);
  Duration rc_retransmit_cap = us(512.0);
  // Receiver-not-ready pause before a SEND retransmit (QpConfig::rnr_retry).
  Duration rnr_timer = us(4.0);
  // Global-routing-header overhead carried by every UD datagram.
  std::size_t ud_grh_bytes = 40;
  // Payloads at or above this size move through host memory as streaming
  // DMA (bandwidth model); smaller ones through the row-buffer model.
  std::size_t dma_stream_threshold = 1024;
  // ---- Fabric topology. 0 machines-per-leaf keeps the paper's flat
  // single-switch fabric (every pair one crossbar away); > 0 arranges
  // machines into leaf groups of that size under a spine, and cross-leaf
  // messages pay net_spine_hop extra (leaf -> spine -> leaf: one more
  // crossbar plus two cable segments). Besides modeling racked clusters,
  // leaves widen the parallel engine's conservative epochs: the
  // per-(src,dst)-shard lookahead matrix (docs/PERF.md) is derived from
  // these per-pair latencies, so leaf-aligned shards synchronize at the
  // cross-leaf latency instead of the global minimum.
  std::uint32_t net_machines_per_leaf = 0;
  Duration net_spine_hop = ns(300);

  // ---- Host memory / NUMA (Table II anchors) ------------------------------
  Duration mem_local_latency = ns(92);
  Duration mem_remote_socket_latency = ns(162);
  double mem_local_gbps = 3.70 * 8.0;          // MLC single-thread numbers
  double mem_remote_socket_gbps = 2.27 * 8.0;
  // DRAM row-buffer model (drives local seq/rand asymmetry, Fig. 6c).
  Duration dram_line_hit = ns(10);    // access within the open cache line
  Duration dram_row_hit = ns(26);     // open row, new line
  Duration dram_row_miss = ns(76);    // precharge + activate
  std::size_t dram_row_bytes = 8192;
  std::size_t dram_line_bytes = 64;
  std::size_t dram_banks = 16;
  // Effective memory-level parallelism for pipelined access streams.
  std::uint32_t dram_mlp = 4;

  // ---- Cache coherence (local atomics, Fig. 10) ---------------------------
  // Uncontended locked RMW on an exclusive line.
  Duration coh_atomic_base = ns(8);
  // Added cost per concurrent contender on the same line (line ping-pong).
  // CAS pays the full exclusive-transfer storm; FAA degrades gracefully.
  Duration coh_atomic_per_contender = ns(55);
  Duration coh_faa_per_contender = ns(6);
  // Extra if the line's home is the other socket.
  Duration coh_cross_socket = ns(60);
  // Plain load on a contended line (spin-wait read).
  Duration coh_spin_read = ns(4);

  // ---- Topology ------------------------------------------------------------
  std::uint32_t sockets_per_machine = 2;
  std::uint32_t cores_per_socket = 8;
  std::uint32_t rnic_ports = 2;          // ConnectX-3 dual port
  std::uint32_t rnic_socket = 1;         // the paper: NIC on socket 1
  std::uint32_t machines = 8;

  // Named preset matching the paper's testbed (== the defaults).
  static ModelParams connectx3_cluster() { return ModelParams{}; }

  // Convenience: serialization time of `bytes` at `gbps`.
  static Duration ser_time(std::size_t bytes, double gbps) {
    return static_cast<Duration>(static_cast<double>(bytes) * 8.0 /
                                 gbps * static_cast<double>(sim::kNanosecond));
  }
  Duration wire_time(std::size_t payload) const {
    return ser_time(payload + net_header_bytes, link_gbps);
  }
  // Leaf switch of a machine under the two-tier topology (leaf 0 for the
  // flat single-switch default).
  std::uint32_t leaf_of(std::uint32_t machine) const {
    return net_machines_per_leaf == 0 ? 0 : machine / net_machines_per_leaf;
  }
  // One-way propagation + switching latency between two machines' NICs
  // (the serialization-free part of a message's flight time). This is the
  // per-pair quantity both the fabric's transit hop and the engine's
  // lookahead matrix are built from — keeping them one function is what
  // makes the conservative-epoch bound airtight.
  Duration hop_latency(std::uint32_t src, std::uint32_t dst) const {
    Duration d = net_propagation + net_switch_hop;
    if (leaf_of(src) != leaf_of(dst)) d += net_spine_hop;
    return d;
  }
  Duration pcie_time(std::size_t bytes) const {
    return ser_time(bytes, pcie_gbps);
  }
  Duration memcpy_time(std::size_t bytes) const {
    return cpu_memcpy_overhead +
           ser_time(bytes, cpu_memcpy_gbps * 8.0);
  }
};

}  // namespace rdmasem::hw
