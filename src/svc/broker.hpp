#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/stats.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::svc {

using TenantId = std::uint32_t;

// Per-op admission decision (reported back to the tenant and mirrored in
// the svc.broker.* obs counters: admitted counts kAdmitted AND kQueued
// once they dispatch; queued counts kQueued; rejected counts kRejected).
enum class Admission : std::uint8_t {
  kAdmitted = 0,  // dispatched without waiting
  kQueued,        // waited (throttle or full pool), then dispatched
  kRejected,      // bounced by the queue-or-reject policy
};

const char* to_string(Admission a);

// Broker policy knobs (docs/SERVICE.md).
struct BrokerConfig {
  // Per-tenant token bucket: sustained rate in ops per microsecond of
  // virtual time, with `bucket_depth` ops of burst credit. Implemented
  // as GCRA (virtual-clock theoretical-arrival-time), so admission is
  // O(1), exact, and a pure function of virtual time — no RNG, no
  // wall-clock. The default rate is high enough to be effectively
  // unthrottled; dial it down to shape tenants.
  double tokens_per_us = 1000.0;
  double bucket_depth = 64.0;
  // Queue-or-reject policy: an op that cannot dispatch immediately
  // (throttled, or every pooled QP busy) waits while fewer than
  // max_queue ops are already waiting, else it is rejected.
  std::size_t max_queue = 4096;
  // false = reject throttled ops outright instead of sleeping them
  // until their token matures (pool-full ops may still queue).
  bool queue_throttled = true;
};

// Per-tenant accounting, kept broker-local (the obs Hub carries only the
// cluster-wide aggregates). wait_ns records the admission wait — queue
// plus throttle, not the RDMA op itself — of every dispatched op.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
  util::Log2Histogram wait_ns;
};

struct SubmitResult {
  Admission admission = Admission::kRejected;
  // Meaningful only when admission != kRejected (rejected ops never
  // reach a QP; the completion stays default-constructed).
  verbs::Completion completion{};
  // Admission wait on the virtual clock (0 for kAdmitted/kRejected).
  sim::Duration waited = 0;

  bool ok() const {
    return admission != Admission::kRejected && completion.ok();
  }
};

// Broker — a per-host connection multiplexer (the RDMAvisor idea):
// tenant sessions submit verbs work requests to the broker, which
// dispatches them over a small bounded pool of long-lived QPs instead of
// giving every tenant a private connection. The host then holds O(pool)
// QP contexts in RNIC SRAM however many tenants it serves, which is what
// keeps the metadata cache from thrashing at scale (bench/
// ext_tenant_scale.cpp).
//
// Determinism: all broker state lives on the owning machine's lane —
// submit() settles there first — and ties are broken by arrival order on
// the virtual clock (the pool semaphore and the GCRA bucket are both
// FIFO per lane, and same-instant arrivals dispatch in the engine's
// deterministic per-lane sequence order). Token maturities are computed,
// never sampled, so every shard count replays the same admissions.
//
// Every pooled QP must belong to the same Context (one broker per host);
// the tenant->broker handoff charges one cpu_ipc shared-memory hop.
class Broker {
 public:
  explicit Broker(std::vector<verbs::QueuePair*> pool, BrokerConfig cfg = {});

  // Runs one tenant op through admission control and a pooled QP.
  // Resumes the caller on the broker's home lane.
  sim::TaskT<SubmitResult> submit(TenantId tenant, verbs::WorkRequest wr);

  verbs::Context& context() { return *ctx_; }
  std::size_t pool_size() const { return pool_.size(); }
  // Ops currently waiting on admission (throttle + pool).
  std::size_t queue_depth() const { return waiting_; }

  // nullptr until the tenant's first submit.
  const TenantStats* tenant_stats(TenantId t) const;
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t queued() const { return queued_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  // GCRA state: the virtual time at which the tenant's NEXT op conforms
  // without waiting (minus the burst tolerance).
  struct Bucket {
    sim::Time tat = 0;
  };

  std::uint32_t home_lane() const;

  verbs::Context* ctx_;
  BrokerConfig cfg_;
  std::vector<verbs::QueuePair*> pool_;
  // LIFO freelist: under light load the same few QPs are reused, which
  // keeps their contexts hot in the RNIC metadata cache.
  std::vector<verbs::QueuePair*> free_;
  sim::Semaphore slots_;
  sim::Duration token_interval_;   // ps between matured tokens
  sim::Duration burst_tolerance_;  // (bucket_depth - 1) * token_interval
  std::size_t waiting_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t rejected_ = 0;
  std::unordered_map<TenantId, Bucket> buckets_;
  std::unordered_map<TenantId, TenantStats> stats_;
};

}  // namespace rdmasem::svc
