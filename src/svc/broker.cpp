#include "svc/broker.hpp"

#include <algorithm>

#include "obs/hub.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "verbs/context.hpp"

namespace rdmasem::svc {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "ADMITTED";
    case Admission::kQueued: return "QUEUED";
    case Admission::kRejected: return "REJECTED";
  }
  return "?";
}

namespace {
verbs::Context& checked_context(const std::vector<verbs::QueuePair*>& pool) {
  RDMASEM_CHECK_MSG(!pool.empty(), "broker needs a non-empty QP pool");
  return pool.front()->context();
}
}  // namespace

Broker::Broker(std::vector<verbs::QueuePair*> pool, BrokerConfig cfg)
    : ctx_(&checked_context(pool)),
      cfg_(cfg),
      pool_(std::move(pool)),
      free_(pool_),
      slots_(ctx_->engine(), pool_.size()) {
  for (verbs::QueuePair* qp : pool_)
    RDMASEM_CHECK_MSG(&qp->context() == ctx_,
                      "broker pool spans multiple contexts");
  RDMASEM_CHECK_MSG(cfg_.tokens_per_us > 0.0 && cfg_.bucket_depth >= 1.0,
                    "bad token bucket parameters");
  token_interval_ = static_cast<sim::Duration>(
      static_cast<double>(sim::kMicrosecond) / cfg_.tokens_per_us);
  burst_tolerance_ = static_cast<sim::Duration>(
      (cfg_.bucket_depth - 1.0) * static_cast<double>(token_interval_));
}

std::uint32_t Broker::home_lane() const { return ctx_->machine().id() + 1; }

const TenantStats* Broker::tenant_stats(TenantId t) const {
  auto it = stats_.find(t);
  return it == stats_.end() ? nullptr : &it->second;
}

sim::TaskT<SubmitResult> Broker::submit(TenantId tenant,
                                        verbs::WorkRequest wr) {
  auto& eng = ctx_->engine();
  // All broker state is single-lane: whatever lane the tenant ran on,
  // the submission first lands on the broker machine's lane.
  co_await sim::settle(eng, home_lane());
  // Tenant -> broker handoff: one shared-memory IPC hop on this host.
  co_await sim::delay(eng, ctx_->params().cpu_ipc);

  obs::Hub& hub = ctx_->cluster().obs();
  TenantStats& ts = stats_[tenant];
  ++ts.submitted;
  const sim::Time t0 = eng.now();

  // ---- token-bucket admission (GCRA) ------------------------------------
  // The op conforms immediately if the tenant's theoretical arrival time
  // is within the burst tolerance; otherwise its token matures at
  // tat - tolerance and the op sleeps exactly until then.
  Bucket& b = buckets_[tenant];
  const sim::Duration throttle_wait =
      b.tat > t0 + burst_tolerance_ ? b.tat - burst_tolerance_ - t0 : 0;
  if (throttle_wait > 0 &&
      (!cfg_.queue_throttled || waiting_ >= cfg_.max_queue)) {
    ++ts.rejected;
    ++rejected_;
    hub.broker_rejected.inc();
    co_return SubmitResult{};  // rejected: no token consumed
  }
  b.tat = std::max(b.tat, t0) + token_interval_;
  if (throttle_wait > 0) {
    ++waiting_;
    co_await sim::delay(eng, throttle_wait);
    --waiting_;
  }

  // ---- bounded QP pool ---------------------------------------------------
  if (slots_.available() == 0) {
    if (waiting_ >= cfg_.max_queue) {
      ++ts.rejected;
      ++rejected_;
      hub.broker_rejected.inc();
      co_return SubmitResult{};
    }
    ++waiting_;
    co_await slots_.acquire();
    --waiting_;
  } else {
    co_await slots_.acquire();
  }
  verbs::QueuePair* qp = free_.back();
  free_.pop_back();

  const sim::Duration waited = eng.now() - t0;
  ++ts.admitted;
  ++admitted_;
  hub.broker_admitted.inc();
  if (waited > 0) {
    ++ts.queued;
    ++queued_;
    hub.broker_queued.inc();
  }
  const std::uint64_t wait_ns = waited / sim::kNanosecond;
  ts.wait_ns.add(wait_ns);
  hub.broker_wait_ns.add(wait_ns);

  verbs::Completion c = co_await qp->execute(std::move(wr));
  free_.push_back(qp);
  slots_.release();

  SubmitResult out;
  out.admission = waited > 0 ? Admission::kQueued : Admission::kAdmitted;
  out.completion = c;
  out.waited = waited;
  co_return out;
}

}  // namespace rdmasem::svc
