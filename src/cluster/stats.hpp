#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace rdmasem::cluster {

// StatsReport — a point-in-time snapshot of every shared hardware
// resource in the cluster: per-port execution/rx/atomic-unit utilization,
// DMA and memory-channel utilization, metadata-cache hit rates, and
// fabric totals. Benches and debugging sessions use it to answer "what
// is the bottleneck?" without instrumenting anything.
struct StatsReport {
  struct PortStats {
    MachineId machine;
    std::uint32_t port;
    double eu_util;
    double rx_util;
    double atomic_util;
    std::uint64_t eu_requests;
    // Messages lost on this port's uplink (fault injection / loss knob).
    std::uint64_t tx_drops;
  };
  // Cluster-wide fault/retry totals folded in from the obs hub — the
  // PR-1 failure machinery summarized next to the utilization numbers.
  struct FaultTotals {
    std::uint64_t fabric_drops = 0;     // lost transits (all links)
    std::uint64_t retransmits = 0;      // QP go-back-N retransmissions
    std::uint64_t retry_exhausted = 0;  // WRs failed after retry budget
    std::uint64_t flushed_wrs = 0;      // WRs flushed by QPs in ERROR
    std::uint64_t rnr_naks = 0;         // SEND receiver-not-ready NAKs
  };
  struct MachineStats {
    MachineId machine;
    double dma_util;
    std::vector<double> mem_channel_util;  // per socket
    double mcache_hit_rate;
    std::uint64_t mcache_hits;
    std::uint64_t mcache_misses;
  };

  sim::Time captured_at = 0;
  std::vector<PortStats> ports;
  std::vector<MachineStats> machines;
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  FaultTotals faults;

  // Collects a snapshot from a live cluster.
  static StatsReport capture(Cluster& cluster);

  // The (machine, port) whose execution unit is most utilized — usually
  // the throughput bottleneck suspect.
  const PortStats* hottest_port() const;

  // Fixed-width human-readable rendering.
  std::string render() const;
};

}  // namespace rdmasem::cluster
