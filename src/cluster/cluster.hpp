#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "hw/coherence.hpp"
#include "hw/dram.hpp"
#include "hw/numa.hpp"
#include "hw/params.hpp"
#include "net/fabric.hpp"
#include "obs/hub.hpp"
#include "rnic/rnic.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace rdmasem::cluster {

using hw::MachineId;
using hw::SocketId;

// Machine — one dual-socket server of the paper's testbed: per-socket DRAM
// models + memory-channel bandwidth resources, a coherence model for local
// atomics, and one (multi-port) RNIC.
class Machine {
 public:
  Machine(sim::Engine& engine, const hw::ModelParams& params, MachineId id);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  MachineId id() const { return id_; }
  const hw::NumaTopology& topo() const { return topo_; }
  rnic::Rnic& rnic() { return rnic_; }
  hw::DramModel& dram(SocketId s) { return *dram_.at(s); }
  sim::Resource& mem_channel(SocketId s) { return *mem_channel_.at(s); }
  hw::CoherenceModel& coherence() { return coherence_; }

  // Socket a given port's PCIe lane hangs off (multi-port NUMA binding).
  SocketId port_socket(rnic::PortId p) const { return topo_.port_socket(p); }

 private:
  MachineId id_;
  const hw::ModelParams& p_;
  hw::NumaTopology topo_;
  rnic::Rnic rnic_;
  hw::CoherenceModel coherence_;
  std::vector<std::unique_ptr<hw::DramModel>> dram_;
  std::vector<std::unique_ptr<sim::Resource>> mem_channel_;
};

// Cluster — the eight-machine testbed: machines plus the switch fabric.
// This is the root object every experiment builds first.
class Cluster {
 public:
  Cluster(sim::Engine& engine, hw::ModelParams params);

  sim::Engine& engine() { return engine_; }
  const hw::ModelParams& params() const { return p_; }
  net::Fabric& fabric() { return fabric_; }
  // Fault injection: the cluster owns the fault domain (one replica per
  // engine lane, consulted by the fabric on every transit) and the
  // injector that applies FaultPlans to every replica. A NIC-stall
  // listener registered at construction freezes the stalled machine's
  // RNIC pipeline resources for the stall window.
  fault::FaultDomain& fault_domain() { return faults_; }
  // Lane-0 (driver) replica — the view driver-context code reads.
  fault::FaultState& faults() { return faults_.replica(0); }
  fault::FaultInjector& injector() { return injector_; }
  // Convenience: schedule a whole plan on the virtual clock.
  void inject(const fault::FaultPlan& plan) { injector_.schedule(plan); }
  // Observability root: metrics registry (fabric/RNIC/memory gauges are
  // pre-registered at construction; layers push counters) and the per-WR
  // lifecycle tracer (off unless RDMASEM_TRACE=1 or set_enabled).
  obs::Hub& obs() { return obs_; }
  Machine& machine(MachineId m) { return *machines_.at(m); }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(machines_.size());
  }

  // Cluster-wide unique QP ids (metadata-cache keys must never alias).
  std::uint64_t next_qp_id() { return ++qp_id_; }

  // Visits every contended sim::Resource of the testbed in a fixed order
  // (machines: per-port EU/RX/atomic unit, RNIC DMA, per-socket memory
  // channels; then the fabric's per-(machine,port) tx/rx links). The obs
  // layer interns attribution ids against this walk at construction and
  // folds the per-resource wait tables from it at bench absorb time.
  template <typename Fn>
  void for_each_resource(Fn&& fn) {
    for (auto& mach : machines_) {
      auto& r = mach->rnic();
      for (rnic::PortId p = 0; p < r.port_count(); ++p) {
        fn(r.port(p).eu);
        fn(r.port(p).rx);
        fn(r.port(p).atomic_unit);
      }
      fn(r.dma());
      for (SocketId s = 0; s < p_.sockets_per_machine; ++s)
        fn(mach->mem_channel(s));
    }
    for (MachineId m = 0; m < size(); ++m)
      for (std::uint32_t p = 0; p < p_.rnic_ports; ++p) {
        fn(fabric_.tx_link(m, p));
        fn(fabric_.rx_link(m, p));
      }
  }

 private:
  void register_gauges();

  sim::Engine& engine_;
  hw::ModelParams p_;
  obs::Hub obs_;
  fault::FaultDomain faults_;
  fault::FaultInjector injector_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::uint64_t qp_id_ = 0;
};

}  // namespace rdmasem::cluster
