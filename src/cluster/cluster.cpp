#include "cluster/cluster.hpp"

namespace rdmasem::cluster {

Machine::Machine(sim::Engine& engine, const hw::ModelParams& params,
                 MachineId id)
    : id_(id),
      p_(params),
      topo_(params),
      rnic_(engine, params, params.rnic_ports, "m" + std::to_string(id)),
      coherence_(engine, params) {
  for (SocketId s = 0; s < params.sockets_per_machine; ++s) {
    dram_.push_back(std::make_unique<hw::DramModel>(p_));
    mem_channel_.push_back(std::make_unique<sim::Resource>(
        engine, 1, "m" + std::to_string(id) + ".mem" + std::to_string(s)));
  }
}

Cluster::Cluster(sim::Engine& engine, hw::ModelParams params)
    : engine_(engine),
      p_(params),
      fabric_(engine, p_, params.machines, params.rnic_ports) {
  machines_.reserve(params.machines);
  for (MachineId m = 0; m < params.machines; ++m)
    machines_.push_back(std::make_unique<Machine>(engine, p_, m));
}

}  // namespace rdmasem::cluster
