#include "cluster/cluster.hpp"

#include <algorithm>
#include <map>

#include "util/env.hpp"

namespace rdmasem::cluster {

namespace {
// RDMASEM_SHARDS: worker-shard count for the parallel engine. 1 (the
// default) is the classic single-threaded simulator; values are clamped
// to [1, machines] — more shards than machines would leave workers idle.
std::uint32_t shard_count(std::uint32_t machines) {
  const std::uint64_t req = util::env_u64("RDMASEM_SHARDS", 1);
  const std::uint64_t cap = machines == 0 ? 1 : machines;
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(req, 1, cap));
}
}  // namespace

Machine::Machine(sim::Engine& engine, const hw::ModelParams& params,
                 MachineId id)
    : id_(id),
      p_(params),
      topo_(params),
      rnic_(engine, params, params.rnic_ports, "m" + std::to_string(id)),
      coherence_(engine, params) {
  for (SocketId s = 0; s < params.sockets_per_machine; ++s) {
    dram_.push_back(std::make_unique<hw::DramModel>(p_));
    mem_channel_.push_back(std::make_unique<sim::Resource>(
        engine, 1, "m" + std::to_string(id) + ".mem" + std::to_string(s)));
  }
}

Cluster::Cluster(sim::Engine& engine, hw::ModelParams params)
    : engine_(engine),
      p_(params),
      faults_(params.machines, params.rnic_ports),
      injector_(engine, faults_),
      fabric_(engine, p_, params.machines, params.rnic_ports) {
  // Lane topology: lane 0 is the driver, lane m+1 is machine m. Each
  // lane's affinity group is its machine's leaf switch (the driver rides
  // with machine 0's leaf), and the group latency matrix is the minimum
  // hop_latency over the machine pairs of the two leaves — so the
  // engine's per-(src,dst)-shard lookahead matrix (= the conservative
  // epoch widths) is derived from the same function the fabric charges
  // per message, and no event can ever cross shards inside an epoch.
  // With the default flat fabric this collapses to one group at
  // net_propagation + net_switch_hop, the classic global lookahead.
  const std::uint32_t lanes = params.machines + 1;
  sim::LaneTopology topo;
  std::uint32_t groups = 1;
  for (MachineId m = 0; m < params.machines; ++m)
    groups = std::max(groups, p_.leaf_of(m) + 1);
  topo.groups = groups;
  topo.lane_group.assign(lanes, 0);
  for (MachineId m = 0; m < params.machines; ++m)
    topo.lane_group[m + 1] = p_.leaf_of(m);
  const sim::Duration base = p_.net_propagation + p_.net_switch_hop;
  constexpr sim::Duration kUnset = ~sim::Duration{0};
  topo.group_latency.assign(static_cast<std::size_t>(groups) * groups, kUnset);
  for (MachineId a = 0; a < params.machines; ++a)
    for (MachineId b = 0; b < params.machines; ++b) {
      auto& lat =
          topo.group_latency[static_cast<std::size_t>(p_.leaf_of(a)) * groups +
                             p_.leaf_of(b)];
      lat = std::min(lat, p_.hop_latency(a, b));
    }
  // No machines (bare-driver clusters): the single entry falls back to
  // the flat-fabric latency so the engine still has a nonzero lookahead.
  for (auto& lat : topo.group_latency)
    if (lat == kUnset) lat = base;
  engine_.configure_lanes(lanes, shard_count(params.machines),
                          std::move(topo));
  // Publication quantum for the demand-driven horizon: half the base
  // fabric latency. Clock publications then land at least twice per
  // lookahead window, so a peer's live term never lags a full epoch
  // behind the sender's true position (RDMASEM_HORIZON_QUANTUM overrides).
  if (engine_.horizon_quantum() == 0)
    engine_.set_horizon_quantum(std::max<sim::Duration>(base / 2, 1));
  faults_.set_lanes(lanes);
  obs_.tracer.set_lanes(lanes);
  machines_.reserve(params.machines);
  for (MachineId m = 0; m < params.machines; ++m)
    machines_.push_back(std::make_unique<Machine>(engine, p_, m));
  fabric_.set_faults(&faults_);
  // Assign every resource its attribution id (the tracer's interned name
  // index) so per-WR attribution records can reference resources by a
  // 16-bit id while sim stays obs-free.
  for_each_resource(
      [this](sim::Resource& r) { r.set_attr_id(obs_.tracer.intern_res(r.name())); });
  register_gauges();
  // A stalled RNIC stops fetching WQEs, processing inbound packets and
  // serving atomics for the stall window: occupy one full window on every
  // pipeline resource so in-flight and queued work waits it out.
  injector_.add_listener([this](const fault::FaultEvent& ev, bool begin) {
    if (ev.kind != fault::FaultKind::kNicStall || !begin) return;
    auto& r = machine(ev.machine).rnic();
    for (rnic::PortId p = 0; p < r.port_count(); ++p) {
      r.port(p).eu.reserve(ev.duration);
      r.port(p).rx.reserve(ev.duration);
      r.port(p).atomic_unit.reserve(ev.duration);
    }
    r.dma().reserve(ev.duration);
  });
}

// Every shared hardware resource is exposed as a pull-gauge: the registry
// polls the live object at sample time, so steady-state simulation pays
// nothing for having 100+ gauges registered.
void Cluster::register_gauges() {
  auto& m = obs_.metrics;
  m.gauge("fabric.messages",
          [this] { return static_cast<double>(fabric_.messages()); });
  m.gauge("fabric.bytes",
          [this] { return static_cast<double>(fabric_.bytes()); });
  m.gauge("fabric.drops",
          [this] { return static_cast<double>(fabric_.drops()); });
  for (MachineId id = 0; id < size(); ++id) {
    Machine* mach = machines_[id].get();
    const std::string base = "m" + std::to_string(id) + ".";
    auto& rnic = mach->rnic();
    for (std::uint32_t p = 0; p < rnic.port_count(); ++p) {
      const std::string pb = base + "p" + std::to_string(p) + ".";
      auto* port = &rnic.port(p);
      m.gauge(pb + "eu_util", [port] { return port->eu.utilization(); });
      m.gauge(pb + "eu_requests", [port] {
        return static_cast<double>(port->eu.requests());
      });
      m.gauge(pb + "rx_util", [port] { return port->rx.utilization(); });
      m.gauge(pb + "atomic_util",
              [port] { return port->atomic_unit.utilization(); });
      m.gauge(pb + "tx_drops", [this, id, p] {
        return static_cast<double>(fabric_.link_drops(id, p));
      });
    }
    m.gauge(base + "dma_util",
            [mach] { return mach->rnic().dma().utilization(); });
    m.gauge(base + "mcache_hits", [mach] {
      return static_cast<double>(mach->rnic().mcache().hits());
    });
    m.gauge(base + "mcache_misses", [mach] {
      return static_cast<double>(mach->rnic().mcache().misses());
    });
    m.gauge(base + "mcache_hit_rate",
            [mach] { return mach->rnic().mcache().hit_rate(); });
    for (hw::SocketId s = 0; s < p_.sockets_per_machine; ++s)
      m.gauge(base + "mem" + std::to_string(s) + "_util", [mach, s] {
        return mach->mem_channel(s).utilization();
      });
  }
  // Queueing-delay attribution gauges: total wait picoseconds per resource
  // NAME (the bottleneck signal the obs tooling ranks by). Fabric links
  // share one name per direction, so their gauge sums over every link.
  std::map<std::string, std::vector<sim::Resource*>> by_name;
  for_each_resource(
      [&by_name](sim::Resource& r) { by_name[r.name()].push_back(&r); });
  for (auto& [name, group] : by_name)
    m.gauge(name + ".wait_ps", [group] {
      std::uint64_t ps = 0;
      for (const sim::Resource* r : group) ps += r->wait_time();
      return static_cast<double>(ps);
    });
}

}  // namespace rdmasem::cluster
