#include "cluster/cluster.hpp"

namespace rdmasem::cluster {

Machine::Machine(sim::Engine& engine, const hw::ModelParams& params,
                 MachineId id)
    : id_(id),
      p_(params),
      topo_(params),
      rnic_(engine, params, params.rnic_ports, "m" + std::to_string(id)),
      coherence_(engine, params) {
  for (SocketId s = 0; s < params.sockets_per_machine; ++s) {
    dram_.push_back(std::make_unique<hw::DramModel>(p_));
    mem_channel_.push_back(std::make_unique<sim::Resource>(
        engine, 1, "m" + std::to_string(id) + ".mem" + std::to_string(s)));
  }
}

Cluster::Cluster(sim::Engine& engine, hw::ModelParams params)
    : engine_(engine),
      p_(params),
      faults_(params.machines, params.rnic_ports),
      injector_(engine, faults_),
      fabric_(engine, p_, params.machines, params.rnic_ports) {
  machines_.reserve(params.machines);
  for (MachineId m = 0; m < params.machines; ++m)
    machines_.push_back(std::make_unique<Machine>(engine, p_, m));
  fabric_.set_faults(&faults_);
  // A stalled RNIC stops fetching WQEs, processing inbound packets and
  // serving atomics for the stall window: occupy one full window on every
  // pipeline resource so in-flight and queued work waits it out.
  injector_.add_listener([this](const fault::FaultEvent& ev, bool begin) {
    if (ev.kind != fault::FaultKind::kNicStall || !begin) return;
    auto& r = machine(ev.machine).rnic();
    for (rnic::PortId p = 0; p < r.port_count(); ++p) {
      r.port(p).eu.reserve(ev.duration);
      r.port(p).rx.reserve(ev.duration);
      r.port(p).atomic_unit.reserve(ev.duration);
    }
    r.dma().reserve(ev.duration);
  });
}

}  // namespace rdmasem::cluster
