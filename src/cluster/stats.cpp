#include "cluster/stats.hpp"

#include "util/table.hpp"

namespace rdmasem::cluster {

StatsReport StatsReport::capture(Cluster& cluster) {
  StatsReport r;
  r.captured_at = cluster.engine().now();
  r.fabric_messages = cluster.fabric().messages();
  r.fabric_bytes = cluster.fabric().bytes();
  obs::Hub& hub = cluster.obs();
  r.faults.fabric_drops = cluster.fabric().drops();
  r.faults.retransmits = hub.retransmits.value();
  r.faults.retry_exhausted = hub.retry_exhausted.value();
  r.faults.flushed_wrs = hub.wr_flushed.value();
  r.faults.rnr_naks = hub.rnr_naks.value();
  for (MachineId m = 0; m < cluster.size(); ++m) {
    Machine& mach = cluster.machine(m);
    auto& rnic = mach.rnic();
    for (std::uint32_t p = 0; p < rnic.port_count(); ++p) {
      auto& port = rnic.port(p);
      r.ports.push_back({m, p, port.eu.utilization(), port.rx.utilization(),
                         port.atomic_unit.utilization(), port.eu.requests(),
                         cluster.fabric().link_drops(m, p)});
    }
    MachineStats ms;
    ms.machine = m;
    ms.dma_util = rnic.dma().utilization();
    for (hw::SocketId s = 0; s < cluster.params().sockets_per_machine; ++s)
      ms.mem_channel_util.push_back(mach.mem_channel(s).utilization());
    ms.mcache_hit_rate = rnic.mcache().hit_rate();
    ms.mcache_hits = rnic.mcache().hits();
    ms.mcache_misses = rnic.mcache().misses();
    r.machines.push_back(std::move(ms));
  }
  return r;
}

const StatsReport::PortStats* StatsReport::hottest_port() const {
  const PortStats* best = nullptr;
  for (const auto& p : ports)
    if (best == nullptr || p.eu_util > best->eu_util) best = &p;
  return best;
}

std::string StatsReport::render() const {
  util::Table t({"machine", "port", "eu", "rx", "atomic", "dma", "mem0",
                 "mem1", "mcache_hit", "tx_drops"});
  t.set_title("cluster stats @ " + util::fmt(sim::to_us(captured_at)) +
              " us");
  for (const auto& p : ports) {
    const auto& m = machines[p.machine];
    t.add_row({std::to_string(p.machine), std::to_string(p.port),
               util::fmt(p.eu_util), util::fmt(p.rx_util),
               util::fmt(p.atomic_util), util::fmt(m.dma_util),
               util::fmt(m.mem_channel_util.empty()
                             ? 0.0
                             : m.mem_channel_util[0]),
               util::fmt(m.mem_channel_util.size() > 1
                             ? m.mem_channel_util[1]
                             : 0.0),
               util::fmt(m.mcache_hit_rate, 3),
               std::to_string(p.tx_drops)});
  }
  std::string out = t.render();
  out += "fabric: " + std::to_string(fabric_messages) + " messages, " +
         std::to_string(fabric_bytes) + " payload bytes\n";
  out += "faults: " + std::to_string(faults.fabric_drops) + " drops, " +
         std::to_string(faults.retransmits) + " retransmits, " +
         std::to_string(faults.retry_exhausted) + " retry-exhausted, " +
         std::to_string(faults.flushed_wrs) + " flushed WRs, " +
         std::to_string(faults.rnr_naks) + " RNR NAKs\n";
  return out;
}

}  // namespace rdmasem::cluster
