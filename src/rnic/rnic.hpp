#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/mcache.hpp"
#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace rdmasem::rnic {

using PortId = std::uint32_t;

// Rnic — one RDMA NIC (the paper's ConnectX-3 dual-port model).
//
// Per port:
//   eu          the WQE execution/processing unit. Its ~213 ns (write) /
//               ~238 ns (read-response) per-WQE occupancy is the packet-
//               throttling ceiling of Fig. 1. Metadata-cache misses stall
//               this unit, which is how translation thrash converts into
//               the random-access throughput loss of Fig. 6.
//   rx          inbound packet processing.
//   atomic_unit the serialized CAS/FAA engine (~2.4 MOPS, §III-E).
//
// Shared across ports:
//   dma         the PCIe DMA engine (bandwidth to host memory).
//   mcache      the on-device SRAM metadata cache (PTE / MR / QP state).
class Rnic {
 public:
  Rnic(sim::Engine& engine, const hw::ModelParams& params,
       std::uint32_t ports, const std::string& name);

  struct Port {
    sim::Resource eu;
    sim::Resource rx;
    sim::Resource atomic_unit;
    Port(sim::Engine& e, const std::string& base)
        : eu(e, 1, base + ".eu"),
          rx(e, 1, base + ".rx"),
          atomic_unit(e, 1, base + ".atomic") {}
  };

  Port& port(PortId p) { return *ports_.at(p); }
  std::uint32_t port_count() const {
    return static_cast<std::uint32_t>(ports_.size());
  }
  sim::Resource& dma() { return dma_; }
  hw::MetadataCache& mcache() { return mcache_; }
  const hw::MetadataCache& mcache() const { return mcache_; }

  // Touches the translation entries covering [addr, addr+len) plus the MR
  // state entry, and returns the execution-unit stall caused by misses.
  sim::Duration translate(std::uint64_t mr_id, std::uint64_t addr,
                          std::size_t len);

  // Touches the QP context entry; returns the stall on a miss.
  sim::Duration qp_touch(std::uint64_t qp_id);

  // DC initiator-context touch: like qp_touch, but a miss additionally
  // pays the dynamic-connect attach handshake (rnic_dc_attach) — the
  // context is not merely refetched, it is re-established. Returns 0 on
  // a hit (the burst is already attached).
  sim::Duration dc_touch(std::uint64_t qp_id);

  // DC detach: the initiator context leaves device SRAM as soon as the
  // QP goes idle, so DC SRAM pressure tracks active flows. No-op if the
  // entry was already evicted.
  void dc_detach(std::uint64_t qp_id);

  // Drops all cached state for an MR's pages (deregistration).
  void invalidate_mr(std::uint64_t mr_id, std::uint64_t base, std::size_t len);

  const hw::ModelParams& params() const { return p_; }

 private:
  sim::Engine& engine_;
  const hw::ModelParams& p_;
  std::vector<std::unique_ptr<Port>> ports_;
  sim::Resource dma_;
  hw::MetadataCache mcache_;
};

}  // namespace rdmasem::rnic
