#include "rnic/rnic.hpp"

namespace rdmasem::rnic {

Rnic::Rnic(sim::Engine& engine, const hw::ModelParams& params,
           std::uint32_t ports, const std::string& name)
    : engine_(engine),
      p_(params),
      dma_(engine, 1, name + ".dma"),
      mcache_(params.rnic_sram_entries, params.rnic_weight_pte,
              params.rnic_weight_mr, params.rnic_weight_qp) {
  ports_.reserve(ports);
  for (std::uint32_t i = 0; i < ports; ++i)
    ports_.push_back(
        std::make_unique<Port>(engine_, name + ".p" + std::to_string(i)));
}

sim::Duration Rnic::translate(std::uint64_t mr_id, std::uint64_t addr,
                              std::size_t len) {
  sim::Duration stall = 0;
  if (!mcache_.access(hw::MetadataCache::Kind::kMr, mr_id))
    stall += p_.rnic_mcache_miss;
  const std::uint64_t first = addr / p_.rnic_page_size;
  const std::uint64_t last =
      (addr + (len ? len - 1 : 0)) / p_.rnic_page_size;
  for (std::uint64_t page = first; page <= last; ++page) {
    if (!mcache_.access(hw::MetadataCache::Kind::kPte, page))
      stall += p_.rnic_mcache_miss;
  }
  return stall;
}

sim::Duration Rnic::qp_touch(std::uint64_t qp_id) {
  return mcache_.access(hw::MetadataCache::Kind::kQp, qp_id)
             ? 0
             : p_.rnic_mcache_miss;
}

sim::Duration Rnic::dc_touch(std::uint64_t qp_id) {
  return mcache_.access(hw::MetadataCache::Kind::kQp, qp_id)
             ? 0
             : p_.rnic_mcache_miss + p_.rnic_dc_attach;
}

void Rnic::dc_detach(std::uint64_t qp_id) {
  mcache_.invalidate(hw::MetadataCache::Kind::kQp, qp_id);
}

void Rnic::invalidate_mr(std::uint64_t mr_id, std::uint64_t base,
                         std::size_t len) {
  mcache_.invalidate(hw::MetadataCache::Kind::kMr, mr_id);
  const std::uint64_t first = base / p_.rnic_page_size;
  const std::uint64_t last =
      (base + (len ? len - 1 : 0)) / p_.rnic_page_size;
  for (std::uint64_t page = first; page <= last; ++page)
    mcache_.invalidate(hw::MetadataCache::Kind::kPte, page);
}

}  // namespace rdmasem::rnic
