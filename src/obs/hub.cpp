#include "obs/hub.hpp"

#include "util/env.hpp"

namespace rdmasem::obs {

Hub::Hub()
    : wr_posted(metrics.counter("verbs.wr.posted")),
      wr_completed(metrics.counter("verbs.wr.completed")),
      wr_failed(metrics.counter("verbs.wr.failed")),
      wr_flushed(metrics.counter("verbs.wr.flushed")),
      retry_exhausted(metrics.counter("verbs.wr.retry_exhausted")),
      retransmits(metrics.counter("verbs.qp.retransmits")),
      backoff_ps(metrics.counter("verbs.qp.backoff_ps")),
      rnr_naks(metrics.counter("verbs.qp.rnr_naks")),
      zero_copy_wrs(metrics.counter("verbs.payload.zero_copy")),
      payload_pool_hits(metrics.counter("verbs.payload.pool_hits")),
      payload_pool_misses(metrics.counter("verbs.payload.pool_misses")),
      srq_posted(metrics.counter("verbs.srq.posted")),
      srq_consumed(metrics.counter("verbs.srq.consumed")),
      srq_rnr(metrics.counter("verbs.srq.rnr")),
      dc_attaches(metrics.counter("verbs.dc.attaches")),
      broker_admitted(metrics.counter("svc.broker.admitted")),
      broker_rejected(metrics.counter("svc.broker.rejected")),
      broker_queued(metrics.counter("svc.broker.queued")),
      consolidate_staged(metrics.counter("remem.consolidate.staged")),
      consolidate_merges(metrics.counter("remem.consolidate.merges")),
      consolidate_flushes(metrics.counter("remem.consolidate.flushes")),
      proxy_hops(metrics.counter("remem.numa.proxy_hops")),
      proxy_direct(metrics.counter("remem.numa.direct")),
      cas_attempts(metrics.counter("remem.atomics.cas_attempts")),
      cas_failures(metrics.counter("remem.atomics.cas_failures")),
      opt_reads(metrics.counter("sync.opt.reads")),
      opt_retries(metrics.counter("sync.opt.retries")),
      lock_acquires(metrics.counter("sync.lock.acquires")),
      lock_handoffs(metrics.counter("sync.lock.handoffs")),
      lease_epoch_bumps(metrics.counter("sync.lease.epoch_bumps")),
      lease_fence_aborts(metrics.counter("sync.lease.fence_aborts")),
      txkv_commits(metrics.counter("txkv.commits")),
      txkv_aborts(metrics.counter("txkv.aborts")),
      mcache_stall_ps(metrics.counter("rnic.mcache.stall_ps")),
      wr_latency_ns(metrics.histogram("verbs.wr.latency_ns")),
      broker_wait_ns(metrics.histogram("svc.broker.wait_ns")) {
  tracer.set_enabled(util::env_bool("RDMASEM_TRACE", false));
  tracer.set_capacity(util::env_u64("RDMASEM_TRACE_MAX_SPANS", 1u << 22));
}

}  // namespace rdmasem::obs
