#include "obs/engine_profile.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace rdmasem::obs {

namespace {

double accounted_share(const sim::ShardProfile& r) {
  if (r.wall_ns == 0) return 0.0;
  const double named = static_cast<double>(r.dispatch_ns) +
                       static_cast<double>(r.barrier_park_ns) +
                       static_cast<double>(r.merge_ns);
  return std::min(1.0, named / static_cast<double>(r.wall_ns));
}

// Derived rates: how often the shard crossed an epoch barrier, how much
// work each crossing bought, and how wide the conservative epochs really
// were (virtual ps per epoch — the topology-aware lookahead matrix shows
// up here as effective widths above the global minimum). Serial rows
// report effective_lookahead_ps = 0: their single "epoch" is unbounded.
double epochs_per_sec(const sim::ShardProfile& r) {
  if (r.wall_ns == 0) return 0.0;
  return static_cast<double>(r.epochs) /
         (static_cast<double>(r.wall_ns) / 1e9);
}

double events_per_epoch(const sim::ShardProfile& r) {
  if (r.epochs == 0) return 0.0;
  return static_cast<double>(r.events) / static_cast<double>(r.epochs);
}

double effective_lookahead_ps(const sim::ShardProfile& r) {
  if (r.epochs == 0) return 0.0;
  return static_cast<double>(r.lookahead_ps) /
         static_cast<double>(r.epochs);
}

}  // namespace

void EngineProfileAccum::absorb(const sim::EngineProfile& p) {
  if (!p.enabled || p.runs == 0) return;
  Group& g = groups_[p.shards];
  g.runs += p.runs;
  if (g.rows.size() < p.shard.size()) g.rows.resize(p.shard.size());
  for (std::size_t i = 0; i < p.shard.size(); ++i) {
    const sim::ShardProfile& s = p.shard[i];
    sim::ShardProfile& r = g.rows[i];
    r.epochs += s.epochs;
    r.events += s.events;
    r.inline_grants += s.inline_grants;
    r.merged_events += s.merged_events;
    r.merge_ns += s.merge_ns;
    r.barrier_park_ns += s.barrier_park_ns;
    r.dispatch_ns += s.dispatch_ns;
    r.wall_ns += s.wall_ns;
    r.max_queue_depth = std::max(r.max_queue_depth, s.max_queue_depth);
    r.lookahead_ps += s.lookahead_ps;
    r.quiescent_terms += s.quiescent_terms;
    r.fused_epochs += s.fused_epochs;
    r.resplit_epochs += s.resplit_epochs;
    r.horizon_widening_ps += s.horizon_widening_ps;
  }
}

std::string EngineProfileAccum::render() const {
  if (groups_.empty()) return {};
  std::string out;
  for (const auto& [shards, g] : groups_) {
    util::Table t({"shard", "epochs", "events", "ev/epoch", "eff_la_ns",
                   "fused", "resplit", "quiesc", "widen_ns",
                   "inline", "merged", "dispatch_ms", "park_ms", "merge_ms",
                   "wall_ms", "accounted", "max_qdepth"});
    t.set_title("engine profile: shards=" + std::to_string(shards) +
                " (" + std::to_string(g.runs) + " runs)");
    for (std::size_t i = 0; i < g.rows.size(); ++i) {
      const sim::ShardProfile& r = g.rows[i];
      t.add_row({std::to_string(i), std::to_string(r.epochs),
                 std::to_string(r.events),
                 util::fmt(events_per_epoch(r), 1),
                 util::fmt(effective_lookahead_ps(r) / 1e3, 1),
                 std::to_string(r.fused_epochs),
                 std::to_string(r.resplit_epochs),
                 std::to_string(r.quiescent_terms),
                 util::fmt(static_cast<double>(r.horizon_widening_ps) / 1e3,
                           1),
                 std::to_string(r.inline_grants),
                 std::to_string(r.merged_events),
                 util::fmt(static_cast<double>(r.dispatch_ns) / 1e6, 2),
                 util::fmt(static_cast<double>(r.barrier_park_ns) / 1e6, 2),
                 util::fmt(static_cast<double>(r.merge_ns) / 1e6, 2),
                 util::fmt(static_cast<double>(r.wall_ns) / 1e6, 2),
                 util::fmt(accounted_share(r), 3),
                 std::to_string(r.max_queue_depth)});
    }
    if (!out.empty()) out += "\n";
    out += t.render();
  }
  return out;
}

std::string EngineProfileAccum::json() const {
  std::string out = "{\"schema\": \"rdmasem-engine-profile-v1\", \"groups\": [";
  bool first_g = true;
  for (const auto& [shards, g] : groups_) {
    out += first_g ? "\n" : ",\n";
    first_g = false;
    out += "  {\"shards\": " + std::to_string(shards);
    out += ", \"runs\": " + std::to_string(g.runs);
    out += ", \"rows\": [";
    bool first_r = true;
    for (std::size_t i = 0; i < g.rows.size(); ++i) {
      const sim::ShardProfile& r = g.rows[i];
      out += first_r ? "\n" : ",\n";
      first_r = false;
      out += "    {\"shard\": " + std::to_string(i);
      out += ", \"epochs\": " + std::to_string(r.epochs);
      out += ", \"events\": " + std::to_string(r.events);
      out += ", \"inline_grants\": " + std::to_string(r.inline_grants);
      out += ", \"merged_events\": " + std::to_string(r.merged_events);
      out += ", \"merge_ns\": " + std::to_string(r.merge_ns);
      out += ", \"barrier_park_ns\": " + std::to_string(r.barrier_park_ns);
      out += ", \"dispatch_ns\": " + std::to_string(r.dispatch_ns);
      out += ", \"wall_ns\": " + std::to_string(r.wall_ns);
      out += ", \"max_queue_depth\": " + std::to_string(r.max_queue_depth);
      out += ", \"lookahead_ps\": " + std::to_string(r.lookahead_ps);
      out += ", \"quiescent_terms\": " + std::to_string(r.quiescent_terms);
      out += ", \"fused_epochs\": " + std::to_string(r.fused_epochs);
      out += ", \"resplit_epochs\": " + std::to_string(r.resplit_epochs);
      out += ", \"horizon_widening_ps\": " +
             std::to_string(r.horizon_widening_ps);
      out += ", \"accounted_share\": " + json_num(accounted_share(r), 6);
      out += ", \"epochs_per_sec\": " + json_num(epochs_per_sec(r), 3);
      out += ", \"events_per_epoch\": " + json_num(events_per_epoch(r), 3);
      out += ", \"effective_lookahead_ps\": " +
             json_num(effective_lookahead_ps(r), 3);
      out += "}";
    }
    out += first_r ? "]}" : "\n  ]}";
  }
  out += first_g ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace rdmasem::obs
