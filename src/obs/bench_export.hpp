#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rdmasem::obs {

// One structured sweep point of a bench: the numbers a perf-trajectory
// tracker diffs across commits (as opposed to the human-readable table,
// which is mirrored verbatim).
struct BenchRow {
  std::string series;  // e.g. "write", "lock:remote+bo"
  std::string x;       // sweep coordinate label, e.g. "64B", "8"
  double mops = 0;
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  std::uint64_t errors = 0;
};

// BenchReport — accumulates everything one bench binary learned and
// writes BENCH_<name>.json: the paper-style table, structured sweep
// points, the aggregated per-op stage breakdown (when tracing ran) and
// an optional final metrics snapshot. The schema is validated by
// scripts/check_bench_json.py and documented in docs/OBSERVABILITY.md.
class BenchReport {
 public:
  static constexpr const char* kSchema = "rdmasem-bench-v1";

  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  void set_table(std::string title, std::vector<std::string> columns,
                 std::vector<std::vector<std::string>> rows);
  void add(BenchRow row) { points_.push_back(std::move(row)); }
  void absorb(const StageBreakdown& b) { stages_.merge(b); }
  const StageBreakdown& stages() const { return stages_; }
  std::size_t point_count() const { return points_.size(); }

  void set_trace_file(std::string path) { trace_file_ = std::move(path); }
  // Raw JSON object string (MetricsRegistry::json()) embedded verbatim.
  void set_metrics_json(std::string j) { metrics_json_ = std::move(j); }
  // Two-plane profiler sections, embedded verbatim (null when empty):
  // ResourceWaits::json(), CriticalPath::json(), EngineProfileAccum::json().
  void set_resource_waits_json(std::string j) {
    resource_waits_json_ = std::move(j);
  }
  void set_critical_path_json(std::string j) {
    critical_path_json_ = std::move(j);
  }
  void set_engine_profile_json(std::string j) {
    engine_profile_json_ = std::move(j);
  }
  // Sync-layer section (bench/ext_sync_scale): per-point abort rates and
  // the merged lock-wait histogram. Raw JSON object, embedded verbatim.
  void set_sync_json(std::string j) { sync_json_ = std::move(j); }

  std::string json() const;
  // Writes `<dir>/BENCH_<name>.json`; returns the path ("" on failure).
  std::string write(const std::string& dir) const;

 private:
  std::string name_ = "unnamed";
  std::string table_title_;
  std::vector<std::string> table_columns_;
  std::vector<std::vector<std::string>> table_rows_;
  std::vector<BenchRow> points_;
  StageBreakdown stages_;
  std::string trace_file_;
  std::string metrics_json_;
  std::string resource_waits_json_;
  std::string critical_path_json_;
  std::string engine_profile_json_;
  std::string sync_json_;
};

}  // namespace rdmasem::obs
