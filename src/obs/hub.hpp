#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdmasem::obs {

// Hub — the per-cluster observability root: one metrics registry plus
// one WR-lifecycle tracer. The Cluster owns a Hub and every layer above
// sim reaches it through cluster.obs().
//
// Hot-path counters are resolved once at construction and cached as
// references, so the instrumented fast paths (QP completion, retransmit,
// consolidation staging) never do a name lookup. Counters are always on:
// a 64-bit increment cannot perturb the virtual clock, so fault-free runs
// stay trace-identical with or without observers (the zero-cost
// contract). Tracing is off by default and toggled by RDMASEM_TRACE=1 or
// Tracer::set_enabled.
struct Hub {
  MetricsRegistry metrics;
  Tracer tracer;

  // verbs: WR lifecycle and failure handling
  Counter& wr_posted;
  Counter& wr_completed;
  Counter& wr_failed;          // any non-success completion
  Counter& wr_flushed;         // kWrFlushedError completions
  Counter& retry_exhausted;    // kRetryExceeded completions
  Counter& retransmits;        // RC transport retransmissions
  Counter& backoff_ps;         // total retransmit backoff (picoseconds)
  Counter& rnr_naks;           // SEND receiver-not-ready NAK rounds
  // verbs datapath: payload staging routes. Deterministic predicates of
  // the WR shape and tuning config (NOT freelist state, which depends on
  // thread placement), so the values are shard-count invariant:
  //   zero_copy_wrs     — payloads carried as a borrowed MR view
  //   payload_pool_hits — staged through an O(1) route (inline arm or
  //                       pooled size class)
  //   payload_pool_misses — staged via the heap (oversize or pool off)
  Counter& zero_copy_wrs;
  Counter& payload_pool_hits;
  Counter& payload_pool_misses;
  // verbs: shared receive queues (buffers posted to / consumed from an
  // SRQ, and SEND arrivals that found the SRQ dry — counted whether the
  // sender then retries or fails fast, so unlike rnr_naks it includes
  // the zero-retry give-up round) and DC transport attach events (each
  // is an mcache miss that additionally paid the dynamic-connect
  // handshake).
  Counter& srq_posted;
  Counter& srq_consumed;
  Counter& srq_rnr;
  Counter& dc_attaches;
  // svc: connection-broker admission control (docs/SERVICE.md).
  //   admitted — ops dispatched to a pooled QP (includes previously
  //              queued ops once they dispatch)
  //   rejected — ops bounced by the queue-or-reject policy
  //   queued   — ops that waited (throttle or full pool) before dispatch
  Counter& broker_admitted;
  Counter& broker_rejected;
  Counter& broker_queued;
  // remem: semantic-layer strategies
  Counter& consolidate_staged;
  Counter& consolidate_merges;   // writes absorbed into an already-dirty block
  Counter& consolidate_flushes;
  Counter& proxy_hops;           // §III-D inter-socket proxy handoffs
  Counter& proxy_direct;
  Counter& cas_attempts;
  Counter& cas_failures;         // lost CAS races = atomics contention
  // sync: one-sided synchronization layer (docs/SYNC.md)
  //   opt_reads / opt_retries — optimistic cell READs and validation
  //                             retries (mid-commit snapshots caught)
  //   lock_acquires / lock_handoffs — lock grants, and MCS direct
  //                                   handoffs received while queued
  //   lease_epoch_bumps / lease_fence_aborts — lease acquisitions (each
  //       bumps the epoch) and write bursts denied by the expiry-margin
  //       check or the guard-epoch probe
  Counter& opt_reads;
  Counter& opt_retries;
  Counter& lock_acquires;
  Counter& lock_handoffs;
  Counter& lease_epoch_bumps;
  Counter& lease_fence_aborts;
  // apps/txkv: read-validate-write commits and aborts (lock budget or
  // validation failures)
  Counter& txkv_commits;
  Counter& txkv_aborts;
  // rnic: total metadata-cache miss stall picoseconds charged to WRs
  // (requester + responder side). The per-resource wait tables cover
  // server queueing; mcache stalls are latency, not occupancy, so they
  // get their own counter.
  Counter& mcache_stall_ps;
  // per-WR post-to-CQE latency (nanoseconds)
  util::Log2Histogram& wr_latency_ns;
  // broker admission wait (queue + throttle), nanoseconds
  util::Log2Histogram& broker_wait_ns;

  Hub();
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;
};

}  // namespace rdmasem::obs
