#pragma once

#include <cstdint>
#include <string>

namespace rdmasem::obs {

// Deterministic JSON formatting helpers. Every exporter in the
// observability layer goes through these so that two identical runs
// produce byte-identical files (the trace-determinism contract): fixed
// precision, no locale, no pointer-keyed ordering anywhere.

// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
std::string json_escape(const std::string& s);

// `"s"` with escaping.
std::string json_str(const std::string& s);

// Fixed-precision decimal rendering of a double ("%.{prec}f", C locale).
std::string json_num(double v, int precision = 6);

// Picoseconds rendered as microseconds with exact 6-digit fraction
// (integer math — no floating-point rounding drift between runs).
std::string us_from_ps(std::uint64_t ps);

// Writes `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace rdmasem::obs
