#include "obs/attr.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace rdmasem::obs {

std::uint64_t ResourceWaits::Row::wait_quantile_ns(double q) const {
  if (hist_count == 0) return 0;
  const double clamped = (q > 0.0) ? std::min(q, 1.0) : 0.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(hist_count)));
  if (target == 0) target = 1;
  if (target > hist_count) target = hist_count;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    acc += buckets[i];
    if (acc >= target) return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }
  return ~std::uint64_t{0};
}

void ResourceWaits::add(const sim::Resource& r) {
  if (r.name().empty()) return;
  Row* row = nullptr;
  for (Row& existing : rows_)
    if (existing.name == r.name()) {
      row = &existing;
      break;
    }
  if (row == nullptr) {
    rows_.emplace_back();
    row = &rows_.back();
    row->name = r.name();
  }
  row->requests += r.requests();
  row->waited += r.waited_requests();
  row->wait_ps += r.wait_time();
  row->service_ps += r.busy_time();
  const util::Log2Histogram& h = r.wait_hist();
  for (std::size_t i = 0; i < util::Log2Histogram::kBuckets; ++i)
    row->buckets[i] += h.bucket(i);
  row->hist_count += h.count();
}

std::vector<ResourceWaits::Row> ResourceWaits::sorted() const {
  std::vector<Row> out = rows_;
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.wait_ps != b.wait_ps ? a.wait_ps > b.wait_ps : a.name < b.name;
  });
  return out;
}

std::string ResourceWaits::render(std::size_t top_k) const {
  if (rows_.empty()) return {};
  util::Table t({"resource", "grants", "waited", "wait_us", "service_us",
                 "wait_share", "p99_wait_ns"});
  t.set_title("per-resource queueing delay (bottleneck order)");
  const std::vector<Row> rows = sorted();
  std::size_t shown = 0;
  for (const Row& r : rows) {
    if (shown++ == top_k) break;
    const double attributed =
        static_cast<double>(r.wait_ps) + static_cast<double>(r.service_ps);
    t.add_row({r.name, std::to_string(r.requests), std::to_string(r.waited),
               util::fmt(sim::to_us(r.wait_ps), 3),
               util::fmt(sim::to_us(r.service_ps), 3),
               attributed > 0
                   ? util::fmt(static_cast<double>(r.wait_ps) / attributed, 3)
                   : "0",
               std::to_string(r.wait_quantile_ns(0.99))});
  }
  return t.render();
}

std::string ResourceWaits::json() const {
  std::string out = "[";
  bool first = true;
  for (const Row& r : sorted()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + json_str(r.name);
    out += ", \"requests\": " + std::to_string(r.requests);
    out += ", \"waited\": " + std::to_string(r.waited);
    out += ", \"wait_ps\": " + std::to_string(r.wait_ps);
    out += ", \"service_ps\": " + std::to_string(r.service_ps);
    out += ", \"p99_wait_ns\": " + std::to_string(r.wait_quantile_ns(0.99));
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  return out;
}

}  // namespace rdmasem::obs
