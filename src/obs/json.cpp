#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace rdmasem::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_num(double v, int precision) {
  if (!std::isfinite(v)) return "0";  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string us_from_ps(std::uint64_t ps) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%06llu",
                static_cast<unsigned long long>(ps / 1000000),
                static_cast<unsigned long long>(ps % 1000000));
  return buf;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace rdmasem::obs
