#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/lane.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::obs {

// Lifecycle stages of one work request through the simulated RDMA stack,
// in pipeline order (DESIGN.md §5). Spans carry a begin/end pair on the
// picosecond clock; kDoorbell and kCqe are instants (begin == end).
enum class Stage : std::uint8_t {
  kPost = 0,    // CPU: WQE prep + doorbell MMIO (QueuePair::post/execute)
  kDoorbell,    // instant: WQEs become visible to the RNIC
  kWqeFetch,    // RNIC DMA-reads the descriptor ring (skipped by BlueFlame)
  kTranslate,   // metadata-cache miss stalls (PTE / MR / QP fills)
  kExec,        // send-side execution-unit occupancy (§III-A throttling)
  kLocalDma,    // payload DMA between host memory and the local RNIC
  kWire,        // serialization + propagation + switch, incl. retransmits
  kRemoteRx,    // remote inbound packet processing
  kRemoteDram,  // remote-side translation, DMA and DRAM/atomic work
  kResponse,    // ACK / read-response / atomic-response return leg
  kCqe,         // instant: completion delivered to the CQ / waiter
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCqe) + 1;

const char* to_string(Stage s);

// One stamped interval of one WR's life. 48 bytes; a traced bench run
// produces O(ops * 8) of these.
struct Span {
  sim::Time begin = 0;
  sim::Time end = 0;
  std::uint64_t wr_id = 0;
  std::uint64_t qp_id = 0;
  std::uint64_t seq = 0;      // post-order on the QP (WorkRequest::trace_seq);
                              // 0 for spans stamped before the doorbell
  std::uint32_t machine = 0;  // requester machine = trace process id
  Stage stage = Stage::kPost;
  std::uint8_t opcode = 0;    // verbs::Opcode, kept raw to stay layer-clean
};

// One resource grant (or pure latency / wire leg) on one WR's critical
// path — the Plane-1 attribution record. [begin, grant) is queueing wait,
// [grant, end) is service; for latency/wire records begin == grant (no
// queueing, pure delay). Within one cluster the records of a WR form a
// contiguous partition of its doorbell->CQE window, which is what lets
// obs::CriticalPath reconcile attribution against traced end-to-end
// latency exactly, in picoseconds (docs/OBSERVABILITY.md).
struct AttrSpan {
  sim::Time begin = 0;   // request time (wait starts)
  sim::Time grant = 0;   // service start (== begin when wait == 0)
  sim::Time end = 0;     // service end
  std::uint64_t wr_id = 0;
  std::uint64_t qp_id = 0;    // cluster-unique posting QP
  std::uint64_t seq = 0;      // post-order on the QP; (qp_id, seq) keys the
                              // WR instance — wr_id alone may repeat (apps
                              // legitimately leave it 0 on every post)
  std::uint32_t machine = 0;  // requester machine = trace process id
  std::uint16_t res = 0;      // interned resource-name index (res_names())
  std::uint8_t opcode = 0;    // verbs::Opcode, raw
};

// Aggregated per-stage totals — the "where did the cycles go" table the
// paper's figures are explained with.
struct StageBreakdown {
  struct Row {
    std::uint64_t count = 0;
    sim::Duration total = 0;
  };
  std::array<Row, kStageCount> rows{};
  std::uint64_t spans = 0;

  void add(const Span& s);
  void merge(const StageBreakdown& other);
  // Sum of all interval-stage durations (instants contribute 0).
  sim::Duration grand_total() const;
  // Fixed-width table: stage, count, total_us, avg_ns, share. Empty
  // string when nothing was recorded.
  std::string render() const;
};

// Tracer — the per-cluster WR lifecycle recorder. Disabled by default;
// when disabled every stamp call is a single predicted branch and no
// memory is touched. Stamping never schedules events, never reads the
// RNG and never delays a coroutine, so enabling tracing cannot perturb
// the virtual-clock timeline (the zero-cost contract, asserted by
// obs_test.cpp and the determinism suites).
//
// Spans land in PER-LANE buffers indexed by sim::current_lane(), so
// worker shards record without synchronization and — because each lane's
// span sequence is deterministic whatever the shard count — every export
// (chrome_json, breakdown, drain order) is shard-count-invariant: lanes
// are concatenated in lane order and stable-sorted by begin time.
class Tracer {
 public:
  // Pre-interned attribution pseudo-resources: kResLatency covers fixed
  // pipeline latencies (doorbell ring, PCIe hops, checks) with no queueing;
  // kResWire covers network legs (serialization + propagation + switch,
  // incl. retransmit loops). Real Resources intern their names after these.
  static constexpr std::uint16_t kResLatency = 0;
  static constexpr std::uint16_t kResWire = 1;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  // Bounds memory PER LANE: spans beyond the cap are counted in dropped().
  void set_capacity(std::size_t max_spans) { capacity_ = max_spans; }
  // Pre-sizes the per-lane buffers (driver lane + one per machine). The
  // Cluster calls this at construction; a bare Tracer has lane 0 only.
  void set_lanes(std::uint32_t lanes) { lanes_.resize(lanes); }

  void span(Stage stage, sim::Time begin, sim::Time end, std::uint64_t wr_id,
            std::uint64_t qp_id, std::uint32_t machine, std::uint8_t opcode,
            std::uint64_t seq = 0) {
    if (!enabled_) return;
    const std::uint32_t lane = sim::current_lane();
    RDMASEM_CHECK_MSG(lane < lanes_.size(),
                      "tracer lane buffer missing (set_lanes)");
    LaneBuf& ln = lanes_[lane];
    if (ln.spans.size() >= capacity_) {
      ++ln.dropped;
      return;
    }
    ln.spans.push_back({begin, end, wr_id, qp_id, seq, machine, stage,
                        opcode});
  }
  void instant(Stage stage, sim::Time at, std::uint64_t wr_id,
               std::uint64_t qp_id, std::uint32_t machine,
               std::uint8_t opcode, std::uint64_t seq = 0) {
    span(stage, at, at, wr_id, qp_id, machine, opcode, seq);
  }

  // Interns a resource name into the attribution name table and returns
  // its index (the value Resource::set_attr_id stores). Linear scan —
  // called once per resource at cluster construction, never on a hot path.
  std::uint16_t intern_res(const std::string& name) {
    for (std::size_t i = 0; i < res_names_.size(); ++i)
      if (res_names_[i] == name) return static_cast<std::uint16_t>(i);
    res_names_.push_back(name);
    return static_cast<std::uint16_t>(res_names_.size() - 1);
  }
  const std::vector<std::string>& res_names() const { return res_names_; }

  // Records one attribution span (same zero-cost contract and per-lane
  // buffering as span()). `res` is an intern_res index or
  // kResLatency/kResWire.
  void attr(std::uint16_t res, sim::Time begin, sim::Time grant,
            sim::Time end, std::uint64_t wr_id, std::uint64_t qp_id,
            std::uint64_t seq, std::uint32_t machine, std::uint8_t opcode) {
    if (!enabled_) return;
    const std::uint32_t lane = sim::current_lane();
    RDMASEM_CHECK_MSG(lane < lanes_.size(),
                      "tracer lane buffer missing (set_lanes)");
    LaneBuf& ln = lanes_[lane];
    if (ln.attrs.size() >= capacity_) {
      ++ln.attr_dropped;
      return;
    }
    ln.attrs.push_back({begin, grant, end, wr_id, qp_id, seq, machine, res,
                        opcode});
  }

  // All recorded spans, merged deterministically across lanes.
  std::vector<Span> spans() const;
  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const auto& ln : lanes_) n += ln.dropped;
    return n;
  }
  // Attribution spans, merged with the same lane-concat + stable-sort
  // recipe as spans() — shard-count-invariant for the same reason.
  std::vector<AttrSpan> attr_spans() const;
  std::uint64_t attr_dropped() const {
    std::uint64_t n = 0;
    for (const auto& ln : lanes_) n += ln.attr_dropped;
    return n;
  }
  // Moves the recorded spans out (e.g. into a bench-wide sink) and
  // resets the buffers.
  std::vector<Span> drain();
  std::vector<AttrSpan> drain_attrs();
  void clear();

  StageBreakdown breakdown() const;
  // Chrome trace-event JSON ({"traceEvents":[...]}), loadable by
  // Perfetto (ui.perfetto.dev) and chrome://tracing. Byte-deterministic
  // for identical runs, whatever RDMASEM_SHARDS is.
  std::string chrome_json() const;

 private:
  // Cache-line aligned so two lanes appending concurrently do not share
  // a line through the vector headers.
  struct alignas(64) LaneBuf {
    std::vector<Span> spans;
    std::uint64_t dropped = 0;
    std::vector<AttrSpan> attrs;
    std::uint64_t attr_dropped = 0;
  };

  bool enabled_ = false;
  std::size_t capacity_ = 1u << 22;  // ~168 MB worst case; benches drain
  std::vector<LaneBuf> lanes_ = std::vector<LaneBuf>(1);
  std::vector<std::string> res_names_{"latency", "wire"};
};

// The same JSON for an externally accumulated span list (bench harness
// merges spans from many per-sweep-point clusters into one file).
std::string chrome_trace_json(const std::vector<Span>& spans,
                              const char* (*opcode_name)(std::uint8_t) =
                                  nullptr);

// Span JSON plus per-resource queueing-wait counter tracks: one Perfetto
// counter series ("wait:<res>", ph "C", pid 0) per resource that ever
// waited, sampling the CUMULATIVE wait (us) at each waiting grant. Pure
// latency/wire records and zero-wait grants emit nothing.
std::string chrome_trace_json(const std::vector<Span>& spans,
                              const std::vector<AttrSpan>& attrs,
                              const std::vector<std::string>& res_names,
                              const char* (*opcode_name)(std::uint8_t) =
                                  nullptr);

}  // namespace rdmasem::obs
