#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/lane.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::obs {

// Lifecycle stages of one work request through the simulated RDMA stack,
// in pipeline order (DESIGN.md §5). Spans carry a begin/end pair on the
// picosecond clock; kDoorbell and kCqe are instants (begin == end).
enum class Stage : std::uint8_t {
  kPost = 0,    // CPU: WQE prep + doorbell MMIO (QueuePair::post/execute)
  kDoorbell,    // instant: WQEs become visible to the RNIC
  kWqeFetch,    // RNIC DMA-reads the descriptor ring (skipped by BlueFlame)
  kTranslate,   // metadata-cache miss stalls (PTE / MR / QP fills)
  kExec,        // send-side execution-unit occupancy (§III-A throttling)
  kLocalDma,    // payload DMA between host memory and the local RNIC
  kWire,        // serialization + propagation + switch, incl. retransmits
  kRemoteRx,    // remote inbound packet processing
  kRemoteDram,  // remote-side translation, DMA and DRAM/atomic work
  kResponse,    // ACK / read-response / atomic-response return leg
  kCqe,         // instant: completion delivered to the CQ / waiter
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCqe) + 1;

const char* to_string(Stage s);

// One stamped interval of one WR's life. 40 bytes; a traced bench run
// produces O(ops * 8) of these.
struct Span {
  sim::Time begin = 0;
  sim::Time end = 0;
  std::uint64_t wr_id = 0;
  std::uint64_t qp_id = 0;
  std::uint32_t machine = 0;  // requester machine = trace process id
  Stage stage = Stage::kPost;
  std::uint8_t opcode = 0;    // verbs::Opcode, kept raw to stay layer-clean
};

// Aggregated per-stage totals — the "where did the cycles go" table the
// paper's figures are explained with.
struct StageBreakdown {
  struct Row {
    std::uint64_t count = 0;
    sim::Duration total = 0;
  };
  std::array<Row, kStageCount> rows{};
  std::uint64_t spans = 0;

  void add(const Span& s);
  void merge(const StageBreakdown& other);
  // Sum of all interval-stage durations (instants contribute 0).
  sim::Duration grand_total() const;
  // Fixed-width table: stage, count, total_us, avg_ns, share. Empty
  // string when nothing was recorded.
  std::string render() const;
};

// Tracer — the per-cluster WR lifecycle recorder. Disabled by default;
// when disabled every stamp call is a single predicted branch and no
// memory is touched. Stamping never schedules events, never reads the
// RNG and never delays a coroutine, so enabling tracing cannot perturb
// the virtual-clock timeline (the zero-cost contract, asserted by
// obs_test.cpp and the determinism suites).
//
// Spans land in PER-LANE buffers indexed by sim::current_lane(), so
// worker shards record without synchronization and — because each lane's
// span sequence is deterministic whatever the shard count — every export
// (chrome_json, breakdown, drain order) is shard-count-invariant: lanes
// are concatenated in lane order and stable-sorted by begin time.
class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  // Bounds memory PER LANE: spans beyond the cap are counted in dropped().
  void set_capacity(std::size_t max_spans) { capacity_ = max_spans; }
  // Pre-sizes the per-lane buffers (driver lane + one per machine). The
  // Cluster calls this at construction; a bare Tracer has lane 0 only.
  void set_lanes(std::uint32_t lanes) { lanes_.resize(lanes); }

  void span(Stage stage, sim::Time begin, sim::Time end, std::uint64_t wr_id,
            std::uint64_t qp_id, std::uint32_t machine, std::uint8_t opcode) {
    if (!enabled_) return;
    const std::uint32_t lane = sim::current_lane();
    RDMASEM_CHECK_MSG(lane < lanes_.size(),
                      "tracer lane buffer missing (set_lanes)");
    LaneBuf& ln = lanes_[lane];
    if (ln.spans.size() >= capacity_) {
      ++ln.dropped;
      return;
    }
    ln.spans.push_back({begin, end, wr_id, qp_id, machine, stage, opcode});
  }
  void instant(Stage stage, sim::Time at, std::uint64_t wr_id,
               std::uint64_t qp_id, std::uint32_t machine,
               std::uint8_t opcode) {
    span(stage, at, at, wr_id, qp_id, machine, opcode);
  }

  // All recorded spans, merged deterministically across lanes.
  std::vector<Span> spans() const;
  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const auto& ln : lanes_) n += ln.dropped;
    return n;
  }
  // Moves the recorded spans out (e.g. into a bench-wide sink) and
  // resets the buffers.
  std::vector<Span> drain();
  void clear();

  StageBreakdown breakdown() const;
  // Chrome trace-event JSON ({"traceEvents":[...]}), loadable by
  // Perfetto (ui.perfetto.dev) and chrome://tracing. Byte-deterministic
  // for identical runs, whatever RDMASEM_SHARDS is.
  std::string chrome_json() const;

 private:
  // Cache-line aligned so two lanes appending concurrently do not share
  // a line through the vector headers.
  struct alignas(64) LaneBuf {
    std::vector<Span> spans;
    std::uint64_t dropped = 0;
  };

  bool enabled_ = false;
  std::size_t capacity_ = 1u << 22;  // ~168 MB worst case; benches drain
  std::vector<LaneBuf> lanes_ = std::vector<LaneBuf>(1);
};

// The same JSON for an externally accumulated span list (bench harness
// merges spans from many per-sweep-point clusters into one file).
std::string chrome_trace_json(const std::vector<Span>& spans,
                              const char* (*opcode_name)(std::uint8_t) =
                                  nullptr);

}  // namespace rdmasem::obs
