#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace rdmasem::obs {

// EngineProfileAccum — the Plane-2 (host time) aggregate of
// sim::EngineProfile snapshots across a bench run. Rows are GROUPED BY
// SHARD COUNT: the engine selfbench runs the same workload at shards
// 1/2/4 in one process, and mixing their rows would average away exactly
// the cross-shard-cost differences the profile exists to expose. Within a
// group, per-shard rows accumulate across runs (shard i of run j adds
// into row i).
//
// accounted_share = (dispatch + barrier_park + merge) / wall for each
// row — how much of the shard's host wall time decomposes into named
// costs. docs/PERF.md reads the shard-4 group of this table to explain
// the parallel-efficiency gap.
class EngineProfileAccum {
 public:
  // Folds one drained snapshot. Disabled snapshots (RDMASEM_PROF unset)
  // are skipped, so the accumulator stays empty and the bench report
  // omits the section.
  void absorb(const sim::EngineProfile& p);

  bool empty() const { return groups_.empty(); }

  // Human table, one block per shard-count group; empty string when
  // nothing was absorbed.
  std::string render() const;
  // ENGINE_PROFILE.json / the "engine_profile" bench-report section
  // (schema "rdmasem-engine-profile-v1", scripts/check_bench_json.py).
  std::string json() const;

 private:
  struct Group {
    std::uint64_t runs = 0;
    std::vector<sim::ShardProfile> rows;  // index == shard id
  };
  std::map<std::uint32_t, Group> groups_;  // key: shard count
};

}  // namespace rdmasem::obs
