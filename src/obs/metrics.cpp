#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace rdmasem::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counter_ix_.find(name);
  if (it != counter_ix_.end()) return *it->second;
  counters_.emplace_back(name, std::make_unique<Counter>());
  Counter* c = counters_.back().second.get();
  counter_ix_.emplace(name, c);
  return *c;
}

void MetricsRegistry::gauge(const std::string& name,
                            std::function<double()> fn) {
  auto it = gauge_ix_.find(name);
  if (it != gauge_ix_.end()) {
    gauges_[it->second].second = std::move(fn);
    return;
  }
  gauge_ix_.emplace(name, gauges_.size());
  gauges_.emplace_back(name, std::move(fn));
}

util::Log2Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto it = hist_ix_.find(name);
  if (it != hist_ix_.end()) return *it->second;
  hists_.emplace_back(name, std::make_unique<util::Log2Histogram>());
  util::Log2Histogram* h = hists_.back().second.get();
  hist_ix_.emplace(name, h);
  return *h;
}

double MetricsRegistry::read(const std::string& name) const {
  if (auto it = counter_ix_.find(name); it != counter_ix_.end())
    return static_cast<double>(it->second->value());
  if (auto it = gauge_ix_.find(name); it != gauge_ix_.end())
    return gauges_[it->second].second ? gauges_[it->second].second() : 0.0;
  return 0.0;
}

bool MetricsRegistry::has(const std::string& name) const {
  return counter_ix_.count(name) > 0 || gauge_ix_.count(name) > 0 ||
         hist_ix_.count(name) > 0;
}

void MetricsRegistry::sample(sim::Time now) {
  Row r;
  r.at = now;
  r.values.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_)
    r.values.push_back(static_cast<double>(c->value()));
  for (const auto& [name, fn] : gauges_)
    r.values.push_back(fn ? fn() : 0.0);
  series_.push_back(std::move(r));
}

std::string MetricsRegistry::json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += json_str(counters_[i].first) + ": " +
           std::to_string(counters_[i].second->value());
  }
  out += counters_.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    const auto& fn = gauges_[i].second;
    out += json_str(gauges_[i].first) + ": " + json_num(fn ? fn() : 0.0);
  }
  out += gauges_.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    const util::Log2Histogram& h = *hists_[i].second;
    out += json_str(hists_[i].first) + ": {\"count\": " +
           std::to_string(h.count()) +
           ", \"p50_bound\": " + std::to_string(h.quantile_bound(0.50)) +
           ", \"p99_bound\": " + std::to_string(h.quantile_bound(0.99)) +
           ", \"p999_bound\": " + std::to_string(h.quantile_bound(0.999)) +
           "}";
  }
  out += hists_.empty() ? "},\n" : "\n  },\n";
  out += "  \"series\": {\n    \"columns\": [\"time_us\"";
  for (const auto& [name, c] : counters_) out += ", " + json_str(name);
  for (const auto& [name, fn] : gauges_) out += ", " + json_str(name);
  out += "],\n    \"rows\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    out += "[" + us_from_ps(series_[i].at);
    const std::size_t cols = counters_.size() + gauges_.size();
    for (std::size_t v = 0; v < cols; ++v)
      out += ", " + (v < series_[i].values.size()
                         ? json_num(series_[i].values[v])
                         : std::string("0"));
    out += "]";
  }
  out += series_.empty() ? "]\n  }\n}\n" : "\n    ]\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::csv() const {
  std::string out = "time_us";
  for (const auto& [name, c] : counters_) out += "," + name;
  for (const auto& [name, fn] : gauges_) out += "," + name;
  out += "\n";
  const std::size_t cols = counters_.size() + gauges_.size();
  for (const auto& row : series_) {
    out += us_from_ps(row.at);
    for (std::size_t v = 0; v < cols; ++v)
      out += "," + (v < row.values.size() ? json_num(row.values[v])
                                          : std::string("0"));
    out += "\n";
  }
  return out;
}

}  // namespace rdmasem::obs
