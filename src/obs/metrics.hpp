#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace rdmasem::obs {

// Counter — a monotonically increasing 64-bit event count. References
// handed out by MetricsRegistry::counter stay valid for the registry's
// lifetime, so hot paths cache them and pay one increment, never a map
// lookup. Incrementing a counter never touches the virtual clock, so
// instrumented and uninstrumented runs are trace-identical by
// construction. Increments are relaxed atomics: under RDMASEM_SHARDS > 1
// several worker lanes bump the same counter concurrently, and addition
// commutes, so the sampled totals are shard-count-invariant.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// MetricsRegistry — the cluster-wide catalog of typed metrics:
//   * counters: pushed by the layer that owns the event (QP retransmits,
//     consolidation merges, NUMA proxy hops, ...);
//   * gauges: pulled at sample time from live objects (resource
//     utilization, mcache hit rate, fabric byte totals);
//   * histograms: Log2Histogram distributions (per-WR latency).
//
// `sample(now)` appends one row of every counter and gauge to an
// in-memory time series keyed by the virtual clock; `json()` / `csv()`
// export current values plus the series deterministically (registration
// order, fixed-precision numbers).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter registered under `name`, creating it on first use.
  Counter& counter(const std::string& name);
  // Registers (or replaces) a polled gauge.
  void gauge(const std::string& name, std::function<double()> fn);
  // Returns the histogram registered under `name`, creating it on first use.
  util::Log2Histogram& histogram(const std::string& name);

  // Current value of a counter (exact) or gauge (polled). 0 if absent.
  double read(const std::string& name) const;
  bool has(const std::string& name) const;

  // Appends one time-series row: virtual time plus every counter and gauge
  // in registration order. Columns registered after the first sample get
  // zeros for earlier rows on export.
  void sample(sim::Time now);
  std::size_t sample_count() const { return series_.size(); }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return hists_.size(); }

  // {"counters":{...},"gauges":{...},"histograms":{...},"series":{...}}
  std::string json() const;
  // time_us,<metric>,<metric>,... one row per sample.
  std::string csv() const;

 private:
  // Insertion-ordered storage keeps exports deterministic; the maps are
  // lookup accelerators only.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<util::Log2Histogram>>>
      hists_;
  std::unordered_map<std::string, Counter*> counter_ix_;
  std::unordered_map<std::string, std::size_t> gauge_ix_;
  std::unordered_map<std::string, util::Log2Histogram*> hist_ix_;

  struct Row {
    sim::Time at;
    std::vector<double> values;  // counters then gauges, registration order
  };
  std::vector<Row> series_;
};

}  // namespace rdmasem::obs
