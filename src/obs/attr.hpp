#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/resource.hpp"
#include "util/stats.hpp"

namespace rdmasem::obs {

// ResourceWaits — the Plane-1 per-resource queueing-delay aggregate: for
// every named sim::Resource, how many grants it issued, how many of them
// waited, the total wait and service (busy) picoseconds, and the log2
// wait distribution. Folded from live Resources at absorb time (the
// bench harness walks Cluster::for_each_resource), merged BY NAME across
// clusters so sweep points over fresh rigs accumulate into one table.
//
// This is pure read-side accounting of numbers Resource::reserve_grant
// already maintains — folding it can never perturb the timeline.
class ResourceWaits {
 public:
  struct Row {
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t waited = 0;  // grants with non-zero queueing delay
    sim::Duration wait_ps = 0;
    sim::Duration service_ps = 0;  // busy time (service only, no wait)
    // Snapshot of the resource's Log2Histogram of non-zero waits (ns).
    // Copied by bucket — the histogram itself is non-copyable (atomics).
    std::array<std::uint64_t, util::Log2Histogram::kBuckets> buckets{};
    std::uint64_t hist_count = 0;

    // Upper bound (ns) of the bucket holding the q-quantile of non-zero
    // waits; 0 when nothing waited. Mirrors Log2Histogram::quantile_bound.
    std::uint64_t wait_quantile_ns(double q) const;
  };

  // Folds one resource's counters in (merging into an existing row of the
  // same name if present). Nameless resources are skipped.
  void add(const sim::Resource& r);

  bool empty() const { return rows_.empty(); }
  // Rows sorted by total wait descending, ties by name — the bottleneck
  // order every renderer uses.
  std::vector<Row> sorted() const;

  // Fixed-width bottleneck table (top `top_k` rows by wait); empty string
  // when nothing was recorded.
  std::string render(std::size_t top_k = 16) const;
  // JSON array of all rows in sorted order, integer ps fields — the
  // "resource_waits" bench-report section (scripts/check_bench_json.py).
  std::string json() const;

 private:
  std::vector<Row> rows_;
};

}  // namespace rdmasem::obs
