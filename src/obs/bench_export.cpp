#include "obs/bench_export.hpp"

#include "obs/json.hpp"

namespace rdmasem::obs {

void BenchReport::set_table(std::string title,
                            std::vector<std::string> columns,
                            std::vector<std::vector<std::string>> rows) {
  table_title_ = std::move(title);
  table_columns_ = std::move(columns);
  table_rows_ = std::move(rows);
}

std::string BenchReport::json() const {
  std::string out = "{\n";
  out += "  \"schema\": " + json_str(kSchema) + ",\n";
  out += "  \"bench\": " + json_str(name_) + ",\n";

  out += "  \"table\": {\n    \"title\": " + json_str(table_title_) +
         ",\n    \"columns\": [";
  for (std::size_t i = 0; i < table_columns_.size(); ++i)
    out += (i ? ", " : "") + json_str(table_columns_[i]);
  out += "],\n    \"rows\": [";
  for (std::size_t i = 0; i < table_rows_.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    out += "[";
    for (std::size_t c = 0; c < table_rows_[i].size(); ++c)
      out += (c ? ", " : "") + json_str(table_rows_[i][c]);
    out += "]";
  }
  out += table_rows_.empty() ? "]\n  },\n" : "\n    ]\n  },\n";

  out += "  \"points\": [";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const BenchRow& p = points_[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"series\": " + json_str(p.series) + ", \"x\": " + json_str(p.x) +
           ", \"mops\": " + json_num(p.mops, 4) +
           ", \"avg_us\": " + json_num(p.avg_us, 4) +
           ", \"p50_us\": " + json_num(p.p50_us, 4) +
           ", \"p99_us\": " + json_num(p.p99_us, 4) +
           ", \"p999_us\": " + json_num(p.p999_us, 4) +
           ", \"errors\": " + std::to_string(p.errors) + "}";
  }
  out += points_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"stages\": [";
  bool first = true;
  const double grand = static_cast<double>(stages_.grand_total());
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto& r = stages_.rows[i];
    if (r.count == 0) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    const double total = static_cast<double>(r.total);
    out += "{\"stage\": " + json_str(to_string(static_cast<Stage>(i))) +
           ", \"count\": " + std::to_string(r.count) +
           ", \"total_us\": " + json_num(sim::to_us(r.total), 3) +
           ", \"avg_ns\": " +
           json_num(total / static_cast<double>(r.count) / 1000.0, 1) +
           ", \"share\": " + json_num(grand > 0 ? total / grand : 0.0, 4) +
           "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"trace_file\": " +
         (trace_file_.empty() ? std::string("null") : json_str(trace_file_)) +
         ",\n";
  // Raw pre-rendered sections; trailing newlines trimmed so the embedding
  // stays well-formed whatever the sub-renderer's file conventions are.
  const auto raw = [](const std::string& j) {
    std::string s = j.empty() ? std::string("null") : j;
    while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
    return s;
  };
  out += "  \"resource_waits\": " + raw(resource_waits_json_) + ",\n";
  out += "  \"critical_path\": " + raw(critical_path_json_) + ",\n";
  out += "  \"engine_profile\": " + raw(engine_profile_json_) + ",\n";
  out += "  \"sync\": " + raw(sync_json_) + ",\n";
  out += "  \"metrics\": " +
         (metrics_json_.empty() ? std::string("null") : metrics_json_) + "\n";
  out += "}\n";
  return out;
}

std::string BenchReport::write(const std::string& dir) const {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/BENCH_" + name_ + ".json";
  return write_text_file(path, json()) ? path : std::string();
}

}  // namespace rdmasem::obs
