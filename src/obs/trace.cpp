#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace rdmasem::obs {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kPost: return "post";
    case Stage::kDoorbell: return "doorbell";
    case Stage::kWqeFetch: return "wqe_fetch";
    case Stage::kTranslate: return "translate";
    case Stage::kExec: return "exec";
    case Stage::kLocalDma: return "local_dma";
    case Stage::kWire: return "wire";
    case Stage::kRemoteRx: return "remote_rx";
    case Stage::kRemoteDram: return "remote_dram";
    case Stage::kResponse: return "response";
    case Stage::kCqe: return "cqe";
  }
  return "?";
}

namespace {
// Mirrors verbs::Opcode (obs sits below verbs in the layer stack, so the
// names are duplicated here; verbs_test pins the two enums together).
const char* default_opcode_name(std::uint8_t op) {
  switch (op) {
    case 0: return "WRITE";
    case 1: return "READ";
    case 2: return "CMP_SWAP";
    case 3: return "FETCH_ADD";
    case 4: return "SEND";
    case 5: return "RECV";
  }
  return "OP?";
}
}  // namespace

void StageBreakdown::add(const Span& s) {
  auto& row = rows[static_cast<std::size_t>(s.stage)];
  ++row.count;
  row.total += s.end - s.begin;
  ++spans;
}

void StageBreakdown::merge(const StageBreakdown& other) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    rows[i].count += other.rows[i].count;
    rows[i].total += other.rows[i].total;
  }
  spans += other.spans;
}

sim::Duration StageBreakdown::grand_total() const {
  sim::Duration t = 0;
  for (const auto& r : rows) t += r.total;
  return t;
}

std::string StageBreakdown::render() const {
  if (spans == 0) return {};
  util::Table t({"stage", "count", "total_us", "avg_ns", "share"});
  t.set_title("per-op stage breakdown (where the picoseconds went)");
  const double grand = static_cast<double>(grand_total());
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const Row& r = rows[i];
    if (r.count == 0) continue;
    const double total = static_cast<double>(r.total);
    t.add_row({to_string(static_cast<Stage>(i)), std::to_string(r.count),
               util::fmt(sim::to_us(r.total), 3),
               util::fmt(total / static_cast<double>(r.count) / 1000.0, 1),
               grand > 0 ? util::fmt(total / grand, 3) : "0"});
  }
  return t.render();
}

std::vector<Span> Tracer::spans() const {
  // Concatenate lanes in lane order, then stable-sort by begin time: both
  // steps are pure functions of the per-lane sequences, so the merged
  // order is identical for every shard count.
  std::vector<Span> out;
  std::size_t total = 0;
  for (const auto& ln : lanes_) total += ln.spans.size();
  out.reserve(total);
  for (const auto& ln : lanes_)
    out.insert(out.end(), ln.spans.begin(), ln.spans.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) { return a.begin < b.begin; });
  return out;
}

std::vector<AttrSpan> Tracer::attr_spans() const {
  std::vector<AttrSpan> out;
  std::size_t total = 0;
  for (const auto& ln : lanes_) total += ln.attrs.size();
  out.reserve(total);
  for (const auto& ln : lanes_)
    out.insert(out.end(), ln.attrs.begin(), ln.attrs.end());
  std::stable_sort(
      out.begin(), out.end(),
      [](const AttrSpan& a, const AttrSpan& b) { return a.begin < b.begin; });
  return out;
}

std::vector<Span> Tracer::drain() {
  std::vector<Span> out = spans();
  for (auto& ln : lanes_) ln.spans.clear();
  return out;
}

std::vector<AttrSpan> Tracer::drain_attrs() {
  std::vector<AttrSpan> out = attr_spans();
  for (auto& ln : lanes_) ln.attrs.clear();
  return out;
}

void Tracer::clear() {
  for (auto& ln : lanes_) {
    ln.spans.clear();
    ln.dropped = 0;
    ln.attrs.clear();
    ln.attr_dropped = 0;
  }
}

StageBreakdown Tracer::breakdown() const {
  StageBreakdown b;
  for (const auto& ln : lanes_)
    for (const Span& s : ln.spans) b.add(s);
  return b;
}

std::string Tracer::chrome_json() const { return chrome_trace_json(spans()); }

std::string chrome_trace_json(const std::vector<Span>& spans,
                              const char* (*opcode_name)(std::uint8_t)) {
  if (opcode_name == nullptr) opcode_name = default_opcode_name;
  std::string out =
      "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (const Span& s : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"";
    out += to_string(s.stage);
    out += "\", \"cat\": \"";
    out += opcode_name(s.opcode);
    if (s.begin == s.end) {
      out += "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": ";
      out += us_from_ps(s.begin);
    } else {
      out += "\", \"ph\": \"X\", \"ts\": ";
      out += us_from_ps(s.begin);
      out += ", \"dur\": ";
      out += us_from_ps(s.end - s.begin);
    }
    out += ", \"pid\": " + std::to_string(s.machine);
    out += ", \"tid\": " + std::to_string(s.qp_id);
    out += ", \"args\": {\"wr\": " + std::to_string(s.wr_id) + "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string chrome_trace_json(const std::vector<Span>& spans,
                              const std::vector<AttrSpan>& attrs,
                              const std::vector<std::string>& res_names,
                              const char* (*opcode_name)(std::uint8_t)) {
  std::string out = chrome_trace_json(spans, opcode_name);
  // Cumulative per-resource wait, sampled at every waiting grant. attrs
  // arrive begin-sorted, so each series is monotone in both ts and value.
  std::vector<std::uint64_t> cum(res_names.size(), 0);
  std::string counters;
  for (const AttrSpan& a : attrs) {
    if (a.grant == a.begin) continue;  // no queueing — nothing to plot
    if (a.res >= cum.size()) continue;  // unknown id: skip, never misattribute
    cum[a.res] += a.grant - a.begin;
    counters += ",\n{\"name\": \"wait:";
    counters += json_escape(res_names[a.res]);
    counters += "\", \"ph\": \"C\", \"ts\": ";
    counters += us_from_ps(a.grant);
    counters += ", \"pid\": 0, \"args\": {\"wait_us\": ";
    counters += us_from_ps(cum[a.res]);
    counters += "}}";
  }
  if (!counters.empty()) {
    // Splice the counter events before the closing "\n]}\n". With no span
    // events the array is empty and the first counter must not lead with
    // a comma.
    out.resize(out.size() - 4);
    out += spans.empty() ? counters.substr(1) : counters;
    out += "\n]}\n";
  }
  return out;
}

}  // namespace rdmasem::obs
