#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace rdmasem::obs {

namespace {

struct WrState {
  sim::Time doorbell = 0;
  sim::Time cqe = 0;
  bool has_doorbell = false;
  bool has_cqe = false;
  std::vector<AttrSpan> attrs;
};

}  // namespace

void CriticalPath::fold(const std::vector<Span>& spans,
                        const std::vector<AttrSpan>& attrs,
                        const std::vector<std::string>& res_names) {
  // Group by (qp_id, seq, wr_id): QP ids are cluster-unique and seq is the
  // QP's post-order counter, so the key identifies one WR INSTANCE even
  // when an app posts every WR with wr_id 0 (legal — wr_id is app-owned;
  // the RPC client/server reply paths do exactly that). wr_id rides along
  // for synthetic spans recorded without a post (seq 0). std::map keeps
  // the fold deterministic.
  using WrKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  std::map<WrKey, WrState> wrs;
  for (const Span& s : spans) {
    stages_.add(s);
    if (s.stage == Stage::kDoorbell) {
      WrState& w = wrs[{s.qp_id, s.seq, s.wr_id}];
      w.doorbell = s.begin;
      w.has_doorbell = true;
    } else if (s.stage == Stage::kCqe) {
      WrState& w = wrs[{s.qp_id, s.seq, s.wr_id}];
      w.cqe = s.begin;
      w.has_cqe = true;
    }
  }
  for (const AttrSpan& a : attrs)
    wrs[{a.qp_id, a.seq, a.wr_id}].attrs.push_back(a);

  // Per-cluster name-id -> merged-row index (rows merge BY NAME so sweep
  // points over fresh clusters, each with its own id table, accumulate).
  std::vector<std::size_t> row_of(res_names.size());
  for (std::size_t id = 0; id < res_names.size(); ++id) {
    std::size_t idx = 0;
    for (; idx < rows_.size(); ++idx)
      if (rows_[idx].name == res_names[id]) break;
    if (idx == rows_.size()) {
      rows_.emplace_back();
      rows_.back().name = res_names[id];
    }
    row_of[id] = idx;
  }

  for (auto& [key, w] : wrs) {
    if (!w.has_cqe) continue;  // still in flight — nothing to reconcile
    ++closed_wrs_;
    std::stable_sort(w.attrs.begin(), w.attrs.end(),
                     [](const AttrSpan& a, const AttrSpan& b) {
                       return a.begin != b.begin ? a.begin < b.begin
                                                 : a.end < b.end;
                     });
    const sim::Time start = w.has_doorbell ? w.doorbell
                            : !w.attrs.empty() ? w.attrs.front().begin
                                               : w.cqe;
    e2e_ps_ += w.cqe - start;
    // Chain check: the records partition [start, cqe] with no gap and no
    // overlap. An empty window (flushed WR) reconciles trivially.
    bool ok = true;
    sim::Time cursor = start;
    for (const AttrSpan& a : w.attrs) {
      if (a.begin != cursor || a.grant < a.begin || a.end < a.grant) {
        ok = false;
        break;
      }
      cursor = a.end;
    }
    if (ok && cursor != w.cqe) ok = false;
    if (ok) {
      ++reconciled_wrs_;
    } else {
      ++mismatched_wrs_;
    }
    for (const AttrSpan& a : w.attrs) {
      attr_ps_ += a.end - a.begin;
      if (a.res >= row_of.size()) continue;
      Row& r = rows_[row_of[a.res]];
      ++r.grants;
      r.wait_ps += a.grant - a.begin;
      r.service_ps += a.end - a.grant;
    }
  }
}

std::vector<CriticalPath::Row> CriticalPath::sorted() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_)
    if (r.grants > 0) out.push_back(r);
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    const sim::Duration ta = a.wait_ps + a.service_ps;
    const sim::Duration tb = b.wait_ps + b.service_ps;
    return ta != tb ? ta > tb : a.name < b.name;
  });
  return out;
}

double CriticalPath::whatif_gain(const Row& r, double k) const {
  if (e2e_ps_ == 0 || k <= 1.0) return 0.0;
  const double saved = static_cast<double>(r.wait_ps + r.service_ps) *
                       (1.0 - 1.0 / k);
  return std::min(1.0, saved / static_cast<double>(e2e_ps_));
}

std::string CriticalPath::render(std::size_t top_k) const {
  if (closed_wrs_ == 0) return {};
  util::Table t({"resource", "grants", "wait_us", "service_us", "path_share",
                 "whatif_2x", "whatif_inf"});
  t.set_title("critical-path decomposition (" + std::to_string(closed_wrs_) +
              " WRs, " + std::to_string(reconciled_wrs_) + " reconciled, " +
              std::to_string(mismatched_wrs_) + " mismatched)");
  const double e2e = static_cast<double>(e2e_ps_);
  std::size_t shown = 0;
  for (const Row& r : sorted()) {
    if (shown++ == top_k) break;
    const double total = static_cast<double>(r.wait_ps + r.service_ps);
    t.add_row({r.name, std::to_string(r.grants),
               util::fmt(sim::to_us(r.wait_ps), 3),
               util::fmt(sim::to_us(r.service_ps), 3),
               e2e > 0 ? util::fmt(total / e2e, 3) : "0",
               util::fmt(whatif_gain(r, 2.0), 3),
               util::fmt(whatif_gain(r, 1e18), 3)});
  }
  return t.render();
}

std::string CriticalPath::json() const {
  std::string out = "{";
  out += "\"closed_wrs\": " + std::to_string(closed_wrs_);
  out += ", \"reconciled_wrs\": " + std::to_string(reconciled_wrs_);
  out += ", \"mismatched_wrs\": " + std::to_string(mismatched_wrs_);
  out += ", \"e2e_ps\": " + std::to_string(e2e_ps_);
  out += ", \"attr_ps\": " + std::to_string(attr_ps_);
  out += ", \"resources\": [";
  bool first = true;
  for (const Row& r : sorted()) {
    out += first ? "" : ", ";
    first = false;
    out += "{\"name\": " + json_str(r.name);
    out += ", \"grants\": " + std::to_string(r.grants);
    out += ", \"wait_ps\": " + std::to_string(r.wait_ps);
    out += ", \"service_ps\": " + std::to_string(r.service_ps);
    out += ", \"whatif_2x\": " + json_num(whatif_gain(r, 2.0), 6);
    out += ", \"whatif_inf\": " + json_num(whatif_gain(r, 1e18), 6);
    out += "}";
  }
  out += "], \"stages\": [";
  first = true;
  const double e2e = static_cast<double>(e2e_ps_);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageBreakdown::Row& r = stages_.rows[i];
    if (r.count == 0) continue;
    out += first ? "" : ", ";
    first = false;
    const double saved = static_cast<double>(r.total) * 0.5;  // 2x faster
    out += "{\"stage\": " + json_str(to_string(static_cast<Stage>(i)));
    out += ", \"count\": " + std::to_string(r.count);
    out += ", \"total_ps\": " + std::to_string(r.total);
    out += ", \"whatif_2x\": " +
           json_num(e2e > 0 ? std::min(1.0, saved / e2e) : 0.0, 6);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace rdmasem::obs
