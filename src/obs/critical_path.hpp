#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rdmasem::obs {

// CriticalPath — the Plane-1 per-WR critical-path decomposition. Folds a
// cluster's Tracer spans + attribution records into:
//
//   * a per-resource table of (grants, wait, service) picoseconds on the
//     WR critical path, merged BY NAME across clusters;
//   * the classic per-stage breakdown (identical to Tracer::breakdown()
//     over the same spans — pinned by tests/obs_profiler_test.cpp);
//   * reconciliation: for every completed WR the attribution records must
//     form a CONTIGUOUS partition of its doorbell->CQE window, so
//     attr_ps == e2e_ps holds exactly, in integer picoseconds, when every
//     WR reconciles (mismatched_wrs counts the ones that do not);
//   * CoZ-style what-if estimates: the predicted end-to-end gain if
//     resource/stage X were k× faster, computed as
//     sum_X(wait+service) * (1 - 1/k) / sum(e2e). This treats the WR
//     pipeline as a serial chain — an UPPER BOUND on the real gain, since
//     overlapping WRs would re-queue behind the shrunk stage.
//
// WRs are keyed (qp_id, seq, wr_id) — QP ids are cluster-unique and seq
// is the posting QP's post-order counter (WorkRequest::trace_seq), so the
// key names one WR INSTANCE even when an app posts every WR with wr_id 0
// (legal; the RPC reply path does). fold() is called once per cluster
// (the bench absorb path), aggregates merge by name after that. Batch-posted WRs carry no doorbell instant: their
// window starts at the first attribution record instead. Flushed WRs
// complete with an empty window (doorbell == cqe, no records) and
// reconcile trivially.
class CriticalPath {
 public:
  struct Row {
    std::string name;
    std::uint64_t grants = 0;
    sim::Duration wait_ps = 0;
    sim::Duration service_ps = 0;
  };

  // Folds one cluster's drained spans + attribution records. `res_names`
  // is that cluster's Tracer name table (ids are cluster-local).
  void fold(const std::vector<Span>& spans,
            const std::vector<AttrSpan>& attrs,
            const std::vector<std::string>& res_names);

  bool empty() const { return closed_wrs_ == 0 && rows_.empty(); }
  std::uint64_t closed_wrs() const { return closed_wrs_; }
  std::uint64_t reconciled_wrs() const { return reconciled_wrs_; }
  std::uint64_t mismatched_wrs() const { return mismatched_wrs_; }
  // Sum of doorbell->CQE windows over completed WRs / sum of attribution
  // record durations. Equal iff every WR reconciled.
  sim::Duration e2e_ps() const { return e2e_ps_; }
  sim::Duration attr_ps() const { return attr_ps_; }
  // Per-resource rows sorted by wait+service descending, ties by name.
  std::vector<Row> sorted() const;
  const StageBreakdown& stages() const { return stages_; }

  // Predicted end-to-end gain (0..1) if the named row were k× faster
  // (serial-chain upper bound; see class comment).
  double whatif_gain(const Row& r, double k) const;

  // Bottleneck table + what-if columns; empty string when nothing folded.
  std::string render(std::size_t top_k = 12) const;
  // The "critical_path" bench-report section: integer ps fields so
  // scripts/check_bench_json.py can assert reconciliation exactly.
  std::string json() const;

 private:
  std::vector<Row> rows_;
  StageBreakdown stages_;
  std::uint64_t closed_wrs_ = 0;
  std::uint64_t reconciled_wrs_ = 0;
  std::uint64_t mismatched_wrs_ = 0;
  sim::Duration e2e_ps_ = 0;
  sim::Duration attr_ps_ = 0;
};

}  // namespace rdmasem::obs
