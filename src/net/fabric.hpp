#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace rdmasem::net {

using MachineId = std::uint32_t;
using PortId = std::uint32_t;

// Fabric — the InfiniBand network: every (machine, port) has a full-duplex
// link to one central switch (the paper's 18-port InfiniScale-IV).
//
// A message transit models:
//   tx serialization  (sender link, FIFO resource at link_gbps)
//   propagation + one switch hop (pure latency)
//   rx serialization  (receiver link resource)
//
// Bandwidth contention on a host link therefore emerges when several QPs
// mapped to the same port transmit simultaneously.
//
// Under RDMASEM_SHARDS > 1, transit is also where execution migrates
// between lanes: tx serialization runs on the sender machine's lane, the
// propagation+switch hop is a sim::hop() onto the receiver's lane, and rx
// serialization runs there. The hop latency (net_propagation +
// net_switch_hop) is the engine's lookahead, so every cross-shard event
// lands at least one epoch ahead — the conservative-sync guarantee.
class Fabric {
 public:
  Fabric(sim::Engine& engine, const hw::ModelParams& params,
         std::uint32_t machines, std::uint32_t ports_per_machine);

  // Moves `payload_bytes` (plus header overhead) from (src,sport) to
  // (dst,dport). Resumes the caller when the last byte lands at the
  // receiver's link. Loopback (same machine+port) is free of wire costs
  // but still pays switch-less local turnaround.
  sim::TaskT<void> transit(MachineId src, PortId sport, MachineId dst,
                           PortId dport, std::size_t payload_bytes);

  // Loss decision for a message that just transited src -> dst. Consults
  // the per-link fault state first (loss bursts, dead links, partitions,
  // crashed endpoints), then the global `net_loss_prob` calibration knob.
  // Draws the calling lane's RNG only when the effective probability is
  // positive, so lossless runs stay trace-identical to the pre-fault
  // simulator. Must be called on the receiver's lane (qp.cpp does).
  bool dropped(MachineId src, PortId sport, MachineId dst, PortId dport);

  // Attaches the cluster's fault domain; nullptr = lossless-lab behavior.
  // Each lane consults only its own replica (FaultDomain::current).
  void set_faults(const fault::FaultDomain* f) { faults_ = f; }
  const fault::FaultDomain* faults() const { return faults_; }

  sim::Resource& tx_link(MachineId m, PortId p) { return *tx_[index(m, p)]; }
  sim::Resource& rx_link(MachineId m, PortId p) { return *rx_[index(m, p)]; }

  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  // Drops attributed to the (m, p) -> switch uplink (the sender side of
  // the lost transit). Sums to drops() across all links.
  std::uint64_t link_drops(MachineId m, PortId p) const {
    return link_drops_[index(m, p)].load(std::memory_order_relaxed);
  }

 private:
  std::size_t index(MachineId m, PortId p) const {
    return static_cast<std::size_t>(m) * ports_ + p;
  }

  sim::Engine& engine_;
  const hw::ModelParams& p_;
  std::uint32_t ports_;
  std::vector<std::unique_ptr<sim::Resource>> tx_;
  std::vector<std::unique_ptr<sim::Resource>> rx_;
  const fault::FaultDomain* faults_ = nullptr;
  // Relaxed atomics: every lane's transits bump these; totals commute, so
  // post-run reads are shard-count-invariant.
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::vector<std::atomic<std::uint64_t>> link_drops_;  // indexed like tx_
};

}  // namespace rdmasem::net
