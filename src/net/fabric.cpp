#include "net/fabric.hpp"

namespace rdmasem::net {

Fabric::Fabric(sim::Engine& engine, const hw::ModelParams& params,
               std::uint32_t machines, std::uint32_t ports_per_machine)
    : engine_(engine), p_(params), ports_(ports_per_machine) {
  const std::size_t n = static_cast<std::size_t>(machines) * ports_;
  tx_.reserve(n);
  rx_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tx_.push_back(std::make_unique<sim::Resource>(engine_, 1, "link_tx"));
    rx_.push_back(std::make_unique<sim::Resource>(engine_, 1, "link_rx"));
  }
  link_drops_ = std::vector<std::atomic<std::uint64_t>>(n);
}

sim::TaskT<void> Fabric::transit(MachineId src, PortId sport, MachineId dst,
                                 PortId dport, std::size_t payload_bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  const sim::Duration wire = p_.wire_time(payload_bytes);
  if (src == dst && sport == dport) {
    // RNIC-internal loopback: no switch, no cable; just the port turnaround.
    co_await sim::delay(engine_, p_.net_switch_hop);
    co_return;
  }
  sim::Duration hop = p_.hop_latency(src, dst);
  // Congestion / rerouting faults show up as extra propagation latency;
  // read on the sender's lane, before the hop.
  if (faults_ != nullptr && faults_->current().active())
    hop += faults_->current().extra_latency(src, sport, dst, dport);
  co_await tx_link(src, sport).use(wire);
  // Propagation + switching carries execution from the sender's lane to
  // the receiver's. hop >= hop_latency(src, dst) >= the engine's per-pair
  // lookahead for the two lanes, which is what makes the cross-shard
  // landing legal (the lookahead matrix is derived from the same
  // hop_latency function). On a bare engine (no cluster lanes) the
  // destination lane collapses to the current one and this is a plain
  // delay.
  const std::uint32_t dst_lane = dst + 1 < engine_.lanes() ? dst + 1 : 0;
  co_await sim::hop(engine_, dst_lane, hop);
  co_await rx_link(dst, dport).use(wire);
}

bool Fabric::dropped(MachineId src, PortId sport, MachineId dst, PortId dport) {
  double prob = p_.net_loss_prob;
  if (faults_ != nullptr && faults_->current().active()) {
    const fault::FaultState& st = faults_->current();
    if (st.blocked(src, sport, dst, dport)) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      link_drops_[index(src, sport)].fetch_add(1, std::memory_order_relaxed);
      return true;  // no path: crashed node, dead link or partition
    }
    const double burst = st.loss_override(src, sport, dst, dport);
    if (burst >= 0.0) prob = burst;
  }
  if (prob <= 0.0) return false;
  const bool lost = engine_.rng().chance(prob);
  if (lost) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    link_drops_[index(src, sport)].fetch_add(1, std::memory_order_relaxed);
  }
  return lost;
}

}  // namespace rdmasem::net
