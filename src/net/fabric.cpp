#include "net/fabric.hpp"

namespace rdmasem::net {

Fabric::Fabric(sim::Engine& engine, const hw::ModelParams& params,
               std::uint32_t machines, std::uint32_t ports_per_machine)
    : engine_(engine), p_(params), ports_(ports_per_machine) {
  const std::size_t n = static_cast<std::size_t>(machines) * ports_;
  tx_.reserve(n);
  rx_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tx_.push_back(std::make_unique<sim::Resource>(engine_, 1, "link_tx"));
    rx_.push_back(std::make_unique<sim::Resource>(engine_, 1, "link_rx"));
  }
  link_drops_.assign(n, 0);
}

sim::TaskT<void> Fabric::transit(MachineId src, PortId sport, MachineId dst,
                                 PortId dport, std::size_t payload_bytes) {
  ++messages_;
  bytes_ += payload_bytes;
  const sim::Duration wire = p_.wire_time(payload_bytes);
  if (src == dst && sport == dport) {
    // RNIC-internal loopback: no switch, no cable; just the port turnaround.
    co_await sim::delay(engine_, p_.net_switch_hop);
    co_return;
  }
  sim::Duration hop = p_.net_propagation + p_.net_switch_hop;
  // Congestion / rerouting faults show up as extra propagation latency.
  if (faults_ != nullptr && faults_->active())
    hop += faults_->extra_latency(src, sport, dst, dport);
  co_await tx_link(src, sport).use(wire);
  co_await sim::delay(engine_, hop);
  co_await rx_link(dst, dport).use(wire);
}

bool Fabric::dropped(MachineId src, PortId sport, MachineId dst, PortId dport) {
  double prob = p_.net_loss_prob;
  if (faults_ != nullptr && faults_->active()) {
    if (faults_->blocked(src, sport, dst, dport)) {
      ++drops_;
      ++link_drops_[index(src, sport)];
      return true;  // no path: crashed node, dead link or partition
    }
    const double burst = faults_->loss_override(src, sport, dst, dport);
    if (burst >= 0.0) prob = burst;
  }
  if (prob <= 0.0) return false;
  const bool lost = engine_.rng().chance(prob);
  if (lost) {
    ++drops_;
    ++link_drops_[index(src, sport)];
  }
  return lost;
}

}  // namespace rdmasem::net
