#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

// One scheduled engine event. `handle` set => coroutine resumption;
// otherwise `fn` is invoked. (at, seq) is the total dispatch order:
// earlier time first, FIFO (schedule order) on ties — exactly the seed
// engine's binary-heap order, preserved bit-for-bit by EventQueue.
struct Event {
  Time at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> handle{};
  InlineFn fn;
};

inline bool event_before(const Event& a, const Event& b) {
  return a.at != b.at ? a.at < b.at : a.seq < b.seq;
}
// std::*_heap comparator for a min-heap on (at, seq).
inline bool event_after(const Event& a, const Event& b) {
  return event_before(b, a);
}

// EventQueue — a two-level calendar queue tuned for discrete-event
// simulation of RNIC/fabric traffic, replacing the seed's global binary
// heap (O(log n) per op, one std::function heap allocation per event).
//
// Three tiers, by distance from the dispatch cursor:
//
//   * immediates: events scheduled AT the current dispatch timestamp
//     (yield(), channel wake-ups, resume_at(now)). A plain FIFO ring —
//     O(1) push/pop, no comparisons. The FIFO order IS (at, seq) order
//     because every entry shares `at == now` and arrives in seq order.
//   * near ring: kBuckets time buckets of kSlotWidth each (~2 us horizon
//     total), covering the short-horizon delays that dominate the verb
//     pipeline (EU/DMA/wire/DRAM service times). Future buckets are
//     unsorted vectors (O(1) append); a bucket is heapified once, when
//     the cursor reaches it, so dispatch costs O(log bucket_size) —
//     effectively O(1) amortized since buckets hold few events.
//   * overflow: a (at, seq) min-heap for events past the ring horizon
//     (retransmit timers, fault windows, app-level timeouts). When the
//     ring drains, the window re-anchors at the overflow minimum and one
//     horizon's worth of events migrates into the ring (each event
//     migrates at most once).
//
// Determinism: pop() always returns the global (at, seq) minimum across
// the three tiers, so dispatch order is identical to the seed heap
// (asserted by the fuzz differential in tests/fuzz_test.cpp).
//
// Storage is pooled by construction: bucket vectors, the immediate ring
// and the overflow heap all keep their capacity across cycles, so a
// warmed-up queue schedules and dispatches without allocating.
class EventQueue {
 public:
  // 256 buckets x 8.192 ns = ~2.1 us near horizon.
  static constexpr std::uint32_t kBucketBits = 8;
  static constexpr std::uint32_t kBuckets = 1u << kBucketBits;
  static constexpr std::uint32_t kIndexMask = kBuckets - 1;
  static constexpr std::uint32_t kSlotShift = 13;  // 2^13 ps per bucket

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // `now` is the engine clock (time of the last dispatched event). `ev.at`
  // must already be clamped to >= now; `ev.seq` must be strictly
  // increasing across pushes.
  void push(Time now, Event&& ev) {
    ++size_;
    if (ev.at == now) {
      imm_.push_back(std::move(ev));
      return;
    }
    const std::uint64_t slot = ev.at >> kSlotShift;
    if (slot >= cur_slot_ && slot - cur_slot_ < kBuckets) {
      auto& b = buckets_[slot & kIndexMask];
      mark_occupied(static_cast<std::uint32_t>(slot & kIndexMask));
      ++ring_count_;
      b.push_back(std::move(ev));
      // The cursor bucket is kept in heap form (pop reads its minimum).
      if (slot == cur_slot_)
        std::push_heap(b.begin(), b.end(), event_after);
      return;
    }
    // Past the horizon — or (rarely) behind the cursor, which happens
    // only after run_until() parked the clock below the next event: the
    // overflow heap handles both, and pop() considers its top directly.
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), event_after);
  }

  // Removes and returns the (at, seq)-minimum event. Requires !empty().
  Event pop(Time now) {
    RDMASEM_CHECK_MSG(size_ > 0, "pop on empty event queue");
    --size_;
    prepare(now);
    const Event* ring_top =
        ring_count_ > 0 && !buckets_[cur_index()].empty()
            ? &buckets_[cur_index()].front()
            : nullptr;
    const Event* ovf_top = overflow_.empty() ? nullptr : &overflow_.front();
    const bool ring_wins =
        ring_top != nullptr &&
        (ovf_top == nullptr || event_before(*ring_top, *ovf_top));
    const Event* best = ring_wins ? ring_top : ovf_top;
    // Immediates (at == now) lose ties against bucket/overflow events at
    // the same timestamp: those were scheduled earlier (smaller seq).
    if (imm_head_ < imm_.size() && (best == nullptr || best->at != now))
      return pop_immediate();
    return ring_wins ? pop_ring() : pop_overflow();
  }

  // Timestamp of the next event in dispatch order. Requires !empty().
  Time next_time(Time now) {
    RDMASEM_CHECK_MSG(size_ > 0, "next_time on empty event queue");
    if (imm_head_ < imm_.size()) return now;  // at == now by construction
    prepare(now);
    const Event* ring_top =
        ring_count_ > 0 && !buckets_[cur_index()].empty()
            ? &buckets_[cur_index()].front()
            : nullptr;
    const Event* ovf_top = overflow_.empty() ? nullptr : &overflow_.front();
    if (ring_top != nullptr &&
        (ovf_top == nullptr || event_before(*ring_top, *ovf_top)))
      return ring_top->at;
    return ovf_top->at;
  }

  // Drops every queued event (engine teardown). Capacities are kept.
  void clear() {
    for (auto& b : buckets_) b.clear();
    for (auto& w : occupied_) w = 0;
    imm_.clear();
    imm_head_ = 0;
    overflow_.clear();
    size_ = 0;
    ring_count_ = 0;
    cur_slot_ = 0;
  }

 private:
  std::uint32_t cur_index() const {
    return static_cast<std::uint32_t>(cur_slot_ & kIndexMask);
  }

  void mark_occupied(std::uint32_t idx) {
    occupied_[idx >> 6] |= 1ull << (idx & 63);
  }
  void mark_empty(std::uint32_t idx) {
    occupied_[idx >> 6] &= ~(1ull << (idx & 63));
  }

  // Makes the cursor bucket hold the ring minimum: re-anchors an empty
  // ring at the overflow front (bulk refill, each event migrates once)
  // and walks the cursor to the next occupied bucket.
  void prepare(Time /*now*/) {
    if (ring_count_ == 0) {
      if (overflow_.empty()) return;
      // Re-anchor the window at the earliest overflow event and pull in
      // one horizon's worth. Safe precisely because the ring is empty.
      cur_slot_ = overflow_.front().at >> kSlotShift;
      while (!overflow_.empty() &&
             (overflow_.front().at >> kSlotShift) - cur_slot_ < kBuckets) {
        std::pop_heap(overflow_.begin(), overflow_.end(), event_after);
        Event ev = std::move(overflow_.back());
        overflow_.pop_back();
        const auto slot = ev.at >> kSlotShift;
        buckets_[slot & kIndexMask].push_back(std::move(ev));
        mark_occupied(static_cast<std::uint32_t>(slot & kIndexMask));
        ++ring_count_;
      }
      auto& b = buckets_[cur_index()];
      std::make_heap(b.begin(), b.end(), event_after);
      return;
    }
    if (!buckets_[cur_index()].empty()) return;
    // Advance to the next occupied bucket (bitmap scan, word at a time).
    const std::uint32_t ci = cur_index();
    std::uint32_t pos = (ci + 1) & kIndexMask;
    std::uint32_t remaining = kBuckets - 1;
    while (remaining > 0) {
      const std::uint32_t word = pos >> 6;
      const std::uint32_t off = pos & 63;
      const std::uint32_t span = std::min(remaining, 64 - off);
      std::uint64_t bits = occupied_[word] >> off;
      if (span < 64) bits &= (1ull << span) - 1;
      if (bits != 0) {
        const std::uint32_t hit = pos + static_cast<std::uint32_t>(
                                            std::countr_zero(bits));
        const std::uint32_t dist = (hit - ci) & kIndexMask;
        cur_slot_ += dist;
        auto& b = buckets_[cur_index()];
        std::make_heap(b.begin(), b.end(), event_after);
        return;
      }
      pos = (pos + span) & kIndexMask;
      remaining -= span;
    }
    RDMASEM_CHECK_MSG(false, "ring_count_ > 0 but no occupied bucket");
  }

  Event pop_immediate() {
    Event ev = std::move(imm_[imm_head_++]);
    if (imm_head_ == imm_.size()) {
      imm_.clear();
      imm_head_ = 0;
    }
    return ev;
  }

  Event pop_ring() {
    auto& b = buckets_[cur_index()];
    std::pop_heap(b.begin(), b.end(), event_after);
    Event ev = std::move(b.back());
    b.pop_back();
    if (b.empty()) mark_empty(cur_index());
    --ring_count_;
    return ev;
  }

  Event pop_overflow() {
    std::pop_heap(overflow_.begin(), overflow_.end(), event_after);
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    return ev;
  }

  std::vector<Event> buckets_[kBuckets];
  std::uint64_t occupied_[kBuckets / 64] = {};
  // FIFO ring of events at exactly the current timestamp. Consumed from
  // imm_head_; storage is recycled whenever the ring drains.
  std::vector<Event> imm_;
  std::size_t imm_head_ = 0;
  std::vector<Event> overflow_;  // min-heap on (at, seq)
  std::uint64_t cur_slot_ = 0;   // absolute slot of the cursor bucket
  std::size_t size_ = 0;
  std::size_t ring_count_ = 0;
};

}  // namespace rdmasem::sim
