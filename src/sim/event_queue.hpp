#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

// One scheduled engine event. `handle` set => coroutine resumption;
// otherwise `fn` is invoked. (at, seq) is the total dispatch order:
// earlier time first, then seq. The engine packs seq as
// (origin_lane << 48) | per_lane_seq, so the order is a pure function of
// which lane scheduled the event and in what per-lane order — i.e. it
// does not depend on how lanes are placed onto shards, which is what
// makes parallel execution byte-identical to serial (docs/PERF.md).
// `exec_lane` is the lane the event runs on (differs from the origin
// lane only for cross-lane hops/wakes).
struct Event {
  Time at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> handle{};
  InlineFn fn;
  std::uint32_t exec_lane = 0;
};

inline bool event_before(const Event& a, const Event& b) {
  return a.at != b.at ? a.at < b.at : a.seq < b.seq;
}
// std::*_heap comparator for a min-heap on (at, seq).
inline bool event_after(const Event& a, const Event& b) {
  return event_before(b, a);
}

// EventQueue — a two-level calendar queue tuned for discrete-event
// simulation of RNIC/fabric traffic, replacing the seed's global binary
// heap (O(log n) per op, one std::function heap allocation per event).
//
// Two tiers, by distance from the dispatch cursor:
//
//   * near ring: kBuckets time buckets of kSlotWidth each (~2 us horizon
//     total), covering the short-horizon delays that dominate the verb
//     pipeline (EU/DMA/wire/DRAM service times) as well as same-timestamp
//     wakeups, which land in the cursor bucket. Future buckets are
//     unsorted vectors (O(1) append); a bucket is sorted once, when the
//     cursor reaches it, and consumed through a head index, so dispatch
//     is O(1) per event. Pushes into the cursor bucket insert in key
//     order — an append when the key is past the bucket maximum (the
//     common monotone case: per-lane seq counters only grow), a binary
//     search + small memmove otherwise (buckets hold few events).
//   * overflow: a (at, seq) min-heap for events past the ring horizon
//     (retransmit timers, fault windows, app-level timeouts) or behind
//     the cursor (cross-shard merges, pushes after run_until parked the
//     clock). When the ring drains, the window re-anchors at the
//     overflow minimum and one horizon's worth of events migrates into
//     the ring (each event migrates at most once).
//
// The seed engine's separate same-timestamp FIFO ring is gone: with
// lane-packed seq keys, push order at one timestamp is no longer key
// order (a later push from a lower lane sorts first), so immediates are
// ordered through the cursor-bucket heap like everything else.
//
// Determinism: pop() always returns the global (at, seq) minimum across
// the tiers regardless of push order — pushes do NOT need increasing seq,
// which is what lets the parallel driver bulk-merge cross-shard mailboxes
// at epoch barriers in arbitrary arrival order (asserted by the fuzz
// differential in tests/fuzz_test.cpp).
//
// Storage is pooled by construction: bucket vectors and the overflow
// heap keep their capacity across cycles, so a warmed-up queue schedules
// and dispatches without allocating.
class EventQueue {
 public:
  // 256 buckets x 8.192 ns = ~2.1 us near horizon.
  static constexpr std::uint32_t kBucketBits = 8;
  static constexpr std::uint32_t kBuckets = 1u << kBucketBits;
  static constexpr std::uint32_t kIndexMask = kBuckets - 1;
  static constexpr std::uint32_t kSlotShift = 13;  // 2^13 ps per bucket

  // Buckets start with room for a handful of coexisting events so the
  // steady state really is allocation-free: without the reserve, every
  // first-time collision of k events in one 8 ns bucket (the phase of a
  // pipeline drifts across buckets over time) grows that bucket's vector
  // 0->1->2->..., which shows up as rare-but-unbounded-tail allocations
  // in the selfbench datapath probe. ~256 x 8 x sizeof(Event) = ~130 KB
  // per queue, paid once at construction.
  static constexpr std::size_t kInitialBucketCap = 8;

  EventQueue() {
    for (auto& b : buckets_) b.reserve(kInitialBucketCap);
    overflow_.reserve(64);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  // High-water mark of size() since construction / clear() /
  // reset_max_size(). One predicted compare per push; the engine profiler
  // (RDMASEM_PROF) reads it per drain window as the shard's peak queue
  // depth.
  std::size_t max_size() const { return max_size_; }
  void reset_max_size() { max_size_ = size_; }

  // `ev.seq` must be unique among coexisting events; no push-order
  // constraint beyond that.
  void push(Event&& ev) {
    ++size_;
    if (size_ > max_size_) max_size_ = size_;
    const std::uint64_t slot = ev.at >> kSlotShift;
    if (slot >= cur_slot_ && slot - cur_slot_ < kBuckets) {
      auto& b = buckets_[slot & kIndexMask];
      mark_occupied(static_cast<std::uint32_t>(slot & kIndexMask));
      ++ring_count_;
      if (slot != cur_slot_ || b.empty() || event_before(b.back(), ev)) {
        b.push_back(std::move(ev));
      } else {
        // The cursor bucket is kept sorted from head_ (pop reads its
        // minimum at head_); keep the live region ordered.
        b.insert(std::upper_bound(b.begin() + head_, b.end(), ev,
                                  event_before),
                 std::move(ev));
      }
      return;
    }
    // Past the horizon — or (rarely) behind the cursor, which happens
    // only after run_until() parked the clock below the next event: the
    // overflow heap handles both, and pop() considers its top directly.
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), event_after);
  }

  // Bulk insert for epoch-barrier inbox merges: pushes every event and
  // clears the source vector (the producer keeps the capacity for its
  // next epoch). Arbitrary arrival order is fine — see the determinism
  // note above.
  void push_all(std::vector<Event>& evs) {
    for (Event& ev : evs) push(std::move(ev));
    evs.clear();
  }

  // Removes and returns the (at, seq)-minimum event. Requires !empty().
  Event pop() {
    RDMASEM_CHECK_MSG(size_ > 0, "pop on empty event queue");
    --size_;
    prepare();
    return ring_wins() ? pop_ring() : pop_overflow();
  }

  // Timestamp of the next event in dispatch order. Requires !empty().
  Time next_time() {
    RDMASEM_CHECK_MSG(size_ > 0, "next_time on empty event queue");
    prepare();
    return peek_best()->at;
  }

  // next_time() with an empty-queue fallback instead of a CHECK. The
  // demand-driven horizon (engine.cpp) polls drained queues in its
  // refresh loop, where "empty" is an ordinary state, not a bug.
  Time next_time_or(Time fallback) {
    return size_ == 0 ? fallback : next_time();
  }

  // (at, seq) key of the next event in dispatch order. Requires !empty().
  // Used by the engine to pick the globally-minimum shard when stepping
  // serially across shards (run_events).
  std::pair<Time, std::uint64_t> peek() {
    RDMASEM_CHECK_MSG(size_ > 0, "peek on empty event queue");
    prepare();
    const Event* best = peek_best();
    return {best->at, best->seq};
  }

  // Drops every queued event (engine teardown). Capacities are kept.
  void clear() {
    for (auto& b : buckets_) b.clear();
    for (auto& w : occupied_) w = 0;
    overflow_.clear();
    size_ = 0;
    max_size_ = 0;
    ring_count_ = 0;
    cur_slot_ = 0;
    head_ = 0;
  }

 private:
  std::uint32_t cur_index() const {
    return static_cast<std::uint32_t>(cur_slot_ & kIndexMask);
  }

  const Event* ring_top() const {
    return ring_count_ > 0 && !buckets_[cur_index()].empty()
               ? &buckets_[cur_index()][head_]
               : nullptr;
  }
  bool ring_wins() const {
    const Event* rt = ring_top();
    return rt != nullptr &&
           (overflow_.empty() || event_before(*rt, overflow_.front()));
  }
  // Pointer to the (at, seq)-minimum event; call prepare() first.
  const Event* peek_best() const {
    return ring_wins() ? ring_top() : &overflow_.front();
  }

  void mark_occupied(std::uint32_t idx) {
    occupied_[idx >> 6] |= 1ull << (idx & 63);
  }
  void mark_empty(std::uint32_t idx) {
    occupied_[idx >> 6] &= ~(1ull << (idx & 63));
  }

  // Sorts the bucket the cursor just reached and resets the consumption
  // head. Done exactly once per bucket per window pass.
  void open_bucket() {
    auto& b = buckets_[cur_index()];
    std::sort(b.begin(), b.end(), event_before);
    head_ = 0;
  }

  // Makes the cursor bucket hold the ring minimum: re-anchors an empty
  // ring at the overflow front (bulk refill, each event migrates once)
  // and walks the cursor to the next occupied bucket.
  void prepare() {
    if (ring_count_ == 0) {
      if (overflow_.empty()) return;
      // Re-anchor the window at the earliest overflow event and pull in
      // one horizon's worth. Safe precisely because the ring is empty.
      cur_slot_ = overflow_.front().at >> kSlotShift;
      while (!overflow_.empty() &&
             (overflow_.front().at >> kSlotShift) - cur_slot_ < kBuckets) {
        std::pop_heap(overflow_.begin(), overflow_.end(), event_after);
        Event ev = std::move(overflow_.back());
        overflow_.pop_back();
        const auto slot = ev.at >> kSlotShift;
        buckets_[slot & kIndexMask].push_back(std::move(ev));
        mark_occupied(static_cast<std::uint32_t>(slot & kIndexMask));
        ++ring_count_;
      }
      open_bucket();
      return;
    }
    if (!buckets_[cur_index()].empty()) return;
    // Advance to the next occupied bucket (bitmap scan, word at a time).
    const std::uint32_t ci = cur_index();
    std::uint32_t pos = (ci + 1) & kIndexMask;
    std::uint32_t remaining = kBuckets - 1;
    while (remaining > 0) {
      const std::uint32_t word = pos >> 6;
      const std::uint32_t off = pos & 63;
      const std::uint32_t span = std::min(remaining, 64 - off);
      std::uint64_t bits = occupied_[word] >> off;
      if (span < 64) bits &= (1ull << span) - 1;
      if (bits != 0) {
        const std::uint32_t hit = pos + static_cast<std::uint32_t>(
                                            std::countr_zero(bits));
        const std::uint32_t dist = (hit - ci) & kIndexMask;
        cur_slot_ += dist;
        open_bucket();
        return;
      }
      pos = (pos + span) & kIndexMask;
      remaining -= span;
    }
    RDMASEM_CHECK_MSG(false, "ring_count_ > 0 but no occupied bucket");
  }

  Event pop_ring() {
    auto& b = buckets_[cur_index()];
    Event ev = std::move(b[head_]);
    if (++head_ == b.size()) {
      b.clear();
      head_ = 0;
      mark_empty(cur_index());
    }
    --ring_count_;
    return ev;
  }

  Event pop_overflow() {
    std::pop_heap(overflow_.begin(), overflow_.end(), event_after);
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    return ev;
  }

  std::vector<Event> buckets_[kBuckets];
  std::uint64_t occupied_[kBuckets / 64] = {};
  std::vector<Event> overflow_;  // min-heap on (at, seq)
  std::uint64_t cur_slot_ = 0;   // absolute slot of the cursor bucket
  // Next live element of the cursor bucket; [0, head_) is consumed. Only
  // ever non-zero for the cursor bucket (fully-consumed buckets clear).
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t max_size_ = 0;
  std::size_t ring_count_ = 0;
};

}  // namespace rdmasem::sim
