#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rdmasem::sim {

// InlineFn — the schedule-path callable. A std::function replacement with
// a fixed small buffer: callables whose captures fit in kInlineBytes are
// stored in place (no heap traffic on the event hot path); larger ones
// fall back to a single boxed allocation. Move-only, invoked at most once
// per dispatch, relocatable (the calendar queue moves events between
// bucket vectors and heap slots).
class InlineFn {
 public:
  // Sized so Event (at + seq + handle + InlineFn) stays one cache line.
  static constexpr std::size_t kInlineBytes = 32;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineFn(InlineFn&& o) noexcept { move_from(o); }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  // Null relocate/destroy entries are fast-path markers: relocate==nullptr
  // means "memcpy the buffer" (true for trivially-relocatable inline
  // callables and for all boxed ones, whose payload is a single pointer);
  // destroy==nullptr means "nothing to do". The calendar queue's heap
  // sifts move events many times per dispatch, so skipping the indirect
  // call there is a measurable share of the hot path.
  struct Ops {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  static void relocate_inline(void* dst, void* src) {
    F* s = static_cast<F*>(src);
    ::new (dst) F(std::move(*s));
    s->~F();
  }
  template <typename F>
  static void invoke_inline(void* p) {
    (*static_cast<F*>(p))();
  }
  template <typename F>
  static void destroy_inline(void* p) {
    static_cast<F*>(p)->~F();
  }
  template <typename F>
  static void invoke_boxed(void* p) {
    (**static_cast<F**>(p))();
  }
  template <typename F>
  static void destroy_boxed(void* p) {
    delete *static_cast<F**>(p);
  }

  template <typename F>
  static constexpr bool kTrivialReloc =
      std::is_trivially_move_constructible_v<F> &&
      std::is_trivially_destructible_v<F>;

  template <typename F>
  static constexpr Ops kInlineOps = {
      &invoke_inline<F>,
      kTrivialReloc<F> ? nullptr : &relocate_inline<F>,
      std::is_trivially_destructible_v<F> ? nullptr : &destroy_inline<F>,
  };

  template <typename F>
  static constexpr Ops kBoxedOps = {
      &invoke_boxed<F>,
      nullptr,  // the stored pointer relocates by memcpy
      &destroy_boxed<F>,
  };

  void move_from(InlineFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr)
        std::memcpy(buf_, o.buf_, kInlineBytes);
      else
        ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace rdmasem::sim
