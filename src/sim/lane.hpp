#pragma once

#include <cstdint>

namespace rdmasem::sim {

// Logical lane of the event the current thread is dispatching: lane 0 is
// the driver/main context, lane m+1 is machine m. Returns 0 outside an
// engine dispatch. Layers that keep per-lane buffers (e.g. the obs
// tracer) use this instead of depending on the engine header.
std::uint32_t current_lane() noexcept;

}  // namespace rdmasem::sim
