#pragma once

#include <cstdint>

namespace rdmasem::sim {

// Simulated time in integer picoseconds. Integer time keeps the simulator
// bit-for-bit deterministic across runs and platforms; picosecond resolution
// lets per-byte costs (e.g. 0.2 ns/B at 40 Gbps) stay exact.
// Range: 2^64 ps ~ 213 days of simulated time, far beyond any experiment.
using Time = std::uint64_t;
using Duration = std::uint64_t;

inline constexpr Duration kPicosecond = 1;
inline constexpr Duration kNanosecond = 1000;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration ps(double v) { return static_cast<Duration>(v); }
constexpr Duration ns(double v) {
  return static_cast<Duration>(v * static_cast<double>(kNanosecond));
}
constexpr Duration us(double v) {
  return static_cast<Duration>(v * static_cast<double>(kMicrosecond));
}
constexpr Duration ms(double v) {
  return static_cast<Duration>(v * static_cast<double>(kMillisecond));
}

constexpr double to_ns(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosecond);
}
constexpr double to_us(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace rdmasem::sim
