#include "sim/engine.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace rdmasem::sim {

namespace {

// Seed for lane l's private RNG stream: a splitmix64 step keyed on the
// lane, so streams are decorrelated but a pure function of (seed, lane) —
// independent of shard placement.
std::uint64_t mix_seed(std::uint64_t s, std::uint32_t lane) {
  std::uint64_t z = s + 0x9e3779b97f4a7c15ULL * (lane + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

// Spin-then-yield wait: parallel runs spin briefly (epochs are short) but
// must not burn a core-bound container — CI and laptops run shards > cores.
template <typename Cond>
void spin_until(Cond&& cond) {
  for (int i = 0; !cond(); ++i) {
    if (i >= 128) std::this_thread::yield();
  }
}

using ProfClock = std::chrono::steady_clock;

std::uint64_t ns_since(ProfClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ProfClock::now() -
                                                           t0)
          .count());
}

}  // namespace

std::uint32_t current_lane() noexcept { return detail::t_exec.lane; }

Engine::Engine() : base_seed_(kDefaultSeed) {
  shards_.push_back(std::make_unique<Shard>());
  shards_[0]->outbox.resize(1);
  lane_seq_.assign(1, 0);
  lane_rng_.emplace_back(base_seed_);
  lane_shard_.assign(1, 0);
  prof_ = util::env_bool("RDMASEM_PROF", false);
}

Engine::~Engine() {
  // Unblocked destruction order: drop the event queues first (pending
  // resumptions reference frames), then destroy surviving frames.
  for (auto& sh : shards_) sh->queue.clear();
  for (auto& sh : shards_) {
    // Snapshot before destroying: a frame's locals may unregister other
    // frames from their destructors.
    std::vector<void*> live;
    live.reserve(sh->detached.frames.size());
    sh->detached.frames.for_each([&](void* p) { live.push_back(p); });
    sh->detached.frames.clear();
    for (void* addr : live)
      std::coroutine_handle<>::from_address(addr).destroy();
  }
}

void Engine::configure_lanes(std::uint32_t lanes, std::uint32_t shards) {
  RDMASEM_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                    "configure_lanes: lane count out of range");
  if (shards == 0) shards = 1;
  if (shards > lanes) shards = lanes;
  for (auto& sh : shards_)
    RDMASEM_CHECK_MSG(sh->queue.empty(),
                      "configure_lanes with events already scheduled");
  lanes_ = lanes;
  nshards_ = shards;
  lane_seq_.assign(lanes, 0);
  lane_rng_.clear();
  lane_rng_.reserve(lanes);
  for (std::uint32_t l = 0; l < lanes; ++l)
    lane_rng_.emplace_back(l == 0 ? base_seed_ : mix_seed(base_seed_, l));
  // Lane 0 (driver) runs on shard 0; machine lanes split into contiguous
  // equal-size groups, so fabric neighbours tend to share a shard.
  lane_shard_.assign(lanes, 0);
  for (std::uint32_t l = 1; l < lanes; ++l)
    lane_shard_[l] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(l - 1) * shards) / (lanes - 1));
  while (shards_.size() < shards) shards_.push_back(std::make_unique<Shard>());
  shards_.resize(shards);
  for (auto& sh : shards_) {
    sh->now = unified_now_;
    sh->outbox.clear();
    sh->outbox.resize(shards);
  }
}

void Engine::seed(std::uint64_t s) {
  base_seed_ = s;
  for (std::uint32_t l = 0; l < lane_rng_.size(); ++l)
    lane_rng_[l].reseed(l == 0 ? s : mix_seed(s, l));
}

void Engine::spawn_on(std::uint32_t lane, Task&& task) {
  RDMASEM_CHECK_MSG(lane < lanes_, "spawn_on: lane out of range");
  auto h = task.release_detached(&shards_[lane_shard_[lane]]->detached);
  resume_on(lane, caller_now(), h);
}

bool Engine::try_inline_advance(Time at) {
  const detail::ExecContext& x = detail::t_exec;
  // `at >= inline_until` also covers the disabled states: outside a
  // dispatch horizon (run_events, plain dispatch()) inline_until is 0.
  if (x.eng != this || at >= x.inline_until) return false;
  Shard& sh = *shards_[x.shard];
  if (!sh.queue.empty()) {
    const auto top = sh.queue.peek();
    // The wakeup event's would-be key: this lane's NEXT seq value (not
    // consumed — skipping it preserves relative per-lane order, which is
    // all the (at, key) comparison ever uses). Grant inline only if the
    // wakeup would be dispatched before everything queued.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(x.lane) << kLaneShift) |
        lane_seq_[x.lane];
    if (top.first < at || (top.first == at && top.second < key)) return false;
  }
  // Equivalent to pop + dispatch of the wakeup: clock lands on `at` and
  // the processed count stays placement-invariant (every semantic
  // resumption counts exactly once, granted inline or dispatched).
  sh.now = at;
  ++sh.processed;
  ++sh.prof.inline_grants;
  return true;
}

void Engine::dispatch(Shard& sh, std::uint32_t shard_idx, Event& ev) {
  sh.now = ev.at;
  ++sh.processed;
  const detail::ExecContext saved = detail::t_exec;
  detail::t_exec = {this, shard_idx, ev.exec_lane};
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.fn();
  }
  detail::t_exec = saved;
}

Time Engine::run() {
  if (nshards_ == 1) {
    // Hot loop: the exec context is written once and only the lane field
    // updates per event (dispatch()'s full save/restore costs two extra
    // thread-local writes per event — measurable in the selfbench).
    Shard& sh = *shards_[0];
    ProfClock::time_point w0;
    if (prof_) w0 = ProfClock::now();
    const detail::ExecContext saved = detail::t_exec;
    detail::t_exec = {this, 0, 0, inline_wakeups_ ? kNoDeadline : 0};
    while (!sh.queue.empty()) {
      Event ev = sh.queue.pop();
      sh.now = ev.at;
      ++sh.processed;
      detail::t_exec.lane = ev.exec_lane;
      if (ev.handle) {
        ev.handle.resume();
      } else {
        ev.fn();
      }
    }
    detail::t_exec = saved;
    if (prof_) {
      // The whole serial run is one "epoch": dispatch == wall.
      const std::uint64_t ns = ns_since(w0);
      sh.prof.dispatch_ns += ns;
      sh.prof.wall_ns += ns;
      ++sh.prof.epochs;
      ++prof_runs_;
    }
    unified_now_ = std::max(unified_now_, sh.now);
    return unified_now_;
  }
  run_parallel(kNoDeadline);
  return unified_now_;
}

bool Engine::run_until(Time deadline) {
  if (nshards_ == 1) {
    Shard& sh = *shards_[0];
    ProfClock::time_point w0;
    if (prof_) w0 = ProfClock::now();
    const detail::ExecContext saved = detail::t_exec;
    // Horizon deadline + 1: events AT the deadline still run (saturating;
    // a deadline of kNoDeadline behaves like run()).
    detail::t_exec = {this, 0, 0,
                      !inline_wakeups_         ? Time{0}
                      : deadline == kNoDeadline ? kNoDeadline
                                                : deadline + 1};
    while (!sh.queue.empty() && sh.queue.next_time() <= deadline) {
      Event ev = sh.queue.pop();
      sh.now = ev.at;
      ++sh.processed;
      detail::t_exec.lane = ev.exec_lane;
      if (ev.handle) {
        ev.handle.resume();
      } else {
        ev.fn();
      }
    }
    detail::t_exec = saved;
    if (prof_) {
      const std::uint64_t ns = ns_since(w0);
      sh.prof.dispatch_ns += ns;
      sh.prof.wall_ns += ns;
      ++sh.prof.epochs;
      ++prof_runs_;
    }
    unified_now_ = std::max(unified_now_, sh.now);
    if (sh.queue.empty()) return false;
    unified_now_ = std::max(unified_now_, deadline);
    return true;
  }
  const bool remaining = run_parallel(deadline);
  if (remaining) unified_now_ = std::max(unified_now_, deadline);
  return remaining;
}

std::uint64_t Engine::run_events(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events) {
    Shard* best = nullptr;
    std::uint32_t best_idx = 0;
    std::pair<Time, std::uint64_t> best_key{};
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      Shard& sh = *shards_[s];
      if (sh.queue.empty()) continue;
      const auto key = sh.queue.peek();
      if (best == nullptr || key < best_key) {
        best = &sh;
        best_idx = s;
        best_key = key;
      }
    }
    if (best == nullptr) break;
    Event ev = best->queue.pop();
    dispatch(*best, best_idx, ev);
    ++n;
  }
  Time mx = unified_now_;
  for (const auto& sh : shards_) mx = std::max(mx, sh->now);
  unified_now_ = mx;
  return n;
}

void Engine::merge_outboxes() {
  for (auto& src : shards_) {
    for (std::uint32_t d = 0; d < nshards_; ++d) {
      auto& box = src->outbox[d];
      if (box.empty()) continue;
      // Safe to write another shard's profile row here: workers are
      // parked at the barrier whenever the main thread merges.
      shards_[d]->prof.merged_events += box.size();
      for (Event& ev : box) shards_[d]->queue.push(std::move(ev));
      box.clear();
    }
  }
}

void Engine::run_shard_epoch(std::uint32_t shard_idx) {
  Shard& sh = *shards_[shard_idx];
  ProfClock::time_point w0;
  if (prof_) w0 = ProfClock::now();
  const detail::ExecContext saved = detail::t_exec;
  // Inline grants are bounded by the epoch: past epoch_end_ another shard
  // may still produce an earlier cross-shard event, so the wakeup must go
  // through the queue and the next barrier.
  detail::t_exec = {this, shard_idx, 0, inline_wakeups_ ? epoch_end_ : 0};
  while (!sh.queue.empty() && sh.queue.next_time() < epoch_end_) {
    Event ev = sh.queue.pop();
    sh.now = ev.at;
    ++sh.processed;
    detail::t_exec.lane = ev.exec_lane;
    if (ev.handle) {
      ev.handle.resume();
    } else {
      ev.fn();
    }
  }
  detail::t_exec = saved;
  if (prof_) {
    sh.prof.dispatch_ns += ns_since(w0);
    ++sh.prof.epochs;
  }
}

void Engine::worker_main(std::uint32_t shard_idx, std::uint64_t base_gen) {
  // The baseline generation is captured by the main thread BEFORE the
  // first epoch is released — reading gen_ here instead would race with
  // that release and could skip the first epoch (deadlocking the barrier).
  Shard& sh = *shards_[shard_idx];
  const bool prof = prof_;
  ProfClock::time_point wall0;
  if (prof) wall0 = ProfClock::now();
  std::uint64_t seen = base_gen;
  for (;;) {
    if (prof) {
      const ProfClock::time_point p0 = ProfClock::now();
      spin_until(
          [&] { return gen_.load(std::memory_order_acquire) != seen; });
      sh.prof.barrier_park_ns += ns_since(p0);
    } else {
      spin_until(
          [&] { return gen_.load(std::memory_order_acquire) != seen; });
    }
    seen = gen_.load(std::memory_order_acquire);
    if (stop_) break;
    run_shard_epoch(shard_idx);
    arrived_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (prof) sh.prof.wall_ns += ns_since(wall0);
}

bool Engine::run_parallel(Time deadline) {
  RDMASEM_CHECK_MSG(lookahead_ > 0,
                    "parallel run requires set_lookahead() > 0");
  stop_ = false;
  parallel_running_ = true;
  std::vector<std::thread> workers;
  workers.reserve(nshards_ - 1);
  const std::uint64_t base_gen = gen_.load(std::memory_order_relaxed);
  for (std::uint32_t s = 1; s < nshards_; ++s)
    workers.emplace_back(&Engine::worker_main, this, s, base_gen);

  const bool prof = prof_;
  Shard& s0 = *shards_[0];
  ProfClock::time_point wall0;
  if (prof) wall0 = ProfClock::now();
  for (;;) {
    // Workers are parked here (either not yet released, or arrived at the
    // barrier), so the main thread owns every queue and outbox.
    if (prof) {
      const ProfClock::time_point m0 = ProfClock::now();
      merge_outboxes();
      s0.prof.merge_ns += ns_since(m0);
    } else {
      merge_outboxes();
    }
    Time t = kNoDeadline;
    for (auto& sh : shards_)
      if (!sh->queue.empty()) t = std::min(t, sh->queue.next_time());
    if (t == kNoDeadline || (deadline != kNoDeadline && t > deadline)) break;
    Time end = t + lookahead_;
    if (end < t) end = kNoDeadline;  // saturate
    if (deadline != kNoDeadline) end = std::min(end, deadline + 1);
    epoch_end_ = end;
    arrived_.store(0, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    run_shard_epoch(0);
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    if (prof) {
      const ProfClock::time_point p0 = ProfClock::now();
      spin_until([&] {
        return arrived_.load(std::memory_order_acquire) == nshards_;
      });
      s0.prof.barrier_park_ns += ns_since(p0);
    } else {
      spin_until([&] {
        return arrived_.load(std::memory_order_acquire) == nshards_;
      });
    }
  }

  if (prof) {
    s0.prof.wall_ns += ns_since(wall0);
    ++prof_runs_;
  }
  stop_ = true;
  gen_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers) w.join();
  parallel_running_ = false;

  Time mx = unified_now_;
  for (const auto& sh : shards_) mx = std::max(mx, sh->now);
  unified_now_ = mx;
  for (const auto& sh : shards_)
    if (!sh->queue.empty()) return true;
  return false;
}

EngineProfile Engine::drain_profile() {
  EngineProfile p;
  p.enabled = prof_;
  p.shards = nshards_;
  p.runs = prof_runs_;
  p.shard.reserve(nshards_);
  for (auto& sh : shards_) {
    ShardProfile row = sh->prof;
    row.events = sh->processed - sh->prof_events_base;
    row.max_queue_depth = sh->queue.max_size();
    p.shard.push_back(row);
    // Start a new profiling window.
    sh->prof = ShardProfile{};
    sh->prof_events_base = sh->processed;
    sh->queue.reset_max_size();
  }
  prof_runs_ = 0;
  return p;
}

}  // namespace rdmasem::sim
