#include "sim/engine.hpp"

#include <algorithm>

namespace rdmasem::sim {

void Engine::spawn(Task&& task) {
  auto h = task.release_detached(&detached_);
  resume_at(now_, h);
}

Engine::~Engine() {
  // Unblocked destruction order: drop the event queue first (pending
  // resumptions reference frames), then destroy surviving frames.
  queue_.clear();
  for (void* addr : detached_)
    std::coroutine_handle<>::from_address(addr).destroy();
}

void Engine::dispatch(Event& ev) {
  now_ = ev.at;
  ++processed_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.fn();
  }
}

Time Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.pop(now_);
    dispatch(ev);
  }
  return now_;
}

bool Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_time(now_) <= deadline) {
    Event ev = queue_.pop(now_);
    dispatch(ev);
  }
  if (queue_.empty()) return false;
  now_ = std::max(now_, deadline);
  return true;
}

std::uint64_t Engine::run_events(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && !queue_.empty()) {
    Event ev = queue_.pop(now_);
    dispatch(ev);
    ++n;
  }
  return n;
}

}  // namespace rdmasem::sim
