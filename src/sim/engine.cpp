#include "sim/engine.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace rdmasem::sim {

namespace {

// Seed for lane l's private RNG stream: a splitmix64 step keyed on the
// lane, so streams are decorrelated but a pure function of (seed, lane) —
// independent of shard placement.
std::uint64_t mix_seed(std::uint64_t s, std::uint32_t lane) {
  std::uint64_t z = s + 0x9e3779b97f4a7c15ULL * (lane + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

// One pipeline-friendly pause between condition polls.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// Bounded exponential spin-then-yield: poll-relax for a short burst, back
// off exponentially up to a cap, then fall through to yield(). Barriers
// are usually released within the spin window on dedicated cores, while
// core-bound containers (CI, laptops running shards > cores) reach the
// yield quickly instead of burning the only core the releaser needs.
template <typename Cond>
void spin_until(Cond&& cond) {
  std::uint32_t backoff = 1;
  for (std::uint32_t i = 0; !cond(); ++i) {
    if (i < 64) {
      cpu_relax();
    } else if (backoff < 1024) {
      for (std::uint32_t b = 0; b < backoff; ++b) cpu_relax();
      backoff <<= 1;
    } else {
      std::this_thread::yield();
    }
  }
}

using ProfClock = std::chrono::steady_clock;

std::uint64_t ns_since(ProfClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ProfClock::now() -
                                                           t0)
          .count());
}

}  // namespace

std::uint32_t current_lane() noexcept { return detail::t_exec.lane; }

Engine::Engine() : base_seed_(kDefaultSeed) {
  shards_.push_back(std::make_unique<Shard>());
  shards_[0]->outbox.resize(1);
  shards_[0]->epoch_ends.assign(1, 0);
  lane_seq_.assign(1, 0);
  lane_rng_.emplace_back(base_seed_);
  lane_shard_.assign(1, 0);
  lane_group_.assign(1, 0);
  group_lat_.assign(1, 0);
  shard_lat_.assign(1, 0);
  shard_reach_.assign(1, 0);
  prof_ = util::env_bool("RDMASEM_PROF", false);
  epoch_legacy_ = util::env_bool("RDMASEM_EPOCH_LEGACY", false);
  inline_wakeups_ = util::env_bool("RDMASEM_INLINE_WAKEUPS", true);
  horizon_legacy_ = util::env_bool("RDMASEM_HORIZON_LEGACY", false);
  horizon_quantum_ = util::env_u64("RDMASEM_HORIZON_QUANTUM", 0);
  horizon_poll_budget_ = util::env_u64("RDMASEM_HORIZON_POLL_BUDGET", 512);
  horizon_fuse_events_ = util::env_u64("RDMASEM_HORIZON_FUSE_EVENTS", 4096);
}

Engine::~Engine() {
  // Unblocked destruction order: drop the event queues first (pending
  // resumptions reference frames), then destroy surviving frames.
  // Channels are normally empty here (drained at every round top), but an
  // aborted run may strand events in a ring — drop those the same way.
  for (auto& sh : shards_) {
    sh->queue.clear();
    if (sh->chan == nullptr) continue;
    for (std::uint32_t d = 0; d < nshards_; ++d) {
      EventChannel& ch = sh->chan[d];
      const std::uint64_t h = ch.head.load(std::memory_order_relaxed);
      const std::uint64_t t = ch.tail.load(std::memory_order_relaxed);
      for (std::uint64_t i = h; i != t; ++i)
        ch.buf[i & (EventChannel::kCap - 1)] = Event{};
      ch.head.store(t, std::memory_order_relaxed);
    }
  }
  for (auto& sh : shards_) {
    // Snapshot before destroying: a frame's locals may unregister other
    // frames from their destructors.
    std::vector<void*> live;
    live.reserve(sh->detached.frames.size());
    sh->detached.frames.for_each([&](void* p) { live.push_back(p); });
    sh->detached.frames.clear();
    for (void* addr : live)
      std::coroutine_handle<>::from_address(addr).destroy();
  }
}

void Engine::configure_lanes(std::uint32_t lanes, std::uint32_t shards,
                             LaneTopology topo) {
  RDMASEM_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                    "configure_lanes: lane count out of range");
  if (shards == 0) shards = 1;
  if (shards > lanes) shards = lanes;
  for (auto& sh : shards_)
    RDMASEM_CHECK_MSG(sh->queue.empty(),
                      "configure_lanes with events already scheduled");
  lanes_ = lanes;
  nshards_ = shards;
  lane_seq_.assign(lanes, 0);
  lane_rng_.clear();
  lane_rng_.reserve(lanes);
  for (std::uint32_t l = 0; l < lanes; ++l)
    lane_rng_.emplace_back(l == 0 ? base_seed_ : mix_seed(base_seed_, l));
  // Install the lane topology. Empty = uniform: one group whose latency
  // is whatever set_lookahead() chose (callable before or after this).
  if (topo.lane_group.empty()) {
    ngroups_ = 1;
    lane_group_.assign(lanes, 0);
    group_lat_.assign(1, lookahead_);
  } else {
    RDMASEM_CHECK_MSG(topo.lane_group.size() == lanes,
                      "configure_lanes: lane_group size mismatch");
    RDMASEM_CHECK_MSG(topo.group_latency.size() ==
                          static_cast<std::size_t>(topo.groups) * topo.groups,
                      "configure_lanes: group_latency size mismatch");
    ngroups_ = topo.groups;
    lane_group_ = std::move(topo.lane_group);
    group_lat_ = std::move(topo.group_latency);
    for (std::uint32_t g : lane_group_)
      RDMASEM_CHECK_MSG(g < ngroups_, "configure_lanes: group out of range");
    lookahead_ = group_lat_[0];
    for (const Duration d : group_lat_) lookahead_ = std::min(lookahead_, d);
  }
  // Lane placement. Lane 0 (driver) always runs on shard 0. Uniform
  // topology: machine lanes split into contiguous equal-size ranges, so
  // fabric neighbours tend to share a shard. Non-uniform: the same walk,
  // but a shard also closes early at an affinity-group boundary once it
  // holds its fair share — whole groups land on one shard where balance
  // allows, so cross-shard lane pairs sit in different groups and the
  // pairwise lookahead matrix is maximized.
  lane_shard_.assign(lanes, 0);
  if (lanes > 1) {
    if (ngroups_ <= 1) {
      for (std::uint32_t l = 1; l < lanes; ++l)
        lane_shard_[l] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(l - 1) * shards) / (lanes - 1));
    } else {
      // Lane 0 counts toward shard 0's fill, so the driver's group mates
      // ride with it and the fair-share math sees every lane. The
      // `remaining - filled` guard keeps at least one lane available for
      // every shard still to open.
      std::uint32_t s = 0;
      std::uint32_t filled = 1;  // lane 0
      std::uint32_t remaining = lanes;
      std::uint32_t shards_left = shards;
      for (std::uint32_t l = 1; l < lanes; ++l) {
        const bool boundary = lane_group_[l] != lane_group_[l - 1];
        const std::uint32_t fair =
            (remaining + shards_left - 1) / shards_left;  // ceil
        if (s + 1 < shards && filled > 0 &&
            remaining - filled >= shards_left - 1 &&
            (filled >= fair ||
             (boundary && static_cast<std::uint64_t>(filled) * shards_left >=
                              remaining))) {
          ++s;
          --shards_left;
          remaining -= filled;
          filled = 0;
        }
        lane_shard_[l] = s;
        ++filled;
      }
    }
  }
  while (shards_.size() < shards) shards_.push_back(std::make_unique<Shard>());
  shards_.resize(shards);
  for (auto& sh : shards_) {
    sh->now = unified_now_;
    sh->outbox.clear();
    sh->outbox.resize(shards);
    sh->epoch_ends.assign(shards, 0);
    sh->chan = shards > 1 ? std::make_unique<EventChannel[]>(shards)
                          : nullptr;
    sh->live_clock.store(0, std::memory_order_relaxed);
    sh->pub_freeze = kNoDeadline;
    sh->pub_mark = 0;
    sh->publishing = false;
    std::fill(std::begin(sh->win_events), std::end(sh->win_events),
              std::uint64_t{0});
    sh->win_sum = 0;
    sh->win_pos = 0;
    sh->win_count = 0;
    sh->round_base = sh->processed;
  }
  rebuild_shard_lookahead();
}

void Engine::set_lookahead(Duration d) {
  lookahead_ = d;
  ngroups_ = 1;
  lane_group_.assign(lanes_, 0);
  group_lat_.assign(1, d);
  rebuild_shard_lookahead();
}

void Engine::rebuild_shard_lookahead() {
  // shard_lat_[s][d] = min group latency over (group on s) x (group on d).
  // Pairs involving a shard with no lanes (possible when shards == lanes)
  // fall back to the global minimum — maximally conservative, and never
  // exercised: an empty shard neither sends nor receives events.
  const std::size_t n = nshards_;
  std::vector<std::uint64_t> groups_on(n, 0);  // bitmask; ngroups_ <= 64
  const bool small = ngroups_ <= 64;
  for (std::uint32_t l = 0; l < lanes_ && small; ++l)
    groups_on[lane_shard_[l]] |= std::uint64_t{1} << lane_group_[l];
  shard_lat_.assign(n * n, lookahead_);
  if (small && ngroups_ > 1) {
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        if (groups_on[s] == 0 || groups_on[d] == 0) continue;
        Duration lat = ~Duration{0};
        for (std::uint32_t g = 0; g < ngroups_; ++g) {
          if (!(groups_on[s] >> g & 1)) continue;
        for (std::uint32_t h = 0; h < ngroups_; ++h) {
            if (!(groups_on[d] >> h & 1)) continue;
            lat = std::min(lat, group_lat_[static_cast<std::size_t>(g) *
                                               ngroups_ +
                                           h]);
          }
        }
        shard_lat_[s * n + d] = lat;
      }
    }
  }
  // shard_reach_[u][d] = cheapest latency of any send CHAIN u -> ... -> d
  // with at least one hop (for u == d: the min round trip through another
  // shard). The epoch horizon must use this, not the direct edge: a shard
  // whose queue is momentarily empty can be REACTIVATED by a neighbour's
  // send during the very epoch being bounded, and its relayed reply still
  // has to land outside the destination's horizon. Min-plus closure over
  // the direct matrix (Floyd–Warshall, then one mandatory final edge)
  // prices every such chain. n <= shards, so the cubic pass is trivial.
  std::vector<Duration> clo(shard_lat_);  // >=1-hop chain cost so far
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t d = 0; d < n; ++d) {
        const Duration via = clo[u * n + k] + clo[k * n + d];
        if (via >= clo[u * n + k] && via < clo[u * n + d])
          clo[u * n + d] = via;
      }
  shard_reach_ = clo;
  // A chain u -> d never undercuts the direct edge (triangle closure),
  // but the DIAGONAL must be the round trip, not the closure's 2-cycle
  // minimum through possibly-cheaper self loops: recompute it explicitly.
  for (std::size_t d = 0; d < n; ++d) {
    Duration rt = ~Duration{0};
    for (std::size_t s = 0; s < n; ++s) {
      if (s == d) continue;
      const Duration out = shard_reach_[d * n + s];
      const Duration back = shard_lat_[s * n + d];
      if (out + back >= out) rt = std::min(rt, out + back);
    }
    shard_reach_[d * n + d] = n > 1 ? rt : 0;
  }
}

void Engine::seed(std::uint64_t s) {
  base_seed_ = s;
  for (std::uint32_t l = 0; l < lane_rng_.size(); ++l)
    lane_rng_[l].reseed(l == 0 ? s : mix_seed(s, l));
}

void Engine::spawn_on(std::uint32_t lane, Task&& task) {
  RDMASEM_CHECK_MSG(lane < lanes_, "spawn_on: lane out of range");
  auto h = task.release_detached(&shards_[lane_shard_[lane]]->detached);
  resume_on(lane, caller_now(), h);
}

bool Engine::try_inline_advance(Time at) {
  const detail::ExecContext& x = detail::t_exec;
  // `at >= inline_until` also covers the disabled states: outside a
  // dispatch horizon (run_events, plain dispatch()) inline_until is 0.
  if (x.eng != this || at >= x.inline_until) return false;
  Shard& sh = *shards_[x.shard];
  if (!sh.queue.empty()) {
    const auto top = sh.queue.peek();
    // The wakeup event's would-be key: this lane's NEXT seq value (not
    // consumed — skipping it preserves relative per-lane order, which is
    // all the (at, key) comparison ever uses). Grant inline only if the
    // wakeup would be dispatched before everything queued.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(x.lane) << kLaneShift) |
        lane_seq_[x.lane];
    if (top.first < at || (top.first == at && top.second < key)) return false;
  }
  // Equivalent to pop + dispatch of the wakeup: clock lands on `at` and
  // the processed count stays placement-invariant (every semantic
  // resumption counts exactly once, granted inline or dispatched).
  sh.now = at;
  ++sh.processed;
  ++sh.prof.inline_grants;
  return true;
}

void Engine::dispatch(Shard& sh, std::uint32_t shard_idx, Event& ev) {
  sh.now = ev.at;
  ++sh.processed;
  const detail::ExecContext saved = detail::t_exec;
  detail::t_exec = {this, shard_idx, ev.exec_lane};
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.fn();
  }
  detail::t_exec = saved;
}

Time Engine::run() {
  if (nshards_ == 1) {
    // Hot loop: the exec context is written once and only the lane field
    // updates per event (dispatch()'s full save/restore costs two extra
    // thread-local writes per event — measurable in the selfbench).
    Shard& sh = *shards_[0];
    ProfClock::time_point w0;
    if (prof_) w0 = ProfClock::now();
    const detail::ExecContext saved = detail::t_exec;
    detail::t_exec = {this, 0, 0, inline_wakeups_ ? kNoDeadline : 0};
    while (!sh.queue.empty()) {
      Event ev = sh.queue.pop();
      sh.now = ev.at;
      ++sh.processed;
      detail::t_exec.lane = ev.exec_lane;
      if (ev.handle) {
        ev.handle.resume();
      } else {
        ev.fn();
      }
    }
    detail::t_exec = saved;
    if (prof_) {
      // The whole serial run is one "epoch": dispatch == wall.
      const std::uint64_t ns = ns_since(w0);
      sh.prof.dispatch_ns += ns;
      sh.prof.wall_ns += ns;
      ++sh.prof.epochs;
      ++prof_runs_;
    }
    unified_now_ = std::max(unified_now_, sh.now);
    return unified_now_;
  }
  run_parallel(kNoDeadline);
  return unified_now_;
}

bool Engine::run_until(Time deadline) {
  if (nshards_ == 1) {
    Shard& sh = *shards_[0];
    ProfClock::time_point w0;
    if (prof_) w0 = ProfClock::now();
    const detail::ExecContext saved = detail::t_exec;
    // Horizon deadline + 1: events AT the deadline still run (saturating;
    // a deadline of kNoDeadline behaves like run()).
    detail::t_exec = {this, 0, 0,
                      !inline_wakeups_         ? Time{0}
                      : deadline == kNoDeadline ? kNoDeadline
                                                : deadline + 1};
    while (!sh.queue.empty() && sh.queue.next_time() <= deadline) {
      Event ev = sh.queue.pop();
      sh.now = ev.at;
      ++sh.processed;
      detail::t_exec.lane = ev.exec_lane;
      if (ev.handle) {
        ev.handle.resume();
      } else {
        ev.fn();
      }
    }
    detail::t_exec = saved;
    if (prof_) {
      const std::uint64_t ns = ns_since(w0);
      sh.prof.dispatch_ns += ns;
      sh.prof.wall_ns += ns;
      ++sh.prof.epochs;
      ++prof_runs_;
    }
    unified_now_ = std::max(unified_now_, sh.now);
    if (sh.queue.empty()) return false;
    unified_now_ = std::max(unified_now_, deadline);
    return true;
  }
  const bool remaining = run_parallel(deadline);
  if (remaining) unified_now_ = std::max(unified_now_, deadline);
  return remaining;
}

std::uint64_t Engine::run_events(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events) {
    Shard* best = nullptr;
    std::uint32_t best_idx = 0;
    std::pair<Time, std::uint64_t> best_key{};
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      Shard& sh = *shards_[s];
      if (sh.queue.empty()) continue;
      const auto key = sh.queue.peek();
      if (best == nullptr || key < best_key) {
        best = &sh;
        best_idx = s;
        best_key = key;
      }
    }
    if (best == nullptr) break;
    Event ev = best->queue.pop();
    dispatch(*best, best_idx, ev);
    ++n;
  }
  Time mx = unified_now_;
  for (const auto& sh : shards_) mx = std::max(mx, sh->now);
  unified_now_ = mx;
  return n;
}

void Engine::merge_outboxes() {
  for (auto& src : shards_) {
    for (std::uint32_t d = 0; d < nshards_; ++d) {
      auto& box = src->outbox[d];
      if (box.empty()) continue;
      // Safe to write another shard's profile row here: workers are
      // parked at the barrier whenever the main thread merges.
      shards_[d]->prof.merged_events += box.size();
      shards_[d]->queue.push_all(box);
    }
  }
}

void Engine::run_shard_epoch(std::uint32_t shard_idx, Time end) {
  Shard& sh = *shards_[shard_idx];
  ProfClock::time_point w0;
  if (prof_) w0 = ProfClock::now();
  const detail::ExecContext saved = detail::t_exec;
  // Inline grants are bounded by the epoch: past `end` another shard may
  // still produce an earlier cross-shard event, so the wakeup must go
  // through the queue and the next barrier.
  detail::t_exec = {this, shard_idx, 0, inline_wakeups_ ? end : 0};
  while (!sh.queue.empty() && sh.queue.next_time() < end) {
    Event ev = sh.queue.pop();
    sh.now = ev.at;
    ++sh.processed;
    detail::t_exec.lane = ev.exec_lane;
    if (ev.handle) {
      ev.handle.resume();
    } else {
      ev.fn();
    }
  }
  detail::t_exec = saved;
  if (prof_) sh.prof.dispatch_ns += ns_since(w0);
}

// --- demand-driven horizon (PR 10) -------------------------------------------
//
// The static CMB bound recomputed at every barrier is worst-case: it
// assumes every peer might send the instant its next event runs. On flat
// fabrics with fine-grained traffic that yields sub-10-event epochs and
// barrier park dominates the profile. The demand-driven run phase keeps a
// round going PAST the static bound by reading what the peers are
// actually doing:
//
//   * Every engaged shard continuously publishes (release, quantum-gated)
//     a monotone floor on its next dispatch time through next_time: at a
//     dispatch, the event's timestamp; stalled or drained, its own
//     conservative bound (every future dispatch — a queued event or an
//     arrival still in flight toward it — is provably >= that bound, by
//     the induction below).
//   * Cross-shard events travel through SPSC channels the destination
//     pulls mid-round. refresh_horizon reads a peer's clock (acquire)
//     BEFORE pulling its channel: pushes made before that publication
//     are then visible in the pull, and any later push carries
//     at >= clock + lookahead(s, d) by the per-pair latency floor
//     (asserted on every push).
//   * The live bound for shard d is then
//         min over peers s of (clock(s) + reach(s, d)),
//     plus d's own next + reach(d, d) (its own events can bounce off an
//     idle peer and return). reach is the min-plus closure, so a chain
//     s -> k -> d relayed by k is covered by s's term: k cannot dispatch
//     the relay before the in-flight event's timestamp (k's own bound,
//     hence k's published clock, never passes a pending arrival), and
//     the closure prices the remaining hops.
//
// Induction (why no pulled event ever lands in d's past): order the
// refreshes r_0 < r_1 < ...; d's position during span i is < end_i. A
// push visible at r_{i+1} but not r_i was made after r_i's clock read of
// its producer, so its timestamp is >= clock_i(s) + lat(s, d) >= end_i —
// strictly ahead of everything d ran in span i. Bounds only widen
// (clocks are monotone), so earlier spans are covered a fortiori, and
// the round's opening span is bounded by the static CMB bound computed
// from the barrier-published exact next-times.
//
// Quiescence: a drained shard publishes its refreshed bound — anchored by
// the ACTIVE peers' clocks — so an idle pair's term chases the sender's
// clock instead of pinning it one lookahead ahead; with no deadline and
// no traffic the term saturates and drops out entirely (counted in
// quiescent_terms). No rollback, no speculation: the bound is always
// conservative, so output stays byte-identical at every shard count and
// with RDMASEM_HORIZON_LEGACY={0,1} (tests/horizon_test.cpp).

void Engine::channel_pull(Shard& dst, EventChannel& ch) {
  const std::uint64_t h = ch.head.load(std::memory_order_relaxed);
  const std::uint64_t t = ch.tail.load(std::memory_order_acquire);
  if (t == h) return;
  for (std::uint64_t i = h; i != t; ++i)
    dst.queue.push(std::move(ch.buf[i & (EventChannel::kCap - 1)]));
  ch.head.store(t, std::memory_order_release);
  dst.prof.merged_events += t - h;
}

Time Engine::refresh_horizon(std::uint32_t shard_idx, Time cap) {
  Shard& sh = *shards_[shard_idx];
  const std::size_t n = nshards_;
  Time end = kNoDeadline;
  std::uint64_t quiescent = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (s == shard_idx) continue;
    Shard& src = *shards_[s];
    // Clock FIRST (acquire), channel second — the ordering the soundness
    // argument above rests on.
    const Time clk = src.live_clock.load(std::memory_order_acquire);
    channel_pull(sh, src.chan[shard_idx]);
    if (clk == kNoDeadline) {
      ++quiescent;  // quiescent pair: the term drops out of the bound
      continue;
    }
    const Duration reach =
        shard_reach_[static_cast<std::size_t>(s) * n + shard_idx];
    const Time bound = clk + reach < clk ? kNoDeadline : clk + reach;
    end = std::min(end, bound);
  }
  // Own-diagonal term, computed AFTER the pulls so it sees fresh
  // deliveries: the cheapest cycle our own next event could take through
  // a peer and back.
  const Time own = sh.queue.next_time_or(kNoDeadline);
  if (own != kNoDeadline) {
    const Duration rt =
        shard_reach_[static_cast<std::size_t>(shard_idx) * n + shard_idx];
    const Time bound = own + rt < own ? kNoDeadline : own + rt;
    end = std::min(end, bound);
  }
  sh.prof.quiescent_terms += quiescent;
  return std::min(end, cap);
}

void Engine::run_shard_demand(std::uint32_t shard_idx, Time end, Time cap) {
  Shard& sh = *shards_[shard_idx];
  const detail::ExecContext saved = detail::t_exec;
  detail::t_exec = {this, shard_idx, 0, inline_wakeups_ ? end : 0};
  const Duration quantum = pub_quantum_;
  // Opening clock: the earliest this shard can still dispatch — its own
  // next event, or (queue empty) its static bound, below which nothing
  // can arrive. Monotone over the reset-time sh.now publication.
  sh.live_clock.store(std::min(sh.queue.next_time_or(kNoDeadline), end),
                      std::memory_order_release);
  // Budget on CONSECUTIVE non-dispatching iterations (stalled polls or
  // relay-mode widenings with an empty queue). Dispatch progress resets
  // it; exhaustion re-splits the round at the barrier, which also bounds
  // the drain tail — with every queue empty the mutually-chasing bounds
  // would otherwise escalate forever, and only the barrier's exact
  // publication detects global termination. stall_polls additionally
  // counts polls where the bound did not even WIDEN: when the peers'
  // clocks are flat there is nothing to fuse, so give up long before the
  // full budget instead of spinning a core-starved host's quantum away.
  std::uint64_t idle_iters = 0;
  std::uint64_t stall_polls = 0;
  for (;;) {
    ProfClock::time_point d0;
    if (prof_) d0 = ProfClock::now();
    const std::uint64_t before = sh.processed;
    while (!sh.queue.empty() && sh.queue.next_time() < end) {
      Event ev = sh.queue.pop();
      if (ev.at >= sh.pub_mark && ev.at <= sh.pub_freeze) {
        // Live clock publication (monotone: dispatch timestamps only
        // grow within a run phase, and the freeze caps it once a spill
        // made later sends invisible).
        sh.live_clock.store(ev.at, std::memory_order_release);
        sh.pub_mark = ev.at + quantum;
      }
      sh.now = ev.at;
      ++sh.processed;
      detail::t_exec.lane = ev.exec_lane;
      if (ev.handle) {
        ev.handle.resume();
      } else {
        ev.fn();
      }
    }
    if (prof_) sh.prof.dispatch_ns += ns_since(d0);
    if (sh.processed != before) {
      idle_iters = 0;
      stall_polls = 0;
    } else if (++idle_iters > horizon_poll_budget_) {
      if (!sh.queue.empty()) ++sh.prof.resplit_epochs;
      break;  // no peer progress within the budget: re-split
    }
    if (end >= cap) break;  // deadline-capped (or fully unbounded) round
    const Time live = refresh_horizon(shard_idx, cap);
    if (live > end) {
      // The bound widened: fuse what would have been another barrier
      // round into this one.
      ++sh.prof.fused_epochs;
      if (live != kNoDeadline) sh.prof.horizon_widening_ps += live - end;
      end = live;
      stall_polls = 0;
      detail::t_exec.inline_until = inline_wakeups_ ? end : 0;
      continue;
    }
    // live == end (the bound is monotone). Deliveries may still have
    // landed inside it — run them; otherwise we are stalled.
    if (!sh.queue.empty() && sh.queue.next_time() < end) continue;
    if (sh.queue.empty() && live == kNoDeadline) break;  // global drain
    if (++stall_polls > 64) {
      if (!sh.queue.empty()) ++sh.prof.resplit_epochs;
      break;  // peers' clocks are flat: nothing left to fuse this round
    }
    // Stalled: publish our bound as the clock floor so peers can extend
    // past us, then back off before re-polling the peer clocks — a short
    // relax burst first (peers on their own cores respond within it),
    // then yield so a core-starved host can actually schedule the peer
    // whose clock we are waiting on. Sound: every future dispatch here —
    // queued (none below end) or a still-invisible arrival (lands beyond
    // the bound) — is >= the floor.
    sh.live_clock.store(std::min(end, sh.pub_freeze),
                        std::memory_order_release);
    ProfClock::time_point p0;
    if (prof_) p0 = ProfClock::now();
    if (stall_polls < 8) {
      for (std::uint32_t b = 0; b < 128; ++b) cpu_relax();
    } else {
      std::this_thread::yield();
    }
    if (prof_) sh.prof.barrier_park_ns += ns_since(p0);
  }
  detail::t_exec = saved;
}

void Engine::worker_main(std::uint32_t shard_idx, std::uint64_t base_gen) {
  // The baseline generation is captured by the main thread BEFORE the
  // first epoch is released — reading gen_ here instead would race with
  // that release and could skip the first epoch (deadlocking the barrier).
  Shard& sh = *shards_[shard_idx];
  const bool prof = prof_;
  ProfClock::time_point wall0;
  if (prof) wall0 = ProfClock::now();
  std::uint64_t seen = base_gen;
  for (;;) {
    if (prof) {
      const ProfClock::time_point p0 = ProfClock::now();
      spin_until(
          [&] { return gen_.load(std::memory_order_acquire) != seen; });
      sh.prof.barrier_park_ns += ns_since(p0);
    } else {
      spin_until(
          [&] { return gen_.load(std::memory_order_acquire) != seen; });
    }
    seen = gen_.load(std::memory_order_acquire);
    if (stop_) break;
    run_shard_epoch(shard_idx, epoch_end_);
    if (prof) ++sh.prof.epochs;
    arrived_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (prof) sh.prof.wall_ns += ns_since(wall0);
}

bool Engine::run_parallel(Time deadline) {
  RDMASEM_CHECK_MSG(lookahead_ > 0,
                    "parallel run requires set_lookahead() > 0");
  return epoch_legacy_ ? run_parallel_legacy(deadline)
                       : run_parallel_epochs(deadline);
}

// --- new protocol: SPMD sense-reversing epochs -------------------------------
//
// Every thread (the main thread acts as shard 0's worker) runs the same
// loop: pull own inboxes, publish own next event time, barrier, compute
// the identical per-shard horizons from the published times, run own
// epoch, barrier. Two barrier crossings per epoch — the same count as the
// legacy protocol — but the merge and the horizon computation run on all
// threads concurrently instead of serializing on the main thread, and the
// per-destination CMB bound
//   end(d) = min over all s of (next(s) + shard_reach(s, d))
// (shard_reach = min >=1-hop chain cost, diagonal = min round trip) is
// never narrower than the legacy global epoch (t + min lookahead) and
// much wider on non-uniform topologies, cutting barrier frequency — the
// dominant cost in the pre-PR-9 shard-4 profile (docs/PERF.md).

void Engine::barrier_wait(std::uint64_t& phase, ShardProfile* prof) {
  const std::uint64_t p = phase;
  phase = p + 1;
  if (barrier_.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      nshards_) {
    // Last arriver: reset the count for the next crossing, then flip the
    // sense. The release on `phase`, paired with the spinners' acquire,
    // publishes every pre-barrier write (the fetch_add chain already
    // ordered the arrivers among themselves).
    barrier_.arrived.store(0, std::memory_order_relaxed);
    barrier_.phase.store(p + 1, std::memory_order_release);
    return;
  }
  if (prof != nullptr) {
    const ProfClock::time_point p0 = ProfClock::now();
    spin_until(
        [&] { return barrier_.phase.load(std::memory_order_acquire) != p; });
    prof->barrier_park_ns += ns_since(p0);
  } else {
    spin_until(
        [&] { return barrier_.phase.load(std::memory_order_acquire) != p; });
  }
}

void Engine::drain_inboxes(std::uint32_t shard_idx) {
  Shard& sh = *shards_[shard_idx];
  for (std::uint32_t s = 0; s < nshards_; ++s) {
    if (s == shard_idx) continue;
    Shard& src = *shards_[s];
    // Channel leftovers first (anything not pulled mid-round), then the
    // spill row. Producers are past barrier B, so both are stable.
    if (src.chan) channel_pull(sh, src.chan[shard_idx]);
    auto& box = src.outbox[shard_idx];
    if (box.empty()) continue;
    sh.prof.merged_events += box.size();
    sh.queue.push_all(box);
  }
}

void Engine::epoch_loop(std::uint32_t shard_idx, Time deadline,
                        std::uint64_t base_phase) {
  Shard& sh = *shards_[shard_idx];
  const bool prof = prof_;
  ShardProfile* const bp = prof ? &sh.prof : nullptr;
  ProfClock::time_point wall0;
  if (prof) wall0 = ProfClock::now();
  std::uint64_t phase = base_phase;
  for (;;) {
    // 1. Pull this shard's inboxes. Every producer is past its epoch
    //    (previous crossing of barrier B), so the rows are stable.
    if (prof) {
      const ProfClock::time_point m0 = ProfClock::now();
      drain_inboxes(shard_idx);
      sh.prof.merge_ns += ns_since(m0);
    } else {
      drain_inboxes(shard_idx);
    }
    // 1b. Reset the per-round publication state (owner-only fields; the
    //     coming barrier orders these against peers' reads) and decide
    //     engagement: the demand-driven phase only pays off when realized
    //     events-per-round is low, so it engages when the sliding-window
    //     average drops under the fuse threshold (always on an empty
    //     window — the first rounds of a run are where fine-grained
    //     workloads starve).
    sh.pub_freeze = kNoDeadline;
    sh.pub_mark = 0;
    sh.publishing =
        !horizon_legacy_ &&
        (sh.win_count == 0 || sh.win_sum < horizon_fuse_events_ * sh.win_count);
    // 2. Publish the post-merge next event time (relaxed: the barrier's
    //    acq/rel pair publishes it). next_time stays UNTOUCHED until the
    //    next round's step 2, so every shard's step-3 bounds come from
    //    one consistent snapshot. The live clock starts at the same
    //    value for a static shard (exact: an empty one provably sends
    //    nothing this round, so peers may drop its term entirely), but
    //    an ENGAGED shard starts at sh.now even when drained — it can
    //    pull and relay mid-round, so it may never claim quiescence.
    const Time nt = sh.queue.next_time_or(kNoDeadline);
    sh.next_time.store(nt, std::memory_order_relaxed);
    sh.live_clock.store(sh.publishing ? sh.now : nt,
                        std::memory_order_relaxed);
    barrier_wait(phase, bp);  // barrier A: all next-times published
    // 3. Redundantly compute the horizons — every thread reads the same
    //    published times and lands on identical values, so nothing needs
    //    to be written back to shared state.
    Time t = kNoDeadline;
    for (std::uint32_t s = 0; s < nshards_; ++s)
      t = std::min(t,
                   shards_[s]->next_time.load(std::memory_order_relaxed));
    if (t == kNoDeadline || (deadline != kNoDeadline && t > deadline))
      break;  // unanimous: all threads break on the same round
    // The horizon uses shard_reach_, not the direct edge, and the source
    // loop INCLUDES d itself: a chain of sends starting from any queued
    // event — even one of d's own, bouncing off a momentarily-empty
    // neighbour — can land back at d, and costs at least
    // next(source) + reach(source, d). With the direct-edge formula a
    // shard whose peers all drained would run unbounded, send, and then
    // receive the replies in its own virtual past.
    for (std::uint32_t d = 0; d < nshards_; ++d) {
      Time end = kNoDeadline;
      for (std::uint32_t s = 0; s < nshards_; ++s) {
        const Time snt = shards_[s]->next_time.load(std::memory_order_relaxed);
        if (snt == kNoDeadline) continue;
        const Duration lat =
            shard_reach_[static_cast<std::size_t>(s) * nshards_ + d];
        const Time bound = snt + lat < snt ? kNoDeadline : snt + lat;
        end = std::min(end, bound);  // (saturating add above)
      }
      if (deadline != kNoDeadline) end = std::min(end, deadline + 1);
      sh.epoch_ends[d] = end;
    }
    const Time own_end = sh.epoch_ends[shard_idx];
    if (own_end != kNoDeadline) sh.prof.lookahead_ps += own_end - t;
    // 4. Run this shard's epoch; cross-shard pushes land in own channels
    //    (or outbox rows on spill / legacy), checked against epoch_ends
    //    (identical on every thread). An engaged shard keeps extending
    //    its bound past the static horizon from the peers' live clocks;
    //    mixing is safe because a non-publishing peer's next_time holds
    //    the exact barrier-A value, which IS its static term.
    if (sh.publishing) {
      const Time cap =
          deadline == kNoDeadline ? kNoDeadline : deadline + 1;
      run_shard_demand(shard_idx, own_end, cap);
    } else {
      run_shard_epoch(shard_idx, own_end);
    }
    if (prof) ++sh.prof.epochs;  // one barrier round == one epoch
    // 4b. Fold this round's realized event count into the sliding window
    //     that drives engagement.
    const std::uint64_t ran = sh.processed - sh.round_base;
    sh.round_base = sh.processed;
    sh.win_sum += ran - sh.win_events[sh.win_pos];
    sh.win_events[sh.win_pos] = ran;
    sh.win_pos = (sh.win_pos + 1) & 7u;
    if (sh.win_count < 8) ++sh.win_count;
    barrier_wait(phase, bp);  // barrier B: all channels + spill rows stable
  }
  if (prof) sh.prof.wall_ns += ns_since(wall0);
}

bool Engine::run_parallel_epochs(Time deadline) {
  parallel_running_ = true;
  // Resolve the publication quantum once per run: an explicit knob wins,
  // otherwise half the global lookahead — fine enough that a peer's term
  // tracks within half an epoch of its true clock, coarse enough that
  // publication stays off the dispatch fast path.
  pub_quantum_ = horizon_quantum_ != 0
                     ? horizon_quantum_
                     : std::max<Duration>(lookahead_ / 2, 1);
  for (auto& sh : shards_) {
    sh->epoch_ends.assign(nshards_, 0);
    sh->next_time.store(0, std::memory_order_relaxed);
    sh->live_clock.store(0, std::memory_order_relaxed);
    sh->round_base = sh->processed;
  }
  // The base phase is captured before any thread starts so every
  // participant enters the first barrier with the same sense.
  const std::uint64_t base_phase =
      barrier_.phase.load(std::memory_order_relaxed);
  std::vector<std::thread> workers;
  workers.reserve(nshards_ - 1);
  for (std::uint32_t s = 1; s < nshards_; ++s)
    workers.emplace_back(&Engine::epoch_loop, this, s, deadline, base_phase);
  epoch_loop(0, deadline, base_phase);
  for (auto& w : workers) w.join();
  parallel_running_ = false;
  if (prof_) ++prof_runs_;

  Time mx = unified_now_;
  for (const auto& sh : shards_) mx = std::max(mx, sh->now);
  unified_now_ = mx;
  for (const auto& sh : shards_)
    if (!sh->queue.empty()) return true;
  return false;
}

// --- legacy protocol (RDMASEM_EPOCH_LEGACY=1) --------------------------------

bool Engine::run_parallel_legacy(Time deadline) {
  stop_ = false;
  parallel_running_ = true;
  for (auto& sh : shards_) sh->epoch_ends.assign(nshards_, 0);
  std::vector<std::thread> workers;
  workers.reserve(nshards_ - 1);
  const std::uint64_t base_gen = gen_.load(std::memory_order_relaxed);
  for (std::uint32_t s = 1; s < nshards_; ++s)
    workers.emplace_back(&Engine::worker_main, this, s, base_gen);

  const bool prof = prof_;
  Shard& s0 = *shards_[0];
  ProfClock::time_point wall0;
  if (prof) wall0 = ProfClock::now();
  for (;;) {
    // Workers are parked here (either not yet released, or arrived at the
    // barrier), so the main thread owns every queue and outbox.
    if (prof) {
      const ProfClock::time_point m0 = ProfClock::now();
      merge_outboxes();
      s0.prof.merge_ns += ns_since(m0);
    } else {
      merge_outboxes();
    }
    Time t = kNoDeadline;
    for (auto& sh : shards_)
      if (!sh->queue.empty()) t = std::min(t, sh->queue.next_time());
    if (t == kNoDeadline || (deadline != kNoDeadline && t > deadline)) break;
    Time end = t + lookahead_;
    if (end < t) end = kNoDeadline;  // saturate
    if (deadline != kNoDeadline) end = std::min(end, deadline + 1);
    epoch_end_ = end;
    // The global epoch is the bound for every (src, dst) pair; published
    // to the workers' private epoch_ends copies through gen_'s release.
    for (auto& sh : shards_) {
      std::fill(sh->epoch_ends.begin(), sh->epoch_ends.end(), end);
      if (end != kNoDeadline) sh->prof.lookahead_ps += end - t;
    }
    arrived_.store(0, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    run_shard_epoch(0, epoch_end_);
    if (prof) ++s0.prof.epochs;
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    if (prof) {
      const ProfClock::time_point p0 = ProfClock::now();
      spin_until([&] {
        return arrived_.load(std::memory_order_acquire) == nshards_;
      });
      s0.prof.barrier_park_ns += ns_since(p0);
    } else {
      spin_until([&] {
        return arrived_.load(std::memory_order_acquire) == nshards_;
      });
    }
  }

  if (prof) {
    s0.prof.wall_ns += ns_since(wall0);
    ++prof_runs_;
  }
  stop_ = true;
  gen_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers) w.join();
  parallel_running_ = false;

  Time mx = unified_now_;
  for (const auto& sh : shards_) mx = std::max(mx, sh->now);
  unified_now_ = mx;
  for (const auto& sh : shards_)
    if (!sh->queue.empty()) return true;
  return false;
}

EngineProfile Engine::drain_profile() {
  EngineProfile p;
  p.enabled = prof_;
  p.shards = nshards_;
  p.runs = prof_runs_;
  p.shard.reserve(nshards_);
  for (auto& sh : shards_) {
    ShardProfile row = sh->prof;
    row.events = sh->processed - sh->prof_events_base;
    row.max_queue_depth = sh->queue.max_size();
    p.shard.push_back(row);
    // Start a new profiling window.
    sh->prof = ShardProfile{};
    sh->prof_events_base = sh->processed;
    sh->queue.reset_max_size();
  }
  prof_runs_ = 0;
  return p;
}

}  // namespace rdmasem::sim
