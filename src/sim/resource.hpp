#pragma once

#include <coroutine>
#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

// Resource — a k-server FIFO service station, the workhorse of the cost
// model. RNIC execution units, DMA engines, PCIe links, network links,
// memory channels, the RNIC atomic unit and RPC server cores are all
// Resources. Contention (queueing delay) emerges from overlapping use.
//
//   co_await res.use(service_time);      // occupy one server for that long
//
// resumes the caller when service completes. Because grants are FIFO in
// request order and servers are interchangeable, the occupancy of each
// server can be tracked with a free-time heap instead of explicit queues —
// O(log k) per request, no events while waiting.
//
// Utilization statistics (busy time, request count) are tracked for the
// bench harness.
class Resource {
 public:
  Resource(Engine& engine, std::uint32_t servers, std::string name = {});

  struct UseAwaiter {
    Resource& res;
    Duration service;
    // Fixed post-service latency fused onto the same suspension (use_then):
    // pure delay, not server occupancy — busy time counts `service` only.
    Duration extra;
    Time completion = 0;
    // The server slot is reserved here, before ready/suspend branches, so
    // FIFO grant order is identical on both paths. When the resource is
    // idle and the grant would be the next dispatch anyway, the engine
    // advances the clock inline and the coroutine never suspends.
    bool await_ready() {
      completion = res.reserve(service) + extra;
      return res.engine_.try_inline_advance(completion);
    }
    void await_suspend(std::coroutine_handle<> h) {
      res.engine_.resume_at(completion, h);
    }
    // Returns the completion timestamp (== now() at resume).
    Time await_resume() const noexcept { return completion; }
  };

  // Occupies one server for `service` starting no earlier than now().
  UseAwaiter use(Duration service) { return UseAwaiter{*this, service, 0}; }

  // use() plus a trailing fixed latency, fused into one suspension:
  // `co_await res.use_then(s, e)` resumes at reserve(s) + e, exactly when
  // `co_await res.use(s); co_await delay(e)` would, with one suspension
  // instead of two. Only valid where no semantic interleaving point
  // (fault/state check, trace stamp) sits between service end and the
  // extra delay. Never fuse a LEADING delay into a use — reserving before
  // the delay would jump the FIFO queue.
  UseAwaiter use_then(Duration service, Duration extra) {
    return UseAwaiter{*this, service, extra};
  }

  // Non-coroutine form: reserves a server slot and returns the completion
  // time. Callers that drive their own event scheduling (the RNIC pipeline)
  // use this directly.
  Time reserve(Duration service);

  // Completion time if a request of `service` were issued now, without
  // reserving. Used by admission heuristics.
  Time peek(Duration service) const;

  std::uint32_t servers() const { return servers_; }
  std::uint64_t requests() const { return requests_; }
  Duration busy_time() const { return busy_; }
  // Fraction of [0, now] this resource spent busy (averaged over servers).
  double utilization() const;
  const std::string& name() const { return name_; }
  void reset_stats();

 private:
  Engine& engine_;
  std::uint32_t servers_;
  std::string name_;
  // Min-heap of per-server free times (size == servers_).
  std::vector<Time> free_at_;
  std::uint64_t requests_ = 0;
  Duration busy_ = 0;
};

}  // namespace rdmasem::sim
