#pragma once

#include <coroutine>
#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace rdmasem::sim {

// The outcome of one resource grant: when the caller resumes and how long
// the request sat queued before a server slot opened. `wait` is the
// request->slot-grant interval; service starts at grant and `at` is
// grant + service (+ any fused use_then extra). Both are exact picosecond
// values derived from the same reservation arithmetic the clock uses, so
//   wait + service (+ extra) == at - request_time
// holds identically — the reconciliation invariant the observability
// layer's critical-path attribution builds on (docs/OBSERVABILITY.md).
struct Grant {
  Time at = 0;        // completion timestamp (== now() at resume)
  Duration wait = 0;  // queueing delay: request -> service start
};

// Resource — a k-server FIFO service station, the workhorse of the cost
// model. RNIC execution units, DMA engines, PCIe links, network links,
// memory channels, the RNIC atomic unit and RPC server cores are all
// Resources. Contention (queueing delay) emerges from overlapping use.
//
//   co_await res.use(service_time);      // occupy one server for that long
//
// resumes the caller when service completes. Because grants are FIFO in
// request order and servers are interchangeable, the occupancy of each
// server can be tracked with a free-time heap instead of explicit queues —
// O(log k) per request, no events while waiting.
//
// Utilization statistics (busy time, request count) plus queueing-delay
// attribution (total wait, waited-request count, a log2 wait histogram)
// are tracked for the bench harness and the obs layer. The wait split is
// pure accounting on numbers the reservation already computes, so it can
// never perturb the timeline (the zero-cost contract).
class Resource {
 public:
  // attr_id() value meaning "no observability id assigned".
  static constexpr std::uint16_t kNoAttrId = 0xffff;

  Resource(Engine& engine, std::uint32_t servers, std::string name = {});

  struct UseAwaiter {
    Resource& res;
    Duration service;
    // Fixed post-service latency fused onto the same suspension (use_then):
    // pure delay, not server occupancy — busy time counts `service` only.
    Duration extra;
    Grant grant{};
    // The server slot is reserved here, before ready/suspend branches, so
    // FIFO grant order is identical on both paths. When the resource is
    // idle and the grant would be the next dispatch anyway, the engine
    // advances the clock inline and the coroutine never suspends.
    bool await_ready() {
      grant = res.reserve_grant(service);
      grant.at += extra;
      return res.engine_.try_inline_advance(grant.at);
    }
    void await_suspend(std::coroutine_handle<> h) {
      res.engine_.resume_at(grant.at, h);
    }
    // Returns the grant: completion timestamp (== now() at resume) plus
    // the queueing delay the request paid. Callers that only need the
    // delay side effect simply discard it.
    Grant await_resume() const noexcept { return grant; }
  };

  // Occupies one server for `service` starting no earlier than now().
  UseAwaiter use(Duration service) { return UseAwaiter{*this, service, 0}; }

  // use() plus a trailing fixed latency, fused into one suspension:
  // `co_await res.use_then(s, e)` resumes at reserve(s) + e, exactly when
  // `co_await res.use(s); co_await delay(e)` would, with one suspension
  // instead of two. Only valid where no semantic interleaving point
  // (fault/state check, trace stamp) sits between service end and the
  // extra delay. Never fuse a LEADING delay into a use — reserving before
  // the delay would jump the FIFO queue.
  UseAwaiter use_then(Duration service, Duration extra) {
    return UseAwaiter{*this, service, extra};
  }

  // Non-coroutine form: reserves a server slot and returns the completion
  // time plus the queueing delay. Callers that drive their own event
  // scheduling (the RNIC pipeline) use this directly.
  Grant reserve_grant(Duration service);
  Time reserve(Duration service) { return reserve_grant(service).at; }

  // Completion time if a request of `service` were issued now, without
  // reserving. Used by admission heuristics.
  Time peek(Duration service) const;

  std::uint32_t servers() const { return servers_; }
  std::uint64_t requests() const { return requests_; }
  Duration busy_time() const { return busy_; }
  // Queueing-delay attribution: total request->grant wait, how many
  // requests waited at all, and the distribution of non-zero waits in
  // nanoseconds (zero waits would drown the histogram; the split between
  // waited_requests() and requests() carries that mass instead).
  Duration wait_time() const { return wait_; }
  std::uint64_t waited_requests() const { return waited_; }
  const util::Log2Histogram& wait_hist() const { return wait_hist_; }
  // Fraction of [0, now] this resource spent busy (averaged over servers).
  double utilization() const;
  const std::string& name() const { return name_; }
  void reset_stats();

  // Opaque per-resource id the observability layer assigns (the Tracer's
  // interned name index) so per-WR attribution records stay 16 bits wide.
  // sim knows nothing about what the id means — the layering stays
  // util -> sim -> obs.
  std::uint16_t attr_id() const { return attr_id_; }
  void set_attr_id(std::uint16_t id) { attr_id_ = id; }

 private:
  Engine& engine_;
  std::uint32_t servers_;
  std::string name_;
  // Min-heap of per-server free times (size == servers_).
  std::vector<Time> free_at_;
  std::uint64_t requests_ = 0;
  Duration busy_ = 0;
  Duration wait_ = 0;
  std::uint64_t waited_ = 0;
  util::Log2Histogram wait_hist_;
  std::uint16_t attr_id_ = kNoAttrId;
};

}  // namespace rdmasem::sim
