#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>

#include "sim/frame_pool.hpp"
#include "util/assert.hpp"
#include "util/ptr_set.hpp"

namespace rdmasem::sim {

// TaskT<T> — a lazily-started coroutine used for all simulated activities
// (clients, executors, NIC pipelines). Composition rules:
//
//   * `co_await child_task` runs the child to completion on the virtual
//     clock and yields its value; the parent resumes where the child left
//     the clock.
//   * `engine.spawn(std::move(task))` detaches a root task; the engine
//     destroys its frame on completion.
//
// A TaskT owns its coroutine frame (RAII) until awaited or spawned.
// Exceptions thrown inside a task propagate to the awaiter; an exception
// escaping a detached root task terminates the process (a simulation bug).
template <typename T>
class TaskT;

// Engine-side registry of live detached coroutine frames, so frames still
// suspended at engine teardown can be reclaimed. Mutex-guarded because a
// frame spawned on one shard can finish on another after a fabric hop
// (parallel runs); the engine keeps one registry per shard so the lock is
// uncontended in the common same-shard case. Backed by a flat open-
// addressing PtrSet: spawn/finish is once per work request, and a node-
// based set would put one heap allocation on that path.
struct DetachedRegistry {
  std::mutex mu;
  util::PtrSet frames;

  void insert(void* p) {
    std::lock_guard<std::mutex> lock(mu);
    frames.insert(p);
  }
  void erase(void* p) {
    std::lock_guard<std::mutex> lock(mu);
    frames.erase(p);
  }
};

namespace detail {

template <typename T>
struct PromiseBase;

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename P>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
    auto& p = h.promise();
    const std::coroutine_handle<> cont = p.continuation;
    if (p.detached) {
      if (p.exception) std::terminate();  // bug in a detached simulation task
      if (p.detached_registry) p.detached_registry->erase(h.address());
      h.destroy();
      return cont ? cont : std::noop_coroutine();
    }
    p.finished = true;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool detached = false;
  bool finished = false;
  // When detached via Engine::spawn, the engine's registry of live frames
  // (so still-suspended tasks can be reclaimed when the engine dies).
  DetachedRegistry* detached_registry = nullptr;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }

  // Coroutine frames are recycled through the size-classed FramePool: the
  // per-WR pipeline creates/destroys one frame per work request, and a
  // same-coroutine frame is a same-size frame. Only the sized delete is
  // declared so the class is always known at free time.
  static void* operator new(std::size_t bytes) {
    return FramePool::allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FramePool::deallocate(p, bytes);
  }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] TaskT {
 public:
  struct promise_type : detail::PromiseBase<T> {
    T value{};
    TaskT get_return_object() {
      return TaskT(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) { value = std::forward<U>(v); }
  };

  TaskT() = default;
  explicit TaskT(std::coroutine_handle<promise_type> h) : h_(h) {}
  TaskT(TaskT&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  TaskT& operator=(TaskT&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  TaskT(const TaskT&) = delete;
  TaskT& operator=(const TaskT&) = delete;
  ~TaskT() { destroy(); }

  bool valid() const { return h_ != nullptr; }
  bool done() const { return h_ && h_.promise().finished; }

  // Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (h.promise().exception)
          std::rethrow_exception(h.promise().exception);
        return std::move(h.promise().value);
      }
    };
    RDMASEM_CHECK_MSG(h_ != nullptr, "awaiting an empty task");
    return Awaiter{h_};
  }

  // Used by Engine::spawn: marks detached and releases ownership.
  std::coroutine_handle<promise_type> release_detached(
      DetachedRegistry* registry) {
    RDMASEM_CHECK(h_ != nullptr);
    h_.promise().detached = true;
    h_.promise().detached_registry = registry;
    if (registry) registry->insert(h_.address());
    return std::exchange(h_, nullptr);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

template <>
class [[nodiscard]] TaskT<void> {
 public:
  struct promise_type : detail::PromiseBase<void> {
    TaskT get_return_object() {
      return TaskT(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  TaskT() = default;
  explicit TaskT(std::coroutine_handle<promise_type> h) : h_(h) {}
  TaskT(TaskT&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  TaskT& operator=(TaskT&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  TaskT(const TaskT&) = delete;
  TaskT& operator=(const TaskT&) = delete;
  ~TaskT() { destroy(); }

  bool valid() const { return h_ != nullptr; }
  bool done() const { return h_ && h_.promise().finished; }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().exception)
          std::rethrow_exception(h.promise().exception);
      }
    };
    RDMASEM_CHECK_MSG(h_ != nullptr, "awaiting an empty task");
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> release_detached(
      DetachedRegistry* registry) {
    RDMASEM_CHECK(h_ != nullptr);
    h_.promise().detached = true;
    h_.promise().detached_registry = registry;
    if (registry) registry->insert(h_.address());
    return std::exchange(h_, nullptr);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

using Task = TaskT<void>;

}  // namespace rdmasem::sim
