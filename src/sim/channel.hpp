#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

// Channel<T> — an unbounded MPSC/MPMC mailbox between simulated actors.
// push() never blocks; pop() suspends until an item is available. Waiters
// are resumed in FIFO order through the engine queue (never inline), so a
// push never re-enters the consumer's stack.
//
// Used for proxy-socket request/response queues (paper §III-D) and the RPC
// server request ring.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T value) {
    items_.push_back(std::move(value));
    wake_one();
  }

  struct PopAwaiter {
    Channel& ch;
    bool await_ready() noexcept {
      // Only consume immediately if no one is already queued ahead of us.
      return ch.waiters_.empty() && !ch.items_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch.waiters_.push_back({h, current_lane()});
      // If items are available (we suspended only for FIFO fairness),
      // make sure a wake-up is in flight.
      ch.wake_one();
    }
    T await_resume() {
      RDMASEM_CHECK_MSG(!ch.items_.empty(), "channel pop on empty queue");
      T v = std::move(ch.items_.front());
      ch.items_.pop_front();
      return v;
    }
  };

  // Suspends until an item is available, then dequeues it.
  PopAwaiter pop() { return PopAwaiter{*this}; }

  // Non-blocking variant.
  std::optional<T> try_pop() {
    if (items_.empty() || !waiters_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  void wake_one() {
    if (waiters_.empty() || items_.empty()) return;
    if (wake_pending_) return;
    wake_pending_ = true;
    // The wake event runs on the front waiter's lane (stable while a wake
    // is pending: only the wake itself dequeues waiters) so the consumer
    // resumes where it suspended.
    engine_.schedule_on(waiters_.front().lane, engine_.now(), [this] {
      wake_pending_ = false;
      if (waiters_.empty() || items_.empty()) return;
      auto h = waiters_.front().handle;
      waiters_.pop_front();
      h.resume();  // consumes its item in await_resume
      wake_one();  // arm the next waiter if more items remain
    });
  }

  Engine& engine_;
  std::deque<T> items_;
  std::deque<LaneWaiter> waiters_;
  bool wake_pending_ = false;
};

}  // namespace rdmasem::sim
