#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

// OneShotEvent — level-triggered: once set(), all current and future
// waiters proceed immediately. Used for "experiment warm-up done" barriers.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine& engine) : engine_(engine) {}

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_.resume_at(engine_.now(), h);
    waiters_.clear();
  }
  bool is_set() const { return set_; }

  struct Awaiter {
    OneShotEvent& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  Engine& engine_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// CountdownLatch — wait() suspends until count_down() has been called
// `count` times. The standard join point for "spawn N executors, wait for
// all of them".
class CountdownLatch {
 public:
  CountdownLatch(Engine& engine, std::uint64_t count)
      : engine_(engine), remaining_(count) {}

  void count_down() {
    RDMASEM_CHECK_MSG(remaining_ > 0, "latch underflow");
    if (--remaining_ == 0) {
      for (auto h : waiters_) engine_.resume_at(engine_.now(), h);
      waiters_.clear();
    }
  }
  std::uint64_t remaining() const { return remaining_; }

  struct Awaiter {
    CountdownLatch& latch;
    bool await_ready() const noexcept { return latch.remaining_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      latch.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  Engine& engine_;
  std::uint64_t remaining_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Semaphore — counting semaphore with FIFO waiters; models bounded
// windows (e.g. outstanding-WR credit limits on a QP).
class Semaphore {
 public:
  Semaphore(Engine& engine, std::uint64_t initial)
      : engine_(engine), count_(initial) {}

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() noexcept {
      if (sem.waiters_.empty() && sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return Awaiter{*this}; }

  void release(std::uint64_t n = 1) {
    count_ += n;
    while (!waiters_.empty() && count_ > 0) {
      --count_;
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.resume_at(engine_.now(), h);
    }
  }

  std::uint64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace rdmasem::sim
