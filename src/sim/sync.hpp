#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

// Lane discipline (RDMASEM_SHARDS > 1): these primitives are not locks —
// they are virtual-clock rendezvous points. Each has a HOME lane (the
// lane it was created on) that owns all of its bookkeeping. Signals and
// wait registrations arriving from another lane are routed to the home
// lane as an engine event one (origin -> home) lookahead later — the same
// per-pair minimum latency any signal between those machines pays on the
// fabric (Engine::lookahead(from, to)) — which (a) keeps every
// cross-shard event outside the conservative epoch and (b) makes the
// order in which racing signals land a pure function of virtual time and
// origin-lane keys, i.e. identical for every shard count. Same-lane use
// (the overwhelmingly common case) takes none of these detours and
// behaves exactly like the classic single-threaded primitives.
//
// Cross-lane use therefore requires a nonzero engine lookahead; the
// Cluster always configures one. Waiters are resumed on the lane they
// suspended on.
//
// Latency-floor contract: every cross-lane event these primitives post
// is scheduled at now + Engine::lookahead(origin, home) or later — never
// earlier. The demand-driven horizon (PR 10, sim/engine.cpp) depends on
// exactly this floor to extend epochs from peers' live clocks, and the
// engine asserts it on every cross-shard push
// ("cross-shard event undercuts the per-pair lookahead"), so a primitive
// that shaved the delay would trip the CHECK, not corrupt the order.

// OneShotEvent — level-triggered: once set(), all current and future
// waiters proceed immediately. Used for "experiment warm-up done" barriers.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine& engine)
      : engine_(engine), home_(current_lane()) {}

  void set() {
    if (current_lane() != home_) {
      engine_.schedule_on(home_,
                          engine_.now() +
                              engine_.lookahead(current_lane(), home_),
                          [this] { set_local(); });
      return;
    }
    set_local();
  }
  // Home-lane view; racing cross-lane set()s are still in flight.
  bool is_set() const { return set_; }

  struct Awaiter {
    OneShotEvent& ev;
    bool await_ready() const noexcept {
      return current_lane() == ev.home_ && ev.set_;
    }
    void await_suspend(std::coroutine_handle<> h) { ev.suspend(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  void set_local() {
    if (set_) return;
    set_ = true;
    for (const auto& w : waiters_) wake(w);
    waiters_.clear();
  }
  void wake(const LaneWaiter& w) {
    const Duration d = w.lane == home_ ? 0 : engine_.lookahead(home_, w.lane);
    engine_.resume_on(w.lane, engine_.now() + d, w.handle);
  }
  void suspend(std::coroutine_handle<> h) {
    const std::uint32_t lane = current_lane();
    if (lane == home_) {
      waiters_.push_back({h, lane});
      return;
    }
    engine_.schedule_on(home_,
                        engine_.now() + engine_.lookahead(lane, home_),
                        [this, h, lane] {
                          if (set_)
                            wake({h, lane});
                          else
                            waiters_.push_back({h, lane});
                        });
  }

  Engine& engine_;
  const std::uint32_t home_;
  bool set_ = false;
  std::deque<LaneWaiter> waiters_;
};

// CountdownLatch — wait() suspends until count_down() has been called
// `count` times. The standard join point for "spawn N executors, wait for
// all of them". count_down() is legal from any lane: off-home calls are
// routed to the home lane one lookahead later, so N executors joining a
// driver-owned latch is deterministic whatever the shard layout.
class CountdownLatch {
 public:
  CountdownLatch(Engine& engine, std::uint64_t count)
      : engine_(engine), home_(current_lane()), remaining_(count) {}

  void count_down() {
    if (current_lane() != home_) {
      engine_.schedule_on(home_,
                          engine_.now() +
                              engine_.lookahead(current_lane(), home_),
                          [this] { dec_local(); });
      return;
    }
    dec_local();
  }
  // Exact once the engine is idle (run() drains routed decrements);
  // mid-run it can lag by signals still in flight.
  std::uint64_t remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }

  struct Awaiter {
    CountdownLatch& latch;
    bool await_ready() const noexcept {
      return current_lane() == latch.home_ && latch.remaining() == 0;
    }
    void await_suspend(std::coroutine_handle<> h) { latch.suspend(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  void dec_local() {
    const std::uint64_t prev = remaining_.load(std::memory_order_relaxed);
    RDMASEM_CHECK_MSG(prev > 0, "latch underflow");
    remaining_.store(prev - 1, std::memory_order_relaxed);
    if (prev == 1) {
      for (const auto& w : waiters_) wake(w);
      waiters_.clear();
    }
  }
  void wake(const LaneWaiter& w) {
    const Duration d = w.lane == home_ ? 0 : engine_.lookahead(home_, w.lane);
    engine_.resume_on(w.lane, engine_.now() + d, w.handle);
  }
  void suspend(std::coroutine_handle<> h) {
    const std::uint32_t lane = current_lane();
    if (lane == home_) {
      waiters_.push_back({h, lane});
      return;
    }
    engine_.schedule_on(home_,
                        engine_.now() + engine_.lookahead(lane, home_),
                        [this, h, lane] {
                          if (remaining_.load(std::memory_order_relaxed) == 0)
                            wake({h, lane});
                          else
                            waiters_.push_back({h, lane});
                        });
  }

  Engine& engine_;
  const std::uint32_t home_;
  // Mutated on the home lane only; atomic so the driver may read
  // remaining() after run() without a formal data race.
  std::atomic<std::uint64_t> remaining_;
  std::deque<LaneWaiter> waiters_;
};

// Semaphore — counting semaphore with FIFO waiters; models bounded
// windows (e.g. outstanding-WR credit limits on a QP). Strictly
// single-lane: acquirers and releasers are the same client pipeline, so
// unlike the latch it gets no cross-lane routing. The lane that first
// touches it becomes its home (construction often happens on the driver,
// use on a machine lane).
class Semaphore {
 public:
  Semaphore(Engine& engine, std::uint64_t initial)
      : engine_(engine), count_(initial) {}

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() noexcept {
      sem.bind_lane();
      if (sem.waiters_.empty() && sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem.waiters_.push_back({h, current_lane()});
    }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return Awaiter{*this}; }

  void release(std::uint64_t n = 1) {
    bind_lane();
    count_ += n;
    while (!waiters_.empty() && count_ > 0) {
      --count_;
      const LaneWaiter w = waiters_.front();
      waiters_.pop_front();
      engine_.resume_on(w.lane, engine_.now(), w.handle);
    }
  }

  std::uint64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  void bind_lane() {
    if (home_ == kUnbound) {
      home_ = current_lane();
      return;
    }
    RDMASEM_CHECK_MSG(current_lane() == home_,
                      "Semaphore used from two lanes (single-lane primitive)");
  }

  static constexpr std::uint32_t kUnbound = ~0u;
  Engine& engine_;
  std::uint64_t count_;
  std::uint32_t home_ = kUnbound;
  std::deque<LaneWaiter> waiters_;
};

}  // namespace rdmasem::sim
