#include "sim/frame_pool.hpp"

#include <new>

// Pass frames straight through to the global allocator under ASan so the
// sanitizer tracks every coroutine-frame lifetime (poisoning/quarantine
// would be defeated by recycling).
#if defined(__SANITIZE_ADDRESS__)
#define RDMASEM_FRAME_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RDMASEM_FRAME_POOL_PASSTHROUGH 1
#endif
#endif
#ifndef RDMASEM_FRAME_POOL_PASSTHROUGH
#define RDMASEM_FRAME_POOL_PASSTHROUGH 0
#endif

namespace rdmasem::sim {

namespace {

struct FreeNode {
  FreeNode* next;
};

struct Arena {
  FreeNode* lists[FramePool::kClasses] = {};
  FramePool::Stats stats;

  ~Arena() { release_all(); }

  void release_all() noexcept {
    for (auto*& head : lists) {
      while (head != nullptr) {
        FreeNode* n = head;
        head = n->next;
        ::operator delete(static_cast<void*>(n));
      }
    }
    stats.cached = 0;
  }
};

// Function-local so the arena is constructed on first use and outlives
// every engine created after it on this thread.
Arena& arena() {
  thread_local Arena a;
  return a;
}

// Size class for `bytes` (bytes > 0), or kClasses if beyond the pooled
// range. Class c holds blocks of (c + 1) * kGranule bytes.
std::size_t class_of(std::size_t bytes) {
  return (bytes - 1) / FramePool::kGranule;
}

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
#if RDMASEM_FRAME_POOL_PASSTHROUGH
  return ::operator new(bytes);
#else
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  if (cls >= kClasses) {
    ++a.stats.oversize;
    return ::operator new(bytes);
  }
  if (FreeNode* n = a.lists[cls]; n != nullptr) {
    a.lists[cls] = n->next;
    ++a.stats.reused;
    --a.stats.cached;
    return static_cast<void*>(n);
  }
  ++a.stats.fresh;
  return ::operator new((cls + 1) * kGranule);
#endif
}

void FramePool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
#if RDMASEM_FRAME_POOL_PASSTHROUGH
  ::operator delete(p);
#else
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  if (cls >= kClasses) {
    ::operator delete(p);
    return;
  }
  auto* n = static_cast<FreeNode*>(p);
  n->next = a.lists[cls];
  a.lists[cls] = n;
  ++a.stats.cached;
#endif
}

FramePool::Stats FramePool::stats() { return arena().stats; }

void FramePool::trim() noexcept { arena().release_all(); }

}  // namespace rdmasem::sim
