#pragma once

#include <cstddef>
#include <cstdint>

namespace rdmasem::sim {

// FramePool — size-classed free lists for coroutine frames.
//
// Every simulated activity is a TaskT<> coroutine; the per-WR pipeline
// (verbs::QueuePair::run_wr and the fabric/RNIC legs it awaits) allocates
// and frees one frame per work request. Frames of the same coroutine
// function always have the same size, so a recycled frame is a perfect
// fit: after warm-up the WR hot path performs no frame allocations at
// all. The simulator is single-threaded per engine; the pool is
// thread-local so concurrent engines (e.g. parallel ctest binaries in
// one process) never contend or mix.
//
// Under ASan the pool degrades to plain new/delete so the sanitizer keeps
// seeing every frame lifetime (use-after-free fidelity over speed).
class FramePool {
 public:
  static constexpr std::size_t kGranule = 64;  // size-class width, bytes
  static constexpr std::size_t kClasses = 128;  // pooled up to 8 KB

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t reused = 0;    // allocations served from a free list
    std::uint64_t fresh = 0;     // pool-classed allocations that hit new
    std::uint64_t oversize = 0;  // beyond kClasses, passed through
    std::uint64_t cached = 0;    // frames currently parked in free lists
  };
  static Stats stats();

  // Releases every cached frame back to the allocator (tests, memory
  // pressure). Outstanding frames are unaffected.
  static void trim() noexcept;
};

}  // namespace rdmasem::sim
