#include "sim/resource.hpp"

#include <algorithm>

namespace rdmasem::sim {

Resource::Resource(Engine& engine, std::uint32_t servers, std::string name)
    : engine_(engine), servers_(servers), name_(std::move(name)) {
  RDMASEM_CHECK_MSG(servers > 0, "resource needs at least one server");
  free_at_.assign(servers, 0);
  std::make_heap(free_at_.begin(), free_at_.end(), std::greater<>{});
}

Grant Resource::reserve_grant(Duration service) {
  std::pop_heap(free_at_.begin(), free_at_.end(), std::greater<>{});
  const Time now = engine_.now();
  const Time start = std::max(now, free_at_.back());
  const Time completion = start + service;
  free_at_.back() = completion;
  std::push_heap(free_at_.begin(), free_at_.end(), std::greater<>{});
  ++requests_;
  busy_ += service;
  const Duration wait = start - now;
  if (wait > 0) {
    wait_ += wait;
    ++waited_;
    wait_hist_.add(wait / kNanosecond);
  }
  return {completion, wait};
}

Time Resource::peek(Duration service) const {
  const Time earliest = free_at_.front();  // heap min
  return std::max(engine_.now(), earliest) + service;
}

double Resource::utilization() const {
  const Time t = engine_.now();
  if (t == 0) return 0.0;
  return static_cast<double>(busy_) /
         (static_cast<double>(t) * static_cast<double>(servers_));
}

void Resource::reset_stats() {
  requests_ = 0;
  busy_ = 0;
  wait_ = 0;
  waited_ = 0;
  wait_hist_.reset();
}

}  // namespace rdmasem::sim
