#pragma once

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/lane.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rdmasem::sim {

class Engine;

namespace detail {

// Which engine/shard/lane the current thread is dispatching for. Set by
// Engine::dispatch around every event; empty outside a dispatch.
// `inline_until` is the exclusive horizon for the inline-wakeup fast path
// (see Engine::try_inline_advance): a suspension whose wakeup lands
// strictly before it MAY run inline, without an event. The run loops set
// it to their dispatch horizon (run: unbounded; run_until: deadline + 1;
// parallel epochs: epoch_end). It stays 0 — fast path off — in
// run_events(), whose cross-shard global-minimum stepping cannot be
// checked against a single shard queue, and outside any dispatch.
struct ExecContext {
  Engine* eng = nullptr;
  std::uint32_t shard = 0;
  std::uint32_t lane = 0;
  Time inline_until = 0;
};
inline thread_local ExecContext t_exec{};

}  // namespace detail

// --- engine profiling (Plane 2: host time) ----------------------------------
//
// Per-shard host-clock statistics of one profiling window (between
// drain_profile() calls). Gated by RDMASEM_PROF / Engine::set_profiling and
// measured with std::chrono::steady_clock, strictly OUTSIDE the virtual
// timeline: profiling reads wall clocks and bumps plain shard-local
// counters, never schedules events, never reads the RNG and never moves a
// shard clock — a profiled run is byte-identical to an unprofiled one at
// every shard count (tests/obs_profiler_test.cpp asserts this).
//
// The inline_grants / merged_events / max_queue_depth counters are cheap
// enough to maintain unconditionally; only the steady_clock reads are
// gated.
struct ShardProfile {
  std::uint64_t epochs = 0;       // epochs run (serial: 1 per run call)
  std::uint64_t events = 0;       // events dispatched (incl. inline grants)
  std::uint64_t inline_grants = 0;   // suspensions elided by the fast path
  std::uint64_t merged_events = 0;   // cross-shard events merged INTO this
                                     // shard's queue at epoch barriers
  std::uint64_t merge_ns = 0;        // inbox-merge wall time (each worker
                                     // pulls its own inboxes at epoch entry;
                                     // under RDMASEM_EPOCH_LEGACY the main
                                     // thread merges and shard 0 carries it)
  std::uint64_t barrier_park_ns = 0;  // parked at the epoch barrier
  std::uint64_t dispatch_ns = 0;      // inside the event-dispatch loop
  std::uint64_t wall_ns = 0;          // whole-run wall time for this shard
  std::uint64_t max_queue_depth = 0;  // event-queue high-water mark
  std::uint64_t lookahead_ps = 0;  // summed epoch widths granted to this
                                   // shard (virtual ps past the global
                                   // floor); /epochs = effective lookahead.
                                   // Static widths are virtual-time derived
                                   // and deterministic; demand-driven
                                   // extensions (below) add race-dependent
                                   // widening, so treat it as Plane-2.
  // --- demand-driven horizon counters (PR 10). Like barrier_park_ns these
  // are host-race-dependent: how far a horizon extends depends on how far
  // peers happened to have advanced when we refreshed. Output stays
  // byte-identical regardless (the bound is always conservative).
  std::uint64_t quiescent_terms = 0;  // peer terms seen quiescent (clock
                                      // published as "no future sends")
                                      // during live-bound refreshes
  std::uint64_t fused_epochs = 0;     // successful horizon extensions: a
                                      // refresh widened the bound, fusing
                                      // what would have been another
                                      // barrier round into this one
  std::uint64_t resplit_epochs = 0;   // extensions abandoned: the poll
                                      // budget expired with runnable work
                                      // still pending, so the round was
                                      // re-split at the epoch barrier
  std::uint64_t horizon_widening_ps = 0;  // virtual ps gained past the
                                          // static CMB bound by extensions
};

struct EngineProfile {
  bool enabled = false;
  std::uint32_t shards = 1;
  std::uint64_t runs = 0;  // profiled run()/run_until() invocations
  std::vector<ShardProfile> shard;
};

// Lane topology for the per-(src,dst) lookahead matrix. Each lane belongs
// to an affinity GROUP (for a cluster: the leaf switch of its machine;
// the driver lane rides with machine 0), and group_latency[g * groups + h]
// is the minimum virtual latency any cross-lane signal from a lane of
// group g to a lane of group h can carry. The matrix may be asymmetric.
// An empty lane_group/group_latency means "uniform": one group whose
// latency is set_lookahead().
//
// Everything derived from this is a pure function of LANES, never of
// shard placement, so results stay byte-identical at every shard count;
// placement only decides how wide the epochs get.
struct LaneTopology {
  std::vector<std::uint32_t> lane_group;  // size == lanes; empty -> all 0
  std::vector<Duration> group_latency;    // groups x groups, row-major
  std::uint32_t groups = 1;
};

// Discrete-event simulation engine: a virtual clock plus calendar queues
// of (time, key, callback) events (see sim/event_queue.hpp).
//
// Work is organized in LANES: lane 0 is the driver/main context, lane m+1
// is machine m of a cluster. Every event carries the lane it executes on;
// its dispatch key is (origin_lane << 48) | per_lane_seq, so the total
// (at, key) order is a pure function of per-lane schedule order — it does
// not depend on how lanes are placed onto shards. That is the determinism
// backbone of the parallel mode.
//
// With configure_lanes(lanes, shards > 1) the engine partitions lanes
// across worker shards, each with its own EventQueue, and run()/run_until()
// execute shards on OS threads synchronized in conservative epochs. Epoch
// widths come from a per-(src,dst)-shard LOOKAHEAD MATRIX derived from the
// lane topology (LaneTopology): each shard's horizon is the CMB bound
//   end(s) = min over ALL s' of (next(s') + reach(s' -> s)),
// where reach is the min-plus closure of the matrix (cheapest >= 1-hop
// send chain; for s' == s, the min round trip through another shard).
// The closure makes the bound safe against multi-epoch reactivation
// chains through currently-empty shards. It is never narrower than the
// classic global-minimum epoch, and much wider
// when the topology is non-uniform (e.g. leaf/spine fabrics with shards
// aligned to leaves). Events crossing shards inside an epoch go through
// per-(src,dst) mailboxes; each worker pulls its own inboxes at epoch
// entry under a sense-reversing barrier. Because merge order is absorbed
// by the (at, key) priority order, parallel execution is byte-identical
// to serial (docs/PERF.md has the full argument; tests/determinism_test.cpp
// and tests/parallel_determinism_test.cpp are the oracle).
// RDMASEM_EPOCH_LEGACY=1 selects the original global-epoch protocol
// (main-thread merges, gen/arrived spin barrier) for differential testing.
//
// The default is one lane on one shard — the classic single-threaded
// engine, with no threads and no barriers on the hot path.
class Engine {
 public:
  static constexpr std::uint32_t kLaneShift = 48;
  static constexpr std::uint32_t kMaxLanes = 1u << 14;

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  // Reclaims spawned coroutine frames that are still suspended (e.g.
  // server loops parked on an empty channel).
  ~Engine();

  // Inside a dispatch: the executing shard's clock (== the running
  // event's timestamp, exactly as in the serial engine). Outside: the
  // unified clock — max over shard clocks at the last run boundary —
  // which is identical for every shard count. Benches and the Rig read
  // timestamps only through this accessor, so they cannot observe
  // shard-local time skew.
  Time now() const {
    return detail::t_exec.eng == this ? shards_[detail::t_exec.shard]->now
                                      : unified_now_;
  }

  // --- lane topology -------------------------------------------------------

  // Partitions `lanes` logical lanes (driver + machines) across `shards`
  // worker shards. Must be called before any event is scheduled; lane 0
  // always maps to shard 0 (the main thread). With a non-uniform `topo`,
  // placement is communication-affinity aware: whole affinity groups go
  // onto one shard where balance allows, maximizing the pairwise lookahead
  // matrix (cross-shard pairs then sit in different groups and pay the
  // larger cross-group latency).
  void configure_lanes(std::uint32_t lanes, std::uint32_t shards,
                       LaneTopology topo = {});
  std::uint32_t lanes() const { return lanes_; }
  std::uint32_t shards() const { return nshards_; }
  std::uint32_t shard_of(std::uint32_t lane) const {
    return lane_shard_[lane];
  }
  // Uniform-topology setter (bare-engine tests): one affinity group whose
  // cross-lane latency is `d`. Clusters install a full LaneTopology via
  // configure_lanes instead.
  void set_lookahead(Duration d);
  // Global minimum cross-lane latency (the narrowest epoch any shard pair
  // can force). Kept as the floor assertion for parallel runs; routing
  // decisions should use the per-pair overloads below.
  Duration lookahead() const { return lookahead_; }
  // Minimum latency a signal from `from_lane` to `to_lane` must carry —
  // what home-lane sync primitives and settle() route with. A pure
  // function of the two lanes' groups, independent of shard placement.
  Duration lookahead(std::uint32_t from_lane, std::uint32_t to_lane) const {
    return group_lat_[static_cast<std::size_t>(lane_group_[from_lane]) *
                          ngroups_ +
                      lane_group_[to_lane]];
  }
  // The per-(src,dst)-shard lookahead matrix entry: min lookahead over
  // lane pairs actually placed on the two shards. Cross-shard events from
  // src arriving sooner than this after src's epoch floor abort the run.
  Duration shard_lookahead(std::uint32_t src, std::uint32_t dst) const {
    return shard_lat_[static_cast<std::size_t>(src) * nshards_ + dst];
  }
  // Min cost of a send CHAIN src -> ... -> dst with at least one hop
  // (src == dst: the min round trip through another shard). The epoch
  // horizon is computed from this, not the direct edge — see
  // rebuild_shard_lookahead for why reactivation of empty shards demands
  // the closure.
  Duration shard_reach(std::uint32_t src, std::uint32_t dst) const {
    return shard_reach_[static_cast<std::size_t>(src) * nshards_ + dst];
  }
  // Epoch-protocol selector: true = the original global-epoch protocol
  // (gen/arrived spin barrier, main-thread merges). The constructor seeds
  // it from RDMASEM_EPOCH_LEGACY; flip only while the engine is idle.
  void set_epoch_legacy(bool on) { epoch_legacy_ = on; }
  bool epoch_legacy() const { return epoch_legacy_; }
  // Horizon selector for the SPMD protocol: true = the PR 9 static
  // per-epoch CMB bound (no live clock publication, no mid-epoch channel
  // delivery, no horizon extension) as the differential oracle for the
  // demand-driven bound — mirroring RDMASEM_EPOCH_LEGACY. The constructor
  // seeds it from RDMASEM_HORIZON_LEGACY; flip only while the engine is
  // idle. Output is byte-identical either way at every shard count.
  void set_horizon_legacy(bool on) { horizon_legacy_ = on; }
  bool horizon_legacy() const { return horizon_legacy_; }
  // Virtual-time granularity of live clock publication during a
  // demand-driven round: a shard republishes its clock when it has
  // advanced this far past the last publication. 0 = auto (half the
  // global lookahead floor at run entry). Clusters install half the
  // fabric base latency — frequent enough that peers' bounds track the
  // sender within one hop, rare enough to keep the store off most
  // dispatches. RDMASEM_HORIZON_QUANTUM overrides (ps).
  void set_horizon_quantum(Duration d) { horizon_quantum_ = d; }
  Duration horizon_quantum() const { return horizon_quantum_; }

  // --- scheduling ----------------------------------------------------------

  // Schedules `fn` to run at absolute time `at` (clamped to now()) on the
  // calling lane.
  template <typename F>
  void schedule_at(Time at, F&& fn) {
    const Caller c = caller();
    schedule_from(c, c.lane, at, std::forward<F>(fn));
  }
  // Schedules `fn` to run `delay` after now() on the calling lane.
  template <typename F>
  void schedule_in(Duration delay, F&& fn) {
    const Caller c = caller();
    schedule_from(c, c.lane, c.now + delay, std::forward<F>(fn));
  }
  // Schedules `fn` on an explicit lane. The dispatch key still carries
  // the CALLING lane (origin), keeping the total order placement-free.
  template <typename F>
  void schedule_on(std::uint32_t lane, Time at, F&& fn) {
    schedule_from(caller(), lane, at, std::forward<F>(fn));
  }

  // Schedules a coroutine resumption (cheaper + clearer than a lambda).
  void resume_at(Time at, std::coroutine_handle<> h) {
    const Caller c = caller();
    resume_from(c, c.lane, at, h);
  }
  void resume_in(Duration delay, std::coroutine_handle<> h) {
    const Caller c = caller();
    resume_from(c, c.lane, c.now + delay, h);
  }
  void resume_on(std::uint32_t lane, Time at, std::coroutine_handle<> h) {
    resume_from(caller(), lane, at, h);
  }

  // Transfers ownership of a Task to the engine and starts it at now()
  // on the calling lane (spawn) or an explicit lane (spawn_on). Root
  // tasks that drive a machine MUST be spawned on that machine's lane
  // (machine_id + 1) or they race under RDMASEM_SHARDS > 1. The frame is
  // destroyed when the task finishes.
  void spawn(Task&& task) { spawn_on(caller_lane(), std::move(task)); }
  void spawn_on(std::uint32_t lane, Task&& task);

  // --- running -------------------------------------------------------------

  // Runs until the event queue is empty. Returns the final clock value.
  Time run();
  // Runs events with timestamp <= deadline; clock ends at
  // max(now, min(deadline, last event time)). Returns true if events remain.
  bool run_until(Time deadline);
  // Drains at most `max_events` events in global (at, key) order; returns
  // the number processed. Always serial, whatever the shard count.
  std::uint64_t run_events(std::uint64_t max_events);

  // --- inline-wakeup fast path ---------------------------------------------

  // Attempts to grant a suspension point inline: returns true — and
  // advances the executing shard's clock to `at`, counting one processed
  // event — iff resuming at `at` right now is indistinguishable from
  // scheduling, popping and dispatching the wakeup event. That holds
  // exactly when (a) the caller is inside a dispatch of this engine with
  // `at` inside the loop's horizon, and (b) the shard queue holds no event
  // ordered before the wakeup would be, under the event's would-be key
  // ((lane << 48) | next per-lane seq — NOT consumed on the fast path;
  // skipping seq values is order-preserving because comparisons only ever
  // use relative per-lane order). Awaiters (sim::delay, Resource::use)
  // call this from await_ready, so an uncontended pipeline stage costs no
  // event, no queue traffic and no suspension. Determinism: the dispatch
  // sequence (timestamps, lane order, processed-event count) is identical
  // with the fast path on or off, at every shard count — asserted by
  // tests/determinism_test.cpp and tests/parallel_determinism_test.cpp.
  bool try_inline_advance(Time at);
  bool try_inline_delay(Duration d) {
    const detail::ExecContext& x = detail::t_exec;
    if (x.eng != this) return false;
    return try_inline_advance(shards_[x.shard]->now + d);
  }
  // Inline grant for a cross-lane hop. Legal only when the target lane
  // lives on the EXECUTING shard: then the hop's wakeup event would land
  // in this shard's own queue (never an epoch mailbox), and the same
  // (at, key) front-of-queue check as try_inline_advance applies — the
  // would-be key carries the ORIGIN lane, exactly as resume_on would
  // build it. On grant the exec context migrates to `lane`, just as
  // dispatching the event would have set it from Event::exec_lane. With
  // one shard every hop is same-shard, so the whole verb pipeline
  // (request leg, response leg, completion) can ride the fast path.
  bool try_inline_hop(std::uint32_t lane, Duration d) {
    const detail::ExecContext& x = detail::t_exec;
    if (x.eng != this || lane >= lanes_ || lane_shard_[lane] != x.shard)
      return false;
    if (!try_inline_advance(shards_[x.shard]->now + d)) return false;
    detail::t_exec.lane = lane;
    return true;
  }
  // Master switch, read at run()/run_until() entry (set it while the
  // engine is not running). Off: every suspension goes through the event
  // queue, byte-identical to the fast path (the legacy anchor for the
  // selfbench speedup ratio and the determinism toggle tests).
  void set_inline_wakeups(bool on) { inline_wakeups_ = on; }
  bool inline_wakeups() const { return inline_wakeups_; }

  // --- engine profiling (Plane 2) ------------------------------------------

  // Host-time profiling switch; the constructor seeds it from RDMASEM_PROF.
  // Flip it only while the engine is not running.
  void set_profiling(bool on) { prof_ = on; }
  bool profiling() const { return prof_; }
  // Moves the accumulated per-shard host-clock stats out and starts a new
  // profiling window (event counts restart from the current processed
  // totals, queue high-water marks re-anchor at the live depth). The
  // returned snapshot reflects everything run since the last drain.
  EngineProfile drain_profile();

  bool idle() const {
    for (const auto& sh : shards_)
      if (!sh->queue.empty()) return false;
    return true;
  }
  std::uint64_t events_processed() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) n += sh->processed;
    return n;
  }

  // The calling lane's deterministic random stream. Streams are per-lane
  // so draws are independent of shard placement; lane 0 keeps the exact
  // seed-engine stream.
  Rng& rng() { return lane_rng_[caller_lane()]; }
  void seed(std::uint64_t s);

 private:
  // SPSC channel carrying cross-shard events from one fixed producer
  // shard to one fixed consumer shard under the demand-driven horizon.
  // The producer writes a slot then release-stores `tail`; the consumer
  // acquire-loads `tail` and drains [head, tail). Unlike the legacy
  // outbox vectors (stable only while producers are parked at the
  // barrier), a channel may be pulled MID-EPOCH: delivery timing cannot
  // affect output because every pulled event provably lands in the
  // consumer's future (see refresh_horizon) and the (at, seq) queue
  // order absorbs arrival order. A full ring falls back to the
  // barrier-drained outbox row plus a publication freeze (see
  // push_event), so the producer never blocks on a parked consumer.
  struct alignas(64) EventChannel {
    static constexpr std::uint64_t kCap = 256;  // power of two
    std::unique_ptr<Event[]> buf = std::make_unique<Event[]>(kCap);
    alignas(64) std::atomic<std::uint64_t> tail{0};  // producer cursor
    alignas(64) std::atomic<std::uint64_t> head{0};  // consumer cursor
  };

  // Each Shard is separately heap-allocated and cache-line aligned, and
  // its members are grouped by sharing pattern so the owner's dispatch-hot
  // state never shares a line with anything another thread touches.
  struct alignas(64) Shard {
    // --- owner-hot: touched on every dispatch by the owning thread.
    EventQueue queue;
    Time now = 0;
    std::uint64_t processed = 0;
    DetachedRegistry detached;
    // --- epoch bookkeeping. outbox rows are written by the owner during
    // its epoch and drained by the DESTINATION worker while the owner is
    // parked at the barrier (legacy protocol: by the main thread).
    // epoch_ends is the owner's private copy of the per-destination
    // conservative bound: epoch_ends[d] is the earliest timestamp a
    // cross-shard event pushed to shard d may carry this epoch (every
    // thread computes identical values from the published next-times;
    // under the legacy protocol the main thread writes them all).
    std::vector<std::vector<Event>> outbox;
    std::vector<Time> epoch_ends;
    // --- demand-driven horizon state (owner-private). chan[d] is this
    // shard's SPSC channel toward shard d. pub_mark is the virtual time
    // at which the owner next republishes its clock (quantum-gated);
    // pub_freeze caps every publication once an event spilled past a full
    // ring (spilled events are invisible until the barrier, so peers must
    // not run past spill-time + lookahead). The win_* ring is the
    // sliding window of realized events-per-round that decides whether
    // the next round engages the demand-driven machinery at all.
    std::unique_ptr<EventChannel[]> chan;
    Time pub_mark = 0;
    Time pub_freeze = ~Time{0};
    bool publishing = false;
    std::uint64_t win_events[8] = {};
    std::uint64_t win_sum = 0;
    std::uint32_t win_pos = 0;
    std::uint32_t win_count = 0;
    std::uint64_t round_base = 0;  // processed count at the round's start
    // --- publication slot: this shard's post-merge next event time,
    // written by the owner before the epoch barrier and read by every
    // thread after it — and by NOBODY during the round, so all shards'
    // step-3 static bounds are computed from one consistent snapshot.
    // Own line: it is the hot cross-thread word.
    alignas(64) std::atomic<Time> next_time{0};
    // --- live clock (demand-driven rounds): a monotone lower bound on
    // this shard's next dispatch time — and hence, plus the per-pair
    // lookahead, on the arrival time of every event it may still send or
    // RELAY this round. Separate from next_time on purpose: mid-round
    // stores here cannot race another shard's static-bound computation.
    // Values, in round order: sh.now (published at the pre-barrier reset
    // — an engaged shard may relay mid-round pulls, so unlike a static
    // shard it may never claim the kNoDeadline "sends nothing" clock);
    // min(own next, static bound) at run entry; at each dispatch the
    // event's timestamp (quantum-gated); while stalled, the shard's
    // current bound. Readers acquire it BEFORE pulling the publisher's
    // channel, so anything not yet visible in the ring provably carries
    // at >= clock + lookahead (see refresh_horizon).
    alignas(64) std::atomic<Time> live_clock{0};
    // --- host-time profiling accumulator (Plane 2), own line. Written by
    // the owning thread, except merge_ns/merged_events/lookahead_ps which
    // the LEGACY protocol's main thread writes while workers are parked.
    alignas(64) ShardProfile prof;
    // processed-count anchor of the current profiling window.
    std::uint64_t prof_events_base = 0;
  };

  // The calling context's (origin lane, clock), read from thread-local
  // state ONCE per public scheduling call — the schedule path is the
  // engine's hottest, so every public entry snapshots this and threads it
  // through instead of re-deriving per field.
  struct Caller {
    std::uint32_t lane;
    Time now;
  };
  Caller caller() const {
    const detail::ExecContext x = detail::t_exec;
    return x.eng == this ? Caller{x.lane, shards_[x.shard]->now}
                         : Caller{0, unified_now_};
  }
  std::uint32_t caller_lane() const { return caller().lane; }
  Time caller_now() const { return caller().now; }
  // Dispatch keys pack the ORIGIN lane above a per-lane counter: ties at
  // one timestamp order by (origin lane, per-lane schedule order), which
  // every shard count reproduces identically.
  std::uint64_t key_for(std::uint32_t origin) {
    return (static_cast<std::uint64_t>(origin) << kLaneShift) |
           lane_seq_[origin]++;
  }

  template <typename F>
  void schedule_from(const Caller& c, std::uint32_t lane, Time at, F&& fn) {
    push_event(lane, Event{at < c.now ? c.now : at, key_for(c.lane), nullptr,
                           InlineFn(std::forward<F>(fn)), lane});
  }
  void resume_from(const Caller& c, std::uint32_t lane, Time at,
                   std::coroutine_handle<> h) {
    push_event(lane, Event{at < c.now ? c.now : at, key_for(c.lane), h,
                           InlineFn{}, lane});
  }

  void push_event(std::uint32_t target_lane, Event&& ev) {
    RDMASEM_CHECK_MSG(target_lane < lanes_, "event lane out of range");
    const std::uint32_t dst = lane_shard_[target_lane];
    if (parallel_running_) {
      const std::uint32_t src =
          detail::t_exec.eng == this ? detail::t_exec.shard : 0;
      if (dst != src) {
        Shard& sh = *shards_[src];
        // Conservative-epoch safety: a cross-shard event may not land
        // inside the destination's current epoch (it may already have run
        // past it). epoch_ends[dst] is the pushing shard's own copy of the
        // per-destination bound — the fabric and the home-lane sync
        // routing guarantee it by construction, because every cross-lane
        // path pays at least the per-pair lookahead latency.
        RDMASEM_CHECK_MSG(ev.at >= sh.epoch_ends[dst],
                          "cross-shard event inside the lookahead window");
        // The per-pair latency floor itself, enforced directly: the
        // demand-driven horizon (refresh_horizon) is sound exactly
        // because every send from local clock `now` carries
        // at >= now + shard_lookahead(src, dst).
        RDMASEM_CHECK_MSG(
            ev.at >= sh.now + shard_lat_[static_cast<std::size_t>(src) *
                                             nshards_ +
                                         dst],
            "cross-shard event undercuts the per-pair lookahead");
        if (epoch_legacy_ || horizon_legacy_) {
          sh.outbox[dst].push_back(std::move(ev));
          return;
        }
        // Demand-driven rounds route through the SPSC channel so the
        // destination can pull mid-epoch. Ring full: spill to the
        // barrier-drained outbox row and freeze this shard's published
        // clock at its current position — spilled events are invisible
        // until the next barrier, so peers must not extend past
        // now + lookahead.
        EventChannel& ch = sh.chan[dst];
        const std::uint64_t t = ch.tail.load(std::memory_order_relaxed);
        if (t - ch.head.load(std::memory_order_acquire) <
            EventChannel::kCap) {
          ch.buf[t & (EventChannel::kCap - 1)] = std::move(ev);
          ch.tail.store(t + 1, std::memory_order_release);
        } else {
          if (sh.pub_freeze > sh.now) sh.pub_freeze = sh.now;
          sh.outbox[dst].push_back(std::move(ev));
        }
        return;
      }
    }
    shards_[dst]->queue.push(std::move(ev));
  }

  void dispatch(Shard& sh, std::uint32_t shard_idx, Event& ev);
  // Runs one shard's events with at < end (the shard's epoch horizon).
  void run_shard_epoch(std::uint32_t shard_idx, Time end);
  // Demand-driven run phase of one barrier round: dispatches below the
  // static bound `end`, then repeatedly refreshes a LIVE bound from the
  // peers' published clocks (pulling channel traffic as it lands) and
  // keeps running as long as the bound widens or deliveries arrive —
  // fusing what would have been many static rounds into one barrier
  // crossing. `cap` is deadline + 1 (kNoDeadline for run()).
  void run_shard_demand(std::uint32_t shard_idx, Time end, Time cap);
  // Recomputes shard_idx's live conservative bound and pulls every
  // peer channel (mid-epoch delivery). See engine.cpp for the soundness
  // argument; returns min(bound, cap).
  Time refresh_horizon(std::uint32_t shard_idx, Time cap);
  // Drains one channel into `dst`'s queue (consumer side).
  void channel_pull(Shard& dst, EventChannel& ch);
  // The conservative-epoch driver; `deadline` = kNoDeadline for run().
  // Returns true if events remain past the deadline. Dispatches to the
  // sense-reversing SPMD protocol or, under RDMASEM_EPOCH_LEGACY, the
  // original global-epoch one.
  bool run_parallel(Time deadline);
  bool run_parallel_epochs(Time deadline);
  bool run_parallel_legacy(Time deadline);
  // One thread's whole run under the SPMD protocol (the main thread runs
  // it for shard 0).
  void epoch_loop(std::uint32_t shard_idx, Time deadline,
                  std::uint64_t base_phase);
  // Pulls every outbox row destined to `shard_idx` into its queue. The
  // caller must own the shard and every producer must be parked.
  void drain_inboxes(std::uint32_t shard_idx);
  // Sense-reversing barrier arrival (see barrier_ below).
  void barrier_wait(std::uint64_t& phase, ShardProfile* prof);
  // Recomputes shard_lat_ from lane placement and group latencies.
  void rebuild_shard_lookahead();
  void worker_main(std::uint32_t shard_idx, std::uint64_t base_gen);
  void merge_outboxes();

  static constexpr Time kNoDeadline = ~Time{0};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint64_t> lane_seq_;
  std::vector<Rng> lane_rng_;
  std::vector<std::uint32_t> lane_shard_;
  std::uint32_t lanes_ = 1;
  std::uint32_t nshards_ = 1;
  Duration lookahead_ = 0;
  Time unified_now_ = 0;
  std::uint64_t base_seed_;

  // Lane topology: lane -> affinity group, the groups x groups latency
  // matrix, and the placement-derived shards x shards lookahead matrix.
  std::vector<std::uint32_t> lane_group_;
  std::vector<Duration> group_lat_;
  std::uint32_t ngroups_ = 1;
  std::vector<Duration> shard_lat_;
  std::vector<Duration> shard_reach_;

  // SPMD-protocol barrier: one reusable sense-reversing barrier. Arrivals
  // accumulate in `arrived`; the last arriver resets the count and bumps
  // `phase` (the sense), releasing the spinners. The two words live on
  // separate cache lines so spinning on the sense never contends with
  // arrivals (satellite: the legacy gen_/arrived_/stop_ words below get
  // the same padding).
  struct alignas(64) EpochBarrier {
    std::atomic<std::uint32_t> arrived{0};
    alignas(64) std::atomic<std::uint64_t> phase{0};
  };
  EpochBarrier barrier_;

  // Legacy-protocol state (RDMASEM_EPOCH_LEGACY). epoch_end_ / stop_ are
  // written by the main thread only while the workers are parked at the
  // barrier (publication happens through gen_'s release/acquire pair).
  // Each spun-on atomic gets its own cache line.
  alignas(64) std::atomic<std::uint64_t> gen_{0};
  alignas(64) std::atomic<std::uint32_t> arrived_{0};
  alignas(64) Time epoch_end_ = 0;
  bool stop_ = false;
  bool parallel_running_ = false;
  bool inline_wakeups_ = true;
  bool epoch_legacy_ = false;
  // Demand-driven horizon knobs (see the public setters / engine.cpp).
  bool horizon_legacy_ = false;
  Duration horizon_quantum_ = 0;       // 0 = auto at run entry
  Duration pub_quantum_ = 1;           // resolved per parallel run
  std::uint64_t horizon_poll_budget_ = 512;
  std::uint64_t horizon_fuse_events_ = 4096;
  // Plane-2 profiling (RDMASEM_PROF). Written only while the engine is
  // not running; worker threads read it after being spawned.
  bool prof_ = false;
  std::uint64_t prof_runs_ = 0;
};

// One suspended coroutine plus the lane it must resume on. Sync
// primitives record this at await time so wakes land on the waiter's
// lane whatever lane the waker runs on.
struct LaneWaiter {
  std::coroutine_handle<> handle;
  std::uint32_t lane;
};

// Awaitable returned by delay(): suspends the coroutine and resumes it
// `d` later on the virtual clock, on the same lane. When the wakeup would
// be the very next dispatch anyway, await_ready grants it inline (no
// event, no suspension — Engine::try_inline_advance).
struct DelayAwaiter {
  Engine& engine;
  Duration d;
  bool await_ready() const noexcept { return engine.try_inline_delay(d); }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.resume_in(d, h);
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& e, Duration d) { return {e, d}; }

// Yield: reschedule at the current time, behind already-queued events.
inline DelayAwaiter yield(Engine& e) { return {e, 0}; }

// Awaitable returned by hop(): suspends the coroutine and resumes it `d`
// later ON `lane` — the only way execution migrates between lanes. Under
// RDMASEM_SHARDS > 1, `d` must be >= the per-pair lookahead
// (engine.lookahead(current_lane(), lane)) when the target lane lives on
// another shard — the fabric's per-pair link latency always is.
// Same-shard hops may be granted inline like delays (see
// Engine::try_inline_hop); cross-shard hops always go through the queue.
struct HopAwaiter {
  Engine& engine;
  std::uint32_t lane;
  Duration d;
  bool await_ready() const noexcept {
    return engine.try_inline_hop(lane, d);
  }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.resume_on(lane, engine.now() + d, h);
  }
  void await_resume() const noexcept {}
};

inline HopAwaiter hop(Engine& e, std::uint32_t lane, Duration d) {
  return {e, lane, d};
}

// Conditional hop: no-op when the caller is already on `lane`, otherwise
// a hop of one (caller -> lane) lookahead — the minimum legal cross-shard
// migration for that specific pair; a uniform global minimum here would
// break the conservative bound on non-uniform topologies.
// Per-machine objects (front-ends, proxy routers, executors) put this at
// the top of their public coroutines so their state is only ever touched
// from the owner machine's lane, whatever lane the caller was resumed on.
struct SettleAwaiter {
  Engine& engine;
  std::uint32_t lane;
  bool await_ready() const noexcept { return current_lane() == lane; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.resume_on(lane,
                     engine.now() + engine.lookahead(current_lane(), lane), h);
  }
  void await_resume() const noexcept {}
};

inline SettleAwaiter settle(Engine& e, std::uint32_t lane) {
  return {e, lane};
}

}  // namespace rdmasem::sim
