#pragma once

#include <coroutine>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace rdmasem::sim {

// Discrete-event simulation engine: a virtual clock plus a calendar queue
// of (time, sequence, callback) events (see sim/event_queue.hpp). Events
// with equal timestamps fire in schedule order (FIFO tie-break), which
// keeps multi-actor simulations deterministic.
//
// The hot path is allocation-free: callables ride in the event's inline
// small buffer (InlineFn), event storage is recycled by the calendar
// queue's bucket vectors, and coroutine frames come from FramePool.
//
// The engine is single-threaded by design — simulated concurrency comes from
// coroutine Tasks interleaving on the virtual clock, not from OS threads.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  // Reclaims spawned coroutine frames that are still suspended (e.g.
  // server loops parked on an empty channel).
  ~Engine();

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to now()).
  template <typename F>
  void schedule_at(Time at, F&& fn) {
    queue_.push(now_, Event{at < now_ ? now_ : at, seq_++, nullptr,
                            InlineFn(std::forward<F>(fn))});
  }
  // Schedules `fn` to run `delay` after now().
  template <typename F>
  void schedule_in(Duration delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }
  // Schedules a coroutine resumption (cheaper + clearer than a lambda).
  void resume_at(Time at, std::coroutine_handle<> h) {
    queue_.push(now_, Event{at < now_ ? now_ : at, seq_++, h, InlineFn{}});
  }
  void resume_in(Duration delay, std::coroutine_handle<> h) {
    resume_at(now_ + delay, h);
  }

  // Transfers ownership of a Task to the engine and starts it at now().
  // The coroutine frame is destroyed when it finishes.
  void spawn(Task&& task);

  // Runs until the event queue is empty. Returns the final clock value.
  Time run();
  // Runs events with timestamp <= deadline; clock ends at
  // max(now, min(deadline, last event time)). Returns true if events remain.
  bool run_until(Time deadline);
  // Drains at most `max_events` events; returns number processed.
  std::uint64_t run_events(std::uint64_t max_events);

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  Rng& rng() { return rng_; }
  void seed(std::uint64_t s) { rng_.reseed(s); }

 private:
  void dispatch(Event& ev);

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  EventQueue queue_;
  std::unordered_set<void*> detached_;
  Rng rng_;
};

// Awaitable returned by delay(): suspends the coroutine and resumes it
// `d` later on the virtual clock.
struct DelayAwaiter {
  Engine& engine;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.resume_in(d, h);
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& e, Duration d) { return {e, d}; }

// Yield: reschedule at the current time, behind already-queued events.
inline DelayAwaiter yield(Engine& e) { return {e, 0}; }

}  // namespace rdmasem::sim
