#pragma once

#include <cstdint>

namespace rdmasem::sim {

// Deterministic xoshiro256** PRNG. The simulator never uses
// std::random_device or time-based seeding: a run is a pure function of
// (model parameters, workload parameters, seed).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound == 0 yields 0. Lemire's multiply-shift
  // rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace rdmasem::sim
