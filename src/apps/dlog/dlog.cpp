#include "apps/dlog/dlog.hpp"

#include <cstring>

#include "sim/sync.hpp"
#include "util/assert.hpp"

namespace rdmasem::apps::dlog {

namespace {
// Record layout: [engine u64 | seq u64 | payload ... | checksum u64].
std::uint64_t record_checksum(const std::byte* rec, std::size_t n) {
  std::uint64_t h = 0x9ddfea08eb382d69ULL;
  for (std::size_t i = 0; i + 8 <= n - 8; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, rec + i, 8);
    h = (h ^ w) * 0x2545f4914f6cdd1dULL;
    h ^= h >> 29;
  }
  return h;
}
}  // namespace

struct DistributedLog::Engine {
  std::uint32_t id;
  std::uint32_t machine;
  hw::SocketId socket;       // where this engine's thread runs
  hw::SocketId table_socket; // where its data tables live
  verbs::Context* ctx;
  verbs::Buffer table;       // the "data tables" records are taken from
  verbs::MemoryRegion* table_mr;
  verbs::Buffer staging;     // NUMA-friendly coalescing buffer
  verbs::MemoryRegion* staging_mr;
  verbs::QueuePair* qp;
  std::vector<verbs::QueuePair*> replica_qps;  // one per replica image
  std::unique_ptr<remem::RemoteSequencer> tail;
  std::uint64_t appended = 0;
};

DistributedLog::~DistributedLog() = default;

DistributedLog::DistributedLog(std::vector<verbs::Context*> ctxs,
                               const Config& cfg)
    : ctxs_(std::move(ctxs)), cfg_(cfg) {
  const auto& p = ctxs_[0]->params();
  auto* log_ctx = ctxs_.at(cfg_.log_machine);

  // Global log: [tail u64 | pad to 64 | records...].
  const std::uint64_t log_bytes =
      64 + static_cast<std::uint64_t>(cfg_.engines) *
               cfg_.records_per_engine * cfg_.record_size;
  log_mem_ = verbs::Buffer(log_bytes);
  log_mr_ = log_ctx->register_buffer(log_mem_, p.rnic_socket);

  // Replica images fill machines from the top of the cluster (replication
  // is one-sided so their CPUs stay idle). Engines fill from the bottom,
  // so crash drills can kill a replica host without killing writers.
  RDMASEM_CHECK_MSG(cfg_.replicas >= 1, "need at least the primary");
  auto replica_host = [this](std::uint32_t r) {
    return static_cast<std::uint32_t>(
        (cfg_.log_machine + ctxs_.size() - 1 - r) % ctxs_.size());
  };
  for (std::uint32_t r = 0; r + 1 < cfg_.replicas; ++r) {
    replica_mem_.emplace_back(log_bytes);
    replica_mrs_.push_back(ctxs_.at(replica_host(r))
                               ->register_buffer(replica_mem_.back(),
                                                 p.rnic_socket));
  }
  replica_dead_ = std::vector<std::atomic<bool>>(cfg_.replicas - 1);

  const auto writers = static_cast<std::uint32_t>(ctxs_.size()) - 1;
  for (std::uint32_t e = 0; e < cfg_.engines; ++e) {
    auto en = std::make_unique<Engine>();
    en->id = e;
    en->machine = 1 + e % writers;  // engines live off the log machine
    en->socket = (e / writers) % p.sockets_per_machine;
    // Data tables sit on the engine's alternate socket half the time —
    // the situation the paper's NUMA-aware copy path exists for.
    en->table_socket = (e % 2 == 0) ? en->socket : (1 - en->socket);
    en->ctx = ctxs_.at(en->machine);
    en->table = verbs::Buffer(cfg_.records_per_engine * cfg_.record_size);
    en->table_mr = en->ctx->register_buffer(en->table, en->table_socket);
    en->staging =
        verbs::Buffer(static_cast<std::size_t>(cfg_.batch_size) *
                      cfg_.record_size);
    en->staging_mr = en->ctx->register_buffer(en->staging, en->socket);

    // NUMA-aware: the engine posts on its own socket's port; the log
    // machine always terminates on the socket that owns the log memory.
    verbs::QpConfig a{.port = cfg_.numa_aware ? en->socket : p.rnic_socket,
                      .core_socket = en->socket,
                      .cq = en->ctx->create_cq()};
    verbs::QpConfig b{.port = p.rnic_socket,
                      .core_socket = p.rnic_socket,
                      .cq = log_ctx->create_cq()};
    auto* qa = en->ctx->create_qp(a);
    auto* qb = log_ctx->create_qp(b);
    verbs::Context::connect(*qa, *qb);
    en->qp = qa;
    // One extra QP per replica image (engine machine -> replica machine).
    for (std::uint32_t r = 0; r + 1 < cfg_.replicas; ++r) {
      const std::uint32_t m = replica_host(r);
      verbs::QpConfig ra = a;
      ra.cq = en->ctx->create_cq();
      // Failover needs dead-peer detection: bound the retry budget so a
      // crashed replica host turns into kRetryExceeded instead of
      // retrying forever.
      if (cfg_.failover) ra.retry_cnt = cfg_.failover_retry_cnt;
      verbs::QpConfig rb = b;
      rb.cq = ctxs_.at(m)->create_cq();
      auto* rqa = en->ctx->create_qp(ra);
      auto* rqb = ctxs_.at(m)->create_qp(rb);
      verbs::Context::connect(*rqa, *rqb);
      en->replica_qps.push_back(rqa);
    }
    en->tail = std::make_unique<remem::RemoteSequencer>(*qa, log_mr_->addr,
                                                        log_mr_->key);
    engines_.push_back(std::move(en));
  }

  // Pre-fill every engine's data table with checksummed records.
  for (auto& en : engines_) {
    for (std::uint64_t i = 0; i < cfg_.records_per_engine; ++i) {
      std::byte* rec = en->table.data() + i * cfg_.record_size;
      const std::uint64_t id64 = en->id;
      std::memcpy(rec, &id64, 8);
      std::memcpy(rec + 8, &i, 8);
      for (std::size_t b = 16; b + 8 <= cfg_.record_size - 8; b += 8) {
        const std::uint64_t w = (id64 << 32) ^ i ^ b;
        std::memcpy(rec + b, &w, 8);
      }
      const std::uint64_t sum = record_checksum(rec, cfg_.record_size);
      std::memcpy(rec + cfg_.record_size - 8, &sum, 8);
    }
  }
}

sim::Task DistributedLog::run_engine(Engine* en, sim::CountdownLatch& done) {
  auto& eng = en->ctx->engine();
  const auto& p = en->ctx->params();
  const std::uint32_t bs = cfg_.batch_size;

  for (std::uint64_t i = 0; i < cfg_.records_per_engine; i += bs) {
    const std::uint32_t count = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bs, cfg_.records_per_engine - i));
    const std::uint32_t bytes = count * cfg_.record_size;

    // 0. Execute the transactions that produce these records.
    co_await sim::delay(eng, cfg_.record_cpu * count);

    // 1. Reserve consecutive space in the global log (remote FAA).
    const std::uint64_t offset = co_await en->tail->next(bytes);

    // 2. Assemble the write.
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.remote_addr = log_mr_->addr + 64 + offset;
    wr.rkey = log_mr_->key;
    const bool tables_remote = en->table_socket != en->socket;
    if (cfg_.numa_aware && tables_remote) {
      // SP copy path: coalesce the batch's records from the alternate-
      // socket tables into the NUMA-friendly staging buffer (one
      // streaming copy — the records are adjacent here), then write
      // from there so the RNIC's gather DMA never crosses sockets.
      std::memcpy(en->staging.data(),
                  en->table.data() + i * cfg_.record_size, bytes);
      co_await sim::delay(
          eng, p.memcpy_time(bytes) +
                   en->ctx->machine().topo().cpu_mem_penalty(
                       en->socket, en->table_socket));
      wr.sg_list = {{en->staging_mr->addr, bytes, en->staging_mr->key}};
    } else {
      // SGL coalescing straight from the data tables (contiguous here,
      // so one SGE covers the batch; scattered tables would add SGEs).
      wr.sg_list = {{en->table_mr->addr + i * cfg_.record_size, bytes,
                     en->table_mr->key}};
    }
    if (en->replica_qps.empty()) {
      const auto c = co_await en->qp->execute(std::move(wr));
      RDMASEM_CHECK_MSG(c.ok(), "log append failed");
    } else {
      // Tailwind-style replication: the primary and every live replica
      // write go out in parallel (waiters registered before posting); the
      // append is acknowledged when ALL of them have landed. A replica
      // whose connection died (host crash -> retry exhaustion) is dropped
      // from the set — the failover path — so later appends stream to the
      // survivors only; without failover any failure aborts.
      std::uint32_t live = 0;
      for (auto* q : en->replica_qps) live += (q != nullptr) ? 1u : 0u;
      sim::CountdownLatch landed(eng, 1 + live);
      auto arm = [&](verbs::QueuePair* q, verbs::WorkRequest w,
                     int replica) {
        w.wr_id = q->context().next_wr_id();
        w.signaled = true;
        auto waiter = [](DistributedLog* log, Engine* e,
                         verbs::QueuePair* qq, std::uint64_t wid,
                         int rep, sim::CountdownLatch& d) -> sim::Task {
          const auto c = co_await qq->wait(wid);
          if (!c.ok()) {
            RDMASEM_CHECK_MSG(log->cfg_.failover && rep >= 0,
                              "replicated append failed");
            log->drop_replica(e, static_cast<std::uint32_t>(rep));
          }
          d.count_down();
        };
        eng.spawn(waiter(this, en, q, w.wr_id, replica, landed));
        return w;
      };
      // Primary.
      co_await en->qp->post(arm(en->qp, wr, -1));
      // Replicas: same extent offset in each replica image.
      for (std::size_t r = 0; r < en->replica_qps.size(); ++r) {
        auto* rq = en->replica_qps[r];
        if (rq == nullptr) continue;  // dropped by an earlier append
        verbs::WorkRequest rep = wr;
        rep.remote_addr = replica_mrs_[r]->addr + 64 + offset;
        rep.rkey = replica_mrs_[r]->key;
        co_await rq->post(arm(rq, rep, static_cast<int>(r)));
      }
      co_await landed.wait();
    }
    en->appended += count;
  }
  done.count_down();
}

void DistributedLog::drop_replica(Engine* en, std::uint32_t r) {
  if (en->replica_qps[r] == nullptr) return;
  en->replica_qps[r] = nullptr;  // this engine stops replicating to r
  // r is no longer a recovery candidate. Engines on different lanes can
  // fail over concurrently; all of this commutes.
  replica_dead_[r].store(true, std::memory_order_relaxed);
  failovers_.fetch_add(1, std::memory_order_relaxed);
  const sim::Time now = en->ctx->engine().now();
  sim::Time prev = first_failover_at_.load(std::memory_order_relaxed);
  while ((prev == 0 || now < prev) &&
         !first_failover_at_.compare_exchange_weak(
             prev, now, std::memory_order_relaxed)) {
  }
}

Result DistributedLog::run() {
  auto& eng = ctxs_[0]->engine();
  sim::CountdownLatch done(eng, cfg_.engines);
  const sim::Time start = eng.now();
  // Each engine runs on its machine's lane end to end (its QPs are local).
  for (auto& en : engines_)
    eng.spawn_on(en->machine + 1, run_engine(en.get(), done));
  eng.run();
  RDMASEM_CHECK_MSG(done.remaining() == 0, "engines did not finish");

  Result r;
  r.elapsed = eng.now() - start;
  r.records = static_cast<std::uint64_t>(cfg_.engines) *
              cfg_.records_per_engine;
  r.mops = static_cast<double>(r.records) / sim::to_us(r.elapsed);
  r.log_bytes = tail();
  r.failovers = failovers_;
  r.first_failover_at = first_failover_at_;
  return r;
}

std::uint64_t DistributedLog::tail() const {
  std::uint64_t t = 0;
  std::memcpy(&t, log_mem_.data(), 8);
  return t;
}

bool DistributedLog::verify_image(const std::byte* records_base,
                                  std::uint64_t record_bytes) const {
  // Every record slot in [0, record_bytes) must hold an intact record;
  // count per engine must match what it appended.
  std::vector<std::uint64_t> per_engine(cfg_.engines, 0);
  for (std::uint64_t off = 0; off < record_bytes; off += cfg_.record_size) {
    const std::byte* rec = records_base + off;
    std::uint64_t id = 0, sum = 0;
    std::memcpy(&id, rec, 8);
    std::memcpy(&sum, rec + cfg_.record_size - 8, 8);
    if (id >= cfg_.engines) return false;
    if (sum != record_checksum(rec, cfg_.record_size)) return false;
    ++per_engine[id];
  }
  for (std::uint32_t e = 0; e < cfg_.engines; ++e)
    if (per_engine[e] != cfg_.records_per_engine) return false;
  return true;
}

bool DistributedLog::verify_dense_and_intact() const {
  const std::uint64_t expect_records =
      static_cast<std::uint64_t>(cfg_.engines) * cfg_.records_per_engine;
  if (tail() != expect_records * cfg_.record_size) return false;
  return verify_image(log_mem_.data() + 64, tail());
}

bool DistributedLog::verify_replicas_identical() const {
  for (std::size_t r = 0; r < replica_mem_.size(); ++r) {
    if (replica_dead_[r]) continue;  // dropped by failover; image is stale
    if (std::memcmp(replica_mem_[r].data() + 64, log_mem_.data() + 64,
                    tail()) != 0)
      return false;
  }
  return true;
}

bool DistributedLog::recover_from_replica(std::uint32_t r) const {
  if (r >= replica_mem_.size() || replica_dead_[r]) return false;
  // The tail word lives only on the primary (it is the FAA target); a
  // recovering node learns the extent from the replica's record area.
  return verify_image(replica_mem_[r].data() + 64, tail());
}

}  // namespace rdmasem::apps::dlog
