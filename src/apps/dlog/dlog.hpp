#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "remem/atomics.hpp"
#include "sim/sync.hpp"
#include "remem/batch.hpp"
#include "verbs/buffer.hpp"
#include "verbs/context.hpp"

namespace rdmasem::apps::dlog {

// Distributed log (§IV-E): an append-only, totally ordered record sequence
// in the remote memory of a log server. The whole append path is
// one-sided:
//
//   reserve : remote fetch-and-add on the global tail advances it by the
//             batch's bytes and hands the writer a private extent
//   write   : one RDMA Write (SGL-coalesced records) into the extent
//
// NUMA-awareness (the paper's design): a transaction engine whose data
// tables live on its alternate socket first copies and coalesces the
// records into buffers on its NUMA-friendly socket (SP), then writes
// from there; without it the write gathers straight from the alternate
// socket's tables.
struct Config {
  std::uint32_t engines = 7;            // transaction engines (writers)
  std::uint64_t records_per_engine = 1 << 12;
  std::uint32_t record_size = 64;
  std::uint32_t batch_size = 8;         // records coalesced per reservation
  // Replication factor (§IV-A class III: replicate data to remote memory
  // for fast recovery). 1 = the paper's single global log; R > 1 appends
  // every extent to R-1 additional replica machines (Tailwind-style
  // one-sided replication: same FAA-reserved offset, one RDMA write per
  // replica, no replica CPU involvement).
  std::uint32_t replicas = 1;
  // Transaction-execution CPU per record (the log is a sub-module of a
  // transaction engine; commits are not free).
  sim::Duration record_cpu = sim::ns(400);
  bool numa_aware = true;
  std::uint32_t log_machine = 0;
  std::uint64_t seed = 5;
  // Failure handling. With failover on, a replica connection that dies
  // (retry exhaustion after its host crashes) is dropped and appends
  // continue on the survivors; an append is acknowledged once the primary
  // and every LIVE replica have landed it. Off (default), any failed
  // append aborts — the pre-fault behavior. Replica QPs get the finite
  // `failover_retry_cnt` budget so dead peers are detected instead of
  // retried forever. For crash drills, keep engine hosts disjoint from
  // replica hosts: replicas fill machines from the top (N-1 downward),
  // engines from the bottom (1 upward).
  bool failover = false;
  std::uint32_t failover_retry_cnt = 3;
};

struct Result {
  double mops = 0;  // records appended per microsecond
  sim::Duration elapsed = 0;
  std::uint64_t records = 0;
  std::uint64_t log_bytes = 0;
  // Failover observability: engine->replica connections dropped and the
  // sim time the first drop was detected (0 = no failover happened).
  std::uint64_t failovers = 0;
  sim::Time first_failover_at = 0;
};

class DistributedLog {
 public:
  // ctxs: one per machine; ctxs[cfg.log_machine] hosts the log.
  DistributedLog(std::vector<verbs::Context*> ctxs, const Config& cfg);
  ~DistributedLog();

  Result run();

  // Post-run verification helpers: the log must contain exactly
  // engines*records_per_engine records, each intact (checksum), with
  // disjoint extents densely covering [0, tail).
  std::uint64_t tail() const;
  bool verify_dense_and_intact() const;

  // Replication: every LIVE replica's record area must be byte-identical
  // to the primary's (valid after run(); dead replicas are skipped).
  bool verify_replicas_identical() const;
  // Disaster drill: verify the log can be rebuilt from replica `r` alone
  // (its image passes the same density/integrity checks).
  bool recover_from_replica(std::uint32_t r) const;

  // False once any engine dropped replica `r` (failover after a crash).
  bool replica_alive(std::uint32_t r) const {
    return r < replica_dead_.size() &&
           !replica_dead_[r].load(std::memory_order_relaxed);
  }
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  struct Engine;
  sim::Task run_engine(Engine* en, sim::CountdownLatch& done);
  void drop_replica(Engine* en, std::uint32_t r);

  bool verify_image(const std::byte* records_base,
                    std::uint64_t record_bytes) const;

  std::vector<verbs::Context*> ctxs_;
  Config cfg_;
  verbs::Buffer log_mem_;
  verbs::MemoryRegion* log_mr_ = nullptr;
  // Replica images on other machines, written directly by the engines.
  std::vector<verbs::Buffer> replica_mem_;
  std::vector<verbs::MemoryRegion*> replica_mrs_;
  std::vector<std::unique_ptr<Engine>> engines_;
  // Failover bookkeeping is written from every engine's lane: dead flags
  // and the failover count commute (set-true / increment), and the first
  // failover time is a min — all shard-layout independent.
  std::vector<std::atomic<bool>> replica_dead_;
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<sim::Time> first_failover_at_{0};
};

}  // namespace rdmasem::apps::dlog
