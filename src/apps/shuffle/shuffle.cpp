#include "apps/shuffle/shuffle.hpp"

#include <cstring>

#include "sim/sync.hpp"
#include "util/assert.hpp"
#include "wl/zipf.hpp"

namespace rdmasem::apps::shuffle {

namespace {
// Order-independent checksum of one entry's bytes.
std::uint64_t entry_checksum(const std::byte* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, std::min<std::size_t>(8, n - i));
    h = (h ^ w) * 1099511628211ULL;
  }
  return h;
}
}  // namespace

struct Shuffle::Executor {
  std::uint32_t id;
  std::uint32_t machine;
  hw::SocketId socket;
  verbs::Context* ctx;
  verbs::Buffer send_buf;
  verbs::MemoryRegion* send_mr;
  verbs::Buffer recv_buf;
  verbs::MemoryRegion* recv_mr;
  // Pull mode: per-destination staging on the SENDER + a control array on
  // the RECEIVER where producers post their entry counts.
  verbs::Buffer stage_buf;
  verbs::MemoryRegion* stage_mr = nullptr;
  verbs::Buffer ctrl_buf;
  verbs::MemoryRegion* ctrl_mr = nullptr;
  std::uint64_t pair_capacity;  // entries per (src,dst) sub-region
  // Outgoing QPs: one per destination executor.
  std::vector<verbs::QueuePair*> qps;
  // Inbound endpoints: in_qps[src] lives on THIS executor's machine and is
  // connected to src (pull mode READs through it).
  std::vector<verbs::QueuePair*> in_qps;
  std::vector<std::unique_ptr<remem::Batcher>> batchers;
  std::vector<std::unique_ptr<remem::RemoteSequencer>> done_counters;
  // Per-destination state.
  std::vector<std::vector<remem::BatchItem>> pending;
  std::vector<std::uint64_t> cursor;       // entries already shipped per dst
  std::vector<std::uint64_t> sent_count;   // ground truth for verification
  std::uint64_t gen_off = 0;               // next free byte in send_buf

  // Offset of (src,dst) pair sub-region inside dst's recv_buf.
  std::uint64_t pair_off(std::uint32_t src, std::size_t entry_size) const {
    return 64 + static_cast<std::uint64_t>(src) * pair_capacity * entry_size;
  }
};

Shuffle::~Shuffle() = default;

Shuffle::Shuffle(std::vector<verbs::Context*> ctxs, const Config& cfg)
    : ctxs_(std::move(ctxs)), cfg_(cfg) {
  RDMASEM_CHECK_MSG(!ctxs_.empty(), "no contexts");
  const std::uint32_t n = cfg_.executors;
  const auto& p = ctxs_[0]->params();

  // Expected entries per pair plus generous slack (workload is seeded and
  // deterministic: if it fits once, it always fits).
  const std::uint64_t expected = cfg_.entries_per_executor / n;
  const std::uint64_t cap = expected + expected / 2 + 256;

  for (std::uint32_t e = 0; e < n; ++e) {
    auto ex = std::make_unique<Executor>();
    ex->id = e;
    ex->machine = e % std::min<std::uint32_t>(
                          cfg_.machines,
                          static_cast<std::uint32_t>(ctxs_.size()));
    // The executor's thread alternates sockets regardless of the policy —
    // numa_aware decides whether its port/memory MATCH that socket below.
    ex->socket = e % p.sockets_per_machine;
    ex->ctx = ctxs_[ex->machine];
    ex->pair_capacity = cap;
    ex->send_buf =
        verbs::Buffer(cfg_.entries_per_executor * cfg_.entry_size);
    ex->send_mr = ex->ctx->register_buffer(ex->send_buf, ex->socket);
    // Recv region: [done counter (64 B)] [n pair sub-regions].
    ex->recv_buf = verbs::Buffer(64 + static_cast<std::size_t>(n) * cap *
                                          cfg_.entry_size);
    ex->recv_mr = ex->ctx->register_buffer(ex->recv_buf, ex->socket);
    if (cfg_.direction == Direction::kPull) {
      ex->stage_buf = verbs::Buffer(static_cast<std::size_t>(n) * cap *
                                    cfg_.entry_size);
      ex->stage_mr = ex->ctx->register_buffer(ex->stage_buf, ex->socket);
      ex->ctrl_buf = verbs::Buffer(static_cast<std::size_t>(n) * 64);
      ex->ctrl_mr = ex->ctx->register_buffer(ex->ctrl_buf, ex->socket);
    }
    ex->pending.resize(n);
    ex->cursor.assign(n, 0);
    ex->sent_count.assign(n, 0);
    executors_.push_back(std::move(ex));
  }

  // Full-mesh QPs: src -> dst, port bound to each side's socket when
  // NUMA-aware (matched placement), default port otherwise.
  for (auto& src : executors_) {
    for (auto& dst : executors_) {
      verbs::QpConfig a{.port = cfg_.numa_aware ? src->socket : p.rnic_socket,
                        .core_socket = src->socket,
                        .cq = src->ctx->create_cq()};
      verbs::QpConfig b{.port = cfg_.numa_aware ? dst->socket : p.rnic_socket,
                        .core_socket = dst->socket,
                        .cq = dst->ctx->create_cq()};
      auto* qa = src->ctx->create_qp(a);
      auto* qb = dst->ctx->create_qp(b);
      verbs::Context::connect(*qa, *qb);
      src->qps.push_back(qa);
      dst->in_qps.push_back(qb);  // indexed by src id (outer loop order)
      switch (cfg_.batch) {
        case BatchMode::kSp:
          src->batchers.push_back(std::make_unique<remem::SpBatcher>(
              *qa, cfg_.batch_size * cfg_.entry_size));
          break;
        case BatchMode::kSgl:
          src->batchers.push_back(std::make_unique<remem::SglBatcher>(*qa));
          break;
        case BatchMode::kDoorbell:
          src->batchers.push_back(
              std::make_unique<remem::DoorbellBatcher>(*qa));
          break;
        case BatchMode::kNone:
          src->batchers.push_back(nullptr);
          break;
      }
      src->done_counters.push_back(std::make_unique<remem::RemoteSequencer>(
          *qa, dst->recv_mr->addr, dst->recv_mr->key));
    }
  }
}

sim::Task Shuffle::run_executor(Executor* ex, sim::CountdownLatch& done) {
  auto& eng = ex->ctx->engine();
  const auto& p = ex->ctx->params();
  const std::uint32_t n = cfg_.executors;
  sim::Rng rng(cfg_.seed * 1000003 + ex->id);

  auto flush = [this, ex](std::uint32_t dst) -> sim::TaskT<void> {
    auto& items = ex->pending[dst];
    if (items.empty()) co_return;
    Executor* d = executors_[dst].get();
    const std::uint64_t remote_base =
        d->recv_mr->addr + d->pair_off(ex->id, cfg_.entry_size) +
        ex->cursor[dst] * cfg_.entry_size;
    RDMASEM_CHECK_MSG(ex->cursor[dst] + items.size() <= ex->pair_capacity,
                      "pair sub-region overflow");
    if (cfg_.batch == BatchMode::kNone) {
      // Unbatched push: one write per entry.
      for (auto& item : items) {
        verbs::WorkRequest wr;
        wr.opcode = verbs::Opcode::kWrite;
        wr.sg_list = {item.local};
        wr.remote_addr = item.remote_addr;
        wr.rkey = d->recv_mr->key;
        const auto c = co_await ex->qps[dst]->execute(std::move(wr));
        RDMASEM_CHECK(c.ok());
      }
    } else {
      const auto c = co_await ex->batchers[dst]->flush_write(
          items, remote_base, d->recv_mr->key);
      RDMASEM_CHECK(c.ok());
    }
    ex->cursor[dst] += items.size();
    items.clear();
  };

  for (std::uint64_t i = 0; i < cfg_.entries_per_executor; ++i) {
    // Generate the entry: key + payload, written into the send buffer.
    const std::uint64_t key = cfg_.keygen ? cfg_.keygen(ex->id, i)
                                          : rng.next();
    const std::uint32_t dst = dest_of(key, n);
    std::byte* rec = ex->send_buf.data() + ex->gen_off;
    std::memcpy(rec, &key, 8);
    for (std::size_t b = 8; b < cfg_.entry_size; b += 8) {
      const std::uint64_t w = key ^ (b * 0x9e3779b97f4a7c15ULL);
      std::memcpy(rec + b, &w, std::min<std::size_t>(8, cfg_.entry_size - b));
    }
    sent_checksum_.fetch_add(entry_checksum(rec, cfg_.entry_size),
                             std::memory_order_relaxed);
    co_await sim::delay(eng, p.cpu_tuple_work + p.cpu_hash);

    Executor* d = executors_[dst].get();
    const std::uint64_t slot = ex->cursor[dst] + ex->pending[dst].size();
    ex->pending[dst].push_back(remem::BatchItem{
        {ex->send_mr->addr + ex->gen_off, cfg_.entry_size, ex->send_mr->key},
        d->recv_mr->addr + d->pair_off(ex->id, cfg_.entry_size) +
            slot * cfg_.entry_size});
    ex->gen_off += cfg_.entry_size;
    ++ex->sent_count[dst];

    const std::uint32_t trip =
        cfg_.batch == BatchMode::kNone ? 1 : cfg_.batch_size;
    if (ex->pending[dst].size() >= trip) co_await flush(dst);
  }
  for (std::uint32_t dst = 0; dst < n; ++dst) co_await flush(dst);

  // Stage hand-off: one-sided verbs are invisible to the next stage, so
  // signal completion with remote fetch-and-add on every destination's
  // done-counter (§IV-C Atomic operation).
  for (std::uint32_t dst = 0; dst < n; ++dst)
    (void)co_await ex->done_counters[dst]->next();

  done.count_down();
}

// Pull mode, stage 1: partition entries into per-destination staging runs
// on the sender (CPU copies, like a map task's spill), then post each
// destination's count into its control array (one small WRITE).
sim::Task Shuffle::run_producer(Executor* ex, sim::CountdownLatch& staged) {
  auto& eng = ex->ctx->engine();
  const auto& p = ex->ctx->params();
  const std::uint32_t n = cfg_.executors;
  sim::Rng rng(cfg_.seed * 1000003 + ex->id);

  for (std::uint64_t i = 0; i < cfg_.entries_per_executor; ++i) {
    const std::uint64_t key = cfg_.keygen ? cfg_.keygen(ex->id, i)
                                          : rng.next();
    const std::uint32_t dst = dest_of(key, n);
    RDMASEM_CHECK_MSG(ex->sent_count[dst] < ex->pair_capacity,
                      "staging sub-region overflow");
    std::byte* rec = ex->stage_buf.data() +
                     (static_cast<std::uint64_t>(dst) * ex->pair_capacity +
                      ex->sent_count[dst]) * cfg_.entry_size;
    std::memcpy(rec, &key, 8);
    for (std::size_t b = 8; b < cfg_.entry_size; b += 8) {
      const std::uint64_t w = key ^ (b * 0x9e3779b97f4a7c15ULL);
      std::memcpy(rec + b, &w, std::min<std::size_t>(8, cfg_.entry_size - b));
    }
    sent_checksum_.fetch_add(entry_checksum(rec, cfg_.entry_size),
                             std::memory_order_relaxed);
    ++ex->sent_count[dst];
    co_await sim::delay(eng, p.cpu_tuple_work + p.cpu_hash +
                                 p.memcpy_time(cfg_.entry_size));
  }
  // Publish counts (count+1 so "0 entries" is distinguishable from
  // "not yet published").
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    Executor* d = executors_[dst].get();
    std::byte* slot = ex->ctrl_buf.data() + 56;  // scratch word for the WR
    const std::uint64_t v = ex->sent_count[dst] + 1;
    std::memcpy(slot, &v, 8);
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sg_list = {{ex->ctrl_mr->addr + 56, 8, ex->ctrl_mr->key}};
    wr.remote_addr = d->ctrl_mr->addr + static_cast<std::uint64_t>(ex->id) * 64;
    wr.rkey = d->ctrl_mr->key;
    const auto c = co_await ex->qps[dst]->execute(std::move(wr));
    RDMASEM_CHECK(c.ok());
  }
  staged.count_down();
}

// Pull mode, stage 2: the receiver polls its control array and READs each
// producer's staged run in batch_size-entry chunks (out-bound READ — the
// path the paper argues against).
sim::Task Shuffle::run_puller(Executor* ex, sim::CountdownLatch& staged,
                              sim::CountdownLatch& done) {
  auto& eng = ex->ctx->engine();
  const std::uint32_t n = cfg_.executors;
  const std::uint32_t chunk =
      std::max<std::uint32_t>(1, cfg_.batch == BatchMode::kNone
                                     ? 1
                                     : cfg_.batch_size);
  for (std::uint32_t src = 0; src < n; ++src) {
    // Poll local memory until src's count arrives (its WRITE lands in our
    // control array).
    std::uint64_t published = 0;
    for (;;) {
      std::memcpy(&published,
                  ex->ctrl_buf.data() + static_cast<std::uint64_t>(src) * 64,
                  8);
      if (published != 0) break;
      co_await sim::delay(eng, sim::ns(500));
    }
    const std::uint64_t count = published - 1;
    Executor* s = executors_[src].get();
    for (std::uint64_t off = 0; off < count; off += chunk) {
      const auto entries =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(chunk,
                                                             count - off));
      verbs::WorkRequest wr;
      wr.opcode = verbs::Opcode::kRead;
      wr.sg_list = {{ex->recv_mr->addr + ex->pair_off(src, cfg_.entry_size) +
                         off * cfg_.entry_size,
                     entries * cfg_.entry_size, ex->recv_mr->key}};
      wr.remote_addr = s->stage_mr->addr +
                       (static_cast<std::uint64_t>(ex->id) *
                            s->pair_capacity +
                        off) *
                           cfg_.entry_size;
      wr.rkey = s->stage_mr->key;
      const auto c = co_await ex->in_qps[src]->execute(std::move(wr));
      RDMASEM_CHECK(c.ok());
    }
  }
  (void)staged;
  done.count_down();
}

Result Shuffle::run() {
  auto& eng = ctxs_[0]->engine();
  sim::CountdownLatch done(eng, cfg_.executors);
  const sim::Time start = eng.now();
  // Each executor's coroutine runs on its machine's lane end to end (its
  // QPs are local, so verb completions resume it on the same lane); that
  // is what lets the parallel engine spread the mesh across shards.
  if (cfg_.direction == Direction::kPull) {
    sim::CountdownLatch staged(eng, cfg_.executors);
    for (auto& ex : executors_)
      eng.spawn_on(ex->machine + 1, run_producer(ex.get(), staged));
    for (auto& ex : executors_)
      eng.spawn_on(ex->machine + 1, run_puller(ex.get(), staged, done));
  } else {
    for (auto& ex : executors_)
      eng.spawn_on(ex->machine + 1, run_executor(ex.get(), done));
  }
  eng.run();
  RDMASEM_CHECK_MSG(done.remaining() == 0, "executors did not finish");

  Result r;
  r.elapsed = eng.now() - start;
  r.entries = static_cast<std::uint64_t>(cfg_.executors) *
              cfg_.entries_per_executor;
  r.mops = static_cast<double>(r.entries) / sim::to_us(r.elapsed);
  r.checksum = received_checksum();
  return r;
}

std::uint64_t Shuffle::received_checksum() const {
  std::uint64_t sum = 0;
  for (const auto& dst : executors_) {
    for (const auto& src : executors_) {
      const std::uint64_t count = src->sent_count[dst->id];
      const std::byte* base =
          dst->recv_buf.data() +
          (dst->pair_off(src->id, cfg_.entry_size) );
      for (std::uint64_t i = 0; i < count; ++i)
        sum += entry_checksum(base + i * cfg_.entry_size, cfg_.entry_size);
    }
  }
  return sum;
}

std::uint64_t Shuffle::received_count(std::uint32_t executor) const {
  std::uint64_t count = 0;
  for (const auto& src : executors_) count += src->sent_count[executor];
  return count;
}

void Shuffle::visit_received(
    std::uint32_t dst,
    const std::function<void(std::span<const std::byte>)>& fn) const {
  const Executor* d = executors_.at(dst).get();
  for (const auto& src : executors_) {
    const std::uint64_t count = src->sent_count[dst];
    const std::byte* base =
        d->recv_buf.data() + d->pair_off(src->id, cfg_.entry_size);
    for (std::uint64_t i = 0; i < count; ++i)
      fn({base + i * cfg_.entry_size, cfg_.entry_size});
  }
}

std::pair<std::uint32_t, hw::SocketId> Shuffle::placement(
    std::uint32_t e) const {
  const Executor* ex = executors_.at(e).get();
  return {ex->machine, ex->socket};
}

}  // namespace rdmasem::apps::shuffle
