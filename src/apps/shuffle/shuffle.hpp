#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "remem/atomics.hpp"
#include "sim/sync.hpp"
#include "remem/batch.hpp"
#include "verbs/buffer.hpp"
#include "verbs/context.hpp"

namespace rdmasem::apps::shuffle {

// Push-based distributed shuffle (§IV-C, Fig. 14): n source executors
// stream key-value entries and push each to its destination executor's
// registered memory with in-bound RDMA Write. Entries bound for the same
// destination are batched with SP or SGL (the paper's Batch Schedule);
// the receive regions are pre-partitioned per (src, dst) pair so the data
// path needs no per-entry atomics, and stage hand-off uses remote
// fetch-and-add "done" counters (Atomic operation optimization).
//
// NUMA-awareness assigns each executor a dedicated socket with affine
// memory and RNIC port; without it every executor shares the default
// port regardless of its socket.
enum class BatchMode : std::uint8_t { kNone, kSgl, kSp, kDoorbell };

// Data-movement direction. The paper implements PUSH ("in-bound RDMA
// Write has higher performance than out-bound RDMA Read") and cites
// pull-based designs as the alternative; both are implemented here so the
// claim is testable. Pull: senders stage partitioned entries locally and
// raise a doorbell counter; receivers READ their partitions out.
enum class Direction : std::uint8_t { kPush, kPull };

struct Config {
  std::uint32_t executors = 8;        // senders; also receivers (all-to-all)
  std::uint64_t entries_per_executor = 1 << 14;
  std::uint32_t entry_size = 64;      // key u64 + payload
  BatchMode batch = BatchMode::kNone;
  std::uint32_t batch_size = 16;
  Direction direction = Direction::kPush;
  bool numa_aware = true;
  std::uint32_t machines = 8;
  std::uint64_t seed = 42;
  // Optional key source (defaults to a seeded uniform stream). Used by the
  // join operator to shuffle concrete relations.
  std::function<std::uint64_t(std::uint32_t executor, std::uint64_t i)> keygen;
};

struct Result {
  double mops = 0;                   // entries shuffled per microsecond
  sim::Duration elapsed = 0;
  std::uint64_t entries = 0;
  std::uint64_t checksum = 0;        // order-independent payload checksum
};

// Runs one full shuffle round on the given cluster contexts (one per
// machine) and reports throughput plus a verifiable checksum: the sum of
// all received entry checksums must equal the sum of all sent ones.
class Shuffle {
 public:
  Shuffle(std::vector<verbs::Context*> ctxs, const Config& cfg);
  ~Shuffle();

  Result run();

  // Order-independent checksum of everything the receivers got (valid
  // after run()).
  std::uint64_t received_checksum() const;
  std::uint64_t sent_checksum() const {
    return sent_checksum_.load(std::memory_order_relaxed);
  }
  // Entries landed at executor `e` (valid after run()).
  std::uint64_t received_count(std::uint32_t executor) const;

  // Visits every entry received by executor `dst` (valid after run()).
  void visit_received(
      std::uint32_t dst,
      const std::function<void(std::span<const std::byte>)>& fn) const;

  // Placement of executor e (machine id, socket) — the join phase runs its
  // build/probe workers on the same placement.
  std::pair<std::uint32_t, hw::SocketId> placement(std::uint32_t e) const;

  // The shuffle rule: destination executor of a key (hash-partitioned, so
  // structured key sets still spread evenly).
  static std::uint32_t dest_of(std::uint64_t key, std::uint32_t executors) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x % executors);
  }

 private:
  struct Executor;
  sim::Task run_executor(Executor* ex, sim::CountdownLatch& done);
  sim::Task run_producer(Executor* ex, sim::CountdownLatch& staged);
  sim::Task run_puller(Executor* ex, sim::CountdownLatch& staged,
                       sim::CountdownLatch& done);

  std::vector<verbs::Context*> ctxs_;
  Config cfg_;
  std::vector<std::unique_ptr<Executor>> executors_;
  // Summed from every executor's lane; addition commutes, so the total is
  // independent of the shard layout.
  std::atomic<std::uint64_t> sent_checksum_{0};
};

}  // namespace rdmasem::apps::shuffle
