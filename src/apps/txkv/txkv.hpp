#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/sync.hpp"
#include "sync/sync.hpp"
#include "util/stats.hpp"
#include "verbs/buffer.hpp"
#include "verbs/context.hpp"

namespace rdmasem::apps::txkv {

// TxKv — a disaggregated transactional key-value store, the flagship app
// of the sync layer (docs/SYNC.md): every key lives in the memory of one
// server machine as a seqlock-versioned cell plus a lock area, and remote
// workers run a read-validate-write commit protocol against it with zero
// server CPU involvement:
//
//   GET  : one optimistic READ, validated client-side (sync::Validation)
//   TXN  : optimistic READ -> lock -> re-read under the lock (validate)
//          -> seqlock write of the increment -> release
//
// The lock step is pluggable (LockMode); the write/release ordering and
// the read validation carry the sync::Variant knob, so every deliberately
// broken sibling of the protocol runs through the same app and the same
// history — the linearizability/serializability battery then has to catch
// it from the outside.
//
// Value semantics are increments: payload word 0 is the counter value and
// words 1..W derive from it (payload_word), so any snapshot is internally
// checkable and sync::audit_increments can verify serializability at any
// scale from the recorded history plus the final server state.

enum class LockMode : std::uint8_t {
  kSpin,         // CAS spinlock word per key (paper §III-E baseline)
  kSpinBackoff,  // + Anderson exponential backoff
  kMcs,          // MCS queue lock per key (FIFO handoff)
  kLease,        // time-bounded lease with epoch fencing (crash-tolerant)
};

const char* to_string(LockMode m);

struct Config {
  std::uint32_t workers = 8;
  std::uint64_t ops_per_worker = 64;
  std::uint64_t num_keys = 16;
  double zipf_theta = 0.99;    // hot-key skew of the key picks
  double get_fraction = 0.5;   // remaining ops are increment txns
  std::uint32_t payload_words = 4;
  LockMode lock = LockMode::kSpin;
  sync::Variant variant = sync::Variant::kCorrect;
  sync::Validation validation = sync::Validation::kChecksum;
  std::uint32_t server_machine = 0;
  std::uint64_t seed = 42;
  // A txn re-tries (re-read + re-lock) this many times before it gives up
  // and records an aborted op.
  std::uint32_t txn_retry_budget = 64;
  // Artificial hold time between acquiring the lock and writing — drives
  // lease-expiry drills (set it past the lease term) and contention.
  sim::Duration hold_delay = 0;
  // Fault story: with recovery on, a worker whose op fails (retry
  // exhaustion under faults) resets + reconnects its QP, re-lands a
  // consistent cell if it held the lock mid-commit, releases, and goes
  // on. Off, a failed worker stops (crash drills: its lease expires and
  // the survivors take over).
  bool recover_on_failure = false;
  std::uint32_t retry_cnt = verbs::kInfiniteRetry;
  sync::LeaseConfig lease;
  std::uint32_t mcs_max_clients = 64;
  bool record_history = true;
};

struct Result {
  double mops = 0;  // committed txns + validated gets per microsecond
  sim::Duration elapsed = 0;
  std::uint64_t commits = 0;
  std::uint64_t gets = 0;
  std::uint64_t aborts = 0;     // abandoned txns (budget exhausted) and
                                // attempt-level aborts (validation, fence)
  std::uint64_t recoveries = 0;
  std::uint64_t dead_workers = 0;
  double abort_rate = 0;        // aborts / (commits + aborts)
};

class TxKv {
 public:
  static constexpr std::uint64_t kInitialVersion = 2;
  static constexpr std::uint64_t kInitialValue = 0;

  // Payload word i of a cell holding counter `value` (word 0 is the value
  // itself) — snapshots are self-checkable against this derivation.
  static std::uint64_t payload_word(std::uint64_t value, std::uint32_t i);

  // ctxs: one per machine; ctxs[cfg.server_machine] hosts every cell.
  TxKv(std::vector<verbs::Context*> ctxs, const Config& cfg);
  ~TxKv();

  Result run();

  const Config& config() const { return cfg_; }
  const sync::HistoryRecorder& history() const { return *history_; }

  // Post-run server-state probes (host-visible memory, engine drained).
  std::uint64_t key_version(std::uint64_t k) const;
  std::uint64_t key_value(std::uint64_t k) const;
  // head == tail, even, checksum intact.
  bool cell_quiescent(std::uint64_t k) const;
  // Every lock free: spin words 0, MCS tails nil, leases released or
  // expired by `now`.
  bool locks_free(sim::Time now) const;
  // Snapshots whose derived payload words contradicted word 0 — torn
  // values that slipped past (or around) validation.
  std::uint64_t snapshot_integrity_failures() const {
    return snapshot_integrity_failures_;
  }
  // Virtual-ns wait from lock request to grant, across all txn attempts.
  const util::Log2Histogram& lock_wait_ns() const { return lock_wait_ns_; }

 private:
  struct Worker;

  std::uint64_t lock_stride() const;
  std::uint64_t lock_addr(std::uint64_t k) const;
  std::uint64_t cell_addr(std::uint64_t k) const;
  const std::byte* cell_mem(std::uint64_t k) const;

  sim::Task run_worker(Worker* w, sim::CountdownLatch& done);
  sim::TaskT<bool> do_get(Worker* w, std::uint64_t key);
  sim::TaskT<bool> do_txn(Worker* w, std::uint64_t key);
  sim::TaskT<bool> commit(Worker* w, std::uint64_t key,
                          std::uint64_t base_version, std::uint64_t new_value);
  sim::TaskT<bool> acquire_lock(Worker* w, std::uint64_t key);
  sim::TaskT<bool> release_lock(Worker* w, std::uint64_t key);
  // Reset + reconnect after a transport failure; re-lands a consistent
  // cell and releases when the failure struck mid-commit. False = the
  // worker stays dead.
  sim::TaskT<bool> recover(Worker* w);
  bool payload_consistent(const std::vector<std::uint64_t>& payload);

  std::vector<verbs::Context*> ctxs_;
  Config cfg_;
  sync::CellLayout cell_layout_;
  verbs::Buffer server_mem_;
  verbs::MemoryRegion* server_mr_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<sync::HistoryRecorder> history_;
  util::Log2Histogram lock_wait_ns_;
  std::uint64_t snapshot_integrity_failures_ = 0;  // summed post-run
};

}  // namespace rdmasem::apps::txkv
