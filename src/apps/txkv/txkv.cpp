#include "apps/txkv/txkv.hpp"

#include <cstring>

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"
#include "remem/atomics.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"
#include "util/assert.hpp"
#include "wl/zipf.hpp"

namespace rdmasem::apps::txkv {

const char* to_string(LockMode m) {
  switch (m) {
    case LockMode::kSpin: return "spin";
    case LockMode::kSpinBackoff: return "spin+backoff";
    case LockMode::kMcs: return "mcs";
    case LockMode::kLease: return "lease";
  }
  return "?";
}

std::uint64_t TxKv::payload_word(std::uint64_t value, std::uint32_t i) {
  if (i == 0) return value;
  std::uint64_t x = value ^ (0x9e3779b97f4a7c15ull * i);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct TxKv::Worker {
  std::uint32_t id = 0;
  std::uint32_t machine = 0;
  hw::SocketId socket = 0;
  verbs::Context* ctx = nullptr;
  verbs::QueuePair* qp = nullptr;
  verbs::QueuePair* server_qp = nullptr;
  std::unique_ptr<sync::RemoteVersionedCell> cell;
  std::unique_ptr<remem::RemoteLockClient> locks;  // spin modes
  std::unique_ptr<sync::McsLock> mcs;
  std::unique_ptr<sync::LeaseLock> lease;
  // Staging ring for the unfenced commit path: fire-and-forget WRs need
  // bytes that outlive the post, so slots rotate instead of reusing one.
  verbs::Buffer staging;
  verbs::MemoryRegion* staging_mr = nullptr;
  std::uint32_t slot = 0;
  std::unique_ptr<wl::ZipfGenerator> zipf;
  sim::Rng rng;
  std::uint64_t commits = 0;
  std::uint64_t gets = 0;
  std::uint64_t aborts = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t integrity_failures = 0;
  bool dead = false;
  // Mid-op state recovery needs: what was locked / being committed.
  bool lock_held = false;
  bool mid_commit = false;
  std::uint64_t cur_key = 0;
  std::uint64_t cur_base_version = 0;
  std::uint64_t cur_new_value = 0;
};

TxKv::~TxKv() = default;

std::uint64_t TxKv::lock_stride() const {
  if (cfg_.lock == LockMode::kMcs)
    return sync::McsLock::Layout{cfg_.mcs_max_clients}.bytes();
  return 16;  // spin word / lease word pair
}

std::uint64_t TxKv::lock_addr(std::uint64_t k) const {
  return server_mr_->addr + k * lock_stride();
}

std::uint64_t TxKv::cell_addr(std::uint64_t k) const {
  return server_mr_->addr + cfg_.num_keys * lock_stride() +
         k * cell_layout_.bytes();
}

const std::byte* TxKv::cell_mem(std::uint64_t k) const {
  return server_mem_.data() + cfg_.num_keys * lock_stride() +
         k * cell_layout_.bytes();
}

TxKv::TxKv(std::vector<verbs::Context*> ctxs, const Config& cfg)
    : ctxs_(std::move(ctxs)), cfg_(cfg),
      cell_layout_{cfg.payload_words} {
  RDMASEM_CHECK_MSG(ctxs_.size() >= 2, "txkv needs a server and a worker host");
  RDMASEM_CHECK_MSG(cfg_.lock != LockMode::kMcs ||
                        cfg_.workers <= cfg_.mcs_max_clients,
                    "more workers than MCS qnodes");
  const auto& p = ctxs_[0]->params();
  auto* server_ctx = ctxs_.at(cfg_.server_machine);

  // Server image: [per-key lock area][per-key versioned cells].
  server_mem_ = verbs::Buffer(cfg_.num_keys *
                              (lock_stride() + cell_layout_.bytes()));
  server_mr_ = server_ctx->register_buffer(server_mem_, p.rnic_socket);
  std::memset(server_mem_.data(), 0, server_mem_.size());
  std::vector<std::uint64_t> init(cfg_.payload_words);
  for (std::uint32_t i = 0; i < cfg_.payload_words; ++i)
    init[i] = payload_word(kInitialValue, i);
  for (std::uint64_t k = 0; k < cfg_.num_keys; ++k)
    sync::cell_format(server_mem_.data() + cfg_.num_keys * lock_stride() +
                          k * cell_layout_.bytes(),
                      cell_layout_, kInitialVersion, init.data());

  history_ = std::make_unique<sync::HistoryRecorder>(cfg_.workers);

  const auto hosts = static_cast<std::uint32_t>(ctxs_.size()) - 1;
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    // Workers live off the server machine, spread round-robin.
    w->machine = 1 + (cfg_.server_machine + i) % hosts;
    if (w->machine == cfg_.server_machine)
      w->machine = (w->machine + 1) % static_cast<std::uint32_t>(ctxs_.size());
    w->socket = (i / hosts) % p.sockets_per_machine;
    w->ctx = ctxs_.at(w->machine);
    verbs::QpConfig a{.port = w->socket,
                      .core_socket = w->socket,
                      .cq = w->ctx->create_cq()};
    a.retry_cnt = cfg_.retry_cnt;
    verbs::QpConfig b{.port = p.rnic_socket,
                      .core_socket = p.rnic_socket,
                      .cq = server_ctx->create_cq()};
    w->qp = w->ctx->create_qp(a);
    w->server_qp = server_ctx->create_qp(b);
    verbs::Context::connect(*w->qp, *w->server_qp);

    w->cell = std::make_unique<sync::RemoteVersionedCell>(
        *w->qp, cell_addr(0), server_mr_->key, cell_layout_, cfg_.validation,
        cfg_.variant == sync::Variant::kTornRead ? sync::Variant::kTornRead
                                                 : sync::Variant::kCorrect);
    switch (cfg_.lock) {
      case LockMode::kSpin:
        w->locks = std::make_unique<remem::RemoteLockClient>(*w->qp);
        break;
      case LockMode::kSpinBackoff:
        w->locks = std::make_unique<remem::RemoteLockClient>(
            *w->qp, remem::BackoffPolicy::exponential());
        break;
      case LockMode::kMcs:
        w->mcs = std::make_unique<sync::McsLock>(
            *w->qp, lock_addr(0), server_mr_->key,
            sync::McsLock::Layout{cfg_.mcs_max_clients}, i + 1,
            remem::BackoffPolicy::exponential());
        break;
      case LockMode::kLease:
        w->lease = std::make_unique<sync::LeaseLock>(
            *w->qp, lock_addr(0), server_mr_->key, cfg_.lease,
            cfg_.variant == sync::Variant::kStaleLease
                ? sync::Variant::kStaleLease
                : sync::Variant::kCorrect);
        break;
    }
    w->staging = verbs::Buffer(4 * cell_layout_.bytes());
    w->staging_mr = w->ctx->register_buffer(
        w->staging, w->ctx->machine().port_socket(a.port));
    w->zipf = std::make_unique<wl::ZipfGenerator>(
        cfg_.num_keys, cfg_.zipf_theta, cfg_.seed ^ (0xabcd0000ull + i));
    w->rng.reseed(cfg_.seed * 0x9e3779b97f4a7c15ull + i);
    workers_.push_back(std::move(w));
  }
}

bool TxKv::payload_consistent(const std::vector<std::uint64_t>& payload) {
  for (std::uint32_t i = 1; i < payload.size(); ++i)
    if (payload[i] != payload_word(payload[0], i)) return false;
  return true;
}

sim::TaskT<bool> TxKv::acquire_lock(Worker* w, std::uint64_t key) {
  obs::Hub& hub = w->ctx->cluster().obs();
  switch (cfg_.lock) {
    case LockMode::kSpin:
    case LockMode::kSpinBackoff: {
      const auto o = co_await w->locks->lock(lock_addr(key), server_mr_->key);
      if (!o.ok()) co_return false;
      hub.lock_acquires.inc();
      co_return true;
    }
    case LockMode::kMcs: {
      w->mcs->retarget(lock_addr(key));
      const auto o = co_await w->mcs->acquire();
      co_return o.ok();
    }
    case LockMode::kLease: {
      w->lease->retarget(lock_addr(key));
      const auto o = co_await w->lease->acquire();
      co_return o.ok();
    }
  }
  co_return false;
}

sim::TaskT<bool> TxKv::release_lock(Worker* w, std::uint64_t key) {
  switch (cfg_.lock) {
    case LockMode::kSpin:
    case LockMode::kSpinBackoff: {
      const auto st = co_await w->locks->unlock(lock_addr(key),
                                                server_mr_->key);
      co_return st == verbs::Status::kSuccess;
    }
    case LockMode::kMcs: {
      const auto st = co_await w->mcs->release();
      co_return st == verbs::Status::kSuccess;
    }
    case LockMode::kLease: {
      const auto st = co_await w->lease->release();
      co_return st == verbs::Status::kSuccess;
    }
  }
  co_return false;
}

sim::TaskT<bool> TxKv::recover(Worker* w) {
  if (!cfg_.recover_on_failure) {
    w->dead = true;
    co_return false;
  }
  sim::Engine& eng = w->ctx->engine();
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
    ++w->recoveries;
    // Back off past the fault window, then rebuild the connection.
    co_await sim::delay(eng, sim::us(50) * attempt);
    w->qp->reset();
    w->server_qp->reset();
    verbs::Context::connect(*w->qp, *w->server_qp);
    if (w->mid_commit) {
      // The failure struck with the commit in flight and the lock held:
      // re-land the WHOLE cell (awaited seqlock write — idempotent, we
      // still own the lock) so no torn state survives the fault.
      w->cell->retarget(cell_addr(w->cur_key));
      std::vector<std::uint64_t> payload(cfg_.payload_words);
      for (std::uint32_t i = 0; i < cfg_.payload_words; ++i)
        payload[i] = payload_word(w->cur_new_value, i);
      const auto st =
          co_await w->cell->write(w->cur_base_version, payload.data());
      if (st != verbs::Status::kSuccess) continue;
    }
    if (w->lock_held) {
      if (!co_await release_lock(w, w->cur_key)) continue;
      w->lock_held = false;
    }
    co_return true;
  }
  w->dead = true;
  co_return false;
}

sim::TaskT<bool> TxKv::commit(Worker* w, std::uint64_t key,
                              std::uint64_t base_version,
                              std::uint64_t new_value) {
  std::vector<std::uint64_t> payload(cfg_.payload_words);
  for (std::uint32_t i = 0; i < cfg_.payload_words; ++i)
    payload[i] = payload_word(new_value, i);

  if (cfg_.variant != sync::Variant::kUnfencedRelease) {
    // Correct ordering: every seqlock step is awaited (the CQEs fence the
    // protocol), and only then does the release go out.
    const auto st = co_await w->cell->write(base_version, payload.data());
    if (st != verbs::Status::kSuccess) co_return false;
    co_return co_await release_lock(w, key);
  }

  // BROKEN (kUnfencedRelease): the data writes are posted fire-and-forget
  // and the release follows immediately. Loss recovery is per-WR, so a
  // lost data write's retransmit can land after the release — and after
  // the next holder's writes (the lost update the battery must catch).
  const std::uint32_t W = cfg_.payload_words;
  const std::size_t cell_bytes = cell_layout_.bytes();
  const std::size_t soff = (w->slot++ % 4) * cell_bytes + 0;
  auto* stage = w->staging.as<std::uint64_t>(soff);
  stage[0] = base_version + 1;
  std::memcpy(stage + 1, payload.data(), 8ul * W);
  stage[1 + W] = base_version + 2;
  stage[2 + W] = sync::cell_checksum(base_version + 2, payload.data(), W);
  // The even head needs its own staged word — the ring slot has room
  // because staging slots are cell-sized and the cell has a cksum word we
  // can follow (slot size = bytes() = 8*(W+3), words used: W+4). Stash it
  // in the NEXT slot's first word instead to stay in bounds.
  const std::size_t head_off = ((w->slot + 1) % 4) * cell_bytes;
  *w->staging.as<std::uint64_t>(head_off) = base_version + 2;

  const std::uint64_t sbase = w->staging_mr->addr + soff;
  const std::uint64_t raddr = cell_addr(key);
  auto fire = [this, w](std::uint64_t laddr, std::uint64_t raddr_,
                        std::uint32_t len) -> sim::TaskT<void> {
    verbs::WorkRequest wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sg_list = {{laddr, len, w->staging_mr->key}};
    wr.remote_addr = raddr_;
    wr.rkey = server_mr_->key;
    wr.signaled = false;
    co_await w->qp->post(std::move(wr));
  };
  const std::uint32_t half = W > 1 ? W / 2 : W;
  co_await fire(sbase, raddr, 8);  // head -> odd
  co_await fire(sbase + 8, raddr + cell_layout_.off_payload(), 8 * half);
  if (half < W)
    co_await fire(sbase + 8 + 8ul * half,
                  raddr + cell_layout_.off_payload() + 8ul * half,
                  8 * (W - half));
  co_await fire(sbase + 8ul * (1 + W), raddr + cell_layout_.off_tail(), 16);
  co_await fire(w->staging_mr->addr + head_off, raddr, 8);  // head -> even
  co_return co_await release_lock(w, key);
}

sim::TaskT<bool> TxKv::do_get(Worker* w, std::uint64_t key) {
  obs::Hub& hub = w->ctx->cluster().obs();
  sim::Engine& eng = w->ctx->engine();
  const sim::Time invoke = eng.now();
  w->cell->retarget(cell_addr(key));
  const auto o = co_await w->cell->read();
  if (!o.ok()) co_return co_await recover(w);
  const auto& s = o.value();
  if (s.valid) {
    ++w->gets;
    if (!payload_consistent(s.payload)) ++w->integrity_failures;
  }
  if (cfg_.record_history) {
    sync::Op op;
    op.kind = sync::OpKind::kGet;
    op.worker = w->id;
    op.key = key;
    op.value = s.payload.empty() ? 0 : s.payload[0];
    op.version = s.version;
    op.ok = s.valid;
    op.invoke = invoke;
    op.response = eng.now();
    history_->record(w->id, op);
  }
  (void)hub;
  co_return true;
}

sim::TaskT<bool> TxKv::do_txn(Worker* w, std::uint64_t key) {
  obs::Hub& hub = w->ctx->cluster().obs();
  sim::Engine& eng = w->ctx->engine();
  const sim::Time invoke = eng.now();

  auto record = [&](bool ok, std::uint64_t read_version,
                    std::uint64_t new_value) {
    if (!cfg_.record_history) return;
    sync::Op op;
    op.kind = sync::OpKind::kTxn;
    op.worker = w->id;
    op.key = key;
    op.value = new_value;
    op.version = ok ? read_version + 2 : 0;
    op.read_version = read_version;
    op.ok = ok;
    op.invoke = invoke;
    op.response = eng.now();
    history_->record(w->id, op);
  };

  for (std::uint32_t attempt = 0; attempt < cfg_.txn_retry_budget; ++attempt) {
    // 1. Optimistic pre-read (warms the value; the authoritative read
    // happens under the lock).
    w->cell->retarget(cell_addr(key));
    {
      const auto o = co_await w->cell->read();
      if (!o.ok()) {
        if (!co_await recover(w)) co_return false;
        continue;
      }
      if (!o.value().valid) {
        ++w->aborts;
        hub.txkv_aborts.inc();
        continue;
      }
      if (!payload_consistent(o.value().payload)) ++w->integrity_failures;
    }

    // 2. Lock the key.
    const sim::Time t0 = eng.now();
    if (!co_await acquire_lock(w, key)) {
      if (!co_await recover(w)) co_return false;
      continue;
    }
    lock_wait_ns_.add((eng.now() - t0) / sim::kNanosecond);
    w->lock_held = true;
    w->cur_key = key;

    // 3. Authoritative re-read under the lock.
    w->cell->retarget(cell_addr(key));
    const auto o = co_await w->cell->read();
    if (!o.ok()) {
      if (!co_await recover(w)) co_return false;
      continue;
    }
    const auto& cur = o.value();
    if (!cur.valid) {
      co_await release_lock(w, key);
      w->lock_held = false;
      ++w->aborts;
      hub.txkv_aborts.inc();
      continue;
    }
    if (!payload_consistent(cur.payload)) ++w->integrity_failures;

    // The "work" done on the snapshot before committing — this is the
    // window a lease term has to outlive (hold_delay past the term forces
    // expiry drills).
    if (cfg_.hold_delay) co_await sim::delay(eng, cfg_.hold_delay);

    // 4. Lease holders must re-validate their write license now that the
    // hold (and the lock wait) spent wall time.
    if (cfg_.lock == LockMode::kLease) {
      const auto f = co_await w->lease->fence();
      if (!f.ok()) {
        if (!co_await recover(w)) co_return false;
        continue;
      }
      if (!f.value()) {
        // Stale: the term is (nearly) over — do NOT write. release() is a
        // CAS that loses harmlessly if the word moved on.
        co_await release_lock(w, key);
        w->lock_held = false;
        ++w->aborts;
        hub.txkv_aborts.inc();
        continue;
      }
    }

    // 5. Commit + release, ordering per variant.
    const std::uint64_t base = cur.version;
    const std::uint64_t new_value = cur.payload[0] + 1;
    w->mid_commit = true;
    w->cur_base_version = base;
    w->cur_new_value = new_value;
    if (!co_await commit(w, key, base, new_value)) {
      if (!co_await recover(w)) co_return false;
      // recover() re-landed the commit and released the lock.
    }
    w->mid_commit = false;
    w->lock_held = false;
    ++w->commits;
    hub.txkv_commits.inc();
    record(true, base, new_value);
    co_return true;
  }

  ++w->aborts;
  hub.txkv_aborts.inc();
  record(false, 0, 0);
  co_return true;
}

sim::Task TxKv::run_worker(Worker* w, sim::CountdownLatch& done) {
  for (std::uint64_t i = 0; i < cfg_.ops_per_worker && !w->dead; ++i) {
    const std::uint64_t key = w->zipf->next();
    const bool get =
        (static_cast<double>(w->rng.next() >> 11) * 0x1p-53) <
        cfg_.get_fraction;
    if (get) {
      if (!co_await do_get(w, key)) break;
    } else {
      if (!co_await do_txn(w, key)) break;
    }
  }
  done.count_down();
}

Result TxKv::run() {
  auto& eng = ctxs_[0]->engine();
  sim::CountdownLatch done(eng, cfg_.workers);
  const sim::Time start = eng.now();
  for (auto& w : workers_)
    eng.spawn_on(w->machine + 1, run_worker(w.get(), done));
  eng.run();
  RDMASEM_CHECK_MSG(done.remaining() == 0, "txkv workers did not finish");

  Result r;
  r.elapsed = eng.now() - start;
  for (auto& w : workers_) {
    r.commits += w->commits;
    r.gets += w->gets;
    r.aborts += w->aborts;
    r.recoveries += w->recoveries;
    r.dead_workers += w->dead ? 1 : 0;
    snapshot_integrity_failures_ += w->integrity_failures;
    w->integrity_failures = 0;
  }
  r.mops = static_cast<double>(r.commits + r.gets) / sim::to_us(r.elapsed);
  r.abort_rate = (r.commits + r.aborts) == 0
                     ? 0.0
                     : static_cast<double>(r.aborts) /
                           static_cast<double>(r.commits + r.aborts);
  return r;
}

std::uint64_t TxKv::key_version(std::uint64_t k) const {
  std::uint64_t v = 0;
  std::memcpy(&v, cell_mem(k), 8);
  return v;
}

std::uint64_t TxKv::key_value(std::uint64_t k) const {
  std::uint64_t v = 0;
  std::memcpy(&v, cell_mem(k) + cell_layout_.off_payload(), 8);
  return v;
}

bool TxKv::cell_quiescent(std::uint64_t k) const {
  const auto* words = reinterpret_cast<const std::uint64_t*>(cell_mem(k));
  const std::uint64_t head = words[0];
  const std::uint64_t tail = words[1 + cfg_.payload_words];
  if (head != tail || (head & 1) != 0) return false;
  return words[2 + cfg_.payload_words] ==
         sync::cell_checksum(head, words + 1, cfg_.payload_words);
}

bool TxKv::locks_free(sim::Time now) const {
  for (std::uint64_t k = 0; k < cfg_.num_keys; ++k) {
    std::uint64_t w = 0;
    std::memcpy(&w, server_mem_.data() + k * lock_stride(), 8);
    if (cfg_.lock == LockMode::kLease) {
      const auto expiry_us = static_cast<std::uint32_t>(w);
      if (expiry_us != 0 && now / sim::kMicrosecond < expiry_us) return false;
    } else {
      if (w != 0) return false;  // spin word held / MCS tail non-nil
    }
  }
  return true;
}

}  // namespace rdmasem::apps::txkv
