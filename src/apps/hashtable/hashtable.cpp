#include "apps/hashtable/hashtable.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace rdmasem::apps::hashtable {

namespace {
constexpr std::uint64_t kSlotHeader = 16;  // seq u64 + key u64
}

// ---------------------------------------------------------------------------
// Backend layout

Backend::Backend(verbs::Context& ctx, const Config& cfg)
    : cfg_(&cfg), ctx_(&ctx) {
  hot_keys_ = static_cast<std::uint64_t>(
      static_cast<double>(cfg.num_keys) * cfg.hot_fraction);
  // Per-socket region: [cold entries][hot blocks]. Keys are striped across
  // sockets by their low bit; slots for *all* keys exist in the cold area
  // so toggling optimizations never changes addressing.
  const std::uint64_t keys_per_socket = (cfg.num_keys + 1) / 2;
  const std::uint64_t hot_per_socket = (hot_keys_ + 1) / 2;
  const std::uint64_t hot_blocks =
      (hot_per_socket + cfg.entries_per_block - 1) / cfg.entries_per_block;
  const std::uint64_t bytes = keys_per_socket * cold_entry_bytes() +
                              hot_blocks * hot_block_bytes();
  for (hw::SocketId s = 0; s < 2; ++s) {
    mem_.emplace_back(bytes);
    regions_.push_back(ctx_->register_buffer(mem_.back(), s));
  }
}

std::uint64_t Backend::cold_entry_bytes() const {
  return 8 + cfg_->versions * (kSlotHeader + cfg_->value_size);
}

std::uint64_t Backend::cold_addr(std::uint64_t key) const {
  const auto s = socket_of(key);
  return regions_[s]->addr + (key >> 1) * cold_entry_bytes();
}

std::uint64_t Backend::cold_slot_addr(std::uint64_t key,
                                      std::uint64_t version) const {
  return cold_addr(key) + 8 +
         (version % cfg_->versions) * (kSlotHeader + cfg_->value_size);
}

std::uint64_t Backend::hot_block_bytes() const {
  return 8 + cfg_->entries_per_block * cfg_->value_size;
}

std::uint64_t Backend::hot_region_addr(hw::SocketId s) const {
  const std::uint64_t keys_per_socket = (cfg_->num_keys + 1) / 2;
  return regions_[s]->addr + keys_per_socket * cold_entry_bytes();
}

std::uint64_t Backend::hot_region_size() const {
  const std::uint64_t hot_per_socket = (hot_keys_ + 1) / 2;
  const std::uint64_t hot_blocks =
      (hot_per_socket + cfg_->entries_per_block - 1) / cfg_->entries_per_block;
  return hot_blocks * hot_block_bytes();
}

std::uint64_t Backend::hot_block_addr(std::uint64_t block) const {
  // Block addresses are per-socket; callers pair this with the socket's
  // region. The block id is already socket-local.
  return block * hot_block_bytes();
}

std::uint64_t Backend::hot_entry_off(std::uint64_t key) const {
  const std::uint64_t hkey = key >> 1;  // index within its socket
  const std::uint64_t block = hkey / cfg_->entries_per_block;
  const std::uint64_t slot = hkey % cfg_->entries_per_block;
  return block * hot_block_bytes() + 8 + slot * cfg_->value_size;
}

// ---------------------------------------------------------------------------
// Deployment

std::unique_ptr<FrontEnd> DisaggHashTable::add_front_end(
    verbs::Context& ctx, hw::SocketId socket) {
  RDMASEM_CHECK_MSG(cfg_.value_size + 32 + kSlotHeader <= FrontEnd::kSlotBytes,
                    "value too large for a front-end scratch slot");
  auto fe = std::unique_ptr<FrontEnd>(new FrontEnd());
  fe->cfg_ = &cfg_;
  fe->backend_ = &backend_;
  fe->ctx_ = &ctx;
  fe->socket_ = socket;
  fe->scratch_ = verbs::Buffer(FrontEnd::kSlots * FrontEnd::kSlotBytes);
  fe->scratch_mr_ = ctx.register_buffer(fe->scratch_, socket);
  fe->slot_sem_ = std::make_unique<sim::Semaphore>(ctx.engine(),
                                                   FrontEnd::kSlots);
  for (std::uint32_t s = 0; s < FrontEnd::kSlots; ++s)
    fe->free_slots_.push_back(s);

  auto& bctx = backend_.ctx();
  auto connect_pair = [&](verbs::QpConfig a,
                          verbs::QpConfig b) -> verbs::QueuePair* {
    if (a.cq == nullptr) a.cq = ctx.create_cq();
    if (b.cq == nullptr) b.cq = bctx.create_cq();
    auto* qa = ctx.create_qp(a);
    auto* qb = bctx.create_qp(b);
    verbs::Context::connect(*qa, *qb);
    return qa;
  };

  const auto& p = ctx.params();
  if (cfg_.numa_aware) {
    // Socket-matched QPs to each backend socket + proxy routing.
    fe->router_ = std::make_unique<remem::ProxySocketRouter>(ctx.engine(), p);
    for (hw::SocketId s = 0; s < 2; ++s) {
      verbs::QpConfig a{.port = s, .core_socket = s, .cq = nullptr};
      verbs::QpConfig b{.port = s, .core_socket = s, .cq = nullptr};
      auto* qp = connect_pair(a, b);
      fe->qps_.push_back(qp);
      fe->router_->add_route(s, cfg_.backend_machine, qp);
    }
  } else {
    // Basic placement: one QP on the NIC's default port regardless of
    // where this thread or the target memory lives.
    verbs::QpConfig a{.port = p.rnic_socket, .core_socket = socket,
                      .cq = nullptr};
    verbs::QpConfig b{.port = p.rnic_socket, .core_socket = p.rnic_socket,
                      .cq = nullptr};
    fe->qps_.push_back(connect_pair(a, b));
  }

  if (cfg_.consolidate) {
    for (hw::SocketId s = 0; s < 2; ++s) {
      auto* qp = cfg_.numa_aware ? fe->qps_[s] : fe->qps_[0];
      fe->locks_.push_back(std::make_unique<remem::RemoteLockClient>(
          *qp, remem::BackoffPolicy::exponential()));
      auto cons = std::make_unique<remem::Consolidator>(
          *qp, backend_.hot_region_addr(s), backend_.region(s)->key,
          backend_.hot_region_size(),
          remem::Consolidator::Config{.block_size = backend_.hot_block_bytes(),
                                      .theta = cfg_.theta,
                                      .timeout = cfg_.lease,
                                      .async_flush = true});
      FrontEnd* raw = fe.get();
      cons->set_flush_hooks(
          [raw, s](std::uint64_t block) -> sim::TaskT<void> {
            co_await raw->lease_before_flush(s, block);
          },
          [raw, s](std::uint64_t block) -> sim::TaskT<void> {
            co_await raw->lease_after_flush(s, block);
          });
      fe->cons_.push_back(std::move(cons));
    }
  }
  return fe;
}

// ---------------------------------------------------------------------------
// Hot-block lease management

sim::TaskT<void> FrontEnd::lease_before_flush(hw::SocketId s,
                                              std::uint64_t block) {
  // One remote-spinlock acquisition per flush (exponential backoff). The
  // flush runs on a background chain, so writers never wait on the lock.
  co_await locks_[s]->lock(
      backend_->hot_region_addr(s) + backend_->hot_block_addr(block),
      backend_->region(s)->key);
}

sim::TaskT<void> FrontEnd::lease_after_flush(hw::SocketId s,
                                             std::uint64_t block) {
  co_await locks_[s]->unlock(
      backend_->hot_region_addr(s) + backend_->hot_block_addr(block),
      backend_->region(s)->key);
}

// ---------------------------------------------------------------------------
// FrontEnd operations

sim::TaskT<verbs::Completion> FrontEnd::issue(hw::SocketId target_socket,
                                              verbs::WorkRequest wr) {
  if (cfg_->numa_aware) {
    co_return co_await router_->submit(socket_, target_socket,
                                       cfg_->backend_machine, std::move(wr));
  }
  co_return co_await qps_[0]->execute(std::move(wr));
}

sim::TaskT<std::uint32_t> FrontEnd::acquire_slot() {
  co_await slot_sem_->acquire();
  RDMASEM_CHECK(!free_slots_.empty());
  const std::uint32_t s = free_slots_.back();
  free_slots_.pop_back();
  co_return s;
}

void FrontEnd::release_slot(std::uint32_t slot) {
  free_slots_.push_back(slot);
  slot_sem_->release();
}

sim::TaskT<void> FrontEnd::put(std::uint64_t key,
                               std::span<const std::byte> value) {
  RDMASEM_CHECK_MSG(value.size() == cfg_->value_size, "bad value size");
  co_await sim::settle(ctx_->engine(), home_lane());
  ++puts_;
  // Request parsing + key hash on the front-end core.
  co_await sim::delay(ctx_->engine(), ctx_->params().cpu_hash);
  if (cfg_->consolidate && backend_->is_hot(key)) {
    co_await put_hot(key, value);
  } else {
    const std::uint32_t slot = co_await acquire_slot();
    co_await put_cold(key, value, slot * kSlotBytes, /*tombstone=*/false);
    release_slot(slot);
  }
}

sim::TaskT<void> FrontEnd::remove(std::uint64_t key) {
  co_await sim::settle(ctx_->engine(), home_lane());
  co_await sim::delay(ctx_->engine(), ctx_->params().cpu_hash);
  std::vector<std::byte> zero(cfg_->value_size);
  if (cfg_->consolidate && backend_->is_hot(key)) {
    // Hot entries carry no presence header; a delete zeroes the slot.
    co_await put_hot(key, zero);
    co_return;
  }
  const std::uint32_t slot = co_await acquire_slot();
  co_await put_cold(key, zero, slot * kSlotBytes, /*tombstone=*/true);
  release_slot(slot);
}

sim::TaskT<void> FrontEnd::put_hot(std::uint64_t key,
                                   std::span<const std::byte> value) {
  // Burst-buffer the write; the consolidator flushes the block's dirty
  // extent under its remote spinlock when theta trips or the lease ends.
  co_await cons_[backend_->socket_of(key)]->write(backend_->hot_entry_off(key),
                                                  value);
}

sim::TaskT<void> FrontEnd::put_cold(std::uint64_t key,
                                    std::span<const std::byte> value,
                                    std::uint64_t slot_off,
                                    bool tombstone) {
  const auto s = backend_->socket_of(key);
  const std::uint32_t rkey = backend_->region(s)->key;
  std::uint64_t version = 1;

  if (cfg_->consolidate) {
    // Full design: multi-version concurrency — claim a slot with FAA.
    verbs::WorkRequest faa;
    faa.opcode = verbs::Opcode::kFetchAdd;
    faa.sg_list = {{scratch_mr_->addr + slot_off, 8, scratch_mr_->key}};
    faa.remote_addr = backend_->cold_addr(key);
    faa.rkey = rkey;
    faa.swap_or_add = 1;
    const auto c = co_await issue(s, std::move(faa));
    RDMASEM_CHECK_MSG(c.ok(), "cold FAA failed");
    version = c.atomic_old + 1;
  }

  // Build the record in this request's scratch slot: [seq | key | value].
  // A tombstone writes seq = 0, which readers interpret as not-found.
  const std::uint64_t seq = tombstone ? 0 : version;
  std::byte* rec = scratch_.data() + slot_off + 16;
  std::memcpy(rec, &seq, 8);
  std::memcpy(rec + 8, &key, 8);
  std::memcpy(rec + 16, value.data(), value.size());
  co_await sim::delay(ctx_->engine(),
                      ctx_->params().memcpy_time(value.size()));

  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {{scratch_mr_->addr + slot_off + 16,
                 static_cast<std::uint32_t>(kSlotHeader + value.size()),
                 scratch_mr_->key}};
  wr.remote_addr = cfg_->consolidate ? backend_->cold_slot_addr(key, version)
                                     : backend_->cold_slot_addr(key, 0);
  wr.rkey = rkey;
  const auto c = co_await issue(s, std::move(wr));
  RDMASEM_CHECK_MSG(c.ok(), "cold write failed");
}

sim::TaskT<std::vector<std::byte>> FrontEnd::get(std::uint64_t key) {
  co_await sim::settle(ctx_->engine(), home_lane());
  co_await sim::delay(ctx_->engine(), ctx_->params().cpu_hash);
  const auto s = backend_->socket_of(key);
  const std::uint32_t rkey = backend_->region(s)->key;
  std::vector<std::byte> out(cfg_->value_size);

  if (cfg_->consolidate && backend_->is_hot(key)) {
    const std::uint64_t hoff = backend_->hot_entry_off(key);
    const std::uint64_t block = hoff / backend_->hot_block_bytes();
    if (cons_[s]->block_dirty(block)) {
      // Our burst buffer holds the freshest copy: serve locally.
      const auto shadow = cons_[s]->shadow();
      std::memcpy(out.data(), shadow.data() + hoff, out.size());
      co_await sim::delay(ctx_->engine(),
                          ctx_->params().memcpy_time(out.size()));
      co_return out;
    }
    // Clean block: another front-end may have written it — read the hot
    // area remotely (and refresh nothing; the shadow is write-behind).
    const std::uint32_t slot = co_await acquire_slot();
    const std::uint64_t soff = slot * kSlotBytes;
    verbs::WorkRequest rd;
    rd.opcode = verbs::Opcode::kRead;
    rd.sg_list = {{scratch_mr_->addr + soff,
                   static_cast<std::uint32_t>(cfg_->value_size),
                   scratch_mr_->key}};
    rd.remote_addr = backend_->hot_region_addr(s) + hoff;
    rd.rkey = backend_->region(s)->key;
    const auto c = co_await issue(s, std::move(rd));
    RDMASEM_CHECK_MSG(c.ok(), "hot read failed");
    std::memcpy(out.data(), scratch_.data() + soff, out.size());
    release_slot(slot);
    co_return out;
  }

  const std::uint32_t slot = co_await acquire_slot();
  const std::uint64_t off = slot * kSlotBytes;
  std::uint64_t version = 0;
  if (cfg_->consolidate) {
    verbs::WorkRequest rd;
    rd.opcode = verbs::Opcode::kRead;
    rd.sg_list = {{scratch_mr_->addr + off, 8, scratch_mr_->key}};
    rd.remote_addr = backend_->cold_addr(key);
    rd.rkey = rkey;
    const auto c = co_await issue(s, std::move(rd));
    RDMASEM_CHECK_MSG(c.ok(), "cold version read failed");
    std::memcpy(&version, scratch_.data() + off, 8);
    if (version == 0) {
      release_slot(slot);
      co_return std::vector<std::byte>{};  // never written
    }
  }

  verbs::WorkRequest rd;
  rd.opcode = verbs::Opcode::kRead;
  rd.sg_list = {{scratch_mr_->addr + off + 16,
                 static_cast<std::uint32_t>(kSlotHeader + cfg_->value_size),
                 scratch_mr_->key}};
  rd.remote_addr = backend_->cold_slot_addr(key, version);
  rd.rkey = rkey;
  const auto c = co_await issue(s, std::move(rd));
  RDMASEM_CHECK_MSG(c.ok(), "cold slot read failed");
  std::uint64_t seq = 0;
  std::memcpy(&seq, scratch_.data() + off + 16, 8);
  if (seq == 0) {
    release_slot(slot);
    co_return std::vector<std::byte>{};  // empty slot
  }
  std::memcpy(out.data(), scratch_.data() + off + 32, out.size());
  release_slot(slot);
  co_return out;
}

sim::TaskT<void> FrontEnd::drain() {
  co_await sim::settle(ctx_->engine(), home_lane());
  for (auto& c : cons_)
    if (c) co_await c->flush_all();
}

}  // namespace rdmasem::apps::hashtable
