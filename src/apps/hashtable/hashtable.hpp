#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "remem/atomics.hpp"
#include "remem/consolidate.hpp"
#include "remem/numa_policy.hpp"
#include "sim/sync.hpp"
#include "verbs/buffer.hpp"
#include "verbs/context.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::apps::hashtable {

// Disaggregated hashtable (§IV-B, Fig. 11): storage lives on a back-end
// machine; front-ends process requests purely with one-sided RDMA.
//
// Layout on the back-end (hash-partitioned across the two sockets):
//
//   cold area: per key, a multi-version entry
//       [ version_counter u64 | V slots of (seq u64, key u64, value) ]
//     writers FAA the counter to claim slot (v % V), then RDMA-write the
//     slot; readers read the counter and fetch the latest complete slot.
//
//   hot area: the hottest keys grouped into blocks of `entries_per_block`
//       [ lock u64 | entries ... ]
//     front-ends buffer hot writes in a Consolidator (the paper's burst
//     buffer) and flush a block's dirty extent under its remote spinlock
//     (exponential backoff).
//
// Optimization toggles reproduce the Fig. 12 breakdown:
//   basic           : every put is a single RDMA write of the entry
//   +numa_aware     : socket-matched QPs + proxy-socket routing
//   +consolidate    : hot-area burst buffering with threshold theta
struct Config {
  std::uint64_t num_keys = 1 << 18;
  std::uint32_t value_size = 64;
  std::uint32_t versions = 4;            // cold multi-version slots
  double hot_fraction = 1.0 / 4;         // top keys placed in the hot area
  std::uint32_t entries_per_block = 4;   // 2^t entries per hot block
  bool numa_aware = false;
  bool consolidate = false;
  std::uint32_t theta = 16;
  // Burst-buffer lease: cool hot blocks flush at most once per lease
  // (write-behind). Milliseconds-scale leases are what make the hot area
  // profitable — with short leases the zipf tail dribbles out one entry
  // per flush and the per-flush lock traffic exceeds the cold-path cost.
  sim::Duration lease = sim::ms(10);
  std::uint32_t backend_machine = 0;
};

class Backend;

// One front-end worker thread: owns its QPs (socket-matched when
// numa_aware), its consolidators, and its scratch memory. Created via
// DisaggHashTable::add_front_end.
class FrontEnd {
 public:
  // put/get may be called from several concurrent coroutines of the same
  // front-end (a front-end server multiplexes many client requests); each
  // in-flight request holds one of kSlots scratch slots.
  sim::TaskT<void> put(std::uint64_t key, std::span<const std::byte> value);
  sim::TaskT<std::vector<std::byte>> get(std::uint64_t key);
  // Deletes a key (tombstone write; subsequent gets see not-found).
  sim::TaskT<void> remove(std::uint64_t key);

  static constexpr std::uint32_t kSlots = 32;
  static constexpr std::uint64_t kSlotBytes = 256;

  // Pushes out all buffered hot writes (end of run).
  sim::TaskT<void> drain();

  std::uint64_t puts() const { return puts_; }
  hw::SocketId socket() const { return socket_; }

  // Introspection (consolidate mode; nullptr otherwise).
  const remem::Consolidator* consolidator(hw::SocketId s) const {
    return s < cons_.size() ? cons_[s].get() : nullptr;
  }
  const remem::RemoteLockClient* lock_client(hw::SocketId s) const {
    return s < locks_.size() ? locks_[s].get() : nullptr;
  }

 private:
  friend class DisaggHashTable;
  FrontEnd() = default;

  sim::TaskT<void> put_cold(std::uint64_t key,
                            std::span<const std::byte> value,
                            std::uint64_t slot_off, bool tombstone);
  sim::TaskT<void> put_hot(std::uint64_t key,
                           std::span<const std::byte> value);
  sim::TaskT<verbs::Completion> issue(hw::SocketId target_socket,
                                      verbs::WorkRequest wr);
  sim::TaskT<std::uint32_t> acquire_slot();
  void release_slot(std::uint32_t slot);
  // The front-end machine's lane. Public ops settle() here first so all
  // front-end state (scratch slots, consolidators) is single-lane.
  std::uint32_t home_lane() const { return ctx_->machine().id() + 1; }

  const Config* cfg_ = nullptr;
  Backend* backend_ = nullptr;
  verbs::Context* ctx_ = nullptr;
  hw::SocketId socket_ = 0;
  // Direct QPs per backend socket (basic mode uses [rnic_socket] only).
  std::vector<verbs::QueuePair*> qps_;
  std::unique_ptr<remem::ProxySocketRouter> router_;
  verbs::Buffer scratch_;
  verbs::MemoryRegion* scratch_mr_ = nullptr;
  std::unique_ptr<sim::Semaphore> slot_sem_;
  std::vector<std::uint32_t> free_slots_;
  // Consolidators + hot-block locks per backend socket (consolidate mode).
  // Flushes run on the consolidator's background chains; each flush takes
  // the block's remote spinlock (exponential backoff) around its write.
  sim::TaskT<void> lease_before_flush(hw::SocketId s, std::uint64_t block);
  sim::TaskT<void> lease_after_flush(hw::SocketId s, std::uint64_t block);

  std::vector<std::unique_ptr<remem::Consolidator>> cons_;
  std::vector<std::unique_ptr<remem::RemoteLockClient>> locks_;
  std::uint64_t puts_ = 0;
};

// Back-end memory image + addressing helpers (shared by all front-ends).
class Backend {
 public:
  Backend(verbs::Context& ctx, const Config& cfg);

  const Config& cfg() const { return *cfg_; }
  verbs::Context& ctx() { return *ctx_; }

  bool is_hot(std::uint64_t key) const { return key < hot_keys_; }
  hw::SocketId socket_of(std::uint64_t key) const {
    return static_cast<hw::SocketId>(key & 1);
  }

  // Cold addressing (within the socket's region).
  std::uint64_t cold_entry_bytes() const;
  std::uint64_t cold_addr(std::uint64_t key) const;      // entry base
  std::uint64_t cold_slot_addr(std::uint64_t key, std::uint64_t version) const;

  // Hot addressing.
  std::uint64_t hot_block_bytes() const;
  std::uint64_t hot_block_of(std::uint64_t key) const {
    return key / cfg_->entries_per_block;
  }
  std::uint64_t hot_block_addr(std::uint64_t block) const;  // lock word
  std::uint64_t hot_entry_off(std::uint64_t key) const;     // offset of the
                                                            // entry in the
                                                            // hot region
  std::uint64_t hot_region_addr(hw::SocketId s) const;
  std::uint64_t hot_region_size() const;

  verbs::MemoryRegion* region(hw::SocketId s) { return regions_[s]; }
  std::uint64_t hot_keys() const { return hot_keys_; }

 private:
  const Config* cfg_;
  verbs::Context* ctx_;
  std::uint64_t hot_keys_;
  std::vector<verbs::Buffer> mem_;
  std::vector<verbs::MemoryRegion*> regions_;
};

// The deployment object: builds the back-end image and hands out
// front-end workers bound to (context, socket).
class DisaggHashTable {
 public:
  DisaggHashTable(verbs::Context& backend_ctx, const Config& cfg)
      : cfg_(cfg), backend_(backend_ctx, cfg_) {}

  Backend& backend() { return backend_; }

  // Creates a front-end on `ctx` whose thread runs on `socket`.
  std::unique_ptr<FrontEnd> add_front_end(verbs::Context& ctx,
                                          hw::SocketId socket);

 private:
  // Declaration order matters: backend_ (and every FrontEnd) keeps a
  // pointer into cfg_, so cfg_ must be constructed first.
  Config cfg_;
  Backend backend_;
};

}  // namespace rdmasem::apps::hashtable
