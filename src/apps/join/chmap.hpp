#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace rdmasem::apps::join {

// ConcurrentHashMap — the build-probe substrate replacing Intel TBB's
// concurrent_hash_map (§IV-D). Sharded open-addressing tables with linear
// probing; capacity is fixed at construction (the join sizes it from the
// partition cardinality). "Concurrent" refers to the simulated execution
// model: executor coroutines interleave on the virtual clock inside one
// OS thread, so shards need no real locks — they model TBB's structure
// and give the cost model its per-shard accounting hooks.
//
// Values are uint64 payloads (join tuples); duplicate keys are allowed
// (multimap semantics, as required by joins over non-unique keys):
// insert() always appends, find_all() visits every match.
class ConcurrentHashMap {
 public:
  explicit ConcurrentHashMap(std::uint64_t expected_entries,
                             std::uint32_t shards = 16);

  void insert(std::uint64_t key, std::uint64_t value);

  // Visits every value stored under `key`; returns the match count.
  template <typename Fn>
  std::uint64_t find_all(std::uint64_t key, Fn&& fn) const {
    const Shard& sh = shard_for(key);
    std::uint64_t matches = 0;
    std::uint64_t idx = probe_start(sh, key);
    for (std::uint64_t step = 0; step < sh.capacity; ++step) {
      const Slot& s = sh.slots[idx];
      if (!s.used) break;
      if (s.key == key) {
        fn(s.value);
        ++matches;
      }
      idx = (idx + 1) & (sh.capacity - 1);
    }
    return matches;
  }

  std::uint64_t count(std::uint64_t key) const {
    return find_all(key, [](std::uint64_t) {});
  }
  std::uint64_t size() const { return size_; }
  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  // Largest probe sequence seen by insert (load-factor health check).
  std::uint64_t max_probe() const { return max_probe_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    bool used = false;
  };
  struct Shard {
    std::uint64_t capacity = 0;  // power of two
    std::vector<Slot> slots;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  const Shard& shard_for(std::uint64_t key) const {
    return shards_[mix(key) % shards_.size()];
  }
  Shard& shard_for(std::uint64_t key) {
    return shards_[mix(key) % shards_.size()];
  }
  std::uint64_t probe_start(const Shard& sh, std::uint64_t key) const {
    return (mix(key) >> 17) & (sh.capacity - 1);
  }

  std::vector<Shard> shards_;
  std::uint64_t size_ = 0;
  std::uint64_t max_probe_ = 0;
};

}  // namespace rdmasem::apps::join
