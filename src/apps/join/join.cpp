#include "apps/join/join.hpp"

#include <cstring>

#include "apps/join/chmap.hpp"
#include "sim/sync.hpp"
#include "util/assert.hpp"

namespace rdmasem::apps::join {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-tuple CPU cost of one hash-map operation during build/probe:
// key hash + one dependent cache/DRAM touch.
sim::Duration tuple_op_cost(const hw::ModelParams& p) {
  return p.cpu_hash + p.cpu_tuple_work + sim::ns(45);
}

}  // namespace

std::uint64_t r_key(std::uint64_t global_index) {
  return splitmix(global_index) | 1;  // avoid key 0 (empty-slot sentinel)
}

std::uint64_t s_key(std::uint64_t global_index, std::uint64_t tuples) {
  if (global_index < tuples / 2) return r_key(global_index);  // match
  return splitmix(global_index + (1ULL << 40)) | 1;  // miss (w.h.p.)
}

Result run_join(std::vector<verbs::Context*> ctxs, const Config& cfg) {
  RDMASEM_CHECK_MSG(!ctxs.empty(), "no contexts");
  auto& eng = ctxs[0]->engine();
  const auto& p = ctxs[0]->params();
  Result res;
  res.expected_matches = cfg.tuples / 2;
  const sim::Time t0 = eng.now();

  if (!cfg.distributed) {
    // Single-machine baseline: scan R building the map, then probe S,
    // all on one core. Real data structure, modeled CPU time.
    ConcurrentHashMap map(cfg.tuples);
    std::uint64_t matches = 0;
    auto task = [](sim::Engine& e, const hw::ModelParams& pp,
                   const Config& c, ConcurrentHashMap& m,
                   std::uint64_t& out) -> sim::Task {
      sim::Duration owed = 0;
      for (std::uint64_t i = 0; i < c.tuples; ++i) {
        m.insert(r_key(i), i);
        owed += tuple_op_cost(pp);
        if ((i & 63) == 63) {  // charge CPU in 64-tuple chunks
          co_await sim::delay(e, owed);
          owed = 0;
        }
      }
      for (std::uint64_t i = 0; i < c.tuples; ++i) {
        out += m.count(s_key(i, c.tuples));
        owed += tuple_op_cost(pp);
        if ((i & 63) == 63) {
          co_await sim::delay(e, owed);
          owed = 0;
        }
      }
      co_await sim::delay(e, owed);
    };
    eng.spawn(task(eng, p, cfg, map, matches));
    eng.run();
    res.matches = matches;
    res.seconds = sim::to_sec(eng.now() - t0);
    res.build_probe_seconds = res.seconds;
    return res;
  }

  // ---- Partition phase: shuffle R, then S, with the SGL batch schedule.
  const std::uint64_t per_exec = cfg.tuples / cfg.executors;
  shuffle::Config sc;
  sc.executors = cfg.executors;
  sc.entries_per_executor = per_exec;
  sc.entry_size = 16;  // key u64 + payload u64
  sc.batch = cfg.batch_size <= 1 ? shuffle::BatchMode::kNone : cfg.batch;
  sc.batch_size = cfg.batch_size;
  sc.numa_aware = cfg.numa_aware;
  sc.machines = cfg.machines;
  sc.seed = cfg.seed;
  sc.keygen = [per_exec](std::uint32_t e, std::uint64_t i) {
    return r_key(e * per_exec + i);
  };
  shuffle::Shuffle shuffle_r(ctxs, sc);
  (void)shuffle_r.run();

  sc.keygen = [per_exec, &cfg](std::uint32_t e, std::uint64_t i) {
    return s_key(e * per_exec + i, cfg.tuples);
  };
  shuffle::Shuffle shuffle_s(ctxs, sc);
  (void)shuffle_s.run();
  res.partition_seconds = sim::to_sec(eng.now() - t0);

  // ---- Build-probe phase: every executor joins its partition locally.
  const sim::Time t1 = eng.now();
  // One slot per executor, written only from that executor's lane; summed
  // in index order after the run (shard-layout independent).
  std::vector<std::uint64_t> matches(cfg.executors, 0);
  sim::CountdownLatch done(eng, cfg.executors);
  std::vector<std::unique_ptr<ConcurrentHashMap>> maps;
  for (std::uint32_t e = 0; e < cfg.executors; ++e)
    maps.push_back(std::make_unique<ConcurrentHashMap>(
        shuffle_r.received_count(e) + 64));

  for (std::uint32_t e = 0; e < cfg.executors; ++e) {
    auto worker = [](sim::Engine& en, const hw::ModelParams& pp,
                     const shuffle::Shuffle& sr, const shuffle::Shuffle& ss,
                     std::uint32_t ex, ConcurrentHashMap& map,
                     std::uint64_t& out, sim::CountdownLatch& d) -> sim::Task {
      // Build from the R partition (real bytes received over the fabric).
      sim::Duration owed = 0;
      std::uint64_t n = 0;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
      sr.visit_received(ex, [&](std::span<const std::byte> rec) {
        std::uint64_t key = 0, payload = 0;
        std::memcpy(&key, rec.data(), 8);
        std::memcpy(&payload, rec.data() + 8, 8);
        rows.emplace_back(key, payload);
      });
      for (const auto& [key, payload] : rows) {
        map.insert(key, payload);
        owed += tuple_op_cost(pp);
        if ((++n & 63) == 0) {
          co_await sim::delay(en, owed);
          owed = 0;
        }
      }
      // Probe with the S partition.
      rows.clear();
      ss.visit_received(ex, [&](std::span<const std::byte> rec) {
        std::uint64_t key = 0;
        std::memcpy(&key, rec.data(), 8);
        rows.emplace_back(key, 0);
      });
      std::uint64_t local_matches = 0;
      for (const auto& [key, unused] : rows) {
        (void)unused;
        local_matches += map.count(key);
        owed += tuple_op_cost(pp);
        if ((++n & 63) == 0) {
          co_await sim::delay(en, owed);
          owed = 0;
        }
      }
      co_await sim::delay(en, owed);
      out += local_matches;
      d.count_down();
    };
    eng.spawn_on(shuffle_r.placement(e).first + 1,
                 worker(eng, p, shuffle_r, shuffle_s, e, *maps[e], matches[e],
                        done));
  }
  eng.run();
  RDMASEM_CHECK_MSG(done.remaining() == 0, "join workers did not finish");

  res.build_probe_seconds = sim::to_sec(eng.now() - t1);
  res.matches = 0;
  for (const std::uint64_t m : matches) res.matches += m;
  res.seconds = sim::to_sec(eng.now() - t0);
  return res;
}

}  // namespace rdmasem::apps::join
