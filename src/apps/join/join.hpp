#pragma once

#include <cstdint>
#include <vector>

#include "apps/shuffle/shuffle.hpp"
#include "verbs/context.hpp"

namespace rdmasem::apps::join {

// Distributed hash join (§IV-D): partition phase (the §IV-C shuffle with
// SGL batching) followed by a build-probe phase on each executor's
// partition using the from-scratch ConcurrentHashMap.
//
// The relations are synthetic but exactly verifiable: the inner relation R
// holds `tuples` unique keys; the outer relation S repeats the first half
// of R's keys and pads with non-matching keys, so the join must produce
// exactly tuples/2 matches regardless of executor count, batching or
// placement.
struct Config {
  std::uint64_t tuples = 1 << 18;  // per relation (paper: 16M, scaled)
  std::uint32_t executors = 4;     // theta
  std::uint32_t batch_size = 16;   // lambda; 1 = effectively unbatched
  shuffle::BatchMode batch = shuffle::BatchMode::kSgl;
  bool numa_aware = true;
  bool distributed = true;         // false = single-machine baseline
  std::uint32_t machines = 8;
  std::uint64_t seed = 7;
};

struct Result {
  double seconds = 0;              // end-to-end execution time
  double partition_seconds = 0;
  double build_probe_seconds = 0;
  std::uint64_t matches = 0;
  std::uint64_t expected_matches = 0;
  bool verified() const { return matches == expected_matches; }
};

// Runs the join once on the given per-machine contexts.
Result run_join(std::vector<verbs::Context*> ctxs, const Config& cfg);

// Key generators shared with tests: R is injective, S half-matching.
std::uint64_t r_key(std::uint64_t global_index);
std::uint64_t s_key(std::uint64_t global_index, std::uint64_t tuples);

}  // namespace rdmasem::apps::join
