#include "apps/join/chmap.hpp"

#include <bit>

namespace rdmasem::apps::join {

ConcurrentHashMap::ConcurrentHashMap(std::uint64_t expected_entries,
                                     std::uint32_t shards) {
  RDMASEM_CHECK_MSG(shards > 0, "need at least one shard");
  // Size for <= 50% load per shard, rounded to a power of two.
  const std::uint64_t per_shard =
      std::max<std::uint64_t>(64, (expected_entries / shards + 1) * 2);
  const std::uint64_t cap = std::bit_ceil(per_shard);
  shards_.resize(shards);
  for (auto& sh : shards_) {
    sh.capacity = cap;
    sh.slots.resize(cap);
  }
}

void ConcurrentHashMap::insert(std::uint64_t key, std::uint64_t value) {
  Shard& sh = shard_for(key);
  std::uint64_t idx = probe_start(sh, key);
  for (std::uint64_t step = 0; step < sh.capacity; ++step) {
    Slot& s = sh.slots[idx];
    if (!s.used) {
      s.key = key;
      s.value = value;
      s.used = true;
      ++size_;
      max_probe_ = std::max(max_probe_, step);
      return;
    }
    idx = (idx + 1) & (sh.capacity - 1);
  }
  RDMASEM_CHECK_MSG(false, "hash map shard full");
}

}  // namespace rdmasem::apps::join
