#include "wl/microbench.hpp"

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace rdmasem::wl {

namespace {

struct Shared {
  sim::Time start = 0;
  sim::Time last_completion = 0;
  std::uint64_t completions = 0;
  std::uint64_t errors = 0;
  std::array<std::uint64_t, kStatusCount> by_status{};
  double latency_sum_us = 0;
  util::Samples latencies;
};

sim::Task client_loop(sim::Engine& eng, const ClientSpec& spec,
                      std::uint32_t client, Shared& sh,
                      sim::CountdownLatch& done) {
  verbs::QueuePair* qp = spec.qps[client];
  sim::Semaphore credits(eng, spec.window);
  sim::CountdownLatch drained(eng, spec.ops_per_client);

  for (std::uint64_t i = 0; i < spec.ops_per_client; ++i) {
    co_await credits.acquire();
    verbs::WorkRequest wr = spec.make_wr(client, i);
    wr.signaled = true;
    if (wr.wr_id == 0) wr.wr_id = qp->context().next_wr_id();
    const sim::Time post_time = eng.now();
    auto waiter = [](verbs::QueuePair* q, std::uint64_t wid, sim::Time posted,
                     Shared& s, sim::Semaphore& cr,
                     sim::CountdownLatch& d) -> sim::Task {
      const verbs::Completion c = co_await q->wait(wid);
      if (!c.ok()) ++s.errors;
      ++s.by_status[static_cast<std::size_t>(c.status)];
      ++s.completions;
      s.last_completion = c.completed_at;
      const double lat_us = sim::to_us(c.completed_at - posted);
      s.latency_sum_us += lat_us;
      s.latencies.add(lat_us);
      cr.release();
      d.count_down();
    };
    eng.spawn(waiter(qp, wr.wr_id, post_time, sh, credits, drained));
    co_await qp->post(wr);
  }
  co_await drained.wait();
  done.count_down();
}

}  // namespace

std::string BenchResult::error_breakdown() const {
  std::string out;
  for (std::size_t i = 0; i < by_status.size(); ++i) {
    if (i == 0 || by_status[i] == 0) continue;  // skip kSuccess and zeros
    if (!out.empty()) out += ' ';
    out += verbs::to_string(static_cast<verbs::Status>(i));
    out += ':';
    out += std::to_string(by_status[i]);
  }
  return out.empty() ? "-" : out;
}

BenchResult run_closed_loop(sim::Engine& engine, const ClientSpec& spec) {
  RDMASEM_CHECK_MSG(!spec.qps.empty(), "no clients");
  RDMASEM_CHECK_MSG(static_cast<bool>(spec.make_wr), "make_wr required");

  // One accumulator per client, each written only by that client's lane;
  // merged in client order after the run so the result is byte-identical
  // whatever RDMASEM_SHARDS is.
  const auto n_clients = static_cast<std::uint32_t>(spec.qps.size());
  std::vector<Shared> shs(n_clients);
  sim::CountdownLatch done(engine, n_clients);
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    shs[c].start = engine.now();
    // Each client drives its QP from the QP's machine lane — the pinning
    // that lets the parallel engine spread clients across shards.
    const std::uint32_t lane = spec.qps[c]->context().machine().id() + 1;
    engine.spawn_on(lane, client_loop(engine, spec, c, shs[c], done));
  }
  engine.run();
  RDMASEM_CHECK_MSG(done.remaining() == 0, "clients did not finish");

  Shared sh;
  sh.start = shs.front().start;
  for (const Shared& s : shs) {
    sh.last_completion = std::max(sh.last_completion, s.last_completion);
    sh.completions += s.completions;
    sh.errors += s.errors;
    for (std::size_t i = 0; i < sh.by_status.size(); ++i)
      sh.by_status[i] += s.by_status[i];
    sh.latency_sum_us += s.latency_sum_us;
    for (std::size_t i = 0; i < s.latencies.count(); ++i)
      sh.latencies.add(s.latencies.sample(i));
  }

  BenchResult r;
  r.elapsed = sh.last_completion > sh.start ? sh.last_completion - sh.start : 1;
  r.errors = sh.errors;
  r.by_status = sh.by_status;
  const double total_ops =
      static_cast<double>(sh.completions) * spec.ops_per_wr;
  r.mops = total_ops / sim::to_us(r.elapsed);
  r.per_thread_mops = r.mops / n_clients;
  r.avg_latency_us =
      sh.completions ? sh.latency_sum_us / static_cast<double>(sh.completions)
                     : 0;
  r.p50_latency_us = sh.latencies.percentile(50);
  r.p99_latency_us = sh.latencies.percentile(99);
  r.p999_latency_us = sh.latencies.percentile(99.9);
  return r;
}

}  // namespace rdmasem::wl
