#pragma once

// Rig — a ready-to-use simulated testbed: engine + eight-machine cluster +
// one verbs context per machine, plus helpers for the common "connect two
// machines, write/read between them" pattern. Tests, benches and examples
// all start from here.

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "verbs/buffer.hpp"
#include "verbs/context.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::wl {

struct Rig {
  sim::Engine eng;
  cluster::Cluster cluster;
  std::vector<std::unique_ptr<verbs::Context>> ctx;

  explicit Rig(hw::ModelParams p = hw::ModelParams::connectx3_cluster())
      : cluster(eng, p) {
    for (std::uint32_t m = 0; m < cluster.size(); ++m)
      ctx.push_back(std::make_unique<verbs::Context>(cluster, m));
  }

  std::vector<verbs::Context*> contexts() {
    std::vector<verbs::Context*> out;
    out.reserve(ctx.size());
    for (auto& c : ctx) out.push_back(c.get());
    return out;
  }

  // The paper's single-NIC baseline placement: RNIC port, issuing core and
  // RDMA memory all on the socket the ConnectX-3 hangs off (socket 1).
  verbs::QpConfig paper_qp() const {
    verbs::QpConfig cfg;
    cfg.port = cluster.params().rnic_socket;
    cfg.core_socket = cluster.params().rnic_socket;
    return cfg;
  }

  struct Conn {
    verbs::QueuePair* local;
    verbs::QueuePair* remote;
  };
  Conn connect(std::uint32_t a, std::uint32_t b) {
    return connect(a, b, paper_qp(), paper_qp());
  }
  Conn connect(std::uint32_t a, std::uint32_t b, verbs::QpConfig cfg_a,
               verbs::QpConfig cfg_b) {
    if (cfg_a.cq == nullptr) cfg_a.cq = ctx[a]->create_cq();
    if (cfg_b.cq == nullptr) cfg_b.cq = ctx[b]->create_cq();
    auto* qa = ctx[a]->create_qp(cfg_a);
    auto* qb = ctx[b]->create_qp(cfg_b);
    // UD and DC QPs are connectionless: they come up RTS at creation and
    // route per-WR via ud_dest, so there is no QP state to transition
    // here — the returned pair is just the caller's convenience handle.
    auto connectionless = [](verbs::Transport t) {
      return t == verbs::Transport::kUD || t == verbs::Transport::kDc;
    };
    if (!connectionless(cfg_a.transport) || !connectionless(cfg_b.transport))
      verbs::Context::connect(*qa, *qb);
    return {qa, qb};
  }
};

inline verbs::WorkRequest make_write(const verbs::MemoryRegion& local,
                                     std::uint64_t local_off,
                                     const verbs::MemoryRegion& remote,
                                     std::uint64_t remote_off,
                                     std::uint32_t len) {
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.sg_list = {{local.addr + local_off, len, local.key}};
  wr.remote_addr = remote.addr + remote_off;
  wr.rkey = remote.key;
  return wr;
}

inline verbs::WorkRequest make_read(const verbs::MemoryRegion& local,
                                    std::uint64_t local_off,
                                    const verbs::MemoryRegion& remote,
                                    std::uint64_t remote_off,
                                    std::uint32_t len) {
  verbs::WorkRequest wr;
  wr.opcode = verbs::Opcode::kRead;
  wr.sg_list = {{local.addr + local_off, len, local.key}};
  wr.remote_addr = remote.addr + remote_off;
  wr.rkey = remote.key;
  return wr;
}

}  // namespace rdmasem::wl
