#include "wl/zipf.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rdmasem::wl {

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  // Direct summation is exact; for the region sizes used by the paper's
  // workloads (<= tens of millions of keys) this is a one-off cost.
  // For large n we sum the head exactly and integrate the tail.
  constexpr std::uint64_t kExact = 1u << 20;
  double sum = 0;
  const std::uint64_t head = n < kExact ? n : kExact;
  for (std::uint64_t i = 1; i <= head; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  if (n > head) {
    // Integral approximation of sum_{head+1}^{n} x^-theta.
    const double a = static_cast<double>(head);
    const double b = static_cast<double>(n);
    sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) / (1 - theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  RDMASEM_CHECK_MSG(n > 0, "zipf over empty domain");
  RDMASEM_CHECK_MSG(theta > 0 && theta < 1, "theta must be in (0,1)");
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfGenerator::next() {
  const double u = rng_.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace rdmasem::wl
