#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::wl {

// Closed-loop measurement clients for the §III microbenchmarks.
//
// Each client is one simulated thread bound to one QP. `window` is the
// number of outstanding operations it keeps in flight:
//   window == 1 : latency mode (Fig. 1 latency, Fig. 5 per-thread)
//   window >= 16: throughput mode (Fig. 1 MOPS, Fig. 3/4/6)
//
// `make_wr(client, seq)` produces the next work request for a client; it is
// called `ops_per_client` times per client. Each completed WR counts as
// `ops_per_wr` logical operations (used by the batch strategies, where one
// WR can carry a whole batch).
struct ClientSpec {
  std::vector<verbs::QueuePair*> qps;  // one per client
  std::uint64_t ops_per_client = 1000;
  std::uint32_t window = 1;
  std::uint32_t ops_per_wr = 1;
  std::function<verbs::WorkRequest(std::uint32_t client, std::uint64_t seq)>
      make_wr;
};

// One counter per verbs::Status value (index = static_cast of the enum).
inline constexpr std::size_t kStatusCount =
    static_cast<std::size_t>(verbs::Status::kWrFlushedError) + 1;

struct BenchResult {
  double mops = 0;            // logical Mops/s over the measured interval
  double avg_latency_us = 0;  // mean per-WR completion latency
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  double p999_latency_us = 0;
  double per_thread_mops = 0;
  sim::Duration elapsed = 0;
  std::uint64_t errors = 0;   // completions with any non-success status
  std::array<std::uint64_t, kStatusCount> by_status{};

  std::uint64_t count(verbs::Status s) const {
    return by_status[static_cast<std::size_t>(s)];
  }
  // "-" when clean, else e.g. "RETRY_EXCEEDED:3 WR_FLUSH_ERR:17".
  std::string error_breakdown() const;
};

// Runs the spec to completion on `engine` (spawns clients, drains the
// engine) and reports throughput/latency in simulated time.
BenchResult run_closed_loop(sim::Engine& engine, const ClientSpec& spec);

}  // namespace rdmasem::wl
