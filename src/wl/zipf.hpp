#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace rdmasem::wl {

// ZipfGenerator — Zipfian key sampler over [0, n) with exponent `theta`
// (the paper's skewed KV workload uses theta = 0.99, YCSB-style).
//
// Uses the Gray et al. rejection-free method ("Quickly generating
// billion-record synthetic databases"): O(1) per sample after O(n)-free
// setup, exact distribution.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1);

  std::uint64_t next();
  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  sim::Rng rng_;
};

// UniformGenerator — convenience sibling of ZipfGenerator for the
// non-skewed workloads.
class UniformGenerator {
 public:
  UniformGenerator(std::uint64_t n, std::uint64_t seed = 1)
      : n_(n), rng_(seed) {}
  std::uint64_t next() { return rng_.uniform(n_); }

 private:
  std::uint64_t n_;
  sim::Rng rng_;
};

}  // namespace rdmasem::wl
