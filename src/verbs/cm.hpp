#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/task.hpp"
#include "verbs/context.hpp"
#include "verbs/qp.hpp"

namespace rdmasem::verbs {

// ConnectionManager — rdma_cm-style connection establishment. Production
// RDMA code never wires QPs by hand the way tests do; it resolves a
// (machine, service) address, exchanges QP numbers over a bootstrap
// channel, and transitions the QPs to RTS. This layer models that:
//
//   server:  cm.listen(ctx, service, qp_template, on_accept);
//   client:  auto* qp = co_await cm.connect(ctx, server_machine, service,
//                                           qp_template);
//
// connect() charges the bootstrap exchange (one fabric round trip of the
// private-data handshake) plus the QP state-transition cost on both ends,
// then returns a connected, ready-to-post QP. The accept handler runs on
// the server at the simulated instant its half is ready.
class ConnectionManager {
 public:
  using ServiceId = std::uint32_t;
  using AcceptHandler = std::function<void(QueuePair*)>;

  explicit ConnectionManager(cluster::Cluster& cluster)
      : cluster_(cluster) {}

  // Registers a passive endpoint. New connections to (ctx's machine,
  // service) create a server-side QP from `qp_template` and hand it to
  // `on_accept`.
  void listen(Context& ctx, ServiceId service, const QpConfig& qp_template,
              AcceptHandler on_accept);

  // Active side: establishes an RC connection to (server, service).
  // Aborts if nothing listens there (a connection refusal is a
  // programming error in a closed simulation).
  sim::TaskT<QueuePair*> connect(Context& ctx, cluster::MachineId server,
                                 ServiceId service,
                                 const QpConfig& qp_template);

  std::uint64_t connections_established() const { return established_; }

 private:
  struct Listener {
    Context* ctx;
    QpConfig qp_template;
    AcceptHandler on_accept;
  };

  cluster::Cluster& cluster_;
  std::map<std::pair<cluster::MachineId, ServiceId>, Listener> listeners_;
  std::uint64_t established_ = 0;
};

}  // namespace rdmasem::verbs
