#include "verbs/context.hpp"

#include "util/assert.hpp"
#include "verbs/qp.hpp"
#include "verbs/srq.hpp"

namespace rdmasem::verbs {

Context::Context(cluster::Cluster& cluster, cluster::MachineId machine)
    : cluster_(cluster), machine_(cluster.machine(machine)) {}

Context::~Context() = default;

MemoryRegion* Context::register_memory(void* p, std::size_t len,
                                       hw::SocketId socket) {
  return register_memory(reinterpret_cast<std::uint64_t>(p), p, len, socket);
}

MemoryRegion* Context::register_memory(std::uint64_t addr, void* p,
                                       std::size_t len, hw::SocketId socket) {
  RDMASEM_CHECK_MSG(p != nullptr && len > 0, "empty registration");
  RDMASEM_CHECK_MSG(socket < params().sockets_per_machine, "bad socket");
  auto mr = std::make_unique<MemoryRegion>();
  mr->key = ++next_key_;
  mr->addr = addr;
  mr->length = len;
  mr->socket = socket;
  mr->data = static_cast<std::byte*>(p);
  MemoryRegion* out = mr.get();
  mrs_.emplace(mr->key, std::move(mr));
  return out;
}

void Context::deregister(std::uint32_t key) {
  auto it = mrs_.find(key);
  if (it == mrs_.end()) return;
  machine_.rnic().invalidate_mr(key, it->second->addr, it->second->length);
  mrs_.erase(it);
}

MemoryRegion* Context::lookup(std::uint32_t key) {
  auto it = mrs_.find(key);
  return it == mrs_.end() ? nullptr : it->second.get();
}

CompletionQueue* Context::create_cq() {
  cqs_.push_back(std::make_unique<CompletionQueue>(engine()));
  return cqs_.back().get();
}

QueuePair* Context::create_qp(const QpConfig& cfg) {
  RDMASEM_CHECK_MSG(cfg.port < machine_.rnic().port_count(), "bad port");
  RDMASEM_CHECK_MSG(cfg.core_socket < params().sockets_per_machine,
                    "bad core socket");
  RDMASEM_CHECK_MSG(cfg.srq == nullptr || &cfg.srq->context() == this,
                    "SRQ belongs to a different Context");
  qps_.push_back(std::make_unique<QueuePair>(*this, cfg, cluster_.next_qp_id()));
  return qps_.back().get();
}

SharedReceiveQueue* Context::create_srq() {
  srqs_.push_back(std::make_unique<SharedReceiveQueue>(
      *this, static_cast<std::uint32_t>(srqs_.size() + 1)));
  return srqs_.back().get();
}

void Context::connect(QueuePair& a, QueuePair& b) {
  RDMASEM_CHECK_MSG(a.peer_ == nullptr && b.peer_ == nullptr,
                    "QP already connected");
  RDMASEM_CHECK_MSG(a.state_ == QpState::kReset && b.state_ == QpState::kReset,
                    "connect needs both QPs in RESET");
  a.peer_ = &b;
  b.peer_ = &a;
  // The simulator collapses the INIT/RTR handshake: both ends go
  // ready-to-send in one step.
  a.state_ = QpState::kRts;
  b.state_ = QpState::kRts;
}

}  // namespace rdmasem::verbs
