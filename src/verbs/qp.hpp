#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/task.hpp"
#include "verbs/context.hpp"
#include "verbs/types.hpp"

namespace rdmasem::verbs {

// QueuePair — an RC connection endpoint. Work requests post to the send
// queue and complete through the bound CompletionQueue; the hardware-level
// cost pipeline (doorbell MMIO, WQE fetch, execution unit, PCIe DMA, wire,
// remote processing, metadata-cache stalls) runs as a coroutine per WR on
// the virtual clock, and RDMA data movement is real memcpy between the
// two machines' registered buffers.
//
// Two posting layers:
//   * post_send / post_send_batch: "hardware time" only — the WQEs become
//     visible to the RNIC now; the caller's CPU cost is NOT charged.
//     post_send_batch is a doorbell list: one MMIO for all WRs (§III-A).
//   * post / execute / execute_batch: coroutine helpers that first charge
//     the calling task the CPU posting cost (WQE prep per WR + one MMIO +
//     NUMA MMIO penalty), then post. execute() also awaits the completion.
class QueuePair {
 public:
  QueuePair(Context& ctx, const QpConfig& cfg, std::uint64_t id);

  std::uint64_t id() const { return id_; }
  const QpConfig& config() const { return cfg_; }
  Context& context() { return ctx_; }
  QueuePair* peer() { return peer_; }
  bool connected() const { return peer_ != nullptr; }

  // ---- state machine (RESET -> RTS -> ERROR, docs/FAULTS.md) ----------
  QpState state() const { return state_; }
  // Moves to ERROR and flushes: every queued RECV completes with
  // kWrFlushedError on the bound CQ; WRs posted from now on (and WRs
  // still in the hardware pipeline) complete with kWrFlushedError too.
  // Idempotent. Called internally on transport retry exhaustion.
  void to_error();
  // ERROR/RTS -> RESET: drops the peer binding so the QP can be
  // reconnected (Context::connect). Outstanding WRs must have drained.
  void reset();

  // ---- hardware-time posting ------------------------------------------
  void post_send(const WorkRequest& wr) { post_send(WorkRequest(wr)); }
  // rvalue form: the WR's SGE storage moves into the pipeline coroutine
  // instead of being copied, so posting never allocates.
  void post_send(WorkRequest&& wr);
  void post_send_batch(const std::vector<WorkRequest>& wrs);
  void post_send_batch(std::vector<WorkRequest>&& wrs);
  void post_recv(const RecvRequest& rr);

  // ---- CPU-charged coroutine helpers -----------------------------------
  // CPU cost of posting `n_wrs` WRs with one doorbell.
  sim::Duration post_cost(std::size_t n_wrs, std::size_t inline_bytes = 0) const;
  sim::TaskT<void> post(WorkRequest wr);
  sim::TaskT<Completion> execute(WorkRequest wr);
  // Posts the batch with one doorbell; the last WR is forced signaled and
  // its completion is returned (earlier WRs keep their own flags).
  sim::TaskT<Completion> execute_batch(std::vector<WorkRequest> wrs);

  // Awaits the completion of a specific wr_id. Must be registered before
  // the completion fires, i.e. call via execute()/execute_batch() or
  // register-then-post in the same simulation instant.
  sim::TaskT<Completion> wait(std::uint64_t wr_id);

  std::uint32_t outstanding() const { return outstanding_; }
  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t bytes_completed() const { return bytes_completed_; }
  std::size_t recv_queue_depth() const { return recv_queue_.size(); }
  // Failure observability: transport retransmissions performed and WRs
  // (send or recv) flushed with kWrFlushedError.
  std::uint64_t retransmits() const {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushed_wrs() const { return flushed_wrs_; }

  // The one gather/scatter primitive every payload movement funnels
  // through: WRITE/SEND source gather, READ response landing, the
  // SEND->RECV consume, and the remem staging copies (SP batching).
  // `limit` caps the total bytes scattered (a RECV SGE may be larger than
  // the arriving message).
  static void gather_sges(Context& ctx, const Sge* sges, std::size_t n,
                          std::byte* dst);
  static void scatter_sges(Context& ctx, const Sge* sges, std::size_t n,
                           const std::byte* src, std::size_t limit);

 private:
  friend class Context;

  // wait()/complete() rendezvous slot. Kept in a flat vector (linear scan,
  // swap-pop erase): outstanding waiters are bounded by in-flight WRs per
  // QP (typically the pipelining window, single digits), and the vector's
  // capacity is retained across WRs so the rendezvous never allocates at
  // steady state — a node-based map put one allocation on every execute().
  struct Waiter {
    std::uint64_t wr_id = 0;
    std::coroutine_handle<> handle{};
    Completion result{};
    bool done = false;
  };

  // `bf` = BlueFlame: the WQE arrived with the doorbell MMIO (single
  // posts), so the RNIC skips the descriptor-fetch DMA.
  sim::Task run_wr(WorkRequest wr, bool bf);
  // One transfer leg with RC loss recovery: retransmits with exponential
  // backoff up to cfg_.retry_cnt. Returns false when the leg is lost for
  // good (unreliable transport, or retries exhausted).
  //
  // Lane contract (the parallel-engine migration protocol): call on the
  // SOURCE machine's lane. Resumes the caller on the DESTINATION's lane
  // when it returns true (the payload landed there), and on
  // `home_machine`'s lane when it returns false (the requester's timeout
  // is how loss is discovered — home is the machine that owns this WR's
  // completion: the local machine for request legs, which is `dst` for
  // response/ACK/NAK legs).
  sim::TaskT<bool> deliver(std::uint32_t src_machine, std::uint32_t sport,
                           std::uint32_t dst_machine, std::uint32_t dport,
                           std::size_t bytes, bool reliable,
                           std::uint32_t home_machine);
  // Completes `wr` with `st` and transitions the QP to ERROR (transport
  // failure path: retry exhaustion).
  void fail_wr(const WorkRequest& wr, Status st);
  // Deferred flush completion for a WR posted against an ERROR QP.
  sim::Task flush_posted_wr(WorkRequest wr);
  void complete(const WorkRequest& wr, Status st, std::uint32_t bytes,
                std::uint64_t atomic_old = 0);
  Waiter* find_waiter(std::uint64_t wr_id);
  // Receive-side pool indirection: a QP with QpConfig::srq set consumes
  // arriving SENDs from the shared pool, otherwise from its private RQ.
  bool recv_ready() const;
  RecvRequest consume_recv();

  Context& ctx_;
  QpConfig cfg_;
  std::uint64_t id_;
  QueuePair* peer_ = nullptr;
  QpState state_ = QpState::kReset;
  std::uint32_t outstanding_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t bytes_completed_ = 0;
  // Bumped wherever a drop is discovered (response-leg retransmits count
  // against the requester QP but fire on the responder's lane), so this
  // is the one QP statistic that needs to be atomic.
  std::atomic<std::uint64_t> retransmits_{0};
  std::uint64_t flushed_wrs_ = 0;
  // Post-order counter feeding WorkRequest::trace_seq — the tracer's
  // per-WR identity (wr_id is app-owned and may repeat). Bumped whether
  // or not tracing is on, so traced runs replay the untraced timeline.
  std::uint64_t trace_seq_ = 0;
  std::deque<RecvRequest> recv_queue_;
  std::vector<Waiter> waiters_;
};

}  // namespace rdmasem::verbs
