#pragma once

#include <cstdint>
#include <deque>

#include "verbs/types.hpp"

namespace rdmasem::verbs {

class Context;

// SharedReceiveQueue — one posted-buffer pool drained by many QPs
// (ibv_srq). A QP created with QpConfig::srq set consumes arriving SENDs
// from this pool instead of its private receive queue, so a service
// endpoint provisions O(expected messages) buffers instead of
// O(connections × depth). When the pool runs dry the responder returns
// RNR NAKs exactly as a dry private RQ would (QueuePair::run_wr).
//
// Buffers belong to the POOL, not to any QP: a QP transitioning to ERROR
// flushes only its private receive queue — SRQ buffers stay posted and
// remain consumable by every other QP attached to the SRQ (tested in
// svc_test.cpp).
//
// Lane contract: the SRQ is single-lane state of its owning machine, like
// the QPs that drain it. post() from the owning machine's lane (or during
// setup while the engine is not running); consumption happens on that
// lane automatically because SEND processing runs on the responder's
// lane.
class SharedReceiveQueue {
 public:
  SharedReceiveQueue(Context& ctx, std::uint32_t id);

  // Posts one receive buffer to the shared pool (FIFO).
  void post(const RecvRequest& rr);

  bool empty() const { return q_.empty(); }
  std::size_t depth() const { return q_.size(); }
  std::uint32_t id() const { return id_; }
  Context& context() { return ctx_; }
  // Lifetime totals (obs mirrors these as verbs.srq.{posted,consumed}).
  std::uint64_t posted() const { return posted_; }
  std::uint64_t consumed() const { return consumed_; }

 private:
  friend class QueuePair;
  // FIFO consume by an arriving SEND; caller guarantees !empty().
  RecvRequest consume();

  Context& ctx_;
  std::uint32_t id_;
  std::deque<RecvRequest> q_;
  std::uint64_t posted_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace rdmasem::verbs
