#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "verbs/buffer.hpp"
#include "verbs/cq.hpp"
#include "verbs/types.hpp"

namespace rdmasem::verbs {

class QueuePair;
class SharedReceiveQueue;

// MemoryRegion — a registered slice of host memory. lkey == rkey == id
// (the simulator does not model protection-key randomization). The region
// remembers which NUMA socket its pages live on: all DMA cost accounting
// is derived from that.
struct MemoryRegion {
  std::uint32_t key = 0;
  std::uint64_t addr = 0;
  std::size_t length = 0;
  hw::SocketId socket = 0;
  std::byte* data = nullptr;

  bool contains(std::uint64_t a, std::size_t len) const {
    return a >= addr && len <= length && a - addr <= length - len;
  }
  std::byte* at(std::uint64_t a) { return data + (a - addr); }
  const std::byte* at(std::uint64_t a) const { return data + (a - addr); }
};

// QueuePair placement attributes (§III-D: which port, which core socket)
// and transport type (§II-A).
struct QpConfig {
  rnic::PortId port = 0;
  hw::SocketId core_socket = 0;   // socket of the CPU issuing doorbells
  CompletionQueue* cq = nullptr;  // send+recv completions
  std::uint32_t sq_depth = 4096;
  Transport transport = Transport::kRC;
  // RC reliability budget: packet-loss retransmissions per transfer leg
  // before the WR fails with kRetryExceeded and the QP enters ERROR.
  // kInfiniteRetry (7, the IBV sentinel) retries forever — the right
  // model for a lossy-but-alive fabric; bound it (1..6) when the workload
  // has a failover story and must detect dead peers.
  std::uint32_t retry_cnt = kInfiniteRetry;
  // Receiver-not-ready retries for SEND: each RNR NAK costs one wait of
  // ModelParams::rnr_timer before the retransmit. 0 fails fast with
  // kRnrRetryExceeded (the pre-fault behavior); kInfiniteRetry waits
  // until a RECV shows up.
  std::uint32_t rnr_retry = 0;
  // When set, arriving SENDs consume buffers from this shared pool
  // instead of the QP's private receive queue (ibv_srq semantics). The
  // QP then has no RQ of its own: post_recv() on it is an error. The
  // SRQ must belong to the same Context as the QP.
  SharedReceiveQueue* srq = nullptr;
};

// Context — the per-machine verbs endpoint (ibv_context + ibv_pd rolled
// into one). Owns memory regions, completion queues and queue pairs for
// one machine.
class Context {
 public:
  Context(cluster::Cluster& cluster, cluster::MachineId machine);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // Registers [p, p+len) as RDMA-accessible memory homed on `socket`.
  // The RDMA-visible address equals the host pointer value.
  MemoryRegion* register_memory(void* p, std::size_t len, hw::SocketId socket);
  // Registers a Buffer; the RDMA-visible address is the buffer's
  // deterministic simulated address (see Buffer::addr), decoupled from the
  // host storage pointer.
  MemoryRegion* register_buffer(Buffer& buf, hw::SocketId socket) {
    return register_memory(buf.addr(), buf.data(), buf.size(), socket);
  }

  MemoryRegion* register_memory(std::uint64_t addr, void* p, std::size_t len,
                                hw::SocketId socket);
  void deregister(std::uint32_t key);
  MemoryRegion* lookup(std::uint32_t key);
  std::size_t mr_count() const { return mrs_.size(); }

  CompletionQueue* create_cq();
  QueuePair* create_qp(const QpConfig& cfg);
  SharedReceiveQueue* create_srq();

  // Wires two QPs into an RC connection (both directions).
  static void connect(QueuePair& a, QueuePair& b);

  cluster::Cluster& cluster() { return cluster_; }
  cluster::Machine& machine() { return machine_; }
  sim::Engine& engine() { return cluster_.engine(); }
  const hw::ModelParams& params() const { return cluster_.params(); }

  std::uint64_t next_wr_id() { return ++wr_id_; }

 private:
  cluster::Cluster& cluster_;
  cluster::Machine& machine_;
  std::uint32_t next_key_ = 0;
  std::uint64_t wr_id_ = 0;
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> mrs_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::vector<std::unique_ptr<SharedReceiveQueue>> srqs_;
};

}  // namespace rdmasem::verbs
