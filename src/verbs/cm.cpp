#include "verbs/cm.hpp"

#include "util/assert.hpp"

namespace rdmasem::verbs {

void ConnectionManager::listen(Context& ctx, ServiceId service,
                               const QpConfig& qp_template,
                               AcceptHandler on_accept) {
  const auto key = std::make_pair(ctx.machine().id(), service);
  RDMASEM_CHECK_MSG(listeners_.find(key) == listeners_.end(),
                    "service already listening on this machine");
  listeners_.emplace(key, Listener{&ctx, qp_template, std::move(on_accept)});
}

sim::TaskT<QueuePair*> ConnectionManager::connect(Context& ctx,
                                                  cluster::MachineId server,
                                                  ServiceId service,
                                                  const QpConfig& qp_template) {
  auto it = listeners_.find(std::make_pair(server, service));
  RDMASEM_CHECK_MSG(it != listeners_.end(), "connection refused: no listener");
  Listener& l = it->second;
  auto& eng = ctx.engine();
  const auto& p = ctx.params();

  // The bootstrap handshake: REQ carries the client's QP number and rkeys
  // as private data; REP returns the server's. Two fabric traversals of a
  // small datagram plus CM processing on each side.
  const sim::Duration handshake =
      2 * (p.net_propagation + p.net_switch_hop +
           hw::ModelParams::ser_time(256, p.link_gbps)) +
      2 * sim::us(1.5);  // CM event processing (interrupt + thread wakeup)
  co_await sim::delay(eng, handshake);

  // QP creation + INIT->RTR->RTS transitions on both ends (driver-mediated
  // register writes; a few microseconds each on real hardware).
  const sim::Duration qp_setup = sim::us(4.0);
  co_await sim::delay(eng, qp_setup);

  QueuePair* client_qp = ctx.create_qp(qp_template);
  QpConfig server_cfg = l.qp_template;
  if (server_cfg.cq == nullptr) server_cfg.cq = l.ctx->create_cq();
  QueuePair* server_qp = l.ctx->create_qp(server_cfg);
  Context::connect(*client_qp, *server_qp);
  ++established_;
  if (l.on_accept) l.on_accept(server_qp);
  co_return client_qp;
}

}  // namespace rdmasem::verbs
