#include "verbs/qp.hpp"

#include <algorithm>
#include <cstring>

#include "net/fabric.hpp"
#include "obs/hub.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/assert.hpp"
#include "verbs/payload.hpp"
#include "verbs/srq.hpp"

namespace rdmasem::verbs {

namespace {
// Wire sizes of header-only packets.
constexpr std::size_t kReadRequestBytes = 16;
constexpr std::size_t kAtomicRequestBytes = 28;
constexpr std::size_t kAckBytes = 0;  // header-only; header cost added by wire_time

bool is_atomic(Opcode op) {
  return op == Opcode::kCompSwap || op == Opcode::kFetchAdd;
}

// UD and DC QPs have no fixed peer: every WR names its destination.
bool per_wr_target(Transport tp) {
  return tp == Transport::kUD || tp == Transport::kDc;
}
}  // namespace

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kWrite: return "WRITE";
    case Opcode::kRead: return "READ";
    case Opcode::kCompSwap: return "CMP_SWAP";
    case Opcode::kFetchAdd: return "FETCH_ADD";
    case Opcode::kSend: return "SEND";
    case Opcode::kRecv: return "RECV";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kSuccess: return "OK";
    case Status::kLocalProtectionError: return "LOCAL_PROT_ERR";
    case Status::kRemoteAccessError: return "REMOTE_ACCESS_ERR";
    case Status::kRemoteInvalidRequest: return "REMOTE_INVALID_REQ";
    case Status::kRnrRetryExceeded: return "RNR_RETRY_EXCEEDED";
    case Status::kUnsupportedOpcode: return "UNSUPPORTED_OPCODE";
    case Status::kRetryExceeded: return "RETRY_EXCEEDED";
    case Status::kWrFlushedError: return "WR_FLUSH_ERR";
  }
  return "?";
}

const char* to_string(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kRts: return "RTS";
    case QpState::kError: return "ERROR";
  }
  return "?";
}

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kRC: return "RC";
    case Transport::kUC: return "UC";
    case Transport::kUD: return "UD";
    case Transport::kDc: return "DC";
  }
  return "?";
}

QueuePair::QueuePair(Context& ctx, const QpConfig& cfg, std::uint64_t id)
    : ctx_(ctx), cfg_(cfg), id_(id) {
  // UD and DC QPs have no connect step: they are ready as soon as they
  // exist (DC establishes its connection state per-burst, on the fly).
  if (per_wr_target(cfg_.transport)) state_ = QpState::kRts;
}

void QueuePair::to_error() {
  if (state_ == QpState::kError) return;
  state_ = QpState::kError;
  // Flush the receive queue: every posted RECV completes with
  // kWrFlushedError on the bound CQ (the IBV_WC_WR_FLUSH_ERR analog).
  // SRQ buffers are deliberately NOT flushed: they belong to the shared
  // pool, not to this QP, and stay consumable by every sibling QP.
  while (!recv_queue_.empty()) {
    const RecvRequest rr = recv_queue_.front();
    recv_queue_.pop_front();
    ++flushed_wrs_;
    if (cfg_.cq != nullptr) {
      Completion c;
      c.wr_id = rr.wr_id;
      c.status = Status::kWrFlushedError;
      c.opcode = Opcode::kRecv;
      c.qp_id = id_;
      c.completed_at = ctx_.engine().now();
      cfg_.cq->push(c);
    }
  }
}

void QueuePair::reset() {
  RDMASEM_CHECK_MSG(outstanding_ == 0, "QP reset with outstanding WRs");
  // Detach both directions; the peer keeps its own state but can no
  // longer reach us (posting on it trips the connected check).
  if (peer_ != nullptr && peer_->peer_ == this) peer_->peer_ = nullptr;
  peer_ = nullptr;
  state_ = QpState::kReset;
}

void QueuePair::fail_wr(const WorkRequest& wr, Status st) {
  complete(wr, st, 0);
  to_error();
}

sim::Task QueuePair::flush_posted_wr(WorkRequest wr) {
  // Runs as a spawned task (never inline from post_send) so that an
  // execute() caller registers its wait() before the completion fires.
  if (wr.posted_at == 0) wr.posted_at = ctx_.engine().now();
  complete(wr, Status::kWrFlushedError, 0);
  co_return;
}

void QueuePair::post_send(WorkRequest&& wr) {
  if (per_wr_target(cfg_.transport)) {
    RDMASEM_CHECK_MSG(wr.ud_dest != nullptr, "UD/DC send needs ud_dest");
  } else {
    RDMASEM_CHECK_MSG(peer_ != nullptr, "QP not connected");
  }
  RDMASEM_CHECK_MSG(outstanding_ < cfg_.sq_depth, "send queue overflow");
  ++outstanding_;
  wr.trace_seq = ++trace_seq_;
  obs::Hub& hub = ctx_.cluster().obs();
  hub.wr_posted.inc();
  if (hub.tracer.enabled())
    hub.tracer.instant(obs::Stage::kDoorbell, ctx_.engine().now(), wr.wr_id,
                       id_, ctx_.machine().id(),
                       static_cast<std::uint8_t>(wr.opcode), wr.trace_seq);
  if (state_ == QpState::kError) {
    ctx_.engine().spawn(flush_posted_wr(std::move(wr)));
    return;
  }
  ctx_.engine().spawn(
      run_wr(std::move(wr), /*bf=*/ctx_.params().rnic_blueflame));
}

void QueuePair::post_send_batch(const std::vector<WorkRequest>& wrs) {
  post_send_batch(std::vector<WorkRequest>(wrs));
}

void QueuePair::post_send_batch(std::vector<WorkRequest>&& wrs) {
  for (auto& wr : wrs) wr.trace_seq = ++trace_seq_;
  obs::Hub& hub = ctx_.cluster().obs();
  hub.wr_posted.inc(wrs.size());
  if (hub.tracer.enabled() && !wrs.empty())
    hub.tracer.instant(obs::Stage::kDoorbell, ctx_.engine().now(),
                       wrs.front().wr_id, id_, ctx_.machine().id(),
                       static_cast<std::uint8_t>(wrs.front().opcode),
                       wrs.front().trace_seq);
  for (auto& wr : wrs) {
    if (per_wr_target(cfg_.transport)) {
      RDMASEM_CHECK_MSG(wr.ud_dest != nullptr, "UD/DC send needs ud_dest");
    } else {
      RDMASEM_CHECK_MSG(peer_ != nullptr, "QP not connected");
    }
    RDMASEM_CHECK_MSG(outstanding_ < cfg_.sq_depth, "send queue overflow");
    ++outstanding_;
    if (state_ == QpState::kError) {
      ctx_.engine().spawn(flush_posted_wr(std::move(wr)));
      continue;
    }
    // Doorbell-listed WQEs are fetched from host memory by the RNIC.
    ctx_.engine().spawn(run_wr(std::move(wr), /*bf=*/false));
  }
}

void QueuePair::post_recv(const RecvRequest& rr) {
  RDMASEM_CHECK_MSG(cfg_.srq == nullptr,
                    "QP drains an SRQ; post buffers to the SRQ instead");
  recv_queue_.push_back(rr);
}

bool QueuePair::recv_ready() const {
  return cfg_.srq != nullptr ? !cfg_.srq->empty() : !recv_queue_.empty();
}

RecvRequest QueuePair::consume_recv() {
  if (cfg_.srq != nullptr) return cfg_.srq->consume();
  const RecvRequest rq = recv_queue_.front();
  recv_queue_.pop_front();
  return rq;
}

sim::Duration QueuePair::post_cost(std::size_t n_wrs,
                                   std::size_t inline_bytes) const {
  const auto& p = ctx_.params();
  sim::Duration d = p.cpu_wqe_prep * n_wrs + p.cpu_mmio +
                    ctx_.machine().topo().mmio_penalty(
                        cfg_.core_socket,
                        ctx_.machine().port_socket(cfg_.port));
  if (inline_bytes > 0) d += p.memcpy_time(inline_bytes);
  return d;
}

sim::TaskT<void> QueuePair::post(WorkRequest wr) {
  const std::size_t inl = wr.inline_data ? wr.total_length() : 0;
  const sim::Time t0 = ctx_.engine().now();
  co_await sim::delay(ctx_.engine(), post_cost(1, inl));
  obs::Tracer& tr = ctx_.cluster().obs().tracer;
  if (tr.enabled())
    tr.span(obs::Stage::kPost, t0, ctx_.engine().now(), wr.wr_id, id_,
            ctx_.machine().id(), static_cast<std::uint8_t>(wr.opcode));
  post_send(std::move(wr));
}

sim::TaskT<Completion> QueuePair::execute(WorkRequest wr) {
  wr.signaled = true;
  if (wr.wr_id == 0) wr.wr_id = ctx_.next_wr_id();
  const std::uint64_t wid = wr.wr_id;
  co_await post(std::move(wr));
  co_return co_await wait(wid);
}

sim::TaskT<Completion> QueuePair::execute_batch(std::vector<WorkRequest> wrs) {
  RDMASEM_CHECK(!wrs.empty());
  std::size_t inl = 0;
  for (auto& wr : wrs) {
    if (wr.wr_id == 0) wr.wr_id = ctx_.next_wr_id();
    if (wr.inline_data) inl += wr.total_length();
  }
  wrs.back().signaled = true;
  const std::uint64_t wid = wrs.back().wr_id;
  const sim::Time t0 = ctx_.engine().now();
  co_await sim::delay(ctx_.engine(), post_cost(wrs.size(), inl));
  obs::Tracer& tr = ctx_.cluster().obs().tracer;
  if (tr.enabled())
    tr.span(obs::Stage::kPost, t0, ctx_.engine().now(), wid, id_,
            ctx_.machine().id(),
            static_cast<std::uint8_t>(wrs.back().opcode));
  post_send_batch(std::move(wrs));
  co_return co_await wait(wid);
}

QueuePair::Waiter* QueuePair::find_waiter(std::uint64_t wr_id) {
  for (auto& w : waiters_) {
    if (w.wr_id == wr_id) return &w;
  }
  return nullptr;
}

sim::TaskT<Completion> QueuePair::wait(std::uint64_t wr_id) {
  struct Awaiter {
    QueuePair& qp;
    std::uint64_t wr_id;
    bool await_ready() {
      const Waiter* w = qp.find_waiter(wr_id);
      return w != nullptr && w->done;
    }
    void await_suspend(std::coroutine_handle<> h) {
      Waiter* w = qp.find_waiter(wr_id);
      if (w == nullptr) {
        qp.waiters_.emplace_back();
        w = &qp.waiters_.back();
        w->wr_id = wr_id;
      }
      w->handle = h;
    }
    Completion await_resume() {
      Waiter* w = qp.find_waiter(wr_id);
      RDMASEM_CHECK(w != nullptr && w->done);
      Completion c = w->result;
      // Swap-pop erase: slot order carries no meaning, capacity is kept.
      *w = std::move(qp.waiters_.back());
      qp.waiters_.pop_back();
      return c;
    }
  };
  co_return co_await Awaiter{*this, wr_id};
}

void QueuePair::complete(const WorkRequest& wr, Status st, std::uint32_t bytes,
                         std::uint64_t atomic_old) {
  RDMASEM_CHECK(outstanding_ > 0);
  --outstanding_;
  ++ops_completed_;
  bytes_completed_ += bytes;
  // DC: the initiator context detaches as soon as the burst drains —
  // the last in-flight WR's completion evicts the QP context from
  // device SRAM, so DC metadata-cache pressure tracks active flows.
  // Safe and deterministic: complete() always runs on the owning
  // machine's lane, and invalidating an already-evicted (or
  // never-attached, e.g. flushed-WR) entry is a no-op.
  if (cfg_.transport == Transport::kDc && outstanding_ == 0)
    ctx_.machine().rnic().dc_detach(id_);
  if (st == Status::kWrFlushedError) ++flushed_wrs_;
  obs::Hub& hub = ctx_.cluster().obs();
  hub.wr_completed.inc();
  if (st != Status::kSuccess) hub.wr_failed.inc();
  if (st == Status::kWrFlushedError) hub.wr_flushed.inc();
  if (st == Status::kRetryExceeded) hub.retry_exhausted.inc();
  const sim::Time now = ctx_.engine().now();
  if (wr.posted_at != 0 && now >= wr.posted_at)
    hub.wr_latency_ns.add((now - wr.posted_at) / sim::kNanosecond);
  if (hub.tracer.enabled())
    hub.tracer.instant(obs::Stage::kCqe, now, wr.wr_id, id_,
                       ctx_.machine().id(),
                       static_cast<std::uint8_t>(wr.opcode), wr.trace_seq);
  Completion c;
  c.wr_id = wr.wr_id;
  c.status = st;
  c.opcode = wr.opcode;
  c.byte_len = bytes;
  c.qp_id = id_;
  c.completed_at = ctx_.engine().now();
  // Stale-compare audit: a failed atomic never fetched the remote word,
  // so its completion must not carry a plausible-looking value (the old
  // default 0 reads as "lock free" to CAS-retry loops that skip the ok()
  // check). Poison it instead.
  const bool is_atomic =
      wr.opcode == Opcode::kCompSwap || wr.opcode == Opcode::kFetchAdd;
  c.atomic_old =
      (is_atomic && st != Status::kSuccess) ? kPoisonedAtomicOld : atomic_old;

  if (Waiter* w = find_waiter(wr.wr_id); w != nullptr) {
    w->result = c;
    w->done = true;
    if (w->handle) ctx_.engine().resume_at(ctx_.engine().now(), w->handle);
    return;
  }
  // IBV rule: error completions surface even for unsignaled WRs.
  if ((wr.signaled || st != Status::kSuccess) && cfg_.cq) cfg_.cq->push(c);
}

// One transfer leg over the fabric. RC recovers from loss with timeout +
// retransmit, backing off exponentially (rc_retransmit doubling up to
// rc_retransmit_cap) until cfg_.retry_cnt attempts are spent
// (kInfiniteRetry never gives up). UC/UD get exactly one shot.
//
// Fabric::transit carries execution to the destination's lane, and the
// drop decision is drawn there (destination RNG + fault replica). A
// retransmit rides the sender's timeout back: hop(src, backoff), which
// lands at the exact virtual time the serial engine would retransmit at,
// on the sender's lane. Final failure hops to `home_machine` the same
// way — the backoff timeout is how the requester learns the leg is dead.
// All hop widths (backoff >= rc_retransmit = 8us, wire >= 200ns) clear
// the conservative-epoch lookahead by orders of magnitude.
sim::TaskT<bool> QueuePair::deliver(std::uint32_t src_machine,
                                    std::uint32_t sport,
                                    std::uint32_t dst_machine,
                                    std::uint32_t dport, std::size_t bytes,
                                    bool reliable,
                                    std::uint32_t home_machine) {
  auto& eng = ctx_.engine();
  const auto& P = ctx_.params();
  auto& fabric = ctx_.cluster().fabric();
  obs::Hub& hub = ctx_.cluster().obs();
  const std::uint32_t src_lane = src_machine + 1;
  const std::uint32_t home_lane = home_machine + 1;
  sim::Duration backoff = P.rc_retransmit;
  for (std::uint32_t attempt = 0;; ++attempt) {
    co_await fabric.transit(src_machine, sport, dst_machine, dport, bytes);
    if (!fabric.dropped(src_machine, sport, dst_machine, dport))
      co_return true;
    if (!reliable ||
        (cfg_.retry_cnt != kInfiniteRetry && attempt >= cfg_.retry_cnt)) {
      if (sim::current_lane() != home_lane)
        co_await sim::hop(eng, home_lane, backoff);
      co_return false;
    }
    retransmits_.fetch_add(1, std::memory_order_relaxed);
    hub.retransmits.inc();
    hub.backoff_ps.inc(backoff);
    co_await sim::hop(eng, src_lane, backoff);
    backoff = std::min(backoff * 2, P.rc_retransmit_cap);
  }
}

void QueuePair::gather_sges(Context& ctx, const Sge* sges, std::size_t n,
                            std::byte* dst) {
  std::size_t off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Sge& sge = sges[i];
    const MemoryRegion* mr = ctx.lookup(sge.lkey);
    std::memcpy(dst + off, mr->at(sge.addr), sge.length);
    off += sge.length;
  }
}

void QueuePair::scatter_sges(Context& ctx, const Sge* sges, std::size_t n,
                             const std::byte* src, std::size_t limit) {
  std::size_t off = 0;
  for (std::size_t i = 0; i < n && off < limit; ++i) {
    const Sge& sge = sges[i];
    MemoryRegion* mr = ctx.lookup(sge.lkey);
    const std::size_t len = std::min<std::size_t>(sge.length, limit - off);
    std::memcpy(mr->at(sge.addr), src + off, len);
    off += len;
  }
}

// The per-WR hardware pipeline. Stage structure (see DESIGN.md §5):
//
//   WQE fetch -> send EU (+metadata stalls) -> payload gather DMA ->
//   wire -> remote rx -> opcode-specific remote work -> ACK/response ->
//   completion
//
// Each `co_await resource.use(t)` both delays this WR and occupies the
// shared resource, so throughput ceilings and contention effects emerge
// from overlap rather than being scripted.
sim::Task QueuePair::run_wr(WorkRequest wr, bool bf) {
  auto& eng = ctx_.engine();
  const auto& P = ctx_.params();
  auto& lm = ctx_.machine();
  auto& lr = lm.rnic();
  auto& lport = lr.port(cfg_.port);
  if (wr.posted_at == 0) wr.posted_at = eng.now();

  // Host-side datapath knobs, snapshotted per WR (the struct is mutable
  // between runs; a WR must see one consistent view across lanes).
  // Toggling any knob changes no simulated time or byte — only how the
  // simulator itself stages payloads and suspends (docs/PERF.md).
  const DatapathTuning tune = datapath_tuning();

  // Lifecycle tracing: stamps read the clock and append to a buffer,
  // never schedule or delay anything, so `traced` on/off cannot change
  // the simulated timeline (obs zero-cost contract).
  obs::Hub& hub = ctx_.cluster().obs();
  obs::Tracer& tracer = hub.tracer;
  const bool traced = tracer.enabled();
  const std::uint32_t trace_pid = lm.id();
  const auto trace_op = static_cast<std::uint8_t>(wr.opcode);
  auto stamp = [&](obs::Stage st, sim::Time begin) {
    tracer.span(st, begin, eng.now(), wr.wr_id, id_, trace_pid, trace_op,
                wr.trace_seq);
  };
  // Critical-path attribution (Plane 1): every suspension between the
  // doorbell and the CQE records exactly one AttrSpan, so the records
  // form a contiguous partition of the WR's end-to-end window and the
  // wait/service split reconciles with the traced latency exactly
  // (obs::CriticalPath). Recording stops at the CQE — UC/UD complete
  // before the wire stage, and their remote half is outside the window.
  bool attr_on = traced;
  auto attr_use = [&](const sim::Resource& res, sim::Time t0,
                      const sim::Grant& g) {
    if (attr_on)
      tracer.attr(res.attr_id(), t0, t0 + g.wait, eng.now(), wr.wr_id, id_,
                  wr.trace_seq, trace_pid, trace_op);
  };
  auto attr_lat = [&](sim::Time t0) {
    if (attr_on)
      tracer.attr(obs::Tracer::kResLatency, t0, t0, eng.now(), wr.wr_id, id_,
                  wr.trace_seq, trace_pid, trace_op);
  };
  auto attr_wire = [&](sim::Time t0) {
    if (attr_on)
      tracer.attr(obs::Tracer::kResWire, t0, t0, eng.now(), wr.wr_id, id_,
                  wr.trace_seq, trace_pid, trace_op);
  };

  // Transport-level opcode checks (§II-A): WRITE needs RC/UC/DC; READ
  // and atomics need RC or DC; UD carries SEND only.
  const Transport tp = cfg_.transport;
  const bool op_ok =
      wr.opcode == Opcode::kSend ||
      (wr.opcode == Opcode::kWrite && tp != Transport::kUD) ||
      ((wr.opcode == Opcode::kRead || is_atomic(wr.opcode)) &&
       (tp == Transport::kRC || tp == Transport::kDc));
  if (!op_ok) {
    complete(wr, Status::kUnsupportedOpcode, 0);
    co_return;
  }

  QueuePair* peer = per_wr_target(tp) ? wr.ud_dest : peer_;
  auto& rm = peer->ctx_.machine();
  auto& rr = rm.rnic();
  auto& rport = rr.port(peer->cfg_.port);
  const hw::SocketId lps = lm.port_socket(cfg_.port);
  const hw::SocketId rps = rm.port_socket(peer->cfg_.port);

  const std::size_t total = wr.total_length();

  // ---- local validation --------------------------------------------------
  if (wr.sg_list.size() > P.rnic_max_sge) {
    complete(wr, Status::kLocalProtectionError, 0);
    co_return;
  }
  for (const auto& sge : wr.sg_list) {
    const MemoryRegion* mr = ctx_.lookup(sge.lkey);
    if (mr == nullptr || !mr->contains(sge.addr, sge.length)) {
      complete(wr, Status::kLocalProtectionError, 0);
      co_return;
    }
  }
  const bool inlined = wr.inline_data && total <= P.rnic_max_inline;
  const bool carries_payload =
      (wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kSend) && total > 0;

  // Host-memory access cost: streaming DMA for bulk, row-buffer model for
  // small payloads.
  auto mem_cost = [&P](cluster::Machine& m, hw::SocketId socket,
                       std::uint64_t a, std::size_t len,
                       hw::DramModel::Op op, bool same) {
    return len >= P.dma_stream_threshold
               ? m.dram(socket).stream(len, same)
               : m.dram(socket).access(a, len, op, same);
  };

  // ---- 1. WQE fetch (RNIC DMA-reads the descriptor ring) ------------------
  if (!bf && !inlined) {
    const sim::Time t0 = eng.now();
    co_await sim::delay(eng, P.pcie_dma_read_latency);
    if (traced) stamp(obs::Stage::kWqeFetch, t0);
    attr_lat(t0);
  }

  // ---- 2. send-side execution unit ----------------------------------------
  // DC pays the dynamic-connect attach on top of the context fetch when
  // the burst starts cold; a non-zero dc_touch stall IS an attach (hits
  // return 0). The responder side keeps a plain qp_touch: the model's DC
  // target is a single long-lived entry, like a real DCT.
  sim::Duration stall;
  if (tp == Transport::kDc) {
    stall = lr.dc_touch(id_);
    if (stall > 0) hub.dc_attaches.inc();
  } else {
    stall = lr.qp_touch(id_);
  }
  sim::Duration sge_extra = 0;
  for (std::size_t i = 0; i < wr.sg_list.size(); ++i) {
    const auto& sge = wr.sg_list[i];
    stall += lr.translate(sge.lkey, sge.addr, sge.length);
    if (i > 0) sge_extra += P.pcie_sge_fetch;
  }
  if (stall > 0) hub.mcache_stall_ps.inc(stall);
  const sim::Time t_eu = eng.now();
  const sim::Grant g_eu =
      co_await lport.eu.use(P.rnic_eu_write + stall + sge_extra);
  attr_use(lport.eu, t_eu, g_eu);
  if (traced) {
    stamp(obs::Stage::kExec, t_eu);
    // The translation-miss stall rides the tail of the EU occupancy:
    // render it as a nested child span so Perfetto shows the miss cost.
    if (stall > 0)
      tracer.span(obs::Stage::kTranslate, eng.now() - stall, eng.now(),
                  wr.wr_id, id_, trace_pid, trace_op, wr.trace_seq);
  }

  // ---- 3. payload gather from host memory over PCIe -----------------------
  if (carries_payload && !inlined) {
    const sim::Time t0 = eng.now();
    const sim::Grant g_dma = co_await lr.dma().use(P.pcie_time(total));
    attr_use(lr.dma(), t0, g_dma);
    if (tune.fused_costs && wr.sg_list.size() == 1) {
      // Single-SGE fast path: the channel service and the NUMA penalty
      // form a fixed chain with no interleaving point — one suspension.
      const MemoryRegion* mr = ctx_.lookup(wr.sg_list[0].lkey);
      const bool same = (lps == mr->socket);
      const sim::Duration m = mem_cost(lm, mr->socket, wr.sg_list[0].addr,
                                       wr.sg_list[0].length,
                                       hw::DramModel::Op::kRead, same);
      const sim::Time t_m = eng.now();
      const sim::Grant g_m =
          co_await lm.mem_channel(mr->socket)
              .use_then(m, lm.topo().dma_mem_penalty(lps, mr->socket));
      attr_use(lm.mem_channel(mr->socket), t_m, g_m);
    } else {
      sim::Duration numa_pen = 0;
      for (const auto& sge : wr.sg_list) {
        const MemoryRegion* mr = ctx_.lookup(sge.lkey);
        const bool same = (lps == mr->socket);
        const sim::Duration m = mem_cost(lm, mr->socket, sge.addr, sge.length,
                                         hw::DramModel::Op::kRead, same);
        const sim::Time t_m = eng.now();
        const sim::Grant g_m = co_await lm.mem_channel(mr->socket).use(m);
        attr_use(lm.mem_channel(mr->socket), t_m, g_m);
        numa_pen =
            std::max(numa_pen, lm.topo().dma_mem_penalty(lps, mr->socket));
      }
      if (numa_pen) {
        const sim::Time t_p = eng.now();
        co_await sim::delay(eng, numa_pen);
        attr_lat(t_p);
      }
    }
    if (traced) stamp(obs::Stage::kLocalDma, t0);
  }

  // ---- 4. wire -------------------------------------------------------------
  std::size_t wire_bytes =
      carries_payload ? total
                      : (is_atomic(wr.opcode) ? kAtomicRequestBytes
                                              : kReadRequestBytes);
  if (tp == Transport::kUD) wire_bytes += P.ud_grh_bytes;

  // Unreliable transports (UC/UD) complete locally as soon as the packet
  // leaves the NIC; delivery is not guaranteed (§II-A). RC and DC
  // retransmit lost packets after a timeout.
  const bool unreliable = tp == Transport::kUC || tp == Transport::kUD;
  if (unreliable) {
    complete(wr, Status::kSuccess, static_cast<std::uint32_t>(total));
    // The WR's window closed at the CQE; the wire + remote half below is
    // fire-and-forget and must not be attributed to it.
    attr_on = false;
  }

  // A concurrent WR may already have pushed the QP into ERROR (e.g. its
  // retries exhausted while this one sat in the pipeline): flush before
  // touching the wire or remote memory. Checked here because this is the
  // last point on the requester's lane — QP state must not be read from
  // the responder's side of the wire.
  if (!unreliable && state_ == QpState::kError) {
    complete(wr, Status::kWrFlushedError, 0);
    co_return;
  }

  // Stage the outbound payload in the coroutine frame: gathered from the
  // local MRs here on the requester's lane, copied out on the
  // destination's lane. The frame is the only state both lanes touch,
  // and only sequentially (before/after the wire hop). Single-SGE RC
  // payloads skip even the gather: the frame carries a borrowed view into
  // the source MR and the landing memcpy is the only copy. The app cannot
  // legally touch the buffer before the completion — but OTHER WRs can
  // land into an overlapping region of the source MR, and those scatters
  // run on the requester's lane while the borrowed view is read on the
  // responder's. On one shard those are sequential; across shards they
  // are host-concurrent within an epoch (virtual order is not host
  // order), a genuine data race. So the borrow is physical only when both
  // lanes share a shard; otherwise the bytes are gathered here as usual.
  // The obs counters stay keyed to the placement-independent ELIGIBILITY
  // predicate (and pool_hit() is a pure size predicate), so every digest
  // remains byte-identical at every shard count.
  // Loopback (same machine) keeps staging so the landing never memcpy's
  // between overlapping ranges.
  PayloadBuf payload;
  if (carries_payload) {
    const bool zc_eligible =
        tune.zero_copy && (tp == Transport::kRC || tp == Transport::kDc) &&
        wr.sg_list.size() == 1 && lm.id() != rm.id();
    if (zc_eligible) hub.zero_copy_wrs.inc();
    if (zc_eligible && eng.shard_of(static_cast<std::uint32_t>(lm.id()) + 1) ==
                           eng.shard_of(static_cast<std::uint32_t>(rm.id()) + 1)) {
      payload.borrow(ctx_.lookup(wr.sg_list[0].lkey)->at(wr.sg_list[0].addr));
    } else {
      gather_sges(ctx_, wr.sg_list.data(), wr.sg_list.size(),
                  payload.stage(total, tune.payload_pool));
      if (!zc_eligible)
        (payload.pool_hit() ? hub.payload_pool_hits : hub.payload_pool_misses)
            .inc();
    }
  }

  const sim::Time t_wire = eng.now();
  const bool delivered =
      co_await deliver(lm.id(), cfg_.port, rm.id(), peer->cfg_.port,
                       wire_bytes, !unreliable, /*home=*/lm.id());
  attr_wire(t_wire);
  if (traced) stamp(obs::Stage::kWire, t_wire);
  if (!delivered) {
    if (unreliable) co_return;  // dropped silently; data never lands
    fail_wr(wr, Status::kRetryExceeded);
    co_return;
  }

  // ---- 5. remote receive processing ---------------------------------------
  const sim::Time t_rx = eng.now();
  const sim::Grant g_rx = co_await rport.rx.use(P.rnic_rx_proc);
  attr_use(rport.rx, t_rx, g_rx);
  if (traced) stamp(obs::Stage::kRemoteRx, t_rx);
  sim::Duration rstall = rr.qp_touch(peer->id_);

  // Helper: send a header-only NAK back (RC) and finish with `st`;
  // unreliable transports just drop the faulty packet. Runs on the
  // responder's lane and lands home on the requester's.
  auto nak = [&](Status st) -> sim::TaskT<void> {
    if (unreliable) co_return;
    const sim::Time t0 = eng.now();
    const bool ok = co_await deliver(rm.id(), peer->cfg_.port, lm.id(),
                                     cfg_.port, kAckBytes, true,
                                     /*home=*/lm.id());
    attr_wire(t0);
    if (!ok) {
      fail_wr(wr, Status::kRetryExceeded);
      co_return;
    }
    complete(wr, st, 0);
  };

  switch (wr.opcode) {
    case Opcode::kWrite: {
      MemoryRegion* rmr = peer->ctx_.lookup(wr.rkey);
      if (rmr == nullptr || !rmr->contains(wr.remote_addr, total)) {
        co_await nak(Status::kRemoteAccessError);
        co_return;
      }
      rstall += rr.translate(wr.rkey, wr.remote_addr, total);
      if (rstall > 0) hub.mcache_stall_ps.inc(rstall);
      const sim::Time t_rem = eng.now();
      // Inbound writes are handled by the receive pipeline; translation
      // misses stall it (this is the Fig. 6 random-write penalty).
      if (rstall) {
        const sim::Grant g = co_await rport.rx.use(rstall);
        attr_use(rport.rx, t_rem, g);
      }
      if (total > 0) {
        const sim::Time t_d = eng.now();
        const sim::Grant g_d = co_await rr.dma().use(P.pcie_time(total));
        attr_use(rr.dma(), t_d, g_d);
        const bool same = (rps == rmr->socket);
        const sim::Duration m =
            mem_cost(rm, rmr->socket, wr.remote_addr, total,
                     hw::DramModel::Op::kWrite, same);
        const sim::Duration pen = rm.topo().dma_mem_penalty(rps, rmr->socket);
        const sim::Time t_m = eng.now();
        if (tune.fused_costs) {
          // Channel service + NUMA penalty + PCIe completion latency is a
          // fixed chain — nothing can semantically interleave, so it is
          // one suspension on the fast path.
          const sim::Grant g_m =
              co_await rm.mem_channel(rmr->socket)
                  .use_then(m, pen + P.pcie_dma_write_latency);
          attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
        } else {
          const sim::Grant g_m = co_await rm.mem_channel(rmr->socket).use(m);
          attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
          const sim::Time t_p = eng.now();
          if (pen) co_await sim::delay(eng, pen);
          co_await sim::delay(eng, P.pcie_dma_write_latency);
          attr_lat(t_p);
        }
        // The data actually moves: staged (or borrowed) payload lands in
        // the remote MR, here on its owner's lane.
        std::memcpy(rmr->at(wr.remote_addr), payload.data(), total);
      }
      if (traced) stamp(obs::Stage::kRemoteDram, t_rem);
      if (!unreliable) {
        const sim::Time t_ack = eng.now();
        co_await sim::delay(eng, P.net_ack_proc);
        attr_lat(t_ack);
        const sim::Time t_resp = eng.now();
        const bool acked =
            co_await deliver(rm.id(), peer->cfg_.port, lm.id(), cfg_.port,
                             kAckBytes, true, /*home=*/lm.id());
        attr_wire(t_resp);
        if (!acked) {
          // The data landed but the ACK never made it back: the requester
          // cannot distinguish this from a lost write (§ failure model).
          fail_wr(wr, Status::kRetryExceeded);
          co_return;
        }
        if (traced) stamp(obs::Stage::kResponse, t_resp);
        complete(wr, Status::kSuccess, static_cast<std::uint32_t>(total));
      }
      break;
    }

    case Opcode::kRead: {
      MemoryRegion* rmr = peer->ctx_.lookup(wr.rkey);
      if (rmr == nullptr || !rmr->contains(wr.remote_addr, total)) {
        co_await nak(Status::kRemoteAccessError);
        co_return;
      }
      rstall += rr.translate(wr.rkey, wr.remote_addr, total);
      if (rstall > 0) hub.mcache_stall_ps.inc(rstall);
      const sim::Time t_rem = eng.now();
      // The responder EU serves the read: DMA-read payload, packetize.
      const sim::Grant g_reu = co_await rport.eu.use(P.rnic_eu_read + rstall);
      attr_use(rport.eu, t_rem, g_reu);
      if (total > 0) {
        const sim::Time t_d = eng.now();
        const sim::Grant g_d = co_await rr.dma().use(P.pcie_time(total));
        attr_use(rr.dma(), t_d, g_d);
        const bool same = (rps == rmr->socket);
        const sim::Duration m =
            mem_cost(rm, rmr->socket, wr.remote_addr, total,
                     hw::DramModel::Op::kRead, same);
        const sim::Duration pen = rm.topo().dma_mem_penalty(rps, rmr->socket);
        const sim::Time t_m = eng.now();
        if (tune.fused_costs) {
          const sim::Grant g_m =
              co_await rm.mem_channel(rmr->socket)
                  .use_then(m, pen + P.pcie_dma_read_latency);
          attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
        } else {
          const sim::Grant g_m = co_await rm.mem_channel(rmr->socket).use(m);
          attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
          const sim::Time t_p = eng.now();
          if (pen) co_await sim::delay(eng, pen);
          co_await sim::delay(eng, P.pcie_dma_read_latency);
          attr_lat(t_p);
        }
        // Snapshot the remote bytes into the frame while still on their
        // owner's lane; the response leg carries them home. READs always
        // stage (never borrow): the source may mutate between here and
        // the landing, and a borrowed view would race across shards.
        std::memcpy(payload.stage(total, tune.payload_pool),
                    rmr->at(wr.remote_addr), total);
        (payload.pool_hit() ? hub.payload_pool_hits : hub.payload_pool_misses)
            .inc();
      }
      if (traced) stamp(obs::Stage::kRemoteDram, t_rem);
      // Response carries the payload back.
      const sim::Time t_resp = eng.now();
      const bool resp_ok =
          co_await deliver(rm.id(), peer->cfg_.port, lm.id(), cfg_.port,
                           total, true, /*home=*/lm.id());
      attr_wire(t_resp);
      if (!resp_ok) {
        fail_wr(wr, Status::kRetryExceeded);
        co_return;
      }
      const sim::Time t_lrx = eng.now();
      const sim::Grant g_lrx = co_await lport.rx.use(P.rnic_rx_proc);
      attr_use(lport.rx, t_lrx, g_lrx);
      if (traced) stamp(obs::Stage::kResponse, t_resp);
      if (total > 0) {
        const sim::Time t_land = eng.now();
        const sim::Grant g_ld = co_await lr.dma().use(P.pcie_time(total));
        attr_use(lr.dma(), t_land, g_ld);
        if (tune.fused_costs && wr.sg_list.size() == 1) {
          const MemoryRegion* mr = ctx_.lookup(wr.sg_list[0].lkey);
          const bool same = (lps == mr->socket);
          const sim::Duration m =
              mem_cost(lm, mr->socket, wr.sg_list[0].addr,
                       wr.sg_list[0].length, hw::DramModel::Op::kWrite, same);
          const sim::Time t_m = eng.now();
          const sim::Grant g_m =
              co_await lm.mem_channel(mr->socket)
                  .use_then(m, lm.topo().dma_mem_penalty(lps, mr->socket) +
                                   P.pcie_dma_write_latency);
          attr_use(lm.mem_channel(mr->socket), t_m, g_m);
        } else {
          sim::Duration numa_pen = 0;
          for (const auto& sge : wr.sg_list) {
            const MemoryRegion* mr = ctx_.lookup(sge.lkey);
            const bool same = (lps == mr->socket);
            const sim::Duration m = mem_cost(lm, mr->socket, sge.addr,
                                             sge.length,
                                             hw::DramModel::Op::kWrite, same);
            const sim::Time t_m = eng.now();
            const sim::Grant g_m = co_await lm.mem_channel(mr->socket).use(m);
            attr_use(lm.mem_channel(mr->socket), t_m, g_m);
            numa_pen =
                std::max(numa_pen, lm.topo().dma_mem_penalty(lps, mr->socket));
          }
          const sim::Time t_p = eng.now();
          if (tune.fused_costs) {
            // Two trailing pure delays; merge into one suspension.
            co_await sim::delay(eng, numa_pen + P.pcie_dma_write_latency);
          } else {
            if (numa_pen) co_await sim::delay(eng, numa_pen);
            co_await sim::delay(eng, P.pcie_dma_write_latency);
          }
          attr_lat(t_p);
        }
        scatter_sges(ctx_, wr.sg_list.data(), wr.sg_list.size(),
                     payload.data(), total);
        if (traced) stamp(obs::Stage::kLocalDma, t_land);
      }
      complete(wr, Status::kSuccess, static_cast<std::uint32_t>(total));
      break;
    }

    case Opcode::kCompSwap:
    case Opcode::kFetchAdd: {
      MemoryRegion* rmr = peer->ctx_.lookup(wr.rkey);
      if (rmr == nullptr || !rmr->contains(wr.remote_addr, 8)) {
        co_await nak(Status::kRemoteAccessError);
        co_return;
      }
      if (wr.remote_addr % 8 != 0 || wr.sg_list.empty() ||
          wr.sg_list[0].length < 8) {
        co_await nak(Status::kRemoteInvalidRequest);
        co_return;
      }
      rstall += rr.translate(wr.rkey, wr.remote_addr, 8);
      if (rstall > 0) hub.mcache_stall_ps.inc(rstall);
      const sim::Time t_rem = eng.now();
      // The atomic unit serializes all atomics on this port: locked
      // PCIe read-modify-write against host memory.
      const sim::Grant g_au =
          co_await rport.atomic_unit.use(P.rnic_atomic_unit + rstall);
      attr_use(rport.atomic_unit, t_rem, g_au);
      const bool same = (rps == rmr->socket);
      const sim::Duration m = rm.dram(rmr->socket).access(
          wr.remote_addr, 8, hw::DramModel::Op::kRead, same);
      const sim::Time t_m = eng.now();
      const sim::Grant g_m = co_await rm.mem_channel(rmr->socket).use(m);
      attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
      auto* slot = reinterpret_cast<std::uint64_t*>(rmr->at(wr.remote_addr));
      const std::uint64_t old = *slot;
      if (wr.opcode == Opcode::kCompSwap) {
        if (old == wr.compare) *slot = wr.swap_or_add;
      } else {
        *slot = old + wr.swap_or_add;
      }
      if (traced) stamp(obs::Stage::kRemoteDram, t_rem);
      // Response carries the original value (8 bytes).
      const sim::Time t_resp = eng.now();
      const bool resp_ok =
          co_await deliver(rm.id(), peer->cfg_.port, lm.id(), cfg_.port, 8,
                           true, /*home=*/lm.id());
      attr_wire(t_resp);
      if (!resp_ok) {
        fail_wr(wr, Status::kRetryExceeded);
        co_return;
      }
      const sim::Time t_lrx = eng.now();
      if (tune.fused_costs) {
        const sim::Grant g_lrx =
            co_await lport.rx.use_then(P.rnic_rx_proc,
                                       P.pcie_dma_write_latency);
        attr_use(lport.rx, t_lrx, g_lrx);
      } else {
        const sim::Grant g_lrx = co_await lport.rx.use(P.rnic_rx_proc);
        attr_use(lport.rx, t_lrx, g_lrx);
        const sim::Time t_p = eng.now();
        co_await sim::delay(eng, P.pcie_dma_write_latency);
        attr_lat(t_p);
      }
      if (traced) stamp(obs::Stage::kResponse, t_resp);
      MemoryRegion* lmr = ctx_.lookup(wr.sg_list[0].lkey);
      std::memcpy(lmr->at(wr.sg_list[0].addr), &old, 8);
      complete(wr, Status::kSuccess, 8, old);
      break;
    }

    case Opcode::kSend: {
      // A receiver backed by an SRQ drains the shared pool; otherwise
      // its private receive queue (recv_ready/consume_recv indirection).
      const bool srq_backed = peer->cfg_.srq != nullptr;
      if (!peer->recv_ready()) {
        // Receiver not ready. UC/UD: the datagram evaporates. RC/DC:
        // each RNR NAK costs a wire round plus an rnr_timer pause before
        // the retransmit; cfg_.rnr_retry bounds the attempts
        // (kInfiniteRetry waits until a buffer shows up; 0 fails fast).
        if (unreliable) co_return;
        for (std::uint32_t rnr = 0; !peer->recv_ready(); ++rnr) {
          if (srq_backed) hub.srq_rnr.inc();
          if (cfg_.rnr_retry != kInfiniteRetry && rnr >= cfg_.rnr_retry) {
            co_await nak(Status::kRnrRetryExceeded);
            co_return;
          }
          ctx_.cluster().obs().rnr_naks.inc();
          const sim::Time t_nak = eng.now();
          const bool nak_ok =
              co_await deliver(rm.id(), peer->cfg_.port, lm.id(), cfg_.port,
                               kAckBytes, true, /*home=*/lm.id());
          attr_wire(t_nak);
          if (!nak_ok) {
            fail_wr(wr, Status::kRetryExceeded);
            co_return;
          }
          // The RNR NAK landed us back home; pause and re-send from here.
          const sim::Time t_timer = eng.now();
          co_await sim::delay(eng, P.rnr_timer);
          attr_lat(t_timer);
          const sim::Time t_rs = eng.now();
          const bool resend_ok =
              co_await deliver(lm.id(), cfg_.port, rm.id(), peer->cfg_.port,
                               wire_bytes, true, /*home=*/lm.id());
          attr_wire(t_rs);
          if (!resend_ok) {
            fail_wr(wr, Status::kRetryExceeded);
            co_return;
          }
          const sim::Time t_rrx = eng.now();
          const sim::Grant g_rrx = co_await rport.rx.use(P.rnic_rx_proc);
          attr_use(rport.rx, t_rrx, g_rrx);
        }
      }
      const RecvRequest rq = peer->consume_recv();
      MemoryRegion* rmr = peer->ctx_.lookup(rq.sge.lkey);
      if (rmr == nullptr || rq.sge.length < total ||
          !rmr->contains(rq.sge.addr, total)) {
        co_await nak(Status::kRemoteInvalidRequest);
        co_return;
      }
      rstall += rr.translate(rq.sge.lkey, rq.sge.addr, total);
      if (rstall > 0) hub.mcache_stall_ps.inc(rstall);
      const sim::Time t_rem = eng.now();
      // Channel semantics: RQ WQE consumption + CQE for the receiver.
      const sim::Grant g_reu =
          co_await rport.eu.use(P.rnic_recv_extra + rstall);
      attr_use(rport.eu, t_rem, g_reu);
      if (total > 0) {
        const sim::Time t_d = eng.now();
        const sim::Grant g_d = co_await rr.dma().use(P.pcie_time(total));
        attr_use(rr.dma(), t_d, g_d);
        const bool same = (rps == rmr->socket);
        const sim::Duration m = mem_cost(rm, rmr->socket, rq.sge.addr, total,
                                         hw::DramModel::Op::kWrite, same);
        const sim::Time t_m = eng.now();
        if (tune.fused_costs) {
          const sim::Grant g_m =
              co_await rm.mem_channel(rmr->socket)
                  .use_then(m, P.pcie_dma_write_latency);
          attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
        } else {
          const sim::Grant g_m = co_await rm.mem_channel(rmr->socket).use(m);
          attr_use(rm.mem_channel(rmr->socket), t_m, g_m);
          const sim::Time t_p = eng.now();
          co_await sim::delay(eng, P.pcie_dma_write_latency);
          attr_lat(t_p);
        }
        // The RECV consume is the same scatter primitive as a READ
        // landing: one SGE, capped at the arriving message size.
        scatter_sges(peer->ctx_, &rq.sge, 1, payload.data(), total);
      }
      if (traced) stamp(obs::Stage::kRemoteDram, t_rem);
      // Receiver-side completion.
      if (peer->cfg_.cq) {
        Completion rc;
        rc.wr_id = rq.wr_id;
        rc.status = Status::kSuccess;
        rc.opcode = Opcode::kRecv;
        rc.byte_len = static_cast<std::uint32_t>(total);
        rc.qp_id = peer->id_;
        rc.completed_at = eng.now();
        peer->cfg_.cq->push(rc);
      }
      if (!unreliable) {
        const sim::Time t_ack = eng.now();
        co_await sim::delay(eng, P.net_ack_proc);
        attr_lat(t_ack);
        const sim::Time t_resp = eng.now();
        const bool acked =
            co_await deliver(rm.id(), peer->cfg_.port, lm.id(), cfg_.port,
                             kAckBytes, true, /*home=*/lm.id());
        attr_wire(t_resp);
        if (!acked) {
          fail_wr(wr, Status::kRetryExceeded);
          co_return;
        }
        if (traced) stamp(obs::Stage::kResponse, t_resp);
        complete(wr, Status::kSuccess, static_cast<std::uint32_t>(total));
      }
      break;
    }

    case Opcode::kRecv:
      complete(wr, Status::kRemoteInvalidRequest, 0);
      break;
  }
}

}  // namespace rdmasem::verbs
