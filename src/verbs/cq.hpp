#pragma once

#include <optional>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "verbs/types.hpp"

namespace rdmasem::verbs {

// CompletionQueue — hardware posts Completions, simulated threads consume
// them. Several QPs may share one CQ (as in ibverbs).
class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : ch_(engine) {}

  // Hardware side.
  void push(const Completion& c) { ch_.push(c); }

  // Software side: suspend until the next CQE.
  sim::TaskT<Completion> next() { co_return co_await ch_.pop(); }

  // Non-blocking poll (ibv_poll_cq-style).
  std::optional<Completion> poll() { return ch_.try_pop(); }

  std::size_t pending() const { return ch_.size(); }

 private:
  sim::Channel<Completion> ch_;
};

}  // namespace rdmasem::verbs
