#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>

#include "util/assert.hpp"

namespace rdmasem::verbs {

// Buffer — aligned host memory suitable for registration as a memory
// region (the paper allocates RDMA-enabled memory with posix_memalign).
// Alignment matters for reproducibility: the translation cache keys on
// real page numbers and the DRAM model on real row numbers, so buffers
// default to DRAM-row (8 KB) alignment — a page multiple — to make runs
// independent of ASLR.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size, std::size_t alignment = 8192)
      : size_(size) {
    if (size == 0) return;
    // Round the allocation size up to the alignment (aligned_alloc
    // requirement).
    const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
    data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, rounded));
    RDMASEM_CHECK_MSG(data_ != nullptr, "buffer allocation failed");
    std::memset(data_, 0, rounded);
  }
  Buffer(Buffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer() { release(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::uint64_t addr() const { return reinterpret_cast<std::uint64_t>(data_); }
  std::span<std::byte> span() { return {data_, size_}; }
  std::span<const std::byte> span() const { return {data_, size_}; }

  template <typename T>
  T* as(std::size_t byte_offset = 0) {
    RDMASEM_CHECK(byte_offset + sizeof(T) <= size_);
    return reinterpret_cast<T*>(data_ + byte_offset);
  }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
  }
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rdmasem::verbs
