#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>

#include "util/assert.hpp"

namespace rdmasem::verbs {

// Base of the simulated RDMA address space (see Buffer::addr). Sits at
// 1<<46, far from the host heap/mmap regions, so raw-pointer MR
// registrations can never alias a simulated address.
inline constexpr std::uint64_t kSimVaBase = 1ull << 46;

// Buffer — aligned host memory suitable for registration as a memory
// region (the paper allocates RDMA-enabled memory with posix_memalign).
//
// The address handed to the RDMA layer (addr()) is NOT the host pointer:
// it comes from a deterministic, monotonically-growing simulated address
// space. The translation cache keys on page numbers and the DRAM model on
// row numbers, so address identity is model-visible state — deriving it
// from the host heap would leak the allocator's reuse pattern (and ASLR)
// into simulation results. Simulated addresses are never recycled, every
// buffer is row (8 KB) aligned, and consecutive buffers are separated by
// a guard row, so distinct buffers never share a page, row or cache line.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size, std::size_t alignment = 8192)
      : size_(size) {
    if (size == 0) return;
    // Round the allocation size up to the alignment (aligned_alloc
    // requirement).
    const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
    data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, rounded));
    RDMASEM_CHECK_MSG(data_ != nullptr, "buffer allocation failed");
    std::memset(data_, 0, rounded);
    sim_addr_ = take_sim_va(rounded, alignment);
  }
  Buffer(Buffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        sim_addr_(std::exchange(o.sim_addr_, 0)) {}
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      sim_addr_ = std::exchange(o.sim_addr_, 0);
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer() { release(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::uint64_t addr() const { return sim_addr_; }
  std::span<std::byte> span() { return {data_, size_}; }
  std::span<const std::byte> span() const { return {data_, size_}; }

  template <typename T>
  T* as(std::size_t byte_offset = 0) {
    RDMASEM_CHECK(byte_offset + sizeof(T) <= size_);
    return reinterpret_cast<T*>(data_ + byte_offset);
  }

 private:
  // Process-wide bump allocator for the simulated address space. Addresses
  // depend only on the sequence of Buffer constructions, which the
  // single-threaded deterministic simulation fully determines.
  static std::uint64_t take_sim_va(std::size_t rounded,
                                   std::size_t alignment) {
    static std::uint64_t cursor = kSimVaBase;
    if (alignment < 8192) alignment = 8192;
    cursor = (cursor + alignment - 1) / alignment * alignment;
    const std::uint64_t va = cursor;
    cursor += rounded + 8192;  // guard row between buffers
    return va;
  }

  void release() {
    std::free(data_);
    data_ = nullptr;
  }
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t sim_addr_ = 0;
};

}  // namespace rdmasem::verbs
