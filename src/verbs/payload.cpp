#include "verbs/payload.hpp"

#include <new>

#include "hw/params.hpp"
#include "util/env.hpp"

// Pass staging buffers straight through to the global allocator under
// ASan so the sanitizer tracks every buffer lifetime (poisoning would be
// defeated by recycling). Mirrors FramePool.
#if defined(__SANITIZE_ADDRESS__)
#define RDMASEM_PAYLOAD_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RDMASEM_PAYLOAD_POOL_PASSTHROUGH 1
#endif
#endif
#ifndef RDMASEM_PAYLOAD_POOL_PASSTHROUGH
#define RDMASEM_PAYLOAD_POOL_PASSTHROUGH 0
#endif

namespace rdmasem::verbs {

// Inline-eligible payloads (<= rnic_max_inline) must also stage without
// touching the allocator, so the in-frame arm tracks the NIC default.
static_assert(PayloadBuf::kInlineBytes == hw::kMaxInlineDefault,
              "PayloadBuf inline arm must match the NIC inline ceiling");

DatapathTuning& datapath_tuning() {
  static DatapathTuning t = [] {
    DatapathTuning d;
    if (util::env_bool("RDMASEM_DATAPATH_LEGACY", false))
      d = DatapathTuning{false, false, false};
    return d;
  }();
  return t;
}

namespace {

struct FreeNode {
  FreeNode* next;
};

struct Arena {
  FreeNode* lists[PayloadPool::kClasses] = {};
  PayloadPool::Stats stats;

  ~Arena() { release_all(); }

  void release_all() noexcept {
    for (auto*& head : lists) {
      while (head != nullptr) {
        FreeNode* n = head;
        head = n->next;
        ::operator delete(static_cast<void*>(n));
      }
    }
    stats.cached = 0;
  }
};

Arena& arena() {
  thread_local Arena a;
  return a;
}

// Size class for `bytes` (bytes > 0), or >= kClasses when beyond the
// pooled range. Class c holds blocks of (c + 1) * kGranule bytes.
std::size_t class_of(std::size_t bytes) {
  return (bytes - 1) / PayloadPool::kGranule;
}

}  // namespace

std::byte* PayloadPool::acquire(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
#if RDMASEM_PAYLOAD_POOL_PASSTHROUGH
  return static_cast<std::byte*>(::operator new(bytes));
#else
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  if (cls >= kClasses) {
    ++a.stats.oversize;
    return static_cast<std::byte*>(::operator new(bytes));
  }
  if (FreeNode* n = a.lists[cls]; n != nullptr) {
    a.lists[cls] = n->next;
    ++a.stats.reused;
    --a.stats.cached;
    return static_cast<std::byte*>(static_cast<void*>(n));
  }
  ++a.stats.fresh;
  return static_cast<std::byte*>(::operator new((cls + 1) * kGranule));
#endif
}

void PayloadPool::release(std::byte* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
#if RDMASEM_PAYLOAD_POOL_PASSTHROUGH
  ::operator delete(p);
#else
  Arena& a = arena();
  const std::size_t cls = class_of(bytes);
  if (cls >= kClasses) {
    ::operator delete(p);
    return;
  }
  auto* n = static_cast<FreeNode*>(static_cast<void*>(p));
  n->next = a.lists[cls];
  a.lists[cls] = n;
  ++a.stats.cached;
#endif
}

PayloadPool::Stats PayloadPool::stats() { return arena().stats; }

void PayloadPool::trim() noexcept { arena().release_all(); }

std::byte* PayloadBuf::stage(std::size_t n, bool pool) {
  reset();
  bytes_ = n;
  if (n <= kInlineBytes) {
    route_ = Route::kInline;
    buf_ = inline_;
  } else if (pool && class_of(n) < PayloadPool::kClasses) {
    route_ = Route::kPooled;
    buf_ = PayloadPool::acquire(n);
  } else {
    route_ = Route::kHeap;
    buf_ = static_cast<std::byte*>(::operator new(n));
  }
  return buf_;
}

void PayloadBuf::reset() noexcept {
  switch (route_) {
    case Route::kPooled:
      PayloadPool::release(buf_, bytes_);
      break;
    case Route::kHeap:
      ::operator delete(static_cast<void*>(buf_));
      break;
    default:
      break;
  }
  view_ = nullptr;
  buf_ = nullptr;
  bytes_ = 0;
  route_ = Route::kNone;
}

}  // namespace rdmasem::verbs
