#include "verbs/srq.hpp"

#include "obs/hub.hpp"
#include "util/assert.hpp"
#include "verbs/context.hpp"

namespace rdmasem::verbs {

SharedReceiveQueue::SharedReceiveQueue(Context& ctx, std::uint32_t id)
    : ctx_(ctx), id_(id) {}

void SharedReceiveQueue::post(const RecvRequest& rr) {
  q_.push_back(rr);
  ++posted_;
  ctx_.cluster().obs().srq_posted.inc();
}

RecvRequest SharedReceiveQueue::consume() {
  RDMASEM_CHECK_MSG(!q_.empty(), "consume from empty SRQ");
  const RecvRequest rr = q_.front();
  q_.pop_front();
  ++consumed_;
  ctx_.cluster().obs().srq_consumed.inc();
  return rr;
}

}  // namespace rdmasem::verbs
