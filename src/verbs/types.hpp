#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/small_vec.hpp"

namespace rdmasem::verbs {

class QueuePair;

// Memory-semantic (one-sided) and channel-semantic (two-sided) verbs.
// The paper's focus is the one-sided set; SEND/RECV exists for the
// RPC baselines it compares against.
enum class Opcode : std::uint8_t {
  kWrite,      // RDMA Write   (one-sided)
  kRead,       // RDMA Read    (one-sided)
  kCompSwap,   // RDMA Atomic: compare-and-swap (one-sided, 8 bytes)
  kFetchAdd,   // RDMA Atomic: fetch-and-add    (one-sided, 8 bytes)
  kSend,       // channel semantics
  kRecv,       // receive completion opcode
};

enum class Status : std::uint8_t {
  kSuccess = 0,
  kLocalProtectionError,   // bad lkey / SGE out of MR bounds
  kRemoteAccessError,      // bad rkey / remote range out of MR bounds
  kRemoteInvalidRequest,   // malformed (e.g. atomic not 8B-aligned)
  kRnrRetryExceeded,       // SEND retried past rnr_retry with no RECV posted
  kUnsupportedOpcode,      // opcode not allowed on this transport (§II-A)
  kRetryExceeded,          // transport retries exhausted (loss / dead peer);
                           // the QP transitions to ERROR
  kWrFlushedError,         // WR flushed because the QP is in ERROR
};

// IBV-style queue-pair state machine (docs/FAULTS.md). The simulator
// collapses INIT/RTR into the connect step: create_qp -> RESET (UD: RTS),
// Context::connect -> RTS, transport retry exhaustion -> ERROR. ERROR
// flushes the send and receive queues with kWrFlushedError; reset()
// returns the QP to RESET for reconnection.
enum class QpState : std::uint8_t {
  kReset = 0,
  kRts,
  kError,
};

const char* to_string(QpState s);

// IBV sentinel: a retry budget of 7 means "retry forever" (the value the
// hardware reserves for infinite retry). The default preserves the
// pre-fault simulator: RC never gives up on a lossy-but-alive fabric.
inline constexpr std::uint32_t kInfiniteRetry = 7;

// Completion::atomic_old on a FAILED atomic WR (flushed, retry-exhausted,
// NAKed): the remote word was never fetched, so instead of leaving the old
// default 0 — a value CAS-retry loops routinely treat as "lock free" /
// "list empty" — failed atomic completions carry this poison. Any loop
// that consumes atomic_old without checking Completion::ok() first now
// compares against a value no live protocol word ever holds and spins
// visibly instead of silently acquiring (docs/SYNC.md, stale-compare
// audit).
inline constexpr std::uint64_t kPoisonedAtomicOld = ~0ull;

// Transport types (§II-A). All support channel semantics; WRITE needs
// RC or UC; READ and atomics need RC or DC. UC/UD complete locally once
// the packet leaves the NIC — delivery is not guaranteed (loss
// injectable). DC (dynamically connected) is reliable and routes per-WR
// like UD, but its initiator context is attached to device SRAM only
// while the QP has WRs in flight and detached when the burst drains, so
// RNIC metadata-cache pressure follows ACTIVE flows rather than
// established connections (docs/SERVICE.md).
enum class Transport : std::uint8_t {
  kRC = 0,  // reliable connection
  kUC,      // unreliable connection
  kUD,      // unreliable datagram (SEND/RECV only, one QP to many peers)
  kDc,      // dynamically connected: reliable, per-WR target, attach/detach
};

const char* to_string(Transport t);

const char* to_string(Opcode op);
const char* to_string(Status s);

// Scatter/gather element: a view of registered local memory.
struct Sge {
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

// Work request, deliberately shaped like ibv_send_wr.
struct WorkRequest {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  // Local gather (WRITE/SEND) or scatter target (READ); result buffer
  // (atomics). Inline storage for 4 SGEs: posting the common WR shapes
  // never allocates (longer lists spill to the heap like a vector).
  util::SmallVec<Sge, 4> sg_list;
  std::uint64_t remote_addr = 0;  // one-sided target
  std::uint32_t rkey = 0;
  std::uint64_t compare = 0;      // kCompSwap: expected value
  std::uint64_t swap_or_add = 0;  // kCompSwap: new value; kFetchAdd: delta
  bool signaled = true;           // generate a CQE on completion
  bool inline_data = false;       // payload pushed with the MMIO (<= max)
  // UD/DC only: destination of this datagram (the "address handle" /
  // DC target); UD and DC QPs have no fixed peer. Ignored on RC/UC.
  class QueuePair* ud_dest = nullptr;
  // Stamped by the simulator when the WR becomes visible to the RNIC;
  // drives post-to-CQE latency attribution (obs). Callers leave it 0.
  sim::Time posted_at = 0;
  // Post-order sequence on the posting QP, assigned by post_send. Gives
  // the tracer a per-WR identity that stays unique when callers leave
  // wr_id 0 on fire-and-forget WRs (wr_id is app-owned and need not be
  // unique). Callers leave it 0.
  std::uint64_t trace_seq = 0;

  std::size_t total_length() const {
    std::size_t n = 0;
    for (const auto& s : sg_list) n += s.length;
    return n;
  }
};

// Receive work request (channel semantics).
struct RecvRequest {
  std::uint64_t wr_id = 0;
  Sge sge;
};

// Completion queue entry, shaped like ibv_wc.
struct Completion {
  std::uint64_t wr_id = 0;
  Status status = Status::kSuccess;
  Opcode opcode = Opcode::kWrite;
  std::uint32_t byte_len = 0;
  std::uint64_t qp_id = 0;
  sim::Time completed_at = 0;
  // For atomics: the value read from remote memory before the operation
  // (also DMA-written into sg_list[0]). On a failed atomic completion this
  // is kPoisonedAtomicOld, never a stale or default value — check ok()
  // before consuming it.
  std::uint64_t atomic_old = 0;

  bool ok() const { return status == Status::kSuccess; }
};

}  // namespace rdmasem::verbs
