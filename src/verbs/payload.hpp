#pragma once

#include <cstddef>
#include <cstdint>

namespace rdmasem::verbs {

// Datapath tuning knobs. All three are pure host-side optimisations of the
// simulator's own datapath: toggling them MUST NOT change any simulated
// timestamp, statistic or payload byte (the determinism suite flips each
// one and compares runs). They exist so benchmarks can measure the fast
// path against the legacy path in-process, and so a misbehaving
// optimisation can be ruled out in the field without a rebuild
// (RDMASEM_DATAPATH_LEGACY=1).
struct DatapathTuning {
  // Single-SGE WRITE/SEND payloads ride as a borrowed pointer into the
  // source MemoryRegion instead of being copied into the staging buffer;
  // the only memcpy is the landing into the destination MR.
  bool zero_copy = true;
  // Staged payloads (multi-SGE, READ snapshots, loopback) come from the
  // size-classed PayloadPool instead of a per-WR heap allocation.
  bool payload_pool = true;
  // Fixed-latency chains with no semantic interleaving point between them
  // (DMA service + NUMA penalty + PCIe completion latency) collapse into
  // one suspension. Timestamps are identical; only the suspension count
  // drops.
  bool fused_costs = true;
};

// Process-wide knobs, initialised from RDMASEM_DATAPATH_LEGACY (all three
// off when set). Mutate only while no simulation is running.
DatapathTuning& datapath_tuning();

// PayloadPool — size-classed free lists for WR payload staging buffers,
// the FramePool pattern applied to data bytes. The per-WR pipeline stages
// at most one payload per work request; payload sizes repeat heavily
// (workloads sweep a few fixed transfer sizes), so a recycled buffer is
// almost always a perfect fit and the steady-state datapath performs no
// heap allocations. Thread-local for the same reason as FramePool: one
// engine per thread, no locks, no cross-engine mixing. A buffer acquired
// on one lane's thread may be released on another (a READ snapshot is
// staged on the responder's lane and freed on the requester's); that is
// safe — the block just retires into the releasing thread's free list.
//
// Under ASan the pool degrades to plain new/delete so the sanitizer keeps
// seeing every staging-buffer lifetime.
class PayloadPool {
 public:
  static constexpr std::size_t kGranule = 256;  // size-class width, bytes
  static constexpr std::size_t kClasses = 256;  // pooled up to 64 KB

  static std::byte* acquire(std::size_t bytes);
  static void release(std::byte* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t reused = 0;    // acquisitions served from a free list
    std::uint64_t fresh = 0;     // pool-classed acquisitions that hit new
    std::uint64_t oversize = 0;  // beyond kClasses, passed through
    std::uint64_t cached = 0;    // buffers currently parked in free lists
  };
  static Stats stats();

  // Releases every cached buffer back to the allocator (tests, memory
  // pressure). Outstanding buffers are unaffected.
  static void trim() noexcept;
};

// PayloadBuf — the staging slot in a WR pipeline's coroutine frame. One
// per work request; holds the payload between the gather on the
// requester's lane and the landing on the responder's (the frame is the
// only state both lanes touch, strictly before/after the wire hop). Three
// storage routes, cheapest first:
//
//   * borrowed  — no bytes move until landing: a view into the source MR
//                 (zero-copy single-SGE WRITE/SEND);
//   * inline    — payloads up to kInlineBytes live in the frame itself
//                 (mirrors the RNIC's max_inline arm);
//   * staged    — PayloadPool buffer, or plain heap when the pool is off
//                 or the payload exceeds the pooled range.
//
// Staging is a simulation artifact: it models no hardware buffer and has
// zero timing cost (docs/MODEL.md).
class PayloadBuf {
 public:
  static constexpr std::size_t kInlineBytes = 256;  // == rnic_max_inline

  enum class Route : std::uint8_t {
    kNone = 0,
    kBorrowed,
    kInline,
    kPooled,
    kHeap,
  };

  PayloadBuf() = default;
  ~PayloadBuf() { reset(); }
  PayloadBuf(const PayloadBuf&) = delete;
  PayloadBuf& operator=(const PayloadBuf&) = delete;

  // Adopts a read-only view; the caller guarantees the bytes outlive the
  // WR (MemoryRegions outlive every WR posted against them).
  void borrow(const std::byte* src) {
    reset();
    view_ = src;
    route_ = Route::kBorrowed;
  }

  // Provisions `n` writable bytes (previous contents discarded) and
  // returns the staging cursor. `pool` routes pool-classed sizes through
  // PayloadPool; otherwise (and for oversize payloads) plain heap.
  std::byte* stage(std::size_t n, bool pool);

  const std::byte* data() const {
    return route_ == Route::kBorrowed ? view_ : buf_;
  }
  Route route() const { return route_; }
  // Whether this staging route is pool-accelerated (inline arm or pooled
  // size class) — a pure predicate of (size, pool flag), deterministic
  // across shard placements, which is what the obs counters require.
  bool pool_hit() const { return route_ == Route::kInline || route_ == Route::kPooled; }

  void reset() noexcept;

 private:
  const std::byte* view_ = nullptr;
  std::byte* buf_ = nullptr;
  std::size_t bytes_ = 0;  // staged size (release needs it for the class)
  Route route_ = Route::kNone;
  alignas(8) std::byte inline_[kInlineBytes];
};

}  // namespace rdmasem::verbs
