// Cross-module integration tests: several subsystems sharing one cluster,
// fault injection through the whole app stack, read-side batchers, and
// the stats snapshot.

#include <gtest/gtest.h>

#include <cstring>

#include "apps/dlog/dlog.hpp"
#include "apps/hashtable/hashtable.hpp"
#include "apps/shuffle/shuffle.hpp"
#include "cluster/stats.hpp"
#include "remem/batch.hpp"
#include "testbed.hpp"
#include "wl/zipf.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace remem = rdmasem::remem;
namespace ht = rdmasem::apps::hashtable;
namespace dl = rdmasem::apps::dlog;
namespace sh = rdmasem::apps::shuffle;
using rdmasem::test::Testbed;
using rdmasem::test::make_write;

namespace {
std::vector<rdmasem::verbs::Context*> ctx_ptrs(Testbed& tb) {
  std::vector<rdmasem::verbs::Context*> out;
  for (auto& c : tb.ctx) out.push_back(c.get());
  return out;
}
}  // namespace

TEST(Integration, HashtableAndLogShareTheCluster) {
  // A KV service and a transaction log run concurrently on one fabric;
  // both must stay correct while contending for the same NICs.
  Testbed tb;
  ht::Config hcfg;
  hcfg.num_keys = 1 << 10;
  hcfg.numa_aware = true;
  hcfg.consolidate = true;
  ht::DisaggHashTable table(*tb.ctx[0], hcfg);
  auto fe = table.add_front_end(*tb.ctx[1], 1);

  dl::Config lcfg;
  lcfg.engines = 4;
  lcfg.records_per_engine = 256;
  lcfg.log_machine = 0;
  dl::DistributedLog log(ctx_ptrs(tb), lcfg);

  // Hashtable traffic as a detached task; the log run() drives the engine.
  bool kv_ok = false;
  tb.eng.spawn([](ht::FrontEnd& f, const ht::Config& c,
                  bool& ok) -> sim::Task {
    rdmasem::wl::ZipfGenerator zipf(c.num_keys, 0.99, 9);
    std::vector<std::byte> val(c.value_size);
    std::memcpy(val.data(), "integration", 11);
    for (int i = 0; i < 300; ++i) co_await f.put(zipf.next(), val);
    co_await f.put(77, val);
    co_await f.drain();
    const auto got = co_await f.get(77);
    ok = got.size() == c.value_size &&
         std::memcmp(got.data(), "integration", 11) == 0;
  }(*fe, hcfg, kv_ok));

  const auto r = log.run();  // runs the engine to idle
  EXPECT_TRUE(kv_ok);
  EXPECT_TRUE(log.verify_dense_and_intact());
  EXPECT_EQ(r.records, 1024u);

  // The stats snapshot sees the combined traffic.
  auto stats = rdmasem::cluster::StatsReport::capture(tb.cluster);
  EXPECT_GT(stats.fabric_messages, 1000u);
  ASSERT_NE(stats.hottest_port(), nullptr);
  EXPECT_GT(stats.hottest_port()->eu_requests, 100u);
  EXPECT_FALSE(stats.render().empty());
}

TEST(Integration, ShuffleSurvivesLossyRcFabric) {
  // RC retransmission makes the shuffle exactly correct even on a fabric
  // dropping 2% of packets — only slower.
  rdmasem::hw::ModelParams lossy;
  lossy.net_loss_prob = 0.02;
  Testbed tb(lossy);
  sh::Config cfg;
  cfg.executors = 4;
  cfg.entries_per_executor = 800;
  cfg.batch = sh::BatchMode::kSgl;
  cfg.batch_size = 8;
  sh::Shuffle s(ctx_ptrs(tb), cfg);
  const auto r = s.run();
  EXPECT_EQ(s.received_checksum(), s.sent_checksum());

  Testbed tb2;  // lossless reference
  sh::Shuffle s2(ctx_ptrs(tb2), cfg);
  const auto r2 = s2.run();
  EXPECT_GT(sim::to_us(r.elapsed), sim::to_us(r2.elapsed));  // retransmits cost
}

TEST(Integration, DlogSurvivesLossyRcFabric) {
  rdmasem::hw::ModelParams lossy;
  lossy.net_loss_prob = 0.05;
  Testbed tb(lossy);
  dl::Config cfg;
  cfg.engines = 7;
  cfg.records_per_engine = 128;
  cfg.batch_size = 8;
  dl::DistributedLog log(ctx_ptrs(tb), cfg);
  (void)log.run();
  EXPECT_TRUE(log.verify_dense_and_intact());
}

// ---------------------------------------------------------------------------
// Read-side batchers

namespace {

struct ReadRig {
  Testbed tb;
  v::Buffer local;
  v::Buffer remote;
  v::MemoryRegion* lmr;
  v::MemoryRegion* rmr;
  Testbed::Conn conn;

  ReadRig() : local(1 << 16), remote(1 << 16), conn(tb.connect(0, 1)) {
    lmr = tb.ctx[0]->register_buffer(local, 1);
    rmr = tb.ctx[1]->register_buffer(remote, 1);
    for (std::size_t i = 0; i < remote.size(); ++i)
      remote.data()[i] = static_cast<std::byte>(i * 31 + 7);
  }

  // n local scatter targets of 32 B at stride 512; remote source is the
  // contiguous range at `remote_off` (SGL/SP) or per-item offsets
  // (Doorbell).
  std::vector<remem::BatchItem> items(std::size_t n,
                                      std::uint64_t remote_off) {
    std::vector<remem::BatchItem> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back({{lmr->addr + i * 512, 32, lmr->key},
                     rmr->addr + remote_off + i * 32});
    return out;
  }

  bool local_matches(std::size_t n, std::uint64_t remote_off) {
    for (std::size_t i = 0; i < n; ++i)
      if (std::memcmp(local.data() + i * 512,
                      remote.data() + remote_off + i * 32, 32) != 0)
        return false;
    return true;
  }

  void flush_read(remem::Batcher& b, std::size_t n, std::uint64_t off) {
    tb.eng.spawn([](ReadRig& r, remem::Batcher& bb, std::size_t nn,
                    std::uint64_t o) -> sim::Task {
      auto its = r.items(nn, o);
      auto c = co_await bb.flush_read(its, r.rmr->addr + o, r.rmr->key);
      EXPECT_TRUE(c.ok());
    }(*this, b, n, off));
    tb.eng.run();
  }
};

}  // namespace

TEST(BatchersRead, SglScattersReadCorrectly) {
  ReadRig rig;
  remem::SglBatcher sgl(*rig.conn.local);
  rig.flush_read(sgl, 8, 4096);
  EXPECT_TRUE(rig.local_matches(8, 4096));
}

TEST(BatchersRead, SpScattersReadCorrectly) {
  ReadRig rig;
  remem::SpBatcher sp(*rig.conn.local, 1 << 12);
  rig.flush_read(sp, 8, 8192);
  EXPECT_TRUE(rig.local_matches(8, 8192));
}

TEST(BatchersRead, DoorbellReadsPerItemSources) {
  ReadRig rig;
  remem::DoorbellBatcher db(*rig.conn.local);
  rig.flush_read(db, 8, 0);
  EXPECT_TRUE(rig.local_matches(8, 0));
}

TEST(BatchersRead, BatchedReadFasterThanSingles) {
  ReadRig rig;
  remem::SglBatcher sgl(*rig.conn.local);
  sim::Time t_batched = 0, t_single = 0;
  rig.tb.eng.spawn([](ReadRig& r, remem::SglBatcher& b, sim::Time& tb_,
                      sim::Time& ts) -> sim::Task {
    auto its = r.items(16, 0);
    sim::Time t0 = r.tb.eng.now();
    for (int k = 0; k < 50; ++k)
      (void)co_await b.flush_read(its, r.rmr->addr, r.rmr->key);
    tb_ = r.tb.eng.now() - t0;
    t0 = r.tb.eng.now();
    for (int k = 0; k < 50; ++k)
      for (auto& it : its) {
        v::WorkRequest wr;
        wr.opcode = v::Opcode::kRead;
        wr.sg_list = {it.local};
        wr.remote_addr = it.remote_addr;
        wr.rkey = r.rmr->key;
        (void)co_await r.conn.local->execute(std::move(wr));
      }
    ts = r.tb.eng.now() - t0;
  }(rig, sgl, t_batched, t_single));
  rig.tb.eng.run();
  EXPECT_LT(t_batched * 3, t_single);  // >3x faster batched
}

TEST(Integration, IncastSharesTheBottleneckLink) {
  // Seven senders blast one receiver with large writes: the receiver's
  // single rx link is the bottleneck, so aggregate goodput pins near the
  // host's memory-bandwidth ceiling and each flow gets a fair share.
  Testbed tb;
  v::Buffer src(1 << 16);
  v::Buffer dst(1 << 20);
  auto* lmr = tb.ctx[1]->register_buffer(src, 1);
  std::vector<v::MemoryRegion*> lmrs{lmr};
  for (int m = 2; m <= 7; ++m) {
    lmrs.push_back(tb.ctx[m]->register_buffer(src, 1));  // alias view ok
  }
  auto* rmr = tb.ctx[0]->register_buffer(dst, 1);

  const int kFlows = 7, kOps = 200;
  const std::uint32_t kSize = 8192;
  std::vector<sim::Time> finish(kFlows, 0);
  for (int f = 0; f < kFlows; ++f) {
    auto conn = tb.connect(static_cast<std::uint32_t>(1 + f), 0);
    tb.eng.spawn([](Testbed& t, v::QueuePair* qp, v::MemoryRegion* l,
                    v::MemoryRegion* r, int idx,
                    std::vector<sim::Time>& out) -> sim::Task {
      for (int i = 0; i < kOps; ++i) {
        auto wr = make_write(*l, 0, *r,
                             static_cast<std::uint64_t>(idx) * kSize, kSize);
        (void)co_await qp->execute(wr);
      }
      out[static_cast<std::size_t>(idx)] = t.eng.now();
    }(tb, conn.local, lmrs[static_cast<std::size_t>(f)], rmr, f, finish));
  }
  tb.eng.run();

  const sim::Time slowest = *std::max_element(finish.begin(), finish.end());
  const sim::Time fastest = *std::min_element(finish.begin(), finish.end());
  // Fairness: contending flows finish within ~15% of each other.
  EXPECT_LT(static_cast<double>(slowest) / static_cast<double>(fastest),
            1.15);
  // Aggregate goodput pinned at a hardware ceiling: above 2 GB/s (shared
  // bottleneck engaged), below the 5 GB/s line rate.
  const double gbps = static_cast<double>(kFlows) * kOps * kSize * 8 /
                      sim::to_sec(slowest) / 1e9;
  EXPECT_GT(gbps, 16.0);
  EXPECT_LT(gbps, 40.0);
}
