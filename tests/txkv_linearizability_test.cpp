// TxKv linearizability/serializability battery (docs/SYNC.md): the
// flagship app's recorded histories run through both checkers — the
// Wing & Gong register search on small per-key histories and the
// scale-free increment audit on everything — for every lock mode, under
// the chaos/fault battery, and byte-identically at every shard count.
// The correct variant must come out clean everywhere; the broken
// siblings are hunted in sync_test.cpp's negative matrix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/txkv/txkv.hpp"
#include "cluster/stats.hpp"
#include "fault/fault.hpp"
#include "sim/sync.hpp"
#include "sync/sync.hpp"
#include "testbed.hpp"

namespace sy = rdmasem::sync;
namespace kv = rdmasem::apps::txkv;
namespace fl = rdmasem::fault;
namespace cl = rdmasem::cluster;
namespace sim = rdmasem::sim;
using rdmasem::test::Testbed;

namespace {

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};

// Pins RDMASEM_SHARDS for one run (clusters read it at construction).
class ShardEnv {
 public:
  explicit ShardEnv(std::uint32_t shards) {
    const char* old = std::getenv("RDMASEM_SHARDS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv("RDMASEM_SHARDS", std::to_string(shards).c_str(), 1);
  }
  ~ShardEnv() {
    if (had_)
      setenv("RDMASEM_SHARDS", saved_.c_str(), 1);
    else
      unsetenv("RDMASEM_SHARDS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

std::vector<rdmasem::verbs::Context*> ctx_ptrs(Testbed& tb) {
  std::vector<rdmasem::verbs::Context*> out;
  for (auto& c : tb.ctx) out.push_back(c.get());
  return out;
}

// Chaos plan the battery runs under: loss/latency/link churn across the
// cluster. No crashes — crash takeover is its own drill below — and the
// server machine is spared link-downs so the run always terminates.
fl::FaultPlan battery_plan(std::uint64_t seed, Testbed& tb) {
  sim::Rng rng(seed);
  fl::ChaosOptions opts;
  opts.events = 14;
  opts.loss_prob_max = 0.4;
  opts.window_max = sim::us(200);
  opts.latency_max = sim::us(15);
  opts.allow_crash = false;
  opts.spare_machine = 0;  // the server: keep its links alive
  return fl::FaultPlan::chaos(rng, sim::ms(2), tb.cluster.size(),
                              tb.cluster.params().rnic_ports, opts);
}

// Runs the FULL battery over one finished store: per-key increment audit,
// register linearizability where the history fits the 64-op search,
// quiescent cells, free locks. Every violation is a test failure with the
// checker's own diagnostic attached.
void expect_battery_clean(kv::TxKv& store, Testbed& tb) {
  const auto merged = store.history().merged();
  std::size_t lin_checked = 0;
  for (std::uint64_t k = 0; k < store.config().num_keys; ++k) {
    const auto key_ops = sy::ops_for_key(merged, k);
    const auto audit = sy::audit_increments(
        key_ops, kv::TxKv::kInitialVersion, kv::TxKv::kInitialValue,
        store.key_version(k), store.key_value(k));
    EXPECT_TRUE(audit.ok()) << "key " << k << ": " << audit.render();
    const auto lin = sy::check_linearizable_register(key_ops,
                                                     kv::TxKv::kInitialValue);
    if (lin.ops <= 64) {
      EXPECT_TRUE(lin.ok) << "key " << k << ": " << lin.diag;
      ++lin_checked;
    }
    EXPECT_TRUE(store.cell_quiescent(k)) << "key " << k;
  }
  EXPECT_GT(lin_checked, 0u) << "no key small enough for the register search";
  EXPECT_TRUE(store.locks_free(tb.eng.now()));
  EXPECT_EQ(store.snapshot_integrity_failures(), 0u);
}

struct RunOut {
  kv::Result result;
  std::string digest;
};

// One full txkv run; the digest folds every observable (history, final
// cells, virtual clock, event count, cluster stats) so shard-invariance
// is byte-exact.
RunOut txkv_run(std::uint32_t shards, const kv::Config& cfg, bool chaos,
                bool battery) {
  ShardEnv env(shards);
  Testbed tb;
  if (chaos) tb.cluster.inject(battery_plan(cfg.seed * 3 + 1, tb));
  kv::TxKv store(ctx_ptrs(tb), cfg);
  RunOut out;
  out.result = store.run();
  if (battery) expect_battery_clean(store, tb);
  out.digest = store.history().render() + "|";
  for (std::uint64_t k = 0; k < cfg.num_keys; ++k)
    out.digest += std::to_string(store.key_version(k)) + ":" +
                  std::to_string(store.key_value(k)) + ";";
  out.digest += "|" + std::to_string(out.result.commits) + "," +
                std::to_string(out.result.gets) + "," +
                std::to_string(out.result.aborts) + "," +
                std::to_string(out.result.recoveries) + "|" +
                std::to_string(tb.eng.now()) + "|" +
                std::to_string(tb.eng.events_processed()) + "|" +
                cl::StatsReport::capture(tb.cluster).render();
  return out;
}

kv::Config battery_cfg(kv::LockMode mode) {
  kv::Config cfg;
  cfg.workers = 6;
  cfg.ops_per_worker = 40;
  cfg.num_keys = 8;
  cfg.zipf_theta = 0.99;  // hot-key skew: most contention on one key
  cfg.get_fraction = 0.5;
  cfg.lock = mode;
  cfg.seed = 21;
  return cfg;
}

}  // namespace

// ------------------------------------------ per-lock-mode serializability

TEST(TxkvLinearizability, SpinLockHistoryPassesTheFullBattery) {
  const auto r = txkv_run(1, battery_cfg(kv::LockMode::kSpin), false, true);
  EXPECT_GT(r.result.commits, 0u);
  EXPECT_GT(r.result.gets, 0u);
  EXPECT_EQ(r.result.dead_workers, 0u);
}

TEST(TxkvLinearizability, SpinBackoffHistoryPassesTheFullBattery) {
  const auto r =
      txkv_run(1, battery_cfg(kv::LockMode::kSpinBackoff), false, true);
  EXPECT_GT(r.result.commits, 0u);
  EXPECT_EQ(r.result.dead_workers, 0u);
}

TEST(TxkvLinearizability, McsHistoryPassesTheFullBattery) {
  const auto r = txkv_run(1, battery_cfg(kv::LockMode::kMcs), false, true);
  EXPECT_GT(r.result.commits, 0u);
  EXPECT_EQ(r.result.dead_workers, 0u);
}

TEST(TxkvLinearizability, LeaseHistoryPassesTheFullBattery) {
  const auto r = txkv_run(1, battery_cfg(kv::LockMode::kLease), false, true);
  EXPECT_GT(r.result.commits, 0u);
  EXPECT_EQ(r.result.dead_workers, 0u);
}

// ------------------------------------------------- register-search drill

TEST(TxkvLinearizability, SmallHistoriesLinearizeAsAtomicRegisters) {
  // Sized so every key's completed history fits the 64-op Wing & Gong
  // search — the strongest per-key oracle we have runs on ALL of them.
  kv::Config cfg;
  cfg.workers = 4;
  cfg.ops_per_worker = 12;
  cfg.num_keys = 4;
  cfg.zipf_theta = 0.6;  // flatter: spread ops under the search bound
  cfg.get_fraction = 0.5;
  cfg.seed = 22;
  ShardEnv env(1);
  Testbed tb;
  kv::TxKv store(ctx_ptrs(tb), cfg);
  (void)store.run();
  const auto merged = store.history().merged();
  for (std::uint64_t k = 0; k < cfg.num_keys; ++k) {
    const auto key_ops = sy::ops_for_key(merged, k);
    const auto lin =
        sy::check_linearizable_register(key_ops, kv::TxKv::kInitialValue);
    EXPECT_LE(lin.ops, 64u) << "key " << k << " outgrew the search bound";
    EXPECT_TRUE(lin.ok) << "key " << k << ": " << lin.diag;
  }
}

// --------------------------------------------------- chaos/fault battery

TEST(TxkvLinearizability, ChaosBatteryWithRecoveryLosesNoUpdates) {
  // Loss bursts, latency spikes and link churn while locks are held and
  // commits are in flight; workers recover (reset + reconnect + re-land)
  // instead of dying. The audit proves no update was lost and no torn
  // state was served; the post-run probes prove every lock drained free.
  auto cfg = battery_cfg(kv::LockMode::kSpin);
  cfg.ops_per_worker = 32;
  cfg.recover_on_failure = true;
  cfg.retry_cnt = 3;  // surface transport failures into recovery
  cfg.seed = 23;
  const auto r = txkv_run(1, cfg, true, true);
  EXPECT_GT(r.result.commits, 0u);
  EXPECT_EQ(r.result.dead_workers, 0u);
}

TEST(TxkvLinearizability, ChaosBatteryOnLeaseLocksStaysSerializable) {
  auto cfg = battery_cfg(kv::LockMode::kLease);
  cfg.ops_per_worker = 32;
  cfg.recover_on_failure = true;
  cfg.retry_cnt = 3;
  cfg.seed = 24;
  const auto r = txkv_run(1, cfg, true, true);
  EXPECT_GT(r.result.commits, 0u);
  EXPECT_EQ(r.result.dead_workers, 0u);
}

// ------------------------------------------------------- shard invariance

TEST(TxkvLinearizability, SpinDigestIsByteIdenticalAtEveryShardCount) {
  const auto serial = txkv_run(1, battery_cfg(kv::LockMode::kSpin), false,
                               /*battery=*/false);
  for (const std::uint32_t s : kShardCounts)
    EXPECT_EQ(
        txkv_run(s, battery_cfg(kv::LockMode::kSpin), false, false).digest,
        serial.digest)
        << "shards=" << s;
}

TEST(TxkvLinearizability, McsDigestIsByteIdenticalAtEveryShardCount) {
  const auto serial =
      txkv_run(1, battery_cfg(kv::LockMode::kMcs), false, false);
  for (const std::uint32_t s : kShardCounts)
    EXPECT_EQ(txkv_run(s, battery_cfg(kv::LockMode::kMcs), false, false).digest,
              serial.digest)
        << "shards=" << s;
}

TEST(TxkvLinearizability, LeaseDigestIsByteIdenticalAtEveryShardCount) {
  const auto serial =
      txkv_run(1, battery_cfg(kv::LockMode::kLease), false, false);
  for (const std::uint32_t s : kShardCounts)
    EXPECT_EQ(
        txkv_run(s, battery_cfg(kv::LockMode::kLease), false, false).digest,
        serial.digest)
        << "shards=" << s;
}

TEST(TxkvLinearizability, ChaosDigestIsByteIdenticalAcrossShards) {
  auto cfg = battery_cfg(kv::LockMode::kSpin);
  cfg.ops_per_worker = 24;
  cfg.recover_on_failure = true;
  cfg.retry_cnt = 3;
  cfg.seed = 25;
  const auto serial = txkv_run(1, cfg, true, false);
  for (const std::uint32_t s : {2u, 4u, 8u})
    EXPECT_EQ(txkv_run(s, cfg, true, false).digest, serial.digest)
        << "shards=" << s;
}
