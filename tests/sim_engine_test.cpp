#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace sim = rdmasem::sim;

TEST(Engine, StartsAtZeroAndIdle) {
  sim::Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(sim::ns(30), [&] { order.push_back(3); });
  e.schedule_at(sim::ns(10), [&] { order.push_back(1); });
  e.schedule_at(sim::ns(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), sim::ns(30));
}

TEST(Engine, EqualTimestampsFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i)
    e.schedule_at(sim::ns(5), [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, PastTimesClampToNow) {
  sim::Engine e;
  sim::Time fired = 0;
  e.schedule_at(sim::ns(100), [&] {
    // Scheduling "in the past" must not rewind the clock.
    e.schedule_at(sim::ns(1), [&] { fired = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired, sim::ns(100));
}

TEST(Engine, NestedSchedulingAdvances) {
  sim::Engine e;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) e.schedule_in(sim::ns(10), recur);
  };
  e.schedule_in(sim::ns(10), recur);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), sim::ns(50));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  sim::Engine e;
  int fired = 0;
  e.schedule_at(sim::ns(10), [&] { ++fired; });
  e.schedule_at(sim::ns(30), [&] { ++fired; });
  EXPECT_TRUE(e.run_until(sim::ns(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), sim::ns(20));
  EXPECT_FALSE(e.run_until(sim::ns(100)));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunEventsBounded) {
  sim::Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule_in(sim::ns(i), [&] { ++fired; });
  EXPECT_EQ(e.run_events(4), 4u);
  EXPECT_EQ(fired, 4);
  e.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, ProcessedCounter) {
  sim::Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_in(1, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

TEST(Resource, SingleServerSerializes) {
  sim::Engine e;
  sim::Resource r(e, 1);
  // Three back-to-back 10ns jobs reserved at t=0 complete at 10/20/30.
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(10));
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(20));
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(30));
  EXPECT_EQ(r.requests(), 3u);
  EXPECT_EQ(r.busy_time(), sim::ns(30));
}

TEST(Resource, MultiServerParallelism) {
  sim::Engine e;
  sim::Resource r(e, 2);
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(10));
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(10));  // second server
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(20));  // queues
}

TEST(Resource, IdleGapRestartsAtNow) {
  sim::Engine e;
  sim::Resource r(e, 1);
  EXPECT_EQ(r.reserve(sim::ns(10)), sim::ns(10));
  // Advance the clock past the busy period.
  e.schedule_at(sim::ns(100), [] {});
  e.run();
  EXPECT_EQ(r.reserve(sim::ns(5)), sim::ns(105));
}

TEST(Resource, PeekDoesNotReserve) {
  sim::Engine e;
  sim::Resource r(e, 1);
  EXPECT_EQ(r.peek(sim::ns(10)), sim::ns(10));
  EXPECT_EQ(r.peek(sim::ns(10)), sim::ns(10));  // unchanged
  EXPECT_EQ(r.requests(), 0u);
}

TEST(Resource, UtilizationFraction) {
  sim::Engine e;
  sim::Resource r(e, 1);
  r.reserve(sim::ns(50));
  e.schedule_at(sim::ns(100), [] {});
  e.run();
  EXPECT_NEAR(r.utilization(), 0.5, 1e-9);
  r.reset_stats();
  EXPECT_EQ(r.requests(), 0u);
  EXPECT_NEAR(r.utilization(), 0.0, 1e-12);
}

TEST(Rng, DeterministicAcrossInstances) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  sim::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(10), 10u);
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
  EXPECT_EQ(r.uniform(0), 0u);
  EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  sim::Rng r(99);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[r.uniform(10)]++;
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(Rng, ReseedReproduces) {
  sim::Rng r(5);
  const auto a = r.next();
  r.next();
  r.reseed(5);
  EXPECT_EQ(r.next(), a);
}
