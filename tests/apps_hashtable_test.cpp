#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "apps/hashtable/hashtable.hpp"
#include "testbed.hpp"
#include "wl/zipf.hpp"

namespace ht = rdmasem::apps::hashtable;
namespace sim = rdmasem::sim;
using rdmasem::test::Testbed;

namespace {

std::vector<std::byte> value_for(std::uint64_t key, std::uint32_t size) {
  std::vector<std::byte> v(size);
  for (std::uint32_t i = 0; i < size; i += 8) {
    const std::uint64_t w = key * 0x9e3779b97f4a7c15ULL + i;
    std::memcpy(v.data() + i, &w, std::min<std::uint32_t>(8, size - i));
  }
  return v;
}

struct HtRig {
  Testbed tb;
  std::unique_ptr<ht::DisaggHashTable> table;

  explicit HtRig(ht::Config cfg) {
    table = std::make_unique<ht::DisaggHashTable>(*tb.ctx[0], cfg);
  }
};

}  // namespace

TEST(HashTableBasic, PutThenGetRoundTrips) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 1);

  auto task = [](ht::FrontEnd& f, const ht::Config& c) -> sim::Task {
    for (std::uint64_t k : {0ull, 1ull, 17ull, 1023ull}) {
      const auto v = value_for(k, c.value_size);
      co_await f.put(k, v);
      const auto got = co_await f.get(k);
      EXPECT_EQ(got.size(), v.size());
      EXPECT_EQ(std::memcmp(got.data(), v.data(), v.size()), 0);
    }
    // A never-written key reads back empty.
    const auto missing = co_await f.get(999);
    EXPECT_TRUE(missing.empty());
  };
  rig.tb.eng.spawn(task(*fe, cfg));
  rig.tb.eng.run();
}

TEST(HashTableBasic, OverwriteReturnsLatest) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 0);

  auto task = [](ht::FrontEnd& f, const ht::Config& c) -> sim::Task {
    co_await f.put(5, value_for(5, c.value_size));
    co_await f.put(5, value_for(77, c.value_size));
    const auto got = co_await f.get(5);
    const auto expect = value_for(77, c.value_size);
    EXPECT_EQ(std::memcmp(got.data(), expect.data(), expect.size()), 0);
  };
  rig.tb.eng.spawn(task(*fe, cfg));
  rig.tb.eng.run();
}

TEST(HashTableFull, MultiVersionColdPutGet) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  cfg.numa_aware = true;
  cfg.consolidate = true;
  cfg.hot_fraction = 1.0 / 8;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 1);

  auto task = [](ht::FrontEnd& f, const ht::Config& c,
                 ht::Backend& be) -> sim::Task {
    // A key in the cold area (beyond the hot prefix).
    const std::uint64_t cold_key = be.hot_keys() + 10;
    for (int round = 0; round < 6; ++round) {  // cycles through versions
      const auto v = value_for(cold_key + 1000u * round, c.value_size);
      co_await f.put(cold_key, v);
      const auto got = co_await f.get(cold_key);
      EXPECT_EQ(got.size(), v.size());
      if (got.size() == v.size()) {
        EXPECT_EQ(std::memcmp(got.data(), v.data(), v.size()), 0);
      }
    }
  };
  rig.tb.eng.spawn(task(*fe, cfg, rig.table->backend()));
  rig.tb.eng.run();
}

TEST(HashTableFull, HotPutVisibleAfterDrain) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  cfg.numa_aware = true;
  cfg.consolidate = true;
  cfg.theta = 8;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 0);
  auto& be = rig.table->backend();

  const std::uint64_t hot_key = 2;  // in the hot prefix
  auto task = [](ht::FrontEnd& f, const ht::Config& c, std::uint64_t k)
      -> sim::Task {
    co_await f.put(k, value_for(k, c.value_size));
    co_await f.drain();
    const auto got = co_await f.get(k);  // front-end cache
    const auto expect = value_for(k, c.value_size);
    EXPECT_EQ(std::memcmp(got.data(), expect.data(), expect.size()), 0);
  };
  rig.tb.eng.spawn(task(*fe, cfg, hot_key));
  rig.tb.eng.run();

  // The value reached the BACK-END hot area (not just the local shadow).
  const auto expect = value_for(hot_key, cfg.value_size);
  const auto s = be.socket_of(hot_key);
  const std::byte* entry = be.region(s)->at(be.hot_region_addr(s) +
                                            be.hot_entry_off(hot_key));
  EXPECT_EQ(std::memcmp(entry, expect.data(), expect.size()), 0);
}

TEST(HashTableFull, HotBlockLockReleasedAfterFlush) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  cfg.consolidate = true;
  cfg.theta = 2;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 1);
  auto& be = rig.table->backend();

  auto task = [](ht::FrontEnd& f, const ht::Config& c) -> sim::Task {
    co_await f.put(0, value_for(1, c.value_size));
    co_await f.put(2, value_for(2, c.value_size));  // same socket-0... flush
    co_await f.drain();
  };
  rig.tb.eng.spawn(task(*fe, cfg));
  rig.tb.eng.run();

  // Every hot-block lock word must be zero after the run.
  for (rdmasem::hw::SocketId s = 0; s < 2; ++s) {
    const std::uint64_t blocks =
        be.hot_region_size() / be.hot_block_bytes();
    for (std::uint64_t b = 0; b < blocks; ++b) {
      std::uint64_t word = 0;
      std::memcpy(&word,
                  be.region(s)->at(be.hot_region_addr(s) +
                                   be.hot_block_addr(b)),
                  8);
      EXPECT_EQ(word, 0u);
    }
  }
}

TEST(HashTableThroughput, OptimizationLadderOrdering) {
  // Fig. 12 shape: basic < +NUMA < +reorder(theta). Each front-end
  // pipelines several client requests (a front-end is a server thread).
  auto mops_for = [](bool numa, bool consolidate, std::uint32_t theta) {
    Testbed tb;
    ht::Config cfg;
    cfg.num_keys = 1 << 14;
    cfg.numa_aware = numa;
    cfg.consolidate = consolidate;
    cfg.theta = theta;
    ht::DisaggHashTable table(*tb.ctx[0], cfg);
    const std::uint32_t fes = 6, pipeline = 4;
    const std::uint64_t ops = 800;  // per pipeline worker
    std::vector<std::unique_ptr<ht::FrontEnd>> workers;
    sim::CountdownLatch done(tb.eng, fes * pipeline);
    // Workers finish on their front-end machines' lanes (any shard); max
    // commutes, so a relaxed CAS-max is shard-invariant.
    std::atomic<sim::Time> end{0};
    for (std::uint32_t i = 0; i < fes; ++i) {
      workers.push_back(
          table.add_front_end(*tb.ctx[1 + i % 7], (i / 7) % 2));
      for (std::uint32_t w = 0; w < pipeline; ++w) {
        auto loop = [](Testbed& t, ht::FrontEnd& f, const ht::Config& c,
                       std::uint32_t id, std::uint64_t n,
                       sim::CountdownLatch& d,
                       std::atomic<sim::Time>& e) -> sim::Task {
          rdmasem::wl::ZipfGenerator zipf(c.num_keys, 0.99, 100 + id);
          const auto v = value_for(id, c.value_size);
          for (std::uint64_t i2 = 0; i2 < n; ++i2)
            co_await f.put(zipf.next(), v);
          const sim::Time now = t.eng.now();
          sim::Time prev = e.load(std::memory_order_relaxed);
          while (prev < now && !e.compare_exchange_weak(
                                   prev, now, std::memory_order_relaxed)) {
          }
          d.count_down();
          // Write-behind tail drains outside the measured window.
          if (d.remaining() == 0) co_await f.drain();
        };
        tb.eng.spawn(loop(tb, *workers.back(), cfg, i * pipeline + w, ops,
                          done, end));
      }
    }
    tb.eng.run();
    return fes * pipeline * ops /
           sim::to_us(end.load(std::memory_order_relaxed));
  };
  const double basic = mops_for(false, false, 16);
  const double numa = mops_for(true, false, 16);
  const double reorder16 = mops_for(true, true, 16);
  EXPECT_GT(numa, basic * 1.05);
  EXPECT_GT(reorder16, numa * 1.3);
  // Paper: +reorder peaks at ~1.85x..2.7x over basic.
  EXPECT_GT(reorder16 / basic, 1.5);
}

TEST(HashTableFull, HotWritesVisibleToOtherFrontEndsAfterDrain) {
  // FE A writes a hot key and drains; FE B (whose shadow never saw it)
  // must read the fresh value remotely.
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  cfg.numa_aware = true;
  cfg.consolidate = true;
  HtRig rig(cfg);
  auto fe_a = rig.table->add_front_end(*rig.tb.ctx[1], 1);
  auto fe_b = rig.table->add_front_end(*rig.tb.ctx[2], 1);

  auto task = [](ht::FrontEnd& a, ht::FrontEnd& b,
                 const ht::Config& c) -> sim::Task {
    const auto v = value_for(4242, c.value_size);
    co_await a.put(2, v);   // hot key
    co_await a.drain();     // flushed to the back-end hot area
    const auto got = co_await b.get(2);
    EXPECT_EQ(got.size(), v.size());
    if (got.size() == v.size()) {
      EXPECT_EQ(std::memcmp(got.data(), v.data(), v.size()), 0);
    }
  };
  rig.tb.eng.spawn(task(*fe_a, *fe_b, cfg));
  rig.tb.eng.run();
}

TEST(HashTableFull, DirtyShadowServedLocally) {
  // While a hot write is still buffered, the writer itself reads its own
  // shadow (read-your-writes within a front-end).
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  cfg.consolidate = true;
  cfg.theta = 100;  // nothing flushes during the test
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 1);

  auto task = [](ht::FrontEnd& f, const ht::Config& c) -> sim::Task {
    const auto v = value_for(7, c.value_size);
    co_await f.put(0, v);
    const auto got = co_await f.get(0);  // served from the dirty shadow
    EXPECT_EQ(std::memcmp(got.data(), v.data(), v.size()), 0);
  };
  rig.tb.eng.spawn(task(*fe, cfg));
  rig.tb.eng.run();
}

TEST(HashTableBasic, RemoveMakesKeyNotFound) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 1);
  auto task = [](ht::FrontEnd& f, const ht::Config& c) -> sim::Task {
    co_await f.put(33, value_for(33, c.value_size));
    EXPECT_FALSE((co_await f.get(33)).empty());
    co_await f.remove(33);
    EXPECT_TRUE((co_await f.get(33)).empty());
    // Re-insert after delete works.
    co_await f.put(33, value_for(99, c.value_size));
    const auto got = co_await f.get(33);
    const auto expect = value_for(99, c.value_size);
    EXPECT_EQ(std::memcmp(got.data(), expect.data(), expect.size()), 0);
  };
  rig.tb.eng.spawn(task(*fe, cfg));
  rig.tb.eng.run();
}

TEST(HashTableFull, RemoveColdKeyWithVersions) {
  ht::Config cfg;
  cfg.num_keys = 1 << 10;
  cfg.consolidate = true;
  HtRig rig(cfg);
  auto fe = rig.table->add_front_end(*rig.tb.ctx[1], 1);
  auto task = [](ht::FrontEnd& f, const ht::Config& c,
                 ht::Backend& be) -> sim::Task {
    const std::uint64_t k = be.hot_keys() + 5;  // cold
    co_await f.put(k, value_for(1, c.value_size));
    co_await f.remove(k);
    EXPECT_TRUE((co_await f.get(k)).empty());
    co_await f.put(k, value_for(2, c.value_size));
    EXPECT_FALSE((co_await f.get(k)).empty());
  };
  rig.tb.eng.spawn(task(*fe, cfg, rig.table->backend()));
  rig.tb.eng.run();
}
