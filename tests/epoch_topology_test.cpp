// Per-(src,dst) lookahead matrix: the topology-aware conservative-epoch
// machinery at the raw engine level. Covers the read-back accessors, the
// affinity-aware placement, boundary-exact cross-group hops, asymmetric
// latency matrices, single-lane shards, both epoch protocols, and a
// 10-seed fuzz of random topologies asserting the shard matrix never
// exceeds the true minimum cross-shard lane latency (the safety bound of
// the CMB horizon end(d) = min over s of next(s) + shard_reach(s, d),
// where shard_reach is the min-plus closure of the direct matrix).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sim = rdmasem::sim;

namespace {

// Two leaf groups of two lanes each (driver rides group 0), with an
// ASYMMETRIC cross-group matrix: group 0 -> 1 is cheaper than 1 -> 0.
sim::LaneTopology two_leaf_topo(sim::Duration intra, sim::Duration out,
                                sim::Duration back) {
  sim::LaneTopology topo;
  topo.groups = 2;
  topo.lane_group = {0, 0, 1, 1};
  topo.group_latency = {intra, out, back, intra};
  return topo;
}

// One coroutine walking a precomputed lane sequence, each hop of EXACTLY
// the per-pair lookahead for its (from, to) — every cross-shard event
// lands precisely on an epoch boundary, the tightest legal case. The
// digest folds (lane, time) at every step plus the final clock and event
// count, so any ordering or horizon bug shows up as a different vector.
std::vector<std::uint64_t> walk_run(std::uint32_t lanes, std::uint32_t shards,
                                    sim::LaneTopology topo,
                                    const std::vector<std::uint32_t>& walk,
                                    bool legacy = false) {
  sim::Engine eng;
  eng.configure_lanes(lanes, shards, std::move(topo));
  eng.set_epoch_legacy(legacy);
  std::vector<std::uint64_t> log;
  auto task = [](sim::Engine& e, const std::vector<std::uint32_t>& w,
                 std::vector<std::uint64_t>& lg) -> sim::Task {
    for (const std::uint32_t next : w) {
      lg.push_back((static_cast<std::uint64_t>(sim::current_lane()) << 48) ^
                   e.now());
      co_await sim::hop(e, next,
                        e.lookahead(sim::current_lane(), next));
    }
    lg.push_back(e.now());
  };
  eng.spawn_on(walk.empty() ? 0 : walk.front(), task(eng, walk, log));
  eng.run();
  log.push_back(eng.now());
  log.push_back(eng.events_processed());
  return log;
}

// A ping-pong walk between two lanes, `hops` legs long.
std::vector<std::uint32_t> pingpong_walk(std::uint32_t a, std::uint32_t b,
                                         int hops) {
  std::vector<std::uint32_t> walk;
  for (int i = 0; i < hops; ++i) walk.push_back(i % 2 == 0 ? b : a);
  walk.insert(walk.begin(), a);  // spawn lane
  return walk;
}

}  // namespace

TEST(EpochTopology, PerPairLookaheadReadsBackGroupMatrix) {
  sim::Engine eng;
  eng.configure_lanes(4, 2, two_leaf_topo(sim::ns(200), sim::ns(500),
                                          sim::ns(700)));
  // Intra-group pairs see the diagonal; cross-group pairs the off-diagonal
  // for their direction; the global floor is the matrix minimum.
  EXPECT_EQ(eng.lookahead(0, 1), sim::ns(200));
  EXPECT_EQ(eng.lookahead(2, 3), sim::ns(200));
  EXPECT_EQ(eng.lookahead(0, 2), sim::ns(500));
  EXPECT_EQ(eng.lookahead(1, 3), sim::ns(500));
  EXPECT_EQ(eng.lookahead(2, 0), sim::ns(700));
  EXPECT_EQ(eng.lookahead(3, 1), sim::ns(700));
  EXPECT_EQ(eng.lookahead(), sim::ns(200));
}

TEST(EpochTopology, AffinityPlacementAlignsShardsWithGroups) {
  // 2 shards x 2 groups of 2 lanes: the greedy placement must put each
  // whole group on its own shard, so the cross-shard matrix entries are
  // the (wider) cross-group latencies, not the intra-group floor.
  sim::Engine eng;
  eng.configure_lanes(4, 2, two_leaf_topo(sim::ns(200), sim::ns(500),
                                          sim::ns(700)));
  EXPECT_EQ(eng.shard_of(0), 0u);
  EXPECT_EQ(eng.shard_of(1), 0u);
  EXPECT_EQ(eng.shard_of(2), 1u);
  EXPECT_EQ(eng.shard_of(3), 1u);
  EXPECT_EQ(eng.shard_lookahead(0, 1), sim::ns(500));
  EXPECT_EQ(eng.shard_lookahead(1, 0), sim::ns(700));
  EXPECT_EQ(eng.shard_lookahead(0, 0), sim::ns(200));
}

TEST(EpochTopology, UniformTopologyCollapsesToGlobalLookahead) {
  sim::Engine eng;
  eng.configure_lanes(5, 2);
  eng.set_lookahead(sim::ns(300));
  for (std::uint32_t a = 0; a < 5; ++a)
    for (std::uint32_t b = 0; b < 5; ++b)
      EXPECT_EQ(eng.lookahead(a, b), sim::ns(300));
  EXPECT_EQ(eng.shard_lookahead(0, 1), sim::ns(300));
}

TEST(EpochTopology, BoundaryExactAsymmetricPingPongMatchesSerial) {
  // Cross-group ping-pong where each direction pays a DIFFERENT exact
  // lookahead (500 out, 700 back) — boundary-exact events under an
  // asymmetric matrix, in both epoch protocols.
  const auto topo = [] {
    return two_leaf_topo(sim::ns(200), sim::ns(500), sim::ns(700));
  };
  const auto walk = pingpong_walk(1, 2, 32);
  const auto serial = walk_run(4, 1, topo(), walk);
  for (const std::uint32_t s : {2u, 3u, 4u}) {
    EXPECT_EQ(walk_run(4, s, topo(), walk), serial) << "shards=" << s;
    EXPECT_EQ(walk_run(4, s, topo(), walk, /*legacy=*/true), serial)
        << "legacy shards=" << s;
  }
}

TEST(EpochTopology, SingleLaneShardsMatchSerial) {
  // shards == lanes: every shard holds exactly one lane (the driver lane
  // alone on shard 0), so every cross-lane hop is cross-shard and every
  // matrix entry is a single pair's latency. A ring walk touches all of
  // them.
  const auto topo = [] {
    return two_leaf_topo(sim::ns(250), sim::ns(400), sim::ns(600));
  };
  std::vector<std::uint32_t> walk{1};
  for (int i = 0; i < 24; ++i) walk.push_back((walk.back() + 1) % 4);
  const auto serial = walk_run(4, 1, topo(), walk);
  EXPECT_EQ(walk_run(4, 4, topo(), walk), serial);
  EXPECT_EQ(walk_run(4, 4, topo(), walk, /*legacy=*/true), serial);
}

TEST(EpochTopology, LegacyProtocolMatchesNewOnUniformTopology) {
  sim::LaneTopology flat;
  flat.groups = 1;
  flat.lane_group = {0, 0, 0};
  flat.group_latency = {sim::ns(200)};
  const auto walk = pingpong_walk(1, 2, 40);
  const auto serial = walk_run(3, 1, flat, walk);
  for (const std::uint32_t s : {2u, 3u}) {
    EXPECT_EQ(walk_run(3, s, flat, walk), serial) << "shards=" << s;
    EXPECT_EQ(walk_run(3, s, flat, walk, /*legacy=*/true), serial)
        << "legacy shards=" << s;
  }
}

TEST(EpochTopology, ShardReachClosesOverChainsAndRoundTrips) {
  // Three single-lane shards with a triangle-inequality-violating matrix:
  // the direct 0->2 edge (900) is beaten by the chain 0->1->2 (200+300).
  // shard_reach must price the chain, and its diagonal must equal the
  // cheapest round trip through another shard — the earliest instant a
  // shard's own sends can come back at it.
  sim::LaneTopology topo;
  topo.groups = 3;
  topo.lane_group = {0, 1, 2};
  topo.group_latency = {sim::ns(100), sim::ns(200), sim::ns(900),   // g0 ->
                        sim::ns(800), sim::ns(100), sim::ns(300),   // g1 ->
                        sim::ns(600), sim::ns(700), sim::ns(100)};  // g2 ->
  sim::Engine eng;
  eng.configure_lanes(3, 3, topo);
  for (std::uint32_t l = 0; l < 3; ++l) ASSERT_EQ(eng.shard_of(l), l);
  // Direct matrix reads back the group matrix...
  EXPECT_EQ(eng.shard_lookahead(0, 2), sim::ns(900));
  // ...but reach closes over the cheaper two-hop chain.
  EXPECT_EQ(eng.shard_reach(0, 2), sim::ns(500));
  EXPECT_EQ(eng.shard_reach(0, 1), sim::ns(200));
  EXPECT_EQ(eng.shard_reach(1, 2), sim::ns(300));
  EXPECT_EQ(eng.shard_reach(1, 0), sim::ns(800));
  EXPECT_EQ(eng.shard_reach(2, 0), sim::ns(600));
  EXPECT_EQ(eng.shard_reach(2, 1), sim::ns(700));
  // reach(s, d) <= lookahead(s, d): the per-push assertion stays valid.
  for (std::uint32_t s = 0; s < 3; ++s)
    for (std::uint32_t d = 0; d < 3; ++d)
      if (s != d) EXPECT_LE(eng.shard_reach(s, d), eng.shard_lookahead(s, d));
  // Diagonals: min round trip. 0: 0->1->0 = 200+800. 1: via 0 = 800+200
  // (beats 300+700 == it; min is 1000 either way). 2: 2->1 then 1->2.
  EXPECT_EQ(eng.shard_reach(0, 0), sim::ns(1000));
  EXPECT_EQ(eng.shard_reach(1, 1), sim::ns(1000));
  EXPECT_EQ(eng.shard_reach(2, 2), sim::ns(1000));
}

namespace {

// Regression harness for the drained-peer reactivation hazard: lane 1
// carries a dense local ticker plus a ping task that sleeps long enough
// between rounds for lane 2's shard to drain COMPLETELY. A horizon that
// ignores empty peers would let shard(1) run unbounded past its own
// sends' round trip; lane 2's replies would then land in shard(1)'s
// virtual past and the digest would diverge from serial.
std::vector<std::uint64_t> drained_peer_run(std::uint32_t shards,
                                            bool legacy) {
  sim::Engine eng;
  sim::LaneTopology flat;
  flat.groups = 1;
  flat.lane_group = {0, 0, 0};
  flat.group_latency = {sim::ns(200)};
  eng.configure_lanes(3, shards, flat);
  eng.set_epoch_legacy(legacy);
  // One log per coroutine: the two tasks run on different shards, so a
  // shared log's interleaving would vary with placement (and race).
  // Each coroutine's own sequence of observed clocks is the oracle.
  std::vector<std::uint64_t> tick_log, ping_log;
  auto ticker = [](sim::Engine& e, std::vector<std::uint64_t>& lg)
      -> sim::Task {
    for (int i = 0; i < 400; ++i) {
      co_await sim::delay(e, sim::ns(70));
      lg.push_back(e.now() ^ 0x1111u);
    }
  };
  auto ping = [](sim::Engine& e, std::vector<std::uint64_t>& lg)
      -> sim::Task {
    for (int i = 0; i < 12; ++i) {
      co_await sim::delay(e, sim::ns(1900));
      co_await sim::hop(e, 2, sim::ns(200));
      lg.push_back((e.now() << 1) ^ sim::current_lane());
      co_await sim::hop(e, 1, sim::ns(200));
      lg.push_back((e.now() << 1) ^ sim::current_lane());
    }
  };
  eng.spawn_on(1, ticker(eng, tick_log));
  eng.spawn_on(1, ping(eng, ping_log));
  eng.run();
  std::vector<std::uint64_t> log = std::move(tick_log);
  log.insert(log.end(), ping_log.begin(), ping_log.end());
  log.push_back(eng.now());
  log.push_back(eng.events_processed());
  return log;
}

}  // namespace

TEST(EpochTopology, DrainedPeerDoesNotUnboundTheEpoch) {
  const auto serial = drained_peer_run(1, false);
  for (const std::uint32_t s : {2u, 3u}) {
    EXPECT_EQ(drained_peer_run(s, false), serial) << "shards=" << s;
    EXPECT_EQ(drained_peer_run(s, true), serial) << "legacy shards=" << s;
  }
}

// ---------------------------------------------------------------------------
// Fuzz: random topologies. The conservative bound only holds if every
// (src, dst) matrix entry is <= the latency of EVERY lane pair actually
// placed on those shards; with all shards non-empty (shards <= lanes, as
// the placement guarantees) the rebuild computes exactly that minimum.

TEST(EpochFuzz, RandomTopologyMatrixBoundedByTrueMinCrossShardLatency) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Rng rng(seed * 7919 + 13);
    const auto lanes = static_cast<std::uint32_t>(4 + rng.uniform(9));
    const auto groups = static_cast<std::uint32_t>(1 + rng.uniform(4));
    sim::LaneTopology topo;
    topo.groups = groups;
    topo.lane_group.assign(lanes, 0);
    for (std::uint32_t l = 1; l < lanes; ++l)
      topo.lane_group[l] = static_cast<std::uint32_t>(rng.uniform(groups));
    topo.group_latency.assign(static_cast<std::size_t>(groups) * groups, 0);
    for (auto& d : topo.group_latency)
      d = sim::ns(100 + rng.uniform(900));
    const auto shards = static_cast<std::uint32_t>(
        2 + rng.uniform(std::min(lanes, 4u) - 1));

    sim::Engine eng;
    eng.configure_lanes(lanes, shards, topo);
    for (std::uint32_t src = 0; src < shards; ++src)
      for (std::uint32_t dst = 0; dst < shards; ++dst) {
        if (src == dst) continue;
        sim::Duration true_min = ~sim::Duration{0};
        for (std::uint32_t a = 0; a < lanes; ++a)
          for (std::uint32_t b = 0; b < lanes; ++b)
            if (eng.shard_of(a) == src && eng.shard_of(b) == dst)
              true_min = std::min(true_min, eng.lookahead(a, b));
        ASSERT_NE(true_min, ~sim::Duration{0})
            << "empty shard at seed=" << seed;
        EXPECT_LE(eng.shard_lookahead(src, dst), true_min)
            << "seed=" << seed << " src=" << src << " dst=" << dst;
        EXPECT_EQ(eng.shard_lookahead(src, dst), true_min)
            << "seed=" << seed << " src=" << src << " dst=" << dst;
      }
  }
}

TEST(EpochFuzz, RandomTopologyWalksMatchSerial) {
  // Random topology + random lane walk at exact per-pair lookaheads; the
  // digest must be byte-identical at every shard count and protocol.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Rng rng(seed * 104729 + 7);
    const auto lanes = static_cast<std::uint32_t>(3 + rng.uniform(6));
    const auto groups = static_cast<std::uint32_t>(1 + rng.uniform(3));
    sim::LaneTopology topo;
    topo.groups = groups;
    topo.lane_group.assign(lanes, 0);
    for (std::uint32_t l = 1; l < lanes; ++l)
      topo.lane_group[l] = static_cast<std::uint32_t>(rng.uniform(groups));
    topo.group_latency.assign(static_cast<std::size_t>(groups) * groups, 0);
    for (auto& d : topo.group_latency)
      d = sim::ns(100 + rng.uniform(600));
    std::vector<std::uint32_t> walk;
    walk.push_back(static_cast<std::uint32_t>(rng.uniform(lanes)));
    for (int i = 0; i < 20; ++i)
      walk.push_back(static_cast<std::uint32_t>(rng.uniform(lanes)));

    const auto serial = walk_run(lanes, 1, topo, walk);
    for (std::uint32_t s = 2; s <= std::min(lanes, 4u); ++s) {
      EXPECT_EQ(walk_run(lanes, s, topo, walk), serial)
          << "seed=" << seed << " shards=" << s;
      EXPECT_EQ(walk_run(lanes, s, topo, walk, /*legacy=*/true), serial)
          << "seed=" << seed << " legacy shards=" << s;
    }
  }
}
