// Randomized differential tests: drive the simulated fabric with random
// operation sequences and check the outcome against a host-side reference
// model executed in program order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <queue>
#include <vector>

#include "sim/event_queue.hpp"
#include "testbed.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
using rdmasem::test::Testbed;

namespace {

constexpr std::size_t kRegion = 1 << 14;

// The reference: remote memory as a plain byte array mutated in program
// order by the same operations.
struct Reference {
  std::vector<std::byte> mem{std::vector<std::byte>(kRegion)};

  void write(std::uint64_t off, std::span<const std::byte> data) {
    std::memcpy(mem.data() + off, data.data(), data.size());
  }
  std::uint64_t faa(std::uint64_t off, std::uint64_t d) {
    std::uint64_t old = 0;
    std::memcpy(&old, mem.data() + off, 8);
    const std::uint64_t now = old + d;
    std::memcpy(mem.data() + off, &now, 8);
    return old;
  }
  std::uint64_t cas(std::uint64_t off, std::uint64_t cmp, std::uint64_t val) {
    std::uint64_t old = 0;
    std::memcpy(&old, mem.data() + off, 8);
    if (old == cmp) std::memcpy(mem.data() + off, &val, 8);
    return old;
  }
};

}  // namespace

class VerbsDifferential : public ::testing::TestWithParam<int> {};

TEST_P(VerbsDifferential, RandomOpSequenceMatchesReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Testbed tb;
  v::Buffer local(kRegion), remote(kRegion);
  auto* lmr = tb.ctx[0]->register_buffer(local, 1);
  auto* rmr = tb.ctx[1]->register_buffer(remote, 1);
  auto conn = tb.connect(0, 1);
  Reference ref;

  bool mismatch = false;
  tb.eng.spawn([](Testbed&, v::QueuePair* qp, v::Buffer& lbuf,
                  v::MemoryRegion* l, v::MemoryRegion* r, Reference& m,
                  std::uint64_t sd, bool& bad) -> sim::Task {
    sim::Rng rng(sd * 7919 + 13);
    for (int i = 0; i < 400 && !bad; ++i) {
      const std::uint64_t kind = rng.uniform(4);
      if (kind == 0) {  // write
        const std::uint32_t size =
            static_cast<std::uint32_t>(1 + rng.uniform(512));
        const std::uint64_t off = rng.uniform(kRegion - size);
        for (std::uint32_t b = 0; b < size; ++b)
          lbuf.data()[b] = static_cast<std::byte>(rng.uniform(256));
        v::WorkRequest wr;
        wr.opcode = v::Opcode::kWrite;
        wr.sg_list = {{l->addr, size, l->key}};
        wr.remote_addr = r->addr + off;
        wr.rkey = r->key;
        const auto c = co_await qp->execute(std::move(wr));
        if (!c.ok()) bad = true;
        m.write(off, {lbuf.data(), size});
      } else if (kind == 1) {  // read + compare against reference
        const std::uint32_t size =
            static_cast<std::uint32_t>(1 + rng.uniform(512));
        const std::uint64_t off = rng.uniform(kRegion - size);
        v::WorkRequest wr;
        wr.opcode = v::Opcode::kRead;
        wr.sg_list = {{l->addr + 1024, size, l->key}};
        wr.remote_addr = r->addr + off;
        wr.rkey = r->key;
        const auto c = co_await qp->execute(std::move(wr));
        if (!c.ok() ||
            std::memcmp(lbuf.data() + 1024, m.mem.data() + off, size) != 0)
          bad = true;
      } else if (kind == 2) {  // fetch-add
        const std::uint64_t off = rng.uniform(kRegion / 8) * 8;
        const std::uint64_t delta = rng.next();
        v::WorkRequest wr;
        wr.opcode = v::Opcode::kFetchAdd;
        wr.sg_list = {{l->addr + 2048, 8, l->key}};
        wr.remote_addr = r->addr + off;
        wr.rkey = r->key;
        wr.swap_or_add = delta;
        const auto c = co_await qp->execute(std::move(wr));
        if (!c.ok() || c.atomic_old != m.faa(off, delta)) bad = true;
      } else {  // compare-and-swap (50% chance of matching expected)
        const std::uint64_t off = rng.uniform(kRegion / 8) * 8;
        std::uint64_t cur = 0;
        std::memcpy(&cur, m.mem.data() + off, 8);
        const std::uint64_t cmp = rng.chance(0.5) ? cur : rng.next();
        const std::uint64_t val = rng.next();
        v::WorkRequest wr;
        wr.opcode = v::Opcode::kCompSwap;
        wr.sg_list = {{l->addr + 2048, 8, l->key}};
        wr.remote_addr = r->addr + off;
        wr.rkey = r->key;
        wr.compare = cmp;
        wr.swap_or_add = val;
        const auto c = co_await qp->execute(std::move(wr));
        if (!c.ok() || c.atomic_old != m.cas(off, cmp, val)) bad = true;
      }
    }
  }(tb, conn.local, local, lmr, rmr, ref, seed, mismatch));
  tb.eng.run();

  EXPECT_FALSE(mismatch);
  EXPECT_EQ(std::memcmp(remote.data(), ref.mem.data(), kRegion), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerbsDifferential, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Foundation stress: many actors, exact bookkeeping.

TEST(SimStress, ThousandsOfInterleavedTasksBalance) {
  sim::Engine eng;
  std::uint64_t started = 0, finished = 0;
  sim::Time last = 0;
  sim::Rng rng(77);
  for (int t = 0; t < 2000; ++t) {
    const auto d1 = sim::ns(rng.uniform(5000));
    const auto d2 = sim::ns(rng.uniform(5000));
    ++started;
    eng.spawn([](sim::Engine& e, sim::Duration a, sim::Duration b,
                 std::uint64_t& fin, sim::Time& lst) -> sim::Task {
      co_await sim::delay(e, a);
      co_await sim::delay(e, b);
      fin++;
      lst = std::max(lst, e.now());
    }(eng, d1, d2, finished, last));
  }
  eng.run();
  EXPECT_EQ(finished, started);
  EXPECT_LE(last, sim::ns(10000));
  EXPECT_EQ(eng.now(), last);
}

TEST(SimStress, ChannelDeliversEveryItemExactlyOnce) {
  sim::Engine eng;
  sim::Channel<std::uint64_t> ch(eng);
  const int kProducers = 8, kConsumers = 5, kPerProducer = 500;
  std::vector<int> seen(kProducers * kPerProducer, 0);
  // Producers stamp unique ids; consumers tally.
  for (int p = 0; p < kProducers; ++p) {
    eng.spawn([](sim::Engine& e, sim::Channel<std::uint64_t>& c, int pid,
                 int n) -> sim::Task {
      sim::Rng rng(static_cast<std::uint64_t>(pid) + 1);
      for (int i = 0; i < n; ++i) {
        co_await sim::delay(e, sim::ns(rng.uniform(200)));
        c.push(static_cast<std::uint64_t>(pid) * 500 + i);
      }
    }(eng, ch, p, kPerProducer));
  }
  for (int c = 0; c < kConsumers; ++c) {
    eng.spawn([](sim::Channel<std::uint64_t>& ch2, std::vector<int>& tally,
                 int total_consumers, int idx) -> sim::Task {
      // Each consumer takes a fair-ish share; the last one drains.
      const int quota = 8 * 500 / total_consumers +
                        (idx == 0 ? 8 * 500 % total_consumers : 0);
      for (int i = 0; i < quota; ++i) {
        const auto id = co_await ch2.pop();
        ++tally[id];
      }
    }(ch, seen, kConsumers, c));
  }
  eng.run();
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_TRUE(ch.empty());
}

TEST(SimStress, ResourceConservationLaw) {
  // Busy time can never exceed servers x elapsed, and with more offered
  // load than capacity it converges to exactly that.
  sim::Engine eng;
  sim::Resource r(eng, 3);
  for (int t = 0; t < 300; ++t) {
    eng.spawn([](sim::Resource& res) -> sim::Task {
      for (int i = 0; i < 10; ++i) co_await res.use(sim::ns(100));
    }(r));
  }
  eng.run();
  const double util = r.utilization();
  EXPECT_GT(util, 0.99);
  EXPECT_LE(util, 1.0 + 1e-9);
  EXPECT_EQ(r.busy_time(), sim::ns(100) * 3000);
  // 3000 jobs x 100ns over 3 servers = 100us exactly.
  EXPECT_EQ(eng.now(), sim::us(100));
}

// ---------------------------------------------------------------------------
// EventQueue differential fuzz: the calendar queue must dispatch in exactly
// (at, seq) order — same timestamps, smaller key on ties — across
// same-timestamp pushes, ring-window pushes, overflow pushes and
// run_until-style clock parking. Keys are lane-packed like the parallel
// engine's ((origin_lane << 48) | per_lane_seq), so push order at one
// timestamp is NOT key order — exactly the situation cross-shard mailbox
// merges produce.

namespace {

struct RefEvent {
  sim::Time at;
  std::uint64_t seq;
};
struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace

class EventQueueDifferential : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueDifferential, MatchesReferenceHeapOrder) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  sim::Rng rng(seed * 6364136223846793005ull + 1);
  sim::EventQueue q;
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> ref;
  sim::Time now = 0;
  std::uint64_t seq = 0;

  const auto push = [&](sim::Time at) {
    if (at < now) at = now;
    // Pack a random origin lane above the per-push counter: unique keys
    // whose order differs from push order, as in cross-shard merges.
    const std::uint64_t key = (rng.uniform(4) << 48) | seq;
    q.push(sim::Event{at, key, {}, sim::InlineFn{}});
    ref.push(RefEvent{at, key});
    ++seq;
  };
  const auto pop_one = [&]() {
    const sim::Event ev = q.pop();
    const RefEvent want = ref.top();
    ref.pop();
    ASSERT_EQ(ev.at, want.at);
    ASSERT_EQ(ev.seq, want.seq);
    now = ev.at;
  };

  for (int step = 0; step < 30000; ++step) {
    const auto op = rng.uniform(10);
    if (op < 5 || ref.empty()) {
      // Push with a mix of horizons: immediate (at == now), sub-bucket,
      // inside the ring window, just past it, and far future.
      sim::Time at = now;
      switch (rng.uniform(5)) {
        case 0: break;
        case 1: at = now + rng.uniform(5000); break;
        case 2: at = now + rng.uniform(1u << 21); break;
        case 3: at = now + (1u << 21) + rng.uniform(1u << 24); break;
        default: at = now + rng.uniform(1ull << 40); break;
      }
      push(at);
    } else if (op < 8) {
      ASSERT_NO_FATAL_FAILURE(pop_one());
    } else if (op == 8) {
      // run_until-style: drain everything <= deadline, then park the
      // clock at the deadline (pushes behind the cursor must still
      // interleave correctly).
      const sim::Time deadline = now + rng.uniform(1u << 22);
      while (!ref.empty() && ref.top().at <= deadline)
        ASSERT_NO_FATAL_FAILURE(pop_one());
      now = std::max(now, deadline);
    } else {
      for (int k = 0; k < 32 && !ref.empty(); ++k)
        ASSERT_NO_FATAL_FAILURE(pop_one());
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
  }
  while (!ref.empty()) ASSERT_NO_FATAL_FAILURE(pop_one());
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDifferential, ::testing::Range(0, 10));
