// Seed-sweep determinism: a run is a pure function of (params, workload,
// seed). For every seed we execute the same workload twice in fresh
// clusters and require byte-identical observable output — the rendered
// StatsReport, the Chrome trace JSON, and every scalar the measurement
// layer produces. This is the acceptance gate for scheduler/allocator
// changes in sim/: any ordering drift in the engine shows up here as a
// one-byte diff.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/dlog/dlog.hpp"
#include "cluster/stats.hpp"
#include "fault/fault.hpp"
#include "testbed.hpp"
#include "verbs/payload.hpp"
#include "wl/microbench.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace fl = rdmasem::fault;
namespace dl = rdmasem::apps::dlog;
namespace wl = rdmasem::wl;
namespace cl = rdmasem::cluster;
using rdmasem::test::Testbed;

namespace {

struct RunOutput {
  std::string stats;        // StatsReport::render()
  std::string trace;        // Tracer::chrome_json()
  std::string rest;         // every other scalar, stringified
  std::uint64_t events = 0; // engine events_processed — kept out of `rest`
                            // so the cost-fusing toggle (which legitimately
                            // changes the suspension count) can still
                            // assert full byte-identity of everything else
};

// Scoped override of the process-wide datapath tuning knobs.
struct TuningOverride {
  v::DatapathTuning saved = v::datapath_tuning();
  explicit TuningOverride(v::DatapathTuning t) { v::datapath_tuning() = t; }
  ~TuningOverride() { v::datapath_tuning() = saved; }
};

// Closed-loop write/read mix under a seed-derived chaos plan, tracing on.
RunOutput microbench_run(std::uint64_t seed, bool inline_wakeups = true) {
  Testbed tb;
  if (!inline_wakeups) tb.eng.set_inline_wakeups(false);
  tb.cluster.obs().tracer.set_enabled(true);

  sim::Rng plan_rng(seed * 2654435761u + 17);
  fl::ChaosOptions opts;
  opts.events = 16;
  opts.loss_prob_max = 0.3;
  opts.window_max = sim::us(150);
  tb.cluster.inject(fl::FaultPlan::chaos(plan_rng, sim::ms(1),
                                         tb.cluster.size(),
                                         tb.cluster.params().rnic_ports,
                                         opts));

  v::Buffer src(4096), dst(1 << 14);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  wl::ClientSpec spec;
  for (int t = 0; t < 2; ++t) spec.qps.push_back(tb.connect(0, 1).local);
  spec.window = 4;
  spec.ops_per_client = 250;
  spec.make_wr = [lmr, rmr, seed](std::uint32_t, std::uint64_t s) {
    // Seed-dependent access pattern so different seeds genuinely differ.
    const auto off = ((s * 2654435761u + seed) % 255) * 64;
    return (s % 3 == 0) ? rdmasem::wl::make_read(*lmr, 0, *rmr, off, 64)
                        : rdmasem::wl::make_write(*lmr, 0, *rmr, off, 64);
  };
  const auto r = wl::run_closed_loop(tb.eng, spec);

  RunOutput out;
  out.stats = cl::StatsReport::capture(tb.cluster).render();
  out.trace = tb.cluster.obs().tracer.chrome_json();
  out.rest = std::to_string(r.mops) + "|" + std::to_string(r.avg_latency_us) +
             "|" + std::to_string(r.p99_latency_us) + "|" +
             std::to_string(r.elapsed) + "|" + std::to_string(r.errors) +
             "|" + std::to_string(tb.eng.now()) + "|" +
             std::to_string(tb.cluster.fabric().messages()) + "|" +
             std::to_string(tb.cluster.fabric().drops());
  out.events = tb.eng.events_processed();
  return out;
}

// The dlog app end to end (coroutine pipelines, sequencer atomics,
// batching) with stats capture.
RunOutput dlog_run(std::uint64_t seed) {
  Testbed tb;
  dl::Config cfg;
  cfg.engines = 3 + static_cast<std::uint32_t>(seed % 3);
  cfg.records_per_engine = 128;
  cfg.batch_size = 1u << (seed % 4);
  dl::DistributedLog log(tb.contexts(), cfg);
  const auto r = log.run();

  RunOutput out;
  out.stats = cl::StatsReport::capture(tb.cluster).render();
  out.rest = std::to_string(r.records) + "|" + std::to_string(r.mops) + "|" +
             std::to_string(r.elapsed) + "|" +
             std::to_string(log.verify_dense_and_intact()) + "|" +
             std::to_string(tb.eng.now());
  out.events = tb.eng.events_processed();
  return out;
}

}  // namespace

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, MicrobenchReplaysByteIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RunOutput a = microbench_run(seed);
  const RunOutput b = microbench_run(seed);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.rest, b.rest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_FALSE(a.trace.empty());
}

TEST_P(SeedSweep, DlogReplaysByteIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RunOutput a = dlog_run(seed);
  const RunOutput b = dlog_run(seed);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.rest, b.rest);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 10));

// Different seeds must produce different executions (otherwise the sweep
// above proves nothing).
TEST(SeedSweep, SeedsActuallyDiffer) {
  const RunOutput a = microbench_run(1);
  const RunOutput b = microbench_run(2);
  EXPECT_NE(a.rest, b.rest);
}

// --- datapath tuning toggles ------------------------------------------------
//
// The verbs datapath optimisations (verbs/payload.hpp) are host-side only:
// each knob flipped off must reproduce the default run's observable output
// byte for byte. zero_copy and payload_pool change only how payload bytes
// are carried between the gather and the landing, so even the event count
// matches; fused_costs collapses fixed-latency chains into fewer
// suspensions, so it changes events_processed and nothing else.

TEST(DatapathToggles, ZeroCopyOffIsByteIdentical) {
  const RunOutput fast = microbench_run(3);
  v::DatapathTuning t;
  t.zero_copy = false;
  TuningOverride o(t);
  const RunOutput staged = microbench_run(3);
  EXPECT_EQ(staged.stats, fast.stats);
  EXPECT_EQ(staged.trace, fast.trace);
  EXPECT_EQ(staged.rest, fast.rest);
  EXPECT_EQ(staged.events, fast.events);
}

TEST(DatapathToggles, PayloadPoolOffIsByteIdentical) {
  const RunOutput pooled = microbench_run(4);
  v::DatapathTuning t;
  t.payload_pool = false;
  TuningOverride o(t);
  const RunOutput heap = microbench_run(4);
  EXPECT_EQ(heap.stats, pooled.stats);
  EXPECT_EQ(heap.trace, pooled.trace);
  EXPECT_EQ(heap.rest, pooled.rest);
  EXPECT_EQ(heap.events, pooled.events);
}

TEST(DatapathToggles, FullLegacyDatapathKeepsAllTimesAndStats) {
  const RunOutput fast = microbench_run(5);
  TuningOverride o(v::DatapathTuning{false, false, false});
  const RunOutput legacy = microbench_run(5);
  EXPECT_EQ(legacy.stats, fast.stats);
  EXPECT_EQ(legacy.trace, fast.trace);
  EXPECT_EQ(legacy.rest, fast.rest);
  // Unfused chains suspend more often; that is the ONLY thing that may
  // differ, and it must differ (otherwise fusing isn't happening).
  EXPECT_GT(legacy.events, fast.events);
}

TEST(DatapathToggles, InlineWakeupElisionIsByteIdentical) {
  // Elided resource grants / delays still count as processed events, so
  // the engine fast path is invisible even to the event counter.
  const RunOutput fast = microbench_run(6);
  const RunOutput queued = microbench_run(6, /*inline_wakeups=*/false);
  EXPECT_EQ(queued.stats, fast.stats);
  EXPECT_EQ(queued.trace, fast.trace);
  EXPECT_EQ(queued.rest, fast.rest);
  EXPECT_EQ(queued.events, fast.events);
}
