// Seed-sweep determinism: a run is a pure function of (params, workload,
// seed). For every seed we execute the same workload twice in fresh
// clusters and require byte-identical observable output — the rendered
// StatsReport, the Chrome trace JSON, and every scalar the measurement
// layer produces. This is the acceptance gate for scheduler/allocator
// changes in sim/: any ordering drift in the engine shows up here as a
// one-byte diff.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/dlog/dlog.hpp"
#include "cluster/stats.hpp"
#include "fault/fault.hpp"
#include "testbed.hpp"
#include "wl/microbench.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace fl = rdmasem::fault;
namespace dl = rdmasem::apps::dlog;
namespace wl = rdmasem::wl;
namespace cl = rdmasem::cluster;
using rdmasem::test::Testbed;

namespace {

struct RunOutput {
  std::string stats;   // StatsReport::render()
  std::string trace;   // Tracer::chrome_json()
  std::string rest;    // every other scalar, stringified
};

// Closed-loop write/read mix under a seed-derived chaos plan, tracing on.
RunOutput microbench_run(std::uint64_t seed) {
  Testbed tb;
  tb.cluster.obs().tracer.set_enabled(true);

  sim::Rng plan_rng(seed * 2654435761u + 17);
  fl::ChaosOptions opts;
  opts.events = 16;
  opts.loss_prob_max = 0.3;
  opts.window_max = sim::us(150);
  tb.cluster.inject(fl::FaultPlan::chaos(plan_rng, sim::ms(1),
                                         tb.cluster.size(),
                                         tb.cluster.params().rnic_ports,
                                         opts));

  v::Buffer src(4096), dst(1 << 14);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  wl::ClientSpec spec;
  for (int t = 0; t < 2; ++t) spec.qps.push_back(tb.connect(0, 1).local);
  spec.window = 4;
  spec.ops_per_client = 250;
  spec.make_wr = [lmr, rmr, seed](std::uint32_t, std::uint64_t s) {
    // Seed-dependent access pattern so different seeds genuinely differ.
    const auto off = ((s * 2654435761u + seed) % 255) * 64;
    return (s % 3 == 0) ? rdmasem::wl::make_read(*lmr, 0, *rmr, off, 64)
                        : rdmasem::wl::make_write(*lmr, 0, *rmr, off, 64);
  };
  const auto r = wl::run_closed_loop(tb.eng, spec);

  RunOutput out;
  out.stats = cl::StatsReport::capture(tb.cluster).render();
  out.trace = tb.cluster.obs().tracer.chrome_json();
  out.rest = std::to_string(r.mops) + "|" + std::to_string(r.avg_latency_us) +
             "|" + std::to_string(r.p99_latency_us) + "|" +
             std::to_string(r.elapsed) + "|" + std::to_string(r.errors) +
             "|" + std::to_string(tb.eng.now()) + "|" +
             std::to_string(tb.eng.events_processed()) + "|" +
             std::to_string(tb.cluster.fabric().messages()) + "|" +
             std::to_string(tb.cluster.fabric().drops());
  return out;
}

// The dlog app end to end (coroutine pipelines, sequencer atomics,
// batching) with stats capture.
RunOutput dlog_run(std::uint64_t seed) {
  Testbed tb;
  dl::Config cfg;
  cfg.engines = 3 + static_cast<std::uint32_t>(seed % 3);
  cfg.records_per_engine = 128;
  cfg.batch_size = 1u << (seed % 4);
  dl::DistributedLog log(tb.contexts(), cfg);
  const auto r = log.run();

  RunOutput out;
  out.stats = cl::StatsReport::capture(tb.cluster).render();
  out.rest = std::to_string(r.records) + "|" + std::to_string(r.mops) + "|" +
             std::to_string(r.elapsed) + "|" +
             std::to_string(log.verify_dense_and_intact()) + "|" +
             std::to_string(tb.eng.now()) + "|" +
             std::to_string(tb.eng.events_processed());
  return out;
}

}  // namespace

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, MicrobenchReplaysByteIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RunOutput a = microbench_run(seed);
  const RunOutput b = microbench_run(seed);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.rest, b.rest);
  EXPECT_FALSE(a.trace.empty());
}

TEST_P(SeedSweep, DlogReplaysByteIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RunOutput a = dlog_run(seed);
  const RunOutput b = dlog_run(seed);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.rest, b.rest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 10));

// Different seeds must produce different executions (otherwise the sweep
// above proves nothing).
TEST(SeedSweep, SeedsActuallyDiffer) {
  const RunOutput a = microbench_run(1);
  const RunOutput b = microbench_run(2);
  EXPECT_NE(a.rest, b.rest);
}
