// Property-style sweeps (TEST_P): invariants that must hold across the
// whole parameter space, not just hand-picked points.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "apps/dlog/dlog.hpp"
#include "apps/shuffle/shuffle.hpp"
#include "remem/atomics.hpp"
#include "remem/consolidate.hpp"
#include "testbed.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace remem = rdmasem::remem;
namespace sh = rdmasem::apps::shuffle;
namespace dl = rdmasem::apps::dlog;
using rdmasem::test::Testbed;
using rdmasem::test::make_read;
using rdmasem::test::make_write;

namespace {
std::vector<rdmasem::verbs::Context*> ctx_ptrs(Testbed& tb) {
  std::vector<rdmasem::verbs::Context*> out;
  for (auto& c : tb.ctx) out.push_back(c.get());
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// P1: WRITE-then-READ round-trips bytes exactly, for every size and offset.

class WriteReadRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*size*/,
                                                 std::uint64_t /*offset*/>> {};

TEST_P(WriteReadRoundTrip, BytesSurviveTheFabric) {
  const auto [size, offset] = GetParam();
  Testbed tb;
  v::Buffer local(1 << 15), remote(1 << 15);
  auto* lmr = tb.ctx[0]->register_buffer(local, 1);
  auto* rmr = tb.ctx[1]->register_buffer(remote, 1);
  auto conn = tb.connect(0, 1);
  for (std::uint32_t i = 0; i < size; ++i)
    local.data()[i] = static_cast<std::byte>(i * 131 + size);

  tb.eng.spawn([](Testbed&, v::QueuePair* qp, v::MemoryRegion* l,
                  v::MemoryRegion* r, std::uint32_t sz,
                  std::uint64_t off) -> sim::Task {
    auto wc = co_await qp->execute(make_write(*l, 0, *r, off, sz));
    EXPECT_TRUE(wc.ok());
    auto rc = co_await qp->execute(make_read(*l, 1 << 14, *r, off, sz));
    EXPECT_TRUE(rc.ok());
  }(tb, conn.local, lmr, rmr, size, offset));
  tb.eng.run();

  EXPECT_EQ(std::memcmp(remote.data() + offset, local.data(), size), 0);
  EXPECT_EQ(std::memcmp(local.data() + (1 << 14), local.data(), size), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WriteReadRoundTrip,
    ::testing::Combine(::testing::Values(1u, 3u, 8u, 63u, 64u, 65u, 256u,
                                         1000u, 4096u, 8192u),
                       ::testing::Values(0ull, 1ull, 4095ull, 8192ull)));

// ---------------------------------------------------------------------------
// P2: shuffle conserves every entry, for all (executors, mode, batch).

class ShuffleConservation
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, sh::BatchMode, std::uint32_t>> {};

TEST_P(ShuffleConservation, ChecksumAndCountConserved) {
  const auto [execs, mode, batch] = GetParam();
  Testbed tb;
  sh::Config cfg;
  cfg.executors = execs;
  cfg.entries_per_executor = 600;
  cfg.batch = mode;
  cfg.batch_size = batch;
  sh::Shuffle s(ctx_ptrs(tb), cfg);
  const auto r = s.run();
  EXPECT_EQ(r.entries, static_cast<std::uint64_t>(execs) * 600);
  EXPECT_EQ(s.received_checksum(), s.sent_checksum());
  std::uint64_t total = 0;
  for (std::uint32_t e = 0; e < execs; ++e) total += s.received_count(e);
  EXPECT_EQ(total, r.entries);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShuffleConservation,
    ::testing::Combine(::testing::Values(2u, 3u, 5u, 8u),
                       ::testing::Values(sh::BatchMode::kNone,
                                         sh::BatchMode::kSgl,
                                         sh::BatchMode::kSp,
                                         sh::BatchMode::kDoorbell),
                       ::testing::Values(1u, 4u, 16u)));

// ---------------------------------------------------------------------------
// P3: the distributed log is dense + intact for all (engines, batch).

class DlogDensity
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(DlogDensity, DenseAndIntact) {
  const auto [engines, batch] = GetParam();
  Testbed tb;
  dl::Config cfg;
  cfg.engines = engines;
  cfg.records_per_engine = 160;
  cfg.batch_size = batch;
  dl::DistributedLog log(ctx_ptrs(tb), cfg);
  const auto r = log.run();
  EXPECT_EQ(r.records, static_cast<std::uint64_t>(engines) * 160);
  EXPECT_TRUE(log.verify_dense_and_intact());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DlogDensity,
    ::testing::Combine(::testing::Values(1u, 3u, 7u, 14u),
                       ::testing::Values(1u, 7u, 16u, 32u)));

// ---------------------------------------------------------------------------
// P4: consolidator shadow == remote after drain, under random workloads.

class ConsolidatorConvergence : public ::testing::TestWithParam<int> {};

TEST_P(ConsolidatorConvergence, RemoteMatchesShadowAfterDrain) {
  const int seed = GetParam();
  Testbed tb;
  v::Buffer dst(1 << 14);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  remem::Consolidator cons(*conn.local, rmr->addr, rmr->key, dst.size(),
                           {.block_size = 512,
                            .theta = static_cast<std::uint32_t>(1 + seed % 9),
                            .timeout = sim::us(40 + 13 * seed),
                            .async_flush = seed % 2 == 1});
  tb.eng.spawn([](Testbed& t, remem::Consolidator& c, int sd) -> sim::Task {
    sim::Rng rng(static_cast<std::uint64_t>(sd) * 77 + 5);
    std::vector<std::byte> data(24);
    for (int i = 0; i < 500; ++i) {
      for (auto& b : data)
        b = static_cast<std::byte>(rng.uniform(256));
      const std::uint64_t block = rng.uniform((1 << 14) / 512);
      const std::uint64_t off = rng.uniform(512 - data.size());
      co_await c.write(block * 512 + off, data);
      if (rng.chance(0.05)) co_await sim::delay(t.eng, sim::us(60));
    }
    co_await c.flush_all();
  }(tb, cons, seed));
  tb.eng.run();

  EXPECT_EQ(std::memcmp(dst.data(), cons.shadow().data(), dst.size()), 0);
  EXPECT_EQ(cons.stats().staged_writes, 500u);
  EXPECT_GT(cons.stats().flushes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsolidatorConvergence,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// P5: remote sequencer tickets stay dense for any client/machine layout.

class SequencerDensity
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(SequencerDensity, TicketsDense) {
  const auto [clients, per_client] = GetParam();
  Testbed tb;
  v::Buffer mem(64);
  auto* mr = tb.ctx[0]->register_buffer(mem, 1);
  std::vector<std::unique_ptr<remem::RemoteSequencer>> seqs;
  std::vector<std::uint64_t> tickets;
  for (std::uint32_t c = 0; c < clients; ++c) {
    seqs.push_back(std::make_unique<remem::RemoteSequencer>(
        *tb.connect(1 + c % 7, 0).local, mr->addr, mr->key));
    tb.eng.spawn([](remem::RemoteSequencer& s, std::uint32_t n,
                    std::vector<std::uint64_t>& out) -> sim::Task {
      for (std::uint32_t i = 0; i < n; ++i)
        out.push_back(co_await s.next());
    }(*seqs.back(), per_client, tickets));
  }
  tb.eng.run();
  ASSERT_EQ(tickets.size(),
            static_cast<std::size_t>(clients) * per_client);
  std::sort(tickets.begin(), tickets.end());
  for (std::uint64_t i = 0; i < tickets.size(); ++i)
    EXPECT_EQ(tickets[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SequencerDensity,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 13u),
                       ::testing::Values(5u, 40u)));

// ---------------------------------------------------------------------------
// P6: fabric byte accounting equals what the workload shipped.

TEST(FabricAccounting, BytesMatchWorkload) {
  Testbed tb;
  v::Buffer src(1 << 14), dst(1 << 14);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  tb.eng.spawn([](Testbed&, v::QueuePair* qp, v::MemoryRegion* l,
                  v::MemoryRegion* r) -> sim::Task {
    for (int i = 0; i < 10; ++i)
      (void)co_await qp->execute(make_write(*l, 0, *r, 0, 100));
  }(tb, conn.local, lmr, rmr));
  tb.eng.run();
  // 10 writes of 100 B payload + 10 zero-byte ACKs.
  EXPECT_EQ(tb.cluster.fabric().bytes(), 1000u);
  EXPECT_EQ(tb.cluster.fabric().messages(), 20u);
}
