#include <gtest/gtest.h>

#include "cluster/stats.hpp"
#include "testbed.hpp"
#include "wl/microbench.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace wl = rdmasem::wl;
using rdmasem::cluster::StatsReport;
using rdmasem::test::Testbed;
using rdmasem::test::make_write;

TEST(ClusterStats, FreshClusterIsIdle) {
  Testbed tb;
  const auto s = StatsReport::capture(tb.cluster);
  EXPECT_EQ(s.captured_at, 0u);
  EXPECT_EQ(s.fabric_messages, 0u);
  EXPECT_EQ(s.fabric_bytes, 0u);
  ASSERT_EQ(s.ports.size(), tb.cluster.size() * 2);
  for (const auto& p : s.ports) {
    EXPECT_DOUBLE_EQ(p.eu_util, 0.0);
    EXPECT_EQ(p.eu_requests, 0u);
  }
}

TEST(ClusterStats, TrafficShowsUpWhereItRan) {
  Testbed tb;
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);  // port 1 both sides
  wl::ClientSpec spec;
  spec.qps = {conn.local};
  spec.window = 8;
  spec.ops_per_client = 500;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return make_write(*lmr, 0, *rmr, 0, 64);
  };
  (void)wl::run_closed_loop(tb.eng, spec);

  const auto s = StatsReport::capture(tb.cluster);
  const auto* hot = s.hottest_port();
  ASSERT_NE(hot, nullptr);
  // The sender's port-1 execution unit carried the WQEs.
  EXPECT_EQ(hot->machine, 0u);
  EXPECT_EQ(hot->port, 1u);
  EXPECT_GT(hot->eu_util, 0.1);
  EXPECT_EQ(hot->eu_requests, 500u);
  // Machines 2..7 stayed silent.
  for (const auto& p : s.ports) {
    if (p.machine >= 2) {
      EXPECT_DOUBLE_EQ(p.eu_util, 0.0);
    }
  }
  EXPECT_EQ(s.fabric_messages, 1000u);  // 500 writes + 500 ACKs
  EXPECT_EQ(s.fabric_bytes, 500u * 64);
}

TEST(ClusterStats, RenderContainsEveryMachine) {
  Testbed tb;
  const auto s = StatsReport::capture(tb.cluster);
  const std::string out = s.render();
  EXPECT_NE(out.find("cluster stats"), std::string::npos);
  EXPECT_NE(out.find("fabric:"), std::string::npos);
  // 8 machines x 2 ports = 16 data rows + header/rule/banner/footer.
  std::size_t lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, 20u);
}

TEST(ClusterStats, CleanRunHasZeroFaultTotals) {
  Testbed tb;
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  wl::ClientSpec spec;
  spec.qps = {conn.local};
  spec.window = 4;
  spec.ops_per_client = 200;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return make_write(*lmr, 0, *rmr, 0, 64);
  };
  (void)wl::run_closed_loop(tb.eng, spec);
  const auto s = StatsReport::capture(tb.cluster);
  EXPECT_EQ(s.faults.fabric_drops, 0u);
  EXPECT_EQ(s.faults.retransmits, 0u);
  EXPECT_EQ(s.faults.retry_exhausted, 0u);
  EXPECT_EQ(s.faults.flushed_wrs, 0u);
  EXPECT_EQ(s.faults.rnr_naks, 0u);
  for (const auto& p : s.ports) EXPECT_EQ(p.tx_drops, 0u);
  EXPECT_NE(s.render().find("faults:"), std::string::npos);
}

TEST(ClusterStats, LossyFabricFoldsIntoFaultTotals) {
  auto params = rdmasem::hw::ModelParams::connectx3_cluster();
  params.net_loss_prob = 0.05;
  Testbed tb(params);
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  wl::ClientSpec spec;
  spec.qps = {conn.local};
  spec.window = 4;
  spec.ops_per_client = 500;
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return make_write(*lmr, 0, *rmr, 0, 64);
  };
  (void)wl::run_closed_loop(tb.eng, spec);
  const auto s = StatsReport::capture(tb.cluster);
  // 5% loss over >=1000 transits: drops and RC retransmits must show up,
  // and the per-port attribution must sum back to the fabric total.
  EXPECT_GT(s.faults.fabric_drops, 0u);
  EXPECT_GT(s.faults.retransmits, 0u);
  std::uint64_t per_port = 0;
  for (const auto& p : s.ports) per_port += p.tx_drops;
  EXPECT_EQ(per_port, s.faults.fabric_drops);
}

TEST(ClusterStats, McacheCountersPropagate) {
  Testbed tb;
  v::Buffer src(4096);
  v::Buffer dst(64u << 20);  // big region -> translation misses
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  wl::ClientSpec spec;
  spec.qps = {conn.local};
  spec.window = 8;
  spec.ops_per_client = 2000;
  sim::Rng rng(3);
  spec.make_wr = [&](std::uint32_t, std::uint64_t) {
    return make_write(*lmr, 0, *rmr, rng.uniform((64u << 20) / 64) * 64, 64);
  };
  (void)wl::run_closed_loop(tb.eng, spec);
  const auto s = StatsReport::capture(tb.cluster);
  const auto& m1 = s.machines[1];
  EXPECT_GT(m1.mcache_misses, 500u);   // random dst pages thrash
  EXPECT_LT(m1.mcache_hit_rate, 0.9);
  const auto& m0 = s.machines[0];
  EXPECT_GT(m0.mcache_hit_rate, 0.95);  // sender side reuses one page
}
