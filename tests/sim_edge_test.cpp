// Edge cases of the sim/ primitives that the scheduler overhaul must not
// disturb: clock parking (run_until landing exactly on an event), bounded
// dispatch (run_events stopping mid-burst of equal timestamps), engine
// destruction with parked coroutines, channel fairness/cancellation, and
// Resource accounting corners.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/frame_pool.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"

namespace sim = rdmasem::sim;

// ---------------------------------------------------------------------------
// Engine clock / dispatch-order edges

TEST(EngineEdge, RunUntilExactlyOnEventTimestamp) {
  sim::Engine eng;
  int fired = 0;
  eng.schedule_at(sim::us(5), [&] { ++fired; });
  eng.schedule_at(sim::us(5) + 1, [&] { ++fired; });
  // Deadline == event time: the event at the deadline fires, the one 1 ps
  // later does not, and the clock parks exactly at the deadline.
  EXPECT_TRUE(eng.run_until(sim::us(5)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), sim::us(5));
  EXPECT_FALSE(eng.run_until(sim::us(5) + 1));
  EXPECT_EQ(fired, 2);
}

TEST(EngineEdge, RunUntilParksClockOnEmptyGap) {
  sim::Engine eng;
  int fired = 0;
  eng.schedule_at(sim::us(10), [&] { ++fired; });
  // Park below the next event: nothing fires, clock advances to deadline.
  EXPECT_TRUE(eng.run_until(sim::us(5)));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(eng.now(), sim::us(5));
  // Scheduling at the parked now() and after it keeps FIFO-by-time order
  // even though the pre-existing event entered the queue first.
  std::vector<int> order;
  eng.schedule_at(sim::us(5), [&] { order.push_back(1); });
  eng.schedule_at(sim::us(6), [&] { order.push_back(2); });
  eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // at parked now()
  EXPECT_EQ(order[1], 2);  // at 6 us, before the 10 us event
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), sim::us(10));
}

TEST(EngineEdge, RunEventsStopsMidBurstOfEqualTimestamps) {
  sim::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    eng.schedule_at(sim::us(1), [&order, i] { order.push_back(i); });
  // Drain 3 of the 8 equal-timestamp events; FIFO prefix only.
  EXPECT_EQ(eng.run_events(3), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(eng.idle());
  // The remainder continues in the same order, including events appended
  // at the same timestamp mid-burst.
  eng.schedule_at(sim::us(1), [&order] { order.push_back(100); });
  EXPECT_EQ(eng.run_events(100), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 100}));
  EXPECT_TRUE(eng.idle());
}

TEST(EngineEdge, SchedulePastClampsToNow) {
  sim::Engine eng;
  eng.schedule_at(sim::us(3), [] {});
  eng.run();
  EXPECT_EQ(eng.now(), sim::us(3));
  sim::Time fired_at = 0;
  eng.schedule_at(sim::us(1), [&] { fired_at = eng.now(); });  // in the past
  eng.run();
  EXPECT_EQ(fired_at, sim::us(3));  // clamped, clock never moves backwards
}

TEST(EngineEdge, DestructionWithParkedCoroutines) {
  // Coroutines parked on a channel/latch when the engine dies must have
  // their frames reclaimed (no leaks under ASan) without resuming.
  int resumed = 0;
  int started = 0;
  {
    sim::Engine eng;
    auto ch = std::make_unique<sim::Channel<int>>(eng);
    for (int i = 0; i < 16; ++i) {
      eng.spawn([](sim::Channel<int>& c, int& st, int& rs) -> sim::Task {
        ++st;
        const int v = co_await c.pop();  // parks forever
        rs += v;
      }(*ch, started, resumed));
    }
    eng.run();
    EXPECT_EQ(started, 16);
    // Engine destroyed here with 16 frames parked in the channel.
  }
  EXPECT_EQ(resumed, 0);
}

TEST(EngineEdge, DestructionWithUndispatchedEvents) {
  // Queued-but-never-run events (cancel-while-queued at teardown): their
  // captured state must be destroyed exactly once and never invoked.
  int fired = 0;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> observer = token;
  {
    sim::Engine eng;
    eng.schedule_at(sim::ms(1), [t = std::move(token), &fired] {
      fired += *t;
    });
    // No run(): destruction drops the event.
  }
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(observer.expired());  // capture destroyed with the queue
}

// ---------------------------------------------------------------------------
// Channel edges

TEST(ChannelEdge, TryPopYieldsToQueuedWaiters) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  int got = -1;
  eng.spawn([](sim::Channel<int>& c, int& out) -> sim::Task {
    out = co_await c.pop();
  }(ch, got));
  eng.run();  // waiter parks first
  ch.push(42);
  // A waiter is queued: try_pop must not steal its item.
  EXPECT_EQ(ch.try_pop(), std::nullopt);
  eng.run();
  EXPECT_EQ(got, 42);
  ch.push(7);
  EXPECT_EQ(ch.try_pop(), std::optional<int>(7));  // no waiters: fine
}

TEST(ChannelEdge, PopFifoAcrossPushBursts) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<int> by_waiter(3, -1);
  for (int w = 0; w < 3; ++w) {
    eng.spawn([](sim::Channel<int>& c, std::vector<int>& out,
                 int id) -> sim::Task {
      out[static_cast<std::size_t>(id)] = co_await c.pop();
    }(ch, by_waiter, w));
  }
  eng.run();
  ch.push(10);
  ch.push(11);
  ch.push(12);
  eng.run();
  // Waiters resume in arrival order and consume items in push order.
  EXPECT_EQ(by_waiter, (std::vector<int>{10, 11, 12}));
}

TEST(ChannelEdge, PushWhileDrainingKeepsOrder) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<int> seen;
  eng.spawn([](sim::Channel<int>& c, std::vector<int>& out) -> sim::Task {
    for (int i = 0; i < 4; ++i) out.push_back(co_await c.pop());
  }(ch, seen));
  eng.spawn([](sim::Engine& e, sim::Channel<int>& c) -> sim::Task {
    c.push(1);
    c.push(2);
    co_await sim::delay(e, sim::ns(5));
    c.push(3);
    c.push(4);
  }(eng, ch));
  eng.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.waiting(), 0u);
}

// ---------------------------------------------------------------------------
// Resource edges

TEST(ResourceEdge, UtilizationAtTimeZeroIsZero) {
  sim::Engine eng;
  sim::Resource r(eng, 2);
  EXPECT_EQ(r.utilization(), 0.0);  // no division by a zero-length horizon
  EXPECT_EQ(r.busy_time(), 0u);
  EXPECT_EQ(r.requests(), 0u);
}

TEST(ResourceEdge, ZeroServiceTimeCompletesAtNow) {
  sim::Engine eng;
  sim::Resource r(eng, 1);
  sim::Time done = 1;
  eng.spawn([](sim::Resource& res, sim::Time& out) -> sim::Task {
    out = (co_await res.use(0)).at;
  }(r, done));
  eng.run();
  EXPECT_EQ(done, 0u);
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(r.requests(), 1u);
}

TEST(ResourceEdge, PeekDoesNotReserve) {
  sim::Engine eng;
  sim::Resource r(eng, 1);
  const sim::Time first = r.peek(sim::ns(100));
  EXPECT_EQ(first, r.peek(sim::ns(100)));  // peek is idempotent
  const sim::Time got = r.reserve(sim::ns(100));
  EXPECT_EQ(got, first);
  EXPECT_GT(r.peek(sim::ns(100)), first);  // now the server is busy
}

TEST(ResourceEdge, ResetStatsKeepsReservations) {
  sim::Engine eng;
  sim::Resource r(eng, 1);
  (void)r.reserve(sim::ns(500));
  r.reset_stats();
  EXPECT_EQ(r.requests(), 0u);
  EXPECT_EQ(r.busy_time(), 0u);
  // The server is still occupied: a new request queues behind it.
  EXPECT_EQ(r.reserve(sim::ns(100)), sim::ns(600));
}

TEST(ResourceEdge, FifoGrantOrderUnderContention) {
  sim::Engine eng;
  sim::Resource r(eng, 2);
  std::vector<int> completion_order;
  for (int i = 0; i < 6; ++i) {
    eng.spawn([](sim::Resource& res, std::vector<int>& out,
                 int id) -> sim::Task {
      co_await res.use(sim::ns(100));
      out.push_back(id);
    }(r, completion_order, i));
  }
  eng.run();
  // 2 servers, equal service: grants (and completions) in request order.
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(eng.now(), sim::ns(300));
  EXPECT_EQ(r.busy_time(), sim::ns(600));
}

// ---------------------------------------------------------------------------
// FramePool behavior (recycling is what makes spawn-per-WR allocation-free)

TEST(FramePool, RecyclesSameSizeFrames) {
  sim::FramePool::trim();
  const auto before = sim::FramePool::stats();
  sim::Engine eng;
  for (int i = 0; i < 100; ++i) {
    eng.spawn([](sim::Engine& e) -> sim::Task {
      co_await sim::delay(e, sim::ns(10));
    }(eng));
    eng.run();
  }
  const auto after = sim::FramePool::stats();
  // Under ASan the pool is a passthrough (reused stays 0); otherwise the
  // 99 later frames all reuse the first one's storage.
  if (after.fresh > before.fresh || after.reused > before.reused) {
    EXPECT_GE(after.reused + after.fresh - (before.reused + before.fresh),
              100u);
  }
  sim::FramePool::trim();
  EXPECT_EQ(sim::FramePool::stats().cached, 0u);
}

// ---------------------------------------------------------------------------
// EventQueue unit edges (the differential fuzz lives in fuzz_test.cpp)

TEST(EventQueueEdge, ImmediateLosesTieToEarlierScheduledEvent) {
  // An event scheduled for time T while now == T must fire after every
  // event scheduled for T before the clock got there: same-lane tie-break
  // means smaller per-lane seq wins.
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule_at(sim::us(1), [&] {
    order.push_back(1);
    eng.schedule_at(sim::us(1), [&] { order.push_back(3); });  // at == now
  });
  eng.schedule_at(sim::us(1), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueEdge, ClearDropsEverythingAndKeepsWorking) {
  sim::EventQueue q;
  for (int i = 0; i < 100; ++i)
    q.push(sim::Event{static_cast<sim::Time>(i * 1000),
                      static_cast<std::uint64_t>(i), {}, sim::InlineFn{}});
  EXPECT_EQ(q.size(), 100u);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(sim::Event{5, 0, {}, sim::InlineFn{}});
  EXPECT_EQ(q.pop().at, 5u);
  EXPECT_TRUE(q.empty());
}
