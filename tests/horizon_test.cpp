// Demand-driven horizons (the RDMASEM_HORIZON_LEGACY axis): quiescent
// peers must drop out of the live bound and come back when traffic
// resumes, fused rounds must re-split correctly when the poll budget
// runs out or the delivery ring spills, and — the acceptance oracle —
// output must be BYTE-IDENTICAL at every shard count whether the engine
// runs the PR 9 static per-round CMB bound (RDMASEM_HORIZON_LEGACY=1)
// or keeps widening it from the peers' live clocks. The digests fold
// (lane, time) at every step plus the final clock and event count, so
// any event delivered out of order or into a shard's past shows up as a
// one-word diff.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sim = rdmasem::sim;

namespace {

// Pins one env var for a scope (the engine reads the RDMASEM_HORIZON_*
// knobs at construction) and restores the previous value after.
class EnvPin {
 public:
  EnvPin(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value.c_str(), 1);
  }
  ~EnvPin() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// One run's observables: the event-order digest plus the summed
// demand-driven profile counters (host-race-dependent — asserted only as
// "engaged at all", never for exact values).
struct RunResult {
  std::vector<std::uint64_t> log;
  std::uint64_t fused = 0;
  std::uint64_t resplit = 0;
  std::uint64_t quiescent = 0;
  std::uint64_t widening_ps = 0;
};

void fold_profile(sim::Engine& eng, RunResult& r) {
  for (const sim::ShardProfile& s : eng.drain_profile().shard) {
    r.fused += s.fused_epochs;
    r.resplit += s.resplit_epochs;
    r.quiescent += s.quiescent_terms;
    r.widening_ps += s.horizon_widening_ps;
  }
}

std::uint64_t stamp(const sim::Engine& e) {
  return (static_cast<std::uint64_t>(sim::current_lane()) << 48) ^ e.now();
}

// --- workload 1: quiescent pair + reactivation -----------------------------
//
// Lane 2 (own shard at shards=3) burns a local burst in the first round
// and then sits drained while lanes 0 and 1 ping-pong at exactly the
// pair lookahead. Once lane 2's burst round leaves nothing behind, its
// published clock is kNoDeadline and the ping-pong shards' refreshes
// count it quiescent. The walk then visits lane 2 — the pair must
// REACTIVATE: the visit and the reply land at exactly the serial times.
RunResult quiescence_run(std::uint32_t shards, bool horizon_legacy) {
  EnvPin hl("RDMASEM_HORIZON_LEGACY", horizon_legacy ? "1" : "0");
  sim::Engine eng;
  eng.configure_lanes(3, shards);
  eng.set_lookahead(sim::ns(100));
  eng.set_profiling(true);
  RunResult r;
  auto burst = [](sim::Engine& e, std::vector<std::uint64_t>& lg) -> sim::Task {
    for (int i = 0; i < 6000; ++i) co_await sim::delay(e, 1);
    lg.push_back(stamp(e));
  };
  auto walk = [](sim::Engine& e, std::vector<std::uint64_t>& lg) -> sim::Task {
    for (int i = 0; i < 200; ++i) {
      co_await sim::hop(e, i % 2 == 0 ? 1 : 0, sim::ns(100));
      lg.push_back(stamp(e));
    }
    co_await sim::hop(e, 2, sim::ns(100));  // reactivate the drained shard
    lg.push_back(stamp(e));
    co_await sim::delay(e, sim::ns(5));
    co_await sim::hop(e, 0, sim::ns(100));
    lg.push_back(stamp(e));
  };
  eng.spawn_on(2, burst(eng, r.log));
  eng.spawn_on(0, walk(eng, r.log));
  eng.run();
  r.log.push_back(eng.now());
  r.log.push_back(eng.events_processed());
  fold_profile(eng, r);
  return r;
}

TEST(Horizon, QuiescentPairDropsOutAndReactivates) {
  // A small poll budget forces frequent re-splits, so the run crosses
  // many barrier rounds and the drained shard is seen as a STATIC
  // (high-realized-throughput) peer publishing kNoDeadline.
  EnvPin budget("RDMASEM_HORIZON_POLL_BUDGET", "4");
  const RunResult serial = quiescence_run(1, false);
  for (const bool legacy : {false, true}) {
    const RunResult par = quiescence_run(3, legacy);
    EXPECT_EQ(par.log, serial.log) << "horizon_legacy=" << legacy;
    if (!legacy) {
      EXPECT_GT(par.quiescent, 0u)
          << "drained peer never dropped out of the live bound";
    } else {
      EXPECT_EQ(par.fused + par.resplit + par.quiescent, 0u)
          << "legacy horizon must not touch the demand-driven counters";
    }
  }
}

// --- workload 2: fine-grained ping-pong (the fusion target) ----------------

RunResult pingpong_run(std::uint32_t shards, bool horizon_legacy, int hops,
                       sim::Duration far_event = 0) {
  EnvPin hl("RDMASEM_HORIZON_LEGACY", horizon_legacy ? "1" : "0");
  sim::Engine eng;
  eng.configure_lanes(2, shards);
  eng.set_lookahead(sim::ns(100));
  eng.set_profiling(true);
  RunResult r;
  if (far_event != 0) eng.schedule_in(far_event, [] {});
  auto walk = [](sim::Engine& e, int n,
                 std::vector<std::uint64_t>& lg) -> sim::Task {
    for (int i = 0; i < n; ++i) {
      co_await sim::hop(e, i % 2 == 0 ? 1 : 0, sim::ns(100));
      lg.push_back(stamp(e));
    }
  };
  eng.spawn_on(0, walk(eng, hops, r.log));
  eng.run();
  r.log.push_back(eng.now());
  r.log.push_back(eng.events_processed());
  fold_profile(eng, r);
  return r;
}

TEST(Horizon, FusedRoundsMatchLegacyAndSerial) {
  const RunResult serial = pingpong_run(1, false, 300);
  const RunResult demand = pingpong_run(2, false, 300);
  const RunResult legacy = pingpong_run(2, true, 300);
  EXPECT_EQ(demand.log, serial.log);
  EXPECT_EQ(legacy.log, serial.log);
  // The whole point of the demand-driven bound: a starving ping-pong
  // fuses rounds, and every finite widening is accounted in virtual ps.
  EXPECT_GT(demand.fused, 0u);
  EXPECT_GT(demand.widening_ps, 0u);
  EXPECT_EQ(legacy.fused, 0u);
}

TEST(Horizon, PollBudgetExhaustionResplitsWithPendingWork) {
  // Budget 1 re-splits a round after a single idle poll. The far-future
  // self event keeps shard 0's queue non-empty through every stall, so
  // each exhausted budget counts a resplit — and the output must not
  // move by a picosecond.
  EnvPin budget("RDMASEM_HORIZON_POLL_BUDGET", "1");
  const RunResult serial = pingpong_run(1, false, 100, sim::ms(10));
  for (const bool legacy : {false, true}) {
    const RunResult par = pingpong_run(2, legacy, 100, sim::ms(10));
    EXPECT_EQ(par.log, serial.log) << "horizon_legacy=" << legacy;
    if (!legacy) {
      EXPECT_GT(par.resplit, 0u);
    }
  }
}

// --- workload 3: delivery-ring overflow ------------------------------------

RunResult flood_run(std::uint32_t shards, bool horizon_legacy) {
  EnvPin hl("RDMASEM_HORIZON_LEGACY", horizon_legacy ? "1" : "0");
  sim::Engine eng;
  eng.configure_lanes(2, shards);
  eng.set_lookahead(sim::ns(100));
  eng.set_profiling(true);
  RunResult r;
  auto one = [](sim::Engine& e, std::vector<std::uint64_t>& lg) -> sim::Task {
    co_await sim::hop(e, 1, sim::ns(100));
    lg.push_back(stamp(e));
  };
  // 600 same-timestamp cross-shard pushes in one round: far past the
  // 256-slot SPSC ring, so the producer spills to the barrier-drained
  // outbox and freezes its published clock. Key order must carry the
  // whole flood in the serial order regardless of which route each event
  // took.
  for (int i = 0; i < 600; ++i) eng.spawn_on(0, one(eng, r.log));
  eng.run();
  r.log.push_back(eng.now());
  r.log.push_back(eng.events_processed());
  fold_profile(eng, r);
  return r;
}

TEST(Horizon, RingSpillKeepsFloodByteIdentical) {
  const RunResult serial = flood_run(1, false);
  for (const bool legacy : {false, true}) {
    const RunResult par = flood_run(2, legacy);
    EXPECT_EQ(par.log, serial.log) << "horizon_legacy=" << legacy;
  }
}

// --- 10-seed differential fuzz ---------------------------------------------
//
// Random multi-group topologies and random exact-or-slack walks, run at
// shards {1, 2, 4, 8} under both horizon protocols. Every configuration
// must produce the serial byte stream.

struct FuzzPlan {
  sim::LaneTopology topo;
  // Steps: (target lane, hop delay) with delay >= lookahead(cur, target);
  // a target equal to the current lane encodes a local delay instead.
  std::vector<std::pair<std::uint32_t, sim::Duration>> steps;
};

FuzzPlan make_plan(std::uint64_t seed) {
  sim::Rng rng(seed);
  FuzzPlan plan;
  const std::uint32_t lanes = 6;
  const std::uint32_t groups = 1 + static_cast<std::uint32_t>(seed % 3);
  plan.topo.groups = groups;
  for (std::uint32_t l = 0; l < lanes; ++l)
    plan.topo.lane_group.push_back(
        static_cast<std::uint32_t>(rng.uniform(groups)));
  for (std::uint32_t g = 0; g < groups * groups; ++g)
    plan.topo.group_latency.push_back(sim::ns(50) +
                                      static_cast<sim::Duration>(
                                          rng.uniform(sim::ns(450))));
  std::uint32_t cur = 0;
  for (int i = 0; i < 40; ++i) {
    if (rng.uniform(4) == 0) {
      plan.steps.emplace_back(cur, 1 + rng.uniform(sim::ns(300)));
    } else {
      std::uint32_t next = static_cast<std::uint32_t>(rng.uniform(lanes - 1));
      if (next >= cur) ++next;
      plan.steps.emplace_back(next, rng.uniform(sim::ns(200)));
      cur = next;
    }
  }
  return plan;
}

std::vector<std::uint64_t> fuzz_run(const FuzzPlan& plan, std::uint32_t shards,
                                    bool horizon_legacy) {
  EnvPin hl("RDMASEM_HORIZON_LEGACY", horizon_legacy ? "1" : "0");
  sim::Engine eng;
  eng.configure_lanes(6, shards, plan.topo);
  std::vector<std::uint64_t> log;
  auto task = [](sim::Engine& e, const FuzzPlan& p,
                 std::vector<std::uint64_t>& lg) -> sim::Task {
    for (const auto& [target, d] : p.steps) {
      if (target == sim::current_lane()) {
        co_await sim::delay(e, d);
      } else {
        co_await sim::hop(e, target,
                          e.lookahead(sim::current_lane(), target) + d);
      }
      lg.push_back(stamp(e));
    }
  };
  eng.spawn_on(0, task(eng, plan, log));
  eng.run();
  log.push_back(eng.now());
  log.push_back(eng.events_processed());
  return log;
}

TEST(Horizon, TenSeedDifferentialFuzzAcrossShardsAndProtocols) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FuzzPlan plan = make_plan(seed);
    const auto serial = fuzz_run(plan, 1, false);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      for (const bool legacy : {false, true}) {
        EXPECT_EQ(fuzz_run(plan, shards, legacy), serial)
            << "seed=" << seed << " shards=" << shards
            << " horizon_legacy=" << legacy;
      }
    }
  }
}

}  // namespace
