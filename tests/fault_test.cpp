// Fault subsystem (docs/FAULTS.md): FaultState bookkeeping, the injector's
// virtual-clock windows, the QP state machine (RESET -> RTS -> ERROR with
// kWrFlushedError flushes), bounded/infinite transport retries, and the
// loss path of the fabric (RC retransmits, UC/UD silent drops, same-seed
// reproducibility).

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "testbed.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace fl = rdmasem::fault;
using rdmasem::test::Testbed;
using rdmasem::test::make_write;

namespace {

void run(Testbed& tb, sim::Task t) {
  tb.eng.spawn(std::move(t));
  tb.eng.run();
}

// The port every paper_qp() maps to (NIC socket's port).
rdmasem::rnic::PortId port_of(Testbed& tb) {
  return tb.cluster.params().rnic_socket;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultState bookkeeping
// ---------------------------------------------------------------------------

TEST(FaultState, CrashAndPartitionRefcountsNest) {
  fl::FaultState st(4, 2);
  EXPECT_FALSE(st.blocked(0, 0, 1, 0));

  st.crash(1);
  EXPECT_TRUE(st.machine_down(1));
  EXPECT_TRUE(st.blocked(0, 0, 1, 0));  // dst crashed
  EXPECT_TRUE(st.blocked(1, 0, 2, 0));  // src crashed
  st.crash(1);     // overlapping second crash window
  st.restore(1);   // first window lifts: still down
  EXPECT_TRUE(st.machine_down(1));
  st.restore(1);
  EXPECT_FALSE(st.machine_down(1));
  EXPECT_FALSE(st.blocked(0, 0, 1, 0));

  st.add_partition(2, 3);
  EXPECT_TRUE(st.partitioned(3, 2));  // pair is normalized
  EXPECT_TRUE(st.blocked(2, 1, 3, 0));
  EXPECT_FALSE(st.blocked(0, 0, 2, 0));  // other pairs unaffected
  st.remove_partition(3, 2);
  EXPECT_FALSE(st.partitioned(2, 3));
}

TEST(FaultState, LinkDownBlocksEitherEndpoint) {
  fl::FaultState st(3, 2);
  ++st.link(0, 1).down;
  EXPECT_TRUE(st.blocked(0, 1, 1, 0));  // as source link
  EXPECT_TRUE(st.blocked(1, 0, 0, 1));  // as destination link
  EXPECT_FALSE(st.blocked(0, 0, 1, 0));  // the other port still up
  --st.link(0, 1).down;
  EXPECT_FALSE(st.blocked(0, 1, 1, 0));
}

TEST(FaultState, LossOverrideWorseEndpointWinsAndLatencySums) {
  fl::FaultState st(2, 1);
  EXPECT_LT(st.loss_override(0, 0, 1, 0), 0.0);  // no override
  st.link(0, 0).loss_prob = 0.1;
  st.link(1, 0).loss_prob = 0.4;
  EXPECT_DOUBLE_EQ(st.loss_override(0, 0, 1, 0), 0.4);
  st.link(0, 0).extra_latency = sim::us(3);
  st.link(1, 0).extra_latency = sim::us(2);
  EXPECT_EQ(st.extra_latency(0, 0, 1, 0), sim::us(5));
}

// ---------------------------------------------------------------------------
// FaultInjector windows on the virtual clock
// ---------------------------------------------------------------------------

TEST(FaultInjector, WindowBeginsAndEndsAtPlannedTimes) {
  sim::Engine eng;
  fl::FaultState st(2, 2);
  fl::FaultInjector inj(eng, st);
  std::vector<std::pair<sim::Time, bool>> edges;
  inj.add_listener([&](const fl::FaultEvent& ev, bool begin) {
    EXPECT_EQ(ev.kind, fl::FaultKind::kLossBurst);
    edges.emplace_back(eng.now(), begin);
  });

  fl::FaultPlan plan;
  plan.loss_burst(sim::us(10), sim::us(5), 0, 0, 0.8);
  inj.schedule(plan);

  // Probe the state before, inside and after the window.
  double during = -2, after = -2;
  eng.schedule_at(sim::us(12),
                  [&] { during = st.loss_override(0, 0, 1, 0); });
  eng.schedule_at(sim::us(20), [&] { after = st.loss_override(0, 0, 1, 0); });
  eng.run();

  EXPECT_DOUBLE_EQ(during, 0.8);
  EXPECT_LT(after, 0.0);
  EXPECT_FALSE(st.active());  // fast path restored once the window lifts
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<sim::Time, bool>{sim::us(10), true}));
  EXPECT_EQ(edges[1], (std::pair<sim::Time, bool>{sim::us(15), false}));
  EXPECT_EQ(inj.injected(), 1u);
}

// ---------------------------------------------------------------------------
// QP state machine
// ---------------------------------------------------------------------------

TEST(QpStateMachine, ResetUntilConnectedUdBornRts) {
  Testbed tb;
  auto cfg = tb.paper_qp();
  cfg.cq = tb.ctx[0]->create_cq();
  EXPECT_EQ(tb.ctx[0]->create_qp(cfg)->state(), v::QpState::kReset);

  auto conn = tb.connect(0, 1);
  EXPECT_EQ(conn.local->state(), v::QpState::kRts);
  EXPECT_EQ(conn.remote->state(), v::QpState::kRts);

  auto ud = tb.paper_qp();
  ud.transport = v::Transport::kUD;
  ud.cq = tb.ctx[0]->create_cq();
  EXPECT_EQ(tb.ctx[0]->create_qp(ud)->state(), v::QpState::kRts);
}

TEST(QpStateMachine, ToErrorFlushesPostedRecvs) {
  Testbed tb;
  auto conn = tb.connect(0, 1);
  v::Buffer buf(256);
  auto* mr = tb.ctx[1]->register_buffer(buf, 1);
  conn.remote->post_recv({1, {mr->addr, 64, mr->key}});
  conn.remote->post_recv({2, {mr->addr + 64, 64, mr->key}});

  conn.remote->to_error();
  conn.remote->to_error();  // idempotent
  EXPECT_EQ(conn.remote->state(), v::QpState::kError);
  EXPECT_EQ(conn.remote->flushed_wrs(), 2u);
  EXPECT_EQ(conn.remote->recv_queue_depth(), 0u);

  auto* cq = conn.remote->config().cq;
  for (std::uint64_t id = 1; id <= 2; ++id) {
    auto c = cq->poll();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->wr_id, id);
    EXPECT_EQ(c->opcode, v::Opcode::kRecv);
    EXPECT_EQ(c->status, v::Status::kWrFlushedError);
  }
  EXPECT_FALSE(cq->poll().has_value());
}

TEST(QpStateMachine, ResetAllowsReconnect) {
  Testbed tb;
  v::Buffer src(64), dst(64);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  conn.local->to_error();
  conn.local->reset();
  conn.remote->reset();
  EXPECT_EQ(conn.local->state(), v::QpState::kReset);
  EXPECT_FALSE(conn.local->connected());

  v::Context::connect(*conn.local, *conn.remote);
  EXPECT_EQ(conn.local->state(), v::QpState::kRts);
  std::memcpy(src.data(), "again", 5);
  run(tb, [](v::QueuePair* q, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto c = co_await q->execute(make_write(*l, 0, *r, 0, 5));
    EXPECT_TRUE(c.ok());
  }(conn.local, lmr, rmr));
  EXPECT_EQ(std::memcmp(dst.data(), "again", 5), 0);
}

// ---------------------------------------------------------------------------
// Transport retries under injected faults
// ---------------------------------------------------------------------------

// Acceptance: retry exhaustion produces kRetryExceeded, moves the QP to
// ERROR, and later WRs flush with kWrFlushedError instead of aborting.
TEST(FaultRetry, ExhaustionErrorsQpAndFlushesFollowers) {
  Testbed tb;
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto cfg = tb.paper_qp();
  cfg.retry_cnt = 2;  // bounded budget: detect the dead link
  auto conn = tb.connect(0, 1, cfg, tb.paper_qp());

  fl::FaultPlan plan;
  plan.link_down(0, sim::ms(50), 1, port_of(tb));
  tb.cluster.inject(plan);

  run(tb, [](v::QueuePair* q, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto c1 = co_await q->execute(make_write(*l, 0, *r, 0, 8));
    EXPECT_EQ(c1.status, v::Status::kRetryExceeded);
    EXPECT_EQ(q->state(), v::QpState::kError);
    auto c2 = co_await q->execute(make_write(*l, 8, *r, 8, 8));
    EXPECT_EQ(c2.status, v::Status::kWrFlushedError);
  }(conn.local, lmr, rmr));

  EXPECT_EQ(conn.local->retransmits(), 2u);  // exactly the budget
  EXPECT_GE(conn.local->flushed_wrs(), 1u);
  EXPECT_GE(tb.cluster.fabric().drops(), 3u);  // initial try + 2 retries
}

TEST(FaultRetry, InfiniteRetryRidesOutTransientOutage) {
  Testbed tb;
  v::Buffer src(64), dst(64);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);  // default: infinite retry

  fl::FaultPlan plan;
  plan.link_down(0, sim::us(60), 1, port_of(tb));
  tb.cluster.inject(plan);

  std::memcpy(src.data(), "heal", 4);
  run(tb, [](Testbed& t, v::QueuePair* q, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto c = co_await q->execute(make_write(*l, 0, *r, 0, 4));
    EXPECT_TRUE(c.ok());
    EXPECT_GE(t.eng.now(), sim::us(60));  // could not finish mid-outage
  }(tb, conn.local, lmr, rmr));

  EXPECT_EQ(conn.local->state(), v::QpState::kRts);
  EXPECT_GT(conn.local->retransmits(), 0u);
  EXPECT_EQ(std::memcmp(dst.data(), "heal", 4), 0);
}

TEST(FaultRetry, PartitionHealsWithBackoff) {
  Testbed tb;
  v::Buffer src(64), dst(64);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);

  fl::FaultPlan plan;
  plan.partition(0, sim::us(100), 0, 1);
  tb.cluster.inject(plan);

  run(tb, [](Testbed& t, v::QueuePair* q, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto c = co_await q->execute(make_write(*l, 0, *r, 0, 8));
    EXPECT_TRUE(c.ok());
    EXPECT_GE(t.eng.now(), sim::us(100));
  }(tb, conn.local, lmr, rmr));
  EXPECT_GT(conn.local->retransmits(), 0u);
}

TEST(FaultFabric, LossBurstOverridesLosslessKnob) {
  Testbed tb;  // net_loss_prob = 0: all loss below comes from the burst
  v::Buffer src(64), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);

  fl::FaultPlan plan;
  plan.loss_burst(0, sim::ms(50), 1, port_of(tb), 0.5);
  tb.cluster.inject(plan);

  run(tb, [](v::QueuePair* q, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    for (int i = 0; i < 50; ++i) {
      auto c = co_await q->execute(
          make_write(*l, 0, *r, static_cast<std::uint64_t>(i) * 8, 8));
      EXPECT_TRUE(c.ok());
    }
  }(conn.local, lmr, rmr));

  EXPECT_GT(conn.local->retransmits(), 0u);
  EXPECT_GT(tb.cluster.fabric().drops(), 0u);
}

TEST(FaultFabric, LatencySpikeSlowsTransits) {
  auto latency_with = [](fl::FaultPlan plan) {
    Testbed tb;
    v::Buffer src(64), dst(64);
    auto* lmr = tb.ctx[0]->register_buffer(src, 1);
    auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
    auto conn = tb.connect(0, 1);
    tb.cluster.inject(plan);
    double us = 0;
    run(tb, [](Testbed& t, v::QueuePair* q, v::MemoryRegion* l,
               v::MemoryRegion* r, double& out) -> sim::Task {
      for (int i = 0; i < 3; ++i)  // warm metadata caches
        (void)co_await q->execute(make_write(*l, 0, *r, 0, 8));
      co_await sim::delay(t.eng, sim::us(100));  // inside any spike window
      const sim::Time t0 = t.eng.now();
      auto c = co_await q->execute(make_write(*l, 0, *r, 0, 8));
      EXPECT_TRUE(c.ok());
      out = sim::to_us(t.eng.now() - t0);
    }(tb, conn.local, lmr, rmr, us));
    return us;
  };

  const double clean = latency_with({});
  fl::FaultPlan spike;
  spike.latency_spike(0, sim::ms(10), 1, 1, sim::us(5));
  // Request and ACK legs both cross the spiked link: ~2x extra.
  EXPECT_GT(latency_with(spike), clean + 8.0);
}

TEST(FaultNic, StallFreezesRemotePipeline) {
  Testbed tb;
  v::Buffer src(64), dst(64);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);

  fl::FaultPlan plan;
  plan.nic_stall(0, sim::us(80), 1);
  tb.cluster.inject(plan);

  run(tb, [](Testbed& t, v::QueuePair* q, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto c = co_await q->execute(make_write(*l, 0, *r, 0, 8));
    EXPECT_TRUE(c.ok());
    // Inbound processing on machine 1 was frozen for the stall window.
    EXPECT_GE(t.eng.now(), sim::us(80));
  }(tb, conn.local, lmr, rmr));
}

// ---------------------------------------------------------------------------
// Global loss path (net_loss_prob): coverage the pre-fault simulator lacked
// ---------------------------------------------------------------------------

TEST(LossPath, RcCompletesEverythingAndCountsRetransmits) {
  rdmasem::hw::ModelParams p;
  p.net_loss_prob = 0.2;
  Testbed tb(p);
  v::Buffer src(64), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto conn = tb.connect(0, 1);
  std::memcpy(src.data(), "RRRRRRRR", 8);

  const int n = 100;
  run(tb, [](v::QueuePair* q, v::MemoryRegion* l, v::MemoryRegion* r,
             int count) -> sim::Task {
    for (int i = 0; i < count; ++i) {
      auto c = co_await q->execute(
          make_write(*l, 0, *r, static_cast<std::uint64_t>(i) * 8, 8));
      EXPECT_TRUE(c.ok());
    }
  }(conn.local, lmr, rmr, n));

  for (int i = 0; i < n; ++i)
    EXPECT_EQ(std::memcmp(dst.data() + i * 8, "RRRRRRRR", 8), 0) << i;
  EXPECT_GT(conn.local->retransmits(), 0u);
  EXPECT_EQ(tb.cluster.fabric().drops(), conn.local->retransmits());
  EXPECT_EQ(conn.local->state(), v::QpState::kRts);
}

TEST(LossPath, UdDatagramsDropSilently) {
  rdmasem::hw::ModelParams p;
  p.net_loss_prob = 0.5;
  Testbed tb(p);
  v::Buffer sbuf(64), rbuf(1 << 14);
  auto* smr = tb.ctx[0]->register_buffer(sbuf, 1);
  auto* rmr = tb.ctx[1]->register_buffer(rbuf, 1);
  auto cfg = tb.paper_qp();
  cfg.transport = v::Transport::kUD;
  auto rcfg = cfg;
  cfg.cq = tb.ctx[0]->create_cq();
  rcfg.cq = tb.ctx[1]->create_cq();
  auto* sender = tb.ctx[0]->create_qp(cfg);
  auto* receiver = tb.ctx[1]->create_qp(rcfg);

  const int n = 100;
  for (int i = 0; i < n; ++i)
    receiver->post_recv({static_cast<std::uint64_t>(i) + 1,
                         {rmr->addr + static_cast<std::uint64_t>(i) * 64, 64,
                          rmr->key}});

  run(tb, [](v::QueuePair* s, v::QueuePair* d, v::MemoryRegion* l,
             int count) -> sim::Task {
    for (int i = 0; i < count; ++i) {
      v::WorkRequest wr;
      wr.opcode = v::Opcode::kSend;
      wr.sg_list = {{l->addr, 8, l->key}};
      wr.ud_dest = d;
      auto c = co_await s->execute(wr);
      EXPECT_TRUE(c.ok());  // UD completes locally even when dropped
    }
  }(sender, receiver, smr, n));

  int delivered = 0;
  while (receiver->config().cq->poll().has_value()) ++delivered;
  EXPECT_GT(delivered, n / 4);  // ~half land
  EXPECT_LT(delivered, n * 3 / 4);
  EXPECT_EQ(receiver->recv_queue_depth(),
            static_cast<std::size_t>(n - delivered));
  EXPECT_GT(tb.cluster.fabric().drops(), 0u);
}

TEST(LossPath, SameSeedSameTraceDifferentSeedDiverges) {
  auto trace = [](std::uint64_t seed) {
    rdmasem::hw::ModelParams p;
    p.net_loss_prob = 0.2;
    Testbed tb(p);
    tb.eng.seed(seed);
    v::Buffer src(64), dst(4096);
    auto* lmr = tb.ctx[0]->register_buffer(src, 1);
    auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
    auto conn = tb.connect(0, 1);
    run(tb, [](v::QueuePair* q, v::MemoryRegion* l,
               v::MemoryRegion* r) -> sim::Task {
      for (int i = 0; i < 60; ++i)
        (void)co_await q->execute(
            make_write(*l, 0, *r, static_cast<std::uint64_t>(i) * 8, 8));
    }(conn.local, lmr, rmr));
    return std::tuple{tb.cluster.fabric().messages(),
                      tb.cluster.fabric().drops(),
                      conn.local->retransmits(), tb.eng.now()};
  };

  const auto a = trace(11);
  EXPECT_EQ(a, trace(11));    // byte-identical replay
  EXPECT_NE(a, trace(12));    // the seed is the only entropy source
}
