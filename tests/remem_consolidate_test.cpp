#include <gtest/gtest.h>

#include <cstring>

#include "remem/consolidate.hpp"
#include "testbed.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace remem = rdmasem::remem;
using rdmasem::test::Testbed;

namespace {

struct ConsRig {
  Testbed tb;
  v::Buffer dst;
  v::MemoryRegion* rmr;
  Testbed::Conn conn;

  explicit ConsRig(std::size_t region = 1 << 16)
      : dst(region), conn(tb.connect(0, 1)) {
    rmr = tb.ctx[1]->register_buffer(dst, 1);
  }
};

std::vector<std::byte> bytes(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

}  // namespace

TEST(Consolidator, ThetaWritesTriggerOneFlush) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 4,
                            .timeout = sim::us(1000)});
  auto task = [](ConsRig& r, remem::Consolidator& c) -> sim::Task {
    co_await c.write(0, bytes("aaaa"));
    co_await c.write(32, bytes("bbbb"));
    co_await c.write(64, bytes("cccc"));
    EXPECT_EQ(c.stats().flushes, 0u);  // below theta, nothing flushed
    EXPECT_NE(std::memcmp(r.dst.data(), "aaaa", 4), 0);
    co_await c.write(96, bytes("dddd"));  // theta reached -> flush
    EXPECT_EQ(c.stats().flushes, 1u);
  };
  rig.tb.eng.spawn(task(rig, cons));
  rig.tb.eng.run();
  EXPECT_EQ(std::memcmp(rig.dst.data(), "aaaa", 4), 0);
  EXPECT_EQ(std::memcmp(rig.dst.data() + 96, "dddd", 4), 0);
}

TEST(Consolidator, FlushSendsOnlyDirtyExtent) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 2,
                            .timeout = sim::us(1000)});
  auto task = [](ConsRig&, remem::Consolidator& c) -> sim::Task {
    co_await c.write(100, bytes("xxxx"));
    co_await c.write(200, bytes("yyyy"));  // flush of [100, 204)
  };
  rig.tb.eng.spawn(task(rig, cons));
  rig.tb.eng.run();
  EXPECT_EQ(cons.stats().flushes, 1u);
  EXPECT_EQ(cons.stats().flushed_bytes, 104u);
}

TEST(Consolidator, TimeoutFlushesStragglers) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 16,
                            .timeout = sim::us(50)});
  auto task = [](ConsRig&, remem::Consolidator& c) -> sim::Task {
    co_await c.write(0, bytes("zzzz"));
  };
  rig.tb.eng.spawn(task(rig, cons));
  rig.tb.eng.run();  // engine drains; the timer fires at +50us
  EXPECT_EQ(cons.stats().flushes, 1u);
  EXPECT_EQ(cons.stats().timeout_flushes, 1u);
  EXPECT_EQ(std::memcmp(rig.dst.data(), "zzzz", 4), 0);
}

TEST(Consolidator, TimerDoesNotDoubleFlush) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 2,
                            .timeout = sim::us(50)});
  auto task = [](ConsRig&, remem::Consolidator& c) -> sim::Task {
    co_await c.write(0, bytes("aaaa"));
    co_await c.write(8, bytes("bbbb"));  // theta flush; timer must abort
  };
  rig.tb.eng.spawn(task(rig, cons));
  rig.tb.eng.run();
  EXPECT_EQ(cons.stats().flushes, 1u);
  EXPECT_EQ(cons.stats().timeout_flushes, 0u);
}

TEST(Consolidator, IndependentBlocksTrackSeparately) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 2,
                            .timeout = sim::us(1000)});
  auto task = [](ConsRig&, remem::Consolidator& c) -> sim::Task {
    co_await c.write(0, bytes("aaaa"));     // block 0: 1 pending
    co_await c.write(1024, bytes("bbbb"));  // block 1: 1 pending
    EXPECT_EQ(c.stats().flushes, 0u);
    co_await c.write(8, bytes("cccc"));     // block 0 flushes
    EXPECT_EQ(c.stats().flushes, 1u);
    co_await c.write(1056, bytes("dddd"));  // block 1 flushes
    EXPECT_EQ(c.stats().flushes, 2u);
  };
  rig.tb.eng.spawn(task(rig, cons));
  rig.tb.eng.run();
}

TEST(Consolidator, FlushAllDrains) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 100,
                            .timeout = sim::ms(10)});
  auto task = [](ConsRig& r, remem::Consolidator& c) -> sim::Task {
    co_await c.write(0, bytes("AAAA"));
    co_await c.write(2048, bytes("BBBB"));
    co_await c.flush_all();
    EXPECT_EQ(std::memcmp(r.dst.data(), "AAAA", 4), 0);
    EXPECT_EQ(std::memcmp(r.dst.data() + 2048, "BBBB", 4), 0);
  };
  rig.tb.eng.spawn(task(rig, cons));
  rig.tb.eng.run();
  EXPECT_EQ(cons.stats().flushes, 2u);
}

TEST(Consolidator, HigherThetaRaisesThroughput) {
  // The Fig. 8 effect: 32 B random writes inside 1 KB blocks, throughput
  // rises steeply with theta.
  auto mops_for = [](std::uint32_t theta) {
    ConsRig rig(1 << 16);
    remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                             rig.dst.size(),
                             {.block_size = 1024, .theta = theta,
                              .timeout = sim::ms(100)});
    double out = 0;
    auto task = [](ConsRig& r, remem::Consolidator& c, double& res)
        -> sim::Task {
      sim::Rng rng(3);
      const int n = 4000;
      std::vector<std::byte> payload(32);
      const sim::Time start = r.tb.eng.now();
      for (int i = 0; i < n; ++i) {
        // Random 32 B slot in one hot block (skewed workload).
        const std::uint64_t block = rng.uniform(4);
        const std::uint64_t slot = rng.uniform(32);
        co_await c.write(block * 1024 + slot * 32, payload);
      }
      co_await c.flush_all();
      res = static_cast<double>(n) / sim::to_us(r.tb.eng.now() - start);
    };
    rig.tb.eng.spawn(task(rig, cons, out));
    rig.tb.eng.run();
    return out;
  };
  const double t1 = mops_for(1);
  const double t4 = mops_for(4);
  const double t16 = mops_for(16);
  EXPECT_GT(t4, t1 * 2.0);
  EXPECT_GT(t16, t1 * 4.0);  // paper: 7.49x at theta=16 vs native
}

TEST(Consolidator, RejectsStraddlingWrites) {
  ConsRig rig;
  remem::Consolidator cons(*rig.conn.local, rig.rmr->addr, rig.rmr->key,
                           rig.dst.size(),
                           {.block_size = 1024, .theta = 4,
                            .timeout = sim::us(100)});
  auto task = [](ConsRig&, remem::Consolidator& c) -> sim::Task {
    co_await c.write(1020, bytes("abcdefgh"));  // crosses block 0 -> 1
  };
  EXPECT_DEATH(
      {
        rig.tb.eng.spawn(task(rig, cons));
        rig.tb.eng.run();
      },
      "straddle");
}
