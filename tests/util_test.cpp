#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace u = rdmasem::util;

TEST(RunningStat, Empty) {
  u::RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  u::RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  u::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ClearResets) {
  u::RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Samples, PercentileNearestRank) {
  u::Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Samples, PercentileEdgeCases) {
  u::Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);  // empty
  s.add(7.0);
  // Single sample: every percentile is that sample.
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(s.percentile(-5), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 7.0);
}

TEST(Samples, PercentileTwoSamples) {
  u::Samples s;
  s.add(1.0);
  s.add(2.0);
  // Nearest-rank: rank = ceil(p/100 * 2).
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);   // rank 1
  EXPECT_DOUBLE_EQ(s.percentile(51), 2.0);   // rank 2
  EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
}

TEST(Samples, P999) {
  u::Samples s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 999.0);
  s.add(1001.0);  // 1001 samples: ceil(0.999 * 1001) = 1000
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 1000.0);
}

TEST(Samples, MeanAndUnsortedInput) {
  u::Samples s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  // Adding after sorting must re-sort.
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.5);
}

TEST(Log2Histogram, BucketsAndQuantiles) {
  u::Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.add(10);    // bucket of 8..15
  for (int i = 0; i < 100; ++i) h.add(1000);  // bucket of 512..1023
  EXPECT_EQ(h.count(), 200u);
  EXPECT_LE(h.quantile_bound(0.25), 15u);
  EXPECT_GE(h.quantile_bound(0.99), 512u);
}

TEST(Log2Histogram, QuantileBoundEmpty) {
  u::Log2Histogram h;
  EXPECT_EQ(h.quantile_bound(0.0), 0u);
  EXPECT_EQ(h.quantile_bound(0.5), 0u);
  EXPECT_EQ(h.quantile_bound(1.0), 0u);
}

TEST(Log2Histogram, QuantileBoundSingleBucket) {
  u::Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.add(1000);  // all in the 512..1023 bucket
  // Every quantile — including q=0 — must land on the one occupied
  // bucket, not fall through to bucket 0.
  EXPECT_EQ(h.quantile_bound(0.0), 1023u);
  EXPECT_EQ(h.quantile_bound(0.5), 1023u);
  EXPECT_EQ(h.quantile_bound(1.0), 1023u);
  // q beyond [0,1] clamps.
  EXPECT_EQ(h.quantile_bound(2.0), 1023u);
  EXPECT_EQ(h.quantile_bound(-1.0), 1023u);
}

TEST(Log2Histogram, QuantileBoundMonotone) {
  u::Log2Histogram h;
  for (int i = 0; i < 50; ++i) h.add(3);
  for (int i = 0; i < 30; ++i) h.add(100);
  for (int i = 0; i < 20; ++i) h.add(5000);
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t b = h.quantile_bound(q);
    EXPECT_GE(b, prev) << "q=" << q;
    prev = b;
  }
  EXPECT_EQ(h.quantile_bound(1.0), 8191u);  // 5000 lives in 4096..8191
}

TEST(Table, RendersAlignedColumns) {
  u::Table t({"size", "lat_us"});
  t.add_row({"64", "1.16"});
  t.add_row({"8192", "3.50"});
  const std::string out = t.render();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("8192"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, TitleBanner) {
  u::Table t({"a"});
  t.set_title("Fig. 1");
  EXPECT_NE(t.render().find("== Fig. 1 =="), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(u::fmt(1.005, 2), "1.00");  // snprintf rounding of binary 1.005
  EXPECT_EQ(u::fmt(2.5, 1), "2.5");
  EXPECT_EQ(u::fmt(3.0, 0), "3");
}

TEST(Fmt, Bytes) {
  EXPECT_EQ(u::fmt_bytes(64), "64B");
  EXPECT_EQ(u::fmt_bytes(4096), "4KB");
  EXPECT_EQ(u::fmt_bytes(2u << 20), "2MB");
  EXPECT_EQ(u::fmt_bytes(1ull << 30), "1GB");
  EXPECT_EQ(u::fmt_bytes(1500), "1500B");
}

TEST(Env, U64DefaultAndParse) {
  ::unsetenv("RDMASEM_TEST_KNOB");
  EXPECT_EQ(u::env_u64("RDMASEM_TEST_KNOB", 7), 7u);
  ::setenv("RDMASEM_TEST_KNOB", "42", 1);
  EXPECT_EQ(u::env_u64("RDMASEM_TEST_KNOB", 7), 42u);
  ::setenv("RDMASEM_TEST_KNOB", "4k", 1);
  EXPECT_EQ(u::env_u64("RDMASEM_TEST_KNOB", 7), 4096u);
  ::setenv("RDMASEM_TEST_KNOB", "2M", 1);
  EXPECT_EQ(u::env_u64("RDMASEM_TEST_KNOB", 7), 2u << 20);
  ::setenv("RDMASEM_TEST_KNOB", "bogus", 1);
  EXPECT_EQ(u::env_u64("RDMASEM_TEST_KNOB", 7), 7u);
  ::unsetenv("RDMASEM_TEST_KNOB");
}

TEST(Env, BoolForms) {
  ::setenv("RDMASEM_TEST_KNOB", "0", 1);
  EXPECT_FALSE(u::env_bool("RDMASEM_TEST_KNOB", true));
  ::setenv("RDMASEM_TEST_KNOB", "off", 1);
  EXPECT_FALSE(u::env_bool("RDMASEM_TEST_KNOB", true));
  ::setenv("RDMASEM_TEST_KNOB", "1", 1);
  EXPECT_TRUE(u::env_bool("RDMASEM_TEST_KNOB", false));
  ::unsetenv("RDMASEM_TEST_KNOB");
  EXPECT_TRUE(u::env_bool("RDMASEM_TEST_KNOB", true));
}

TEST(Env, F64AndStr) {
  ::setenv("RDMASEM_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(u::env_f64("RDMASEM_TEST_KNOB", 1.0), 2.5);
  EXPECT_EQ(u::env_str("RDMASEM_TEST_KNOB", "d"), "2.5");
  ::unsetenv("RDMASEM_TEST_KNOB");
  EXPECT_DOUBLE_EQ(u::env_f64("RDMASEM_TEST_KNOB", 1.0), 1.0);
  EXPECT_EQ(u::env_str("RDMASEM_TEST_KNOB", "d"), "d");
}
