// Soak: all four paper applications on a 16-node simulated cluster with
// fault injection, at sizes well past the unit-test regime. Each run is
// wall-time bounded and checks its application-level invariant (checksum
// conservation, join verification, log density, read-your-writes), so a
// scheduler or allocator regression that only shows up under sustained
// load has somewhere to fail loudly.
//
// Gated twice: skipped unless RDMASEM_SOAK=1 (so a stray local `ctest`
// stays fast), and registered under the ctest label `soak` (excluded from
// the default CI run, executed by the nightly soak job).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/dlog/dlog.hpp"
#include "apps/hashtable/hashtable.hpp"
#include "apps/join/join.hpp"
#include "apps/shuffle/shuffle.hpp"
#include "fault/fault.hpp"
#include "testbed.hpp"

namespace sim = rdmasem::sim;
namespace hw = rdmasem::hw;
namespace fl = rdmasem::fault;
namespace ht = rdmasem::apps::hashtable;
namespace sh = rdmasem::apps::shuffle;
namespace jn = rdmasem::apps::join;
namespace dl = rdmasem::apps::dlog;
using rdmasem::test::Testbed;

namespace {

constexpr std::uint32_t kMachines = 16;
// Per-app wall-clock ceiling. Generous (nightly CI shares cores) but low
// enough that a runaway simulation fails instead of hanging the job.
constexpr auto kWallBound = std::chrono::minutes(10);

#define RDMASEM_REQUIRE_SOAK()                                        \
  do {                                                                \
    const char* on = std::getenv("RDMASEM_SOAK");                     \
    if (on == nullptr || on[0] == '\0' || on[0] == '0')               \
      GTEST_SKIP() << "soak tests run with RDMASEM_SOAK=1";           \
  } while (0)

hw::ModelParams soak_params() {
  auto p = hw::ModelParams::connectx3_cluster();
  p.machines = kMachines;
  return p;
}

// Transient-only chaos (loss windows, latency spikes, partitions that
// heal): infinite-retry transports must ride it out with zero failures.
fl::FaultPlan transient_chaos(Testbed& tb, std::uint64_t seed,
                              sim::Time horizon) {
  sim::Rng rng(seed);
  fl::ChaosOptions opts;
  opts.events = 96;
  opts.loss_prob_max = 0.35;
  opts.window_max = sim::us(400);
  opts.allow_crash = false;
  return fl::FaultPlan::chaos(rng, horizon, tb.cluster.size(),
                              tb.cluster.params().rnic_ports, opts);
}

struct WallTimer {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  void check(const char* what) const {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, kWallBound) << what << " exceeded the soak wall bound";
  }
};

std::vector<std::byte> value_for(std::uint64_t key, std::uint32_t size) {
  std::vector<std::byte> v(size);
  for (std::uint32_t i = 0; i < size; i += 8) {
    const std::uint64_t w = key * 0x9e3779b97f4a7c15ULL + i;
    std::memcpy(v.data() + i, &w, std::min<std::uint32_t>(8, size - i));
  }
  return v;
}

}  // namespace

TEST(Soak, ShuffleConservesEveryEntryUnderChaos) {
  RDMASEM_REQUIRE_SOAK();
  WallTimer wall;
  Testbed tb(soak_params());
  tb.cluster.inject(transient_chaos(tb, 101, sim::ms(50)));

  sh::Config cfg;
  cfg.machines = kMachines;
  cfg.executors = kMachines;
  cfg.entries_per_executor = 1 << 15;  // 512k entries all-to-all
  cfg.batch = sh::BatchMode::kSgl;
  cfg.batch_size = 16;
  sh::Shuffle shuffle(tb.contexts(), cfg);
  const auto r = shuffle.run();

  EXPECT_EQ(r.entries, cfg.entries_per_executor * cfg.executors);
  EXPECT_EQ(r.checksum, shuffle.sent_checksum());
  EXPECT_EQ(shuffle.received_checksum(), shuffle.sent_checksum());
  EXPECT_GT(tb.cluster.fabric().drops(), 0u);  // the chaos actually bit
  wall.check("shuffle");
}

TEST(Soak, JoinVerifiesUnderChaos) {
  RDMASEM_REQUIRE_SOAK();
  WallTimer wall;
  Testbed tb(soak_params());
  tb.cluster.inject(transient_chaos(tb, 202, sim::ms(80)));

  jn::Config cfg;
  cfg.machines = kMachines;
  cfg.executors = kMachines;
  cfg.tuples = 1 << 18;  // per relation
  cfg.batch_size = 16;
  const auto r = jn::run_join(tb.contexts(), cfg);

  EXPECT_TRUE(r.verified()) << r.matches << " != " << r.expected_matches;
  EXPECT_GT(r.matches, 0u);
  wall.check("join");
}

TEST(Soak, DlogStaysDenseAcrossReplicaCrash) {
  RDMASEM_REQUIRE_SOAK();
  WallTimer wall;
  Testbed tb(soak_params());

  dl::Config cfg;
  cfg.engines = 12;  // machines 1..12; replicas on 15,14 (top-down)
  cfg.records_per_engine = 1 << 14;
  cfg.batch_size = 8;
  cfg.replicas = 3;
  cfg.failover = true;

  // Transient chaos everywhere plus a hard crash of replica 0's host
  // mid-run: no acknowledged append may be lost.
  auto plan = transient_chaos(tb, 303, sim::ms(60));
  plan.crash(sim::ms(8), tb.cluster.size() - 1);
  tb.cluster.inject(plan);

  dl::DistributedLog log(tb.contexts(), cfg);
  const auto r = log.run();

  EXPECT_EQ(r.records, cfg.engines * cfg.records_per_engine);
  EXPECT_TRUE(log.verify_dense_and_intact());
  EXPECT_GT(r.failovers, 0u);
  EXPECT_TRUE(log.verify_replicas_identical());  // survivors agree
  EXPECT_FALSE(log.replica_alive(0));            // the crashed host
  // Transient loss may cost further replicas (finite failover budget),
  // but every replica that stayed alive must support full recovery.
  for (std::uint32_t rep = 1; rep < cfg.replicas - 1; ++rep) {
    if (log.replica_alive(rep)) {
      EXPECT_TRUE(log.recover_from_replica(rep));
    }
  }
  wall.check("dlog");
}

TEST(Soak, HashTableReadsYourWritesUnderChaos) {
  RDMASEM_REQUIRE_SOAK();
  WallTimer wall;
  Testbed tb(soak_params());
  tb.cluster.inject(transient_chaos(tb, 404, sim::ms(40)));

  ht::Config cfg;
  cfg.num_keys = 1 << 14;
  cfg.hot_fraction = 1.0 / 8;
  cfg.numa_aware = true;
  ht::DisaggHashTable table(*tb.ctx[0], cfg);

  // One front-end per remaining machine, each owning a disjoint key range
  // so reads-after-writes verify exactly.
  constexpr std::uint32_t kFrontEnds = kMachines - 1;
  constexpr std::uint64_t kOpsPerFe = 2500;
  std::vector<std::unique_ptr<ht::FrontEnd>> fes;
  for (std::uint32_t m = 1; m < kMachines; ++m)
    fes.push_back(table.add_front_end(*tb.ctx[m], 1));

  std::uint64_t bad = 0;
  for (std::uint32_t f = 0; f < kFrontEnds; ++f) {
    tb.eng.spawn([](ht::FrontEnd& fe, const ht::Config& c, std::uint32_t id,
                    std::uint64_t& mismatches) -> sim::Task {
      const std::uint64_t stride = c.num_keys / kFrontEnds;
      const std::uint64_t base = id * stride;
      sim::Rng rng(id * 7919 + 1);
      for (std::uint64_t op = 0; op < kOpsPerFe; ++op) {
        const std::uint64_t key = base + rng.uniform(stride);
        const auto v = value_for(key ^ op, c.value_size);
        co_await fe.put(key, v);
        const auto got = co_await fe.get(key);
        if (got.size() != v.size() ||
            std::memcmp(got.data(), v.data(), v.size()) != 0)
          ++mismatches;
      }
    }(*fes[f], cfg, f, bad));
  }
  tb.eng.run();
  EXPECT_EQ(bad, 0u);
  wall.check("hashtable");
}
