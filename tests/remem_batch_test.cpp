#include <gtest/gtest.h>

#include <cstring>

#include "remem/batch.hpp"
#include "sim/sync.hpp"
#include "testbed.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
namespace remem = rdmasem::remem;
using rdmasem::test::Testbed;

namespace {

struct BatchRig {
  Testbed tb;
  v::Buffer src;
  v::Buffer dst;
  v::MemoryRegion* lmr;
  v::MemoryRegion* rmr;
  Testbed::Conn conn;

  BatchRig() : src(1 << 16), dst(1 << 16), conn(tb.connect(0, 1)) {
    lmr = tb.ctx[0]->register_buffer(src, 1);
    rmr = tb.ctx[1]->register_buffer(dst, 1);
    for (std::size_t i = 0; i < src.size(); ++i)
      src.data()[i] = static_cast<std::byte>(i * 7 + 3);
  }

  // `n` scattered 32 B pieces at stride 512 -> contiguous at remote.
  std::vector<remem::BatchItem> items(std::size_t n) {
    std::vector<remem::BatchItem> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back({{lmr->addr + i * 512, 32, lmr->key},
                     rmr->addr + i * 32});
    return out;
  }

  bool remote_matches_gather(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      if (std::memcmp(dst.data() + i * 32, src.data() + i * 512, 32) != 0)
        return false;
    return true;
  }

  double flush_mops(remem::Batcher& b, std::size_t n, int reps) {
    double out = 0;
    auto task = [](BatchRig& r, remem::Batcher& batcher, std::size_t nn,
                   int rr, double& res) -> sim::Task {
      auto its = r.items(nn);
      const sim::Time start = r.tb.eng.now();
      for (int i = 0; i < rr; ++i) {
        auto c = co_await batcher.flush_write(its, r.rmr->addr, r.rmr->key);
        RDMASEM_CHECK(c.ok());
      }
      res = static_cast<double>(nn) * rr /
            sim::to_us(r.tb.eng.now() - start);
    };
    tb.eng.spawn(task(*this, b, n, reps, out));
    tb.eng.run();
    return out;
  }
};

}  // namespace

TEST(Batchers, SpMovesDataCorrectly) {
  BatchRig rig;
  remem::SpBatcher sp(*rig.conn.local, 1 << 14);
  rig.flush_mops(sp, 8, 1);
  EXPECT_TRUE(rig.remote_matches_gather(8));
}

TEST(Batchers, SglMovesDataCorrectly) {
  BatchRig rig;
  remem::SglBatcher sgl(*rig.conn.local);
  rig.flush_mops(sgl, 8, 1);
  EXPECT_TRUE(rig.remote_matches_gather(8));
}

TEST(Batchers, DoorbellMovesDataToPerItemAddresses) {
  BatchRig rig;
  remem::DoorbellBatcher db(*rig.conn.local);
  rig.flush_mops(db, 8, 1);
  // Doorbell writes each item at its own remote_addr (same layout here).
  EXPECT_TRUE(rig.remote_matches_gather(8));
}

TEST(Batchers, PaperOrderingSpGeSglGtDoorbell) {
  // §III-A: SP >= SGL >> Doorbell in throughput for small payloads.
  BatchRig rig;
  remem::SpBatcher sp(*rig.conn.local, 1 << 14);
  remem::SglBatcher sgl(*rig.conn.local);
  remem::DoorbellBatcher db(*rig.conn.local);
  const double m_sp = rig.flush_mops(sp, 16, 300);
  const double m_sgl = rig.flush_mops(sgl, 16, 300);
  const double m_db = rig.flush_mops(db, 16, 300);
  EXPECT_GE(m_sp, m_sgl * 0.95);
  EXPECT_GT(m_sgl, m_db * 1.3);
  // Fig. 4 text: SP is 1.11x~2.14x SGL.
  EXPECT_LT(m_sp / m_sgl, 2.5);
}

TEST(Batchers, SpScalesWithBatchSize) {
  BatchRig rig;
  remem::SpBatcher sp(*rig.conn.local, 1 << 14);
  const double b1 = rig.flush_mops(sp, 1, 300);
  const double b16 = rig.flush_mops(sp, 16, 300);
  EXPECT_GT(b16 / b1, 4.0);  // strong scaling
}

TEST(Batchers, DoorbellBarelyScalesWithBatchSize) {
  BatchRig rig;
  remem::DoorbellBatcher db(*rig.conn.local);
  const double b1 = rig.flush_mops(db, 1, 300);
  const double b32 = rig.flush_mops(db, 32, 100);
  const double gain = b32 / b1;
  EXPECT_GT(gain, 1.2);  // it does help (fewer MMIOs)...
  EXPECT_LT(gain, 5.0);  // ...but stays WQE-throttled (paper: ~2.5x)
}

TEST(Batchers, SglDegradesAtLargeBatch) {
  // "High performance only exists in a small range": per-SGE fetch costs
  // make large SGL batches sublinear vs SP.
  BatchRig rig;
  remem::SpBatcher sp(*rig.conn.local, 1 << 14);
  remem::SglBatcher sgl(*rig.conn.local);
  const double sp32 = rig.flush_mops(sp, 32, 200);
  const double sgl32 = rig.flush_mops(sgl, 32, 200);
  const double sp4 = rig.flush_mops(sp, 4, 200);
  const double sgl4 = rig.flush_mops(sgl, 4, 200);
  EXPECT_GT(sp32 / sgl32, sp4 / sgl4);  // the gap widens with batch size
}

namespace {
void oversized_sgl_flush() {
  BatchRig rig;
  remem::SglBatcher sgl(*rig.conn.local);
  auto items = rig.items(rig.tb.cluster.params().rnic_max_sge + 1);
  auto task = [](BatchRig& r, remem::SglBatcher& b,
                 std::vector<remem::BatchItem>& its) -> sim::Task {
    (void)co_await b.flush_write(its, r.rmr->addr, r.rmr->key);
  };
  rig.tb.eng.spawn(task(rig, sgl, items));
  rig.tb.eng.run();
}
}  // namespace

TEST(BatchersDeathTest, SglRejectsBatchBeyondSgeLimit) {
  EXPECT_DEATH(oversized_sgl_flush(), "SGE limit");
}

TEST(Batchers, ThreadScalingMatchesFig5) {
  // Fig. 5: with window-1 batch-4 clients sharing a port, Doorbell's
  // per-thread throughput collapses with thread count while SP barely
  // moves (it spends 1 WQE per 4 logical ops).
  auto per_thread = [](auto make_batcher, std::uint32_t threads) {
    BatchRig rig;
    std::vector<std::unique_ptr<remem::Batcher>> batchers;
    std::vector<v::QueuePair*> qps;
    for (std::uint32_t t = 0; t < threads; ++t) {
      auto conn = rig.tb.connect(0, 1);
      batchers.push_back(make_batcher(*conn.local));
      qps.push_back(conn.local);
    }
    double total = 0;
    sim::CountdownLatch done(rig.tb.eng, threads);
    sim::Time end = 0;
    for (std::uint32_t t = 0; t < threads; ++t) {
      auto loop = [](BatchRig& r, remem::Batcher& b, sim::CountdownLatch& d,
                     sim::Time& e) -> sim::Task {
        auto its = r.items(4);
        for (int i = 0; i < 300; ++i)
          (void)co_await b.flush_write(its, r.rmr->addr, r.rmr->key);
        e = std::max(e, r.tb.eng.now());
        d.count_down();
      };
      rig.tb.eng.spawn(loop(rig, *batchers[t], done, end));
    }
    rig.tb.eng.run();
    total = 4.0 * 300 * threads / rdmasem::sim::to_us(end);
    return total / threads;
  };

  auto mk_sp = [](v::QueuePair& qp) -> std::unique_ptr<remem::Batcher> {
    return std::make_unique<remem::SpBatcher>(qp, 1 << 12);
  };
  auto mk_db = [](v::QueuePair& qp) -> std::unique_ptr<remem::Batcher> {
    return std::make_unique<remem::DoorbellBatcher>(qp);
  };
  const double sp1 = per_thread(mk_sp, 1);
  const double sp8 = per_thread(mk_sp, 8);
  const double db1 = per_thread(mk_db, 1);
  const double db8 = per_thread(mk_db, 8);
  const double sp_drop = 1.0 - sp8 / sp1;
  const double db_drop = 1.0 - db8 / db1;
  EXPECT_LT(sp_drop, 0.45);          // SP holds up
  EXPECT_GT(db_drop, sp_drop + 0.2); // Doorbell collapses harder
}
