// Transport-type semantics (§II-A): RC supports everything; UC loses READ
// and atomics; UD is datagram SEND/RECV only. UC/UD complete locally and
// drop lost packets; RC retransmits.

#include <gtest/gtest.h>

#include <cstring>

#include "testbed.hpp"

namespace v = rdmasem::verbs;
namespace sim = rdmasem::sim;
using rdmasem::test::Testbed;
using rdmasem::test::make_read;
using rdmasem::test::make_write;

namespace {

void run(Testbed& tb, sim::Task t) {
  tb.eng.spawn(std::move(t));
  tb.eng.run();
}

Testbed::Conn connect_with(Testbed& tb, v::Transport tp) {
  auto cfg = tb.paper_qp();
  cfg.transport = tp;
  return tb.connect(0, 1, cfg, cfg);
}

}  // namespace

TEST(TransportUC, WriteWorksAndCompletesLocally) {
  Testbed tb;
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto uc = connect_with(tb, v::Transport::kUC);
  auto rc = tb.connect(0, 1);
  std::memcpy(src.data(), "uc-bytes", 8);

  double uc_lat = 0, rc_lat = 0;
  run(tb, [](Testbed& t, v::QueuePair* u, v::QueuePair* r,
             v::MemoryRegion* l, v::MemoryRegion* rm, double& ul,
             double& rl) -> sim::Task {
    // Warm the metadata caches, then measure steady state.
    for (int i = 0; i < 4; ++i) {
      (void)co_await u->execute(make_write(*l, 0, *rm, 0, 8));
      (void)co_await r->execute(make_write(*l, 0, *rm, 64, 8));
    }
    sim::Time t0 = t.eng.now();
    auto c1 = co_await u->execute(make_write(*l, 0, *rm, 0, 8));
    ul = sim::to_us(t.eng.now() - t0);
    EXPECT_TRUE(c1.ok());
    t0 = t.eng.now();
    auto c2 = co_await r->execute(make_write(*l, 0, *rm, 64, 8));
    rl = sim::to_us(t.eng.now() - t0);
    EXPECT_TRUE(c2.ok());
  }(tb, uc.local, rc.local, lmr, rmr, uc_lat, rc_lat));

  // Data landed in both cases...
  EXPECT_EQ(std::memcmp(dst.data(), "uc-bytes", 8), 0);
  EXPECT_EQ(std::memcmp(dst.data() + 64, "uc-bytes", 8), 0);
  // ...but the UC completion didn't wait for the remote ACK round trip.
  EXPECT_LT(uc_lat, rc_lat * 0.75);
}

TEST(TransportUC, ReadAndAtomicsRejected) {
  Testbed tb;
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto uc = connect_with(tb, v::Transport::kUC);

  run(tb, [](Testbed&, v::QueuePair* qp, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto c = co_await qp->execute(make_read(*l, 0, *r, 0, 8));
    EXPECT_EQ(c.status, v::Status::kUnsupportedOpcode);
    v::WorkRequest faa;
    faa.opcode = v::Opcode::kFetchAdd;
    faa.sg_list = {{l->addr, 8, l->key}};
    faa.remote_addr = r->addr;
    faa.rkey = r->key;
    faa.swap_or_add = 1;
    auto c2 = co_await qp->execute(faa);
    EXPECT_EQ(c2.status, v::Status::kUnsupportedOpcode);
  }(tb, uc.local, lmr, rmr));
}

TEST(TransportUD, DatagramToManyPeersFromOneQp) {
  // The UD selling point: ONE local QP reaches every peer (no per-peer
  // connection state). One sender datagram-casts to three receivers.
  Testbed tb;
  v::Buffer sbuf(4096);
  auto* smr = tb.ctx[0]->register_buffer(sbuf, 1);
  auto ud_cfg = tb.paper_qp();
  ud_cfg.transport = v::Transport::kUD;
  ud_cfg.cq = tb.ctx[0]->create_cq();
  auto* sender = tb.ctx[0]->create_qp(ud_cfg);

  struct Receiver {
    v::Buffer buf{4096};
    v::MemoryRegion* mr;
    v::QueuePair* qp;
  };
  std::vector<Receiver> rx(3);
  for (int i = 0; i < 3; ++i) {
    rx[i].mr = tb.ctx[1 + i]->register_buffer(rx[i].buf, 1);
    auto cfg = tb.paper_qp();
    cfg.transport = v::Transport::kUD;
    cfg.cq = tb.ctx[1 + i]->create_cq();
    rx[i].qp = tb.ctx[1 + i]->create_qp(cfg);
    rx[i].qp->post_recv({99, {rx[i].mr->addr, 256, rx[i].mr->key}});
  }
  std::memcpy(sbuf.data(), "datagram", 8);

  run(tb, [](Testbed&, v::QueuePair* s, v::MemoryRegion* m,
             std::vector<Receiver>& rs) -> sim::Task {
    for (auto& r : rs) {
      v::WorkRequest wr;
      wr.opcode = v::Opcode::kSend;
      wr.sg_list = {{m->addr, 8, m->key}};
      wr.ud_dest = r.qp;
      auto c = co_await s->execute(wr);
      EXPECT_TRUE(c.ok());
    }
  }(tb, sender, smr, rx));

  for (auto& r : rx) {
    EXPECT_EQ(std::memcmp(r.buf.data(), "datagram", 8), 0);
    auto c = r.qp->config().cq->poll();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->opcode, v::Opcode::kRecv);
  }
}

TEST(TransportUD, WriteRejected) {
  Testbed tb;
  v::Buffer src(4096), dst(4096);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto ud_cfg = tb.paper_qp();
  ud_cfg.transport = v::Transport::kUD;
  ud_cfg.cq = tb.ctx[0]->create_cq();
  auto* sender = tb.ctx[0]->create_qp(ud_cfg);
  auto rcfg = ud_cfg;
  rcfg.cq = tb.ctx[1]->create_cq();
  auto* receiver = tb.ctx[1]->create_qp(rcfg);

  run(tb, [](Testbed&, v::QueuePair* s, v::QueuePair* d, v::MemoryRegion* l,
             v::MemoryRegion* r) -> sim::Task {
    auto wr = make_write(*l, 0, *r, 0, 8);
    wr.ud_dest = d;
    auto c = co_await s->execute(wr);
    EXPECT_EQ(c.status, v::Status::kUnsupportedOpcode);
  }(tb, sender, receiver, lmr, rmr));
}

TEST(TransportLoss, UcDropsSilentlyRcRetransmits) {
  rdmasem::hw::ModelParams p;
  p.net_loss_prob = 0.5;
  Testbed tb(p);
  v::Buffer src(4096), dst(1 << 16);
  auto* lmr = tb.ctx[0]->register_buffer(src, 1);
  auto* rmr = tb.ctx[1]->register_buffer(dst, 1);
  auto uc = connect_with(tb, v::Transport::kUC);
  auto rc = tb.connect(0, 1);
  std::memcpy(src.data(), "XXXXXXXX", 8);

  const int n = 200;
  run(tb, [](Testbed&, v::QueuePair* u, v::QueuePair* r, v::MemoryRegion* l,
             v::MemoryRegion* rm, int count) -> sim::Task {
    for (int i = 0; i < count; ++i) {
      // UC completes OK even when the packet is lost.
      auto c1 = co_await u->execute(
          make_write(*l, 0, *rm, static_cast<std::uint64_t>(i) * 16, 8));
      EXPECT_TRUE(c1.ok());
      // RC retransmits until delivery.
      auto c2 = co_await r->execute(
          make_write(*l, 0, *rm, static_cast<std::uint64_t>(i) * 16 + 8, 8));
      EXPECT_TRUE(c2.ok());
    }
  }(tb, uc.local, rc.local, lmr, rmr, n));

  int uc_landed = 0, rc_landed = 0;
  for (int i = 0; i < n; ++i) {
    if (std::memcmp(dst.data() + i * 16, "XXXXXXXX", 8) == 0) ++uc_landed;
    if (std::memcmp(dst.data() + i * 16 + 8, "XXXXXXXX", 8) == 0) ++rc_landed;
  }
  EXPECT_EQ(rc_landed, n);            // RC always delivers
  EXPECT_GT(uc_landed, n / 4);        // UC delivers ~half
  EXPECT_LT(uc_landed, n * 3 / 4);
}

TEST(TransportUD, GrhOverheadVisibleOnWire) {
  // A UD datagram carries a 40 B GRH: its serialization takes longer than
  // the same payload over RC for large messages.
  auto bytes_on_wire = [](v::Transport tp) {
    rdmasem::hw::ModelParams p;
    Testbed tb(p);
    v::Buffer sbuf(8192), rbuf(8192);
    auto* smr = tb.ctx[0]->register_buffer(sbuf, 1);
    auto* rmr = tb.ctx[1]->register_buffer(rbuf, 1);
    auto cfg = tb.paper_qp();
    cfg.transport = tp;
    auto cfg2 = cfg;
    cfg.cq = tb.ctx[0]->create_cq();
    cfg2.cq = tb.ctx[1]->create_cq();
    auto* s = tb.ctx[0]->create_qp(cfg);
    auto* d = tb.ctx[1]->create_qp(cfg2);
    if (tp != v::Transport::kUD) v::Context::connect(*s, *d);
    d->post_recv({1, {rmr->addr, 8192, rmr->key}});
    tb.eng.spawn([](Testbed&, v::QueuePair* qp, v::QueuePair* dd,
                    v::MemoryRegion* m, v::Transport t) -> sim::Task {
      v::WorkRequest wr;
      wr.opcode = v::Opcode::kSend;
      wr.sg_list = {{m->addr, 4096, m->key}};
      if (t == v::Transport::kUD) wr.ud_dest = dd;
      (void)co_await qp->execute(wr);
    }(tb, s, d, smr, tp));
    tb.eng.run();
    return tb.cluster.fabric().bytes();
  };
  // fabric.bytes() counts payloads; GRH shows up in timing, so compare
  // simulated completion times instead via a secondary check below.
  EXPECT_EQ(bytes_on_wire(v::Transport::kRC), 4096u);
  EXPECT_EQ(bytes_on_wire(v::Transport::kUD), 4096u + 40u);
}
